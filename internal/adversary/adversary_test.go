package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
)

func quickCfg(seed uint64) Config {
	return Config{
		Seed:            seed,
		Restarts:        3,
		StepsPerRestart: 20,
		Batched:         true,
	}
}

func TestSearchFindsSomething(t *testing.T) {
	res, err := Search(quickCfg(1), func() sched.Policy { return policy.NewDLRU() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || res.Evaluated == 0 {
		t.Fatal("empty search result")
	}
	if res.Ratio < 1 {
		// A ratio below 1 is possible (n > m) but the search over DLRU
		// should at least find parity.
		t.Logf("note: best ratio %.2f < 1", res.Ratio)
	}
	if err := res.Instance.Validate(); err != nil {
		t.Fatalf("worst instance invalid: %v", err)
	}
	if !res.Instance.IsRateLimited() {
		t.Fatal("batched search produced a non-rate-limited instance")
	}
}

func TestSearchDeterministic(t *testing.T) {
	a, err := Search(quickCfg(7), func() sched.Policy { return policy.NewEDF() })
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(quickCfg(7), func() sched.Policy { return policy.NewEDF() })
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Evaluated != b.Evaluated {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.Ratio, a.Evaluated, b.Ratio, b.Evaluated)
	}
}

// TestSearchSeparatesPolicies is the headline property: over the same
// search budget, the adversary hurts the flawed baselines at least as
// much as the paper's algorithm. (On tiny instances the separation is
// modest; the appendix constructions need longer horizons — this checks
// the ordering, not the magnitude.)
func TestSearchSeparatesPolicies(t *testing.T) {
	cfg := quickCfg(3)
	cfg.Restarts = 4
	cfg.StepsPerRestart = 30
	combo, err := Search(cfg, func() sched.Policy { return core.NewDLRUEDF() })
	if err != nil {
		t.Fatal(err)
	}
	lru, err := Search(cfg, func() sched.Policy { return policy.NewDLRU() })
	if err != nil {
		t.Fatal(err)
	}
	if combo.Ratio > lru.Ratio+2.0 {
		t.Fatalf("ΔLRU-EDF adversarial ratio %.2f far above ΔLRU's %.2f", combo.Ratio, lru.Ratio)
	}
	// The certified arithmetic must be internally consistent.
	for _, r := range []*Result{combo, lru} {
		den := r.Opt
		if den == 0 {
			den = 1
		}
		if got := float64(r.PolicyCost) / float64(den); got != r.Ratio {
			t.Fatalf("ratio arithmetic inconsistent: %v vs %v", got, r.Ratio)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.MaxColors == 0 || c.N == 0 || c.M == 0 || len(c.DelayChoices) == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}
