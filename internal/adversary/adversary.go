// Package adversary searches for bad inputs: small instances maximizing a
// policy's cost ratio against the exact offline optimum. It is a
// counterexample-hunting tool for competitive analysis — run it against
// ΔLRU and EDF and it rediscovers miniature versions of the paper's
// Appendix A/B constructions; run it against ΔLRU-EDF and the ratio stays
// near the Theorem 1 constant.
//
// The search is randomized hill climbing with restarts over a bounded
// instance space (few colors, short horizons, small batches), driven by an
// explicit seed so results are reproducible.
package adversary

import (
	"errors"
	"fmt"

	"repro/internal/container"
	"repro/internal/offline"
	"repro/internal/sched"
)

// Config bounds the search space and effort.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// MaxColors, MaxRounds and MaxBatch bound the instance space.
	MaxColors int
	MaxRounds int
	MaxBatch  int
	// DelayChoices are the delay bounds instances may use (powers of two
	// keep the §3 preconditions satisfied).
	DelayChoices []int
	// Delta is the reconfiguration cost of generated instances.
	Delta int
	// N is the online resource count; M the offline optimum's resources.
	N, M int
	// Restarts and StepsPerRestart bound the hill climbing effort.
	Restarts        int
	StepsPerRestart int
	// BruteForceStates caps the per-evaluation exact search; instances
	// exceeding it are discarded.
	BruteForceStates int
	// Batched restricts the space to batched (and rate-limited) inputs.
	Batched bool
}

// Defaults fills zero fields with workable values.
func (c *Config) Defaults() {
	if c.MaxColors == 0 {
		c.MaxColors = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 12
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 3
	}
	if len(c.DelayChoices) == 0 {
		c.DelayChoices = []int{1, 2, 4}
	}
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.N == 0 {
		c.N = 8
	}
	if c.M == 0 {
		c.M = 1
	}
	if c.Restarts == 0 {
		c.Restarts = 8
	}
	if c.StepsPerRestart == 0 {
		c.StepsPerRestart = 60
	}
	if c.BruteForceStates == 0 {
		// Branch-and-bound states are cheap (see offline.SolveExact), so
		// the default budget is generous: fewer discarded candidates.
		c.BruteForceStates = 2_000_000
	}
}

// Result is the worst instance found and its certified ratio.
type Result struct {
	// Instance is the worst input found (nil if nothing evaluable was
	// generated).
	Instance *sched.Instance
	// PolicyCost, Opt and Ratio certify the finding: Ratio =
	// PolicyCost / max(Opt, 1) with Opt computed exactly.
	PolicyCost int64
	Opt        int64
	Ratio      float64
	// Evaluated counts the instances scored during the search.
	Evaluated int
}

// Search hill-climbs toward instances maximizing newPolicy's cost ratio
// against the exact optimum with cfg.M resources.
func Search(cfg Config, newPolicy func() sched.Policy) (*Result, error) {
	cfg.Defaults()
	rng := container.NewRNG(cfg.Seed)
	best := &Result{Ratio: -1}

	evaluate := func(inst *sched.Instance) (float64, int64, int64, bool) {
		opt, err := offline.SolveExact(inst, cfg.M, offline.ExactOptions{
			MaxStates: cfg.BruteForceStates,
			Workers:   1, // hill climbing evaluates many candidates serially
		})
		var lim *offline.BruteForceLimitError
		if errors.As(err, &lim) {
			return 0, 0, 0, false
		}
		if err != nil {
			return 0, 0, 0, false
		}
		res, err := sched.Run(inst.Clone(), newPolicy(), sched.Options{N: cfg.N})
		if err != nil {
			return 0, 0, 0, false
		}
		den := opt
		if den == 0 {
			den = 1
		}
		return float64(res.Cost.Total()) / float64(den), res.Cost.Total(), opt, true
	}

	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomInstance(rng, cfg)
		curRatio, pc, opt, ok := evaluate(cur)
		if ok {
			best.Evaluated++
			best.consider(cur, curRatio, pc, opt)
		} else {
			curRatio = -1
		}
		for step := 0; step < cfg.StepsPerRestart; step++ {
			cand := mutate(rng, cfg, cur)
			ratio, pc, opt, ok := evaluate(cand)
			if !ok {
				continue
			}
			best.Evaluated++
			best.consider(cand, ratio, pc, opt)
			if ratio >= curRatio {
				cur, curRatio = cand, ratio
			}
		}
	}
	if best.Ratio < 0 {
		return nil, fmt.Errorf("adversary: no evaluable instance found within the budget")
	}
	return best, nil
}

func (r *Result) consider(inst *sched.Instance, ratio float64, pc, opt int64) {
	if ratio > r.Ratio {
		r.Instance = inst.Clone()
		r.Ratio = ratio
		r.PolicyCost = pc
		r.Opt = opt
	}
}

// randomInstance samples the bounded instance space.
func randomInstance(rng *container.RNG, cfg Config) *sched.Instance {
	numColors := 1 + rng.Intn(cfg.MaxColors)
	inst := &sched.Instance{
		Name:   "adversary",
		Delta:  cfg.Delta,
		Delays: make([]int, numColors),
	}
	for c := range inst.Delays {
		inst.Delays[c] = cfg.DelayChoices[rng.Intn(len(cfg.DelayChoices))]
	}
	for c := 0; c < numColors; c++ {
		step := 1
		if cfg.Batched {
			step = inst.Delays[c]
		}
		for t := 0; t < cfg.MaxRounds; t += step {
			if rng.Bool(0.4) {
				inst.AddJobs(t, sched.Color(c), 1+rng.Intn(cfg.MaxBatch))
			}
		}
	}
	return clampRate(inst.Normalize(), cfg)
}

// mutate perturbs one instance: add a batch, remove a batch, or grow or
// shrink one batch.
func mutate(rng *container.RNG, cfg Config, inst *sched.Instance) *sched.Instance {
	out := inst.Clone()
	switch rng.Intn(3) {
	case 0: // add a batch
		c := sched.Color(rng.Intn(out.NumColors()))
		t := rng.Intn(cfg.MaxRounds)
		if cfg.Batched {
			d := out.Delays[c]
			t = (t / d) * d
		}
		out.AddJobs(t, c, 1+rng.Intn(cfg.MaxBatch))
	case 1: // remove a random batch
		var spots [][2]int
		for r, req := range out.Requests {
			for i := range req {
				spots = append(spots, [2]int{r, i})
			}
		}
		if len(spots) > 0 {
			s := spots[rng.Intn(len(spots))]
			req := out.Requests[s[0]]
			out.Requests[s[0]] = append(req[:s[1]], req[s[1]+1:]...)
		}
	case 2: // resize a random batch
		var spots [][2]int
		for r, req := range out.Requests {
			for i := range req {
				spots = append(spots, [2]int{r, i})
			}
		}
		if len(spots) > 0 {
			s := spots[rng.Intn(len(spots))]
			b := &out.Requests[s[0]][s[1]]
			b.Count += rng.IntRange(-2, 2)
			if b.Count < 1 {
				b.Count = 1
			}
			if b.Count > cfg.MaxBatch*2 {
				b.Count = cfg.MaxBatch * 2
			}
		}
	}
	return clampRate(out.Normalize(), cfg)
}

// clampRate enforces the rate limit for batched searches so §3
// preconditions stay satisfied.
func clampRate(inst *sched.Instance, cfg Config) *sched.Instance {
	if !cfg.Batched {
		return inst
	}
	for _, req := range inst.Requests {
		for i := range req {
			if d := inst.Delays[req[i].Color]; req[i].Count > d {
				req[i].Count = d
			}
		}
	}
	return inst
}
