package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBatchPeriod(t *testing.T) {
	cases := []struct{ d, q int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {7, 2}, {8, 4}, {100, 32}, {128, 64},
	}
	for _, c := range cases {
		if got := batchPeriod(c.d); got != c.q {
			t.Errorf("batchPeriod(%d) = %d, want %d", c.d, got, c.q)
		}
	}
}

func TestBuildVarBatchedProducesBatchedPowerOfTwo(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{1, 2, 3, 5, 12, 100}}
	for r := 0; r < 20; r++ {
		for c := range inst.Delays {
			inst.AddJobs(r, sched.Color(c), 1)
		}
	}
	out := BuildVarBatched(inst)
	if !out.IsBatched() {
		t.Fatal("VarBatch output not batched")
	}
	if !out.HasPowerOfTwoDelays() {
		t.Fatalf("VarBatch output has non-power-of-two delays: %v", out.Delays)
	}
	if out.TotalJobs() != inst.TotalJobs() {
		t.Fatalf("job count changed: %d → %d", inst.TotalJobs(), out.TotalJobs())
	}
}

// TestVarBatchDeadlinesAreConservative: every transformed job's virtual
// deadline (arrival + delay in the batched instance) is at most its
// original deadline, so any schedule for the batched instance is feasible
// for the original one.
func TestVarBatchDeadlinesAreConservative(t *testing.T) {
	delays := []int{2, 3, 5, 8, 12, 100}
	for _, d := range delays {
		q := batchPeriod(d)
		for tt := 0; tt < 3*d; tt++ {
			virtArrival := (tt/q + 1) * q
			virtDeadline := virtArrival + q
			if virtDeadline > tt+d {
				t.Fatalf("D=%d t=%d: virtual deadline %d exceeds real deadline %d",
					d, tt, virtDeadline, tt+d)
			}
			if virtArrival <= tt {
				t.Fatalf("D=%d t=%d: job moved earlier (to %d)", d, tt, virtArrival)
			}
		}
	}
}

func TestSolveConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.ZipfMix(seed, 6, 3, 48, []int{2, 3, 7, 12}, 3, 1.0)
		if inst.TotalJobs() == 0 {
			return true
		}
		res, err := Solve(inst, 8)
		if err != nil {
			return false
		}
		return res.Executed+res.Dropped == inst.TotalJobs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithDetails(t *testing.T) {
	inst := workload.Router(4, 2, 4, 256, 4)
	run, err := SolveWith(inst, 8, NewDLRUEDF())
	if err != nil {
		t.Fatal(err)
	}
	if run.Batched == nil || run.Distribute == nil || run.Result == nil {
		t.Fatal("SolveRun missing pieces")
	}
	if !run.Batched.IsBatched() {
		t.Fatal("intermediate instance not batched")
	}
	if !run.Distribute.Virtual.IsRateLimited() {
		t.Fatal("virtual instance not rate-limited")
	}
	// The final schedule replayed on the original instance drops no more
	// jobs than the virtual run did (real deadlines are looser).
	if run.Result.Dropped > run.Distribute.VirtualResult.Dropped {
		t.Fatalf("final drops %d exceed virtual drops %d",
			run.Result.Dropped, run.Distribute.VirtualResult.Dropped)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	inst := &sched.Instance{Delta: 0, Delays: []int{1}}
	if _, err := Solve(inst, 8); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveDelayOneOnly(t *testing.T) {
	// All delay bounds 1: VarBatch must leave arrivals unchanged.
	inst := &sched.Instance{Delta: 2, Delays: []int{1, 1}}
	for r := 0; r < 16; r++ {
		inst.AddJobs(r, sched.Color(r%2), 2)
	}
	out := BuildVarBatched(inst.Clone())
	for r := range inst.Requests {
		if inst.Requests[r].Jobs() != out.Requests[r].Jobs() {
			t.Fatalf("round %d changed: %d → %d jobs", r, inst.Requests[r].Jobs(), out.Requests[r].Jobs())
		}
	}
	if _, err := Solve(inst, 8); err != nil {
		t.Fatal(err)
	}
}
