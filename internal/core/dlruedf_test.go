package core

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestDLRUEDFRequiresMultipleOfFour(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{1}}
	inst.AddJobs(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("n=6 did not panic")
		}
	}()
	_, _ = sched.Run(inst, NewDLRUEDF(), sched.Options{N: 6})
}

// TestReplicationInvariant checks §3.1's invariant on every recorded
// mini-round: each cached color occupies exactly two locations and at
// most n/2 distinct colors are cached.
func TestReplicationInvariant(t *testing.T) {
	inst := workload.RandomBatched(3, 12, 3, 128, []int{1, 2, 4, 8}, 0.9, 0.7, true)
	res, err := sched.Run(inst, NewDLRUEDF(), sched.Options{N: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range res.Schedule.Assign {
		count := map[sched.Color]int{}
		for _, c := range row {
			if c != sched.NoColor {
				count[c]++
			}
		}
		if len(count) > 4 {
			t.Fatalf("round %d: %d distinct colors cached, capacity 4", r, len(count))
		}
		for c, n := range count {
			if n != 2 {
				t.Fatalf("round %d: color %d cached in %d locations, want 2", r, c, n)
			}
		}
	}
}

// TestSurvivesAppendixA: unlike ΔLRU, the combined algorithm executes the
// long-delay backlog of the Appendix A construction.
func TestSurvivesAppendixA(t *testing.T) {
	inst, err := workload.AppendixA(8, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	long := workload.AppendixALongColor(8)
	res, err := sched.Run(inst, NewDLRUEDF(), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.DropsByColor[long] != 0 {
		t.Fatalf("ΔLRU-EDF dropped %d long jobs on Appendix A", res.DropsByColor[long])
	}
}

// TestBeatsEDFOnAppendixB: the combined algorithm pays no more
// reconfiguration than pure EDF on the thrashing construction.
func TestBeatsEDFOnAppendixB(t *testing.T) {
	inst, err := workload.AppendixB(8, 9, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	edf, err := sched.Run(inst.Clone(), policy.NewEDF(), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	combo, err := sched.Run(inst.Clone(), NewDLRUEDF(), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if combo.Cost.Total() > edf.Cost.Total() {
		t.Fatalf("ΔLRU-EDF (%d) worse than EDF (%d) on Appendix B", combo.Cost.Total(), edf.Cost.Total())
	}
}

// TestDropClassificationSumsToTotal: eligible + ineligible drops equal the
// engine's drop count.
func TestDropClassificationSumsToTotal(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 10, 4, 96, []int{1, 2, 4, 8}, 0.8, 0.6, true)
		pol := NewDLRUEDF()
		res, err := sched.Run(inst, pol, sched.Options{N: 8})
		if err != nil {
			return false
		}
		return pol.EligibleDrops()+pol.IneligibleDrops() == int64(res.Dropped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochLemmasProperty: Lemma 3.3 (reconfig ≤ 4·epochs·Δ) and Lemma
// 3.4 (ineligible drops ≤ epochs·Δ) hold on arbitrary rate-limited
// batched inputs.
func TestEpochLemmasProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 12, 3, 128, []int{1, 2, 4, 8, 16}, 0.9, 0.6, true)
		pol := NewDLRUEDF()
		res, err := sched.Run(inst, pol, sched.Options{N: 16})
		if err != nil {
			return false
		}
		epochs := pol.Tracker().NumEpochs()
		if res.Cost.Reconfig > int64(4*epochs*inst.Delta) {
			return false
		}
		return pol.IneligibleDrops() <= int64(epochs*inst.Delta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUShareExtremes(t *testing.T) {
	inst := workload.RandomBatched(5, 8, 3, 64, []int{1, 2, 4}, 0.8, 0.7, true)
	for _, share := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := sched.Run(inst.Clone(), NewDLRUEDF(WithLRUShare(share)), sched.Options{N: 8})
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			t.Fatalf("share %v: conservation broken", share)
		}
	}
}

func TestWithoutReplicationUsesAllSlots(t *testing.T) {
	inst := workload.RandomBatched(6, 12, 2, 64, []int{1, 2, 4}, 0.9, 0.8, true)
	res, err := sched.Run(inst, NewDLRUEDF(WithoutReplication()), sched.Options{N: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	maxDistinct := 0
	for _, row := range res.Schedule.Assign {
		seen := map[sched.Color]bool{}
		for _, c := range row {
			if c != sched.NoColor {
				seen[c] = true
			}
		}
		if len(seen) > maxDistinct {
			maxDistinct = len(seen)
		}
	}
	if maxDistinct <= 4 {
		t.Fatalf("no-replication variant never cached more than %d distinct colors", maxDistinct)
	}
}

func TestTimestampRecordingEnablesSuperEpochs(t *testing.T) {
	inst := workload.RandomBatched(7, 12, 2, 128, []int{2, 4, 8}, 0.9, 0.8, true)
	pol := NewDLRUEDF(WithTimestampRecording())
	if _, err := sched.Run(inst, pol, sched.Options{N: 8}); err != nil {
		t.Fatal(err)
	}
	if len(pol.Tracker().TsEventLog()) == 0 {
		t.Fatal("no timestamp events recorded")
	}
	if pol.Tracker().SuperEpochs(2) < 1 {
		t.Fatal("expected at least one complete super-epoch")
	}
}

// TestCachedSubsetOfEligible: the recorded schedule never configures a
// color that has not yet received Δ jobs (a necessary condition for
// eligibility).
func TestCachedSubsetOfEligible(t *testing.T) {
	delta := 4
	inst := workload.RandomBatched(8, 10, delta, 128, []int{1, 2, 4, 8}, 0.8, 0.6, true)
	res, err := sched.Run(inst, NewDLRUEDF(), sched.Options{N: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	cum := make([]int, inst.NumColors())
	for r, row := range res.Schedule.Assign {
		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				cum[b.Color] += b.Count
			}
		}
		for _, c := range row {
			if c != sched.NoColor && cum[c] < delta {
				t.Fatalf("round %d: configured color %d with only %d < Δ arrivals", r, c, cum[c])
			}
		}
	}
}
