package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestAdaptiveShareStaysInBounds(t *testing.T) {
	inst := workload.Router(19, 4, 8, 1024, 10)
	pol := NewDLRUEDF(WithAdaptiveSplit())
	if _, err := sched.Run(inst, pol, sched.Options{N: 16}); err != nil {
		t.Fatal(err)
	}
	share := pol.CurrentLRUShare()
	if share < 0.25-1e-9 || share > 0.75+1e-9 {
		t.Fatalf("adaptive share %v left [0.25, 0.75]", share)
	}
}

func TestAdaptiveControllerDirections(t *testing.T) {
	a := &adaptiveState{step: 0.02, minShare: 0.25, maxShare: 0.75, decay: 0.9}
	// Persistent reconfiguration pressure raises the share to its cap.
	share := 0.5
	for i := 0; i < 200; i++ {
		share = a.observe(share, 10, 0)
	}
	if share != 0.75 {
		t.Fatalf("reconfig pressure: share = %v, want 0.75", share)
	}
	// Persistent drop pressure lowers it to the floor.
	b := &adaptiveState{step: 0.02, minShare: 0.25, maxShare: 0.75, decay: 0.9}
	share = 0.5
	for i := 0; i < 200; i++ {
		share = b.observe(share, 0, 10)
	}
	if share != 0.25 {
		t.Fatalf("drop pressure: share = %v, want 0.25", share)
	}
	// Balanced costs leave the share alone.
	c := &adaptiveState{step: 0.02, minShare: 0.25, maxShare: 0.75, decay: 0.9}
	share = 0.5
	for i := 0; i < 200; i++ {
		share = c.observe(share, 5, 5)
	}
	if share != 0.5 {
		t.Fatalf("balanced pressure moved the share to %v", share)
	}
}

func TestAdaptiveConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 12, 4, 96, []int{1, 2, 4, 8}, 0.9, 0.7, true)
		pol := NewDLRUEDF(WithAdaptiveSplit())
		res, err := sched.Run(inst, pol, sched.Options{N: 8})
		if err != nil {
			return false
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			return false
		}
		// Quota bookkeeping must stay consistent with the capacity.
		return pol.lruQuota+pol.edfQuota == pol.cache.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedShareUnaffectedByAdaptTick(t *testing.T) {
	// Without the option, adaptTick must be a no-op: two identical runs —
	// one fresh policy per run — give identical costs, and the share
	// never moves.
	inst := workload.Router(5, 2, 4, 256, 4)
	pol := NewDLRUEDF()
	res1, err := sched.Run(inst.Clone(), pol, sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pol.CurrentLRUShare() != 0.5 {
		t.Fatalf("fixed share moved to %v", pol.CurrentLRUShare())
	}
	res2, err := sched.Run(inst.Clone(), NewDLRUEDF(), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cost != res2.Cost {
		t.Fatalf("fixed policy not deterministic: %v vs %v", res1.Cost, res2.Cost)
	}
}
