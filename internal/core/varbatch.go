package core

import (
	"fmt"

	"repro/internal/sched"
)

// batchPeriod returns the VarBatch batching period q for a delay bound D:
// for D ≥ 2 with 2^j ≤ D < 2^{j+1}, q = 2^{j-1} (§5.1 for power-of-two
// bounds, where q = D/2; §5.3 for arbitrary bounds). Colors with D = 1
// are already batched and keep their arrivals (q = 0 marks them).
func batchPeriod(d int) int {
	if d <= 1 {
		return 0
	}
	return sched.PowerOfTwoAtMost(d) / 2
}

// BuildVarBatched constructs the batched instance of §5.1 step 1: every
// job of a color with period q arriving in half-block [i·q, (i+1)·q) is
// delayed until round (i+1)·q and given delay bound q, restricting its
// execution to that half-block. The resulting instance is batched
// ([Δ | 1 | q_ℓ | q_ℓ]) with power-of-two delay bounds, and any schedule
// feasible for it is feasible for the original instance because each
// job's virtual deadline (i+2)·q never exceeds its real deadline.
func BuildVarBatched(inst *sched.Instance) *sched.Instance {
	inst.Normalize()
	delays := make([]int, inst.NumColors())
	for c, d := range inst.Delays {
		if q := batchPeriod(d); q > 0 {
			delays[c] = q
		} else {
			delays[c] = 1
		}
	}
	out := &sched.Instance{
		Name:   inst.Name + "+varbatched",
		Delta:  inst.Delta,
		Delays: delays,
	}
	for t, req := range inst.Requests {
		for _, b := range req {
			q := batchPeriod(inst.Delays[b.Color])
			arrival := t
			if q > 0 {
				arrival = (t/q + 1) * q
			}
			out.AddJobs(arrival, b.Color, b.Count)
		}
	}
	out.Normalize()
	return out
}

// SolveRun carries every intermediate of a Solve invocation.
type SolveRun struct {
	// Batched is the §5.1 transformed instance and Distribute the full
	// §4.1 reduction run on it.
	Batched    *sched.Instance
	Distribute *DistributeRun
	// Result is the replay of the final schedule on the original
	// instance: the cost VarBatch actually incurs for [Δ | 1 | D_ℓ | 1].
	Result *sched.Result
}

// SolveWith runs the complete layered solver — VarBatch (§5.1) on top of
// Distribute (§4.1) on top of the given core policy — on an arbitrary
// instance of the main problem [Δ | 1 | D_ℓ | 1].
func SolveWith(inst *sched.Instance, n int, inner sched.Policy) (*SolveRun, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	batched := BuildVarBatched(inst)
	if !batched.IsBatched() {
		return nil, fmt.Errorf("core: VarBatch produced a non-batched instance for %q", inst.Name)
	}
	drun, err := DistributeWith(batched, n, inner)
	if err != nil {
		return nil, err
	}
	final := drun.Schedule.Clone()
	final.Policy = "VarBatch(" + drun.Schedule.Policy + ")"
	res, err := sched.Replay(inst, final)
	if err != nil {
		return nil, err
	}
	return &SolveRun{Batched: batched, Distribute: drun, Result: res}, nil
}

// Solve is the paper's headline online algorithm (Theorem 3): VarBatch ∘
// Distribute ∘ ΔLRU-EDF, resource competitive for [Δ | 1 | D_ℓ | 1].
func Solve(inst *sched.Instance, n int) (*sched.Result, error) {
	run, err := SolveWith(inst, n, NewDLRUEDF())
	if err != nil {
		return nil, err
	}
	return run.Result, nil
}
