package core

import (
	"fmt"

	"repro/internal/sched"
)

// ColorMapping relates a transformed instance's virtual colors to the
// original colors.
type ColorMapping struct {
	// base[ℓ] is the first virtual color of original color ℓ; original
	// color ℓ owns virtual colors base[ℓ] … base[ℓ]+width[ℓ]-1.
	base  []sched.Color
	back  []sched.Color // virtual → original
	total int
}

// NumVirtual reports the number of virtual colors.
func (m *ColorMapping) NumVirtual() int { return m.total }

// ToOriginal maps a virtual color back to its original color.
func (m *ColorMapping) ToOriginal(v sched.Color) sched.Color { return m.back[v] }

// Virtual returns virtual color (ℓ, j).
func (m *ColorMapping) Virtual(l sched.Color, j int) sched.Color {
	return m.base[l] + sched.Color(j)
}

// BuildDistributed constructs the rate-limited instance I′ of §4.1 step 1
// from a batched instance I: each color ℓ job with rank r within its
// request is recolored to the virtual color (ℓ, ⌊r/D_ℓ⌋), so at most D_ℓ
// jobs of each virtual color arrive per multiple of D_ℓ. Virtual color
// (ℓ, j) keeps delay bound D_ℓ.
//
// The input must be batched ([Δ | 1 | D_ℓ | D_ℓ]); BuildDistributed
// returns an error otherwise.
func BuildDistributed(inst *sched.Instance) (*sched.Instance, *ColorMapping, error) {
	if !inst.IsBatched() {
		return nil, nil, fmt.Errorf("core: BuildDistributed needs a batched instance (got %q)", inst.Name)
	}
	inst.Normalize()
	nc := inst.NumColors()

	// width[ℓ] = max over requests of ⌈count/D_ℓ⌉, the number of virtual
	// colors original color ℓ needs.
	width := make([]int, nc)
	for _, req := range inst.Requests {
		for _, b := range req {
			d := inst.Delays[b.Color]
			w := (b.Count + d - 1) / d
			if w > width[b.Color] {
				width[b.Color] = w
			}
		}
	}
	m := &ColorMapping{base: make([]sched.Color, nc)}
	for l := 0; l < nc; l++ {
		m.base[l] = sched.Color(m.total)
		m.total += width[l]
	}
	m.back = make([]sched.Color, m.total)
	delays := make([]int, m.total)
	for l := 0; l < nc; l++ {
		for j := 0; j < width[l]; j++ {
			v := int(m.base[l]) + j
			m.back[v] = sched.Color(l)
			delays[v] = inst.Delays[l]
		}
	}

	out := &sched.Instance{
		Name:     inst.Name + "+distributed",
		Delta:    inst.Delta,
		Delays:   delays,
		Requests: make([]sched.Request, len(inst.Requests)),
	}
	for i, req := range inst.Requests {
		var vr sched.Request
		for _, b := range req {
			d := inst.Delays[b.Color]
			remaining := b.Count
			for j := 0; remaining > 0; j++ {
				take := d
				if take > remaining {
					take = remaining
				}
				vr = append(vr, sched.Batch{Color: m.Virtual(b.Color, j), Count: take})
				remaining -= take
			}
		}
		out.Requests[i] = vr
	}
	return out, m, nil
}

// DistributeRun carries every intermediate of a Distribute invocation so
// tests and experiments can check Lemma 4.2 (the mapped schedule costs no
// more than the virtual one).
type DistributeRun struct {
	// Virtual is the rate-limited instance I′ and VirtualResult the inner
	// policy's result on it (schedule S′ of §4.1 step 2).
	Virtual       *sched.Instance
	Mapping       *ColorMapping
	VirtualResult *sched.Result
	// Schedule is S, the color-mapped schedule for the input instance
	// (§4.1 step 3), and Result its replay on the input instance.
	Schedule *sched.Schedule
	Result   *sched.Result
}

// DistributeWith runs the §4.1 reduction on a batched instance with n
// resources, using inner as the algorithm for the rate-limited core
// problem (the paper uses ΔLRU-EDF; tests also exercise others).
func DistributeWith(inst *sched.Instance, n int, inner sched.Policy) (*DistributeRun, error) {
	virtual, mapping, err := BuildDistributed(inst)
	if err != nil {
		return nil, err
	}
	vres, err := sched.Run(virtual, inner, sched.Options{N: n, Record: true})
	if err != nil {
		return nil, err
	}
	mapped := vres.Schedule.MapColors(mapping.ToOriginal)
	mapped.Policy = "Distribute(" + inner.Name() + ")"
	res, err := sched.Replay(inst, mapped)
	if err != nil {
		return nil, err
	}
	return &DistributeRun{
		Virtual:       virtual,
		Mapping:       mapping,
		VirtualResult: vres,
		Schedule:      mapped,
		Result:        res,
	}, nil
}

// Distribute runs the §4.1 reduction with ΔLRU-EDF as the core algorithm
// (Theorem 2) and returns the result on the input instance.
func Distribute(inst *sched.Instance, n int) (*sched.Result, error) {
	run, err := DistributeWith(inst, n, NewDLRUEDF())
	if err != nil {
		return nil, err
	}
	return run.Result, nil
}
