package core

import "repro/internal/sched"

// adaptiveState implements the ARC-inspired extension discussed in the
// paper's related work (Megiddo & Modha's Adaptive Replacement Cache
// self-tunes the balance between its recency and frequency lists): instead
// of fixing the LRU/EDF capacity split at n/4 + n/4, the split adapts to
// the observed cost mix. When recent cost is dominated by
// reconfigurations (thrashing), the LRU half grows, adding stability; when
// drops dominate (underutilization), the EDF half grows, adding
// responsiveness. The share moves by a small step per round within
// [minShare, maxShare], so the policy never fully loses either principle —
// the property the paper's counterexamples show is essential.
type adaptiveState struct {
	step     float64
	minShare float64
	maxShare float64
	decay    float64

	reconfigEWMA float64
	dropEWMA     float64
}

// WithAdaptiveSplit enables the adaptive LRU/EDF split. It is an
// extension beyond the paper (ablation A5 evaluates it); the analysis of
// Theorem 1 covers only the fixed 50/50 split.
func WithAdaptiveSplit() Option {
	return func(d *DLRUEDF) {
		d.adaptive = &adaptiveState{
			step:     0.02,
			minShare: 0.25,
			maxShare: 0.75,
			decay:    0.9,
		}
	}
}

// observe folds one round's costs into the moving averages and nudges the
// share. reconfigCost and dropCost are the raw unit counts of the round
// scaled by their prices.
func (a *adaptiveState) observe(share, reconfigCost, dropCost float64) float64 {
	a.reconfigEWMA = a.decay*a.reconfigEWMA + (1-a.decay)*reconfigCost
	a.dropEWMA = a.decay*a.dropEWMA + (1-a.decay)*dropCost
	switch {
	case a.reconfigEWMA > a.dropEWMA*1.25:
		share += a.step
	case a.dropEWMA > a.reconfigEWMA*1.25:
		share -= a.step
	}
	if share < a.minShare {
		share = a.minShare
	}
	if share > a.maxShare {
		share = a.maxShare
	}
	return share
}

// adaptTick is called by DLRUEDF at the start of each round to refresh the
// quotas from the adapted share. roundDrops and roundReconfigs are the
// previous round's counts.
func (d *DLRUEDF) adaptTick() {
	if d.adaptive == nil {
		return
	}
	reconfigCost := float64(d.roundReconfigs * d.env.Delta)
	dropCost := float64(d.roundDrops)
	d.roundReconfigs, d.roundDrops = 0, 0

	d.lruShare = d.adaptive.observe(d.lruShare, reconfigCost, dropCost)
	cap := d.cache.Capacity()
	d.lruQuota = int(float64(cap) * d.lruShare)
	if d.lruQuota < 0 {
		d.lruQuota = 0
	}
	if d.lruQuota > cap {
		d.lruQuota = cap
	}
	d.edfQuota = cap - d.lruQuota
}

// CurrentLRUShare reports the live LRU share (fixed unless the adaptive
// split is enabled); experiments log it.
func (d *DLRUEDF) CurrentLRUShare() float64 { return d.lruShare }

// noteReconfigs lets the policy approximate its own reconfiguration count
// by diffing the cache content it requests round over round. The engine
// charges the true cost; this counter only feeds the adaptive controller.
func (d *DLRUEDF) noteReconfigs(prev map[sched.Color]bool) int {
	changes := 0
	var cur []sched.Color
	cur = d.cache.Colors(cur)
	for _, c := range cur {
		if !prev[c] {
			changes += 2 // each color occupies two locations (or one without replication)
		}
	}
	return changes
}
