package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBuildDistributedRejectsUnbatched(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{4}}
	inst.AddJobs(1, 0, 1) // round 1 is not a multiple of 4
	if _, _, err := BuildDistributed(inst); err == nil {
		t.Fatal("unbatched instance accepted")
	}
}

func TestBuildDistributedSplitsBatches(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{4}}
	inst.AddJobs(0, 0, 10) // 10 jobs, D=4 → virtual colors (0,0)=4, (0,1)=4, (0,2)=2
	virtual, m, err := BuildDistributed(inst)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVirtual() != 3 {
		t.Fatalf("NumVirtual = %d, want 3", m.NumVirtual())
	}
	if !virtual.IsRateLimited() {
		t.Fatal("distributed instance not rate-limited")
	}
	if virtual.TotalJobs() != inst.TotalJobs() {
		t.Fatalf("job count changed: %d → %d", inst.TotalJobs(), virtual.TotalJobs())
	}
	per := virtual.JobsPerColor()
	want := []int{4, 4, 2}
	for j, w := range want {
		if per[m.Virtual(0, j)] != w {
			t.Fatalf("virtual color (0,%d) has %d jobs, want %d", j, per[m.Virtual(0, j)], w)
		}
	}
	// Mapping roundtrip and delay preservation.
	for v := sched.Color(0); int(v) < m.NumVirtual(); v++ {
		if m.ToOriginal(v) != 0 {
			t.Fatalf("ToOriginal(%d) = %d", v, m.ToOriginal(v))
		}
		if virtual.Delays[v] != 4 {
			t.Fatalf("virtual delay = %d", virtual.Delays[v])
		}
	}
}

func TestBuildDistributedWidthIsMaxOverRounds(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{2, 2}}
	inst.AddJobs(0, 0, 5) // ⌈5/2⌉ = 3 virtual colors
	inst.AddJobs(2, 0, 1) // smaller batch later
	inst.AddJobs(0, 1, 2) // 1 virtual color
	virtual, m, err := BuildDistributed(inst)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVirtual() != 4 {
		t.Fatalf("NumVirtual = %d, want 4", m.NumVirtual())
	}
	if virtual.TotalJobs() != 8 {
		t.Fatalf("TotalJobs = %d", virtual.TotalJobs())
	}
}

// Property (Lemma 4.2): the mapped schedule costs no more than the virtual
// one, and job conservation holds end to end.
func TestDistributeLemma42Property(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 6, 3, 64, []int{2, 4, 8}, 2.0, 0.6, false)
		if inst.TotalJobs() == 0 {
			return true
		}
		run, err := DistributeWith(inst, 8, NewDLRUEDF())
		if err != nil {
			return false
		}
		if run.Result.Cost.Total() > run.VirtualResult.Cost.Total() {
			return false
		}
		return run.Result.Executed+run.Result.Dropped == inst.TotalJobs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeOnAlreadyRateLimitedIsFaithful(t *testing.T) {
	// On a rate-limited instance, the transformation is a relabeling of
	// colors: each batch fits one virtual color, so the job volume per
	// (round, original color) is identical.
	inst := workload.RandomBatched(9, 6, 3, 64, []int{2, 4, 8}, 0.8, 0.6, true)
	virtual, m, err := BuildDistributed(inst)
	if err != nil {
		t.Fatal(err)
	}
	for r := range inst.Requests {
		orig := map[sched.Color]int{}
		for _, b := range inst.Requests[r] {
			orig[b.Color] += b.Count
		}
		mapped := map[sched.Color]int{}
		for _, b := range virtual.Requests[r] {
			mapped[m.ToOriginal(b.Color)] += b.Count
		}
		for c, n := range orig {
			if mapped[c] != n {
				t.Fatalf("round %d color %d: %d jobs became %d", r, c, n, mapped[c])
			}
		}
	}
}

func TestDistributeEndToEnd(t *testing.T) {
	inst := workload.RandomBatched(12, 8, 3, 128, []int{2, 4, 8}, 2.0, 0.5, false)
	res, err := Distribute(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != inst.TotalJobs() {
		t.Fatalf("conservation: %d + %d != %d", res.Executed, res.Dropped, inst.TotalJobs())
	}
}
