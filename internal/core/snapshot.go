package core

import (
	"slices"

	"repro/internal/sched"
	"repro/internal/snap"
)

// dlruedfSnapVersion identifies the ΔLRU-EDF checkpoint layout.
const dlruedfSnapVersion = 1

var _ sched.Snapshotter = (*DLRUEDF)(nil)

// SnapshotState implements sched.Snapshotter. Beyond the tracker and the
// cache it covers the drop classification counters, the live LRU share
// (mutable when the adaptive split is on) and — for the adaptive
// controller — the cost EWMAs plus the previous round's counts and cache
// content the next adaptTick will consume. The per-round scratch
// (lruMark, scratchA/B/C) is rebuilt from zero each round and is not
// state. prevCache is written in ascending color order so identical
// states always serialize to identical bytes.
func (d *DLRUEDF) SnapshotState(e *snap.Encoder) {
	e.Int(dlruedfSnapVersion)
	d.tr.Snapshot(e)
	d.cache.Snapshot(e)
	e.Int64(d.eligibleDrops)
	e.Int64(d.ineligibleDrops)
	e.Float64(d.lruShare)
	e.Int(d.roundDrops)
	e.Int(d.roundReconfigs)
	e.Bool(d.adaptive != nil)
	if d.adaptive != nil {
		e.Float64(d.adaptive.reconfigEWMA)
		e.Float64(d.adaptive.dropEWMA)
		prev := make([]sched.Color, 0, len(d.prevCache))
		for c := range d.prevCache {
			prev = append(prev, c)
		}
		slices.Sort(prev)
		e.Int(len(prev))
		for _, c := range prev {
			e.Int(int(c))
		}
	}
}

// RestoreState implements sched.Snapshotter.
func (d *DLRUEDF) RestoreState(dec *snap.Decoder) error {
	if v := dec.Int(); dec.Err() == nil && v != dlruedfSnapVersion {
		dec.Failf("core: ΔLRU-EDF snapshot version %d, this build reads %d", v, dlruedfSnapVersion)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if err := d.tr.Restore(dec); err != nil {
		return err
	}
	if err := d.cache.Restore(dec); err != nil {
		return err
	}
	eligDrops := dec.Int64()
	ineligDrops := dec.Int64()
	share := dec.Float64()
	roundDrops := dec.Int()
	roundReconfigs := dec.Int()
	adaptive := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if eligDrops < 0 || ineligDrops < 0 || roundDrops < 0 || roundReconfigs < 0 {
		dec.Failf("core: negative drop/reconfig counters in snapshot")
		return dec.Err()
	}
	if adaptive != (d.adaptive != nil) {
		dec.Failf("core: snapshot adaptive-split flag %v, this policy has %v", adaptive, d.adaptive != nil)
		return dec.Err()
	}
	if !adaptive && share != d.lruShare {
		dec.Failf("core: snapshot LRU share %v, this policy is fixed at %v", share, d.lruShare)
		return dec.Err()
	}
	if share < 0 || share > 1 {
		dec.Failf("core: snapshot LRU share %v outside [0, 1]", share)
		return dec.Err()
	}
	d.eligibleDrops, d.ineligibleDrops = eligDrops, ineligDrops
	d.roundDrops, d.roundReconfigs = roundDrops, roundReconfigs
	d.lruShare = share
	// Quotas are a pure function of the share (Reset and adaptTick both
	// derive them the same way), so they are recomputed, not serialized.
	cap := d.cache.Capacity()
	d.lruQuota = int(float64(cap) * share)
	if d.lruQuota < 0 {
		d.lruQuota = 0
	}
	if d.lruQuota > cap {
		d.lruQuota = cap
	}
	d.edfQuota = cap - d.lruQuota
	if adaptive {
		d.adaptive.reconfigEWMA = dec.Float64()
		d.adaptive.dropEWMA = dec.Float64()
		n := dec.Len()
		if err := dec.Err(); err != nil {
			return err
		}
		clear(d.prevCache)
		prev := sched.Color(-1)
		for i := 0; i < n; i++ {
			c := sched.Color(dec.Int())
			if dec.Err() != nil {
				return dec.Err()
			}
			if c <= prev || int(c) >= len(d.env.Delays) {
				dec.Failf("core: invalid previous-cache color %d in snapshot", c)
				return dec.Err()
			}
			d.prevCache[c] = true
			prev = c
		}
	}
	return nil
}
