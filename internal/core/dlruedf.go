// Package core implements the paper's primary contribution: the ΔLRU-EDF
// online algorithm for rate-limited batched arrivals (§3.1.3, Theorem 1),
// algorithm Distribute reducing batched arrivals to the rate-limited case
// (§4.1, Theorem 2), algorithm VarBatch reducing arbitrary arrivals to
// batched arrivals (§5.1, Theorem 3, with the §5.3 extension to arbitrary
// delay bounds), and Solve, the complete layered online solver for the
// main problem [Δ | 1 | D_ℓ | 1].
package core

import (
	"fmt"

	"repro/internal/colorstate"
	"repro/internal/policy"
	"repro/internal/sched"
)

// DLRUEDF is the ΔLRU-EDF reconfiguration scheme of §3.1.3, the novel
// combination of the LRU and EDF principles. The cache holds n/2 distinct
// colors, each replicated in two locations. Half of the distinct capacity
// (n/4 colors) is managed by the ΔLRU rule — the eligible colors with the
// most recent timestamps, idle or not, stay cached, which fights
// thrashing. The other half is managed by the EDF rule over the remaining
// (non-LRU) eligible colors — the top-ranked nonidle colors are brought
// in, which fights underutilization. Evictions always hit the
// lowest-ranked non-LRU color.
//
// Theorem 1: ΔLRU-EDF is resource competitive for rate-limited
// [Δ | 1 | D_ℓ | D_ℓ] with power-of-two delay bounds when n = 8m.
type DLRUEDF struct {
	env   sched.Env
	tr    *colorstate.Tracker
	cache *policy.Cache

	lruShare  float64
	lruQuota  int
	edfQuota  int
	recordTs  bool
	noRepl    bool
	threshold float64
	immediate bool

	// lruMark is indexed by color and marks the current ΔLRU half; a
	// bool slice instead of a map keeps the per-round marking and the
	// protected-eviction checks allocation-free.
	lruMark  []bool
	scratchA []sched.Color
	scratchB []sched.Color
	scratchC []sched.Color

	eligibleDrops   int64
	ineligibleDrops int64

	// Adaptive-split extension (see adaptive.go); nil for the paper's
	// fixed split.
	adaptive       *adaptiveState
	roundDrops     int
	roundReconfigs int
	prevCache      map[sched.Color]bool
}

// Option configures a DLRUEDF instance.
type Option func(*DLRUEDF)

// WithLRUShare sets the fraction of the distinct cache capacity managed by
// the ΔLRU rule (default 0.5, the paper's n/4 + n/4 split). Used by the
// split ablation.
func WithLRUShare(share float64) Option {
	return func(d *DLRUEDF) { d.lruShare = share }
}

// WithTimestampRecording enables recording of timestamp-update events so
// super-epoch statistics (§3.4) can be extracted after a run.
func WithTimestampRecording() Option {
	return func(d *DLRUEDF) { d.recordTs = true }
}

// WithoutReplication disables the two-locations-per-color replication of
// §3.1, caching n distinct colors instead of n/2 duplicated ones. Used by
// the replication ablation only; the analysis assumes replication.
func WithoutReplication() Option {
	return func(d *DLRUEDF) { d.noRepl = true }
}

// WithEligibilityThreshold scales the counter threshold at which a color
// becomes eligible: threshold = max(1, factor·Δ). The paper uses factor 1;
// the threshold ablation sweeps it.
func WithEligibilityThreshold(factor float64) Option {
	return func(d *DLRUEDF) { d.threshold = factor }
}

// WithImmediateTimestamps switches to the ablation timestamp rule that
// advances timestamps at wrap time instead of at the next multiple of D_ℓ.
func WithImmediateTimestamps() Option {
	return func(d *DLRUEDF) { d.immediate = true }
}

// NewDLRUEDF returns a fresh ΔLRU-EDF policy.
func NewDLRUEDF(opts ...Option) *DLRUEDF {
	d := &DLRUEDF{lruShare: 0.5}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name implements sched.Policy.
func (d *DLRUEDF) Name() string { return "DLRU-EDF" }

// Reset implements sched.Policy.
func (d *DLRUEDF) Reset(env sched.Env) {
	if env.N < 4 || env.N%4 != 0 {
		panic(fmt.Sprintf("core: ΔLRU-EDF needs n divisible by 4 and ≥ 4, got %d", env.N))
	}
	d.env = env
	threshold := env.Delta
	if d.threshold > 0 {
		threshold = int(d.threshold * float64(env.Delta))
		if threshold < 1 {
			threshold = 1
		}
	}
	d.tr = colorstate.NewWithThreshold(env.Delta, threshold, env.Delays)
	d.tr.SetImmediateTimestamps(d.immediate)
	if d.recordTs {
		d.tr.RecordTsEvents()
	}
	d.cache = policy.NewCache(env.N, !d.noRepl)
	cap := d.cache.Capacity()
	d.lruQuota = int(float64(cap) * d.lruShare)
	if d.lruQuota < 0 {
		d.lruQuota = 0
	}
	if d.lruQuota > cap {
		d.lruQuota = cap
	}
	d.edfQuota = cap - d.lruQuota
	d.lruMark = make([]bool, len(env.Delays))
	d.eligibleDrops, d.ineligibleDrops = 0, 0
	d.roundDrops, d.roundReconfigs = 0, 0
	d.prevCache = make(map[sched.Color]bool, cap)
}

// Tracker exposes the color-state tracker for instrumentation.
func (d *DLRUEDF) Tracker() *colorstate.Tracker { return d.tr }

// EligibleDrops reports the drop cost incurred on eligible jobs so far
// (the quantity bounded by Lemma 3.2).
func (d *DLRUEDF) EligibleDrops() int64 { return d.eligibleDrops }

// IneligibleDrops reports the drop cost incurred on ineligible jobs so far
// (the quantity bounded by Lemma 3.4).
func (d *DLRUEDF) IneligibleDrops() int64 { return d.ineligibleDrops }

// OnDrop implements sched.DropObserver: drops are classified by the
// color's eligibility at drop time (§3.2). The drop phase precedes the
// round's ineligibility rule, so a job dropped in the same round its color
// turns ineligible counts as eligible, matching the phase order in §3.1.
func (d *DLRUEDF) OnDrop(round int, c sched.Color, count int) {
	if d.tr.Eligible(c) {
		d.eligibleDrops += int64(count)
	} else {
		d.ineligibleDrops += int64(count)
	}
	d.roundDrops += count
}

// Reconfigure implements sched.Policy.
func (d *DLRUEDF) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 {
		d.adaptTick()
		d.tr.BeginRound(ctx.Round, d.cache.Contains)
		for _, b := range ctx.Arrivals {
			d.tr.OnArrival(ctx.Round, b.Color, b.Count)
		}
	}

	// ΔLRU half: the lruQuota eligible colors with the most recent
	// timestamps (idleness ignored).
	elig := d.tr.AppendEligible(d.scratchA[:0])
	policy.SortByRecency(elig, d.tr, d.cache.Contains)
	lruWant := elig
	if len(lruWant) > d.lruQuota {
		lruWant = lruWant[:d.lruQuota]
	}
	clear(d.lruMark)
	for _, c := range lruWant {
		d.lruMark[c] = true
	}

	// Non-LRU eligible colors in EDF rank order (§3.1.2 ranking); this
	// list contains every cached non-LRU color, so it doubles as the
	// eviction order (worst rank evicted first).
	nonLRU := d.scratchB[:0]
	for _, c := range elig {
		if !d.lruMark[c] {
			nonLRU = append(nonLRU, c)
		}
	}
	policy.RankEligible(nonLRU, d.tr, ctx)

	// Bring the LRU colors in, evicting the lowest-ranked non-LRU cached
	// color when full. Since |LRU| ≤ capacity/2 there is always a non-LRU
	// color to evict.
	for _, c := range lruWant {
		if d.cache.Contains(c) {
			continue
		}
		if d.cache.Len() == d.cache.Capacity() {
			if !policy.EvictWorst(d.cache, nonLRU, d.lruMark) {
				panic("core: ΔLRU-EDF could not make room for an LRU color")
			}
		}
		d.cache.Insert(c)
	}

	// EDF half: admit the nonidle non-LRU colors in the top edfQuota
	// rankings, evicting the lowest-ranked non-LRU cached colors.
	policy.AdmitTop(d.cache, nonLRU, d.edfQuota, d.lruMark, ctx)

	if d.adaptive != nil && ctx.Mini == 0 {
		d.roundReconfigs += d.noteReconfigs(d.prevCache)
		clear(d.prevCache)
		d.scratchC = d.cache.Colors(d.scratchC[:0])
		for _, c := range d.scratchC {
			d.prevCache[c] = true
		}
	}

	d.scratchA = elig[:0]
	d.scratchB = nonLRU[:0]
	return d.cache.Assignment()
}
