package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestCorollary32EpochOverlap validates Corollary 3.2 empirically: for
// any complete super-epoch (a window in which 2m = n/4 distinct colors
// update their timestamps), at most three epochs of any single color
// overlap the window.
func TestCorollary32EpochOverlap(t *testing.T) {
	const n = 16
	width := n / 4 // 2m with n = 8m
	run := func(inst *sched.Instance) {
		t.Helper()
		pol := NewDLRUEDF(WithTimestampRecording())
		if _, err := sched.Run(inst, pol, sched.Options{N: n}); err != nil {
			t.Fatal(err)
		}
		tr := pol.Tracker()
		windows := tr.SuperEpochWindows(width)
		for _, w := range windows {
			for c := 0; c < inst.NumColors(); c++ {
				if got := tr.EpochsOverlapping(sched.Color(c), w[0], w[1]); got > 3 {
					t.Fatalf("%s: color %d has %d epochs overlapping super-epoch [%d,%d], Corollary 3.2 bounds it by 3",
						inst.Name, c, got, w[0], w[1])
				}
			}
		}
	}
	run(workload.RandomBatched(41, 20, 3, 512, []int{1, 2, 4, 8}, 0.9, 0.7, true))
	run(workload.RandomBatched(42, 12, 5, 512, []int{2, 4, 8, 16}, 0.8, 0.6, true))
	instA, err := workload.AppendixA(n, 2, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	run(instA)
}

// TestCorollary32Property repeats the check across random seeds.
func TestCorollary32Property(t *testing.T) {
	const n = 8
	width := n / 4
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 10, 3, 192, []int{1, 2, 4, 8}, 0.9, 0.6, true)
		pol := NewDLRUEDF(WithTimestampRecording())
		if _, err := sched.Run(inst, pol, sched.Options{N: n}); err != nil {
			return false
		}
		tr := pol.Tracker()
		for _, w := range tr.SuperEpochWindows(width) {
			for c := 0; c < inst.NumColors(); c++ {
				if tr.EpochsOverlapping(sched.Color(c), w[0], w[1]) > 3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
