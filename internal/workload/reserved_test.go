package workload

import "testing"

func TestReservedFleetShape(t *testing.T) {
	insts, res, err := ReservedFleet(42, 8, 8, 64, 1.0, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 8 || len(res) != 8 {
		t.Fatalf("fleet sizes %d/%d, want 8/8", len(insts), len(res))
	}
	// Traces must be exactly SkewedFleet's: the reservation vector rides
	// along, it does not perturb the workload.
	ref, err := SkewedFleet(42, 8, 8, 64, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if insts[i].Name != ref[i].Name || insts[i].NumRounds() != ref[i].NumRounds() {
			t.Fatalf("tenant %d trace differs from SkewedFleet: %q/%d vs %q/%d",
				i, insts[i].Name, insts[i].NumRounds(), ref[i].Name, ref[i].NumRounds())
		}
	}
	// Victims jointly feasible (Σ rates ≤ 0.5 of a unit shard), the
	// adversary infeasible against their residual (0.9 > 1 − 0.5), every
	// delay past the default shard bound.
	var victims float64
	for i := 1; i < len(res); i++ {
		if res[i].Rate <= 0 || res[i].Delay < 2 {
			t.Fatalf("victim %d reservation %+v invalid", i, res[i])
		}
		victims += res[i].Rate
	}
	if victims > 0.5+1e-9 {
		t.Fatalf("victim rates sum to %g, want ≤ 0.5", victims)
	}
	if res[0].Rate <= 1-victims {
		t.Fatalf("adversary rate %g fits the residual %g; want infeasible", res[0].Rate, 1-victims)
	}
	if res[0].Rate > 1 {
		t.Fatalf("adversary rate %g exceeds a whole shard; the server rejects that as a bad request, not at admission", res[0].Rate)
	}
}

func TestReservedFleetDelayDefault(t *testing.T) {
	_, res, err := ReservedFleet(1, 4, 8, 32, 1.0, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Delay != 64 {
			t.Fatalf("reservation %d delay %g, want defaulted 64", i, r.Delay)
		}
	}
}
