package workload

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// Params carries the knobs the named generators accept; zero values get
// sensible defaults. The CLI tools (rrsim, rrtrace) and tests build
// workloads through ByName so the two stay in sync.
type Params struct {
	Seed   uint64
	Delta  int
	Rounds int
	Load   float64
	// N, J, K parameterize the appendix constructions; N doubles as the
	// short-color count basis of the thrashing scenario.
	N, J, K int
	// Gap is the idle-gap length of the thrashing scenario.
	Gap int
}

func (p *Params) fill() {
	if p.Delta == 0 {
		p.Delta = 8
	}
	if p.Rounds == 0 {
		p.Rounds = 1024
	}
	if p.Load == 0 {
		p.Load = 6
	}
	if p.N == 0 {
		p.N = 8
	}
	if p.J == 0 {
		p.J = 6
	}
	if p.K == 0 {
		p.K = 8
	}
	if p.Gap == 0 {
		p.Gap = 32
	}
}

// Names lists the workloads ByName accepts, sorted.
func Names() []string {
	names := []string{"router", "datacenter", "zipf", "batched", "ratelimited", "appendixA", "appendixB", "thrashing", "continuous"}
	sort.Strings(names)
	return names
}

// Tenant builds the per-tenant variant of a named workload: the same
// family and parameters, but a seed derived deterministically from
// (p.Seed, tenant) by a splitmix64 step, so every tenant of a
// multi-tenant run gets an independent trace while any two parties that
// agree on (name, params, tenant index) — a load generator and the
// verification harness checking the server's results, say — reconstruct
// bit-identical instances.
func Tenant(name string, p Params, tenant int) (*sched.Instance, error) {
	p.Seed = splitmix(p.Seed, tenant)
	inst, err := ByName(name, p)
	if err != nil {
		return nil, err
	}
	inst.Name = fmt.Sprintf("%s/tenant%d", inst.Name, tenant)
	return inst, nil
}

// ByName builds one of the repository's standard workloads by name. See
// Names for the accepted set.
func ByName(name string, p Params) (*sched.Instance, error) {
	p.fill()
	switch name {
	case "router":
		return Router(p.Seed, 4, p.Delta, p.Rounds, p.Load), nil
	case "datacenter":
		return Datacenter(p.Seed, 12, p.Delta, 256, (p.Rounds+255)/256, p.Load), nil
	case "zipf":
		return ZipfMix(p.Seed, 24, p.Delta, p.Rounds, []int{2, 4, 8, 16, 32, 64}, p.Load, 1.0), nil
	case "batched":
		return RandomBatched(p.Seed, 24, p.Delta, p.Rounds, []int{1, 2, 4, 8, 16}, 2.0, 0.7, false), nil
	case "ratelimited":
		return RandomBatched(p.Seed, 24, p.Delta, p.Rounds, []int{1, 2, 4, 8, 16}, 0.8, 0.7, true), nil
	case "appendixA":
		return AppendixA(p.N, p.Delta, p.J, p.K)
	case "appendixB":
		return AppendixB(p.N, p.Delta, p.J, p.K)
	case "thrashing":
		return Thrashing(p.N/2, p.Delta, 8, 2048, 4, p.Gap, p.Rounds)
	case "continuous":
		return Continuous(p.Seed, 4, p.Delta, p.Rounds, p.Load, 1.0)
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (known: %v)", name, Names())
	}
}
