package workload

import "testing"

func TestContinuousShape(t *testing.T) {
	inst, err := Continuous(5, 4, 8, 1024, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumColors() != 16 {
		t.Fatalf("NumColors = %d", inst.NumColors())
	}
	jobs := float64(inst.TotalJobs())
	if jobs < 0.4*10*1024 || jobs > 2.5*10*1024 {
		t.Fatalf("continuous volume %v far from load×rounds = %v", jobs, 10*1024)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumRounds() > 1024 {
		t.Fatalf("NumRounds = %d exceeds requested horizon", inst.NumRounds())
	}
}

func TestContinuousDeterministic(t *testing.T) {
	a, err := Continuous(7, 2, 4, 256, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Continuous(7, 2, 4, 256, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalJobs() != b.TotalJobs() {
		t.Fatal("same seed, different volumes")
	}
}

func TestContinuousFinerRounds(t *testing.T) {
	coarse, err := Continuous(3, 2, 4, 256, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Continuous(3, 2, 4, 256, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Same wall-clock horizon, finer rounds: comparable volume.
	cj, fj := float64(coarse.TotalJobs()), float64(fine.TotalJobs())
	if fj < 0.5*cj || fj > 2*cj {
		t.Fatalf("volumes diverge across dt: %v vs %v", cj, fj)
	}
	// Wall-clock QoS tolerances are preserved: halving the round duration
	// doubles every delay bound in rounds.
	if fine.Delays[0] != 2*coarse.Delays[0] {
		t.Fatalf("delay scaling wrong: coarse %d, fine %d", coarse.Delays[0], fine.Delays[0])
	}
}

func TestContinuousViaByName(t *testing.T) {
	inst, err := ByName("continuous", Params{Seed: 2, Rounds: 256, Load: 4})
	if err != nil {
		t.Fatal(err)
	}
	if inst.TotalJobs() == 0 {
		t.Fatal("empty continuous workload")
	}
}
