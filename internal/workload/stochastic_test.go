package workload

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Name:   "det",
		Delta:  2,
		Rounds: 64,
		Seed:   5,
		Colors: []ColorSpec{
			{Delay: 4, Rate: 1.5},
			{Delay: 8, Rate: 0.5, Burst: &BurstSpec{OnMean: 8, OffMean: 16}},
		},
	}
	a := Generate(spec)
	b := Generate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs produced different instances")
	}
	spec.Seed = 6
	c := Generate(spec)
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical requests")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRespectsRoundsAndDelays(t *testing.T) {
	spec := Spec{
		Name: "bounds", Delta: 1, Rounds: 32, Seed: 1,
		Colors: []ColorSpec{{Delay: 4, Rate: 2}},
	}
	inst := Generate(spec)
	if inst.NumRounds() > 32 {
		t.Fatalf("NumRounds = %d", inst.NumRounds())
	}
	if inst.Delays[0] != 4 {
		t.Fatalf("delay = %d", inst.Delays[0])
	}
	if inst.TotalJobs() == 0 {
		t.Fatal("rate-2 source produced no jobs in 32 rounds")
	}
}

func TestBurstySourceHasQuietPeriods(t *testing.T) {
	spec := Spec{
		Name: "bursty", Delta: 1, Rounds: 512, Seed: 3,
		Colors: []ColorSpec{{Delay: 4, Rate: 5, Burst: &BurstSpec{OnMean: 10, OffMean: 50}}},
	}
	inst := Generate(spec)
	quiet := 0
	for _, r := range inst.Requests {
		if r.Jobs() == 0 {
			quiet++
		}
	}
	if quiet < 100 {
		t.Fatalf("bursty source quiet in only %d of 512 rounds", quiet)
	}
}

func TestRandomBatchedPredicates(t *testing.T) {
	rl := RandomBatched(4, 12, 3, 128, []int{1, 2, 4, 8}, 0.9, 0.8, true)
	if !rl.IsBatched() || !rl.IsRateLimited() {
		t.Fatal("rate-limited generator violated its own predicate")
	}
	free := RandomBatched(4, 12, 3, 128, []int{2, 4}, 3.0, 0.9, false)
	if !free.IsBatched() {
		t.Fatal("batched generator produced unbatched arrivals")
	}
	if free.IsRateLimited() {
		t.Fatal("heavy batches unexpectedly rate-limited (mean 3·D per slot)")
	}
}

func TestRandomSmallBatchedFlag(t *testing.T) {
	batched := RandomSmall(9, 3, 2, 12, []int{1, 2, 4}, 3, true)
	if !batched.IsBatched() || !batched.IsRateLimited() {
		t.Fatal("RandomSmall(batched) not batched/rate-limited")
	}
	if err := batched.Validate(); err != nil {
		t.Fatal(err)
	}
	raw := RandomSmall(9, 3, 2, 12, []int{1, 2, 4}, 3, false)
	if err := raw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZipfMixSkew(t *testing.T) {
	inst := ZipfMix(11, 16, 2, 256, []int{2, 4, 8}, 8, 1.2)
	per := inst.JobsPerColor()
	if per[0] <= per[15] {
		t.Fatalf("Zipf mix not skewed: first=%d last=%d", per[0], per[15])
	}
	if inst.Delays[0] != 2 || inst.Delays[1] != 4 || inst.Delays[2] != 8 || inst.Delays[3] != 2 {
		t.Fatalf("delay assignment = %v", inst.Delays[:4])
	}
}

func TestRouterShape(t *testing.T) {
	inst := Router(2, 4, 8, 1024, 10)
	if inst.NumColors() != 16 {
		t.Fatalf("NumColors = %d, want 16 (4 classes × 4)", inst.NumColors())
	}
	// Delay classes: 4, 16, 64, 256.
	seen := map[int]int{}
	for _, d := range inst.Delays {
		seen[d]++
	}
	for _, d := range []int{4, 16, 64, 256} {
		if seen[d] != 4 {
			t.Fatalf("delay class %d has %d colors: %v", d, seen[d], seen)
		}
	}
	// Long-run volume ≈ load·rounds within a generous factor.
	jobs := float64(inst.TotalJobs())
	if jobs < 0.4*10*1024 || jobs > 2.5*10*1024 {
		t.Fatalf("router volume %v far from load×rounds = %v", jobs, 10*1024)
	}
}

func TestDatacenterShape(t *testing.T) {
	inst := Datacenter(2, 9, 4, 128, 2, 6)
	if inst.NumColors() != 9 {
		t.Fatalf("NumColors = %d", inst.NumColors())
	}
	if inst.NumRounds() > 256 {
		t.Fatalf("NumRounds = %d", inst.NumRounds())
	}
	if inst.TotalJobs() == 0 {
		t.Fatal("no jobs generated")
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-service demand must oscillate (the phases are spread so the
	// aggregate is roughly flat, but each service has busy and quiet
	// windows): compare service 0's busiest and quietest 32-round window.
	window := 32
	minW, maxW := 1<<30, 0
	for start := 0; start+window <= inst.NumRounds(); start += window {
		sum := 0
		for r := start; r < start+window; r++ {
			for _, b := range inst.Requests[r] {
				if b.Color == 0 {
					sum += b.Count
				}
			}
		}
		if sum < minW {
			minW = sum
		}
		if sum > maxW {
			maxW = sum
		}
	}
	if maxW < minW*2+2 {
		t.Fatalf("no diurnal variation for service 0: min=%d max=%d", minW, maxW)
	}
}
