package workload

import "testing"

func TestSkewedFleetDeterministic(t *testing.T) {
	a, err := SkewedFleet(42, 8, 8, 64, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkewedFleet(42, 8, 8, 64, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("fleet sizes %d, %d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].NumRounds() != b[i].NumRounds() {
			t.Fatalf("tenant %d differs across identical builds: %q/%d vs %q/%d",
				i, a[i].Name, a[i].NumRounds(), b[i].Name, b[i].NumRounds())
		}
		ja, jb := 0, 0
		for _, r := range a[i].Requests {
			ja += r.Jobs()
		}
		for _, r := range b[i].Requests {
			jb += r.Jobs()
		}
		if ja != jb {
			t.Fatalf("tenant %d job totals differ: %d vs %d", i, ja, jb)
		}
	}
}

func TestSkewedFleetShape(t *testing.T) {
	insts, err := SkewedFleet(7, 16, 8, 64, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := func(i int) int {
		n := 0
		for _, r := range insts[i].Requests {
			n += r.Jobs()
		}
		return n
	}
	if jobs(0) == 0 {
		t.Fatal("adversarial tenant 0 has no jobs")
	}
	// The victim tail must be Zipf-skewed: the heaviest victim carries
	// several times the lightest one's load.
	head, tail := jobs(1), jobs(len(insts)-1)
	if tail == 0 {
		t.Fatal("lightest victim has no jobs; the tail should stay mildly active")
	}
	if head < 4*tail {
		t.Fatalf("victim load not skewed: head %d, tail %d", head, tail)
	}
	if _, err := SkewedFleet(7, 1, 8, 64, 1, 8); err == nil {
		t.Fatal("SkewedFleet accepted a 1-tenant fleet")
	}
}
