package workload

import (
	"fmt"
	"math"

	"repro/internal/container"
	"repro/internal/sched"
)

// Router builds a multi-service router trace (the motivating application
// of Kokku et al. and Srinivasan et al. cited in §1): packet categories in
// four service classes with QoS delay tolerances — voice (D=4), video
// (D=16), web (D=64) and bulk transfer (D=256) — each class holding
// perClass categories. Voice and video are smooth, web is bursty (flash
// crowds), bulk arrives in large intermittent batches. load scales the
// total offered rate in jobs per round.
func Router(seed uint64, perClass, delta, rounds int, load float64) *sched.Instance {
	classes := []struct {
		name  string
		delay int
		share float64
		burst *BurstSpec
	}{
		{"voice", 4, 0.30, nil},
		{"video", 16, 0.30, nil},
		{"web", 64, 0.25, &BurstSpec{OnMean: 40, OffMean: 120}},
		{"bulk", 256, 0.15, &BurstSpec{OnMean: 16, OffMean: 400}},
	}
	spec := Spec{
		Name:   fmt.Sprintf("router(perClass=%d,load=%.1f,seed=%d)", perClass, load, seed),
		Delta:  delta,
		Rounds: rounds,
		Seed:   seed,
	}
	for _, cl := range classes {
		perColor := load * cl.share / float64(perClass)
		for i := 0; i < perClass; i++ {
			cs := ColorSpec{Delay: cl.delay, Rate: perColor}
			if cl.burst != nil {
				b := *cl.burst
				cs.Burst = &b
				// Compensate the off time so the long-run rate matches.
				cs.Rate = perColor * (b.OnMean + b.OffMean) / b.OnMean
			}
			spec.Colors = append(spec.Colors, cs)
		}
	}
	return Generate(spec)
}

// Datacenter builds a shared-data-center trace (Chandra et al., Chase et
// al., cited in §1): services with per-SLA delay bounds and smooth diurnal
// demand curves, phase-shifted so the hot set rotates over the day. One
// "day" is dayRounds rounds; the trace spans days·dayRounds rounds.
func Datacenter(seed uint64, services, delta, dayRounds, days int, peakRate float64) *sched.Instance {
	rng := container.NewRNG(seed)
	delays := []int{8, 32, 128}
	inst := &sched.Instance{
		Name:   fmt.Sprintf("datacenter(s=%d,days=%d,seed=%d)", services, days, seed),
		Delta:  delta,
		Delays: make([]int, services),
	}
	phase := make([]float64, services)
	for c := 0; c < services; c++ {
		inst.Delays[c] = delays[c%len(delays)]
		phase[c] = 2 * math.Pi * float64(c) / float64(services)
	}
	rounds := dayRounds * days
	for t := 0; t < rounds; t++ {
		x := 2 * math.Pi * float64(t) / float64(dayRounds)
		for c := 0; c < services; c++ {
			// Demand oscillates in [0.05, 1]·peakRate with service-specific
			// phase; the floor keeps every service mildly active.
			level := 0.05 + 0.95*(0.5+0.5*math.Sin(x+phase[c]))
			if jobs := rng.Poisson(peakRate * level / float64(services)); jobs > 0 {
				inst.AddJobs(t, sched.Color(c), jobs)
			}
		}
	}
	return inst.Normalize()
}
