package workload

import (
	"testing"

	"repro/internal/sched"
)

func TestAppendixAStructure(t *testing.T) {
	n, delta, j, k := 8, 2, 5, 7
	inst, err := AppendixA(n, delta, j, k)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumColors() != n/2+1 {
		t.Fatalf("NumColors = %d, want %d", inst.NumColors(), n/2+1)
	}
	long := AppendixALongColor(n)
	if inst.Delays[long] != 1<<k {
		t.Fatalf("long delay = %d", inst.Delays[long])
	}
	for c := 0; c < n/2; c++ {
		if inst.Delays[c] != 1<<j {
			t.Fatalf("short delay = %d", inst.Delays[c])
		}
	}
	// Jobs: 2^k long + (2^k / 2^j) multiples × n/2 colors × Δ.
	wantShort := (1 << (k - j)) * (n / 2) * delta
	per := inst.JobsPerColor()
	if per[long] != 1<<k {
		t.Fatalf("long jobs = %d, want %d", per[long], 1<<k)
	}
	total := 0
	for c := 0; c < n/2; c++ {
		total += per[c]
	}
	if total != wantShort {
		t.Fatalf("short jobs = %d, want %d", total, wantShort)
	}
	if !inst.IsBatched() || !inst.IsRateLimited() {
		t.Fatal("Appendix A instance must be batched and rate-limited")
	}
	if !inst.HasPowerOfTwoDelays() {
		t.Fatal("delays must be powers of two")
	}
}

func TestAppendixAConstraints(t *testing.T) {
	// Violates 2^{j+1} > nΔ.
	if _, err := AppendixA(8, 10, 3, 8); err == nil {
		t.Fatal("constraint violation accepted")
	}
	// Violates 2^k > 2^{j+1}.
	if _, err := AppendixA(8, 2, 6, 6); err == nil {
		t.Fatal("k too small accepted")
	}
	// Odd n.
	if _, err := AppendixA(7, 2, 6, 8); err == nil {
		t.Fatal("odd n accepted")
	}
}

func TestAppendixBStructure(t *testing.T) {
	n, delta, j, k := 8, 9, 4, 6
	inst, err := AppendixB(n, delta, j, k)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumColors() != n/2+1 {
		t.Fatalf("NumColors = %d", inst.NumColors())
	}
	if inst.Delays[0] != 1<<j {
		t.Fatalf("short delay = %d", inst.Delays[0])
	}
	per := inst.JobsPerColor()
	for p := 0; p < n/2; p++ {
		if inst.Delays[p+1] != 1<<(k+p) {
			t.Fatalf("long delay %d = %d", p, inst.Delays[p+1])
		}
		if per[p+1] != 1<<(k+p-1) {
			t.Fatalf("long jobs %d = %d, want %d", p, per[p+1], 1<<(k+p-1))
		}
	}
	// Short color: Δ per multiple of 2^j until 2^{k−1}.
	wantShort := delta * (1 << (k - 1 - j))
	if per[0] != wantShort {
		t.Fatalf("short jobs = %d, want %d", per[0], wantShort)
	}
}

func TestAppendixBConstraints(t *testing.T) {
	if _, err := AppendixB(8, 8, 4, 6); err == nil {
		t.Fatal("Δ = n accepted (needs Δ > n)")
	}
	if _, err := AppendixB(8, 9, 4, 4); err == nil {
		t.Fatal("k = j accepted (needs 2^k > 2^j)")
	}
	if _, err := AppendixB(8, 3, 1, 6); err == nil {
		t.Fatal("2^j ≤ Δ accepted")
	}
}

func TestThrashingStructure(t *testing.T) {
	inst, err := Thrashing(3, 4, 8, 1024, 4, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumColors() != 4 {
		t.Fatalf("NumColors = %d", inst.NumColors())
	}
	bg := sched.Color(3)
	if inst.Delays[bg] != 1024 {
		t.Fatalf("background delay = %d", inst.Delays[bg])
	}
	per := inst.JobsPerColor()
	if per[bg] != 1024 {
		t.Fatalf("background backlog = %d", per[bg])
	}
	// Bursts occupy 4 of every 20 rounds.
	wantShort := 0
	for tt := 0; tt < 200; tt++ {
		if tt%20 < 4 {
			wantShort += 3
		}
	}
	if got := inst.TotalJobs() - per[bg]; got != wantShort {
		t.Fatalf("short jobs = %d, want %d", got, wantShort)
	}
}

func TestThrashingValidation(t *testing.T) {
	if _, err := Thrashing(0, 1, 2, 8, 1, 1, 10); err == nil {
		t.Fatal("numShort=0 accepted")
	}
	if _, err := Thrashing(1, 1, 8, 4, 1, 1, 10); err == nil {
		t.Fatal("longDelay < shortDelay accepted")
	}
}
