package workload

import (
	"reflect"
	"testing"
)

func TestByNameCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		p := Params{Seed: 1, Rounds: 128}
		if name == "appendixA" || name == "appendixB" {
			p = Params{N: 8, Delta: 2, J: 5, K: 7}
			if name == "appendixB" {
				p = Params{N: 8, Delta: 9, J: 4, K: 6}
			}
		}
		inst, err := ByName(name, p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := inst.Validate(); err != nil {
			t.Errorf("%s: invalid instance: %v", name, err)
		}
		if inst.TotalJobs() == 0 {
			t.Errorf("%s: empty workload", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", Params{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestByNameDefaults(t *testing.T) {
	inst, err := ByName("router", Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Delta != 8 {
		t.Fatalf("default Delta = %d", inst.Delta)
	}
	if inst.NumRounds() > 1024 {
		t.Fatalf("default Rounds exceeded: %d", inst.NumRounds())
	}
}

func TestByNameDeterministic(t *testing.T) {
	a, _ := ByName("zipf", Params{Seed: 9, Rounds: 64})
	b, _ := ByName("zipf", Params{Seed: 9, Rounds: 64})
	if a.TotalJobs() != b.TotalJobs() {
		t.Fatal("same params, different instances")
	}
}

func TestTenantDeterministicAndIndependent(t *testing.T) {
	p := Params{Seed: 7, Delta: 4, Rounds: 64, Load: 3}
	a1, err := Tenant("router", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Tenant("router", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("Tenant is not deterministic for the same (name, params, index)")
	}
	b, err := Tenant("router", p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1.Requests, b.Requests) {
		t.Fatal("adjacent tenants got identical traces")
	}
	if _, err := Tenant("no-such-workload", p, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
