package workload

import "repro/internal/sched"

// Reservation is the BDR (rate, delay) pair a fleet tenant declares at
// open: a guaranteed fractional service rate and the delay bound, in
// rounds, within which the rate must be supplied. It is the workload
// side of the serve layer's admission model (docs/SCHEDULING.md
// "Admission"); the zero value means best-effort.
type Reservation struct {
	// Rate is the guaranteed fraction of the shard's service rate, in
	// (0, 1].
	Rate float64
	// Delay is the reservation's delay bound in rounds; admission
	// requires it to strictly exceed the shard's own delay bound.
	Delay float64
}

// ReservedFleet builds the admission-control variant of SkewedFleet:
// the identical heavy-tailed traces — tenant 0 the adversarial
// Appendix-A deep burst, tenants 1..tenants-1 Zipf-decaying router
// traces — plus the per-tenant reservation each should declare at open.
//
// The reservation vector is constructed to exercise both admission
// outcomes deterministically. The victims (tenants ≥ 1) split half the
// shard's rate evenly, so their reservations are jointly feasible in
// any admission order. The adversary (tenant 0) demands 0.9 of the
// shard — feasible alone, infeasible against the victims' remaining
// half — so a fleet that opens its victims first gets the adversary
// rejected at admission with a typed error, instead of watching it
// crowd the ring and shed everyone else's ticks. delay is the victims'
// common delay bound (≥ 2; the adversary asks for the same).
func ReservedFleet(seed uint64, tenants, delta, rounds int, s, load, delay float64) ([]*sched.Instance, []Reservation, error) {
	insts, err := SkewedFleet(seed, tenants, delta, rounds, s, load)
	if err != nil {
		return nil, nil, err
	}
	if delay < 2 {
		delay = 64
	}
	res := make([]Reservation, len(insts))
	res[0] = Reservation{Rate: 0.9, Delay: delay}
	for i := 1; i < len(insts); i++ {
		res[i] = Reservation{Rate: 0.5 / float64(len(insts)-1), Delay: delay}
	}
	return insts, res, nil
}
