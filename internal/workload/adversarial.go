// Package workload builds problem instances: the paper's two lower-bound
// constructions (Appendices A and B), the introduction's
// thrashing-vs-underutilization scenario, and deterministic stochastic
// families (Poisson, bursty MMPP, Zipf mixes, diurnal data-center and
// multi-service router traces) that exercise the model under realistic
// load. Every generator is a pure function of its parameters and an
// explicit RNG seed.
package workload

import (
	"fmt"

	"repro/internal/sched"
)

// AppendixA builds the Appendix A construction showing ΔLRU is not
// resource competitive. There are n/2 "short-term" colors with delay bound
// 2^j and one "long-term" color with delay bound 2^k, where the paper
// requires 2^k > 2^{j+1} > n·Δ. Each short color receives Δ jobs at every
// multiple of 2^j; the long color receives 2^k jobs at round 0; the input
// spans 2^k rounds.
//
// ΔLRU caches the short colors forever (their timestamps stay fresh) and
// drops all 2^k long jobs, while an offline algorithm with one resource
// caches the long color throughout for cost Δ + 2^{k−j−1}·n·Δ, giving a
// ratio of Ω(2^{j+1}/(nΔ)).
func AppendixA(n, delta, j, k int) (*sched.Instance, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("workload: AppendixA needs even n ≥ 2, got %d", n)
	}
	short := 1 << j
	long := 1 << k
	if !(long > 2*short && 2*short > n*delta) {
		return nil, fmt.Errorf("workload: AppendixA needs 2^k > 2^{j+1} > nΔ (got 2^k=%d, 2^{j+1}=%d, nΔ=%d)",
			long, 2*short, n*delta)
	}
	numShort := n / 2
	inst := &sched.Instance{
		Name:   fmt.Sprintf("appendixA(n=%d,Δ=%d,j=%d,k=%d)", n, delta, j, k),
		Delta:  delta,
		Delays: make([]int, numShort+1),
	}
	for c := 0; c < numShort; c++ {
		inst.Delays[c] = short
	}
	longColor := sched.Color(numShort)
	inst.Delays[longColor] = long

	inst.AddJobs(0, longColor, long)
	for t := 0; t < long; t += short {
		for c := 0; c < numShort; c++ {
			inst.AddJobs(t, sched.Color(c), delta)
		}
	}
	return inst.Normalize(), nil
}

// AppendixALongColor returns the long-term color index of an Appendix A
// instance with n online resources.
func AppendixALongColor(n int) sched.Color { return sched.Color(n / 2) }

// AppendixB builds the Appendix B construction showing EDF is not resource
// competitive. There are n/2+1 colors: one with delay bound 2^j, and one
// each with delay bounds 2^k, 2^{k+1}, …, 2^{k+n/2−1}, where the paper
// requires 2^k > 2^j > Δ > n. The short color receives Δ jobs at every
// multiple of 2^j until round 2^{k−1}; the color with delay bound 2^{k+p}
// receives 2^{k+p−1} jobs at round 0; the input spans 2^{k+n/2−1} rounds.
//
// EDF keeps the n/2 earliest-deadline colors cached and thrashes the
// long-delay colors in and out, paying Ω(2^{k−j−1}·Δ) in reconfigurations;
// OFF serves each long color in its own quiet era for (n/2+1)·Δ total.
func AppendixB(n, delta, j, k int) (*sched.Instance, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("workload: AppendixB needs even n ≥ 2, got %d", n)
	}
	if !((1<<k) > (1<<j) && (1<<j) > delta && delta > n) {
		return nil, fmt.Errorf("workload: AppendixB needs 2^k > 2^j > Δ > n (got 2^k=%d, 2^j=%d, Δ=%d, n=%d)",
			1<<k, 1<<j, delta, n)
	}
	half := n / 2
	inst := &sched.Instance{
		Name:   fmt.Sprintf("appendixB(n=%d,Δ=%d,j=%d,k=%d)", n, delta, j, k),
		Delta:  delta,
		Delays: make([]int, half+1),
	}
	inst.Delays[0] = 1 << j
	for p := 0; p < half; p++ {
		inst.Delays[p+1] = 1 << (k + p)
	}

	// Short color: Δ jobs per multiple of 2^j until round 2^{k−1}.
	for t := 0; t < 1<<(k-1); t += 1 << j {
		inst.AddJobs(t, 0, delta)
	}
	// Long colors: 2^{k+p−1} jobs at round 0.
	for p := 0; p < half; p++ {
		inst.AddJobs(0, sched.Color(p+1), 1<<(k+p-1))
	}
	return inst.Normalize(), nil
}

// Thrashing builds the introduction's dilemma scenario (§1): one
// "background" color with a delay bound far in the future receives a large
// backlog at round 0, while "short-term" colors with small delay bounds
// arrive in bursts separated by idle gaps. A policy that chases idle
// cycles thrashes; one that ignores them underutilizes. gap is the number
// of idle rounds between consecutive short-term bursts.
func Thrashing(numShort, delta, shortDelay, longDelay, burstRounds, gap, horizon int) (*sched.Instance, error) {
	if numShort < 1 || shortDelay < 1 || longDelay < shortDelay {
		return nil, fmt.Errorf("workload: Thrashing needs numShort ≥ 1 and longDelay ≥ shortDelay ≥ 1")
	}
	inst := &sched.Instance{
		Name:   fmt.Sprintf("thrashing(short=%d,gap=%d)", numShort, gap),
		Delta:  delta,
		Delays: make([]int, numShort+1),
	}
	for c := 0; c < numShort; c++ {
		inst.Delays[c] = shortDelay
	}
	bg := sched.Color(numShort)
	inst.Delays[bg] = longDelay

	// Background backlog: enough jobs to keep one resource busy for most
	// of its delay bound.
	inst.AddJobs(0, bg, longDelay)

	period := burstRounds + gap
	for t := 0; t < horizon; t++ {
		if t%period < burstRounds {
			for c := 0; c < numShort; c++ {
				inst.AddJobs(t, sched.Color(c), 1)
			}
		}
	}
	return inst.Normalize(), nil
}
