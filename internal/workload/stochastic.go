package workload

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/sched"
)

// ColorSpec describes one color in a stochastic workload.
type ColorSpec struct {
	// Delay is the color's delay bound D_ℓ.
	Delay int
	// Rate is the mean number of jobs per round (Poisson) while the
	// source is active.
	Rate float64
	// Burst, when non-nil, gates the source through an on/off Markov
	// process (an MMPP): the source alternates between on-periods of
	// geometric mean OnMean rounds emitting at Rate, and off-periods of
	// geometric mean OffMean rounds emitting nothing.
	Burst *BurstSpec
}

// BurstSpec parameterizes the on/off modulation of a bursty source.
type BurstSpec struct {
	OnMean  float64
	OffMean float64
}

// Spec describes a complete stochastic instance.
type Spec struct {
	Name   string
	Delta  int
	Rounds int
	Colors []ColorSpec
	Seed   uint64
}

// Generate materializes a stochastic instance from a spec. Identical specs
// (including the seed) always produce identical instances.
func Generate(spec Spec) *sched.Instance {
	rng := container.NewRNG(spec.Seed)
	inst := &sched.Instance{
		Name:   spec.Name,
		Delta:  spec.Delta,
		Delays: make([]int, len(spec.Colors)),
	}
	on := make([]bool, len(spec.Colors))
	left := make([]int, len(spec.Colors))
	for c, cs := range spec.Colors {
		inst.Delays[c] = cs.Delay
		on[c] = true
		if cs.Burst != nil {
			// Start each source at a random point of its on/off cycle.
			on[c] = rng.Float64() < cs.Burst.OnMean/(cs.Burst.OnMean+cs.Burst.OffMean)
			if on[c] {
				left[c] = 1 + rng.Geometric(1/cs.Burst.OnMean)
			} else {
				left[c] = 1 + rng.Geometric(1/cs.Burst.OffMean)
			}
		}
	}
	for t := 0; t < spec.Rounds; t++ {
		for c, cs := range spec.Colors {
			if cs.Burst != nil {
				if left[c] == 0 {
					on[c] = !on[c]
					mean := cs.Burst.OnMean
					if !on[c] {
						mean = cs.Burst.OffMean
					}
					left[c] = 1 + rng.Geometric(1/mean)
				}
				left[c]--
			}
			if !on[c] {
				continue
			}
			if jobs := rng.Poisson(cs.Rate); jobs > 0 {
				inst.AddJobs(t, sched.Color(c), jobs)
			}
		}
	}
	return inst.Normalize()
}

// RandomBatched builds a batched instance [Δ | 1 | D_ℓ | D_ℓ]: each color
// picks a delay uniformly from delayChoices (which should be powers of
// two) and receives a Poisson(meanPerBatch·D_ℓ) batch at every multiple of
// D_ℓ, independently present with probability density. With rateLimited
// set, batch sizes are clamped to D_ℓ, producing a rate-limited instance.
func RandomBatched(seed uint64, numColors, delta, rounds int, delayChoices []int, meanPerDelaySlot float64, density float64, rateLimited bool) *sched.Instance {
	rng := container.NewRNG(seed)
	inst := &sched.Instance{
		Name:   fmt.Sprintf("randomBatched(c=%d,seed=%d,rl=%v)", numColors, seed, rateLimited),
		Delta:  delta,
		Delays: make([]int, numColors),
	}
	for c := 0; c < numColors; c++ {
		inst.Delays[c] = delayChoices[rng.Intn(len(delayChoices))]
	}
	for c := 0; c < numColors; c++ {
		d := inst.Delays[c]
		for t := 0; t < rounds; t += d {
			if !rng.Bool(density) {
				continue
			}
			jobs := rng.Poisson(meanPerDelaySlot * float64(d))
			if rateLimited && jobs > d {
				jobs = d
			}
			if jobs > 0 {
				inst.AddJobs(t, sched.Color(c), jobs)
			}
		}
	}
	return inst.Normalize()
}

// RandomSmall builds a tiny random instance suitable for brute-force
// comparison: up to maxColors colors with delays from delayChoices, up to
// `rounds` rounds, small batch counts. Used by the Theorem 1 experiment
// and by property tests.
func RandomSmall(seed uint64, maxColors, delta, rounds int, delayChoices []int, maxBatch int, batched bool) *sched.Instance {
	rng := container.NewRNG(seed)
	numColors := 1 + rng.Intn(maxColors)
	inst := &sched.Instance{
		Name:   fmt.Sprintf("randomSmall(seed=%d)", seed),
		Delta:  delta,
		Delays: make([]int, numColors),
	}
	for c := 0; c < numColors; c++ {
		inst.Delays[c] = delayChoices[rng.Intn(len(delayChoices))]
	}
	for c := 0; c < numColors; c++ {
		d := inst.Delays[c]
		step := 1
		if batched {
			step = d
		}
		for t := 0; t < rounds; t += step {
			if rng.Bool(0.5) {
				continue
			}
			jobs := 1 + rng.Intn(maxBatch)
			if batched && jobs > d {
				jobs = d // keep it rate-limited as well
			}
			if jobs > 0 {
				inst.AddJobs(t, sched.Color(c), jobs)
			}
		}
	}
	return inst.Normalize()
}

// ZipfMix builds an unbatched instance where each round draws
// Poisson(totalRate) jobs and assigns each to a color by a Zipf(s)
// popularity law; color c has delay delayChoices[c mod len(delayChoices)].
// This models a shared service mix where a few hot categories dominate.
func ZipfMix(seed uint64, numColors, delta, rounds int, delayChoices []int, totalRate, s float64) *sched.Instance {
	rng := container.NewRNG(seed)
	zipf := container.NewZipf(rng, numColors, s)
	inst := &sched.Instance{
		Name:   fmt.Sprintf("zipfMix(c=%d,s=%.2f,seed=%d)", numColors, s, seed),
		Delta:  delta,
		Delays: make([]int, numColors),
	}
	for c := 0; c < numColors; c++ {
		inst.Delays[c] = delayChoices[c%len(delayChoices)]
	}
	counts := make([]int, numColors)
	for t := 0; t < rounds; t++ {
		jobs := rng.Poisson(totalRate)
		clear(counts)
		for i := 0; i < jobs; i++ {
			counts[zipf.Next()]++
		}
		for c, n := range counts {
			if n > 0 {
				inst.AddJobs(t, sched.Color(c), n)
			}
		}
	}
	return inst.Normalize()
}
