package workload

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/sched"
)

// Continuous builds a router-like instance from *continuous-time* arrival
// processes (Poisson voice/video, on/off-modulated web/bulk) discretized
// into rounds of the given duration — the realistic path from wall-clock
// packet arrivals to the paper's slotted model. Smaller round durations
// give finer schedules with proportionally longer horizons and scaled
// delay bounds.
//
// perClass categories are created per class; dtScale scales the round
// duration (1.0 ⇒ voice delay bound 4 rounds, as in Router). Delay bounds
// are expressed in wall-clock units and converted to rounds, so halving
// dtScale doubles every delay bound in rounds and preserves the QoS
// tolerance.
func Continuous(seed uint64, perClass, delta, rounds int, load, dtScale float64) (*sched.Instance, error) {
	if dtScale <= 0 {
		dtScale = 1
	}
	horizon := float64(rounds) * dtScale
	classes := []struct {
		name  string
		delay int
		share float64
		burst bool
	}{
		{"voice", 4, 0.30, false},
		{"video", 16, 0.30, false},
		{"web", 64, 0.25, true},
		{"bulk", 256, 0.15, true},
	}
	var sources []events.Source
	var delays []int
	color := sched.Color(0)
	for ci, cl := range classes {
		perColor := load * cl.share / float64(perClass) / dtScale // events per unit time
		for i := 0; i < perClass; i++ {
			srcSeed := seed + uint64(ci*1000+i)
			if cl.burst {
				on, off := 40*dtScale, 120*dtScale
				// Compensate the duty cycle so the long-run rate matches.
				rate := perColor * (on + off) / on
				sources = append(sources, events.NewOnOffSource(srcSeed, color, rate, on, off, horizon))
			} else {
				sources = append(sources, events.NewPoissonSource(srcSeed, color, perColor, horizon))
			}
			dRounds := int(float64(cl.delay) / dtScale)
			if dRounds < 1 {
				dRounds = 1
			}
			delays = append(delays, dRounds)
			color++
		}
	}
	evs, err := events.Collect(events.Merge(sources...), 0)
	if err != nil {
		return nil, err
	}
	inst, err := events.Discretize(evs, dtScale, delta, delays)
	if err != nil {
		return nil, err
	}
	inst.Name = fmt.Sprintf("continuous(perClass=%d,load=%.1f,dt=%.2g,seed=%d)", perClass, load, dtScale, seed)
	return inst, nil
}
