package workload

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sched"
)

// splitmix derives an independent per-tenant seed from a fleet seed by
// one splitmix64 step, so every tenant's trace is decorrelated while
// any two parties agreeing on (seed, tenant) reconstruct it
// bit-identically.
func splitmix(seed uint64, tenant int) uint64 {
	x := seed + 0x9E3779B97F4A7C15*uint64(tenant+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// SkewedFleet builds the per-tenant traces of a heavy-tailed
// multi-tenant fleet: tenant 0 is an adversarial Appendix-A instance —
// the paper's lower-bound construction, a deep reconfiguration-forcing
// burst — and tenants 1..tenants-1 replay router traces whose offered
// load decays like a Zipf law (tenant i carries load/i^s jobs per
// round over rounds rounds). The result is the production shape the
// cross-tenant allocator exists for: one hostile deep queue, a few
// heavy steady tenants, and a long tail of light ones, all
// deterministic in (seed, tenants).
func SkewedFleet(seed uint64, tenants, delta, rounds int, s, load float64) ([]*sched.Instance, error) {
	if tenants < 2 {
		return nil, fmt.Errorf("workload: skewed fleet needs at least 2 tenants, got %d", tenants)
	}
	if delta <= 0 {
		delta = 8
	}
	if rounds <= 0 {
		rounds = 64
	}
	if s <= 0 {
		s = 1.0
	}
	if load <= 0 {
		load = 6
	}
	insts := make([]*sched.Instance, tenants)
	// Appendix A needs 2^k > 2^{j+1} > n·Δ; derive the smallest such
	// exponents so any delta works.
	const n = 8
	j := bits.Len(uint(n * delta))
	adv, err := AppendixA(n, delta, j, j+2)
	if err != nil {
		return nil, fmt.Errorf("workload: skewed fleet adversary: %w", err)
	}
	// Amplify the construction's batch counts: the lower-bound *pattern*
	// (which colors burst when) is the paper's, but each round must carry
	// enough jobs that applying it costs real worker time — an adversary
	// whose rounds are cheaper to apply than to admit cannot crowd anyone
	// out of a shard worker, whatever the allocator.
	const amp = 50
	for _, req := range adv.Requests {
		for i := range req {
			req[i].Count *= amp
		}
	}
	adv.Name = fmt.Sprintf("skewed/adversary(%s)", adv.Name)
	insts[0] = adv
	for i := 1; i < tenants; i++ {
		inst := Router(splitmix(seed, i), 4, delta, rounds, load/math.Pow(float64(i), s))
		inst.Name = fmt.Sprintf("skewed/tenant%d(%s)", i, inst.Name)
		insts[i] = inst
	}
	return insts, nil
}
