// Package bench is the benchmark regression harness behind `rrbench
// -json` and `rrbench -compare`: it measures a fixed suite of named
// hot-path benchmarks (ns/op, allocs/op, bytes/op, plus rounds/s and
// jobs/s for simulator benchmarks), serializes them into a
// schema-versioned BENCH_<label>.json file, and compares two such files
// flagging regressions beyond a threshold. Future PRs' performance claims
// are measured against these files — see docs/PERFORMANCE.md for the
// workflow.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/stats"
)

// SchemaVersion identifies the BENCH file layout. Bump it on any
// incompatible change to File or Measurement; Compare refuses to compare
// files of different versions.
const SchemaVersion = 1

// Measurement is the recorded result of one named benchmark.
type Measurement struct {
	// Name identifies the benchmark; Compare matches measurements by it.
	Name string `json:"name"`
	// Samples is how many independent measurement samples were taken;
	// the per-op numbers below come from the fastest sample (the standard
	// way to suppress scheduling noise).
	Samples int `json:"samples"`
	// Iterations is the op count of the fastest sample.
	Iterations int `json:"iterations"`

	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// NsPerOpMean/Std summarize ns/op across all samples (via
	// stats.Summarize), exposing run-to-run noise next to the headline.
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpStd  float64 `json:"ns_per_op_std"`

	// RoundsPerSec and JobsPerSec are simulator-rate views of the same
	// sample, present only for benchmarks that declare how many rounds
	// and jobs one op simulates. StatesPerSec is the analogous rate for
	// exact-solver benchmarks (expanded search states per second) — the
	// throughput number docs/PERFORMANCE.md's solver table pins.
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	JobsPerSec   float64 `json:"jobs_per_sec,omitempty"`
	StatesPerSec float64 `json:"states_per_sec,omitempty"`

	// Extra carries named quality metrics a spec's Extra hook reports
	// after its samples — e.g. the skewed serve benchmarks record the
	// worst victim-tenant delay factor here. Compare ignores them (they
	// are claims pinned by docs and tests, not per-op timings), and a
	// measurement without a hook omits the field, so files with and
	// without Extra share one schema version.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is one serialized benchmark run: the unit BENCH_<label>.json
// stores and Compare consumes.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label"`
	CreatedAt     string `json:"created_at"` // RFC3339
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	Benchmarks []Measurement `json:"benchmarks"`
}

// Rates declares what one op covers, for the per-second rate views of a
// measurement: simulator rounds and jobs for engine benchmarks, expanded
// search states for exact-solver benchmarks. Zero fields suppress the
// corresponding rate (e.g. for a comparator micro-benchmark).
type Rates struct {
	Rounds int
	Jobs   int
	States int
}

// Spec is one benchmark in a suite. Make builds a fresh warmed-up op
// closure and reports the Rates a single op covers. Extra, when
// non-nil, runs once after the spec's last sample and its values are
// recorded as the measurement's Extra metrics — the hook for
// quality-of-service numbers (delay factors, shares) that a per-op
// timer cannot express.
type Spec struct {
	Name  string
	Make  func() (op func() error, rates Rates)
	Extra func() map[string]float64
}

// Options tunes Run.
type Options struct {
	// Benchtime is the minimum measured duration per sample (default 1s,
	// like `go test -benchtime`). Small values (10ms) give a fast smoke
	// run whose numbers are noisy but whose schema is identical.
	Benchtime time.Duration
	// Samples per benchmark (default 3); the fastest is recorded.
	Samples int
	// Log, when non-nil, receives one progress line per benchmark.
	Log func(format string, args ...any)
}

func (o Options) benchtime() time.Duration {
	if o.Benchtime <= 0 {
		return time.Second
	}
	return o.Benchtime
}

func (o Options) samples() int {
	if o.Samples <= 0 {
		return 3
	}
	return o.Samples
}

// Run measures every spec and assembles the File.
func Run(label string, suite []Spec, opts Options) (*File, error) {
	f := &File{
		SchemaVersion: SchemaVersion,
		Label:         label,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	for _, spec := range suite {
		m, err := measure(spec, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		if opts.Log != nil {
			opts.Log("%-32s %12.1f ns/op %8.1f allocs/op", m.Name, m.NsPerOp, m.AllocsPerOp)
		}
		f.Benchmarks = append(f.Benchmarks, m)
	}
	return f, Validate(f)
}

// measure times one spec: per sample it builds a fresh op, then grows the
// iteration count until the timed loop exceeds Benchtime, in the style of
// testing.B. Allocation counts come from runtime.MemStats deltas around
// the loop; for single-goroutine ops they are exact.
func measure(spec Spec, opts Options) (Measurement, error) {
	m := Measurement{Name: spec.Name, Samples: opts.samples()}
	var nsSamples []float64
	for s := 0; s < opts.samples(); s++ {
		op, rates := spec.Make()
		if err := op(); err != nil { // warm-up iteration
			return m, err
		}
		n := 1
		for {
			elapsed, mallocs, bytes, err := timeN(op, n)
			if err != nil {
				return m, err
			}
			if elapsed >= opts.benchtime() || n >= 1e9 {
				nsPerOp := float64(elapsed.Nanoseconds()) / float64(n)
				nsSamples = append(nsSamples, nsPerOp)
				if len(nsSamples) == 1 || nsPerOp < m.NsPerOp {
					m.NsPerOp = nsPerOp
					m.Iterations = n
					m.AllocsPerOp = float64(mallocs) / float64(n)
					m.BytesPerOp = float64(bytes) / float64(n)
					if rates.Rounds > 0 && nsPerOp > 0 {
						m.RoundsPerSec = float64(rates.Rounds) / (nsPerOp / 1e9)
					}
					if rates.Jobs > 0 && nsPerOp > 0 {
						m.JobsPerSec = float64(rates.Jobs) / (nsPerOp / 1e9)
					}
					if rates.States > 0 && nsPerOp > 0 {
						m.StatesPerSec = float64(rates.States) / (nsPerOp / 1e9)
					}
				}
				break
			}
			// Grow toward the target the way testing.B does: aim past the
			// benchtime, capped at 100× per step.
			grow := int(float64(n) * 1.5 * float64(opts.benchtime()) / float64(elapsed+1))
			n = min(max(n+1, grow), 100*n)
		}
	}
	sum := stats.Summarize(nsSamples)
	m.NsPerOpMean, m.NsPerOpStd = sum.Mean, sum.Std
	if spec.Extra != nil {
		m.Extra = spec.Extra()
	}
	return m, nil
}

// timeN runs op n times and returns the wall time and allocation deltas.
func timeN(op func() error, n int) (elapsed time.Duration, mallocs, bytes uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// Validate checks a File's structural sanity: correct schema version,
// non-empty label, at least one benchmark, unique names, finite
// non-negative numbers. `rrbench -compare` validates both inputs, so a
// self-compare doubles as a schema check in CI.
func Validate(f *File) error {
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema version %d, this build reads %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Label == "" {
		return fmt.Errorf("bench: empty label")
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("bench: no benchmarks recorded")
	}
	seen := make(map[string]bool, len(f.Benchmarks))
	for _, m := range f.Benchmarks {
		if m.Name == "" {
			return fmt.Errorf("bench: benchmark with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("bench: duplicate benchmark %q", m.Name)
		}
		seen[m.Name] = true
		for _, v := range []float64{m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.RoundsPerSec, m.JobsPerSec, m.StatesPerSec} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("bench: %s has invalid value %v", m.Name, v)
			}
		}
		for k, v := range m.Extra {
			if k == "" {
				return fmt.Errorf("bench: %s has an unnamed extra metric", m.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bench: %s extra %q has invalid value %v", m.Name, k, v)
			}
		}
		if m.Iterations < 1 {
			return fmt.Errorf("bench: %s has iterations %d", m.Name, m.Iterations)
		}
	}
	return nil
}

// WriteFile serializes f (validated) to path with stable indentation.
func WriteFile(path string, f *File) error {
	if err := Validate(f); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a BENCH file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := Validate(&f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Regression is one flagged metric change between two BENCH files.
type Regression struct {
	Name   string
	Metric string // "ns_per_op" or "allocs_per_op"
	Old    float64
	New    float64
	// Ratio is New/Old (∞ when Old is 0).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.1f → %.1f (%.2fx)", r.Name, r.Metric, r.Old, r.New, r.Ratio)
}

// Comparison is the full result of comparing two BENCH files.
type Comparison struct {
	Regressions []Regression
	// Missing lists benchmarks present in old but absent from new. A
	// missing benchmark is a lost performance pin — a rename or deletion
	// that would let regressions slip through unmeasured — so Err treats
	// it as a failure, exactly like a regression. Intentional renames
	// must update the baseline file in the same change.
	Missing []string
	// Added lists benchmarks new to the second file (informational).
	Added []string
}

// Err returns nil when the comparison passes, and otherwise an error
// naming every flagged regression and every benchmark missing from the
// new file. `rrbench -compare` exits non-zero exactly when Err is
// non-nil, so a silently dropped benchmark fails as loudly as a slow
// one.
func (c *Comparison) Err() error {
	if len(c.Regressions) == 0 && len(c.Missing) == 0 {
		return nil
	}
	var parts []string
	if n := len(c.Regressions); n > 0 {
		names := make([]string, n)
		for i, r := range c.Regressions {
			names[i] = r.String()
		}
		parts = append(parts, fmt.Sprintf("%d regression(s): %s", n, strings.Join(names, "; ")))
	}
	if n := len(c.Missing); n > 0 {
		parts = append(parts, fmt.Sprintf("%d benchmark(s) missing from new file: %s",
			n, strings.Join(c.Missing, ", ")))
	}
	return fmt.Errorf("bench: %s", strings.Join(parts, "; "))
}

// Compare matches benchmarks by name and flags regressions beyond
// threshold (e.g. 0.10 = 10%): a time regression when new ns/op exceeds
// old·(1+threshold), and an allocation regression when allocs/op grows by
// more than max(½, old·threshold) — so zero-alloc contracts flag on any
// real allocation while large counts get proportional slack. Both files
// must carry the same schema version.
func Compare(old, new *File, threshold float64) (*Comparison, error) {
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("bench: schema mismatch: old v%d vs new v%d", old.SchemaVersion, new.SchemaVersion)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	newByName := make(map[string]Measurement, len(new.Benchmarks))
	for _, m := range new.Benchmarks {
		newByName[m.Name] = m
	}
	oldSeen := make(map[string]bool, len(old.Benchmarks))
	cmp := &Comparison{}
	for _, o := range old.Benchmarks {
		oldSeen[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			cmp.Missing = append(cmp.Missing, o.Name)
			continue
		}
		if n.NsPerOp > o.NsPerOp*(1+threshold) {
			cmp.Regressions = append(cmp.Regressions, Regression{
				Name: o.Name, Metric: "ns_per_op",
				Old: o.NsPerOp, New: n.NsPerOp, Ratio: ratio(n.NsPerOp, o.NsPerOp),
			})
		}
		if n.AllocsPerOp > o.AllocsPerOp+math.Max(0.5, o.AllocsPerOp*threshold) {
			cmp.Regressions = append(cmp.Regressions, Regression{
				Name: o.Name, Metric: "allocs_per_op",
				Old: o.AllocsPerOp, New: n.AllocsPerOp, Ratio: ratio(n.AllocsPerOp, o.AllocsPerOp),
			})
		}
	}
	for _, m := range new.Benchmarks {
		if !oldSeen[m.Name] {
			cmp.Added = append(cmp.Added, m.Name)
		}
	}
	return cmp, nil
}

func ratio(new, old float64) float64 {
	if old == 0 {
		return math.Inf(1)
	}
	return new / old
}

// Table renders a comparison as a stats.Table for terminal output.
func (c *Comparison) Table() *stats.Table {
	tab := stats.NewTable("benchmark comparison", "benchmark", "metric", "old", "new", "ratio")
	for _, r := range c.Regressions {
		tab.AddRow(r.Name, r.Metric, r.Old, r.New, r.Ratio)
	}
	if len(c.Regressions) == 0 {
		tab.AddNote("no regressions")
	}
	if len(c.Missing) > 0 {
		tab.AddNote("MISSING from new file (fails the comparison): %v", c.Missing)
	}
	if len(c.Added) > 0 {
		tab.AddNote("new benchmarks: %v", c.Added)
	}
	return tab
}
