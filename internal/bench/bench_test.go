package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps measurement loops short enough for unit tests while
// still exercising the full iteration-growth path.
var tinyOpts = Options{Benchtime: 2 * time.Millisecond, Samples: 2}

func mkFile(t *testing.T, specs []Spec) *File {
	t.Helper()
	f, err := Run("test", specs, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func constSpec(name string, allocs int) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		sink := make([][]byte, 0, allocs)
		op := func() error {
			sink = sink[:0]
			for i := 0; i < allocs; i++ {
				sink = append(sink, make([]byte, 64))
			}
			return nil
		}
		return op, Rates{Rounds: 1, Jobs: 2}
	}}
}

// TestMeasureCountsAllocations checks that the MemStats-delta accounting
// attributes the right allocs/op to an op with a known allocation count,
// and that a non-allocating op reads 0 — the property the zero-alloc
// regression guard depends on.
func TestMeasureCountsAllocations(t *testing.T) {
	f := mkFile(t, []Spec{constSpec("alloc3", 3), constSpec("alloc0", 0)})
	if got := f.Benchmarks[0].AllocsPerOp; got < 2.5 || got > 3.5 {
		t.Errorf("alloc3: got %.2f allocs/op, want ≈3", got)
	}
	if got := f.Benchmarks[1].AllocsPerOp; got > 0.01 {
		t.Errorf("alloc0: got %.2f allocs/op, want 0", got)
	}
	for _, m := range f.Benchmarks {
		if m.NsPerOp <= 0 || m.Iterations < 1 {
			t.Errorf("%s: implausible measurement %+v", m.Name, m)
		}
		if m.RoundsPerSec <= 0 || m.JobsPerSec <= 0 {
			t.Errorf("%s: rate metrics missing: %+v", m.Name, m)
		}
	}
}

// TestCompareSelfIsClean: a file compared against itself must produce no
// regressions at any threshold — this is what `make benchsmoke` runs end
// to end as a schema check.
func TestCompareSelfIsClean(t *testing.T) {
	f := mkFile(t, []Spec{constSpec("a", 1), constSpec("b", 0)})
	cmp, err := Compare(f, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 || len(cmp.Missing) != 0 || len(cmp.Added) != 0 {
		t.Fatalf("self-compare not clean: %+v", cmp)
	}
}

// TestCompareFlagsInjectedRegressions hand-builds the old/new pair and
// checks every flagging rule: time beyond threshold, any allocation on a
// previously zero-alloc benchmark, proportional slack on large counts,
// and missing/added bookkeeping.
func TestCompareFlagsInjectedRegressions(t *testing.T) {
	old := &File{SchemaVersion: SchemaVersion, Label: "old", Benchmarks: []Measurement{
		{Name: "time", Iterations: 1, NsPerOp: 100},
		{Name: "zeroalloc", Iterations: 1, NsPerOp: 100, AllocsPerOp: 0},
		{Name: "bigalloc", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "gone", Iterations: 1, NsPerOp: 100},
	}}
	new := &File{SchemaVersion: SchemaVersion, Label: "new", Benchmarks: []Measurement{
		{Name: "time", Iterations: 1, NsPerOp: 150},                      // +50% time
		{Name: "zeroalloc", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1}, // 0 → 1 alloc
		{Name: "bigalloc", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1050},
		{Name: "fresh", Iterations: 1, NsPerOp: 100},
	}}
	cmp, err := Compare(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var flagged []string
	for _, r := range cmp.Regressions {
		flagged = append(flagged, r.Name+"/"+r.Metric)
	}
	want := []string{"time/ns_per_op", "zeroalloc/allocs_per_op"}
	if !reflect.DeepEqual(flagged, want) {
		t.Errorf("flagged %v, want %v (bigalloc's +5%% is within 10%% slack)", flagged, want)
	}
	if !reflect.DeepEqual(cmp.Missing, []string{"gone"}) {
		t.Errorf("missing = %v, want [gone]", cmp.Missing)
	}
	if !reflect.DeepEqual(cmp.Added, []string{"fresh"}) {
		t.Errorf("added = %v, want [fresh]", cmp.Added)
	}

	// Raising the threshold above the injected slowdown clears the time
	// flag but never excuses a broken zero-alloc contract.
	cmp, err = Compare(old, new, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Name != "zeroalloc" {
		t.Errorf("at threshold 0.60: %+v, want only zeroalloc", cmp.Regressions)
	}
}

// TestComparisonErr: Err must fail the comparison on regressions AND on
// benchmarks missing from the new file, naming each offender — a
// silently dropped benchmark is a lost performance pin, not a skip.
func TestComparisonErr(t *testing.T) {
	clean := &Comparison{Added: []string{"fresh"}}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean comparison (added only) failed: %v", err)
	}

	missing := &Comparison{Missing: []string{"gone_a", "gone_b"}}
	err := missing.Err()
	if err == nil {
		t.Fatal("comparison with missing benchmarks passed")
	}
	for _, name := range []string{"gone_a", "gone_b"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Err does not name missing benchmark %s: %v", name, err)
		}
	}

	both := &Comparison{
		Regressions: []Regression{{Name: "slow", Metric: "ns_per_op", Old: 100, New: 200, Ratio: 2}},
		Missing:     []string{"gone"},
	}
	err = both.Err()
	if err == nil {
		t.Fatal("comparison with regressions and missing benchmarks passed")
	}
	for _, want := range []string{"slow", "gone"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Err does not name %q: %v", want, err)
		}
	}
}

// TestCompareSchemaMismatch: files from different schema generations must
// not be silently compared.
func TestCompareSchemaMismatch(t *testing.T) {
	a := &File{SchemaVersion: SchemaVersion, Label: "a",
		Benchmarks: []Measurement{{Name: "x", Iterations: 1, NsPerOp: 1}}}
	b := &File{SchemaVersion: SchemaVersion + 1, Label: "b",
		Benchmarks: []Measurement{{Name: "x", Iterations: 1, NsPerOp: 1}}}
	if _, err := Compare(a, b, 0.1); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestValidateRejectsMalformedFiles covers each structural invariant.
func TestValidateRejectsMalformedFiles(t *testing.T) {
	good := func() *File {
		return &File{SchemaVersion: SchemaVersion, Label: "ok",
			Benchmarks: []Measurement{{Name: "x", Iterations: 1, NsPerOp: 1}}}
	}
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"wrong schema version", func(f *File) { f.SchemaVersion = 99 }},
		{"empty label", func(f *File) { f.Label = "" }},
		{"no benchmarks", func(f *File) { f.Benchmarks = nil }},
		{"duplicate name", func(f *File) { f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0]) }},
		{"empty name", func(f *File) { f.Benchmarks[0].Name = "" }},
		{"negative ns", func(f *File) { f.Benchmarks[0].NsPerOp = -1 }},
		{"zero iterations", func(f *File) { f.Benchmarks[0].Iterations = 0 }},
	}
	if err := Validate(good()); err != nil {
		t.Fatalf("baseline file invalid: %v", err)
	}
	for _, tc := range cases {
		f := good()
		tc.mutate(f)
		if err := Validate(f); err == nil {
			t.Errorf("%s: not rejected", tc.name)
		}
	}
}

// TestFileRoundTrip: Write then Read recovers the same file, and the
// on-disk form carries the schema version.
func TestFileRoundTrip(t *testing.T) {
	f := mkFile(t, []Spec{constSpec("rt", 1)})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, f)
	}
}

// TestDefaultSuiteSmoke runs the real suite at a tiny benchtime: the
// numbers are noise, but the file must validate, self-compare clean, and
// the steady-state step benchmarks must uphold the zero-alloc contract
// even under this harness (not just under testing.AllocsPerRun).
func TestDefaultSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	f, err := Run("smoke", DefaultSuite(), Options{Benchtime: time.Millisecond, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(f, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 {
		t.Fatalf("self-compare: %+v", cmp.Regressions)
	}
	for _, m := range f.Benchmarks {
		if strings.HasPrefix(m.Name, "step/") && m.AllocsPerOp > 0.01 {
			t.Errorf("%s: %.2f allocs/op, zero-alloc contract broken", m.Name, m.AllocsPerOp)
		}
		if strings.HasPrefix(m.Name, "run/") && m.RoundsPerSec <= 0 {
			t.Errorf("%s: no rounds/s rate recorded", m.Name)
		}
	}
}
