package bench

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

// DefaultSuite is the fixed benchmark set behind `rrbench -json`: the
// hot paths whose numbers docs/PERFORMANCE.md tracks. Every spec is
// deterministic (fixed seeds), so two runs on the same machine differ
// only by timing noise — which is exactly what -compare's threshold
// absorbs.
func DefaultSuite() []Spec {
	return []Spec{
		fullRunSpec("run/dlruedf/router4096", func() sched.Policy { return core.NewDLRUEDF() }),
		fullRunSpec("run/dlru/router4096", func() sched.Policy { return policy.NewDLRU() }),
		fullRunSpec("run/edf/router4096", func() sched.Policy { return policy.NewEDF() }),
		stepSpec("step/dlruedf", func() sched.Policy { return core.NewDLRUEDF() }),
		stepSpec("step/dlru", func() sched.Policy { return policy.NewDLRU() }),
		stepSpec("step/edf", func() sched.Policy { return policy.NewEDF() }),
		sweepSpec("sweep/dlruedf/16x256/serial", 1),
		sweepSpec("sweep/dlruedf/16x256/parallel", 0),
		exactSpec("exact/bb/small", smallExactInstance, false),
		exactSpec("exact/ref/small", smallExactInstance, true),
		bracketSpec("exact/bracket/small", smallExactInstance),
		serveSubmitSpec("serve/submit/1tenant", 1, serveServer),
		serveSubmitSpec("serve/submit/64tenants", 64, serveServer),
		servePipelinedSpec("serve/submit/pipelined/1tenant", 1, 64, 32, serveServer),
		servePipelinedSpec("serve/submit/pipelined/64tenants", 64, 64, 32, serveServer),
		serveSubmitSpec("serve/proxy/submit/1tenant", 1, proxyServer),
		serveSubmitSpec("serve/proxy/submit/64tenants", 64, proxyServer),
		servePipelinedSpec("serve/proxy/submit/pipelined/1tenant", 1, 64, 32, proxyServer),
		serveStatsSpec("serve/stats/64tenants", 64, false),
		serveStatsSpec("serve/stats-ex/64tenants", 64, true),
		serveSkewedSpec("serve/skewed/wdrr/64tenants", "wdrr"),
		serveSkewedSpec("serve/skewed/fifo/64tenants", "fifo"),
		serveBDRSkewedSpec("serve/bdr/skewed/64tenants"),
		serveCkptSpec("serve/ckpt/files/64tenants", "files", false),
		serveCkptSpec("serve/ckpt/log/64tenants", "log", false),
		serveCkptSpec("serve/ckpt/log/adaptive/64tenants", "log", true),
	}
}

// ExactOPTSuite is the heavyweight exact-solver set behind `rrbench -json
// -exact`: the branch-and-bound solver and the legacy reference DFS on
// the pinned medium instance (≈380k expanded states; the reference needs
// tens of seconds per op). BENCH_pr4.json records both, and the ratio of
// their states_per_sec entries is the solver speedup docs/PERFORMANCE.md
// quotes. Kept out of DefaultSuite so `make benchsmoke` stays fast.
func ExactOPTSuite() []Spec {
	return []Spec{
		exactSpec("exact/bb/medium", mediumExactInstance, false),
		exactSpec("exact/ref/medium", mediumExactInstance, true),
	}
}

// smallExactInstance is a batched 4-color instance the legacy reference
// solver still handles in well under a second — small enough for the
// default suite, hard enough that pruning cannot collapse the search.
func smallExactInstance() (*sched.Instance, int) {
	return workload.RandomBatched(2, 4, 2, 24, []int{1, 2, 4}, 0.8, 0.8, true), 2
}

// mediumExactInstance is the pinned medium instance of the exact-solver
// performance claim (docs/PERFORMANCE.md): 8 colors, delay menu
// {1,2,4,8,16}, 80 rounds, m=2 — ≈610k expanded states, beyond the
// pre-PR-4 200k-state BracketOPT budget but within the new 2M one.
// internal/offline's BenchmarkBruteForceMedium uses the same shape;
// change both together.
func mediumExactInstance() (*sched.Instance, int) {
	return workload.RandomBatched(3, 8, 2, 80, []int{1, 2, 4, 8, 16}, 0.9, 0.9, true), 2
}

// exactSpec measures one exact solve per op — the branch-and-bound
// solver or the legacy reference DFS — on a fixed instance, with the
// expanded-state count as the rate denominator. Both solvers count only
// memo misses as states and agree on the state space, so their
// states_per_sec compare directly.
func exactSpec(name string, mk func() (*sched.Instance, int), reference bool) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		inst, m := mk()
		var states int
		var op func() error
		if reference {
			_, n, err := offline.ReferenceBruteForce(inst, m, 16_000_000)
			if err != nil {
				panic(fmt.Sprintf("bench: %s probe solve: %v", name, err))
			}
			states = n
			op = func() error {
				_, _, err := offline.ReferenceBruteForce(inst, m, 16_000_000)
				return err
			}
		} else {
			_, st, err := offline.SolveExactStats(inst, m, offline.ExactOptions{MaxStates: 16_000_000})
			if err != nil {
				panic(fmt.Sprintf("bench: %s probe solve: %v", name, err))
			}
			states = int(st.States)
			op = func() error {
				_, err := offline.SolveExact(inst, m, offline.ExactOptions{MaxStates: 16_000_000})
				return err
			}
		}
		return op, Rates{States: states}
	}}
}

// bracketSpec measures a full BracketOPT — static seed, local search,
// then the seeded exact search — the composite operation experiments
// call per instance.
func bracketSpec(name string, mk func() (*sched.Instance, int)) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		inst, m := mk()
		op := func() error {
			_, err := offline.BracketOPT(inst, m, 2)
			return err
		}
		return op, Rates{Rounds: inst.NumRounds(), Jobs: inst.TotalJobs()}
	}}
}

// fullRunSpec measures a complete sched.Run of a policy over a fixed
// mid-size router trace (the same one bench_test.go's Engine benchmarks
// use), yielding meaningful rounds/s and jobs/s rates.
func fullRunSpec(name string, mk func() sched.Policy) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		inst := workload.Router(3, 4, 8, 4096, 12)
		probe, err := sched.Run(inst, mk(), sched.Options{N: 16})
		if err != nil {
			panic(fmt.Sprintf("bench: %s probe run: %v", name, err))
		}
		op := func() error {
			_, err := sched.Run(inst, mk(), sched.Options{N: 16})
			return err
		}
		return op, Rates{Rounds: probe.Rounds, Jobs: inst.TotalJobs()}
	}}
}

// stepSpec measures one steady-state Stream.Step for a policy — the full
// per-round dataplane cost. The stream is warmed before measurement so
// the op exercises the zero-allocation contract (allocs_per_op must stay
// 0; -compare flags any growth).
func stepSpec(name string, mk func() sched.Policy) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		st, err := sched.NewStream(mk(), sched.StreamConfig{
			N: 16, Delta: 4, Delays: []int{2, 8, 4, 16, 2, 8, 4, 16},
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", name, err))
		}
		// Unsorted request with a duplicate batch so every Step pays for
		// normalization too; same shape as the alloc-pinning tests.
		req := sched.Request{
			{Color: 5, Count: 2}, {Color: 1, Count: 1}, {Color: 3, Count: 2},
			{Color: 1, Count: 1}, {Color: 7, Count: 2},
		}
		jobs := 0
		for _, b := range req {
			jobs += b.Count
		}
		for i := 0; i < 512; i++ { // steady state: warm buffers, bounded pool
			if _, err := st.Step(req); err != nil {
				panic(fmt.Sprintf("bench: %s warm-up: %v", name, err))
			}
		}
		op := func() error {
			_, err := st.Step(req)
			return err
		}
		return op, Rates{Rounds: 1, Jobs: jobs}
	}}
}

// serveServer boots a loopback rrserved with tenants open tenants and a
// connected client, for the serve/* specs. Spec.Make has no teardown
// hook, so each sample leaks one in-process server for the remainder of
// the rrbench run — a few listeners and shard goroutines, harmless for
// a measurement process that exits right after.
func serveServer(name string, tenants int) (*serve.Client, []string) {
	srv, err := serve.NewServer(serve.Config{Addr: "127.0.0.1:0", DefaultQueueCap: 4096})
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", name, err))
	}
	go srv.Serve()
	return openBenchTenants(name, srv.Addr().String(), tenants)
}

// proxyServer boots a 3-backend fleet behind an rrproxy router with the
// client connected to the proxy, for the serve/proxy/* specs. They pair
// with the serve/submit/* specs built on serveServer: the delta between
// a spec and its proxied twin is the routing tier's per-round tax (peek,
// route, relay, extra loopback hop). Same teardown caveat as
// serveServer.
func proxyServer(name string, tenants int) (*serve.Client, []string) {
	addrs := make([]string, 3)
	for i := range addrs {
		srv, err := serve.NewServer(serve.Config{Addr: "127.0.0.1:0", DefaultQueueCap: 4096})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", name, err))
		}
		go srv.Serve()
		addrs[i] = srv.Addr().String()
	}
	px, err := proxy.New(proxy.Config{Addr: "127.0.0.1:0", Backends: addrs})
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", name, err))
	}
	go px.Serve()
	return openBenchTenants(name, px.Addr().String(), tenants)
}

// openBenchTenants dials addr and opens the standard bench tenants.
func openBenchTenants(name, addr string, tenants int) (*serve.Client, []string) {
	cl, err := serve.Dial(addr)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", name, err))
	}
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
		_, _, err := cl.Open(ids[i], serve.TenantConfig{
			Policy: "dlruedf", N: 16, Delta: 4,
			Delays: []int{2, 8, 4, 16, 2, 8, 4, 16},
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: opening %s: %v", name, ids[i], err))
		}
	}
	return cl, ids
}

// serveSubmitSpec measures one steady-state Submit round-trip over
// loopback TCP — frame encode, server decode, admission, eager round
// application and the acknowledgement — rotating across tenants. This
// is the served counterpart of step/*: the delta between them is the
// wire and admission overhead per round. boot picks the topology —
// serveServer measures the direct path, proxyServer the routed one.
func serveSubmitSpec(name string, tenants int, boot func(string, int) (*serve.Client, []string)) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		cl, ids := boot(name, tenants)
		req := sched.Request{
			{Color: 5, Count: 2}, {Color: 1, Count: 1}, {Color: 3, Count: 2},
			{Color: 1, Count: 1}, {Color: 7, Count: 2},
		}
		jobs := 0
		for _, b := range req {
			jobs += b.Count
		}
		seqs := make([]int, len(ids))
		turn := 0
		op := func() error {
			i := turn
			turn = (turn + 1) % len(ids)
			for {
				_, _, err := cl.Submit(ids[i], seqs[i], req)
				if err == nil {
					seqs[i]++
					return nil
				}
				if !errors.Is(err, serve.ErrOverloaded) {
					return err
				}
				// The round engine fell behind the submit loop; yield
				// until the queue drains rather than failing the run.
				runtime.Gosched()
			}
		}
		return op, Rates{Rounds: 1, Jobs: jobs}
	}}
}

// servePipelinedSpec measures the protocol-v2 wire path: each op stages
// batch consecutive rounds for one tenant (rotating across tenants)
// into a pipelined window of tagged frames, so the round trip is
// amortized over the window and the framing over the batch. The ratio
// of its rounds_per_sec to serve/submit/*'s is the wire-path tax the
// pipelining recovers; the floor is step/*, the bare engine cost. boot
// picks the topology, as in serveSubmitSpec.
func servePipelinedSpec(name string, tenants, window, batch int, boot func(string, int) (*serve.Client, []string)) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		cl, ids := boot(name, tenants)
		req := sched.Request{
			{Color: 5, Count: 2}, {Color: 1, Count: 1}, {Color: 3, Count: 2},
			{Color: 1, Count: 1}, {Color: 7, Count: 2},
		}
		jobs := 0
		for _, b := range req {
			jobs += b.Count
		}
		ticks := make([]sched.Request, batch)
		for i := range ticks {
			ticks[i] = req
		}
		idx := make(map[string]int, len(ids))
		for i, id := range ids {
			idx[id] = i
		}
		// cursors tracks the next sequence to stage per tenant. A frame can
		// be rejected after later ones were staged (the window runs ahead of
		// acknowledgements), so rejections rewind the cursor — every round
		// carries the same tick, making re-staging trivially idempotent.
		cursors := make([]int, len(ids))
		var fail error
		behind := false
		pl := cl.NewPipeline(window, func(r serve.SubmitResult) {
			if r.Err == nil {
				return
			}
			var bs *serve.BadSeqError
			switch i := idx[r.Tenant]; {
			case errors.As(r.Err, &bs):
				cursors[i] = bs.Expected
			case errors.Is(r.Err, serve.ErrOverloaded):
				// The round engine fell behind the submit window; resume at
				// the shed round and yield so the queue can drain.
				cursors[i] = r.Seq + r.Admitted
				behind = true
			default:
				fail = r.Err
			}
		})
		turn := 0
		op := func() error {
			if fail != nil {
				return fail
			}
			i := turn
			turn = (turn + 1) % len(ids)
			// Advance the cursor before staging: the pipeline call reaps
			// acknowledgements first, and a rewind reaped there must not be
			// stomped afterwards or the cursor never recovers.
			seq := cursors[i]
			cursors[i] = seq + batch
			var err error
			if batch == 1 {
				err = pl.Submit(ids[i], seq, req)
			} else {
				err = pl.SubmitBatch(ids[i], seq, ticks)
			}
			if behind {
				behind = false
				runtime.Gosched()
			}
			return err
		}
		return op, Rates{Rounds: batch, Jobs: jobs * batch}
	}}
}

// serveStatsSpec measures the stats command aggregating every tenant's
// row — the monitoring-path cost at fleet width. extended selects the
// protocol-v3 stats-ex command (the scheduling readout Client.Stats
// issues); the plain variant keeps measuring the legacy command
// unchanged since BENCH_pr6.json, so the two stay comparable across
// recordings and the delta between them is the cost of the extension.
func serveStatsSpec(name string, tenants int, extended bool) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		cl, ids := serveServer(name, tenants)
		req := sched.Request{{Color: 2, Count: 1}}
		for i, id := range ids {
			if _, _, err := cl.Submit(id, 0, req); err != nil {
				panic(fmt.Sprintf("bench: %s: seeding %s: %v", name, ids[i], err))
			}
		}
		stats := cl.StatsCompat
		if extended {
			stats = cl.Stats
		}
		op := func() error {
			rows, err := stats("")
			if err == nil && len(rows) != len(ids) {
				err = fmt.Errorf("stats returned %d rows, want %d", len(rows), len(ids))
			}
			return err
		}
		return op, Rates{}
	}}
}

// serveCkptSpec measures durable submit throughput: 64 tenants behind
// one connection, every applied round checkpoint-due (CheckpointEvery
// 1), under the named durability backend. The tiny queue cap couples
// the submit loop to the shard workers via overload backpressure, so
// the measured rate is applied-and-checkpointed throughput — in files
// mode every round pays a per-tenant file write and fsync, in log mode
// an append into the group-commit log whose fsyncs the background
// committer batches. The log/files ratio is the group commit's win;
// docs/PERFORMANCE.md quotes it. Extra records the backend's DuraStats
// so a run shows the fsync collapse (and, under -ckpt-adaptive, how
// many appends the pacer chose) rather than just the speedup.
func serveCkptSpec(name, mode string, adaptive bool) Spec {
	const tenants = 64
	type readout struct{ cl *serve.Client }
	ro := &readout{}
	return Spec{
		Name: name,
		Make: func() (func() error, Rates) {
			dir, err := os.MkdirTemp("", "rrbench-ckpt-")
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			srv, err := serve.NewServer(serve.Config{
				Addr:            "127.0.0.1:0",
				CheckpointDir:   dir,
				CheckpointEvery: 1,
				CkptMode:        mode,
				CkptAdaptive:    adaptive,
				DefaultQueueCap: 4,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			go srv.Serve()
			cl, err := serve.Dial(srv.Addr().String())
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			ro.cl = cl
			ids := make([]string, tenants)
			for i := range ids {
				ids[i] = fmt.Sprintf("ckpt-%03d", i)
				_, _, err = cl.Open(ids[i], serve.TenantConfig{
					Policy: "dlruedf", N: 16, Delta: 4,
					Delays: []int{2, 8, 4, 16, 2, 8, 4, 16},
				})
				if err != nil {
					panic(fmt.Sprintf("bench: %s: opening %s: %v", name, ids[i], err))
				}
			}
			req := sched.Request{
				{Color: 5, Count: 2}, {Color: 1, Count: 1}, {Color: 3, Count: 2},
				{Color: 1, Count: 1}, {Color: 7, Count: 2},
			}
			jobs := 0
			for _, b := range req {
				jobs += b.Count
			}
			seqs := make([]int, tenants)
			turn := 0
			op := func() error {
				i := turn
				turn = (turn + 1) % tenants
				for {
					_, _, err := cl.Submit(ids[i], seqs[i], req)
					if err == nil {
						seqs[i]++
						return nil
					}
					if !errors.Is(err, serve.ErrOverloaded) {
						return err
					}
					// The worker is busy checkpointing; backpressure, don't
					// fail — the stall is the cost being measured.
					runtime.Gosched()
				}
			}
			return op, Rates{Rounds: 1, Jobs: jobs}
		},
		Extra: func() map[string]float64 {
			if ro.cl == nil {
				return nil
			}
			st, err := ro.cl.DuraStats()
			if err != nil {
				return nil
			}
			return map[string]float64{
				"dura_appends":  float64(st.Appends),
				"dura_fsyncs":   float64(st.Fsyncs),
				"dura_bytes":    float64(st.Bytes),
				"dura_deltas":   float64(st.Deltas),
				"dura_segments": float64(st.Segments),
			}
		},
	}
}

// serveSkewedSpec measures one wave of skewed 64-tenant load through a
// single-shard server under the named cross-tenant allocator: tenant 0
// repeatedly dumps an adversarial Appendix-A burst in deep pipelined
// batch frames while 63 victim tenants strict-submit Zipf-sized router
// traces concurrently, and the op waits until the whole backlog drains.
// The server runs paced (RoundInterval set), so worker capacity is an
// explicit budget — one round per backlogged tenant per tick — and the
// allocator controls only its distribution: aggregate throughput is
// equal across allocators by construction, making the comparison
// machine-independent (an eager worker's capacity is CPU share, which
// on a loaded host the Go scheduler, not the allocator, decides). The
// quality difference is the Extra metric worst_victim_delay_factor —
// the worst victim tenant's delay-factor high-water mark. The
// adversary's own delay factor is excluded: its backlog is
// self-inflicted and near-identical under any allocator, while the
// victims' backlog is precisely what the allocator controls.
// docs/SCHEDULING.md quotes the wdrr-vs-fifo ratio.
func serveSkewedSpec(name, allocator string) Spec {
	const (
		tenants   = 64
		advRepeat = 16 // trace replays per op; keeps the burst pumping for the whole wave
		advWindow = 16 // pipelined batch frames in flight, so real depth builds
	)
	// The Extra hook reads the final sample's server after measurement,
	// so the spec closure carries the last-built client across Make calls.
	type readout struct {
		cl  *serve.Client
		ids []string
	}
	ro := &readout{}
	return Spec{
		Name: name,
		Make: func() (func() error, Rates) {
			insts, err := workload.SkewedFleet(11, tenants, 8, 48, 1.0, 6)
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			srv, err := serve.NewServer(serve.Config{
				Addr: "127.0.0.1:0", DefaultQueueCap: 16384,
				Shards: 1, Allocator: allocator,
				RoundInterval: 200 * time.Microsecond,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			go srv.Serve()
			cls := make([]*serve.Client, tenants)
			ids := make([]string, tenants)
			seqs := make([]int, tenants)
			totalRounds, totalJobs := 0, 0
			for i := range cls {
				cl, err := serve.Dial(srv.Addr().String())
				if err != nil {
					panic(fmt.Sprintf("bench: %s: %v", name, err))
				}
				cls[i] = cl
				ids[i] = fmt.Sprintf("skew-%03d", i)
				_, _, err = cl.Open(ids[i], serve.TenantConfig{
					Policy: "dlruedf", N: 16,
					Delta: insts[i].Delta, Delays: insts[i].Delays,
					QueueCap: 16384,
				})
				if err != nil {
					panic(fmt.Sprintf("bench: %s: opening %s: %v", name, ids[i], err))
				}
				mult := 1
				if i == 0 {
					mult = advRepeat
				}
				totalRounds += mult * insts[i].NumRounds()
				totalJobs += mult * insts[i].TotalJobs()
			}
			ro.cl, ro.ids = cls[0], ids
			op := func() error {
				errs := make([]error, tenants)
				var wg sync.WaitGroup
				wg.Add(tenants)
				go func() { // the adversary: a pipelined window of deep batch frames
					defer wg.Done()
					// The queue cap exceeds everything the window can hold in
					// flight, so no frame can be shed; any acknowledgement
					// error fails the op loudly.
					pl := cls[0].NewPipeline(advWindow, func(r serve.SubmitResult) {
						if r.Err != nil && errs[0] == nil {
							errs[0] = r.Err
						}
					})
					trace := insts[0].Requests
					for r := 0; r < advRepeat && errs[0] == nil; r++ {
						cursor := 0
						for cursor < len(trace) {
							k := min(serve.MaxBatch, len(trace)-cursor)
							if err := pl.SubmitBatch(ids[0], seqs[0], trace[cursor:cursor+k]); err != nil {
								errs[0] = err
								return
							}
							seqs[0] += k
							cursor += k
						}
					}
					if err := pl.Flush(); err != nil && errs[0] == nil {
						errs[0] = err
					}
				}()
				for i := 1; i < tenants; i++ {
					go func(i int) { // a victim: strict one-round submits
						defer wg.Done()
						for _, req := range insts[i].Requests {
							for {
								_, _, err := cls[i].Submit(ids[i], seqs[i], req)
								if err == nil {
									seqs[i]++
									break
								}
								if !errors.Is(err, serve.ErrOverloaded) {
									errs[i] = err
									return
								}
								runtime.Gosched()
							}
						}
					}(i)
				}
				wg.Wait()
				for _, e := range errs {
					if e != nil {
						return e
					}
				}
				// The op covers the wave end to end: wait for the shard
				// worker to apply the whole backlog, so rounds_per_sec is
				// applied throughput, not just admission throughput.
				for {
					rows, err := cls[0].Stats("")
					if err != nil {
						return err
					}
					depth := 0
					for _, r := range rows {
						depth += r.QueueDepth
					}
					if depth == 0 {
						return nil
					}
					runtime.Gosched()
				}
			}
			return op, Rates{Rounds: totalRounds, Jobs: totalJobs}
		},
		Extra: func() map[string]float64 {
			if ro.cl == nil {
				return nil
			}
			rows, err := ro.cl.Stats("")
			if err != nil {
				return nil
			}
			worst := 0.0
			for _, r := range rows {
				if r.ID == ro.ids[0] {
					continue // self-inflicted; see the spec comment
				}
				if r.MaxDelayFactor > worst {
					worst = r.MaxDelayFactor
				}
			}
			return map[string]float64{"worst_victim_delay_factor": worst}
		},
	}
}

// serveBDRSkewedSpec is the admission-control variant of the skewed
// wave (docs/SCHEDULING.md "Admission (layer 0)"): the same adversarial
// 64-tenant load against a -bdr server, with the victims holding BDR
// reservations from workload.ReservedFleet — jointly half the shard —
// and the adversary's own 0.9 reservation rejected at admission (the
// typed error is asserted, not tolerated), after which it runs
// best-effort. Extra records worst_reserved_delay_factor, the reserved
// victims' delay-factor high-water mark: the admission guarantee says
// it stays ≤ 1.0 however hard the adversary pumps, which is the
// quality bar BENCH comparisons watch.
//
// rounds_per_sec here is NOT comparable to serve/skewed/*: the budget
// floors keep the reserved victims' queues shallow, so fewer tenants
// are backlogged per paced tick and the worker's
// one-round-per-backlogged-tenant budget is smaller — the adversary's
// self-inflicted backlog drains slower precisely because the victims
// are no longer queueing behind it. advRepeat is reduced accordingly
// to keep the op short.
func serveBDRSkewedSpec(name string) Spec {
	const (
		tenants   = 64
		advRepeat = 4
		advWindow = 16
		resDelay  = 64
	)
	type readout struct {
		cl  *serve.Client
		ids []string
	}
	ro := &readout{}
	return Spec{
		Name: name,
		Make: func() (func() error, Rates) {
			insts, res, err := workload.ReservedFleet(11, tenants, 8, 48, 1.0, 6, resDelay)
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			srv, err := serve.NewServer(serve.Config{
				Addr: "127.0.0.1:0", DefaultQueueCap: 16384,
				Shards: 1, BDR: true,
				RoundInterval: 200 * time.Microsecond,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", name, err))
			}
			go srv.Serve()
			cls := make([]*serve.Client, tenants)
			ids := make([]string, tenants)
			seqs := make([]int, tenants)
			totalRounds, totalJobs := 0, 0
			open := func(i int, r workload.Reservation) error {
				tc := serve.TenantConfig{
					Policy: "dlruedf", N: 16,
					Delta: insts[i].Delta, Delays: insts[i].Delays,
					QueueCap: 16384,
					ResRate:  r.Rate, ResDelay: r.Delay,
				}
				_, _, err := cls[i].Open(ids[i], tc)
				return err
			}
			for i := range cls {
				cl, err := serve.Dial(srv.Addr().String())
				if err != nil {
					panic(fmt.Sprintf("bench: %s: %v", name, err))
				}
				cls[i] = cl
				ids[i] = fmt.Sprintf("skew-%03d", i)
				mult := 1
				if i == 0 {
					mult = advRepeat
				}
				totalRounds += mult * insts[i].NumRounds()
				totalJobs += mult * insts[i].TotalJobs()
			}
			// Victims first: their reservations are jointly feasible in
			// any order and must hold the shard before the adversary asks.
			for i := 1; i < tenants; i++ {
				if err := open(i, res[i]); err != nil {
					panic(fmt.Sprintf("bench: %s: opening %s: %v", name, ids[i], err))
				}
			}
			// The adversary's 0.9 cannot fit the residual half: the typed
			// rejection is the admission story this spec exists to pin.
			var ae *serve.AdmissionError
			if err := open(0, res[0]); !errors.As(err, &ae) {
				panic(fmt.Sprintf("bench: %s: adversary reserved open = %v, want *serve.AdmissionError", name, err))
			}
			if err := open(0, workload.Reservation{}); err != nil {
				panic(fmt.Sprintf("bench: %s: adversary best-effort open: %v", name, err))
			}
			ro.cl, ro.ids = cls[0], ids
			op := func() error {
				errs := make([]error, tenants)
				var wg sync.WaitGroup
				wg.Add(tenants)
				go func() { // the adversary: a pipelined window of deep batch frames
					defer wg.Done()
					pl := cls[0].NewPipeline(advWindow, func(r serve.SubmitResult) {
						if r.Err != nil && errs[0] == nil {
							errs[0] = r.Err
						}
					})
					trace := insts[0].Requests
					for r := 0; r < advRepeat && errs[0] == nil; r++ {
						cursor := 0
						for cursor < len(trace) {
							k := min(serve.MaxBatch, len(trace)-cursor)
							if err := pl.SubmitBatch(ids[0], seqs[0], trace[cursor:cursor+k]); err != nil {
								errs[0] = err
								return
							}
							seqs[0] += k
							cursor += k
						}
					}
					if err := pl.Flush(); err != nil && errs[0] == nil {
						errs[0] = err
					}
				}()
				for i := 1; i < tenants; i++ {
					go func(i int) { // a reserved victim: strict one-round submits
						defer wg.Done()
						for _, req := range insts[i].Requests {
							for {
								_, _, err := cls[i].Submit(ids[i], seqs[i], req)
								if err == nil {
									seqs[i]++
									break
								}
								if !errors.Is(err, serve.ErrOverloaded) {
									errs[i] = err
									return
								}
								runtime.Gosched()
							}
						}
					}(i)
				}
				wg.Wait()
				for _, e := range errs {
					if e != nil {
						return e
					}
				}
				for {
					rows, err := cls[0].Stats("")
					if err != nil {
						return err
					}
					depth := 0
					for _, r := range rows {
						depth += r.QueueDepth
					}
					if depth == 0 {
						return nil
					}
					runtime.Gosched()
				}
			}
			return op, Rates{Rounds: totalRounds, Jobs: totalJobs}
		},
		Extra: func() map[string]float64 {
			if ro.cl == nil {
				return nil
			}
			rows, err := ro.cl.Stats("")
			if err != nil {
				return nil
			}
			worst := 0.0
			for _, r := range rows {
				if r.ReservedRate == 0 {
					continue // the adversary runs best-effort; only guarantees count
				}
				if r.MaxDelayFactor > worst {
					worst = r.MaxDelayFactor
				}
			}
			return map[string]float64{"worst_reserved_delay_factor": worst}
		},
	}
}

// sweepSpec measures the sharded sweep runner end to end: 16 independent
// ΔLRU-EDF simulations of 256 rounds each. workers 0 means GOMAXPROCS,
// so serial vs parallel quantifies the runner's scaling on this host
// (≈1.0 on a single-core machine — see docs/PERFORMANCE.md).
func sweepSpec(name string, workers int) Spec {
	return Spec{Name: name, Make: func() (func() error, Rates) {
		seeds := make([]uint64, 16)
		for i := range seeds {
			seeds[i] = 900 + uint64(i)
		}
		rounds, jobs := 0, 0
		for _, seed := range seeds {
			in := workload.Router(seed, 4, 8, 256, 12)
			r, err := sched.Run(in, core.NewDLRUEDF(), sched.Options{N: 16})
			if err != nil {
				panic(fmt.Sprintf("bench: %s probe run: %v", name, err))
			}
			rounds += r.Rounds
			jobs += in.TotalJobs()
		}
		op := func() error {
			_, err := exp.Sweep(workers, seeds, func(seed uint64) (int64, error) {
				in := workload.Router(seed, 4, 8, 256, 12)
				r, err := sched.Run(in, core.NewDLRUEDF(), sched.Options{N: 16})
				if err != nil {
					return 0, err
				}
				return r.Cost.Total(), nil
			})
			return err
		}
		return op, Rates{Rounds: rounds, Jobs: jobs}
	}}
}
