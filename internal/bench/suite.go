package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultSuite is the fixed benchmark set behind `rrbench -json`: the
// hot paths whose numbers docs/PERFORMANCE.md tracks. Every spec is
// deterministic (fixed seeds), so two runs on the same machine differ
// only by timing noise — which is exactly what -compare's threshold
// absorbs.
func DefaultSuite() []Spec {
	return []Spec{
		fullRunSpec("run/dlruedf/router4096", func() sched.Policy { return core.NewDLRUEDF() }),
		fullRunSpec("run/dlru/router4096", func() sched.Policy { return policy.NewDLRU() }),
		fullRunSpec("run/edf/router4096", func() sched.Policy { return policy.NewEDF() }),
		stepSpec("step/dlruedf", func() sched.Policy { return core.NewDLRUEDF() }),
		stepSpec("step/dlru", func() sched.Policy { return policy.NewDLRU() }),
		stepSpec("step/edf", func() sched.Policy { return policy.NewEDF() }),
		sweepSpec("sweep/dlruedf/16x256/serial", 1),
		sweepSpec("sweep/dlruedf/16x256/parallel", 0),
	}
}

// fullRunSpec measures a complete sched.Run of a policy over a fixed
// mid-size router trace (the same one bench_test.go's Engine benchmarks
// use), yielding meaningful rounds/s and jobs/s rates.
func fullRunSpec(name string, mk func() sched.Policy) Spec {
	return Spec{Name: name, Make: func() (func() error, int, int) {
		inst := workload.Router(3, 4, 8, 4096, 12)
		probe, err := sched.Run(inst, mk(), sched.Options{N: 16})
		if err != nil {
			panic(fmt.Sprintf("bench: %s probe run: %v", name, err))
		}
		op := func() error {
			_, err := sched.Run(inst, mk(), sched.Options{N: 16})
			return err
		}
		return op, probe.Rounds, inst.TotalJobs()
	}}
}

// stepSpec measures one steady-state Stream.Step for a policy — the full
// per-round dataplane cost. The stream is warmed before measurement so
// the op exercises the zero-allocation contract (allocs_per_op must stay
// 0; -compare flags any growth).
func stepSpec(name string, mk func() sched.Policy) Spec {
	return Spec{Name: name, Make: func() (func() error, int, int) {
		st, err := sched.NewStream(mk(), sched.StreamConfig{
			N: 16, Delta: 4, Delays: []int{2, 8, 4, 16, 2, 8, 4, 16},
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", name, err))
		}
		// Unsorted request with a duplicate batch so every Step pays for
		// normalization too; same shape as the alloc-pinning tests.
		req := sched.Request{
			{Color: 5, Count: 2}, {Color: 1, Count: 1}, {Color: 3, Count: 2},
			{Color: 1, Count: 1}, {Color: 7, Count: 2},
		}
		jobs := 0
		for _, b := range req {
			jobs += b.Count
		}
		for i := 0; i < 512; i++ { // steady state: warm buffers, bounded pool
			if _, err := st.Step(req); err != nil {
				panic(fmt.Sprintf("bench: %s warm-up: %v", name, err))
			}
		}
		op := func() error {
			_, err := st.Step(req)
			return err
		}
		return op, 1, jobs
	}}
}

// sweepSpec measures the sharded sweep runner end to end: 16 independent
// ΔLRU-EDF simulations of 256 rounds each. workers 0 means GOMAXPROCS,
// so serial vs parallel quantifies the runner's scaling on this host
// (≈1.0 on a single-core machine — see docs/PERFORMANCE.md).
func sweepSpec(name string, workers int) Spec {
	return Spec{Name: name, Make: func() (func() error, int, int) {
		seeds := make([]uint64, 16)
		for i := range seeds {
			seeds[i] = 900 + uint64(i)
		}
		rounds, jobs := 0, 0
		for _, seed := range seeds {
			in := workload.Router(seed, 4, 8, 256, 12)
			r, err := sched.Run(in, core.NewDLRUEDF(), sched.Options{N: 16})
			if err != nil {
				panic(fmt.Sprintf("bench: %s probe run: %v", name, err))
			}
			rounds += r.Rounds
			jobs += in.TotalJobs()
		}
		op := func() error {
			_, err := exp.Sweep(workers, seeds, func(seed uint64) (int64, error) {
				in := workload.Router(seed, 4, 8, 256, 12)
				r, err := sched.Run(in, core.NewDLRUEDF(), sched.Options{N: 16})
				if err != nil {
					return 0, err
				}
				return r.Cost.Total(), nil
			})
			return err
		}
		return op, rounds, jobs
	}}
}
