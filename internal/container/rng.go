package container

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). All workload generators take an explicit *RNG so every
// experiment is reproducible from a seed; nothing in the repository draws
// entropy from the environment.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's internal state so it can be
// checkpointed; SetState(State()) resumes the stream exactly where it
// left off.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state, typically with a
// value previously obtained from State when restoring a checkpoint.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("container: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("container: RNG.IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Poisson returns a Poisson-distributed sample with the given mean, using
// Knuth's method for small means and a normal approximation for large
// ones. Means up to a few thousand are exercised by the workload
// generators.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction; adequate for
		// workload generation (not for statistical inference).
		v := mean + math.Sqrt(mean)*r.Normal()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal returns a standard normal sample (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Geometric returns a geometric sample: the number of failures before the
// first success with success probability p in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("container: RNG.Geometric with non-positive p")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf samples from {0, …, n-1} with P(i) ∝ 1/(i+1)^s using inverse
// transform over precomputed weights held by the caller via ZipfWeights.
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s ≥ 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("container: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cumulative weight ≥ u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n indices via swaps provided by swap,
// Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
