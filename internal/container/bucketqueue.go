package container

// BucketQueue tracks pending unit jobs of one color as a FIFO of
// (deadline, count) buckets. Deadlines are pushed in nondecreasing order
// (arrival time and delay bound are both nondecreasing per color in the
// model), so the front bucket always holds the earliest deadline.
//
// It supports the three operations the simulator needs per round:
// Add (arrival phase), ExpireThrough (drop phase) and TakeEarliest
// (execution phase), all amortized O(1).
type BucketQueue struct {
	buckets ringBuf
	total   int
}

// Bucket is a group of identical pending jobs: Count unit jobs that all
// expire at the start of round Deadline.
type Bucket struct {
	Deadline int
	Count    int
}

// Len reports the total number of pending jobs across all buckets.
func (q *BucketQueue) Len() int { return q.total }

// Empty reports whether no jobs are pending.
func (q *BucketQueue) Empty() bool { return q.total == 0 }

// Add records count jobs with the given deadline. Deadlines must be
// nondecreasing across calls; Add panics otherwise, because a violation
// means the caller broke the model invariant (per-color delay bounds are
// fixed, so deadlines arrive in order).
func (q *BucketQueue) Add(deadline, count int) {
	if count <= 0 {
		return
	}
	if n := q.buckets.len(); n > 0 {
		back := q.buckets.at(n - 1)
		if deadline < back.Deadline {
			panic("container: BucketQueue deadlines must be nondecreasing")
		}
		if deadline == back.Deadline {
			back.Count += count
			q.total += count
			return
		}
	}
	q.buckets.pushBack(Bucket{Deadline: deadline, Count: count})
	q.total += count
}

// EarliestDeadline returns the deadline of the oldest pending bucket.
// ok is false when the queue is empty.
func (q *BucketQueue) EarliestDeadline() (deadline int, ok bool) {
	if q.buckets.len() == 0 {
		return 0, false
	}
	return q.buckets.at(0).Deadline, true
}

// ExpireThrough drops every job whose deadline is ≤ round and returns the
// number of jobs dropped. (The model drops jobs with deadline exactly the
// current round; using ≤ makes the operation idempotent and robust.)
func (q *BucketQueue) ExpireThrough(round int) int {
	dropped := 0
	for q.buckets.len() > 0 {
		front := q.buckets.at(0)
		if front.Deadline > round {
			break
		}
		dropped += front.Count
		q.buckets.popFront()
	}
	q.total -= dropped
	return dropped
}

// TakeEarliest removes one job with the earliest deadline (EDF within the
// color, which is dominant). It returns the deadline of the executed job;
// ok is false when nothing is pending.
func (q *BucketQueue) TakeEarliest() (deadline int, ok bool) {
	if q.buckets.len() == 0 {
		return 0, false
	}
	front := q.buckets.at(0)
	deadline = front.Deadline
	front.Count--
	if front.Count == 0 {
		q.buckets.popFront()
	}
	q.total--
	return deadline, true
}

// Clear removes all pending jobs, retaining capacity.
func (q *BucketQueue) Clear() {
	q.buckets.clear()
	q.total = 0
}

// Buckets appends a copy of the pending buckets to dst and returns it,
// front (earliest) first. It is used by the brute-force optimizer to build
// state signatures.
func (q *BucketQueue) Buckets(dst []Bucket) []Bucket {
	n := q.buckets.len()
	for i := 0; i < n; i++ {
		dst = append(dst, *q.buckets.at(i))
	}
	return dst
}

// ringBuf is a growable ring buffer of Buckets, avoiding the per-element
// allocation of a linked list in the simulator's hot path.
type ringBuf struct {
	data  []Bucket
	head  int
	count int
}

func (r *ringBuf) len() int { return r.count }

func (r *ringBuf) at(i int) *Bucket {
	return &r.data[(r.head+i)%len(r.data)]
}

func (r *ringBuf) pushBack(b Bucket) {
	if r.count == len(r.data) {
		r.grow()
	}
	r.data[(r.head+r.count)%len(r.data)] = b
	r.count++
}

func (r *ringBuf) popFront() {
	r.data[r.head] = Bucket{}
	r.head = (r.head + 1) % len(r.data)
	r.count--
	if r.count == 0 {
		r.head = 0
	}
}

func (r *ringBuf) clear() {
	for i := range r.data {
		r.data[i] = Bucket{}
	}
	r.head, r.count = 0, 0
}

func (r *ringBuf) grow() {
	newCap := 2 * len(r.data)
	if newCap == 0 {
		newCap = 4
	}
	nd := make([]Bucket, newCap)
	for i := 0; i < r.count; i++ {
		nd[i] = *r.at(i)
	}
	r.data = nd
	r.head = 0
}
