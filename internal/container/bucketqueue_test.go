package container

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBucketQueueBasic(t *testing.T) {
	var q BucketQueue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero BucketQueue not empty")
	}
	if _, ok := q.EarliestDeadline(); ok {
		t.Fatal("EarliestDeadline on empty queue reported ok")
	}
	q.Add(5, 3)
	q.Add(5, 2) // merges into the same bucket
	q.Add(7, 1)
	if q.Len() != 6 {
		t.Fatalf("Len = %d, want 6", q.Len())
	}
	if dl, ok := q.EarliestDeadline(); !ok || dl != 5 {
		t.Fatalf("EarliestDeadline = (%d,%v), want (5,true)", dl, ok)
	}
	dl, ok := q.TakeEarliest()
	if !ok || dl != 5 {
		t.Fatalf("TakeEarliest = (%d,%v)", dl, ok)
	}
	if q.Len() != 5 {
		t.Fatalf("Len after take = %d", q.Len())
	}
}

func TestBucketQueueAddZeroOrNegative(t *testing.T) {
	var q BucketQueue
	q.Add(1, 0)
	q.Add(1, -5)
	if !q.Empty() {
		t.Fatal("zero/negative Add changed the queue")
	}
}

func TestBucketQueueNondecreasingPanic(t *testing.T) {
	var q BucketQueue
	q.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with decreasing deadline did not panic")
		}
	}()
	q.Add(9, 1)
}

func TestBucketQueueExpire(t *testing.T) {
	var q BucketQueue
	q.Add(3, 2)
	q.Add(5, 4)
	q.Add(9, 1)
	if n := q.ExpireThrough(2); n != 0 {
		t.Fatalf("ExpireThrough(2) dropped %d, want 0", n)
	}
	if n := q.ExpireThrough(5); n != 6 {
		t.Fatalf("ExpireThrough(5) dropped %d, want 6", n)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after expiry, want 1", q.Len())
	}
	if dl, _ := q.EarliestDeadline(); dl != 9 {
		t.Fatalf("EarliestDeadline = %d, want 9", dl)
	}
	// Idempotent.
	if n := q.ExpireThrough(5); n != 0 {
		t.Fatalf("repeated ExpireThrough dropped %d", n)
	}
}

func TestBucketQueueTakeDrainsBuckets(t *testing.T) {
	var q BucketQueue
	q.Add(1, 1)
	q.Add(2, 1)
	if dl, _ := q.TakeEarliest(); dl != 1 {
		t.Fatal("first take should return deadline 1")
	}
	if dl, _ := q.TakeEarliest(); dl != 2 {
		t.Fatal("second take should return deadline 2")
	}
	if _, ok := q.TakeEarliest(); ok {
		t.Fatal("take on empty queue reported ok")
	}
}

func TestBucketQueueClearAndBuckets(t *testing.T) {
	var q BucketQueue
	q.Add(1, 2)
	q.Add(4, 3)
	bs := q.Buckets(nil)
	if len(bs) != 2 || bs[0] != (Bucket{1, 2}) || bs[1] != (Bucket{4, 3}) {
		t.Fatalf("Buckets = %v", bs)
	}
	q.Clear()
	if !q.Empty() {
		t.Fatal("Clear left jobs")
	}
	q.Add(0, 1) // usable after Clear, even with a smaller deadline
	if q.Len() != 1 {
		t.Fatal("queue unusable after Clear")
	}
}

// TestBucketQueueAgainstModel exercises the ring buffer growth and
// wrap-around against a naive slice model.
func TestBucketQueueAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q BucketQueue
	var model []Bucket // sorted by deadline, merged
	deadline := 0
	modelLen := func() int {
		n := 0
		for _, b := range model {
			n += b.Count
		}
		return n
	}
	for step := 0; step < 3000; step++ {
		switch rng.Intn(3) {
		case 0: // add
			deadline += rng.Intn(3)
			cnt := 1 + rng.Intn(4)
			q.Add(deadline, cnt)
			if n := len(model); n > 0 && model[n-1].Deadline == deadline {
				model[n-1].Count += cnt
			} else {
				model = append(model, Bucket{deadline, cnt})
			}
		case 1: // take
			gdl, gok := q.TakeEarliest()
			if gok != (len(model) > 0) {
				t.Fatalf("step %d: take ok mismatch", step)
			}
			if gok {
				if gdl != model[0].Deadline {
					t.Fatalf("step %d: take deadline %d, model %d", step, gdl, model[0].Deadline)
				}
				model[0].Count--
				if model[0].Count == 0 {
					model = model[1:]
				}
			}
		case 2: // expire
			r := deadline - rng.Intn(4)
			got := q.ExpireThrough(r)
			want := 0
			for len(model) > 0 && model[0].Deadline <= r {
				want += model[0].Count
				model = model[1:]
			}
			if got != want {
				t.Fatalf("step %d: expire dropped %d, model %d", step, got, want)
			}
		}
		if q.Len() != modelLen() {
			t.Fatalf("step %d: Len %d, model %d", step, q.Len(), modelLen())
		}
	}
}

// Property: total jobs added equals jobs taken plus jobs expired plus jobs
// remaining, for any sequence of nonnegative deadline increments.
func TestBucketQueueConservationProperty(t *testing.T) {
	f := func(incs []uint8, counts []uint8) bool {
		var q BucketQueue
		deadline, added := 0, 0
		for i := range incs {
			deadline += int(incs[i] % 4)
			c := 1
			if len(counts) > 0 {
				c = int(counts[i%len(counts)]%5) + 1
			}
			q.Add(deadline, c)
			added += c
		}
		taken := 0
		for i := 0; i < added/2; i++ {
			if _, ok := q.TakeEarliest(); ok {
				taken++
			}
		}
		expired := q.ExpireThrough(deadline + 100)
		return added == taken+expired && q.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
