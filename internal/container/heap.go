// Package container provides the data-structure substrate used by the
// scheduling policies: an indexed min-heap with decrease-key, a deadline
// bucket queue, an intrusive LRU list, a multiset, a deque, and a
// deterministic RNG. All structures are deterministic and allocation-lean;
// none are safe for concurrent use unless stated otherwise.
package container

// IndexedHeap is a binary min-heap over items identified by a comparable
// key. It supports O(log n) push, pop, remove-by-key and priority update
// (both decrease and increase), which the EDF-style policies need when a
// color's deadline or idleness rank changes in place.
//
// The zero value is not ready for use; construct with NewIndexedHeap.
type IndexedHeap[K comparable, P any] struct {
	items []heapItem[K, P]
	pos   map[K]int
	less  func(a, b P) bool
}

type heapItem[K comparable, P any] struct {
	key K
	pri P
}

// NewIndexedHeap returns an empty indexed heap ordered by less
// (a min-heap: the item for which less(a, b) holds for all other b pops
// first).
func NewIndexedHeap[K comparable, P any](less func(a, b P) bool) *IndexedHeap[K, P] {
	return &IndexedHeap[K, P]{
		pos:  make(map[K]int),
		less: less,
	}
}

// Len reports the number of items in the heap.
func (h *IndexedHeap[K, P]) Len() int { return len(h.items) }

// Contains reports whether key is present.
func (h *IndexedHeap[K, P]) Contains(key K) bool {
	_, ok := h.pos[key]
	return ok
}

// Priority returns the priority stored for key, and whether key is present.
func (h *IndexedHeap[K, P]) Priority(key K) (P, bool) {
	i, ok := h.pos[key]
	if !ok {
		var zero P
		return zero, false
	}
	return h.items[i].pri, true
}

// Push inserts key with the given priority. If key is already present its
// priority is updated instead (equivalent to Update).
func (h *IndexedHeap[K, P]) Push(key K, pri P) {
	if i, ok := h.pos[key]; ok {
		h.items[i].pri = pri
		h.fix(i)
		return
	}
	h.items = append(h.items, heapItem[K, P]{key: key, pri: pri})
	i := len(h.items) - 1
	h.pos[key] = i
	h.up(i)
}

// Update changes the priority of key and restores heap order. It reports
// whether key was present.
func (h *IndexedHeap[K, P]) Update(key K, pri P) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	h.items[i].pri = pri
	h.fix(i)
	return true
}

// Min returns the key and priority of the minimum item without removing
// it. ok is false when the heap is empty.
func (h *IndexedHeap[K, P]) Min() (key K, pri P, ok bool) {
	if len(h.items) == 0 {
		var zk K
		var zp P
		return zk, zp, false
	}
	return h.items[0].key, h.items[0].pri, true
}

// Pop removes and returns the minimum item. ok is false when empty.
func (h *IndexedHeap[K, P]) Pop() (key K, pri P, ok bool) {
	if len(h.items) == 0 {
		var zk K
		var zp P
		return zk, zp, false
	}
	top := h.items[0]
	h.removeAt(0)
	return top.key, top.pri, true
}

// Remove deletes key from the heap, reporting whether it was present.
func (h *IndexedHeap[K, P]) Remove(key K) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

// Clear empties the heap, retaining allocated capacity.
func (h *IndexedHeap[K, P]) Clear() {
	h.items = h.items[:0]
	clear(h.pos)
}

// Keys returns the keys currently in the heap in unspecified order.
func (h *IndexedHeap[K, P]) Keys() []K {
	return h.AppendKeys(make([]K, 0, len(h.items)))
}

// AppendKeys appends the keys currently in the heap to dst in unspecified
// order and returns it. Allocation-free once dst has capacity; hot paths
// (the engine's nonidle-color scan) use it with reusable scratch.
func (h *IndexedHeap[K, P]) AppendKeys(dst []K) []K {
	for _, it := range h.items {
		dst = append(dst, it.key)
	}
	return dst
}

// Export calls f for every (key, priority) pair in internal array
// order. Together with Import it lets a checkpoint preserve the heap's
// exact layout: restoring the same array order guarantees the restored
// heap breaks priority ties identically to the original, which the
// deterministic-resume contract of the checkpoint subsystem relies on.
func (h *IndexedHeap[K, P]) Export(f func(key K, pri P)) {
	for _, it := range h.items {
		f(it.key, it.pri)
	}
}

// Import appends one item without re-establishing heap order, rebuilding
// the exact layout captured by Export: the caller must Clear first and
// replay the pairs in Export order. It reports false (and leaves the
// heap unchanged) when key is already present — a corrupt checkpoint,
// which the caller must treat as an error.
func (h *IndexedHeap[K, P]) Import(key K, pri P) bool {
	if _, ok := h.pos[key]; ok {
		return false
	}
	h.items = append(h.items, heapItem[K, P]{key: key, pri: pri})
	h.pos[key] = len(h.items) - 1
	return true
}

func (h *IndexedHeap[K, P]) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].key)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].key] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.fix(i)
	}
}

func (h *IndexedHeap[K, P]) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *IndexedHeap[K, P]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i].pri, h.items[parent].pri) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts item i toward the leaves; it reports whether the item moved.
func (h *IndexedHeap[K, P]) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(h.items[r].pri, h.items[l].pri) {
			child = r
		}
		if !h.less(h.items[child].pri, h.items[i].pri) {
			break
		}
		h.swap(i, child)
		i = child
	}
	return i > start
}

func (h *IndexedHeap[K, P]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].key] = i
	h.pos[h.items[j].key] = j
}
