package container

// LRUList is an intrusive recency list over items identified by a
// comparable key, with O(1) Touch, Remove, and access to both the most
// and least recently used ends. The ΔLRU-style policies use it to keep
// colors ordered by timestamp recency with deterministic tie-breaking
// (ties are broken by touch order, which the policies make deterministic
// by touching in a fixed color order).
type LRUList[K comparable] struct {
	nodes map[K]*lruNode[K]
	// sentinel.next is the most recently used, sentinel.prev the least.
	sentinel lruNode[K]
	inited   bool
}

type lruNode[K comparable] struct {
	key        K
	prev, next *lruNode[K]
}

// NewLRUList returns an empty recency list.
func NewLRUList[K comparable]() *LRUList[K] {
	l := &LRUList[K]{nodes: make(map[K]*lruNode[K])}
	l.init()
	return l
}

func (l *LRUList[K]) init() {
	l.sentinel.next = &l.sentinel
	l.sentinel.prev = &l.sentinel
	l.inited = true
}

// Len reports the number of items in the list.
func (l *LRUList[K]) Len() int { return len(l.nodes) }

// Contains reports whether key is present.
func (l *LRUList[K]) Contains(key K) bool {
	_, ok := l.nodes[key]
	return ok
}

// Touch moves key to the most-recently-used position, inserting it if
// absent.
func (l *LRUList[K]) Touch(key K) {
	n, ok := l.nodes[key]
	if ok {
		l.unlink(n)
	} else {
		n = &lruNode[K]{key: key}
		l.nodes[key] = n
	}
	// Insert at front (MRU side).
	n.next = l.sentinel.next
	n.prev = &l.sentinel
	n.next.prev = n
	l.sentinel.next = n
}

// Remove deletes key, reporting whether it was present.
func (l *LRUList[K]) Remove(key K) bool {
	n, ok := l.nodes[key]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.nodes, key)
	return true
}

// MRU returns the most recently touched key; ok is false when empty.
func (l *LRUList[K]) MRU() (key K, ok bool) {
	if len(l.nodes) == 0 {
		var zero K
		return zero, false
	}
	return l.sentinel.next.key, true
}

// LRU returns the least recently touched key; ok is false when empty.
func (l *LRUList[K]) LRU() (key K, ok bool) {
	if len(l.nodes) == 0 {
		var zero K
		return zero, false
	}
	return l.sentinel.prev.key, true
}

// MostRecent appends up to k keys in MRU→LRU order to dst and returns it.
func (l *LRUList[K]) MostRecent(dst []K, k int) []K {
	for n := l.sentinel.next; n != &l.sentinel && k > 0; n = n.next {
		dst = append(dst, n.key)
		k--
	}
	return dst
}

// Keys returns all keys in MRU→LRU order.
func (l *LRUList[K]) Keys() []K {
	out := make([]K, 0, len(l.nodes))
	for n := l.sentinel.next; n != &l.sentinel; n = n.next {
		out = append(out, n.key)
	}
	return out
}

func (l *LRUList[K]) unlink(n *lruNode[K]) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}
