package container

import (
	"math/rand"
	"testing"
)

func TestLRUListBasic(t *testing.T) {
	l := NewLRUList[string]()
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if _, ok := l.MRU(); ok {
		t.Fatal("MRU on empty list reported ok")
	}
	if _, ok := l.LRU(); ok {
		t.Fatal("LRU on empty list reported ok")
	}
	l.Touch("a")
	l.Touch("b")
	l.Touch("c")
	if k, _ := l.MRU(); k != "c" {
		t.Fatalf("MRU = %s, want c", k)
	}
	if k, _ := l.LRU(); k != "a" {
		t.Fatalf("LRU = %s, want a", k)
	}
	l.Touch("a") // re-touch moves to front
	if k, _ := l.MRU(); k != "a" {
		t.Fatalf("MRU after retouch = %s, want a", k)
	}
	if k, _ := l.LRU(); k != "b" {
		t.Fatalf("LRU after retouch = %s, want b", k)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestLRUListRemove(t *testing.T) {
	l := NewLRUList[int]()
	for i := 0; i < 5; i++ {
		l.Touch(i)
	}
	if !l.Remove(2) {
		t.Fatal("Remove reported missing")
	}
	if l.Remove(2) {
		t.Fatal("double Remove reported present")
	}
	if l.Contains(2) {
		t.Fatal("removed key still present")
	}
	keys := l.Keys()
	want := []int{4, 3, 1, 0}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestLRUListMostRecent(t *testing.T) {
	l := NewLRUList[int]()
	for i := 0; i < 6; i++ {
		l.Touch(i)
	}
	got := l.MostRecent(nil, 3)
	want := []int{5, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MostRecent = %v, want %v", got, want)
		}
	}
	// Asking for more than available returns everything.
	all := l.MostRecent(nil, 100)
	if len(all) != 6 {
		t.Fatalf("MostRecent(100) returned %d items", len(all))
	}
}

// TestLRUListAgainstModel drives the list against a slice model.
func TestLRUListAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := NewLRUList[int]()
	var model []int // MRU first
	find := func(k int) int {
		for i, v := range model {
			if v == k {
				return i
			}
		}
		return -1
	}
	for step := 0; step < 4000; step++ {
		k := rng.Intn(20)
		if rng.Intn(3) == 0 {
			got := l.Remove(k)
			i := find(k)
			if got != (i >= 0) {
				t.Fatalf("step %d: Remove(%d) = %v, model %v", step, k, got, i >= 0)
			}
			if i >= 0 {
				model = append(model[:i], model[i+1:]...)
			}
		} else {
			l.Touch(k)
			if i := find(k); i >= 0 {
				model = append(model[:i], model[i+1:]...)
			}
			model = append([]int{k}, model...)
		}
		keys := l.Keys()
		if len(keys) != len(model) {
			t.Fatalf("step %d: Len %d, model %d", step, len(keys), len(model))
		}
		for i := range keys {
			if keys[i] != model[i] {
				t.Fatalf("step %d: order %v, model %v", step, keys, model)
			}
		}
	}
}
