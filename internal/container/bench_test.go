package container

import "testing"

func BenchmarkIndexedHeapPushPop(b *testing.B) {
	h := NewIndexedHeap[int, int](func(a, c int) bool { return a < c })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Push(i%1024, (i*2654435761)%100000)
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

func BenchmarkIndexedHeapUpdate(b *testing.B) {
	h := NewIndexedHeap[int, int](func(a, c int) bool { return a < c })
	for i := 0; i < 1024; i++ {
		h.Push(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(i%1024, (i*31)%100000)
	}
}

func BenchmarkBucketQueueCycle(b *testing.B) {
	var q BucketQueue
	b.ReportAllocs()
	deadline := 0
	for i := 0; i < b.N; i++ {
		deadline++
		q.Add(deadline, 4)
		q.TakeEarliest()
		q.TakeEarliest()
		q.ExpireThrough(deadline - 8)
	}
}

func BenchmarkLRUListTouch(b *testing.B) {
	l := NewLRUList[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Touch(i % 256)
	}
}

func BenchmarkRNGPoisson(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Poisson(3.5)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := NewRNG(2)
	z := NewZipf(r, 1024, 1.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
