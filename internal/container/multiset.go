package container

import "sort"

// Multiset is a counted set over a comparable key type. The simulator uses
// it to represent cache configurations as multisets of colors (several
// locations may hold the same color), and the brute-force optimizer uses
// multiset intersection to compute minimal reconfiguration costs between
// configurations.
type Multiset[K comparable] struct {
	counts map[K]int
	size   int
}

// NewMultiset returns an empty multiset.
func NewMultiset[K comparable]() *Multiset[K] {
	return &Multiset[K]{counts: make(map[K]int)}
}

// Len reports the total number of elements counted with multiplicity.
func (m *Multiset[K]) Len() int { return m.size }

// Count returns the multiplicity of key.
func (m *Multiset[K]) Count(key K) int { return m.counts[key] }

// Add increases the multiplicity of key by n (n may be negative, but the
// multiplicity never drops below zero).
func (m *Multiset[K]) Add(key K, n int) {
	c := m.counts[key] + n
	if c <= 0 {
		m.size -= m.counts[key]
		delete(m.counts, key)
		return
	}
	m.size += c - m.counts[key]
	m.counts[key] = c
}

// Distinct reports the number of distinct keys present.
func (m *Multiset[K]) Distinct() int { return len(m.counts) }

// ForEach calls fn for every distinct key with its multiplicity, in
// unspecified order.
func (m *Multiset[K]) ForEach(fn func(key K, count int)) {
	for k, c := range m.counts {
		fn(k, c)
	}
}

// IntersectionSize returns |m ∩ o| counted with multiplicity: the number
// of elements that can be matched one-to-one between the two multisets.
func (m *Multiset[K]) IntersectionSize(o *Multiset[K]) int {
	// Iterate over the smaller map.
	a, b := m, o
	if len(b.counts) < len(a.counts) {
		a, b = b, a
	}
	n := 0
	for k, ca := range a.counts {
		if cb := b.counts[k]; cb < ca {
			n += cb
		} else {
			n += ca
		}
	}
	return n
}

// Clone returns a deep copy.
func (m *Multiset[K]) Clone() *Multiset[K] {
	c := &Multiset[K]{counts: make(map[K]int, len(m.counts)), size: m.size}
	for k, v := range m.counts {
		c.counts[k] = v
	}
	return c
}

// Clear removes all elements.
func (m *Multiset[K]) Clear() {
	clear(m.counts)
	m.size = 0
}

// SortedSlice expands the multiset into a sorted slice using less for
// ordering of distinct keys; elements repeat per multiplicity. It is used
// to build canonical configuration signatures.
func SortedSlice[K comparable](m *Multiset[K], less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	out := make([]K, 0, m.size)
	for _, k := range keys {
		for i := 0; i < m.counts[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}
