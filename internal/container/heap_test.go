package container

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *IndexedHeap[int, int] {
	return NewIndexedHeap[int, int](func(a, b int) bool { return a < b })
}

func TestIndexedHeapBasic(t *testing.T) {
	h := intHeap()
	if h.Len() != 0 {
		t.Fatalf("new heap has Len %d", h.Len())
	}
	if _, _, ok := h.Min(); ok {
		t.Fatal("Min on empty heap reported ok")
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	h.Push(1, 30)
	h.Push(2, 10)
	h.Push(3, 20)
	if k, p, ok := h.Min(); !ok || k != 2 || p != 10 {
		t.Fatalf("Min = (%d,%d,%v), want (2,10,true)", k, p, ok)
	}
	if !h.Contains(3) || h.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if p, ok := h.Priority(3); !ok || p != 20 {
		t.Fatalf("Priority(3) = (%d,%v)", p, ok)
	}
	k, p, _ := h.Pop()
	if k != 2 || p != 10 {
		t.Fatalf("Pop = (%d,%d), want (2,10)", k, p)
	}
	if h.Len() != 2 {
		t.Fatalf("Len after pop = %d", h.Len())
	}
}

func TestIndexedHeapUpdate(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.Push(i, i)
	}
	// Decrease key of 9 to the minimum.
	if !h.Update(9, -1) {
		t.Fatal("Update reported missing key")
	}
	if k, _, _ := h.Min(); k != 9 {
		t.Fatalf("after decrease-key Min = %d, want 9", k)
	}
	// Increase key of 0 to the maximum.
	h.Update(0, 100)
	var last int
	order := []int{}
	for h.Len() > 0 {
		k, p, _ := h.Pop()
		if len(order) > 0 && p < last {
			t.Fatalf("pop order not monotone: %d after %d", p, last)
		}
		last = p
		order = append(order, k)
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("key 0 should pop last, order %v", order)
	}
	if h.Update(42, 1) {
		t.Fatal("Update on missing key reported true")
	}
}

func TestIndexedHeapPushExistingUpdates(t *testing.T) {
	h := intHeap()
	h.Push(1, 10)
	h.Push(1, 5)
	if h.Len() != 1 {
		t.Fatalf("duplicate push grew heap to %d", h.Len())
	}
	if p, _ := h.Priority(1); p != 5 {
		t.Fatalf("Push on existing key did not update priority: %d", p)
	}
}

func TestIndexedHeapRemove(t *testing.T) {
	h := intHeap()
	for i := 0; i < 8; i++ {
		h.Push(i, 8-i)
	}
	if !h.Remove(4) {
		t.Fatal("Remove reported missing")
	}
	if h.Remove(4) {
		t.Fatal("double Remove reported present")
	}
	seen := map[int]bool{}
	for h.Len() > 0 {
		k, _, _ := h.Pop()
		seen[k] = true
	}
	if seen[4] {
		t.Fatal("removed key reappeared")
	}
	if len(seen) != 7 {
		t.Fatalf("popped %d keys, want 7", len(seen))
	}
}

func TestIndexedHeapClear(t *testing.T) {
	h := intHeap()
	h.Push(1, 1)
	h.Push(2, 2)
	h.Clear()
	if h.Len() != 0 || h.Contains(1) {
		t.Fatal("Clear left state behind")
	}
	h.Push(3, 3)
	if k, _, _ := h.Min(); k != 3 {
		t.Fatal("heap unusable after Clear")
	}
}

// TestIndexedHeapAgainstModel drives the heap with random operations and
// checks every observable against a naive map-based model.
func TestIndexedHeapAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := intHeap()
	model := map[int]int{}
	modelMin := func() (int, int, bool) {
		bestK, bestP, ok := 0, 0, false
		for k, p := range model {
			if !ok || p < bestP || (p == bestP && false) {
				bestK, bestP, ok = k, p, true
			}
		}
		return bestK, bestP, ok
	}
	for step := 0; step < 5000; step++ {
		k := rng.Intn(50)
		switch rng.Intn(4) {
		case 0: // push
			p := rng.Intn(1000)
			h.Push(k, p)
			model[k] = p
		case 1: // update
			p := rng.Intn(1000)
			got := h.Update(k, p)
			_, want := model[k]
			if got != want {
				t.Fatalf("step %d: Update(%d) = %v, model %v", step, k, got, want)
			}
			if want {
				model[k] = p
			}
		case 2: // remove
			got := h.Remove(k)
			_, want := model[k]
			if got != want {
				t.Fatalf("step %d: Remove(%d) = %v, model %v", step, k, got, want)
			}
			delete(model, k)
		case 3: // pop
			gk, gp, gok := h.Pop()
			_, mp, mok := modelMin()
			if gok != mok {
				t.Fatalf("step %d: Pop ok=%v, model ok=%v", step, gok, mok)
			}
			if gok {
				// Ties may pop either key, but the priority must match.
				if gp != mp {
					t.Fatalf("step %d: Pop priority %d, model min %d", step, gp, mp)
				}
				if model[gk] != gp {
					t.Fatalf("step %d: Pop key %d has model priority %d, want %d", step, gk, model[gk], gp)
				}
				delete(model, gk)
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: Len %d, model %d", step, h.Len(), len(model))
		}
	}
}

// TestIndexedHeapSortsProperty: pushing any int slice and popping yields a
// sorted sequence (property-based via testing/quick).
func TestIndexedHeapSortsProperty(t *testing.T) {
	f := func(xs []int) bool {
		h := intHeap()
		for i, x := range xs {
			h.Push(i, x)
		}
		var popped []int
		for h.Len() > 0 {
			_, p, _ := h.Pop()
			popped = append(popped, p)
		}
		if !sort.IntsAreSorted(popped) {
			return false
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if len(want) != len(popped) {
			return false
		}
		for i := range want {
			if want[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapKeys(t *testing.T) {
	h := intHeap()
	for i := 0; i < 5; i++ {
		h.Push(i, i)
	}
	keys := h.Keys()
	if len(keys) != 5 {
		t.Fatalf("Keys returned %d entries", len(keys))
	}
	seen := map[int]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Fatalf("Keys missing %d", i)
		}
	}
}
