package container

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(2)
	same := true
	a2 := NewRNG(1)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if v := r.IntRange(3, 5); v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(5)
	for _, mean := range []float64{0.5, 3, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.15*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(6)
	p := 0.25
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	want := (1 - p) / p // mean failures before success
	got := float64(sum) / float64(n)
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("Geometric(%v) sample mean %v, want ≈ %v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	r := NewRNG(7)
	z := NewZipf(r, 10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: counts %v", counts)
	}
	if counts[0] <= counts[1] {
		t.Fatalf("rank 0 should dominate rank 1: %v", counts)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate after shuffle: %v", xs)
		}
		seen[x] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("Normal variance %v", variance)
	}
}
