package container

import (
	"testing"
	"testing/quick"
)

func TestMultisetBasic(t *testing.T) {
	m := NewMultiset[string]()
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatal("new multiset not empty")
	}
	m.Add("a", 3)
	m.Add("b", 1)
	m.Add("a", 2)
	if m.Len() != 6 || m.Distinct() != 2 || m.Count("a") != 5 {
		t.Fatalf("Len=%d Distinct=%d Count(a)=%d", m.Len(), m.Distinct(), m.Count("a"))
	}
	m.Add("a", -10) // clamps to removal
	if m.Count("a") != 0 || m.Len() != 1 {
		t.Fatalf("negative Add: Count(a)=%d Len=%d", m.Count("a"), m.Len())
	}
}

func TestMultisetIntersection(t *testing.T) {
	a := NewMultiset[int]()
	b := NewMultiset[int]()
	a.Add(1, 3)
	a.Add(2, 1)
	b.Add(1, 2)
	b.Add(3, 5)
	if got := a.IntersectionSize(b); got != 2 {
		t.Fatalf("IntersectionSize = %d, want 2", got)
	}
	if got := b.IntersectionSize(a); got != 2 {
		t.Fatalf("IntersectionSize not symmetric: %d", got)
	}
	empty := NewMultiset[int]()
	if got := a.IntersectionSize(empty); got != 0 {
		t.Fatalf("intersection with empty = %d", got)
	}
}

func TestMultisetCloneAndClear(t *testing.T) {
	m := NewMultiset[int]()
	m.Add(1, 2)
	c := m.Clone()
	c.Add(1, 1)
	if m.Count(1) != 2 || c.Count(1) != 3 {
		t.Fatal("Clone shares state")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear left elements")
	}
}

func TestSortedSlice(t *testing.T) {
	m := NewMultiset[int]()
	m.Add(3, 2)
	m.Add(1, 1)
	got := SortedSlice(m, func(a, b int) bool { return a < b })
	want := []int{1, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedSlice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSlice = %v, want %v", got, want)
		}
	}
}

// Property: |A∩B| ≤ min(|A|, |B|) and intersection is symmetric, for
// arbitrary multisets built from byte streams.
func TestMultisetIntersectionProperty(t *testing.T) {
	build := func(xs []uint8) *Multiset[int] {
		m := NewMultiset[int]()
		for _, x := range xs {
			m.Add(int(x%8), int(x%3)+1)
		}
		return m
	}
	f := func(xs, ys []uint8) bool {
		a, b := build(xs), build(ys)
		i := a.IntersectionSize(b)
		if i != b.IntersectionSize(a) {
			return false
		}
		if i > a.Len() || i > b.Len() {
			return false
		}
		return i >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
