// Package offline provides the offline side of the competitive analysis:
// an exact brute-force optimum for small instances, the Par-EDF relaxation
// whose drop cost certifies a lower bound on any offline algorithm's drop
// cost (Lemma 3.7), a combined certified lower bound on the optimal total
// cost, static-configuration optima, and the Aggregate schedule
// transformation of §4.3 (Lemma 4.1).
package offline

import (
	"container/heap"

	"repro/internal/sched"
)

// ParEDFDrops simulates algorithm Par-EDF of §3.3: the m resources are
// fused into one super-resource that executes up to m·speed pending jobs
// with the best ranks per round, with no configuration constraint at all.
// Jobs are ranked by increasing deadline, breaking ties by increasing
// delay bound and then by color (§3.3). By the optimality of EDF on a
// single speed-m machine, its drop count is a lower bound on the drop cost
// of ANY schedule with m resources (Lemma 3.7):
//
//	DropCost_ParEDF(σ) ≤ DropCost_OFF(σ).
//
// speed is normally 1; the DS-Seq-EDF experiments use 2.
func ParEDFDrops(inst *sched.Instance, m, speed int) int64 {
	if speed < 1 {
		speed = 1
	}
	inst.Normalize()
	var pq jobHeap
	dropped := int64(0)
	horizon := inst.Horizon()
	for r := 0; r < horizon; r++ {
		if r >= inst.NumRounds() && pq.Len() == 0 {
			break
		}
		// Drop phase.
		for pq.Len() > 0 && pq.items[0].deadline <= r {
			dropped += int64(pq.items[0].count)
			heap.Pop(&pq)
		}
		// Arrival phase.
		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				heap.Push(&pq, parJob{
					deadline: r + inst.Delays[b.Color],
					delay:    inst.Delays[b.Color],
					color:    b.Color,
					count:    b.Count,
				})
			}
		}
		// Execution phase: up to m·speed best-ranked jobs.
		budget := m * speed
		for budget > 0 && pq.Len() > 0 {
			top := &pq.items[0]
			take := top.count
			if take > budget {
				take = budget
			}
			budget -= take
			top.count -= take
			if top.count == 0 {
				heap.Pop(&pq)
			}
		}
	}
	return dropped
}

// parJob is a batch of identical pending jobs in the Par-EDF relaxation.
type parJob struct {
	deadline int
	delay    int
	color    sched.Color
	count    int
}

func (a parJob) less(b parJob) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	return a.color < b.color
}

type jobHeap struct{ items []parJob }

func (h *jobHeap) Len() int           { return len(h.items) }
func (h *jobHeap) Less(i, j int) bool { return h.items[i].less(h.items[j]) }
func (h *jobHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *jobHeap) Push(x any)         { h.items = append(h.items, x.(parJob)) }
func (h *jobHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
