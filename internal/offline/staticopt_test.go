package offline

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBestStaticColorsByVolume(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{4, 4, 4}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 5)
	inst.AddJobs(0, 2, 3)
	got := BestStaticColors(inst, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("BestStaticColors = %v, want [1 2]", got)
	}
	// Colors with zero jobs are never picked.
	inst2 := &sched.Instance{Delta: 1, Delays: []int{4, 4}}
	inst2.AddJobs(0, 1, 1)
	got2 := BestStaticColors(inst2, 2)
	if len(got2) != 1 || got2[0] != 1 {
		t.Fatalf("BestStaticColors = %v, want [1]", got2)
	}
}

func TestStaticCostMatchesRun(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{4}}
	inst.AddJobs(0, 0, 3)
	res, err := StaticCost(inst, []sched.Color{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() != 2 || res.Executed != 3 {
		t.Fatalf("StaticCost = %v", res)
	}
}

func TestBestStaticCostEnumeratesBetterThanHeuristic(t *testing.T) {
	// Volume alone misleads: color 0 has many jobs but impossible
	// deadlines (D=1, batches of 4 on one resource), color 1 has fewer
	// jobs that are all servable.
	inst := &sched.Instance{Delta: 1, Delays: []int{1, 8}}
	for r := 0; r < 8; r++ {
		inst.AddJobs(r, 0, 4)
	}
	inst.AddJobs(0, 1, 8)
	best, err := BestStaticCost(inst.Clone(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := StaticCost(inst.Clone(), BestStaticColors(inst, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost.Total() > heur.Cost.Total() {
		t.Fatalf("enumeration (%d) worse than heuristic (%d)", best.Cost.Total(), heur.Cost.Total())
	}
}

func TestBestStaticCostFallsBackOnManyColors(t *testing.T) {
	inst := workload.RandomBatched(3, 32, 2, 64, []int{1, 2, 4}, 0.8, 0.8, true)
	res, err := BestStaticCost(inst, 4, 8) // 32 colors > 8: heuristic path
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}
