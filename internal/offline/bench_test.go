package offline

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// The two pinned solver benchmark instances. internal/bench/suite.go
// builds the same shapes for the rrbench regression suite (BENCH files);
// change both together.
//
// Small: the legacy reference still solves it in well under a second.
// Medium: ≈610k expanded states — beyond the pre-PR-4 200k-state
// BracketOPT budget (within the new 2M one), the instance behind the
// "≥10× states/sec" claim in docs/PERFORMANCE.md.
func benchSmallInstance() (*sched.Instance, int) {
	return workload.RandomBatched(2, 4, 2, 24, []int{1, 2, 4}, 0.8, 0.8, true), 2
}

func benchMediumInstance() (*sched.Instance, int) {
	return workload.RandomBatched(3, 8, 2, 80, []int{1, 2, 4, 8, 16}, 0.9, 0.9, true), 2
}

// benchSolve measures the branch-and-bound solver, reporting expanded
// states per second (memo misses only — the same counting rule the
// legacy solver uses, so the reference benchmarks' rates compare
// directly).
func benchSolve(b *testing.B, mk func() (*sched.Instance, int)) {
	inst, m := mk()
	var states int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := SolveExactStats(inst, m, ExactOptions{MaxStates: 16_000_000, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		states += st.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func benchReference(b *testing.B, mk func() (*sched.Instance, int)) {
	inst, m := mk()
	var states int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, n, err := ReferenceBruteForce(inst, m, 16_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states += int64(n)
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkBruteForceSmall(b *testing.B)  { benchSolve(b, benchSmallInstance) }
func BenchmarkBruteForceMedium(b *testing.B) { benchSolve(b, benchMediumInstance) }

func BenchmarkBruteForceReferenceSmall(b *testing.B)  { benchReference(b, benchSmallInstance) }
func BenchmarkBruteForceReferenceMedium(b *testing.B) { benchReference(b, benchMediumInstance) }

// BenchmarkBracketOPT measures the full bracket pipeline — static seed,
// local search, then the exact search with the seeded incumbent — on the
// small instance, where the 2M-state budget resolves Exact.
func BenchmarkBracketOPT(b *testing.B) {
	inst, m := benchSmallInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BracketOPT(inst, m, 2); err != nil {
			b.Fatal(err)
		}
	}
}
