package offline

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// corpusInstance builds the i-th differential-corpus instance: tiny
// randomized instances covering batched/unbatched arrivals, 1–3 colors,
// mixed delay menus and reconfiguration costs.
func corpusInstance(i int) *sched.Instance {
	seed := uint64(i)
	switch i % 4 {
	case 0:
		return workload.RandomSmall(seed, 2, 2, 8, []int{1, 2}, 2, true)
	case 1:
		return workload.RandomSmall(seed, 3, 2, 10, []int{1, 2, 4}, 2, i%8 < 4)
	case 2:
		return workload.RandomSmall(seed, 2, 3, 12, []int{1, 2, 4}, 3, false)
	default:
		return workload.RandomSmall(seed, 3, 1, 9, []int{1, 3}, 2, true)
	}
}

// TestSolveExactDifferentialCorpus pins the branch-and-bound solver
// bit-identical to the legacy memoized DFS (ReferenceBruteForce, the
// executable specification) across ~500 randomized tiny instances for
// every m ∈ {1, 2, 3}.
func TestSolveExactDifferentialCorpus(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 120
	}
	solved := 0
	for i := 0; i < n; i++ {
		inst := corpusInstance(i)
		for m := 1; m <= 3; m++ {
			want, _, err := ReferenceBruteForce(inst, m, 4_000_000)
			var lim *BruteForceLimitError
			if errors.As(err, &lim) {
				continue // reference over budget: nothing to compare
			}
			if err != nil {
				t.Fatalf("corpus %d m=%d: reference: %v", i, m, err)
			}
			got, err := SolveExact(inst, m, ExactOptions{MaxStates: 8_000_000})
			if err != nil {
				t.Fatalf("corpus %d m=%d: SolveExact: %v", i, m, err)
			}
			if got != want {
				t.Fatalf("corpus %d m=%d: SolveExact = %d, reference = %d", i, m, got, want)
			}
			solved++
		}
	}
	if solved < 2*n {
		t.Fatalf("only %d corpus points solved by both solvers — corpus too hard to be meaningful", solved)
	}
}

// TestSolveExactDeterministicAcrossWorkers: the optimum must be
// bit-identical at every worker count (the incumbent race changes the
// exploration order, never the answer).
func TestSolveExactDeterministicAcrossWorkers(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for i := 0; i < seeds; i++ {
		inst := workload.RandomSmall(uint64(i), 3, 2, 14, []int{1, 2, 4}, 3, true)
		var want int64
		for wi, workers := range []int{1, 2, 3, 8} {
			got, err := SolveExact(inst, 2, ExactOptions{MaxStates: 8_000_000, Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", i, workers, err)
			}
			if wi == 0 {
				want = got
			} else if got != want {
				t.Fatalf("seed %d: workers=%d gave %d, workers=1 gave %d", i, workers, got, want)
			}
		}
	}
}

// TestSolveExactSeededUpperBound: passing any achievable upper bound (even
// the exact optimum itself — the tightest possible seed) must not change
// the answer.
func TestSolveExactSeededUpperBound(t *testing.T) {
	for i := 0; i < 20; i++ {
		inst := workload.RandomSmall(uint64(i), 3, 2, 12, []int{1, 2, 4}, 2, true)
		opt, err := SolveExact(inst, 2, ExactOptions{MaxStates: 4_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		for _, slack := range []int64{0, 1, 7} {
			got, err := SolveExact(inst, 2, ExactOptions{MaxStates: 4_000_000, UpperBound: opt + slack})
			if err != nil {
				t.Fatalf("seed %d slack %d: %v", i, slack, err)
			}
			if got != opt {
				t.Fatalf("seed %d: seeded with %d+%d gave %d, want %d", i, opt, slack, got, opt)
			}
		}
	}
}

// TestSolveExactDoesNotMutateCaller pins the PR 4 contract fix: the solver
// normalizes an internal clone, never the caller's instance.
func TestSolveExactDoesNotMutateCaller(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{2, 4}}
	// Unnormalized on purpose: batches out of color order and split so
	// Normalize would merge them.
	inst.AddJobs(0, 1, 1)
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 0, 2)
	inst.AddJobs(1, 1, 1)
	before := inst.Clone()
	if _, err := BruteForce(inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inst, before) {
		t.Fatalf("BruteForce mutated its argument:\nbefore %+v\nafter  %+v", before, inst)
	}
	if _, _, err := ReferenceBruteForce(inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inst, before) {
		t.Fatalf("ReferenceBruteForce mutated its argument:\nbefore %+v\nafter  %+v", before, inst)
	}
}

// TestExactBetweenBounds: LowerBound.Value() ≤ OPT ≤ the local-search
// upper bound, on every instance where the exact search finishes.
func TestExactBetweenBounds(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 12
	}
	for i := 0; i < seeds; i++ {
		inst := workload.RandomSmall(uint64(i)+17, 3, 2, 12, []int{1, 2, 4}, 3, i%2 == 0)
		for _, m := range []int{1, 2} {
			opt, err := SolveExact(inst, m, ExactOptions{MaxStates: 4_000_000})
			var lim *BruteForceLimitError
			if errors.As(err, &lim) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d m=%d: %v", i, m, err)
			}
			if lb := LowerBound(inst.Clone(), m).Value(); lb > opt {
				t.Fatalf("seed %d m=%d: LowerBound %d > OPT %d", i, m, lb, opt)
			}
			br, err := BracketOPT(inst.Clone(), m, 2)
			if err != nil {
				t.Fatalf("seed %d m=%d: BracketOPT: %v", i, m, err)
			}
			if br.Lower > opt || opt > br.Upper {
				t.Fatalf("seed %d m=%d: bracket [%d, %d] misses OPT %d", i, m, br.Lower, br.Upper, opt)
			}
		}
	}
}

// TestSolveExactWideKeys exercises the non-default key encodings (the
// differential corpus is small enough that it lands entirely in the
// densest 16-bit-lane mode): instances that overflow a lane field must
// fall back to the 32-bit-lane or one-word-per-bucket layout and still
// match the reference exactly.
func TestSolveExactWideKeys(t *testing.T) {
	// Bucket count over 2^16 (a single batch of 70 000 jobs): wide mode.
	big := &sched.Instance{Delta: 2, Delays: []int{1, 2}}
	big.AddJobs(0, 0, 70_000)
	big.AddJobs(0, 1, 3)
	big.AddJobs(1, 1, 2)
	// Delay over 2^10 forces wide mode even with tiny counts.
	far := &sched.Instance{Delta: 2, Delays: []int{1, 2000}}
	far.AddJobs(0, 0, 2)
	far.AddJobs(0, 1, 3)
	far.AddJobs(1, 0, 1)
	far.AddJobs(2, 1, 2)
	// Delay over 2^5 but under 2^10: the 32-bit-lane (half-word) mode.
	mid := &sched.Instance{Delta: 2, Delays: []int{1, 40}}
	mid.AddJobs(0, 0, 2)
	mid.AddJobs(0, 1, 3)
	mid.AddJobs(1, 0, 1)
	mid.AddJobs(2, 1, 2)
	mid.AddJobs(3, 0, 2)
	// Bucket count over 2^8 but under 2^16: half-word mode too.
	cnt := &sched.Instance{Delta: 2, Delays: []int{1, 2}}
	cnt.AddJobs(0, 0, 300)
	cnt.AddJobs(0, 1, 3)
	cnt.AddJobs(1, 1, 2)
	cnt.AddJobs(2, 0, 1)
	wantMode := map[string]uint8{
		"bigCount": keyWide, "farDelay": keyWide,
		"midDelay": keyHalf, "midCount": keyHalf,
	}
	for name, inst := range map[string]*sched.Instance{"bigCount": big, "farDelay": far, "midDelay": mid, "midCount": cnt} {
		norm := inst.Clone()
		norm.Normalize()
		if got := newExactPrecomp(norm, 2).keyMode; got != wantMode[name] {
			t.Fatalf("%s: key mode %d, want %d — the instance no longer exercises the intended encoding", name, got, wantMode[name])
		}
		for m := 1; m <= 2; m++ {
			want, _, err := ReferenceBruteForce(inst, m, 4_000_000)
			if err != nil {
				t.Fatalf("%s m=%d: reference: %v", name, m, err)
			}
			got, err := SolveExact(inst, m, ExactOptions{MaxStates: 4_000_000})
			if err != nil {
				t.Fatalf("%s m=%d: SolveExact: %v", name, m, err)
			}
			if got != want {
				t.Fatalf("%s m=%d: SolveExact = %d, reference = %d", name, m, got, want)
			}
		}
	}
}

// TestBracketOPTResolvesExactBeyondLegacyBudget pins the PR 4 payoff:
// on the pinned medium benchmark family the pre-B&B 200k-state budget
// fell back to the loose certified bound (the search does not fit), while
// BracketOPT's new 2M budget resolves the exact optimum and closes the
// bracket to Lower == Upper.
func TestBracketOPTResolvesExactBeyondLegacyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a ~600k-state instance exactly")
	}
	inst := workload.RandomBatched(3, 8, 2, 80, []int{1, 2, 4, 8, 16}, 0.9, 0.9, true)
	const m = 2
	if b := LowerBoundExact(inst.Clone(), m, 200_000); b.Exact >= 0 {
		t.Fatalf("legacy 200k budget unexpectedly resolves Exact (%d) — instance no longer demonstrates the budget raise", b.Exact)
	}
	br, err := BracketOPT(inst.Clone(), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if br.Lower != br.Upper {
		t.Fatalf("bracket not closed: [%d, %d]", br.Lower, br.Upper)
	}
}

// TestSolveExactStatsReporting sanity-checks the stats surface the
// benchmarks rely on.
func TestSolveExactStatsReporting(t *testing.T) {
	// Hard enough that pruning cannot collapse the whole search (on easy
	// instances the seeded incumbent plus the suffix bounds legitimately
	// expand zero nodes).
	inst := workload.RandomBatched(2, 4, 2, 24, []int{1, 2, 4}, 0.8, 0.8, true)
	opt, st, err := SolveExactStats(inst, 2, ExactOptions{MaxStates: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if opt < 0 {
		t.Fatalf("negative optimum %d", opt)
	}
	if st.States <= 0 {
		t.Fatalf("no states counted: %+v", st)
	}
	if st.BoundPrunes <= 0 {
		t.Fatalf("no bound prunes on a hard instance: %+v", st)
	}
	if st.Tasks <= 0 || st.Workers <= 0 {
		t.Fatalf("missing root-split stats: %+v", st)
	}
}
