package offline

import (
	"sort"

	"repro/internal/policy"
	"repro/internal/sched"
)

// BestStaticColors picks m colors for a static configuration by total job
// volume (ties broken by color index). It is the natural offline warm-up
// for the Static baseline: configure once, never reconfigure.
func BestStaticColors(inst *sched.Instance, m int) []sched.Color {
	per := inst.JobsPerColor()
	order := make([]sched.Color, 0, len(per))
	for c, jobs := range per {
		if jobs > 0 {
			order = append(order, sched.Color(c))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if per[order[i]] != per[order[j]] {
			return per[order[i]] > per[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > m {
		order = order[:m]
	}
	return order
}

// StaticCost evaluates the cost of statically configuring the given colors
// for the whole run with one location each.
func StaticCost(inst *sched.Instance, colors []sched.Color, m int) (*sched.Result, error) {
	return sched.Run(inst, policy.NewStatic(colors...), sched.Options{N: m})
}

// BestStaticCost enumerates every multiset of up to m colors when the
// color count is small (≤ maxEnumColors distinct colors), otherwise falls
// back to the volume heuristic, and returns the best static result. It is
// a strong offline baseline for experiment tables: the best "configure
// once" schedule.
func BestStaticCost(inst *sched.Instance, m int, maxEnumColors int) (*sched.Result, error) {
	per := inst.JobsPerColor()
	var live []sched.Color
	for c, jobs := range per {
		if jobs > 0 {
			live = append(live, sched.Color(c))
		}
	}
	if len(live) == 0 || len(live) > maxEnumColors {
		return StaticCost(inst, BestStaticColors(inst, m), m)
	}

	var best *sched.Result
	pick := make([]sched.Color, 0, m)
	var rec func(pos, minIdx int) error
	rec = func(pos, minIdx int) error {
		if pos == m {
			res, err := StaticCost(inst, pick, m)
			if err != nil {
				return err
			}
			if best == nil || res.Cost.Total() < best.Cost.Total() {
				best = res
			}
			return nil
		}
		for i := minIdx; i < len(live); i++ {
			pick = append(pick, live[i])
			if err := rec(pos+1, i); err != nil {
				return err
			}
			pick = pick[:len(pick)-1]
		}
		// Also allow leaving the remaining locations black.
		res, err := StaticCost(inst, pick, m)
		if err != nil {
			return err
		}
		if best == nil || res.Cost.Total() < best.Cost.Total() {
			best = res
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	return best, nil
}
