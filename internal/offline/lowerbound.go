package offline

import "repro/internal/sched"

// Bound is a certified lower bound on the optimal offline total cost with
// m resources, with the two ingredients reported separately.
type Bound struct {
	// ParEDFDrops is the drop cost of the Par-EDF relaxation (Lemma 3.7):
	// no m-resource schedule drops fewer jobs.
	ParEDFDrops int64
	// ColorCost is Σ_ℓ min(Δ, jobs_ℓ): any schedule either configures
	// color ℓ at least once (≥ Δ) or drops all its jobs (Corollary 3.3's
	// argument).
	ColorCost int64
	// Exact, when ≥ 0, is the brute-force optimum (only set by
	// LowerBoundExact when the search fits the budget).
	Exact int64
}

// Value returns the strongest certified lower bound available.
func (b Bound) Value() int64 {
	v := b.ParEDFDrops
	if b.ColorCost > v {
		v = b.ColorCost
	}
	if b.Exact >= 0 && b.Exact > v {
		v = b.Exact
	}
	return v
}

// LowerBound computes a certified lower bound on OPT's total cost with m
// resources in near-linear time. Competitive-ratio estimates against this
// bound upper-bound the true ratio, so "the ratio stays constant" claims
// validated against it are conservative.
func LowerBound(inst *sched.Instance, m int) Bound {
	b := Bound{Exact: -1}
	b.ParEDFDrops = ParEDFDrops(inst, m, 1)
	delta := int64(inst.Delta)
	for _, jobs := range inst.JobsPerColor() {
		if jobs == 0 {
			continue
		}
		if int64(jobs) < delta {
			b.ColorCost += int64(jobs)
		} else {
			b.ColorCost += delta
		}
	}
	return b
}

// LowerBoundExact augments LowerBound with the exact optimum when the
// branch-and-bound search fits within maxStates states; otherwise Exact
// stays −1 and the cheap bounds are returned.
func LowerBoundExact(inst *sched.Instance, m, maxStates int) Bound {
	return lowerBoundExact(inst, m, ExactOptions{MaxStates: maxStates})
}

func lowerBoundExact(inst *sched.Instance, m int, opts ExactOptions) Bound {
	b := LowerBound(inst, m)
	if opt, err := SolveExact(inst, m, opts); err == nil {
		b.Exact = opt
	}
	return b
}

// Bracket is a certified two-sided estimate of OPT(m): Lower ≤ OPT ≤
// Upper, with UpperSchedule witnessing the upper bound.
type Bracket struct {
	Lower         int64
	Upper         int64
	UpperSchedule *sched.Schedule
}

// Gap returns Upper/Lower (1 means OPT is known exactly); a zero Lower is
// treated as 1 to keep the ratio finite.
func (b Bracket) Gap() float64 {
	lo := b.Lower
	if lo == 0 {
		lo = 1
	}
	return float64(b.Upper) / float64(lo)
}

// BracketStateBudget is the state budget BracketOPT grants the exact
// branch-and-bound search. The pre-B&B solver capped out at 200k string-
// keyed map states; pruned flat-table states are cheap enough to allow
// 2M, which resolves Exact on instance families that previously fell
// back to the loose bounds.
const BracketStateBudget = 2_000_000

// BracketOPT brackets the optimal offline cost with m resources on any
// instance: the lower side is the certified bound (plus the exact optimum
// when the search fits its budget), the upper side is the best schedule
// found by seeding local search with the best static configuration. The
// upper bound is computed first and seeds the exact search's incumbent,
// so branch-and-bound only has to certify or beat it. The true
// competitive ratio of any online run lies between cost/Upper and
// cost/Lower.
func BracketOPT(inst *sched.Instance, m int, searchPasses int) (Bracket, error) {
	start, err := StaticCost(inst.Clone(), BestStaticColors(inst, m), m)
	if err != nil {
		return Bracket{}, err
	}
	// Materialize the static run as a full-horizon schedule so the local
	// search's block moves can re-color any era independently.
	s := &sched.Schedule{Policy: "BestStatic", N: m, Speed: 1}
	row := make([]sched.Color, m)
	cols := BestStaticColors(inst, m)
	for i := range row {
		if i < len(cols) {
			row[i] = cols[i]
		} else {
			row[i] = sched.NoColor
		}
	}
	for r := 0; r < inst.Horizon(); r++ {
		s.Assign = append(s.Assign, append([]sched.Color(nil), row...))
	}
	improved, impRes, err := ImproveSchedule(inst.Clone(), s, searchPasses)
	if err != nil {
		return Bracket{}, err
	}
	upper := impRes.Cost.Total()
	if static := start.Cost.Total(); static < upper {
		upper = static
	}
	// Exact search last, with the local-search upper bound as its
	// incumbent: the search only explores below a cost we already know
	// is achievable.
	lb := lowerBoundExact(inst.Clone(), m, ExactOptions{
		MaxStates:  BracketStateBudget,
		UpperBound: upper,
	})
	br := Bracket{Lower: lb.Value(), Upper: upper, UpperSchedule: improved}
	if lb.Exact >= 0 {
		br.Lower, br.Upper = lb.Exact, lb.Exact
	}
	return br, nil
}
