package offline

import "math/bits"

// exactMemo is the value memo of the branch-and-bound solver: a flat
// open-addressing (linear probe) hash table from compact word-encoded
// state keys to exact optimal suffix costs. Keys are variable-length
// []uint64 slices stored back to back in an append-only arena, so the
// table itself is two dense slices — no per-state string allocation, no
// map overhead, and growth rehashes entry headers only (arena offsets
// stay valid). Entries are 16 bytes (a 32-bit hash tag filters probes;
// suffix values are range-guarded to int32 at SolveExact entry), four
// per cache line.
//
// Every stored value is exact (the search never stores a node it cut
// off), so a hit is always usable: revisits of converging DFS paths cost
// one probe instead of a subtree, exactly like the legacy string-keyed
// map but an order of magnitude cheaper per visit.
type exactMemo struct {
	entries []memoEntry // len is a power of two
	arena   []uint64    // concatenated keys
	used    int
}

type memoEntry struct {
	hash  uint32 // low 32 bits of the key hash (probe filter)
	n     uint32 // key length in words; 0 means empty
	off   uint32 // key start in arena
	value int32  // exact optimal suffix cost of the state
}

const memoInitSize = 1 << 12

func (t *exactMemo) init() {
	t.entries = make([]memoEntry, memoInitSize)
	t.arena = t.arena[:0]
	t.used = 0
}

// hashKey mixes the key words in four independent lanes (the serial
// xor-multiply chain of a single-lane FNV costs ~3 cycles of latency per
// word, which dominates probe cost on 30+-word keys) and finalizes with
// a splitmix64-style avalanche. Hash quality only affects speed, never
// correctness: get compares full keys.
func hashKey(key []uint64) uint64 {
	const (
		c1 = 0x9E3779B97F4A7C15
		c2 = 0xC2B2AE3D27D4EB4F
		c3 = 0x165667B19E3779F9
		c4 = 0x27D4EB2F165667C5
	)
	h1 := uint64(len(key)) + 1
	h2 := uint64(2)
	h3 := uint64(3)
	h4 := uint64(4)
	i := 0
	for ; i+4 <= len(key); i += 4 {
		h1 = (h1 ^ key[i]) * c1
		h2 = (h2 ^ key[i+1]) * c2
		h3 = (h3 ^ key[i+2]) * c3
		h4 = (h4 ^ key[i+3]) * c4
	}
	for ; i < len(key); i++ {
		h1 = (h1 ^ key[i]) * c1
	}
	h := h1 ^ bits.RotateLeft64(h2, 17) ^ bits.RotateLeft64(h3, 31) ^ bits.RotateLeft64(h4, 47)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func (t *exactMemo) keyAt(e *memoEntry) []uint64 {
	return t.arena[e.off : e.off+e.n]
}

func keyEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// get returns the exact suffix value stored for key, if any.
func (t *exactMemo) get(key []uint64, hash uint64) (int64, bool) {
	mask := uint64(len(t.entries) - 1)
	tag := uint32(hash)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.n == 0 {
			return 0, false
		}
		if e.hash == tag && keyEqual(t.keyAt(e), key) {
			return int64(e.value), true
		}
	}
}

// store records the exact suffix value for key (first write wins; the
// search only computes a state's value once per table).
func (t *exactMemo) store(key []uint64, hash uint64, value int64) {
	if t.used >= len(t.entries)-len(t.entries)/4 {
		t.grow()
	}
	mask := uint64(len(t.entries) - 1)
	tag := uint32(hash)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.n == 0 {
			off := uint32(len(t.arena))
			t.arena = append(t.arena, key...)
			t.entries[i] = memoEntry{hash: tag, n: uint32(len(key)), off: off, value: int32(value)}
			t.used++
			return
		}
		if e.hash == tag && keyEqual(t.keyAt(e), key) {
			return
		}
	}
}

func (t *exactMemo) grow() {
	old := t.entries
	t.entries = make([]memoEntry, 2*len(old))
	mask := uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.n == 0 {
			continue
		}
		// Rehash from the stored key: only the low 32 hash bits are kept
		// in the entry, but the full key is in the arena.
		h := hashKey(t.arena[e.off : e.off+e.n])
		i := h & mask
		for t.entries[i].n != 0 {
			i = (i + 1) & mask
		}
		t.entries[i] = e
	}
}
