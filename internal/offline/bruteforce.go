package offline

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/sched"
)

// BruteForceLimitError is returned when the exact search exceeds its state
// budget; callers fall back to LowerBound on such instances.
type BruteForceLimitError struct{ States int }

func (e *BruteForceLimitError) Error() string {
	return fmt.Sprintf("offline: brute force exceeded the state budget (%d states)", e.States)
}

// BruteForce computes the exact optimal offline cost OPT(σ) with m
// resources by memoized search over (round, configuration, pending-jobs)
// states. Configurations are treated as multisets of colors — locations
// are interchangeable, so the minimal reconfiguration cost between two
// configurations is Δ·(m − |intersection|).
//
// The search restricts candidate configurations to colors that currently
// have pending jobs plus the colors already configured, which loses no
// generality: configuring a color before it has pending jobs can always be
// postponed to the round it first helps, at identical cost.
//
// BruteForce is exponential and intended for tiny instances (a handful of
// colors, short horizons, m ≤ 3); maxStates caps the explored state count
// (0 means 4,000,000). It returns the optimal total cost.
func BruteForce(inst *sched.Instance, m int, maxStates int) (int64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if m < 1 {
		return 0, fmt.Errorf("offline: BruteForce needs m ≥ 1, got %d", m)
	}
	if maxStates <= 0 {
		maxStates = 4_000_000
	}
	inst.Normalize()
	bf := &bruteForcer{
		inst:      inst,
		m:         m,
		memo:      make(map[string]int64),
		maxStates: maxStates,
	}
	cfg := make([]sched.Color, m)
	for i := range cfg {
		cfg[i] = sched.NoColor
	}
	return bf.solve(0, cfg, newPendingState(inst.NumColors()))
}

type bruteForcer struct {
	inst      *sched.Instance
	m         int
	memo      map[string]int64
	states    int
	maxStates int
}

// pendingState holds, per color, the pending (deadline, count) buckets in
// ascending deadline order. It is copied on branching; instances are tiny.
type pendingState struct {
	buckets [][]bucket
	total   int
}

type bucket struct {
	deadline int
	count    int
}

func newPendingState(numColors int) *pendingState {
	return &pendingState{buckets: make([][]bucket, numColors)}
}

func (p *pendingState) clone() *pendingState {
	c := &pendingState{buckets: make([][]bucket, len(p.buckets)), total: p.total}
	for i, bs := range p.buckets {
		if len(bs) > 0 {
			c.buckets[i] = append([]bucket(nil), bs...)
		}
	}
	return c
}

// expire drops all jobs with deadline ≤ round and returns how many.
func (p *pendingState) expire(round int) int {
	dropped := 0
	for c, bs := range p.buckets {
		i := 0
		for i < len(bs) && bs[i].deadline <= round {
			dropped += bs[i].count
			i++
		}
		if i > 0 {
			p.buckets[c] = bs[i:]
		}
	}
	p.total -= dropped
	return dropped
}

func (p *pendingState) add(c sched.Color, deadline, count int) {
	bs := p.buckets[c]
	if n := len(bs); n > 0 && bs[n-1].deadline == deadline {
		bs[n-1].count += count
	} else {
		p.buckets[c] = append(bs, bucket{deadline: deadline, count: count})
	}
	p.total += count
}

// exec executes up to k earliest-deadline jobs of color c.
func (p *pendingState) exec(c sched.Color, k int) {
	bs := p.buckets[c]
	i := 0
	for k > 0 && i < len(bs) {
		take := bs[i].count
		if take > k {
			take = k
		}
		bs[i].count -= take
		k -= take
		p.total -= take
		if bs[i].count == 0 {
			i++
		}
	}
	if i > 0 {
		p.buckets[c] = bs[i:]
	}
}

func (p *pendingState) pendingColors(dst []sched.Color) []sched.Color {
	for c, bs := range p.buckets {
		if len(bs) > 0 {
			dst = append(dst, sched.Color(c))
		}
	}
	return dst
}

// encode builds a canonical state signature: round, sorted configuration,
// and relative-deadline pending buckets per color.
func (bf *bruteForcer) encode(r int, cfg []sched.Color, p *pendingState) string {
	buf := make([]byte, 0, 64)
	buf = strconv.AppendInt(buf, int64(r), 10)
	buf = append(buf, '|')
	for _, c := range cfg {
		buf = strconv.AppendInt(buf, int64(c), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for c, bs := range p.buckets {
		if len(bs) == 0 {
			continue
		}
		buf = strconv.AppendInt(buf, int64(c), 10)
		buf = append(buf, ':')
		for _, b := range bs {
			buf = strconv.AppendInt(buf, int64(b.deadline-r), 10)
			buf = append(buf, 'x')
			buf = strconv.AppendInt(buf, int64(b.count), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

// solve returns the minimal cost from the start of round r (before its
// drop phase) given the configuration at the end of round r−1.
func (bf *bruteForcer) solve(r int, cfg []sched.Color, p *pendingState) (int64, error) {
	inst := bf.inst
	if r >= inst.NumRounds() && p.total == 0 {
		return 0, nil
	}
	if r >= inst.Horizon() {
		// All jobs have expired by the horizon; nothing left to decide.
		return 0, nil
	}

	// Drop phase.
	drops := int64(p.expire(r))
	// Arrival phase.
	if r < inst.NumRounds() {
		for _, b := range inst.Requests[r] {
			p.add(b.Color, r+inst.Delays[b.Color], b.Count)
		}
	}
	if p.total == 0 {
		// Nothing pending: the optimum keeps the configuration and waits.
		rest, err := bf.solve(r+1, cfg, p)
		return drops + rest, err
	}

	key := bf.encode(r, cfg, p)
	if v, ok := bf.memo[key]; ok {
		return drops + v, nil
	}
	bf.states++
	if bf.states > bf.maxStates {
		return 0, &BruteForceLimitError{States: bf.states}
	}

	// Candidate colors: pending now or already configured.
	candSet := map[sched.Color]struct{}{sched.NoColor: {}}
	for _, c := range cfg {
		candSet[c] = struct{}{}
	}
	var scratch []sched.Color
	for _, c := range p.pendingColors(scratch) {
		candSet[c] = struct{}{}
	}
	cands := make([]sched.Color, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	best := int64(-1)
	next := make([]sched.Color, bf.m)
	var enumerate func(pos, minIdx int) error
	enumerate = func(pos, minIdx int) error {
		if pos == bf.m {
			recost := int64(inst.Delta) * int64(bf.m-multisetIntersection(cfg, next))
			p2 := p.clone()
			for _, c := range next {
				if c != sched.NoColor {
					p2.exec(c, 1)
				}
			}
			cfg2 := append([]sched.Color(nil), next...)
			rest, err := bf.solve(r+1, cfg2, p2)
			if err != nil {
				return err
			}
			if total := recost + rest; best < 0 || total < best {
				best = total
			}
			return nil
		}
		for i := minIdx; i < len(cands); i++ {
			next[pos] = cands[i]
			if err := enumerate(pos+1, i); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0, 0); err != nil {
		return 0, err
	}
	bf.memo[key] = best
	return drops + best, nil
}

// multisetIntersection computes |a ∩ b| over two sorted color multisets.
// Both slices produced by the enumerator are sorted; cfg is sorted on
// entry to solve because enumerate emits nondecreasing sequences.
func multisetIntersection(a, b []sched.Color) int {
	as := append([]sched.Color(nil), a...)
	bs := append([]sched.Color(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	i, j, n := 0, 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] == bs[j]:
			// NoColor "matches" cost-free as well: keeping a location
			// black is not a reconfiguration.
			n++
			i++
			j++
		case as[i] < bs[j]:
			i++
		default:
			j++
		}
	}
	return n
}
