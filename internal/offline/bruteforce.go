package offline

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// BruteForceLimitError is returned when the exact search exceeds its state
// budget; callers fall back to LowerBound on such instances.
type BruteForceLimitError struct{ States int }

func (e *BruteForceLimitError) Error() string {
	return fmt.Sprintf("offline: brute force exceeded the state budget (%d states)", e.States)
}

// DefaultStateBudget is the state cap used when a caller passes
// maxStates ≤ 0. Branch-and-bound states are two dense slices (memo entry
// header + key words) instead of the legacy solver's string-keyed map, so
// the budget is generous.
const DefaultStateBudget = 4_000_000

func errBadM(m int) error {
	return fmt.Errorf("offline: exact solver needs m ≥ 1, got %d", m)
}

// ExactOptions tunes SolveExact.
type ExactOptions struct {
	// MaxStates caps the number of expanded branch nodes across all
	// workers (≤ 0 means DefaultStateBudget). Exceeding it returns a
	// BruteForceLimitError.
	MaxStates int
	// Workers bounds the root-splitting parallelism; 0 means GOMAXPROCS.
	// The returned optimum is bit-identical at every worker count.
	Workers int
	// UpperBound, when > 0, seeds the incumbent with a known upper bound
	// on the m-resource optimum — it MUST be ≥ OPT, which any achievable
	// total cost is (e.g. the local-search upper bound BracketOPT
	// computes anyway). The solver then only searches below it. When 0
	// the solver seeds itself from the best-static heuristic.
	UpperBound int64
}

// ExactStats reports how hard a SolveExact call had to work.
type ExactStats struct {
	// States is the number of distinct states solved (the budget metric,
	// directly comparable with ReferenceBruteForce's state count).
	States int64
	// MemoHits counts node visits answered by the value memo.
	MemoHits int64
	// BoundPrunes counts children skipped (and root tasks dropped)
	// because a certified lower bound proved they cannot improve the
	// best alternative already solved exactly.
	BoundPrunes int64
	// Tasks and Workers describe the root split that was used.
	Tasks   int
	Workers int
}

// BruteForce computes the exact optimal offline cost OPT(σ) with m
// resources. It is the historical entry point, now backed by the
// branch-and-bound solver; see SolveExact for the tuning knobs.
// maxStates ≤ 0 means DefaultStateBudget.
func BruteForce(inst *sched.Instance, m int, maxStates int) (int64, error) {
	return SolveExact(inst, m, ExactOptions{MaxStates: maxStates})
}

// SolveExact computes the exact optimal offline cost OPT(σ) with m
// resources by certified branch-and-bound over (round, configuration,
// pending-jobs) states. Configurations are treated as multisets of colors
// — locations are interchangeable, so the minimal reconfiguration cost
// between two configurations is Δ·(m − |intersection|).
//
// The search restricts candidate configurations to colors that currently
// have pending jobs plus the colors already configured, which loses no
// generality: configuring a color before it has pending jobs can always be
// postponed to the round it first helps, at identical cost.
//
// The search is a memoized DFS wrapped in branch and bound. Three
// mechanisms make it fast where the legacy solver (ReferenceBruteForce)
// drowned:
//
//   - certified pruning: children of a node are explored in order of an
//     admissible lower bound on their total — reconfiguration cost plus
//     max(Par-EDF drop tail of the remaining arrivals, Σ over colors the
//     child leaves unconfigured of min(Δ, remaining jobs)) — and the
//     tail of that order is skipped wholesale once a sibling solved
//     exactly beats it; whole root tasks are likewise dropped when
//     cost-so-far + suffix bound reaches the incumbent, which is seeded
//     with an achievable upper bound before the search starts. Skipped
//     subtrees are certifiably ≥ the exact minimum kept, so memoized
//     values stay exact and nothing is ever re-searched;
//   - allocation-free node processing: an undo-stack DFS over per-color
//     bucket queues replaces copy-on-branch pending state, and a flat
//     open-addressing value memo over compact word-encoded keys replaces
//     the string-keyed map;
//   - root splitting: the first branching level(s) fan out across
//     workers that share an atomic incumbent and a state budget.
//
// The optimum is deterministic (bit-identical) at every worker count.
// SolveExact never mutates inst.
func SolveExact(inst *sched.Instance, m int, opts ExactOptions) (int64, error) {
	opt, _, err := SolveExactStats(inst, m, opts)
	return opt, err
}

// SolveExactStats is SolveExact with search statistics (states expanded,
// memo hits, prunes); the benchmarks use it for states/sec rates.
func SolveExactStats(inst *sched.Instance, m int, opts ExactOptions) (int64, ExactStats, error) {
	var stats ExactStats
	if err := inst.Validate(); err != nil {
		return 0, stats, err
	}
	if m < 1 {
		return 0, stats, errBadM(m)
	}
	if inst.TotalJobs() == 0 {
		return 0, stats, nil
	}
	// The packed state encoding (see encodeKey) carries color in 12 bits
	// and relative deadline in 20, and the memo stores suffix costs as
	// int32 (any total cost is ≤ jobs dropped + Δ·m per round); anything
	// larger is far beyond exact solvability anyway.
	worstCost := int64(inst.TotalJobs()) + int64(inst.Delta)*int64(m)*int64(inst.Horizon()+1)
	if inst.NumColors() >= 1<<12 || inst.Horizon()-inst.NumRounds() >= 1<<20 || worstCost >= 1<<31 {
		return 0, stats, fmt.Errorf("offline: instance exceeds exact-solver encoding limits (%d colors, max delay %d, worst cost %d)",
			inst.NumColors(), inst.Horizon()-inst.NumRounds(), worstCost)
	}
	inst = inst.Clone().Normalize()

	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultStateBudget
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Seed the incumbent with an achievable upper bound: the caller's
	// (BracketOPT passes its local-search bound) or the best-static run.
	seed := opts.UpperBound
	if seed <= 0 {
		res, err := StaticCost(inst.Clone(), BestStaticColors(inst, m), m)
		if err != nil {
			return 0, stats, err
		}
		seed = res.Cost.Total()
	}

	shared := &exactShared{maxStates: int64(maxStates)}
	shared.incumbent.Store(seed)
	pre := newExactPrecomp(inst, m)

	// Expand the root into one task per first-level configuration choice;
	// a second level when that yields too few tasks to keep workers busy.
	w0 := newExactWorker(inst, m, pre, shared)
	tasks := w0.expandLevel([]rootTask{{}})
	if len(tasks) > 0 && len(tasks) < 2*workers {
		tasks = w0.expandLevel(tasks)
	}
	stats.Tasks = len(tasks)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers

	var err error
	if workers == 1 {
		for _, t := range tasks {
			if err = w0.runTask(t); err != nil {
				break
			}
		}
		w0.flushStates()
		stats.add(&w0.stats)
	} else {
		var next atomic.Int64
		ws := make([]*exactWorker, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			ws[i] = newExactWorker(inst, m, pre, shared)
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				w := ws[id]
				for {
					j := int(next.Add(1) - 1)
					if j >= len(tasks) || shared.stop.Load() {
						break
					}
					if e := w.runTask(tasks[j]); e != nil {
						errs[id] = e
						break
					}
				}
				w.flushStates()
			}(i)
		}
		wg.Wait()
		stats.add(&w0.stats)
		for i, w := range ws {
			stats.add(&w.stats)
			if errs[i] != nil && err == nil {
				err = errs[i]
			}
		}
	}
	stats.States = shared.states.Load()
	if err != nil || shared.stop.Load() {
		if err == nil || errors.Is(err, errExactStopped) {
			err = &BruteForceLimitError{States: int(stats.States)}
		}
		return 0, stats, err
	}
	return shared.incumbent.Load(), stats, nil
}

// errExactStopped unwinds worker stacks when the shared state budget is
// exhausted; SolveExactStats converts it to a BruteForceLimitError.
var errExactStopped = errors.New("offline: exact search stopped")

// exactShared is the cross-worker state of one SolveExact call.
type exactShared struct {
	// states counts expanded branch nodes across all workers; exceeding
	// maxStates sets stop.
	states    atomic.Int64
	maxStates int64
	stop      atomic.Bool
	// incumbent is the best known upper bound on the total cost (seeded
	// ≥ OPT, achieved by every terminal state's path cost). Every
	// certified pruning decision compares against it; when the search
	// completes within budget it has converged onto OPT exactly.
	incumbent atomic.Int64
}

// propose lowers the incumbent to total if it improves it (CAS-min).
func (s *exactShared) propose(total int64) {
	for {
		cur := s.incumbent.Load()
		if total >= cur || s.incumbent.CompareAndSwap(cur, total) {
			return
		}
	}
}

func (st *ExactStats) add(o *ExactStats) {
	st.MemoHits += o.MemoHits
	st.BoundPrunes += o.BoundPrunes
}

// The pending-bucket key encodings, densest first. A bucket's count is
// never 0, so in the sub-word modes an all-zero (or zero-count) lane is
// unambiguous padding and compaction can skip it.
const (
	// keyQuarter: 16-bit lanes, four buckets per word — color 3 bits,
	// relative deadline 5, count 8.
	keyQuarter = uint8(iota)
	// keyHalf: 32-bit lanes, two buckets per word — color 6 bits,
	// relative deadline 10, count 16.
	keyHalf
	// keyWide: one word per bucket — color 12 bits, relative deadline
	// 20, count 32; the field widths SolveExact guards at entry.
	keyWide
)

// ——— Precomputed admissible suffix bounds ———

// exactPrecomp holds the read-only per-instance tables every worker
// shares: the Par-EDF drop tail per round and per-color arrival suffix
// counts. Both feed the admissible suffix lower bound (see suffixBound).
type exactPrecomp struct {
	horizon   int
	numRounds int
	// keyMode selects the densest pending-bucket encoding the instance
	// provably fits (see encodeKey). Shrinking key bytes matters twice
	// over: probe cost on large memos is dominated by reading the arena
	// for key verification, and hashing time is linear in key words.
	keyMode uint8
	// tails[r] is the Par-EDF drop count (Lemma 3.7 relaxation, m fused
	// resources) of the arrival suffix σ[r:] started with no pending
	// jobs. Any m-resource continuation from any state at round r drops
	// at least tails[r] of the jobs arriving in rounds ≥ r: extra initial
	// pending only adds load, and Par-EDF minimizes drops on the suffix
	// alone.
	tails []int64
	// arrSuffix[r][c] counts color-c jobs arriving in rounds ≥ r
	// (row numRounds is all zeros).
	arrSuffix [][]int
}

func newExactPrecomp(inst *sched.Instance, m int) *exactPrecomp {
	horizon := inst.Horizon()
	rounds := inst.NumRounds()
	colors := inst.NumColors()
	p := &exactPrecomp{horizon: horizon, numRounds: rounds}
	p.arrSuffix = make([][]int, rounds+1)
	p.arrSuffix[rounds] = make([]int, colors)
	for r := rounds - 1; r >= 0; r-- {
		row := make([]int, colors)
		copy(row, p.arrSuffix[r+1])
		for _, b := range inst.Requests[r] {
			row[b.Color] += b.Count
		}
		p.arrSuffix[r] = row
	}
	p.tails = make([]int64, horizon+2)
	for r := horizon; r >= 0; r-- {
		p.tails[r] = parEDFSuffixDrops(inst, m, r)
	}
	// Bucket counts never exceed one round's arrivals of one color:
	// per-color delays are fixed, so equal (color, deadline) implies an
	// equal arrival round, and that is the only way buckets merge.
	maxCnt := 0
	counts := make([]int, colors)
	for r := 0; r < rounds; r++ {
		for _, b := range inst.Requests[r] {
			counts[b.Color] += b.Count
		}
		for _, b := range inst.Requests[r] {
			if counts[b.Color] > maxCnt {
				maxCnt = counts[b.Color]
			}
			counts[b.Color] = 0
		}
	}
	switch {
	case colors <= 8 && horizon-rounds <= 31 && maxCnt <= 255:
		p.keyMode = keyQuarter
	case colors <= 63 && horizon-rounds <= 1023 && maxCnt <= 65535:
		p.keyMode = keyHalf
	default:
		p.keyMode = keyWide
	}
	return p
}

// arrRow returns the arrival-suffix counts from round r (clamped past the
// last request round to the zero row).
func (p *exactPrecomp) arrRow(r int) []int {
	if r > p.numRounds {
		r = p.numRounds
	}
	return p.arrSuffix[r]
}

// parEDFSuffixDrops simulates Par-EDF (speed 1) on the arrival suffix
// σ[from:] with no initial pending jobs.
func parEDFSuffixDrops(inst *sched.Instance, m, from int) int64 {
	var pq jobHeap
	dropped := int64(0)
	horizon := inst.Horizon()
	for r := from; r < horizon; r++ {
		if r >= inst.NumRounds() && pq.Len() == 0 {
			break
		}
		for pq.Len() > 0 && pq.items[0].deadline <= r {
			dropped += int64(pq.items[0].count)
			heap.Pop(&pq)
		}
		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				heap.Push(&pq, parJob{
					deadline: r + inst.Delays[b.Color],
					delay:    inst.Delays[b.Color],
					color:    b.Color,
					count:    b.Count,
				})
			}
		}
		budget := m
		for budget > 0 && pq.Len() > 0 {
			top := &pq.items[0]
			take := top.count
			if take > budget {
				take = budget
			}
			budget -= take
			top.count -= take
			if top.count == 0 {
				heap.Pop(&pq)
			}
		}
	}
	return dropped
}

// ——— Pending state with an undo journal ———

// pqueues is the solver's pending-job state: per-color (deadline, count)
// bucket queues in ascending deadline order, with an explicit undo journal
// so the DFS mutates one shared structure in place instead of cloning per
// leaf. Every mutating operation first snapshots the touched color's
// active window into an arena; undoTo replays the journal in reverse.
type pqueues struct {
	q        []colorQueue
	perColor []int
	total    int
	recs     []pqSave
	arena    []bucket
}

// colorQueue's active window is buckets[head:]; expired and fully
// executed buckets are skipped by advancing head, never resliced away, so
// restoring a saved head resurrects them.
type colorQueue struct {
	buckets []bucket
	head    int
}

type pqSave struct {
	color    int32
	head     int32
	length   int32
	arenaOff int32
	total    int32
	pcount   int32
}

func (p *pqueues) reset(numColors int) {
	if cap(p.q) < numColors {
		p.q = make([]colorQueue, numColors)
		p.perColor = make([]int, numColors)
	}
	p.q = p.q[:numColors]
	p.perColor = p.perColor[:numColors]
	for c := range p.q {
		p.q[c].buckets = p.q[c].buckets[:0]
		p.q[c].head = 0
		p.perColor[c] = 0
	}
	p.total = 0
	p.recs = p.recs[:0]
	p.arena = p.arena[:0]
}

func (p *pqueues) mark() int { return len(p.recs) }

// save snapshots color c's queue (and the global totals) so undoTo can
// restore the exact state. Callers save before every mutation of c within
// the current journal segment; duplicate saves are harmless because
// restore runs in reverse order.
func (p *pqueues) save(c int) {
	q := &p.q[c]
	p.recs = append(p.recs, pqSave{
		color:    int32(c),
		head:     int32(q.head),
		length:   int32(len(q.buckets)),
		arenaOff: int32(len(p.arena)),
		total:    int32(p.total),
		pcount:   int32(p.perColor[c]),
	})
	p.arena = append(p.arena, q.buckets[q.head:]...)
}

func (p *pqueues) undoTo(m int) {
	for i := len(p.recs) - 1; i >= m; i-- {
		r := p.recs[i]
		q := &p.q[r.color]
		q.head = int(r.head)
		q.buckets = q.buckets[:r.length]
		copy(q.buckets[r.head:], p.arena[r.arenaOff:])
		p.arena = p.arena[:r.arenaOff]
		p.total = int(r.total)
		p.perColor[r.color] = int(r.pcount)
	}
	p.recs = p.recs[:m]
}

// expire drops all jobs with deadline ≤ round and returns how many.
func (p *pqueues) expire(round int) int {
	dropped := 0
	for c := range p.q {
		q := &p.q[c]
		i := q.head
		for i < len(q.buckets) && q.buckets[i].deadline <= round {
			i++
		}
		if i == q.head {
			continue
		}
		p.save(c)
		d := 0
		for j := q.head; j < i; j++ {
			d += q.buckets[j].count
		}
		q.head = i
		p.perColor[c] -= d
		p.total -= d
		dropped += d
	}
	return dropped
}

func (p *pqueues) add(c sched.Color, deadline, count int) {
	p.save(int(c))
	q := &p.q[c]
	if n := len(q.buckets); n > q.head && q.buckets[n-1].deadline == deadline {
		q.buckets[n-1].count += count
	} else {
		q.buckets = append(q.buckets, bucket{deadline: deadline, count: count})
	}
	p.perColor[c] += count
	p.total += count
}

// exec executes up to k earliest-deadline jobs of color c.
func (p *pqueues) exec(c sched.Color, k int) {
	q := &p.q[c]
	if k <= 0 || q.head >= len(q.buckets) {
		return
	}
	p.save(int(c))
	done := 0
	for k > 0 && q.head < len(q.buckets) {
		b := &q.buckets[q.head]
		take := b.count
		if take > k {
			take = k
		}
		b.count -= take
		k -= take
		done += take
		if b.count == 0 {
			q.head++
		}
	}
	p.perColor[c] -= done
	p.total -= done
}

// ——— The branch-and-bound worker ———

// rootTask is one root-split unit: the configuration decisions for the
// first branching round(s). Workers replay the (cheap, deterministic)
// prefix themselves, so tasks carry no pending state.
type rootTask struct {
	path [][]sched.Color
}

// searchFrame is per-depth scratch: candidate colors, the odometer over
// nondecreasing candidate-index sequences, the materialized child
// configurations (flat, m colors each) with their reconfiguration costs,
// certified scores and exploration order, the per-color residual
// contributions, and the node's memo key. Reusing them per depth keeps
// node processing allocation-free once the frames are warm.
type searchFrame struct {
	cands      []sched.Color
	idx        []int
	key        []uint64
	childCfg   []sched.Color
	childCost  []int64 // reconfiguration cost per child
	childScore []int64 // recost + admissible child bound
	order      []int32
	contrib    []int64

	// Child-probe scratch (see buildBaseKey/probeChild): the shared
	// no-execution state key of round r+1, the per-child adjusted copy,
	// and per-color bookkeeping — jobs due exactly at r+1, each color's
	// bucket-word range in baseKey, and how many of those words are
	// surviving pre-arrival buckets (the only ones execution can touch).
	baseKey  []uint64
	probeKey []uint64
	due      []int32
	pend2    []int32
	colorOff []int32
	elig     []int32
}

type exactWorker struct {
	inst    *sched.Instance
	m       int
	delta   int64
	pre     *exactPrecomp
	shared  *exactShared
	p       pqueues
	memo    exactMemo
	frames  []searchFrame
	rootCfg []sched.Color
	stats   ExactStats

	pendingStates int
	flushEvery    int
}

func newExactWorker(inst *sched.Instance, m int, pre *exactPrecomp, shared *exactShared) *exactWorker {
	w := &exactWorker{
		inst:       inst,
		m:          m,
		delta:      int64(inst.Delta),
		pre:        pre,
		shared:     shared,
		frames:     make([]searchFrame, pre.horizon+2),
		rootCfg:    make([]sched.Color, m),
		flushEvery: 64,
	}
	if shared.maxStates < 4096 {
		// Tiny budgets must fail exactly at the limit, not at the next
		// batched flush.
		w.flushEvery = 1
	}
	for i := range w.rootCfg {
		w.rootCfg[i] = sched.NoColor
	}
	w.p.reset(inst.NumColors())
	w.memo.init()
	return w
}

// countState accounts one expanded branch node against the shared budget.
func (w *exactWorker) countState() error {
	w.pendingStates++
	if w.pendingStates >= w.flushEvery {
		if err := w.flushStates(); err != nil {
			return err
		}
	}
	if w.shared.stop.Load() {
		return errExactStopped
	}
	return nil
}

func (w *exactWorker) flushStates() error {
	if w.pendingStates == 0 {
		return nil
	}
	n := w.shared.states.Add(int64(w.pendingStates))
	w.pendingStates = 0
	if n > w.shared.maxStates {
		w.shared.stop.Store(true)
		return errExactStopped
	}
	return nil
}

// advance walks the worker's freshly-reset pending state forward from
// round 0, consuming path decisions at branching rounds, and stops just
// before the first branching round with no decision left: the returned
// (r, cfg, g) describe a search node (round r's drop phase not yet
// applied) reached at accumulated cost g. done reports that the instance
// completed along the path with no further branching; g is then the exact
// total cost of the path.
func (w *exactWorker) advance(path [][]sched.Color) (int, []sched.Color, int64, bool) {
	inst := w.inst
	cfg := w.rootCfg
	g := int64(0)
	pi := 0
	for r := 0; ; r++ {
		if (r >= inst.NumRounds() && w.p.total == 0) || r >= w.pre.horizon {
			return r, cfg, g, true
		}
		if pi == len(path) {
			// Peek: is round r a branching round?
			mk := w.p.mark()
			drops := w.p.expire(r)
			if r < inst.NumRounds() {
				for _, b := range inst.Requests[r] {
					w.p.add(b.Color, r+inst.Delays[b.Color], b.Count)
				}
			}
			if w.p.total > 0 {
				w.p.undoTo(mk)
				return r, cfg, g, false
			}
			g += int64(drops)
			continue
		}
		drops := w.p.expire(r)
		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				w.p.add(b.Color, r+inst.Delays[b.Color], b.Count)
			}
		}
		g += int64(drops)
		if w.p.total == 0 {
			continue
		}
		next := path[pi]
		pi++
		g += w.delta * int64(w.m-multisetIntersection(cfg, next))
		w.execConfig(next)
		cfg = next
	}
}

// expandLevel replaces every task by its branch-node children, one
// configuration choice deeper. Tasks whose replay completes the instance
// are folded into the shared incumbent as exact path costs.
func (w *exactWorker) expandLevel(tasks []rootTask) []rootTask {
	var out []rootTask
	for _, t := range tasks {
		w.p.reset(w.inst.NumColors())
		r, cfg, g, done := w.advance(t.path)
		if done {
			w.shared.propose(g)
			continue
		}
		w.p.expire(r)
		if r < w.inst.NumRounds() {
			for _, b := range w.inst.Requests[r] {
				w.p.add(b.Color, r+w.inst.Delays[b.Color], b.Count)
			}
		}
		cands := w.candidates(cfg, nil)
		idx := make([]int, w.m)
		for {
			next := make([]sched.Color, w.m)
			for i, ix := range idx {
				next[i] = cands[ix]
			}
			path := make([][]sched.Color, 0, len(t.path)+1)
			path = append(path, t.path...)
			path = append(path, next)
			out = append(out, rootTask{path: path})
			if !nextOdometer(idx, len(cands)) {
				break
			}
		}
	}
	return out
}

// nextOdometer advances idx to the next nondecreasing index sequence over
// [0, n); it returns false after the last one. The order matches the
// legacy enumerator, child configurations are emitted sorted.
func nextOdometer(idx []int, n int) bool {
	j := len(idx) - 1
	for j >= 0 && idx[j] == n-1 {
		j--
	}
	if j < 0 {
		return false
	}
	v := idx[j] + 1
	for ; j < len(idx); j++ {
		idx[j] = v
	}
	return true
}

// runTask replays one root task and solves its subtree, unless a
// certified bound proves the whole task cannot improve the incumbent.
func (w *exactWorker) runTask(t rootTask) error {
	w.p.reset(w.inst.NumColors())
	r, cfg, g, done := w.advance(t.path)
	if done {
		w.shared.propose(g)
		return nil
	}
	// Peek at the node after round r's drop and arrival phases: if
	// cost-so-far plus the admissible suffix bound reaches the incumbent,
	// no completion of this task improves it (and if the incumbent is
	// OPT, equality is fine — OPT is already recorded).
	mk := w.p.mark()
	drops := int64(w.p.expire(r))
	if r < w.inst.NumRounds() {
		for _, b := range w.inst.Requests[r] {
			w.p.add(b.Color, r+w.inst.Delays[b.Color], b.Count)
		}
	}
	h := w.suffixBound(r, cfg)
	w.p.undoTo(mk)
	if g+drops+h >= w.shared.incumbent.Load() {
		w.stats.BoundPrunes++
		return nil
	}
	v, err := w.search(r, 0, cfg)
	if err != nil {
		return err
	}
	w.shared.propose(g + v)
	return nil
}

// candidates appends the sorted candidate colors for the current node:
// NoColor plus every color that is pending or already configured.
func (w *exactWorker) candidates(cfg []sched.Color, dst []sched.Color) []sched.Color {
	dst = append(dst, sched.NoColor)
	ci := 0
	for c := range w.p.q {
		col := sched.Color(c)
		for ci < len(cfg) && cfg[ci] < col {
			ci++
		}
		if w.p.perColor[c] > 0 || (ci < len(cfg) && cfg[ci] == col) {
			dst = append(dst, col)
		}
	}
	return dst
}

// suffixBound returns an admissible lower bound on the value of the
// current node (round r, drop and arrival phases applied, configuration
// cfg entering the round): the larger of
//
//   - the Par-EDF drop tail of the remaining arrivals (tails[r+1]): the
//     continuation drops at least that many of the jobs arriving in
//     rounds ≥ r+1, whatever it does (Lemma 3.7 applied to the suffix;
//     current pending only adds load);
//   - the residual color cost Σ min(Δ, remaining_c) over colors c not in
//     cfg with remaining_c = pending_c + future arrivals: each such color
//     either sees a reconfiguration (≥ Δ, attributable to c alone) or
//     drops all its remaining jobs (Corollary 3.3's argument).
//
// The two certify disjoint scenarios of the same continuation, but may
// both count a dropped job, so they combine by max, not sum.
func (w *exactWorker) suffixBound(r int, cfg []sched.Color) int64 {
	h := w.pre.tails[r+1]
	arr := w.pre.arrRow(r + 1)
	var cs int64
	ci := 0
	for c := range w.p.perColor {
		rem := int64(w.p.perColor[c]) + int64(arr[c])
		if rem == 0 {
			continue
		}
		col := sched.Color(c)
		for ci < len(cfg) && cfg[ci] < col {
			ci++
		}
		if ci < len(cfg) && cfg[ci] == col {
			continue
		}
		if rem < w.delta {
			cs += rem
		} else {
			cs += w.delta
		}
	}
	if cs > h {
		h = cs
	}
	return h
}

// hasWorkAt reports whether round r has any decision to make: arrivals,
// or pending jobs surviving r's drop phase (some bucket deadline > r —
// bucket deadlines are ascending, so checking each color's last bucket
// suffices).
func (w *exactWorker) hasWorkAt(r int) bool {
	if r < w.inst.NumRounds() && len(w.inst.Requests[r]) > 0 {
		return true
	}
	for c := range w.p.q {
		q := &w.p.q[c]
		if n := len(q.buckets); n > q.head && q.buckets[n-1].deadline > r {
			return true
		}
	}
	return false
}

// execConfig runs the execution phase for configuration next (sorted):
// each location executes one earliest-deadline pending job of its color.
func (w *exactWorker) execConfig(next []sched.Color) {
	for i := 0; i < len(next); {
		c := next[i]
		j := i + 1
		for j < len(next) && next[j] == c {
			j++
		}
		if c != sched.NoColor {
			w.p.exec(c, j-i)
		}
		i = j
	}
}

// encodeKey appends the canonical state key: round, configuration, and
// the pending buckets in the precomp's key mode. Sub-word modes pack
// each bucket into a 16- or 32-bit lane — color, deadline−r (post-
// arrival deadlines are always > r, so the field is never 0), count —
// several per word, with zero pad lanes after the last bucket (a zero
// count lane is never a bucket, so padding is unambiguous). Wide mode
// spends one word per bucket, with field widths guarded at SolveExact
// entry. Bucket order is deterministic (ascending color, then ascending
// deadline), so equal states produce equal keys.
func (w *exactWorker) encodeKey(r int, cfg []sched.Color, dst []uint64) []uint64 {
	dst = append(dst, uint64(r))
	for _, c := range cfg {
		dst = append(dst, uint64(uint32(c)))
	}
	switch w.pre.keyMode {
	case keyQuarter:
		var cur uint64
		nq := 0
		for c := range w.p.q {
			q := &w.p.q[c]
			for _, b := range q.buckets[q.head:] {
				h := uint64(c)<<13 | uint64(b.deadline-r)<<8 | uint64(b.count)
				cur |= h << (uint(nq&3) * 16)
				if nq&3 == 3 {
					dst = append(dst, cur)
					cur = 0
				}
				nq++
			}
		}
		if nq&3 != 0 {
			dst = append(dst, cur)
		}
	case keyHalf:
		var cur uint64
		nh := 0
		for c := range w.p.q {
			q := &w.p.q[c]
			for _, b := range q.buckets[q.head:] {
				h := uint64(c)<<26 | uint64(b.deadline-r)<<16 | uint64(b.count)
				if nh&1 == 0 {
					cur = h
				} else {
					dst = append(dst, cur|h<<32)
				}
				nh++
			}
		}
		if nh&1 == 1 {
			dst = append(dst, cur)
		}
	default:
		for c := range w.p.q {
			q := &w.p.q[c]
			for _, b := range q.buckets[q.head:] {
				dst = append(dst, uint64(c)<<52|uint64(b.deadline-r)<<32|uint64(uint32(b.count)))
			}
		}
	}
	return dst
}

// buildBaseKey prepares the frame for probeChild: the key of round
// r+1's post-drop, post-arrival state assuming no execution this round
// (configuration words left as placeholders), the word range of each
// color's buckets within it, and how many leading words of each range
// are surviving pre-arrival buckets (f.due is already filled by the
// caller). Returns the no-execution drop count; the pending state is
// restored before returning.
//
// Only called when round r+1 has arrivals, which guarantees the child
// search will key its state at exactly round r+1 (no fast-forward) in
// exactly this layout.
func (w *exactWorker) buildBaseKey(f *searchFrame, r int) int64 {
	nc := len(w.p.q)
	if cap(f.colorOff) < nc {
		f.colorOff = make([]int32, nc)
		f.elig = make([]int32, nc)
	}
	due := f.due[:nc] // filled by search just before
	off := f.colorOff[:nc]
	elig := f.elig[:nc]
	for c := range w.p.q {
		q := &w.p.q[c]
		n := len(q.buckets) - q.head
		if due[c] > 0 {
			n-- // the head bucket is the due bucket; expire removes it
		}
		elig[c] = int32(n)
	}
	mk := w.p.mark()
	drops := int64(w.p.expire(r + 1))
	for _, b := range w.inst.Requests[r+1] {
		w.p.add(b.Color, r+1+w.inst.Delays[b.Color], b.Count)
	}
	key := f.baseKey[:0]
	key = append(key, uint64(r+1))
	for i := 0; i < w.m; i++ {
		key = append(key, 0)
	}
	switch w.pre.keyMode {
	case keyQuarter:
		// off[c] counts in bucket (lane) units from the start of the
		// bucket region; probeChild translates.
		var cur uint64
		nq := 0
		for c := range w.p.q {
			q := &w.p.q[c]
			off[c] = int32(nq)
			for _, b := range q.buckets[q.head:] {
				h := uint64(c)<<13 | uint64(b.deadline-(r+1))<<8 | uint64(b.count)
				cur |= h << (uint(nq&3) * 16)
				if nq&3 == 3 {
					key = append(key, cur)
					cur = 0
				}
				nq++
			}
		}
		if nq&3 != 0 {
			key = append(key, cur)
		}
	case keyHalf:
		var cur uint64
		nh := 0
		for c := range w.p.q {
			q := &w.p.q[c]
			off[c] = int32(nh)
			for _, b := range q.buckets[q.head:] {
				h := uint64(c)<<26 | uint64(b.deadline-(r+1))<<16 | uint64(b.count)
				if nh&1 == 0 {
					cur = h
				} else {
					key = append(key, cur|h<<32)
				}
				nh++
			}
		}
		if nh&1 == 1 {
			key = append(key, cur)
		}
	default:
		for c := range w.p.q {
			q := &w.p.q[c]
			off[c] = int32(len(key))
			for _, b := range q.buckets[q.head:] {
				key = append(key, uint64(c)<<52|uint64(b.deadline-(r+1))<<32|uint64(uint32(b.count)))
			}
		}
	}
	f.baseKey = key
	w.p.undoTo(mk)
	return drops
}

// probeChild answers a child edge from the memo without mutating
// anything: the child's round-(r+1) state key is the frame's base key
// with the child configuration filled in and the executed colors'
// buckets decremented. Execution is earliest-deadline-first, so it
// consumes the due-now jobs first — each reducing the child's drop
// count — and then the earliest surviving buckets, which are exactly
// the leading words of the color's base-key range (arrivals of a color
// always carry a strictly later deadline than anything it has pending,
// since per-color delays are fixed). On a hit, returns the memoized
// child value and the child's round-(r+1) drop count.
func (w *exactWorker) probeChild(f *searchFrame, child []sched.Color, dropsBase int64) (int64, int64, bool) {
	pk := append(f.probeKey[:0], f.baseKey...)
	f.probeKey = pk
	for i, c := range child {
		pk[1+i] = uint64(uint32(c))
	}
	fromDue := int64(0)
	removed := false
	for i := 0; i < len(child); {
		c := child[i]
		j := i + 1
		for j < len(child) && child[j] == c {
			j++
		}
		k := int32(j - i)
		i = j
		if c == sched.NoColor {
			continue
		}
		if d := f.due[c]; d > 0 {
			if d > k {
				d = k
			}
			fromDue += int64(d)
			k -= d
		}
		o := int(f.colorOff[c])
		e := o + int(f.elig[c])
		switch w.pre.keyMode {
		case keyQuarter:
			b0 := 1 + w.m
			for h := o; k > 0 && h < e; h++ {
				wi := b0 + h>>2
				sh := uint(h&3) * 16
				cnt := int32((pk[wi] >> sh) & 0xFF)
				t := cnt
				if t > k {
					t = k
				}
				pk[wi] -= uint64(t) << sh
				k -= t
				if t == cnt {
					removed = true
				}
			}
		case keyHalf:
			b0 := 1 + w.m
			for h := o; k > 0 && h < e; h++ {
				wi := b0 + h>>1
				sh := uint(h&1) * 32
				cnt := int32((pk[wi] >> sh) & 0xFFFF)
				t := cnt
				if t > k {
					t = k
				}
				pk[wi] -= uint64(t) << sh
				k -= t
				if t == cnt {
					removed = true
				}
			}
		default:
			for wi := o; k > 0 && wi < e; wi++ {
				cnt := int32(uint32(pk[wi]))
				t := cnt
				if t > k {
					t = k
				}
				pk[wi] -= uint64(t)
				k -= t
				if t == cnt {
					removed = true
				}
			}
		}
		// k may remain > 0: the color ran out of jobs and the extra
		// locations idle, exactly as exec would.
	}
	if removed {
		// Drop zeroed buckets and re-pack. Only decremented buckets can
		// reach count zero, and only the region past the 1+m header
		// holds buckets (a configuration word can legitimately be zero).
		b0 := 1 + w.m
		switch w.pre.keyMode {
		case keyQuarter:
			// Re-pack the surviving lanes densely; trailing pad lanes
			// (count 0) are skipped like any drained bucket, so the
			// result is canonical. Writes never outrun the read cursor
			// (the current word is cached in w64 before any write).
			qw := 0
			for wi := b0; wi < len(pk); wi++ {
				w64 := pk[wi]
				for s := uint(0); s < 64; s += 16 {
					h := (w64 >> s) & 0xFFFF
					if h&0xFF == 0 {
						continue
					}
					twi := b0 + qw>>2
					if qw&3 == 0 {
						pk[twi] = h
					} else {
						pk[twi] |= h << (uint(qw&3) * 16)
					}
					qw++
				}
			}
			pk = pk[:b0+(qw+3)>>2]
		case keyHalf:
			hw := 0
			for wi := b0; wi < len(pk); wi++ {
				w64 := pk[wi]
				for s := uint(0); s < 64; s += 32 {
					h := (w64 >> s) & 0xFFFFFFFF
					if h&0xFFFF == 0 {
						continue
					}
					twi := b0 + hw>>1
					if hw&1 == 0 {
						pk[twi] = h
					} else {
						pk[twi] |= h << 32
					}
					hw++
				}
			}
			pk = pk[:b0+(hw+1)>>1]
		default:
			j := b0
			for wi := b0; wi < len(pk); wi++ {
				if uint32(pk[wi]) != 0 {
					pk[j] = pk[wi]
					j++
				}
			}
			pk = pk[:j]
		}
		f.probeKey = pk
	}
	v, ok := w.memo.get(pk, hashKey(pk))
	if !ok {
		return 0, 0, false
	}
	return v, dropsBase - fromDue, true
}

// scoreChildren fills f.childScore with an admissible lower bound on
// the total of every child listed in f.order: reconfiguration cost plus
// the larger of
//
//   - the residual color cost Σ min(Δ, remaining_c) over colors c the
//     child leaves unconfigured, remaining_c = pending + future arrivals:
//     each such color either sees a reconfiguration (≥ Δ, attributable
//     to c alone) or drops all its remaining jobs (Corollary 3.3's
//     argument);
//   - the Par-EDF drop tail of the remaining arrivals (Lemma 3.7 on the
//     suffix σ[r+1:]) plus the child's certain drops among jobs already
//     pending: due-now jobs it leaves unexecuted, and deadline-≤-r+2
//     jobs beyond what its executions now plus m executions next round
//     can serve (EDF executes earliest deadlines first, so exactly
//     min(k_c, pending_c within the window) of its color-c executions
//     land in the window). Pending jobs arrived ≤ r, so the two terms
//     never double-count a job and may be summed.
func (w *exactWorker) scoreChildren(f *searchFrame, r int, totalDue int64) {
	arr := w.pre.arrRow(r + 1)
	if cap(f.contrib) < len(w.p.perColor) {
		f.contrib = make([]int64, len(w.p.perColor))
	}
	contrib := f.contrib[:len(w.p.perColor)]
	var fullResidual int64
	for c := range contrib {
		rem := int64(w.p.perColor[c]) + int64(arr[c])
		if rem > w.delta {
			rem = w.delta
		}
		contrib[c] = rem
		fullResidual += rem
	}
	tailNext := w.pre.tails[r+1]

	due := f.due[:len(w.p.q)]
	pend2 := f.pend2[:len(w.p.q)]
	var totalPend2 int64
	for c := range w.p.q {
		q := &w.p.q[c]
		pend2[c] = 0
		for i := q.head; i < len(q.buckets) && q.buckets[i].deadline <= r+2; i++ {
			pend2[c] += int32(q.buckets[i].count)
		}
		totalPend2 += int64(pend2[c])
	}

	if cap(f.childScore) < len(f.childCost) {
		f.childScore = make([]int64, len(f.childCost))
	}
	f.childScore = f.childScore[:len(f.childCost)]
	for _, ci := range f.order {
		child := f.childCfg[int(ci)*w.m : (int(ci)+1)*w.m]
		residual := fullResidual
		covered, covered2 := int64(0), int64(0)
		for i := 0; i < len(child); {
			c := child[i]
			j := i + 1
			for j < len(child) && child[j] == c {
				j++
			}
			if c != sched.NoColor {
				residual -= contrib[c]
				k := int64(j - i)
				if d := int64(due[c]); d > 0 {
					if d > k {
						d = k
					}
					covered += d
				}
				if d := int64(pend2[c]); d > 0 {
					if d > k {
						d = k
					}
					covered2 += d
				}
			}
			i = j
		}
		certain := totalDue - covered
		if t := totalPend2 - covered2 - int64(w.m); t > certain {
			certain = t
		}
		bound := residual
		if t := tailNext + certain; t > bound {
			bound = t
		}
		f.childScore[ci] = f.childCost[ci] + bound
	}
}

// search returns the exact minimal suffix cost from the start of round r
// (before its drop phase) with configuration cfg entering the round —
// the same recurrence the reference solver computes, so values are
// bit-identical by construction.
//
// Branch and bound happens among siblings: children are scored with an
// admissible lower bound on their total (reconfiguration cost + child
// suffix bound, computable before executing the child) and explored in
// ascending score order; as soon as the next score is ≥ the best child
// solved exactly, the entire tail is skipped — each skipped child is
// certified ≥ the minimum already in hand, so the node's value stays
// exact and every memo entry is exact (no re-search, ever).
func (w *exactWorker) search(r, depth int, cfg []sched.Color) (int64, error) {
	inst := w.inst
	mark := w.p.mark()
	defer w.p.undoTo(mark)

	// Fast-forward rounds with no work (no arrivals, nothing pending
	// beyond its deadline): the optimum keeps the configuration and
	// waits, paying only the forced drops. Iterative — no recursion, no
	// extra journal segments per waited round beyond the expires.
	var acc int64
	for {
		if (r >= inst.NumRounds() && w.p.total == 0) || r >= w.pre.horizon {
			return acc, nil
		}
		if w.hasWorkAt(r) {
			break
		}
		acc += int64(w.p.expire(r))
		r++
	}

	// Drop phase, then arrival phase. The memo key is the post-arrival
	// state: the drop phase is what makes converging paths identical, so
	// keying after it maximizes state collapse.
	drops := int64(w.p.expire(r))
	if r < inst.NumRounds() {
		for _, b := range inst.Requests[r] {
			w.p.add(b.Color, r+inst.Delays[b.Color], b.Count)
		}
	}
	f := &w.frames[depth]
	f.key = w.encodeKey(r, cfg, f.key[:0])
	hash := hashKey(f.key)
	if v, ok := w.memo.get(f.key, hash); ok {
		w.stats.MemoHits++
		return acc + drops + v, nil
	}
	if err := w.countState(); err != nil {
		return 0, err
	}

	// due[c]: jobs round r+1's drop phase takes unless executed this
	// round (post-arrival buckets all have deadline ≥ r+1, so they are
	// exactly the head bucket when it matches). probeChild needs these
	// to account the drops a child's executions avert.
	nc := len(w.p.q)
	if cap(f.due) < nc {
		f.due = make([]int32, nc)
		f.pend2 = make([]int32, nc)
	}
	due := f.due[:nc]
	var totalDue int64
	for c := range w.p.q {
		q := &w.p.q[c]
		due[c] = 0
		if q.head < len(q.buckets) && q.buckets[q.head].deadline == r+1 {
			due[c] = int32(q.buckets[q.head].count)
			totalDue += int64(due[c])
		}
	}

	// Materialize the candidate configurations (nondecreasing sequences
	// over the sorted candidate colors — the same WLOG-complete space
	// the reference solver enumerates) with their reconfiguration costs.
	f.cands = w.candidates(cfg, f.cands[:0])
	if cap(f.idx) < w.m {
		f.idx = make([]int, w.m)
	}
	idx := f.idx[:w.m]
	for i := range idx {
		idx[i] = 0
	}
	f.childCfg = f.childCfg[:0]
	f.childCost = f.childCost[:0]
	for {
		base := len(f.childCfg)
		for _, ix := range idx {
			f.childCfg = append(f.childCfg, f.cands[ix])
		}
		child := f.childCfg[base : base+w.m]
		f.childCost = append(f.childCost, w.delta*int64(w.m-multisetIntersection(cfg, child)))
		if !nextOdometer(idx, len(f.cands)) {
			break
		}
	}
	nChildren := len(f.childCost)

	// When round r+1 has arrivals, every child's memo key can be derived
	// from a shared base key without touching the pending state, so
	// revisits of already-solved child states (the vast majority of
	// edges in this heavily-converging DAG) cost one key fixup and one
	// table probe instead of execute/drop/arrive mutations, a recursive
	// call and their undo replay. All children are probed first: the
	// exact values found seed the best-in-hand, and only the missing
	// children (typically one per node) need bounds, ordering and
	// recursion.
	probeOK := r+1 < inst.NumRounds() && len(inst.Requests[r+1]) > 0
	best := int64(-1)
	f.order = f.order[:0]
	if probeOK {
		dropsBase := w.buildBaseKey(f, r)
		for ci := 0; ci < nChildren; ci++ {
			child := f.childCfg[ci*w.m : (ci+1)*w.m]
			if v, cdrops, ok := w.probeChild(f, child, dropsBase); ok {
				w.stats.MemoHits++
				if t := f.childCost[ci] + cdrops + v; best < 0 || t < best {
					best = t
				}
			} else {
				f.order = append(f.order, int32(ci))
			}
		}
	} else {
		for ci := 0; ci < nChildren; ci++ {
			f.order = append(f.order, int32(ci))
		}
	}

	if len(f.order) > 0 {
		w.scoreChildren(f, r, totalDue)
		// Ascending certified score (stable: ties keep enumeration
		// order), so the unsolved child most likely to be optimal is
		// recursed into first and the skip below triggers as early as
		// possible. Small insertion sort — miss counts are tiny.
		for i := 1; i < len(f.order); i++ {
			ci := f.order[i]
			j := i
			for j > 0 && f.childScore[f.order[j-1]] > f.childScore[ci] {
				f.order[j] = f.order[j-1]
				j--
			}
			f.order[j] = ci
		}
		for oi, ci := range f.order {
			if best >= 0 && f.childScore[ci] >= best {
				// Certified skip: this child's total is ≥ its score ≥
				// the exact best in hand, and scores only grow from
				// here.
				w.stats.BoundPrunes += int64(len(f.order) - oi)
				break
			}
			child := f.childCfg[int(ci)*w.m : (int(ci)+1)*w.m]
			cmark := w.p.mark()
			w.execConfig(child)
			v, err := w.search(r+1, depth+1, child)
			w.p.undoTo(cmark)
			if err != nil {
				return 0, err
			}
			if t := f.childCost[ci] + v; best < 0 || t < best {
				best = t
			}
		}
	}

	// The frame key is still valid: every child restored the pending
	// state before returning. The stored value is for the post-arrival
	// state, so this round's (path-independent) drop cost stays outside.
	w.memo.store(f.key, hash, best)
	return acc + drops + best, nil
}
