package offline

import (
	"strconv"

	"repro/internal/sched"
)

// ReferenceBruteForce is the original exact solver: a plain memoized DFS
// over (round, configuration, pending-jobs) states with string state keys
// and copy-on-branch pending state. It is kept verbatim (modulo the two
// historical bugs fixed below) as the executable specification of the
// exact optimum: the branch-and-bound solver behind BruteForce/SolveExact
// must return bit-identical optima on every instance both can solve, which
// the differential corpus in bruteforce_test.go pins. It also serves as
// the baseline for the solver benchmarks (states/sec old vs new).
//
// Differences from the pre-PR-4 BruteForce, both bug fixes:
//   - the caller's instance is no longer mutated (an internal clone is
//     normalized instead);
//   - multisetIntersection no longer re-allocates and re-sorts its two
//     already-sorted inputs at every leaf.
//
// It returns the optimal total cost and the number of memoized states
// explored (the denominator of the states/sec benchmark metric).
func ReferenceBruteForce(inst *sched.Instance, m int, maxStates int) (int64, int, error) {
	if err := inst.Validate(); err != nil {
		return 0, 0, err
	}
	if m < 1 {
		return 0, 0, errBadM(m)
	}
	if maxStates <= 0 {
		maxStates = DefaultStateBudget
	}
	inst = inst.Clone().Normalize()
	bf := &referenceForcer{
		inst:      inst,
		m:         m,
		memo:      make(map[string]int64),
		maxStates: maxStates,
	}
	cfg := make([]sched.Color, m)
	for i := range cfg {
		cfg[i] = sched.NoColor
	}
	opt, err := bf.solve(0, cfg, newPendingState(inst.NumColors()))
	return opt, bf.states, err
}

type referenceForcer struct {
	inst      *sched.Instance
	m         int
	memo      map[string]int64
	states    int
	maxStates int
}

// pendingState holds, per color, the pending (deadline, count) buckets in
// ascending deadline order. It is copied on branching; instances are tiny.
type pendingState struct {
	buckets [][]bucket
	total   int
}

type bucket struct {
	deadline int
	count    int
}

func newPendingState(numColors int) *pendingState {
	return &pendingState{buckets: make([][]bucket, numColors)}
}

func (p *pendingState) clone() *pendingState {
	c := &pendingState{buckets: make([][]bucket, len(p.buckets)), total: p.total}
	for i, bs := range p.buckets {
		if len(bs) > 0 {
			c.buckets[i] = append([]bucket(nil), bs...)
		}
	}
	return c
}

// expire drops all jobs with deadline ≤ round and returns how many.
func (p *pendingState) expire(round int) int {
	dropped := 0
	for c, bs := range p.buckets {
		i := 0
		for i < len(bs) && bs[i].deadline <= round {
			dropped += bs[i].count
			i++
		}
		if i > 0 {
			p.buckets[c] = bs[i:]
		}
	}
	p.total -= dropped
	return dropped
}

func (p *pendingState) add(c sched.Color, deadline, count int) {
	bs := p.buckets[c]
	if n := len(bs); n > 0 && bs[n-1].deadline == deadline {
		bs[n-1].count += count
	} else {
		p.buckets[c] = append(bs, bucket{deadline: deadline, count: count})
	}
	p.total += count
}

// exec executes up to k earliest-deadline jobs of color c.
func (p *pendingState) exec(c sched.Color, k int) {
	bs := p.buckets[c]
	i := 0
	for k > 0 && i < len(bs) {
		take := bs[i].count
		if take > k {
			take = k
		}
		bs[i].count -= take
		k -= take
		p.total -= take
		if bs[i].count == 0 {
			i++
		}
	}
	if i > 0 {
		p.buckets[c] = bs[i:]
	}
}

func (p *pendingState) pendingColors(dst []sched.Color) []sched.Color {
	for c, bs := range p.buckets {
		if len(bs) > 0 {
			dst = append(dst, sched.Color(c))
		}
	}
	return dst
}

// encode builds a canonical state signature: round, sorted configuration,
// and relative-deadline pending buckets per color.
func (bf *referenceForcer) encode(r int, cfg []sched.Color, p *pendingState) string {
	buf := make([]byte, 0, 64)
	buf = strconv.AppendInt(buf, int64(r), 10)
	buf = append(buf, '|')
	for _, c := range cfg {
		buf = strconv.AppendInt(buf, int64(c), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for c, bs := range p.buckets {
		if len(bs) == 0 {
			continue
		}
		buf = strconv.AppendInt(buf, int64(c), 10)
		buf = append(buf, ':')
		for _, b := range bs {
			buf = strconv.AppendInt(buf, int64(b.deadline-r), 10)
			buf = append(buf, 'x')
			buf = strconv.AppendInt(buf, int64(b.count), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

// solve returns the minimal cost from the start of round r (before its
// drop phase) given the configuration at the end of round r−1.
func (bf *referenceForcer) solve(r int, cfg []sched.Color, p *pendingState) (int64, error) {
	inst := bf.inst
	if r >= inst.NumRounds() && p.total == 0 {
		return 0, nil
	}
	if r >= inst.Horizon() {
		// All jobs have expired by the horizon; nothing left to decide.
		return 0, nil
	}

	// Drop phase.
	drops := int64(p.expire(r))
	// Arrival phase.
	if r < inst.NumRounds() {
		for _, b := range inst.Requests[r] {
			p.add(b.Color, r+inst.Delays[b.Color], b.Count)
		}
	}
	if p.total == 0 {
		// Nothing pending: the optimum keeps the configuration and waits.
		rest, err := bf.solve(r+1, cfg, p)
		return drops + rest, err
	}

	key := bf.encode(r, cfg, p)
	if v, ok := bf.memo[key]; ok {
		return drops + v, nil
	}
	bf.states++
	if bf.states > bf.maxStates {
		return 0, &BruteForceLimitError{States: bf.states}
	}

	// Candidate colors: pending now or already configured. Both sources
	// emit colors in ascending order, so a sorted merge replaces the old
	// map + sort.Slice construction.
	var scratch []sched.Color
	cands := mergeCandidates(cfg, p.pendingColors(scratch))

	best := int64(-1)
	next := make([]sched.Color, bf.m)
	var enumerate func(pos, minIdx int) error
	enumerate = func(pos, minIdx int) error {
		if pos == bf.m {
			recost := int64(inst.Delta) * int64(bf.m-multisetIntersection(cfg, next))
			p2 := p.clone()
			for _, c := range next {
				if c != sched.NoColor {
					p2.exec(c, 1)
				}
			}
			cfg2 := append([]sched.Color(nil), next...)
			rest, err := bf.solve(r+1, cfg2, p2)
			if err != nil {
				return err
			}
			if total := recost + rest; best < 0 || total < best {
				best = total
			}
			return nil
		}
		for i := minIdx; i < len(cands); i++ {
			next[pos] = cands[i]
			if err := enumerate(pos+1, i); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0, 0); err != nil {
		return 0, err
	}
	bf.memo[key] = best
	return drops + best, nil
}

// mergeCandidates builds the sorted deduplicated candidate list
// {NoColor} ∪ cfg ∪ pending. cfg is sorted (the enumerator emits
// nondecreasing sequences and the root is all-NoColor) and pending is
// emitted in ascending color order, so a linear merge suffices.
func mergeCandidates(cfg, pending []sched.Color) []sched.Color {
	cands := make([]sched.Color, 0, 1+len(cfg)+len(pending))
	cands = append(cands, sched.NoColor)
	i, j := 0, 0
	for i < len(cfg) || j < len(pending) {
		var c sched.Color
		switch {
		case j >= len(pending) || (i < len(cfg) && cfg[i] <= pending[j]):
			c = cfg[i]
			i++
		default:
			c = pending[j]
			j++
		}
		if c != cands[len(cands)-1] {
			cands = append(cands, c)
		}
	}
	return cands
}

// multisetIntersection computes |a ∩ b| over two sorted color multisets by
// a single linear merge. Both inputs really are sorted on entry — cfg
// because the enumerator emits nondecreasing sequences (and the root
// configuration is all-NoColor), next by construction — so no defensive
// copying or re-sorting is needed on this leaf hot path.
func multisetIntersection(a, b []sched.Color) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			// NoColor "matches" cost-free as well: keeping a location
			// black is not a reconfiguration.
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}
