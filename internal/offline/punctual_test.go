package offline

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// punctualCheck runs the full Lemma 5.3 validation for one (instance,
// input schedule) pair: S′ must be a legal schedule for the VarBatch-
// transformed instance (the definition of punctuality) executing exactly
// as many jobs as S executes on the original instance.
func punctualCheck(t *testing.T, inst *sched.Instance, s *sched.Schedule, wantExec int) *sched.Result {
	t.Helper()
	out, err := Punctualize(inst.Clone(), s)
	if err != nil {
		t.Fatalf("Punctualize: %v", err)
	}
	if out.N != 7*s.N {
		t.Fatalf("S′ has %d resources, want 7·%d", out.N, s.N)
	}
	batched := core.BuildVarBatched(inst.Clone())
	res, err := sched.Replay(batched, out)
	if err != nil {
		t.Fatalf("S′ not punctual (illegal for the batched instance): %v", err)
	}
	if res.Executed != wantExec {
		t.Fatalf("S′ executed %d, S executed %d", res.Executed, wantExec)
	}
	return res
}

func TestPunctualizePreconditions(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{3}}
	inst.AddJobs(0, 0, 1)
	s := &sched.Schedule{N: 1, Speed: 1}
	if _, err := Punctualize(inst, s); err == nil {
		t.Fatal("non-power-of-two delays accepted")
	}
	inst2 := &sched.Instance{Delta: 1, Delays: []int{2}}
	inst2.AddJobs(0, 0, 1)
	if _, err := Punctualize(inst2, &sched.Schedule{N: 1, Speed: 2}); err == nil {
		t.Fatal("double-speed schedule accepted")
	}
	if _, err := Punctualize(inst2, &sched.Schedule{N: 1, Speed: 1, Exec: [][]sched.Color{}}); err == nil {
		t.Fatal("explicit-exec schedule accepted")
	}
}

func TestPunctualizeStaticSchedule(t *testing.T) {
	// A static schedule executes plenty of early jobs (same half-block as
	// arrival); all of them are special (the color holds the resource
	// forever), so they shift onto resource 0 cleanly.
	inst := &sched.Instance{Delta: 2, Delays: []int{8}}
	for r := 0; r < 32; r += 4 {
		inst.AddJobs(r, 0, 2)
	}
	run, err := sched.Run(inst.Clone(), policy.NewStatic(0), sched.Options{N: 1, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	res := punctualCheck(t, inst, run.Schedule, run.Executed)
	// The construction's reconfiguration cost stays O(C): a static input
	// needs only a handful of configurations.
	if res.Reconfigs > 7 {
		t.Fatalf("static input produced %d reconfigs in S′", res.Reconfigs)
	}
}

func TestPunctualizeDelayOneJobs(t *testing.T) {
	// D=1 jobs execute in their arrival round and flow through the
	// punctual resource untouched.
	inst := &sched.Instance{Delta: 1, Delays: []int{1}}
	for r := 0; r < 8; r++ {
		inst.AddJobs(r, 0, 1)
	}
	run, err := sched.Run(inst.Clone(), policy.NewStatic(0), sched.Options{N: 1, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	punctualCheck(t, inst, run.Schedule, run.Executed)
}

func TestPunctualizeMultiResource(t *testing.T) {
	inst := workload.ZipfMix(31, 6, 3, 96, []int{2, 4, 8}, 4, 1.0)
	run, err := sched.Run(inst.Clone(), policy.NewGreedyPending(), sched.Options{N: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	punctualCheck(t, inst, run.Schedule, run.Executed)
}

// Property: Punctualize preserves executions and punctuality for random
// instances under several input schedules.
func TestPunctualizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.ZipfMix(seed, 5, 2, 64, []int{2, 4, 8}, 3, 1.0)
		if inst.TotalJobs() == 0 {
			return true
		}
		for _, mk := range []func() sched.Policy{
			func() sched.Policy { return policy.NewGreedyPending() },
			func() sched.Policy { return policy.NewPureSeqEDF() },
		} {
			run, err := sched.Run(inst.Clone(), mk(), sched.Options{N: 2, Record: true})
			if err != nil {
				return false
			}
			out, err := Punctualize(inst.Clone(), run.Schedule)
			if err != nil {
				return false
			}
			batched := core.BuildVarBatched(inst.Clone())
			res, err := sched.Replay(batched, out)
			if err != nil {
				return false
			}
			if res.Executed != run.Executed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPunctualizeReconfigBounded: the construction's reconfiguration cost
// stays within a constant factor of the input's (Lemmas 5.1/5.2 bound it
// by O(C)), plus a startup term.
func TestPunctualizeReconfigBounded(t *testing.T) {
	inst := workload.ZipfMix(77, 6, 3, 128, []int{2, 4, 8, 16}, 4, 1.0)
	run, err := sched.Run(inst.Clone(), policy.NewEDF(), sched.Options{N: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Punctualize(inst.Clone(), run.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	batched := core.BuildVarBatched(inst.Clone())
	res, err := sched.Replay(batched, out)
	if err != nil {
		t.Fatal(err)
	}
	limit := 24*run.Reconfigs + 7*run.Schedule.N
	if res.Reconfigs > limit {
		t.Fatalf("S′ reconfigs %d exceed %d (S had %d)", res.Reconfigs, limit, run.Reconfigs)
	}
}
