package offline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBruteForceHandComputed(t *testing.T) {
	// Single color, k jobs spread out, one resource: the optimum is
	// min(Δ, drops-if-never-configured). With generous deadlines a single
	// reconfiguration executes everything.
	inst := &sched.Instance{Delta: 3, Delays: []int{8}}
	inst.AddJobs(0, 0, 4)
	opt, err := BruteForce(inst, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("OPT = %d, want Δ = 3 (configure once, run 4 jobs)", opt)
	}

	// Two jobs but Δ = 5: dropping (cost 2) beats configuring (cost 5).
	inst2 := &sched.Instance{Delta: 5, Delays: []int{8}}
	inst2.AddJobs(0, 0, 2)
	opt2, err := BruteForce(inst2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt2 != 2 {
		t.Fatalf("OPT = %d, want 2 (drop both)", opt2)
	}

	// Tight deadlines force drops even when configured: 3 jobs, D = 1,
	// all at round 0, one resource → at most 1 executed.
	inst3 := &sched.Instance{Delta: 1, Delays: []int{1}}
	inst3.AddJobs(0, 0, 3)
	opt3, err := BruteForce(inst3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt3 != 3 { // Δ + 2 drops = 3, or 3 drops = 3: both optimal
		t.Fatalf("OPT = %d, want 3", opt3)
	}
}

func TestBruteForceTwoColorsInterleaved(t *testing.T) {
	// Two colors alternating with D=2 and Δ=1 on one resource: switching
	// every block executes everything for 2·Δ… hand-check: color 0 at
	// round 0 (deadline 2), color 1 at round 2 (deadline 4). Configure 0
	// in round 0 (Δ), switch to 1 in round 2 (Δ): total 2.
	inst := &sched.Instance{Delta: 1, Delays: []int{2, 2}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(2, 1, 1)
	opt, err := BruteForce(inst, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("OPT = %d, want 2", opt)
	}
}

func TestBruteForceEmptyInstance(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{2}}
	opt, err := BruteForce(inst, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 0 {
		t.Fatalf("OPT of empty instance = %d", opt)
	}
}

func TestBruteForceLimit(t *testing.T) {
	inst := workload.RandomBatched(1, 6, 2, 64, []int{1, 2, 4}, 0.9, 0.9, true)
	_, err := BruteForce(inst, 2, 5)
	var lim *BruteForceLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("expected BruteForceLimitError, got %v", err)
	}
	if lim.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestBruteForceRejectsBadArgs(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{1}}
	if _, err := BruteForce(inst, 0, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	bad := &sched.Instance{Delta: 0, Delays: []int{1}}
	if _, err := BruteForce(bad, 1, 0); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// Property: OPT(m) lower-bounds the cost of every online policy given the
// same m resources (here: ΔLRU-EDF with m=4, EDF, the static baseline).
func TestBruteForceIsOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 2, 2, 10, []int{1, 2, 4}, 2, true)
		opt, err := BruteForce(inst.Clone(), 4, 2_000_000)
		var lim *BruteForceLimitError
		if errors.As(err, &lim) {
			return true // skip over-budget instances
		}
		if err != nil {
			return false
		}
		for _, pol := range []sched.Policy{core.NewDLRUEDF(), policy.NewEDF(), policy.NewNever()} {
			res, err := sched.Run(inst.Clone(), pol, sched.Options{N: 4})
			if err != nil {
				return false
			}
			if res.Cost.Total() < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: more resources never hurt the optimum.
func TestBruteForceMonotoneInResources(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 2, 2, 8, []int{1, 2}, 2, true)
		opt1, err1 := BruteForce(inst.Clone(), 1, 1_000_000)
		opt2, err2 := BruteForce(inst.Clone(), 2, 1_000_000)
		var lim *BruteForceLimitError
		if errors.As(err1, &lim) || errors.As(err2, &lim) {
			return true
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return opt2 <= opt1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetIntersection(t *testing.T) {
	// Inputs are sorted multisets (NoColor = -1 sorts first), as the
	// solver guarantees on its hot path.
	a := []sched.Color{sched.NoColor, 0, 0, 1}
	b := []sched.Color{sched.NoColor, 0, 1, 1}
	if got := multisetIntersection(a, b); got != 3 {
		t.Fatalf("intersection = %d, want 3 (NoColor, 0, 1)", got)
	}
	if got := multisetIntersection(nil, b); got != 0 {
		t.Fatalf("intersection with empty = %d", got)
	}
	if got := multisetIntersection([]sched.Color{0, 0, 2, 2}, []sched.Color{0, 0, 2, 3}); got != 3 {
		t.Fatalf("intersection = %d, want 3 (0, 0, 2)", got)
	}
}
