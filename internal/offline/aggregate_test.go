package offline

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func aggregateInput(seed uint64) (*sched.Instance, *sched.Schedule, error) {
	inst := workload.RandomBatched(seed, 6, 3, 96, []int{2, 4, 8}, 1.2, 0.6, false)
	res, err := sched.Run(inst.Clone(), policy.NewPureSeqEDF(), sched.Options{N: 3, Record: true})
	if err != nil {
		return nil, nil, err
	}
	return inst, res.Schedule, nil
}

func TestAggregatePreconditions(t *testing.T) {
	// Unbatched input rejected.
	inst := &sched.Instance{Delta: 1, Delays: []int{4}}
	inst.AddJobs(1, 0, 1)
	s := &sched.Schedule{N: 1, Speed: 1}
	if _, err := Aggregate(inst, s); err == nil {
		t.Fatal("unbatched instance accepted")
	}
	// Non-power-of-two delays rejected.
	inst2 := &sched.Instance{Delta: 1, Delays: []int{3}}
	inst2.AddJobs(0, 0, 1)
	if _, err := Aggregate(inst2, s); err == nil {
		t.Fatal("non-power-of-two delays accepted")
	}
	// Double-speed schedules rejected.
	inst3 := &sched.Instance{Delta: 1, Delays: []int{2}}
	inst3.AddJobs(0, 0, 1)
	s2 := &sched.Schedule{N: 1, Speed: 2}
	if _, err := Aggregate(inst3, s2); err == nil {
		t.Fatal("double-speed schedule accepted")
	}
}

// TestAggregatePreservesExecutions (Lemma 4.5): T′ is a valid schedule for
// I′ that executes exactly as many jobs as T does on I, so drop costs
// match (I and I′ have the same job count).
func TestAggregatePreservesExecutions(t *testing.T) {
	inst, T, err := aggregateInput(21)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(inst.Clone(), T)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.Replay(agg.Virtual, agg.Out)
	if err != nil {
		t.Fatalf("T′ invalid: %v", err)
	}
	if out.Executed != agg.InputResult.Executed {
		t.Fatalf("T′ executed %d, T executed %d", out.Executed, agg.InputResult.Executed)
	}
	if out.Dropped != agg.InputResult.Dropped {
		t.Fatalf("T′ dropped %d, T dropped %d", out.Dropped, agg.InputResult.Dropped)
	}
	if agg.Out.N != 3*T.N {
		t.Fatalf("T′ has %d resources, want 3·%d", agg.Out.N, T.N)
	}
}

// TestAggregateReconfigBounded (Lemma 4.6, empirical): T′'s
// reconfiguration count stays within a small factor of T's plus a startup
// term.
func TestAggregateReconfigBounded(t *testing.T) {
	inst, T, err := aggregateInput(22)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(inst.Clone(), T)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.Replay(agg.Virtual, agg.Out)
	if err != nil {
		t.Fatal(err)
	}
	in := agg.InputResult.Reconfigs
	limit := 20*in + 3*T.N
	if out.Reconfigs > limit {
		t.Fatalf("T′ reconfigs %d exceed %d (T had %d)", out.Reconfigs, limit, in)
	}
}

// Property: Aggregate produces a valid, execution-preserving schedule for
// arbitrary random batched instances and several input policies.
func TestAggregateValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 5, 2, 64, []int{2, 4}, 1.0, 0.5, false)
		for _, mk := range []func() sched.Policy{
			func() sched.Policy { return policy.NewPureSeqEDF() },
			func() sched.Policy { return policy.NewGreedyPending() },
		} {
			res, err := sched.Run(inst.Clone(), mk(), sched.Options{N: 2, Record: true})
			if err != nil {
				return false
			}
			agg, err := Aggregate(inst.Clone(), res.Schedule)
			if err != nil {
				return false
			}
			out, err := sched.Replay(agg.Virtual, agg.Out)
			if err != nil {
				return false
			}
			if out.Executed != agg.InputResult.Executed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateClippedHorizonRegression pins the fix for a bug where the
// replay horizon ended mid-block (e.g. at round 255 with delay-8 colors),
// clipping group sizes below the virtual color supplies and making the
// label assignment fail ("no label with supply ≥ …").
func TestAggregateClippedHorizonRegression(t *testing.T) {
	inst := workload.RandomBatched(517, 8, 3, 256, []int{2, 4, 8}, 1.2, 0.6, false)
	res, err := sched.Run(inst.Clone(), policy.NewEDF(), sched.Options{N: 4, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(inst.Clone(), res.Schedule)
	if err != nil {
		t.Fatalf("regression: %v", err)
	}
	out, err := sched.Replay(agg.Virtual, agg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != agg.InputResult.Executed {
		t.Fatalf("executions changed: %d → %d", agg.InputResult.Executed, out.Executed)
	}
}

// TestAggregateStaticInput: a purely static T is fully monochromatic, so
// T′ should also be near-static (labels inherited across blocks).
func TestAggregateStaticInput(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{4}}
	for r := 0; r < 32; r += 4 {
		inst.AddJobs(r, 0, 3)
	}
	res, err := sched.Run(inst.Clone(), policy.NewStatic(0), sched.Options{N: 1, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(inst.Clone(), res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.Replay(agg.Virtual, agg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != res.Executed {
		t.Fatalf("executions changed: %d → %d", res.Executed, out.Executed)
	}
	// A monochromatic input needs only the single initial configuration.
	if out.Reconfigs > 2 {
		t.Fatalf("static input produced %d reconfigs in T′", out.Reconfigs)
	}
}
