package offline

import (
	"testing"
	"testing/quick"

	"repro/internal/container"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestParEDFFeasibleInstanceNoDrops(t *testing.T) {
	// m=2 resources, 2 jobs per round with D=2: trivially feasible.
	inst := &sched.Instance{Delta: 1, Delays: []int{2, 2}}
	for r := 0; r < 10; r++ {
		inst.AddJobs(r, 0, 1)
		inst.AddJobs(r, 1, 1)
	}
	if got := ParEDFDrops(inst, 2, 1); got != 0 {
		t.Fatalf("ParEDF dropped %d on a feasible instance", got)
	}
}

func TestParEDFOverload(t *testing.T) {
	// 3 jobs with D=1 each round, m=1: exactly 2 drops per round.
	inst := &sched.Instance{Delta: 1, Delays: []int{1}}
	for r := 0; r < 5; r++ {
		inst.AddJobs(r, 0, 3)
	}
	if got := ParEDFDrops(inst, 1, 1); got != 10 {
		t.Fatalf("ParEDF dropped %d, want 10", got)
	}
	// Double speed halves the deficit: executes 2/round, drops 1/round.
	if got := ParEDFDrops(inst, 1, 2); got != 5 {
		t.Fatalf("double-speed ParEDF dropped %d, want 5", got)
	}
}

func TestParEDFPrefersEarlierDeadlines(t *testing.T) {
	// One slot per round; a D=1 job and a D=4 job arrive together. EDF
	// must serve the D=1 job first and catch the other later.
	inst := &sched.Instance{Delta: 1, Delays: []int{1, 4}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 1)
	if got := ParEDFDrops(inst, 1, 1); got != 0 {
		t.Fatalf("ParEDF dropped %d, want 0", got)
	}
}

// Property (the Lemma 3.7 direction we rely on): Par-EDF's drops
// lower-bound the drops of arbitrary m-resource schedules — here random
// scripted schedules and the online policies.
func TestParEDFLowerBoundsSchedulesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 5, 2, 48, []int{1, 2, 4}, 1.2, 0.7, false)
		m := 2
		bound := ParEDFDrops(inst.Clone(), m, 1)

		// A random scripted schedule with m resources.
		rng := container.NewRNG(seed + 1)
		s := &sched.Schedule{N: m, Speed: 1}
		for r := 0; r < inst.Horizon(); r++ {
			row := make([]sched.Color, m)
			for k := range row {
				row[k] = sched.Color(rng.Intn(inst.NumColors()))
			}
			s.Assign = append(s.Assign, row)
		}
		res, err := sched.Replay(inst.Clone(), s)
		if err != nil {
			return false
		}
		if int64(res.Dropped) < bound {
			return false
		}

		// An online policy with the same m (pure Seq-EDF uses all slots).
		res2, err := sched.Run(inst.Clone(), policy.NewPureSeqEDF(), sched.Options{N: m})
		if err != nil {
			return false
		}
		return int64(res2.Dropped) >= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParEDFMonotoneInSpeedAndResources(t *testing.T) {
	inst := workload.RandomBatched(17, 6, 2, 64, []int{1, 2, 4, 8}, 1.5, 0.8, false)
	d1 := ParEDFDrops(inst.Clone(), 1, 1)
	d2 := ParEDFDrops(inst.Clone(), 2, 1)
	ds := ParEDFDrops(inst.Clone(), 1, 2)
	if d2 > d1 || ds > d1 {
		t.Fatalf("ParEDF not monotone: m1=%d m2=%d speed2=%d", d1, d2, ds)
	}
	// speed 0 normalizes to 1.
	if got := ParEDFDrops(inst.Clone(), 1, 0); got != d1 {
		t.Fatalf("speed 0 normalization: %d != %d", got, d1)
	}
}
