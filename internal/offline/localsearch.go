package offline

import (
	"repro/internal/sched"
)

// ImproveSchedule performs offline local search on a recorded schedule:
// starting from `start`, it repeatedly tries cost-reducing block moves —
// recoloring one resource over one aligned block of rounds to another
// locally useful color, or blanking gratuitous reconfigurations — and
// keeps any move that lowers the replayed total cost. The result is a
// valid schedule whose cost is ≤ the start's; experiments use it to
// tighten offline upper bounds on OPT (the gap between the certified
// lower bound and the best schedule found brackets the true optimum).
//
// maxPasses bounds the number of full sweeps (0 means 3). The search is
// deterministic.
func ImproveSchedule(inst *sched.Instance, start *sched.Schedule, maxPasses int) (*sched.Schedule, *sched.Result, error) {
	if maxPasses <= 0 {
		maxPasses = 3
	}
	inst.Normalize()
	best := start.Clone()
	best.Exec = nil // local search relies on greedy execution
	bestRes, err := sched.Replay(inst, best)
	if err != nil {
		return nil, nil, err
	}

	// Candidate colors per block: the colors with arrivals whose lifetime
	// intersects the block, plus NoColor.
	blockLen := smallestDelay(inst)
	if blockLen < 1 {
		blockLen = 1
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		rounds := len(best.Assign)
		for lo := 0; lo < rounds; lo += blockLen {
			hi := lo + blockLen
			if hi > rounds {
				hi = rounds
			}
			cands := candidateColors(inst, lo, hi)
			for k := 0; k < best.N; k++ {
				orig := make([]sched.Color, hi-lo)
				for r := lo; r < hi; r++ {
					orig[r-lo] = best.Assign[r][k]
				}
				for _, c := range cands {
					same := true
					for r := lo; r < hi; r++ {
						if best.Assign[r][k] != c {
							same = false
							break
						}
					}
					if same {
						continue
					}
					for r := lo; r < hi; r++ {
						best.Assign[r][k] = c
					}
					res, err := sched.Replay(inst, best)
					if err == nil && res.Cost.Total() < bestRes.Cost.Total() {
						bestRes = res
						improved = true
						for r := lo; r < hi; r++ {
							orig[r-lo] = c
						}
					} else {
						for r := lo; r < hi; r++ {
							best.Assign[r][k] = orig[r-lo]
						}
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestRes, nil
}

func smallestDelay(inst *sched.Instance) int {
	s := 0
	for _, d := range inst.Delays {
		if s == 0 || d < s {
			s = d
		}
	}
	return s
}

// candidateColors lists the colors with a job whose feasible execution
// window intersects [lo, hi), plus NoColor, in deterministic order.
func candidateColors(inst *sched.Instance, lo, hi int) []sched.Color {
	seen := make(map[sched.Color]bool)
	var out []sched.Color
	for r := range inst.Requests {
		for _, b := range inst.Requests[r] {
			if r >= hi || r+inst.Delays[b.Color] <= lo {
				continue
			}
			if !seen[b.Color] {
				seen[b.Color] = true
				out = append(out, b.Color)
			}
		}
	}
	// Deterministic: colors appear in (round, request order); append the
	// blank option last.
	out = append(out, sched.NoColor)
	return out
}
