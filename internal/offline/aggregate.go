package offline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
)

// AggregateResult is the output of the Aggregate transformation of §4.3.
type AggregateResult struct {
	// Virtual is the rate-limited instance I′ (built by core.BuildDistributed)
	// and Mapping its color mapping.
	Virtual *sched.Instance
	Mapping *core.ColorMapping
	// Out is the constructed schedule T′ for I′: 3m resources, uni-speed,
	// with explicit executions.
	Out *sched.Schedule
	// InputResult is the replay of the input schedule T on I (so callers
	// can compare drop and reconfiguration costs, Lemmas 4.5 and 4.6).
	InputResult *sched.Result
}

// Aggregate implements algorithm Aggregate of §4.3 (the constructive heart
// of Lemma 4.1): given a batched instance I with power-of-two delay bounds
// and an arbitrary uni-speed offline schedule T for I with m resources, it
// builds a schedule T′ for the rate-limited instance I′ with 3m resources
// that executes exactly the jobs T executes (equal drop cost, Lemma 4.5)
// at O(1) times T's reconfiguration cost (Lemma 4.6).
//
// With each T-resource k we associate T′-resources (k,0)=3k, (k,1)=3k+1
// and (k,2)=3k+2. Jobs are scheduled in ascending order of delay bounds,
// block by block, color by color: the jobs of color ℓ executed by T in
// block(p, i) are partitioned into groups of size ≤ p; groups land first
// on the (T,p,i,ℓ)-monochromatic resources (one group per resource,
// descending group size paired with descending T-level rank, labels —
// hence virtual colors (ℓ,j) — inherited across consecutive blocks to
// avoid boundary reconfigurations), and overflow groups land in the free
// slots of multichromatic resource triples, whose existence Lemma 4.4
// guarantees.
//
// Implementation note: the paper assigns labels purely by inheritance and
// rank. When the batch shrinks between blocks, an inherited label can
// point at a virtual color with fewer jobs than the group needs; we then
// reassign that group the largest-supply free label, which always exists
// (groups and supplies are both sorted descending). This keeps T′ feasible
// and only adds boundary reconfigurations of the kind Lemma 4.6 already
// charges to batch-size changes.
func Aggregate(inst *sched.Instance, t *sched.Schedule) (*AggregateResult, error) {
	if !inst.IsBatched() {
		return nil, fmt.Errorf("offline: Aggregate needs a batched instance")
	}
	if !inst.HasPowerOfTwoDelays() {
		return nil, fmt.Errorf("offline: Aggregate needs power-of-two delay bounds")
	}
	if t.Speed > 1 {
		return nil, fmt.Errorf("offline: Aggregate needs a uni-speed input schedule")
	}
	m := t.N

	virtual, mapping, err := core.BuildDistributed(inst)
	if err != nil {
		return nil, err
	}
	inRes, execLog, err := sched.ReplayExec(inst, t)
	if err != nil {
		return nil, fmt.Errorf("offline: Aggregate: input schedule invalid: %w", err)
	}
	// Round the working horizon up to a multiple of the largest delay
	// bound so every block is complete: since all delay bounds are powers
	// of two, every block of every bound then falls entirely inside the
	// grid, and groups are never artificially clipped below the virtual
	// color supplies.
	h := len(execLog) // full replay horizon, one row per round (uni-speed)
	if maxD := inst.MaxDelay(); maxD > 0 && h%maxD != 0 {
		h = (h/maxD + 1) * maxD
	}

	// assignT[r][k]: T's configuration at round r, extended by carrying the
	// last row across the drain tail.
	assignT := make([][]sched.Color, h)
	last := make([]sched.Color, m)
	for i := range last {
		last[i] = sched.NoColor
	}
	for r := 0; r < h; r++ {
		if r < len(t.Assign) {
			copy(last, t.Assign[r])
		}
		assignT[r] = append([]sched.Color(nil), last...)
	}

	// Output grids over 3m resources.
	n3 := 3 * m
	occupied := make([][]bool, h)
	assignOut := make([][]sched.Color, h)
	execOut := make([][]sched.Color, h)
	for r := 0; r < h; r++ {
		occupied[r] = make([]bool, n3)
		assignOut[r] = make([]sched.Color, n3)
		execOut[r] = make([]sched.Color, n3)
		for k := 0; k < n3; k++ {
			assignOut[r][k] = sched.NoColor // NoColor = "unconstrained"
			execOut[r][k] = sched.NoColor
		}
	}

	// Delay bounds present, ascending.
	delaySet := map[int]struct{}{}
	for _, d := range inst.Delays {
		delaySet[d] = struct{}{}
	}
	delays := make([]int, 0, len(delaySet))
	for d := range delaySet {
		delays = append(delays, d)
	}
	sort.Ints(delays)

	// colorsByDelay[p] lists the colors with delay bound p, ascending.
	colorsByDelay := map[int][]sched.Color{}
	for c, d := range inst.Delays {
		colorsByDelay[d] = append(colorsByDelay[d], sched.Color(c))
	}

	// monoColor reports the single color resource k holds throughout
	// rounds [lo, hi) of T, or NoColor if it reconfigures (or idles black
	// part of the time; an all-black resource is "monochromatic black",
	// which never matches a job color).
	monoColor := func(k, lo, hi int) sched.Color {
		c := assignT[lo][k]
		for r := lo + 1; r < hi && r < h; r++ {
			if assignT[r][k] != c {
				return sched.NoColor - 1 // sentinel: multichromatic
			}
		}
		return c
	}
	isMono := func(k, lo, hi int) bool {
		return monoColor(k, lo, hi) != sched.NoColor-1
	}

	// tLevel: the largest delay bound q such that k is monochromatic
	// throughout the q-block enclosing [lo, lo+p).
	tLevel := func(k, lo, p int) int {
		level := p
		for _, q := range delays {
			if q < p {
				continue
			}
			j := lo / q
			if isMono(k, j*q, (j+1)*q) {
				if q > level {
					level = q
				}
			}
		}
		return level
	}

	// prevLabels[ℓ][k] is the label resource k held for color ℓ in the
	// previous block of D_ℓ.
	prevLabels := make([]map[int]int, inst.NumColors())

	// execCount[ℓ] within the current block is recomputed per (p, i, ℓ).
	for _, p := range delays {
		numBlocks := (h + p - 1) / p
		for i := 0; i < numBlocks; i++ {
			lo := i * p
			hi := lo + p
			if hi > h {
				hi = h
			}
			for _, l := range colorsByDelay[p] {
				// Jobs of color ℓ executed by T in this block (the
				// padded tail beyond the replay horizon has none).
				x := 0
				for r := lo; r < hi && r < len(execLog); r++ {
					for k := 0; k < m; k++ {
						if execLog[r][k] == l {
							x++
						}
					}
				}
				// Monochromatic resources for ℓ in this block, ranked by
				// descending T-level (ties by ascending resource index).
				var mono []int
				for k := 0; k < m; k++ {
					if monoColor(k, lo, hi) == l {
						mono = append(mono, k)
					}
				}
				sort.Slice(mono, func(a, b int) bool {
					la, lb := tLevel(mono[a], lo, p), tLevel(mono[b], lo, p)
					if la != lb {
						return la > lb
					}
					return mono[a] < mono[b]
				})

				if x == 0 && len(mono) == 0 {
					prevLabels[l] = nil
					continue
				}

				// Virtual color supplies for this block: jobs of (ℓ, j)
				// arriving at round lo.
				arrived := 0
				if lo < inst.NumRounds() {
					for _, b := range inst.Requests[lo] {
						if b.Color == l {
							arrived += b.Count
						}
					}
				}
				numLabels := (arrived + p - 1) / p
				supply := make([]int, numLabels)
				for j := 0; j < numLabels; j++ {
					s := arrived - j*p
					if s > p {
						s = p
					}
					supply[j] = s
				}

				// Groups of size p (last possibly smaller), descending. In
				// a clipped final block a single resource has fewer than p
				// rounds, so group sizes are capped by the block width.
				gmax := p
				if hi-lo < gmax {
					gmax = hi - lo
				}
				var groups []int
				for rem := x; rem > 0; {
					g := gmax
					if g > rem {
						g = rem
					}
					groups = append(groups, g)
					rem -= g
				}

				// Label assignment with inheritance + supply repair.
				labelTaken := make([]bool, numLabels)
				newLabels := make(map[int]int, len(mono))
				chooseLabel := func(preferred, size int) (int, error) {
					if preferred >= 0 && preferred < numLabels &&
						!labelTaken[preferred] && supply[preferred] >= size {
						labelTaken[preferred] = true
						return preferred, nil
					}
					for j := 0; j < numLabels; j++ {
						if !labelTaken[j] && supply[j] >= size {
							labelTaken[j] = true
							return j, nil
						}
					}
					return 0, fmt.Errorf("offline: Aggregate: no label with supply ≥ %d for color %d in block(%d,%d)", size, l, p, i)
				}

				// Place the first min(|groups|, |mono|) groups on the
				// monochromatic resources: descending group size meets
				// descending resource rank.
				gi := 0
				for mi := 0; mi < len(mono) && gi < len(groups); mi, gi = mi+1, gi+1 {
					k := mono[mi]
					pref := -1
					if prevLabels[l] != nil {
						if j, ok := prevLabels[l][k]; ok {
							pref = j
						}
					}
					j, err := chooseLabel(pref, groups[gi])
					if err != nil {
						return nil, err
					}
					newLabels[k] = j
					v := mapping.Virtual(l, j)
					res := 3 * k
					for r := lo; r < hi; r++ {
						assignOut[r][res] = v
						occupied[r][res] = true
					}
					for r := lo; r < lo+groups[gi] && r < hi; r++ {
						execOut[r][res] = v
					}
					if lo+groups[gi] > hi {
						return nil, fmt.Errorf("offline: Aggregate: group of %d jobs does not fit the clipped block(%d,%d)", groups[gi], p, i)
					}
				}

				// Overflow groups land in free slots of multichromatic
				// resource triples (Lemma 4.4 guarantees one with ≥ p free
				// slots exists).
				for ; gi < len(groups); gi++ {
					size := groups[gi]
					j, err := chooseLabel(-1, size)
					if err != nil {
						return nil, err
					}
					v := mapping.Virtual(l, j)
					k, err := findMultiTriple(m, lo, hi, p, size, monoColor, occupied)
					if err != nil {
						return nil, err
					}
					placed := 0
					for off := 0; off < 3 && placed < size; off++ {
						res := 3*k + off
						for r := lo; r < hi && placed < size; r++ {
							if occupied[r][res] {
								continue
							}
							occupied[r][res] = true
							assignOut[r][res] = v
							execOut[r][res] = v
							placed++
						}
					}
					if placed < size {
						return nil, fmt.Errorf("offline: Aggregate: placed %d of %d overflow jobs for color %d in block(%d,%d)", placed, size, l, p, i)
					}
				}
				prevLabels[l] = newLabels
			}
		}
	}

	// Materialize T′: explicit assignments where pinned, carry-forward
	// elsewhere (a location keeps its color until the construction needs a
	// different one, minimizing reconfigurations).
	out := &sched.Schedule{Policy: "Aggregate(" + t.Policy + ")", N: n3, Speed: 1}
	cur := make([]sched.Color, n3)
	for k := range cur {
		cur[k] = sched.NoColor
	}
	for r := 0; r < h; r++ {
		for k := 0; k < n3; k++ {
			if c := assignOut[r][k]; c != sched.NoColor {
				cur[k] = c
			}
		}
		out.Assign = append(out.Assign, append([]sched.Color(nil), cur...))
		out.Exec = append(out.Exec, append([]sched.Color(nil), execOut[r]...))
	}

	return &AggregateResult{
		Virtual:     virtual,
		Mapping:     mapping,
		Out:         out,
		InputResult: inRes,
	}, nil
}

// findMultiTriple locates a T-multichromatic resource k in block [lo, hi)
// whose triple (3k, 3k+1, 3k+2) still has at least max(p, size) free slots
// in the block. Preferring ≥ p free slots keeps Lemma 4.4's invariant for
// subsequent groups; if no triple has p free we accept one that fits the
// group.
func findMultiTriple(m, lo, hi, p, size int, monoColor func(k, lo, hi int) sched.Color, occupied [][]bool) (int, error) {
	need := p
	if size > need {
		need = size
	}
	bestFallback := -1
	for k := 0; k < m; k++ {
		if monoColor(k, lo, hi) != sched.NoColor-1 {
			continue // monochromatic (possibly black): not in Y
		}
		free := 0
		for off := 0; off < 3; off++ {
			for r := lo; r < hi; r++ {
				if !occupied[r][3*k+off] {
					free++
				}
			}
		}
		if free >= need {
			return k, nil
		}
		if free >= size && bestFallback < 0 {
			bestFallback = k
		}
	}
	if bestFallback >= 0 {
		return bestFallback, nil
	}
	return 0, fmt.Errorf("offline: Aggregate: no multichromatic triple with %d free slots in block rounds [%d,%d)", size, lo, hi)
}
