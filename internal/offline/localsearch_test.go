package offline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestImproveScheduleNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 3, 2, 12, []int{1, 2, 4}, 3, false)
		run, err := sched.Run(inst.Clone(), policy.NewGreedyPending(), sched.Options{N: 2, Record: true})
		if err != nil {
			return false
		}
		_, res, err := ImproveSchedule(inst.Clone(), run.Schedule, 2)
		if err != nil {
			return false
		}
		return res.Cost.Total() <= run.Cost.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestImproveScheduleFixesObviousWaste(t *testing.T) {
	// A schedule that reconfigures pointlessly every round on an empty
	// tail; local search should strip most of the waste.
	inst := &sched.Instance{Delta: 5, Delays: []int{2, 2}}
	inst.AddJobs(0, 0, 1)
	s := &sched.Schedule{N: 1, Speed: 1}
	for r := 0; r < 12; r++ {
		s.Assign = append(s.Assign, []sched.Color{sched.Color(r % 2)})
	}
	before, err := sched.Replay(inst.Clone(), s)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := ImproveSchedule(inst.Clone(), s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cost.Total() >= before.Cost.Total() {
		t.Fatalf("no improvement: %d → %d", before.Cost.Total(), after.Cost.Total())
	}
	if after.Cost.Total() > 6 { // Δ + at most one stray unit
		t.Fatalf("local search left cost %d", after.Cost.Total())
	}
}

func TestImproveScheduleRespectsOptimum(t *testing.T) {
	// Improved cost never beats the exact optimum (sanity of both).
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 2, 2, 10, []int{1, 2}, 2, true)
		opt, err := BruteForce(inst.Clone(), 2, 1_000_000)
		var lim *BruteForceLimitError
		if errors.As(err, &lim) {
			return true
		}
		if err != nil {
			return false
		}
		run, err := sched.Run(inst.Clone(), policy.NewPureSeqEDF(), sched.Options{N: 2, Record: true})
		if err != nil {
			return false
		}
		_, res, err := ImproveSchedule(inst.Clone(), run.Schedule, 3)
		if err != nil {
			return false
		}
		return res.Cost.Total() >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
