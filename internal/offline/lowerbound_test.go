package offline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Property: the certified lower bound never exceeds the exact optimum —
// the core soundness property every ratio in EXPERIMENTS.md rests on.
func TestLowerBoundBelowOptimumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 3, 2, 10, []int{1, 2, 4}, 2, true)
		opt, err := BruteForce(inst.Clone(), 1, 1_500_000)
		var lim *BruteForceLimitError
		if errors.As(err, &lim) {
			return true
		}
		if err != nil {
			return false
		}
		return LowerBound(inst.Clone(), 1).Value() <= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundComponents(t *testing.T) {
	// 5 jobs of one color, Δ=3, loose deadlines, m=1: ParEDF drops 0, the
	// per-color bound is min(Δ, 5) = 3.
	inst := &sched.Instance{Delta: 3, Delays: []int{8}}
	inst.AddJobs(0, 0, 5)
	b := LowerBound(inst, 1)
	if b.ParEDFDrops != 0 {
		t.Fatalf("ParEDFDrops = %d", b.ParEDFDrops)
	}
	if b.ColorCost != 3 {
		t.Fatalf("ColorCost = %d, want 3", b.ColorCost)
	}
	if b.Value() != 3 {
		t.Fatalf("Value = %d", b.Value())
	}

	// A color with fewer jobs than Δ contributes its job count.
	inst2 := &sched.Instance{Delta: 10, Delays: []int{8, 8}}
	inst2.AddJobs(0, 0, 2)
	inst2.AddJobs(0, 1, 20)
	b2 := LowerBound(inst2, 1)
	if b2.ColorCost != 12 { // 2 + min(10, 20)
		t.Fatalf("ColorCost = %d, want 12", b2.ColorCost)
	}
}

func TestLowerBoundExactUsesBruteForce(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{4}}
	inst.AddJobs(0, 0, 3)
	b := LowerBoundExact(inst, 1, 1_000_000)
	if b.Exact < 0 {
		t.Fatal("Exact not computed on a tiny instance")
	}
	if b.Value() < b.Exact {
		t.Fatal("Value ignores Exact")
	}
	// Over-budget search leaves Exact at −1 without failing.
	big := workload.RandomBatched(2, 8, 2, 96, []int{1, 2, 4}, 0.9, 0.9, true)
	b2 := LowerBoundExact(big, 2, 10)
	if b2.Exact != -1 {
		t.Fatalf("Exact = %d on an over-budget instance", b2.Exact)
	}
}

// TestBracketOPT: the bracket must contain the exact optimum on tiny
// instances and satisfy Lower ≤ Upper with a valid witness schedule.
func TestBracketOPT(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		inst := workload.RandomSmall(seed, 3, 2, 10, []int{1, 2, 4}, 2, true)
		br, err := BracketOPT(inst.Clone(), 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if br.Lower > br.Upper {
			t.Fatalf("seed %d: bracket inverted: [%d, %d]", seed, br.Lower, br.Upper)
		}
		if br.Gap() < 1 {
			t.Fatalf("seed %d: gap %v < 1", seed, br.Gap())
		}
		opt, err := BruteForce(inst.Clone(), 1, 0)
		var lim *BruteForceLimitError
		if errors.As(err, &lim) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if opt < br.Lower || opt > br.Upper {
			t.Fatalf("seed %d: OPT %d outside bracket [%d, %d]", seed, opt, br.Lower, br.Upper)
		}
	}
}

// TestBracketOPTLargeInstance exercises the non-exact path.
func TestBracketOPTLargeInstance(t *testing.T) {
	inst := workload.RandomBatched(4, 10, 3, 128, []int{1, 2, 4, 8}, 0.9, 0.7, true)
	br, err := BracketOPT(inst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if br.Lower > br.Upper {
		t.Fatalf("bracket inverted: [%d, %d]", br.Lower, br.Upper)
	}
	if br.UpperSchedule == nil {
		t.Fatal("missing witness schedule")
	}
}
