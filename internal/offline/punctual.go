package offline

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/sched"
)

// Punctualize implements the constructive core of Lemma 5.3: given an
// arbitrary uni-speed offline schedule S with m resources for an instance
// of the general problem [Δ | 1 | D_ℓ | 1] (power-of-two delay bounds), it
// builds a *punctual* schedule S′ with 7m resources that executes every
// job S executes at O(1) times S's reconfiguration cost.
//
// A job arriving in half-block i of its delay bound (half-blocks have
// width D_ℓ/2, §5.1) is executed *early* if it runs in half-block i,
// *punctual* in half-block i+1, and *late* in half-block i+2 — the three
// exhaustive cases. Per original resource, the punctual executions keep
// one resource (unchanged); the early ones are shifted later by D_ℓ/2 via
// the Lemma 5.1 construction on three resources (special jobs — whose
// color holds the resource across two consecutive half-blocks — move to a
// dedicated resource, the rest pack into free slots of two overflow
// resources); the late ones are shifted earlier by D_ℓ/2 via the mirrored
// Lemma 5.2 construction on three more.
//
// Punctual schedules matter because they are exactly the schedules that
// remain feasible after the VarBatch transformation (§5.1): replaying S′
// against core.BuildVarBatched(inst) succeeds, which is how Theorem 3
// transfers the offline optimum to the batched instance. Colors with
// D_ℓ = 1 are executed in their arrival round and count as punctual.
func Punctualize(inst *sched.Instance, s *sched.Schedule) (*sched.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.HasPowerOfTwoDelays() {
		return nil, fmt.Errorf("offline: Punctualize needs power-of-two delay bounds")
	}
	if s.Speed > 1 {
		return nil, fmt.Errorf("offline: Punctualize needs a uni-speed schedule")
	}
	if s.Exec != nil {
		return nil, fmt.Errorf("offline: Punctualize needs a greedy-execution schedule (Exec == nil)")
	}
	inst.Normalize()
	m := s.N

	// Replay S tracking which arrival each execution consumed, and build
	// the full per-round assignment per resource.
	events, assignT, h, err := replayWithArrivals(inst, s)
	if err != nil {
		return nil, err
	}
	// Pad the horizon so every half-block is complete and so the +D_ℓ/2
	// shifts of the Lemma 5.1 part never fall off the grid: add half the
	// largest delay bound, then round up to a multiple of it.
	if maxD := inst.MaxDelay(); maxD > 0 {
		h += maxD / 2
		if h%maxD != 0 {
			h = (h/maxD + 1) * maxD
		}
	}

	out := &sched.Schedule{Policy: "Punctualize(" + s.Policy + ")", N: 7 * m, Speed: 1}
	grid := newExecGrid(7*m, h)

	for k := 0; k < m; k++ {
		var early, punctual, late []execEvent
		for _, e := range events {
			if e.res != k {
				continue
			}
			p := inst.Delays[e.color]
			if p == 1 {
				punctual = append(punctual, e)
				continue
			}
			q := p / 2
			switch (e.round / q) - (e.arrival / q) {
			case 0:
				early = append(early, e)
			case 1:
				punctual = append(punctual, e)
			case 2:
				late = append(late, e)
			default:
				return nil, fmt.Errorf("offline: Punctualize: execution at %d of a job arrived %d with D=%d is out of range",
					e.round, e.arrival, p)
			}
		}
		base := 7 * k
		// Resources base…base+2: the Lemma 5.1 (early → punctual) part.
		if err := shiftHalfBlock(inst, assignT, k, early, grid, base, h, +1); err != nil {
			return nil, err
		}
		// Resource base+3: the punctual part, configuration copied from S.
		for _, e := range punctual {
			grid.place(e.round, base+3, e.color)
		}
		// Resources base+4…base+6: the Lemma 5.2 (late → punctual) part.
		if err := shiftHalfBlock(inst, assignT, k, late, grid, base+4, h, -1); err != nil {
			return nil, err
		}
	}

	grid.materialize(out)
	return out, nil
}

// execEvent is one execution in the replay of S: resource res executed a
// job of the given color, which had arrived in round arrival.
type execEvent struct {
	round   int
	res     int
	color   sched.Color
	arrival int
}

// replayWithArrivals replays schedule s greedily and returns every
// execution annotated with the arrival round of the job it consumed, the
// extended per-round assignment matrix, and the replay horizon.
func replayWithArrivals(inst *sched.Instance, s *sched.Schedule) ([]execEvent, [][]sched.Color, int, error) {
	queues := make([]container.BucketQueue, inst.NumColors())
	var events []execEvent
	cur := make([]sched.Color, s.N)
	for i := range cur {
		cur[i] = sched.NoColor
	}
	var assignT [][]sched.Color
	horizon := inst.Horizon()
	if sr := s.Rounds(); sr > horizon {
		horizon = sr
	}
	pendingTotal := 0
	for r := 0; r < horizon; r++ {
		if r >= inst.NumRounds() && pendingTotal == 0 && r >= len(s.Assign) {
			break
		}
		for c := range queues {
			pendingTotal -= queues[c].ExpireThrough(r)
		}
		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				queues[b.Color].Add(r+inst.Delays[b.Color], b.Count)
				pendingTotal += b.Count
			}
		}
		if r < len(s.Assign) {
			row := s.Assign[r]
			if len(row) != s.N {
				return nil, nil, 0, fmt.Errorf("offline: Punctualize: row %d has width %d, want %d", r, len(row), s.N)
			}
			copy(cur, row)
		}
		assignT = append(assignT, append([]sched.Color(nil), cur...))
		for k := 0; k < s.N; k++ {
			c := cur[k]
			if c == sched.NoColor || c < 0 || int(c) >= inst.NumColors() {
				continue
			}
			if deadline, ok := queues[c].TakeEarliest(); ok {
				pendingTotal--
				events = append(events, execEvent{
					round:   r,
					res:     k,
					color:   c,
					arrival: deadline - inst.Delays[c],
				})
			}
		}
	}
	return events, assignT, len(assignT), nil
}

// execGrid accumulates explicit (assignment, execution) placements.
type execGrid struct {
	n, h   int
	assign [][]sched.Color // explicit pins; NoColor = unconstrained
	exec   [][]sched.Color
}

func newExecGrid(n, h int) *execGrid {
	g := &execGrid{n: n, h: h}
	g.assign = make([][]sched.Color, h)
	g.exec = make([][]sched.Color, h)
	for r := 0; r < h; r++ {
		g.assign[r] = make([]sched.Color, n)
		g.exec[r] = make([]sched.Color, n)
		for k := 0; k < n; k++ {
			g.assign[r][k] = sched.NoColor
			g.exec[r][k] = sched.NoColor
		}
	}
	return g
}

// place pins an execution of color c at (round, resource). It panics on
// double placement, which would be a construction bug.
func (g *execGrid) place(round, res int, c sched.Color) {
	if round < 0 || round >= g.h {
		panic(fmt.Sprintf("offline: execGrid.place round %d out of [0,%d)", round, g.h))
	}
	if g.exec[round][res] != sched.NoColor {
		panic(fmt.Sprintf("offline: execGrid.place collision at round %d resource %d", round, res))
	}
	g.exec[round][res] = c
	g.assign[round][res] = c
}

func (g *execGrid) free(round, res int) bool {
	return g.exec[round][res] == sched.NoColor
}

// materialize converts the grid into a schedule: pinned assignments are
// honored and carried forward between pins to minimize reconfigurations.
func (g *execGrid) materialize(out *sched.Schedule) {
	cur := make([]sched.Color, g.n)
	for k := range cur {
		cur[k] = sched.NoColor
	}
	for r := 0; r < g.h; r++ {
		for k := 0; k < g.n; k++ {
			if c := g.assign[r][k]; c != sched.NoColor {
				cur[k] = c
			}
		}
		out.Assign = append(out.Assign, append([]sched.Color(nil), cur...))
		out.Exec = append(out.Exec, append([]sched.Color(nil), g.exec[r]...))
	}
}

// shiftHalfBlock applies the Lemma 5.1 (dir = +1, early → punctual) or
// Lemma 5.2 (dir = −1, late → punctual) construction for one original
// resource k: events are the early (resp. late) executions of S on k, and
// the result occupies grid resources base (special jobs) and base+1,
// base+2 (overflow).
func shiftHalfBlock(inst *sched.Instance, assignT [][]sched.Color, k int, events []execEvent, grid *execGrid, base, h, dir int) error {
	// heldThrough reports whether S keeps resource k configured with
	// color c for all rounds of [lo, hi) (clipped to the matrix).
	heldThrough := func(c sched.Color, lo, hi int) bool {
		if lo < 0 {
			return false
		}
		for r := lo; r < hi && r < len(assignT); r++ {
			if assignT[r][k] != c {
				return false
			}
		}
		return lo < len(assignT)
	}

	// Pass 1: specials move to the dedicated resource `base`, shifted by
	// dir·D_ℓ/2. An execution is special when its color holds the
	// resource through both the execution half-block and the adjacent
	// half-block it is shifted into — which is what makes the shifted
	// slots collision-free (see Lemma 5.1's proof).
	var nonspecial []execEvent
	for _, e := range events {
		p := inst.Delays[e.color]
		q := p / 2
		hb := e.round / q
		var lo int
		if dir > 0 {
			lo = hb * q // execution half-block and the next one
		} else {
			lo = (hb - 1) * q // the previous half-block and the execution one
		}
		if heldThrough(e.color, lo, lo+p) {
			target := e.round + dir*q
			if target < 0 || target >= h {
				return fmt.Errorf("offline: Punctualize: special shift out of range (round %d → %d)", e.round, target)
			}
			grid.place(target, base, e.color)
			continue
		}
		nonspecial = append(nonspecial, e)
	}

	// Pass 2: nonspecial executions pack into the first free slots of the
	// two overflow resources within the target half-block, processed in
	// ascending delay bound, then half-block, then color (§5.1 step 3).
	groups := map[groupKey]int{}
	var keys []groupKey
	for _, e := range nonspecial {
		p := inst.Delays[e.color]
		q := p / 2
		key := groupKey{p: p, hb: e.round/q + dir, c: e.color}
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key]++
	}
	sortGroupKeys(keys)
	for _, key := range keys {
		q := key.p / 2
		lo := key.hb * q
		hi := lo + q
		if lo < 0 || hi > h {
			return fmt.Errorf("offline: Punctualize: target half-block [%d,%d) out of range", lo, hi)
		}
		need := groups[key]
		for off := 1; off <= 2 && need > 0; off++ {
			res := base + off
			for r := lo; r < hi && need > 0; r++ {
				if grid.free(r, res) {
					grid.place(r, res, key.c)
					need--
				}
			}
		}
		if need > 0 {
			return fmt.Errorf("offline: Punctualize: %d jobs of color %d did not fit half-block [%d,%d)",
				need, key.c, lo, hi)
		}
	}
	return nil
}

// sortGroupKeys orders groups by ascending delay bound, then half-block,
// then color.
func sortGroupKeys(keys []groupKey) {
	// Local insertion sort keeps the helper dependency-free; group counts
	// are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && groupKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

type groupKey struct {
	p, hb int
	c     sched.Color
}

func groupKeyLess(a, b groupKey) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	if a.hb != b.hb {
		return a.hb < b.hb
	}
	return a.c < b.c
}
