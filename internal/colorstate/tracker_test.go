package colorstate

import (
	"testing"

	"repro/internal/sched"
)

func never(sched.Color) bool  { return false }
func always(sched.Color) bool { return true }

// TestCounterWrapAndEligibility walks the §3.1 arrival-phase rules by
// hand: a color becomes eligible exactly when its counter reaches Δ, and
// the counter wraps modulo Δ.
func TestCounterWrapAndEligibility(t *testing.T) {
	tr := New(3, []int{4})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 2)
	st := tr.Get(0)
	if st.Eligible || st.Cnt != 2 {
		t.Fatalf("after 2 arrivals: eligible=%v cnt=%d", st.Eligible, st.Cnt)
	}
	tr.OnArrival(0, 0, 4) // cnt 6 ≥ 3: wrap to 0, eligible
	if !st.Eligible || st.Cnt != 0 || st.Wraps != 1 || st.LastWrap != 0 {
		t.Fatalf("after wrap: %+v", *st)
	}
	if tr.NumEligible() != 1 {
		t.Fatalf("NumEligible = %d", tr.NumEligible())
	}
}

// TestDropPhaseRule: at a multiple of D_ℓ, an eligible uncached color
// turns ineligible with its counter reset; a cached one stays eligible.
func TestDropPhaseRule(t *testing.T) {
	tr := New(2, []int{4})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 2) // wrap, eligible
	if !tr.Eligible(0) {
		t.Fatal("not eligible after wrap")
	}
	// Rounds 1–3 are not multiples of 4: nothing happens.
	for r := 1; r < 4; r++ {
		tr.BeginRound(r, never)
		if !tr.Eligible(0) {
			t.Fatalf("lost eligibility at non-multiple round %d", r)
		}
	}
	// Round 4, uncached: ineligible, counter reset, epoch ended.
	tr.BeginRound(4, never)
	st := tr.Get(0)
	if st.Eligible || st.Cnt != 0 || st.EpochsEnded != 1 {
		t.Fatalf("drop rule failed: %+v", *st)
	}

	// Same scenario but cached: stays eligible.
	tr2 := New(2, []int{4})
	tr2.BeginRound(0, never)
	tr2.OnArrival(0, 0, 2)
	tr2.BeginRound(4, always)
	if !tr2.Eligible(0) {
		t.Fatal("cached color lost eligibility")
	}
}

// TestTimestampLag: a wrap in round k becomes the timestamp only at the
// next multiple of D_ℓ (§3.1.1).
func TestTimestampLag(t *testing.T) {
	tr := New(2, []int{4})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 2) // wrap at round 0
	if ts := tr.Get(0).Timestamp; ts != 0 {
		t.Fatalf("timestamp advanced early: %d", ts)
	}
	tr.BeginRound(4, always) // multiple: wrap at round 0 becomes visible
	// Timestamp 0 is also the default; use TsUpdates to observe the event.
	if tr.Get(0).TsUpdates != 0 {
		// A wrap at round 0 equals the initial timestamp 0, so no update
		// event fires — this matches the paper's "0 if no such round".
		t.Fatalf("unexpected ts update: %+v", *tr.Get(0))
	}
	tr.OnArrival(4, 0, 2) // wrap at round 4
	tr.BeginRound(8, always)
	st := tr.Get(0)
	if st.Timestamp != 4 || st.TsUpdates != 1 {
		t.Fatalf("timestamp after second wrap: %+v", *st)
	}
}

// TestDeadlineAdvancesEveryMultiple: ℓ.dd is k + D_ℓ after every multiple
// k, even with no arrivals.
func TestDeadlineAdvancesEveryMultiple(t *testing.T) {
	tr := New(1, []int{2})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 1)
	if dd := tr.Get(0).Deadline; dd != 2 {
		t.Fatalf("deadline after registration = %d", dd)
	}
	tr.BeginRound(1, always)
	tr.BeginRound(2, always)
	if dd := tr.Get(0).Deadline; dd != 4 {
		t.Fatalf("deadline after round 2 = %d, want 4", dd)
	}
	tr.BeginRound(6, always) // skipped rounds: multiples 4 and 6 both process
	if dd := tr.Get(0).Deadline; dd != 8 {
		t.Fatalf("deadline after catch-up = %d, want 8", dd)
	}
}

// TestRegistrationMidStream: a color first seen at a non-multiple round
// gets the enclosing block's deadline.
func TestRegistrationMidStream(t *testing.T) {
	tr := New(1, []int{4})
	tr.BeginRound(6, never)
	tr.OnArrival(6, 0, 1)
	if dd := tr.Get(0).Deadline; dd != 8 {
		t.Fatalf("mid-stream registration deadline = %d, want 8", dd)
	}
	if !tr.Eligible(0) { // threshold 1: eligible immediately
		t.Fatal("not eligible with threshold 1")
	}
}

func TestAppendEligibleSorted(t *testing.T) {
	tr := New(1, []int{2, 2, 2})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 2, 1)
	tr.OnArrival(0, 0, 1)
	got := tr.AppendEligible(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("AppendEligible = %v", got)
	}
}

func TestNumEpochs(t *testing.T) {
	tr := New(1, []int{2, 2})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 1)
	if got := tr.NumEpochs(); got != 1 {
		t.Fatalf("one known color: NumEpochs = %d", got)
	}
	tr.BeginRound(2, never) // color 0 ends its epoch
	if got := tr.NumEpochs(); got != 2 {
		t.Fatalf("after epoch end: NumEpochs = %d", got)
	}
	tr.OnArrival(2, 1, 1)
	if got := tr.NumEpochs(); got != 3 {
		t.Fatalf("two known colors: NumEpochs = %d", got)
	}
}

func TestThresholdVariant(t *testing.T) {
	tr := NewWithThreshold(4, 2, []int{2})
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 2) // threshold 2 < Δ=4: eligible already
	if !tr.Eligible(0) {
		t.Fatal("threshold variant not eligible at 2 arrivals")
	}
}

func TestImmediateTimestamps(t *testing.T) {
	tr := New(2, []int{8})
	tr.SetImmediateTimestamps(true)
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 2)
	tr.BeginRound(3, always)
	tr.OnArrival(3, 0, 2) // wrap at a non-multiple round 3
	if ts := tr.Get(0).Timestamp; ts != 3 {
		t.Fatalf("immediate timestamp = %d, want 3", ts)
	}
}

func TestTsEventLogAndSuperEpochs(t *testing.T) {
	tr := New(1, []int{2, 2, 2, 2})
	tr.RecordTsEvents()
	// Wraps for all four colors in round 0 (threshold 1), visible at
	// round 2 — except they equal the default timestamp 0... so generate
	// wraps at round 2 instead, visible at round 4.
	tr.BeginRound(0, never)
	for c := sched.Color(0); c < 4; c++ {
		tr.OnArrival(0, c, 1)
	}
	tr.BeginRound(2, always)
	for c := sched.Color(0); c < 4; c++ {
		tr.OnArrival(2, c, 1)
	}
	tr.BeginRound(4, always)
	log := tr.TsEventLog()
	if len(log) != 4 {
		t.Fatalf("ts event log has %d entries, want 4", len(log))
	}
	if got := tr.SuperEpochs(2); got != 2 {
		t.Fatalf("SuperEpochs(2) = %d, want 2", got)
	}
	if got := tr.SuperEpochs(5); got != 0 {
		t.Fatalf("SuperEpochs(5) = %d, want 0", got)
	}
}

func TestSuperEpochWindows(t *testing.T) {
	tr := New(1, []int{2, 2, 2})
	tr.RecordTsEvents()
	tr.BeginRound(0, never)
	for c := sched.Color(0); c < 3; c++ {
		tr.OnArrival(0, c, 1) // wraps at round 0
	}
	tr.BeginRound(2, always)
	for c := sched.Color(0); c < 3; c++ {
		tr.OnArrival(2, c, 1) // wraps at round 2, visible at round 4
	}
	tr.BeginRound(4, always)
	ws := tr.SuperEpochWindows(2)
	if len(ws) != 1 {
		t.Fatalf("windows = %v", ws)
	}
	if ws[0][1] != 4 {
		t.Fatalf("window end = %d, want 4", ws[0][1])
	}
	if got := tr.SuperEpochs(2); got != 1 {
		t.Fatalf("SuperEpochs = %d", got)
	}
}

func TestEpochsOverlapping(t *testing.T) {
	tr := New(1, []int{2})
	tr.RecordTsEvents()
	tr.BeginRound(0, never)
	tr.OnArrival(0, 0, 1)   // eligible
	tr.BeginRound(2, never) // epoch 0 ends at round 2
	tr.OnArrival(2, 0, 1)   // eligible again
	tr.BeginRound(4, never) // epoch 1 ends at round 4
	if got := len(tr.EpochEndLog()); got != 2 {
		t.Fatalf("epoch ends = %d", got)
	}
	// Window [0,2]: epoch 0 ([0,2]) and epoch 1 ([2,4]) overlap, plus the
	// open final epoch [4,∞) does not.
	if got := tr.EpochsOverlapping(0, 0, 2); got != 2 {
		t.Fatalf("overlap [0,2] = %d, want 2", got)
	}
	// Window [3,9]: epoch 1 and the open epoch overlap.
	if got := tr.EpochsOverlapping(0, 3, 9); got != 2 {
		t.Fatalf("overlap [3,9] = %d, want 2", got)
	}
	// Unknown color: zero.
	tr2 := New(1, []int{2})
	if got := tr2.EpochsOverlapping(0, 0, 100); got != 0 {
		t.Fatalf("unknown color overlap = %d", got)
	}
}
