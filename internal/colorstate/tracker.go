// Package colorstate implements the per-color bookkeeping that the online
// algorithms of §3.1 (ΔLRU, EDF, ΔLRU-EDF) share: the counter ℓ.cnt, the
// per-color deadline ℓ.dd, the eligible/ineligible state, the counter
// wrapping events, and the lazy LRU timestamp. It also instruments epochs
// and timestamp-update events so experiments can validate Lemmas 3.3–3.5
// empirically.
//
// Protocol (§3.1 "common aspects"), per round k, driven by the owning
// policy at the start of its reconfiguration phase:
//
//  1. BeginRound(k, cached) applies the drop-phase rule for every known
//     color ℓ with k ≡ 0 (mod D_ℓ): the timestamp becomes the latest
//     wrapping round before k, and if ℓ is eligible and not cached it
//     turns ineligible with ℓ.cnt reset to zero (ending its epoch). It
//     also applies arrival-phase step 1: ℓ.dd ← k + D_ℓ.
//  2. OnArrival(k, ℓ, count) applies arrival-phase steps 2–3: the counter
//     grows by count and wraps modulo Δ when it reaches Δ (a counter
//     wrapping event), making ℓ eligible.
package colorstate

import (
	"repro/internal/container"
	"repro/internal/sched"
	"repro/internal/snap"
)

// State is the paper's per-color record.
type State struct {
	// Known marks colors that have appeared in the input.
	Known bool
	// Cnt is ℓ.cnt, the arrival counter modulo Δ.
	Cnt int
	// Deadline is ℓ.dd, set to k + D_ℓ at every multiple k of D_ℓ.
	Deadline int
	// Eligible is the eligibility bit.
	Eligible bool
	// LastWrap is the round of the most recent counter wrapping event
	// (−1 if none).
	LastWrap int
	// Timestamp is the ΔLRU timestamp: the latest wrapping round strictly
	// before the most recent multiple of D_ℓ, 0 if none (§3.1.1).
	Timestamp int

	// Instrumentation (not consulted by the algorithms).
	//
	// EpochsEnded counts eligible→ineligible transitions (completed
	// epochs, §3.2). Wraps counts counter wrapping events. TsUpdates
	// counts timestamp update events (§3.4).
	EpochsEnded int
	Wraps       int
	TsUpdates   int
}

// Tracker maintains the State of every color for one run.
type Tracker struct {
	delta     int
	threshold int
	delays    []int
	states    []State
	due       *container.IndexedHeap[sched.Color, int]

	// eligible is the eligible-color set kept as a sorted slice (the
	// "consistent order of colors" of §3.1.2 is its natural order).
	// Membership tests go through State.Eligible; the slice exists so
	// AppendEligible is a single allocation-free copy on the hot path
	// instead of a map iteration plus sort.
	eligible []sched.Color
	known    int

	// immediateTs (an ablation knob, not the paper's rule) makes the
	// timestamp advance at the wrapping event itself instead of at the
	// next multiple of D_ℓ.
	immediateTs bool

	// tsEvents records timestamp-update events as (round, color) pairs
	// when instrumentation is enabled; super-epoch analysis consumes it.
	recordTsEvents bool
	tsEvents       []TsEvent
	// epochEnds records (round, color) pairs for eligible→ineligible
	// transitions (epoch ends, §3.2) when instrumentation is enabled.
	epochEnds []TsEvent
}

// TsEvent is a timestamp update event: color C's timestamp changed in
// round Round (§3.4).
type TsEvent struct {
	Round int
	C     sched.Color
}

// New returns a tracker for numColors colors with reconfiguration cost
// delta and per-color delay bounds delays. The eligibility threshold (the
// counter value at which a color becomes eligible) defaults to Δ.
func New(delta int, delays []int) *Tracker {
	return NewWithThreshold(delta, delta, delays)
}

// NewWithThreshold is New with an explicit eligibility threshold; the
// threshold ablation uses values other than Δ.
func NewWithThreshold(delta, threshold int, delays []int) *Tracker {
	if threshold < 1 {
		threshold = 1
	}
	return &Tracker{
		delta:     delta,
		threshold: threshold,
		delays:    delays,
		states:    make([]State, len(delays)),
		due:       container.NewIndexedHeap[sched.Color, int](func(a, b int) bool { return a < b }),
	}
}

// RecordTsEvents enables recording of timestamp-update events for
// super-epoch analysis.
func (t *Tracker) RecordTsEvents() { t.recordTsEvents = true }

// SetImmediateTimestamps switches the timestamp rule to the "immediate"
// ablation variant: the timestamp advances at the wrapping event itself
// rather than waiting for the next multiple of D_ℓ.
func (t *Tracker) SetImmediateTimestamps(on bool) { t.immediateTs = on }

// Get returns a read-only view of color c's state.
func (t *Tracker) Get(c sched.Color) *State { return &t.states[c] }

// Delta returns the reconfiguration cost Δ.
func (t *Tracker) Delta() int { return t.delta }

// Delay returns the delay bound of color c.
func (t *Tracker) Delay(c sched.Color) int { return t.delays[c] }

// NumKnown reports how many colors have appeared so far.
func (t *Tracker) NumKnown() int { return t.known }

// BeginRound applies the drop-phase and deadline rules for round k.
// cached reports whether a color is currently in the policy's cache (the
// configuration at the end of the previous round).
func (t *Tracker) BeginRound(k int, cached func(sched.Color) bool) {
	for {
		c, m, ok := t.due.Min()
		if !ok || m > k {
			break
		}
		t.due.Pop()
		st := &t.states[c]
		// Timestamp update: wrapping events strictly before the multiple m
		// become visible (§3.1.1). Wraps happen at arrival time, which is
		// after BeginRound within a round, so LastWrap < m here whenever
		// the wrap belongs to an earlier round.
		if st.LastWrap >= 0 && st.LastWrap < m && st.Timestamp != st.LastWrap {
			st.Timestamp = st.LastWrap
			st.TsUpdates++
			if t.recordTsEvents {
				t.tsEvents = append(t.tsEvents, TsEvent{Round: m, C: c})
			}
		}
		// Drop-phase rule: eligible and uncached colors turn ineligible
		// and reset their counter; this ends the color's current epoch.
		if st.Eligible && !cached(c) {
			st.Eligible = false
			st.Cnt = 0
			st.EpochsEnded++
			t.removeEligible(c)
			if t.recordTsEvents {
				t.epochEnds = append(t.epochEnds, TsEvent{Round: m, C: c})
			}
		}
		// Arrival-phase step 1: the color's deadline advances.
		st.Deadline = m + t.delays[c]
		t.due.Push(c, m+t.delays[c])
	}
}

// OnArrival applies arrival-phase steps 2–3 for count jobs of color c
// arriving in round k.
func (t *Tracker) OnArrival(k int, c sched.Color, count int) {
	st := &t.states[c]
	if !st.Known {
		t.register(k, c)
	}
	st.Cnt += count
	if st.Cnt >= t.threshold {
		st.Cnt %= t.threshold // counter wrapping event
		st.LastWrap = k
		st.Wraps++
		if t.immediateTs && st.Timestamp != k {
			st.Timestamp = k
			st.TsUpdates++
			if t.recordTsEvents {
				t.tsEvents = append(t.tsEvents, TsEvent{Round: k, C: c})
			}
		}
		if !st.Eligible {
			st.Eligible = true
			t.insertEligible(c)
		}
	}
}

// register introduces color c on its first arrival in round k: its
// deadline corresponds to the enclosing multiple of D_c and the tracker
// starts processing its multiples.
func (t *Tracker) register(k int, c sched.Color) {
	st := &t.states[c]
	st.Known = true
	st.LastWrap = -1
	t.known++
	d := t.delays[c]
	base := (k / d) * d
	st.Deadline = base + d
	t.due.Push(c, base+d)
}

// Eligible reports whether color c is eligible.
func (t *Tracker) Eligible(c sched.Color) bool { return t.states[c].Eligible }

// insertEligible adds c to the sorted eligible slice (binary search +
// shift; the set is small and the operation amortizes to nothing against
// the per-round sort it replaced).
func (t *Tracker) insertEligible(c sched.Color) {
	i := searchColor(t.eligible, c)
	t.eligible = append(t.eligible, 0)
	copy(t.eligible[i+1:], t.eligible[i:])
	t.eligible[i] = c
}

// removeEligible deletes c from the sorted eligible slice.
func (t *Tracker) removeEligible(c sched.Color) {
	i := searchColor(t.eligible, c)
	if i < len(t.eligible) && t.eligible[i] == c {
		t.eligible = append(t.eligible[:i], t.eligible[i+1:]...)
	}
}

// searchColor returns the insertion index of c in the sorted slice s.
func searchColor(s []sched.Color, c sched.Color) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AppendEligible appends the eligible colors to dst in increasing color
// order (the deterministic "consistent order of colors" of §3.1.2) and
// returns it. It performs no allocation once dst has capacity.
func (t *Tracker) AppendEligible(dst []sched.Color) []sched.Color {
	return append(dst, t.eligible...)
}

// NumEligible reports the number of currently eligible colors.
func (t *Tracker) NumEligible() int { return len(t.eligible) }

// NumEpochs reports numEpochs(σ) so far: for every known color, its
// completed epochs plus the current (possibly incomplete) one (§3.2).
func (t *Tracker) NumEpochs() int {
	n := 0
	for i := range t.states {
		if t.states[i].Known {
			n += t.states[i].EpochsEnded + 1
		}
	}
	return n
}

// TsEventLog returns the recorded timestamp-update events in order.
func (t *Tracker) TsEventLog() []TsEvent { return t.tsEvents }

// SuperEpochs partitions the recorded timestamp-update events into
// super-epochs (§3.4): a super-epoch ends the moment at least `width`
// colors have updated their timestamps since it started. It returns the
// number of complete super-epochs. RecordTsEvents must have been enabled.
func (t *Tracker) SuperEpochs(width int) int {
	return len(t.SuperEpochWindows(width))
}

// SuperEpochWindows returns the [start, end] round windows of the complete
// super-epochs for the given width (end = the round whose timestamp
// update completed the super-epoch). RecordTsEvents must have been
// enabled.
func (t *Tracker) SuperEpochWindows(width int) [][2]int {
	var out [][2]int
	seen := make(map[sched.Color]struct{})
	start := 0
	for _, ev := range t.tsEvents {
		seen[ev.C] = struct{}{}
		if len(seen) >= width {
			out = append(out, [2]int{start, ev.Round})
			seen = make(map[sched.Color]struct{})
			start = ev.Round
		}
	}
	return out
}

// EpochEndLog returns the recorded epoch-end events (round, color) in
// order. RecordTsEvents must have been enabled.
func (t *Tracker) EpochEndLog() []TsEvent { return t.epochEnds }

// trackerSnapVersion identifies the Tracker checkpoint layout.
const trackerSnapVersion = 1

// Snapshot appends the tracker's complete dynamic state to e, including
// the per-color states, the due-multiple heap (in exact internal order,
// so deadline ties resolve identically after restore) and any recorded
// instrumentation events. Configuration (Δ, threshold, delays, the
// timestamp-rule flag) is written only as a consistency fingerprint:
// Restore runs on a tracker freshly built with the same configuration.
func (t *Tracker) Snapshot(e *snap.Encoder) {
	e.Int(trackerSnapVersion)
	e.Int(t.delta)
	e.Int(t.threshold)
	e.Bool(t.immediateTs)
	e.Bool(t.recordTsEvents)
	e.Int(len(t.states))
	for i := range t.states {
		st := &t.states[i]
		e.Bool(st.Known)
		e.Int(st.Cnt)
		e.Int(st.Deadline)
		e.Bool(st.Eligible)
		e.Int(st.LastWrap)
		e.Int(st.Timestamp)
		e.Int(st.EpochsEnded)
		e.Int(st.Wraps)
		e.Int(st.TsUpdates)
	}
	e.Int(t.due.Len())
	t.due.Export(func(c sched.Color, m int) {
		e.Int(int(c))
		e.Int(m)
	})
	if t.recordTsEvents {
		snapshotEvents(e, t.tsEvents)
		snapshotEvents(e, t.epochEnds)
	}
}

func snapshotEvents(e *snap.Encoder, evs []TsEvent) {
	e.Int(len(evs))
	for _, ev := range evs {
		e.Int(ev.Round)
		e.Int(int(ev.C))
	}
}

// Restore rebuilds the tracker's dynamic state from d. The receiver must
// be freshly constructed with the same configuration the snapshot was
// taken under; any mismatch, truncation or inconsistency is reported as
// an error (never a panic). The eligible-color slice is reconstructed
// from the per-color eligibility bits, whose sorted order is canonical.
func (t *Tracker) Restore(d *snap.Decoder) error {
	if v := d.Int(); d.Err() == nil && v != trackerSnapVersion {
		d.Failf("colorstate: tracker snapshot version %d, this build reads %d", v, trackerSnapVersion)
	}
	if v := d.Int(); d.Err() == nil && v != t.delta {
		d.Failf("colorstate: snapshot Δ=%d, tracker has Δ=%d", v, t.delta)
	}
	if v := d.Int(); d.Err() == nil && v != t.threshold {
		d.Failf("colorstate: snapshot threshold %d, tracker has %d", v, t.threshold)
	}
	if v := d.Bool(); d.Err() == nil && v != t.immediateTs {
		d.Failf("colorstate: snapshot immediate-timestamp flag %v, tracker has %v", v, t.immediateTs)
	}
	if v := d.Bool(); d.Err() == nil && v != t.recordTsEvents {
		d.Failf("colorstate: snapshot event-recording flag %v, tracker has %v", v, t.recordTsEvents)
	}
	if n := d.Len(); d.Err() == nil && n != len(t.states) {
		d.Failf("colorstate: snapshot has %d colors, tracker has %d", n, len(t.states))
	}
	if err := d.Err(); err != nil {
		return err
	}
	t.known = 0
	t.eligible = t.eligible[:0]
	for i := range t.states {
		st := &t.states[i]
		st.Known = d.Bool()
		st.Cnt = d.Int()
		st.Deadline = d.Int()
		st.Eligible = d.Bool()
		st.LastWrap = d.Int()
		st.Timestamp = d.Int()
		st.EpochsEnded = d.Int()
		st.Wraps = d.Int()
		st.TsUpdates = d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if !st.Known && (st.Eligible || st.Cnt != 0) {
			return failf(d, "colorstate: color %d has state but is not known", i)
		}
		if st.Cnt < 0 || st.Cnt >= t.threshold && t.threshold > 0 {
			return failf(d, "colorstate: color %d has counter %d outside [0, %d)", i, st.Cnt, t.threshold)
		}
		if st.Known {
			t.known++
		}
		if st.Eligible {
			t.eligible = append(t.eligible, sched.Color(i))
		}
	}
	t.due.Clear()
	nd := d.Len()
	if d.Err() == nil && nd != t.known {
		d.Failf("colorstate: due heap has %d entries for %d known colors", nd, t.known)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for k := 0; k < nd; k++ {
		c, m := d.Int(), d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if c < 0 || c >= len(t.states) || !t.states[c].Known {
			return failf(d, "colorstate: due heap names invalid color %d", c)
		}
		if !t.due.Import(sched.Color(c), m) {
			return failf(d, "colorstate: due heap repeats color %d", c)
		}
	}
	t.tsEvents, t.epochEnds = nil, nil
	if t.recordTsEvents {
		var err error
		if t.tsEvents, err = restoreEvents(d, len(t.states)); err != nil {
			return err
		}
		if t.epochEnds, err = restoreEvents(d, len(t.states)); err != nil {
			return err
		}
	}
	return d.Err()
}

func restoreEvents(d *snap.Decoder, numColors int) ([]TsEvent, error) {
	n := d.Len()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n == 0 {
		return nil, nil
	}
	evs := make([]TsEvent, n)
	for i := range evs {
		evs[i].Round = d.Int()
		c := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if c < 0 || c >= numColors {
			return nil, failf(d, "colorstate: event %d names invalid color %d", i, c)
		}
		evs[i].C = sched.Color(c)
	}
	return evs, nil
}

// failf records the error on the decoder (so later reads stay inert)
// and returns it for immediate propagation.
func failf(d *snap.Decoder, format string, args ...any) error {
	d.Failf(format, args...)
	return d.Err()
}

// EpochsOverlapping counts, for color c, how many of its epochs intersect
// the round window [lo, hi]. An epoch spans from the end of the previous
// epoch (or round 0) to its own end; the final (possibly incomplete)
// epoch extends to +∞. Corollary 3.2 bounds this by 3 for complete
// super-epoch windows.
func (t *Tracker) EpochsOverlapping(c sched.Color, lo, hi int) int {
	prevEnd := 0
	n := 0
	for _, ev := range t.epochEnds {
		if ev.C != c {
			continue
		}
		// Epoch spans [prevEnd, ev.Round].
		if ev.Round >= lo && prevEnd <= hi {
			n++
		}
		prevEnd = ev.Round
	}
	// The open final epoch [prevEnd, ∞).
	if prevEnd <= hi && t.states[c].Known {
		n++
	}
	return n
}
