// Package trace serializes problem instances and run results so workloads
// can be exported, shared and replayed byte-for-byte: a JSON container
// format for full fidelity and a compact CSV form (one line per batch)
// for interchange with spreadsheets and plotting tools.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sched"
)

// FormatVersion identifies the JSON container layout.
const FormatVersion = 1

// jsonInstance is the on-disk layout. Requests are flattened into batch
// triples (round, color, count) so empty rounds cost nothing.
type jsonInstance struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Delta   int      `json:"delta"`
	Delays  []int    `json:"delays"`
	Rounds  int      `json:"rounds"`
	Batches [][3]int `json:"batches"`
}

// WriteJSON serializes an instance.
func WriteJSON(w io.Writer, inst *sched.Instance) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	inst.Normalize()
	out := jsonInstance{
		Version: FormatVersion,
		Name:    inst.Name,
		Delta:   inst.Delta,
		Delays:  inst.Delays,
		Rounds:  inst.NumRounds(),
	}
	for r, req := range inst.Requests {
		for _, b := range req {
			out.Batches = append(out.Batches, [3]int{r, int(b.Color), b.Count})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// ReadJSON deserializes an instance and validates it.
func ReadJSON(r io.Reader) (*sched.Instance, error) {
	var in jsonInstance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", in.Version, FormatVersion)
	}
	inst := &sched.Instance{
		Name:   in.Name,
		Delta:  in.Delta,
		Delays: in.Delays,
	}
	if in.Rounds > 0 {
		inst.Requests = make([]sched.Request, in.Rounds)
	}
	for _, b := range in.Batches {
		round, color, count := b[0], b[1], b[2]
		if round < 0 {
			return nil, fmt.Errorf("trace: negative round %d", round)
		}
		inst.AddJobs(round, sched.Color(color), count)
		if count <= 0 {
			return nil, fmt.Errorf("trace: non-positive count %d at round %d", count, round)
		}
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid instance: %w", err)
	}
	return inst.Normalize(), nil
}

// WriteCSV writes the compact interchange form:
//
//	# name,<name>
//	# delta,<Δ>
//	# delays,<d0>,<d1>,…
//	round,color,count
//	0,3,17
//	…
func WriteCSV(w io.Writer, inst *sched.Instance) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	inst.Normalize()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name,%s\n", strings.ReplaceAll(inst.Name, "\n", " "))
	fmt.Fprintf(bw, "# delta,%d\n", inst.Delta)
	fmt.Fprintf(bw, "# delays")
	for _, d := range inst.Delays {
		fmt.Fprintf(bw, ",%d", d)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "round,color,count")
	for r, req := range inst.Requests {
		for _, b := range req {
			fmt.Fprintf(bw, "%d,%d,%d\n", r, b.Color, b.Count)
		}
	}
	return bw.Flush()
}

// ReadCSV parses the compact form produced by WriteCSV.
func ReadCSV(r io.Reader) (*sched.Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	inst := &sched.Instance{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Split(strings.TrimSpace(strings.TrimPrefix(text, "#")), ",")
			switch fields[0] {
			case "name":
				if len(fields) > 1 {
					inst.Name = strings.Join(fields[1:], ",")
				}
			case "delta":
				if len(fields) != 2 {
					return nil, fmt.Errorf("trace: line %d: malformed delta", line)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %w", line, err)
				}
				inst.Delta = v
			case "delays":
				for _, f := range fields[1:] {
					v, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: %w", line, err)
					}
					inst.Delays = append(inst.Delays, v)
				}
			}
			continue
		}
		if !sawHeader {
			if text != "round,color,count" {
				return nil, fmt.Errorf("trace: line %d: expected header, got %q", line, text)
			}
			sawHeader = true
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: expected 3 fields, got %d", line, len(fields))
		}
		var vals [3]int
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			vals[i] = v
		}
		if vals[0] < 0 {
			return nil, fmt.Errorf("trace: line %d: negative round", line)
		}
		inst.AddJobs(vals[0], sched.Color(vals[1]), vals[2])
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid instance: %w", err)
	}
	return inst.Normalize(), nil
}

// jsonResult is the serialized run summary.
type jsonResult struct {
	Version   int    `json:"version"`
	Policy    string `json:"policy"`
	Reconfig  int64  `json:"reconfigCost"`
	Drop      int64  `json:"dropCost"`
	Executed  int    `json:"executed"`
	Dropped   int    `json:"dropped"`
	Reconfigs int    `json:"reconfigs"`
	Rounds    int    `json:"rounds"`
}

// WriteResultJSON serializes a run summary (without the schedule).
func WriteResultJSON(w io.Writer, res *sched.Result) error {
	enc := json.NewEncoder(w)
	return enc.Encode(&jsonResult{
		Version:   FormatVersion,
		Policy:    res.Policy,
		Reconfig:  res.Cost.Reconfig,
		Drop:      res.Cost.Drop,
		Executed:  res.Executed,
		Dropped:   res.Dropped,
		Reconfigs: res.Reconfigs,
		Rounds:    res.Rounds,
	})
}

// ReadResultJSON deserializes a run summary.
func ReadResultJSON(r io.Reader) (*sched.Result, error) {
	var in jsonResult
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding result: %w", err)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported result version %d", in.Version)
	}
	return &sched.Result{
		Policy:    in.Policy,
		Cost:      sched.Cost{Reconfig: in.Reconfig, Drop: in.Drop},
		Executed:  in.Executed,
		Dropped:   in.Dropped,
		Reconfigs: in.Reconfigs,
		Rounds:    in.Rounds,
	}, nil
}
