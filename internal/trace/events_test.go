package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/sched"
)

func TestEventWriterRoundTrip(t *testing.T) {
	events := []sched.RoundEvent{
		{Round: 0, Arrivals: 3, Dropped: 0, Executed: 2, Reconfigs: 1, Pending: 1},
		{Round: 1, Arrivals: 0, Dropped: 1, Executed: 0, Reconfigs: 0, Pending: 0},
	}
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	for _, ev := range events {
		ew.OnRound(ev)
	}
	if err := ew.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(events) {
		t.Fatalf("wrote %d lines, want %d:\n%s", lines, len(events), buf.String())
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip changed events:\n got %+v\nwant %+v", got, events)
	}
}

func TestEventWriterRejectsWrongVersion(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader(`{"v":99,"round":0}` + "\n")); err == nil {
		t.Fatal("accepted unsupported version")
	}
}

// TestEventWriterAsEngineProbe: attached to a live run, the writer
// produces one line per simulated round whose totals reconcile with the
// run's Result.
func TestEventWriterAsEngineProbe(t *testing.T) {
	inst := &sched.Instance{Delta: 2, Delays: []int{2, 4}}
	inst.AddJobs(0, 0, 3)
	inst.AddJobs(1, 1, 2)
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	res, err := sched.Run(inst, policy.NewStatic(0), sched.Options{N: 1, Probe: ew})
	if err != nil {
		t.Fatal(err)
	}
	if err := ew.Err(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Rounds {
		t.Fatalf("wrote %d events over %d rounds", len(events), res.Rounds)
	}
	exec, drop := 0, 0
	for _, ev := range events {
		exec += ev.Executed
		drop += ev.Dropped
	}
	if exec != res.Executed || drop != res.Dropped {
		t.Fatalf("event totals %d/%d, result %d/%d", exec, drop, res.Executed, res.Dropped)
	}
}
