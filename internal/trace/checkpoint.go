package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/sched"
)

// Checkpoint container format: the durable wrapper around the state
// blob produced by sched.Stream.Snapshot. The layout is
//
//	offset  size  field
//	0       4     magic "RRCP"
//	4       4     container version, uint32 LE
//	8       8     payload length, uint64 LE
//	16      n     payload (the Snapshot blob)
//	16+n    4     CRC-32 (IEEE) of the payload, uint32 LE
//
// The container version covers only this wrapper; the payload carries
// its own version (sched.SnapshotVersion) checked by RestoreStream.
// ReadCheckpoint rejects corrupt, truncated or oversized input with an
// error — never a panic — and verifies the checksum before returning
// the payload.
const (
	checkpointMagic   = "RRCP"
	CheckpointVersion = 1

	checkpointHeaderLen = 16

	// maxCheckpointPayload bounds the payload length accepted by
	// ReadCheckpoint so a corrupt header cannot trigger an absurd
	// allocation. Real snapshots are kilobytes.
	maxCheckpointPayload = 1 << 30
)

// WriteCheckpoint writes state to w in the checkpoint container format.
func WriteCheckpoint(w io.Writer, state []byte) error {
	var hdr [checkpointHeaderLen]byte
	copy(hdr[:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], CheckpointVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(state)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(state); err != nil {
		return fmt.Errorf("trace: writing checkpoint payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(state))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("trace: writing checkpoint checksum: %w", err)
	}
	return nil
}

// ReadCheckpoint reads one checkpoint container from r and returns its
// payload. All failure modes — bad magic, unsupported version, oversized
// or truncated payload, checksum mismatch, trailing garbage — are
// reported as errors.
func ReadCheckpoint(r io.Reader) ([]byte, error) {
	var hdr [checkpointHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading checkpoint header: %w", err)
	}
	if string(hdr[:4]) != checkpointMagic {
		return nil, fmt.Errorf("trace: not a checkpoint file (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != CheckpointVersion {
		return nil, fmt.Errorf("trace: checkpoint container version %d, this build reads %d", v, CheckpointVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxCheckpointPayload {
		return nil, fmt.Errorf("trace: checkpoint payload length %d exceeds limit %d", n, maxCheckpointPayload)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("trace: checkpoint payload truncated: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("trace: checkpoint checksum truncated: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("trace: checkpoint checksum mismatch (payload %08x, recorded %08x)", got, want)
	}
	// A checkpoint file holds exactly one container; trailing bytes mean
	// the file was corrupted or double-written.
	var extra [1]byte
	switch _, err := r.Read(extra[:]); err {
	case io.EOF:
	case nil:
		return nil, errors.New("trace: trailing bytes after checkpoint")
	default:
		return nil, fmt.Errorf("trace: reading past checkpoint: %w", err)
	}
	return payload, nil
}

// SaveCheckpoint snapshots st and writes the checkpoint atomically to
// path: the container goes to a temporary file in the same directory
// which is fsynced and renamed into place, so a crash mid-write leaves
// any previous checkpoint at path intact.
func SaveCheckpoint(path string, st *sched.Stream) error {
	state, err := st.Snapshot()
	if err != nil {
		return err
	}
	return SaveCheckpointState(path, state)
}

// SaveCheckpointState writes an already-captured snapshot blob
// atomically to path, with the same temp-file + fsync + rename protocol
// as SaveCheckpoint. Servers multiplexing many streams use it to take
// the (cheap, in-memory) snapshot under the tenant's lock and pay for
// the write and fsync outside it.
func SaveCheckpointState(path string, state []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("trace: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteCheckpoint(tmp, state); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("trace: publishing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the checkpoint at path and restores a live
// stream from it using pol (which must match the policy the checkpoint
// was taken with) and probe (nil for none).
func LoadCheckpoint(path string, pol sched.Policy, probe sched.Probe) (*sched.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening checkpoint: %w", err)
	}
	defer f.Close()
	state, err := ReadCheckpoint(f)
	if err != nil {
		return nil, err
	}
	return sched.RestoreStream(pol, state, probe)
}
