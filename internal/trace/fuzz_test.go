package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// FuzzReadCSV feeds arbitrary text to the CSV parser: it must never panic
// and every accepted instance must validate.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	inst := workload.RandomSmall(1, 3, 2, 8, []int{1, 2}, 2, false)
	if err := WriteCSV(&buf, inst); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# delta,1\n# delays,1\nround,color,count\n0,0,1\n")
	f.Add("garbage")
	f.Add("# delta,1\n# delays,-1\nround,color,count\n")
	f.Add("# name,x\n# delta,9999999999999999999999\nround,color,count\n")
	f.Fuzz(func(t *testing.T, data string) {
		inst, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := inst.Validate(); verr != nil {
			t.Fatalf("ReadCSV accepted an invalid instance: %v", verr)
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON container.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	inst := workload.RandomSmall(2, 3, 2, 8, []int{1, 2}, 2, false)
	if err := WriteJSON(&buf, inst); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"delta":1,"delays":[1],"rounds":0}`))
	f.Add([]byte(`{"version":1,"delta":1,"delays":[0],"rounds":0}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := inst.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid instance: %v", verr)
		}
	})
}
