package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sched"
)

// jsonEvent is the on-disk layout of one per-round engine event: one JSON
// object per line (JSON Lines), each self-describing with the container
// format version, so event streams can be tailed, cut, and concatenated.
type jsonEvent struct {
	Version   int `json:"v"`
	Round     int `json:"round"`
	Arrivals  int `json:"arrivals"`
	Dropped   int `json:"dropped"`
	Executed  int `json:"executed"`
	Reconfigs int `json:"reconfigs"`
	Pending   int `json:"pending"`
}

// EventWriter streams the round engine's per-round events as JSON Lines.
// It implements sched.Probe; attach it via sched.Options.Probe or
// sched.StreamConfig.Probe. Writes are buffered — call Flush (or check
// Err, which flushes) when the run finishes.
type EventWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewEventWriter returns an EventWriter emitting to w.
func NewEventWriter(w io.Writer) *EventWriter {
	bw := bufio.NewWriter(w)
	return &EventWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// OnRound implements sched.Probe. Encoding errors are sticky: the first
// one stops further output and is reported by Err.
func (ew *EventWriter) OnRound(ev sched.RoundEvent) {
	if ew.err != nil {
		return
	}
	ew.err = ew.enc.Encode(jsonEvent{
		Version:   FormatVersion,
		Round:     ev.Round,
		Arrivals:  ev.Arrivals,
		Dropped:   ev.Dropped,
		Executed:  ev.Executed,
		Reconfigs: ev.Reconfigs,
		Pending:   ev.Pending,
	})
}

// Flush writes out any buffered events.
func (ew *EventWriter) Flush() error {
	if ew.err != nil {
		return ew.err
	}
	ew.err = ew.bw.Flush()
	return ew.err
}

// Err flushes and reports the first error encountered, if any.
func (ew *EventWriter) Err() error { return ew.Flush() }

// ReadEvents parses a JSON Lines event stream produced by EventWriter.
func ReadEvents(r io.Reader) ([]sched.RoundEvent, error) {
	dec := json.NewDecoder(r)
	var out []sched.RoundEvent
	for {
		var ev jsonEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		if ev.Version != FormatVersion {
			return nil, fmt.Errorf("trace: event %d has unsupported version %d (want %d)",
				len(out), ev.Version, FormatVersion)
		}
		out = append(out, sched.RoundEvent{
			Round:     ev.Round,
			Arrivals:  ev.Arrivals,
			Dropped:   ev.Dropped,
			Executed:  ev.Executed,
			Reconfigs: ev.Reconfigs,
			Pending:   ev.Pending,
		})
	}
}
