package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func roundtripJSON(t *testing.T, inst *sched.Instance) *sched.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestJSONRoundtrip(t *testing.T) {
	inst := workload.RandomBatched(3, 6, 4, 64, []int{1, 2, 4}, 0.8, 0.6, true)
	got := roundtripJSON(t, inst)
	if !reflect.DeepEqual(got, inst) {
		t.Fatalf("JSON roundtrip changed the instance:\n%+v\nvs\n%+v", got, inst)
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Structurally valid JSON, semantically invalid instance.
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"delta":0,"delays":[1],"rounds":0}`)); err == nil {
		t.Fatal("Delta=0 accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"delta":1,"delays":[1],"rounds":1,"batches":[[-1,0,1]]}`)); err == nil {
		t.Fatal("negative round accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"delta":1,"delays":[1],"rounds":1,"batches":[[0,0,0]]}`)); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	inst := workload.RandomBatched(5, 5, 3, 48, []int{2, 4}, 0.9, 0.7, true)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, inst) {
		t.Fatalf("CSV roundtrip changed the instance")
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"no header at all\n0,0,1\n",
		"# delta,x\nround,color,count\n",
		"# delta,1\n# delays,1\nround,color,count\n0,0\n",
		"# delta,1\n# delays,1\nround,color,count\na,b,c\n",
		"# delta,1\n# delays,1\nround,color,count\n-1,0,1\n",
		"# delta,1\n# delays,1\nround,color,count\n0,7,1\n", // unknown color
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed CSV accepted:\n%s", i, c)
		}
	}
}

func TestCSVPreservesNameWithCommas(t *testing.T) {
	inst := &sched.Instance{Name: "a,b,c", Delta: 1, Delays: []int{1}}
	inst.AddJobs(0, 0, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "a,b,c" {
		t.Fatalf("name = %q", got.Name)
	}
}

// Property: JSON and CSV roundtrips are lossless for arbitrary generated
// instances, and both forms agree.
func TestRoundtripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomSmall(seed, 4, 3, 16, []int{1, 2, 4}, 4, false)
		var j, c bytes.Buffer
		if WriteJSON(&j, inst) != nil || WriteCSV(&c, inst) != nil {
			return false
		}
		fromJ, err1 := ReadJSON(&j)
		fromC, err2 := ReadCSV(&c)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(fromJ, inst) && reflect.DeepEqual(fromC, inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestResultJSONRoundtrip(t *testing.T) {
	res := &sched.Result{
		Policy:    "X",
		Cost:      sched.Cost{Reconfig: 12, Drop: 7},
		Executed:  100,
		Dropped:   7,
		Reconfigs: 4,
		Rounds:    50,
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result roundtrip: %+v vs %+v", got, res)
	}
	if _, err := ReadResultJSON(strings.NewReader(`{"version":2}`)); err == nil {
		t.Fatal("wrong result version accepted")
	}
}

func TestWriteRejectsInvalidInstance(t *testing.T) {
	bad := &sched.Instance{Delta: 0, Delays: []int{1}}
	if err := WriteJSON(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("WriteJSON accepted an invalid instance")
	}
	if err := WriteCSV(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("WriteCSV accepted an invalid instance")
	}
}
