package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// checkpointStream builds a mid-run EDF stream over a small router trace
// for container tests.
func checkpointStream(t testing.TB, rounds int) *sched.Stream {
	t.Helper()
	inst := workload.Router(9, 2, 6, 64, 5).Normalize()
	st, err := sched.NewStream(policy.NewEDF(), sched.StreamConfig{
		N: 8, Delta: inst.Delta, Delays: inst.Delays,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if _, err := st.Step(inst.Requests[r]); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestCheckpointRoundTrip(t *testing.T) {
	st := checkpointStream(t, 24)
	state, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, state); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("checkpoint payload changed across write/read")
	}
}

// TestCheckpointFileRoundTrip pins the full durability path: snapshot →
// atomic save → load → restored stream whose immediate re-snapshot is
// byte-identical to the original (the roundtrip property the in-memory
// fault-injection harness pins for every policy and round).
func TestCheckpointFileRoundTrip(t *testing.T) {
	st := checkpointStream(t, 24)
	want, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	if err := SaveCheckpoint(path, st); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadCheckpoint(path, policy.NewEDF(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot → save → load → snapshot is not byte-identical")
	}
	if st2.Round() != st.Round() {
		t.Fatalf("restored stream at round %d, want %d", st2.Round(), st.Round())
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	st := checkpointStream(t, 24)
	state, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, state); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every strict prefix is truncated input.
	for cut := 0; cut < len(good); cut++ {
		if _, err := ReadCheckpoint(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncated checkpoint (%d of %d bytes) read without error", cut, len(good))
		}
	}
	// Trailing garbage is rejected.
	if _, err := ReadCheckpoint(bytes.NewReader(append(append([]byte(nil), good...), 0))); err == nil {
		t.Fatal("checkpoint with trailing byte read without error")
	}
	// Any single corrupted byte is rejected: it lands in the magic, the
	// version, the length, the payload (CRC mismatch) or the CRC itself.
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatalf("checkpoint with byte %d flipped read without error", i)
		}
	}
}

// FuzzCheckpointDecode: arbitrary bytes through the container decoder
// and — for payloads that pass the checksum — through the full stream
// restore. Neither layer may ever panic; corrupt input must surface as
// an error.
func FuzzCheckpointDecode(f *testing.F) {
	inst := workload.Router(9, 2, 6, 64, 5).Normalize()
	st, err := sched.NewStream(policy.NewEDF(), sched.StreamConfig{
		N: 8, Delta: inst.Delta, Delays: inst.Delays,
	})
	if err != nil {
		f.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		if _, err := st.Step(inst.Requests[r]); err != nil {
			f.Fatal(err)
		}
	}
	state, err := st.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, state); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RRCP"))
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The container checksum only protects integrity in transit; the
		// payload is still untrusted (a fuzzer can forge a valid CRC), so
		// the restore layer must also hold the error-not-panic guarantee.
		_, _ = sched.RestoreStream(policy.NewEDF(), payload, nil)
	})
}
