package bdr

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func mustTree(t *testing.T, machine BDR, shards []BDR) *Tree {
	t.Helper()
	tr, err := NewTree(machine, shards)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tr
}

func TestNewTreeValidation(t *testing.T) {
	machine := BDR{Rate: 2, Delay: 0.5}
	if _, err := NewTree(machine, []BDR{{1, 1}, {1, 1}}); err != nil {
		t.Fatalf("feasible machine/shard split rejected: %v", err)
	}
	// Shard rates exceeding the machine rate.
	if _, err := NewTree(machine, []BDR{{1.5, 1}, {1, 1}}); err == nil {
		t.Fatal("overcommitted shard split accepted")
	}
	// Shard delay not exceeding the machine delay.
	if _, err := NewTree(machine, []BDR{{1, 0.5}}); err == nil {
		t.Fatal("shard delay equal to machine delay accepted")
	}
	if _, err := NewTree(BDR{}, []BDR{{1, 1}}); err == nil {
		t.Fatal("zero machine accepted")
	}
}

func TestAdmitReleaseResize(t *testing.T) {
	tr := mustTree(t, BDR{Rate: 1, Delay: 0.5}, []BDR{{Rate: 1, Delay: 1}})
	if err := tr.Admit(0, "a", BDR{Rate: 0.5, Delay: 8}); err != nil {
		t.Fatalf("admit a: %v", err)
	}
	if err := tr.Admit(0, "a", BDR{Rate: 0.1, Delay: 8}); err == nil {
		t.Fatal("double admit accepted")
	}
	// Over the residual: typed error carrying the residual capacity.
	err := tr.Admit(0, "b", BDR{Rate: 0.75, Delay: 8})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("overcommit admit: got %v, want *InfeasibleError", err)
	}
	if inf.ResidualRate != 0.5 || inf.MinDelay != 1 {
		t.Fatalf("residual = (%g, >%g), want (0.5, >1)", inf.ResidualRate, inf.MinDelay)
	}
	// Delay at the shard bound: rejected.
	if err := tr.Admit(0, "b", BDR{Rate: 0.25, Delay: 1}); !errors.As(err, &inf) {
		t.Fatalf("delay-tie admit: got %v, want *InfeasibleError", err)
	}
	// Fits the residual exactly.
	if err := tr.Admit(0, "b", BDR{Rate: 0.5, Delay: 4}); err != nil {
		t.Fatalf("admit b: %v", err)
	}
	if got := tr.Residual(0).Rate; got > 1e-9 {
		t.Fatalf("residual after full tiling = %g, want 0", got)
	}
	// Resize down frees capacity; resize up over residual fails and
	// leaves the old reservation in force.
	if err := tr.Resize(0, "b", BDR{Rate: 0.25, Delay: 4}); err != nil {
		t.Fatalf("resize b down: %v", err)
	}
	if err := tr.Resize(0, "a", BDR{Rate: 0.8, Delay: 8}); !errors.As(err, &inf) {
		t.Fatalf("oversize resize: got %v, want *InfeasibleError", err)
	}
	if r, ok := tr.Reservation(0, "a"); !ok || r.Rate != 0.5 {
		t.Fatalf("reservation a after failed resize = (%+v, %v), want rate 0.5", r, ok)
	}
	// Release is idempotent and frees the rate.
	tr.Release(0, "a")
	tr.Release(0, "a")
	if got := tr.Residual(0).Rate; got < 0.75-1e-9 {
		t.Fatalf("residual after release = %g, want 0.75", got)
	}
	if tr.Reserved(0) != 1 {
		t.Fatalf("Reserved(0) = %d, want 1", tr.Reserved(0))
	}
}

// TestTreeInvariantProperty drives a random admit/release/resize
// workload and checks after every operation that the shard's children
// remain feasible under CanHost — the tree must never transition into
// an infeasible state, whether the operation succeeded or failed.
func TestTreeInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		shards := []BDR{{Rate: 1, Delay: 1}, {Rate: 1, Delay: 2}}
		tr := mustTree(t, BDR{Rate: 2, Delay: 0.5}, shards)
		for op := 0; op < 400; op++ {
			shard := rng.Intn(len(shards))
			id := fmt.Sprintf("t%d", rng.Intn(12))
			r := BDR{
				Rate:  0.01 + 0.6*rng.Float64(),
				Delay: shards[shard].Delay * (0.8 + rng.Float64()), // straddles the bound
			}
			switch rng.Intn(3) {
			case 0:
				_ = tr.Admit(shard, id, r)
			case 1:
				tr.Release(shard, id)
			case 2:
				_ = tr.Resize(shard, id, r)
			}
			for i := range shards {
				children := make([]BDR, 0, tr.Reserved(i))
				for k := 0; k < 12; k++ {
					if res, ok := tr.Reservation(i, fmt.Sprintf("t%d", k)); ok {
						children = append(children, res)
					}
				}
				if !CanHost(shards[i], children) {
					t.Fatalf("trial %d op %d: shard %d infeasible with %+v", trial, op, i, children)
				}
				// The cached sum must track the map (within float noise).
				if got, want := tr.sums[i], sumMap(tr.reserved[i]); got < want-1e-9 || got > want+1e-9 {
					t.Fatalf("trial %d op %d: shard %d cached sum %g, map sum %g", trial, op, i, got, want)
				}
			}
		}
	}
}
