package bdr

import (
	"math"
	"math/rand"
	"testing"
)

func TestSBF(t *testing.T) {
	b := BDR{Rate: 0.5, Delay: 4}
	cases := []struct{ t, want float64 }{
		{0, 0}, {2, 0}, {4, 0}, {6, 1}, {8, 2}, {12, 4},
	}
	for _, c := range cases {
		if got := b.SBF(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SBF(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := (BDR{}).SBF(100); got != 0 {
		t.Errorf("zero BDR SBF(100) = %g, want 0", got)
	}
}

func TestSupplyTask(t *testing.T) {
	// Half-half construction: period = delay / (2(1-rate)), budget = rate·period.
	b := BDR{Rate: 0.5, Delay: 8}
	budget, period := b.SupplyTask()
	if math.Abs(period-8) > 1e-12 || math.Abs(budget-4) > 1e-12 {
		t.Errorf("SupplyTask() = (%g, %g), want (4, 8)", budget, period)
	}
	// Degenerate cases.
	if bu, pe := (BDR{Rate: 1, Delay: 3}).SupplyTask(); bu != 1 || pe != 1 {
		t.Errorf("rate-1 SupplyTask() = (%g, %g), want (1, 1)", bu, pe)
	}
	if bu, pe := (BDR{}).SupplyTask(); bu != 0 || pe != 0 {
		t.Errorf("zero SupplyTask() = (%g, %g), want (0, 0)", bu, pe)
	}
}

// TestSupplyTaskMeetsSBF checks the half-half construction against the
// model algebraically: a periodic task (budget, period) has worst-case
// service blackout 2·(period − budget) — budget finished at the start
// of one period, delivered at the end of the next — so realizing the
// BDR requires exactly that blackout to equal the delay bound, with
// the long-run rate budget/period equal to the reserved rate.
func TestSupplyTaskMeetsSBF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		b := BDR{Rate: 0.05 + 0.9*rng.Float64(), Delay: 1 + 31*rng.Float64()}
		budget, period := b.SupplyTask()
		if budget <= 0 || period <= 0 {
			t.Fatalf("degenerate supply task (%g, %g) for %+v", budget, period, b)
		}
		if blackout := 2 * (period - budget); math.Abs(blackout-b.Delay) > 1e-9 {
			t.Fatalf("%+v: worst-case blackout %g, want delay %g", b, blackout, b.Delay)
		}
		if rate := budget / period; math.Abs(rate-b.Rate) > 1e-9 {
			t.Fatalf("%+v: long-run rate %g, want %g", b, rate, b.Rate)
		}
	}
}

func TestValid(t *testing.T) {
	for _, c := range []struct {
		b    BDR
		want bool
	}{
		{BDR{0.5, 4}, true},
		{BDR{1, 0}, true},
		{BDR{0, 0}, false},
		{BDR{-0.1, 4}, false},
		{BDR{0.5, -1}, false},
		{BDR{math.Inf(1), 1}, false},
		{BDR{math.NaN(), 1}, false},
		{BDR{0.5, math.NaN()}, false},
	} {
		if got := c.b.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

// TestCanHostProperty is the Theorem-1 property test: over random
// parent/children sets, CanHost must agree exactly with the predicate
// "Σ child rates ≤ parent rate ∧ every child delay > parent delay".
func TestCanHostProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		parent := BDR{Rate: 0.1 + 3.9*rng.Float64(), Delay: 8 * rng.Float64()}
		n := rng.Intn(8)
		children := make([]BDR, n)
		sum := 0.0
		delaysOK := true
		for j := range children {
			// Mix children that straddle the boundary in both dimensions.
			children[j] = BDR{
				Rate:  0.05 + rng.Float64()*parent.Rate/2,
				Delay: parent.Delay * (0.5 + rng.Float64()),
			}
			if rng.Intn(8) == 0 {
				children[j].Delay = parent.Delay // exact tie: must be rejected
			}
			sum += children[j].Rate
			if children[j].Delay <= parent.Delay {
				delaysOK = false
			}
		}
		want := delaysOK && sum <= parent.Rate*(1+rateEpsilon)
		if got := CanHost(parent, children); got != want {
			t.Fatalf("iter %d: CanHost(%+v, %+v) = %v, want %v (Σ=%g)",
				i, parent, children, got, want, sum)
		}
	}
}

// TestCanHostExactTiling pins the epsilon: rates that tile the parent
// exactly must be admissible despite float accumulation.
func TestCanHostExactTiling(t *testing.T) {
	parent := BDR{Rate: 1, Delay: 1}
	children := make([]BDR, 10)
	for i := range children {
		children[i] = BDR{Rate: 0.1, Delay: 2}
	}
	if !CanHost(parent, children) {
		t.Fatal("10 × 0.1 must tile a rate-1 parent")
	}
	children = append(children, BDR{Rate: 0.01, Delay: 2})
	if CanHost(parent, children) {
		t.Fatal("exceeding the parent rate must be rejected")
	}
}
