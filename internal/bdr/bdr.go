// Package bdr implements the bounded-delay resource (BDR) model from
// the source paper: a resource abstraction characterized by a rate (a
// fraction of a dedicated parent resource) and a delay bound (the
// longest interval over which the fraction may fail to materialize).
//
// A BDR reservation (rate, delay) guarantees the supply bound function
//
//	sbf(t) = max(0, rate · (t − delay))
//
// of service over every interval of length t. Reservations compose
// hierarchically: a parent BDR can host a set of child BDRs iff the
// children's rates sum to at most the parent's rate and every child's
// delay exceeds the parent's (Theorem 1), which makes admission an O(n)
// check at each level of a machine → shard → tenant tree.
//
// The package has three parts:
//
//   - BDR itself with the SBF, the Theorem-1 feasibility check CanHost,
//     and the half-half supply-task construction SupplyTask;
//   - Tree, a concurrency-safe hierarchical reservation tree with
//     admit/release/resize and residual-capacity queries, used by the
//     serve layer for admission control;
//   - Controller, an online fractional-share controller in the spirit of
//     DFRS (Casanova et al.) that converts admitted reservations plus
//     measured backlog into WDRR weights and per-round service budgets,
//     clamped so the SBF guarantee is never violated.
package bdr

import "math"

// BDR is a bounded-delay resource reservation: Rate is the fraction of
// the parent resource reserved (0 < Rate ≤ 1 for a child; a machine
// root may use Rate > 1 to denote multiple workers), and Delay bounds
// how long, in rounds, the fraction may fail to materialize. The zero
// value means "no reservation".
type BDR struct {
	// Rate is the reserved service rate as a fraction of the parent
	// resource (rounds of service per round of wall time at rate 1).
	Rate float64
	// Delay is the delay bound in rounds: the supply bound function is
	// zero for intervals shorter than Delay.
	Delay float64
}

// IsZero reports whether b is the zero reservation (no guarantee).
func (b BDR) IsZero() bool { return b.Rate == 0 && b.Delay == 0 }

// Valid reports whether b is a well-formed reservation: a positive
// rate and a non-negative, finite delay. The zero value is not Valid —
// callers treat it as "unreserved" before validating.
func (b BDR) Valid() bool {
	return b.Rate > 0 && !math.IsInf(b.Rate, 0) && b.Delay >= 0 && !math.IsInf(b.Delay, 0) &&
		!math.IsNaN(b.Rate) && !math.IsNaN(b.Delay)
}

// SBF is the supply bound function: the least service guaranteed over
// any interval of length t.
func (b BDR) SBF(t float64) float64 {
	if t <= b.Delay {
		return 0
	}
	return b.Rate * (t - b.Delay)
}

// SupplyTask converts the reservation into the half-half periodic
// supply task (budget, period) that realizes it: a task receiving
// budget units of service every period units of time supplies the BDR
// (rate, delay) with period = delay / (2·(1−rate)) and budget =
// rate·period. Rate ≥ 1 degenerates to a dedicated resource (1, 1);
// rate 0 to no supply at all.
func (b BDR) SupplyTask() (budget, period float64) {
	if b.Rate >= 1 {
		return 1, 1
	}
	if b.Rate <= 0 {
		return 0, 0
	}
	period = b.Delay / (2 * (1 - b.Rate))
	return b.Rate * period, period
}

// CanHost is the Theorem-1 feasibility check: parent can host children
// iff Σ children.Rate ≤ parent.Rate and every child's Delay strictly
// exceeds the parent's. An empty child set is always feasible. The sum
// uses a small epsilon so that admitting rates that tile the parent
// exactly (e.g. 4 × 0.25) is not rejected for floating-point noise.
func CanHost(parent BDR, children []BDR) bool {
	sum := 0.0
	for _, c := range children {
		if c.Delay <= parent.Delay {
			return false
		}
		sum += c.Rate
	}
	return sum <= parent.Rate*(1+rateEpsilon)
}

// rateEpsilon absorbs floating-point accumulation error when child
// rates tile the parent exactly. It is relative to the parent rate, so
// a parent of rate 4 tolerates proportionally more absolute error than
// a parent of rate 0.25.
const rateEpsilon = 1e-9
