package bdr

import (
	"math"
	"math/rand"
	"testing"
)

// TestSharesGuaranteeClamp is the SBF-clamp property: over random
// demand mixes, every backlogged reserved tenant's emitted weight
// fraction must be at least its guaranteed fraction f_i = rate/shard
// rate, regardless of how much slack the best-effort tenants bid for.
func TestSharesGuaranteeClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := &Controller{ShardRate: 1}
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(10)
		demands := make([]Demand, n)
		out := make([]Share, n)
		sumRes := 0.0
		for i := range demands {
			demands[i] = Demand{
				Backlog: rng.Intn(200),
				Weight:  1 + rng.Intn(8),
			}
			if rng.Intn(2) == 0 && sumRes < 0.9 {
				r := BDR{Rate: 0.05 + rng.Float64()*(0.9-sumRes)/2, Delay: 1 + 15*rng.Float64()}
				sumRes += r.Rate
				demands[i].Res = r
			}
		}
		passBudget := 0
		if rng.Intn(2) == 0 {
			passBudget = 1 + rng.Intn(64)
		}
		c.Shares(demands, passBudget, out)
		totalW := 0
		for i := range out {
			totalW += out[i].Weight
		}
		for i := range demands {
			d := demands[i]
			if d.Backlog <= 0 {
				if out[i] != (Share{}) {
					t.Fatalf("trial %d: idle tenant got share %+v", trial, out[i])
				}
				continue
			}
			if out[i].Weight < 1 {
				t.Fatalf("trial %d: backlogged tenant %d got weight %d", trial, i, out[i].Weight)
			}
			if d.Res.IsZero() {
				continue
			}
			f := d.Res.Rate / c.ShardRate
			// Weight floor: ceil(f·Scale) regardless of competition.
			if floor := int(math.Ceil(f * float64(1<<12))); out[i].Weight < floor {
				t.Fatalf("trial %d: tenant %d weight %d below guarantee floor %d (f=%g)",
					trial, i, out[i].Weight, floor, f)
			}
			if passBudget > 0 {
				if guard := int(math.Ceil(f * float64(passBudget))); out[i].Budget < guard {
					t.Fatalf("trial %d: tenant %d budget %d below guarantee %d (f=%g, pass=%d)",
						trial, i, out[i].Budget, guard, f, passBudget)
				}
			}
		}
	}
}

// TestSharesSlackSplit pins the DFRS behavior on a small hand-checked
// mix: one reserved tenant well inside its bound takes its fraction
// plus a modest slack bid; the best-effort tenant absorbs the rest.
func TestSharesSlackSplit(t *testing.T) {
	c := &Controller{ShardRate: 1, Scale: 1000}
	demands := []Demand{
		{Res: BDR{Rate: 0.5, Delay: 8}, Backlog: 4, Weight: 1}, // pressure = 4/(0.5·8) = 1
		{Backlog: 100, Weight: 1},                              // best-effort
	}
	out := make([]Share, 2)
	c.Shares(demands, 10, out)
	// slack = 0.5, demand = {1, 1} → reserved share 0.75, best-effort 0.25.
	if out[0].Weight != 750 || out[1].Weight != 250 {
		t.Fatalf("weights = %d/%d, want 750/250", out[0].Weight, out[1].Weight)
	}
	if out[0].Budget != 8 || out[1].Budget != 3 {
		t.Fatalf("budgets = %d/%d, want 8/3", out[0].Budget, out[1].Budget)
	}
}

// TestSharesPressureCap: a deeply backlogged reservation bids for slack
// at most maxPressure× its weight, so best-effort tenants keep a floor.
func TestSharesPressureCap(t *testing.T) {
	c := &Controller{ShardRate: 1, Scale: 1000}
	demands := []Demand{
		{Res: BDR{Rate: 0.1, Delay: 2}, Backlog: 100000, Weight: 1},
		{Backlog: 100, Weight: 1},
	}
	out := make([]Share, 2)
	c.Shares(demands, 0, out)
	// slack = 0.9, demand = {4, 1} → shares 0.1+0.72=0.82 and 0.18.
	if out[0].Weight != 820 || out[1].Weight != 180 {
		t.Fatalf("weights = %d/%d, want 820/180", out[0].Weight, out[1].Weight)
	}
}

// TestSharesUnreservedOnly: with no reservations the controller reduces
// to plain weighted fair sharing.
func TestSharesUnreservedOnly(t *testing.T) {
	c := &Controller{ShardRate: 1, Scale: 900}
	demands := []Demand{
		{Backlog: 10, Weight: 2},
		{Backlog: 10, Weight: 1},
	}
	out := make([]Share, 2)
	c.Shares(demands, 0, out)
	if out[0].Weight != 600 || out[1].Weight != 300 {
		t.Fatalf("weights = %d/%d, want 600/300", out[0].Weight, out[1].Weight)
	}
}
