package bdr

import "math"

// Demand is one backlogged tenant's input to the fractional-share
// controller: its admitted reservation (zero if unreserved), its
// measured backlog in queued rounds, and its static WDRR weight.
type Demand struct {
	// Res is the tenant's admitted reservation; the zero BDR marks a
	// best-effort tenant with no guarantee.
	Res BDR
	// Backlog is the tenant's queued rounds at the start of the pass.
	Backlog int
	// Weight is the tenant's static protocol-v3 weight (≥ 1 effective;
	// 0 is treated as 1, matching the allocator's convention).
	Weight int
}

// Share is the controller's output for one tenant: the effective WDRR
// weight for this pass and the per-pass service budget in rounds.
type Share struct {
	// Weight replaces the tenant's static weight for this pass; the
	// allocator's deficit settlement and quantum both scale with it.
	Weight int
	// Budget caps the rounds the tenant may be served this pass when
	// positive; 0 leaves the tenant's service uncapped.
	Budget int
}

// Controller converts reservations plus measured backlog into
// fractional shares, DFRS-style: each tenant's share starts at its
// guaranteed fraction f_i = rate_i / shardRate and the slack
// (1 − Σ f_i over backlogged reserved tenants) is divided among all
// backlogged tenants in proportion to demand — weight for best-effort
// tenants, weight scaled by backlog pressure for reserved ones. Since
// a reserved tenant's share is f_i plus a non-negative slack term, the
// construction never dilutes a guarantee: the SBF clamp is structural,
// not a post-hoc correction.
type Controller struct {
	// ShardRate is the shard's own reserved rate — the denominator of
	// every tenant's guaranteed fraction.
	ShardRate float64
	// Scale is the integer resolution of the emitted weights (default
	// 1 << 12): a share of 1.0 maps to Scale. Larger values resolve
	// finer fractions at the cost of larger deficit counters.
	Scale int
}

// maxPressure caps how much a reserved tenant's backlog can amplify
// its slack demand, so one deeply backlogged reservation cannot starve
// best-effort tenants of all slack.
const maxPressure = 4.0

// Shares computes each demand's fractional share for one service pass
// and writes the result into out (which must be len(demands)).
// passBudget is the pass's total service budget in rounds (the paced
// worker's one-round-per-backlogged-tenant budget, or 0 for an eager
// unbounded pass, in which case budgets are left uncapped).
func (c *Controller) Shares(demands []Demand, passBudget int, out []Share) {
	scale := c.Scale
	if scale <= 0 {
		scale = 1 << 12
	}
	// First pass: guaranteed fractions and slack demand.
	guaranteed := 0.0
	totalDemand := 0.0
	for i := range demands {
		d := &demands[i]
		if d.Backlog <= 0 {
			continue
		}
		w := float64(d.Weight)
		if w < 1 {
			w = 1
		}
		if d.Res.IsZero() || c.ShardRate <= 0 {
			totalDemand += w
			continue
		}
		f := d.Res.Rate / c.ShardRate
		guaranteed += f
		// Pressure: backlog relative to the work the reservation can
		// absorb inside its own delay bound. A reservation running at
		// or under its bound contributes modest demand; one falling
		// behind bids for slack up to the cap.
		capacity := d.Res.Rate * d.Res.Delay
		if capacity < 1 {
			capacity = 1
		}
		p := float64(d.Backlog) / capacity
		if p > maxPressure {
			p = maxPressure
		}
		totalDemand += w * p
	}
	slack := 1 - guaranteed
	if slack < 0 {
		slack = 0 // overcommit cannot happen post-admission, but stay safe
	}
	// Second pass: share = guaranteed fraction + slack portion, then
	// quantize. The ceil on the guaranteed floor is the SBF clamp: no
	// rounding may push an admitted tenant below its reservation.
	for i := range demands {
		d := &demands[i]
		if d.Backlog <= 0 {
			out[i] = Share{}
			continue
		}
		w := float64(d.Weight)
		if w < 1 {
			w = 1
		}
		f, demand := 0.0, w
		if !d.Res.IsZero() && c.ShardRate > 0 {
			f = d.Res.Rate / c.ShardRate
			capacity := d.Res.Rate * d.Res.Delay
			if capacity < 1 {
				capacity = 1
			}
			p := float64(d.Backlog) / capacity
			if p > maxPressure {
				p = maxPressure
			}
			demand = w * p
		}
		share := f
		if totalDemand > 0 {
			share += slack * demand / totalDemand
		}
		weight := int(math.Round(share * float64(scale)))
		if floor := int(math.Ceil(f * float64(scale))); weight < floor {
			weight = floor
		}
		if weight < 1 {
			weight = 1
		}
		budget := 0
		if passBudget > 0 {
			budget = int(math.Round(share * float64(passBudget)))
			if guard := int(math.Ceil(f * float64(passBudget))); budget < guard {
				budget = guard
			}
			if budget < 1 {
				budget = 1
			}
		}
		out[i] = Share{Weight: weight, Budget: budget}
	}
}
