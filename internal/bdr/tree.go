package bdr

import "fmt"

// InfeasibleError reports a reservation the tree cannot admit, carrying
// the shard's residual capacity so the caller (and ultimately the
// remote client) can see what would have fit: ResidualRate is the
// unreserved fraction of the shard and MinDelay the smallest delay
// bound an admissible child may declare (exclusive — a child's delay
// must exceed it).
type InfeasibleError struct {
	// Shard is the index of the shard the reservation was aimed at.
	Shard int
	// ResidualRate is the rate still unreserved on that shard.
	ResidualRate float64
	// MinDelay is the shard's own delay bound; children must declare a
	// strictly larger delay.
	MinDelay float64
	// Reason describes which Theorem-1 condition failed.
	Reason string
}

// Error formats the infeasibility with the residual capacity inline.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("bdr: infeasible reservation on shard %d: %s (residual rate %g, min delay >%g)",
		e.Shard, e.Reason, e.ResidualRate, e.MinDelay)
}

// Tree is a two-level hierarchical reservation tree: a machine root
// hosting shard children, each shard hosting tenant reservations. The
// machine → shard level is validated once at construction (the shard
// set is static); the shard → tenant level changes online through
// Admit, Release and Resize, each of which preserves Theorem-1
// feasibility — an operation that would break it fails with
// *InfeasibleError and leaves the tree unchanged.
//
// Tree is not safe for concurrent use; the serve layer guards it with
// the server mutex it already holds around tenant registration.
type Tree struct {
	machine BDR
	shards  []BDR
	// reserved[i] maps tenant ID → admitted reservation on shard i.
	reserved []map[string]BDR
	// sums[i] caches Σ reserved[i].Rate so Admit is O(1), recomputed
	// from scratch on Release/Resize to stop float drift accumulating.
	sums []float64
}

// NewTree builds a reservation tree for a machine hosting the given
// shard reservations, validating the machine → shard level with
// CanHost. Shard delays must strictly exceed the machine delay and
// shard rates must sum to at most the machine rate.
func NewTree(machine BDR, shards []BDR) (*Tree, error) {
	if !machine.Valid() {
		return nil, fmt.Errorf("bdr: invalid machine reservation %+v", machine)
	}
	for i, s := range shards {
		if !s.Valid() {
			return nil, fmt.Errorf("bdr: invalid shard %d reservation %+v", i, s)
		}
	}
	if !CanHost(machine, shards) {
		return nil, fmt.Errorf("bdr: machine (rate %g, delay %g) cannot host %d shards (Σ rate %g)",
			machine.Rate, machine.Delay, len(shards), sumRates(shards))
	}
	t := &Tree{
		machine:  machine,
		shards:   append([]BDR(nil), shards...),
		reserved: make([]map[string]BDR, len(shards)),
		sums:     make([]float64, len(shards)),
	}
	for i := range t.reserved {
		t.reserved[i] = make(map[string]BDR)
	}
	return t, nil
}

// Shard returns shard i's own reservation.
func (t *Tree) Shard(i int) BDR { return t.shards[i] }

// Admit reserves r for tenant id on shard i, failing with
// *InfeasibleError if the reservation would violate the shard's
// Theorem-1 feasibility. Admitting an ID that already holds a
// reservation on the shard is an error; use Resize.
func (t *Tree) Admit(shard int, id string, r BDR) error {
	if !r.Valid() {
		return fmt.Errorf("bdr: invalid reservation %+v for %q", r, id)
	}
	if _, ok := t.reserved[shard][id]; ok {
		return fmt.Errorf("bdr: %q already reserved on shard %d", id, shard)
	}
	if err := t.check(shard, r, t.sums[shard]); err != nil {
		return err
	}
	t.reserved[shard][id] = r
	t.sums[shard] += r.Rate
	return nil
}

// Release frees tenant id's reservation on shard i. Releasing an ID
// with no reservation is a no-op, so callers can release
// unconditionally on tenant teardown.
func (t *Tree) Release(shard int, id string) {
	if _, ok := t.reserved[shard][id]; !ok {
		return
	}
	delete(t.reserved[shard], id)
	t.sums[shard] = sumMap(t.reserved[shard])
}

// Resize replaces tenant id's reservation on shard i with r,
// atomically: the old reservation's rate is excluded from the
// feasibility check, and on failure the old reservation stays in
// force. Resizing an ID with no reservation admits it.
func (t *Tree) Resize(shard int, id string, r BDR) error {
	if !r.Valid() {
		return fmt.Errorf("bdr: invalid reservation %+v for %q", r, id)
	}
	old, had := t.reserved[shard][id]
	base := t.sums[shard]
	if had {
		base -= old.Rate
	}
	if err := t.check(shard, r, base); err != nil {
		return err
	}
	t.reserved[shard][id] = r
	t.sums[shard] = sumMap(t.reserved[shard])
	return nil
}

// Reservation returns tenant id's reservation on shard i and whether
// one is held.
func (t *Tree) Reservation(shard int, id string) (BDR, bool) {
	r, ok := t.reserved[shard][id]
	return r, ok
}

// Residual returns shard i's remaining capacity as a BDR: the rate
// still unreserved, and the shard's own delay as the exclusive lower
// bound for any new child's delay.
func (t *Tree) Residual(shard int) BDR {
	rate := t.shards[shard].Rate - t.sums[shard]
	if rate < 0 {
		rate = 0
	}
	return BDR{Rate: rate, Delay: t.shards[shard].Delay}
}

// Reserved returns the number of reservations held on shard i.
func (t *Tree) Reserved(shard int) int { return len(t.reserved[shard]) }

// check applies the Theorem-1 conditions for admitting r onto shard i
// given base = Σ rates of the other children.
func (t *Tree) check(shard int, r BDR, base float64) error {
	s := t.shards[shard]
	resid := s.Rate - base
	if resid < 0 {
		resid = 0
	}
	if r.Delay <= s.Delay {
		return &InfeasibleError{
			Shard: shard, ResidualRate: resid, MinDelay: s.Delay,
			Reason: fmt.Sprintf("delay %g must exceed shard delay %g", r.Delay, s.Delay),
		}
	}
	if base+r.Rate > s.Rate*(1+rateEpsilon) {
		return &InfeasibleError{
			Shard: shard, ResidualRate: resid, MinDelay: s.Delay,
			Reason: fmt.Sprintf("rate %g exceeds residual %g", r.Rate, resid),
		}
	}
	return nil
}

func sumRates(bs []BDR) float64 {
	s := 0.0
	for _, b := range bs {
		s += b.Rate
	}
	return s
}

func sumMap(m map[string]BDR) float64 {
	s := 0.0
	for _, b := range m {
		s += b.Rate
	}
	return s
}
