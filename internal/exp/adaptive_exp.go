package exp

import (
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "A5", Title: "Extension: adaptive LRU/EDF split and the hysteresis baseline", Run: runA5})
}

// runA5 evaluates the two beyond-the-paper extensions against the paper's
// fixed-split algorithm across the ablation panel plus a phase-shifting
// workload designed to punish any fixed split: alternating eras of
// thrash-prone and starvation-prone traffic.
func runA5(cfg Config) (*Report, error) {
	insts, err := ablationInstances(cfg)
	if err != nil {
		return nil, err
	}
	if phased, err := phaseShifting(cfg); err == nil {
		insts = append(insts, phased)
	} else {
		return nil, err
	}

	const n = 16
	type variant struct {
		name string
		mk   func() sched.Policy
	}
	variants := []variant{
		{"fixed 50/50 (paper)", func() sched.Policy { return core.NewDLRUEDF() }},
		{"adaptive split", func() sched.Policy { return core.NewDLRUEDF(core.WithAdaptiveSplit()) }},
		{"hysteresis θ=1 (Everest-like)", func() sched.Policy { return policy.NewHysteresis(1) }},
		{"hysteresis θ=2", func() sched.Policy { return policy.NewHysteresis(2) }},
	}

	tab := stats.NewTable("A5: extensions vs the paper's fixed split, n=16",
		"workload", "variant", "total", "reconfig", "drop")
	for _, inst := range insts {
		results, err := Sweep(cfg.workers(), variants, func(v variant) (*sched.Result, error) {
			return sched.Run(inst.Clone(), v.mk(), sched.Options{N: n})
		})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			tab.AddRow(inst.Name, variants[i].name, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop)
		}
	}
	tab.AddNote("the adaptive split and hysteresis are extensions beyond the paper; Theorem 1 covers only the fixed split")
	return &Report{ID: "A5", Title: "Adaptive split extension", Tables: []*stats.Table{tab}}, nil
}

// phaseShifting builds a workload alternating between a bursty many-color
// era (which punishes large EDF halves via thrashing) and a steady
// few-color era with a background backlog (which punishes large LRU
// halves via starvation).
func phaseShifting(cfg Config) (*sched.Instance, error) {
	rounds := 2048
	if cfg.Quick {
		rounds = 512
	}
	era := 256
	bursty := workload.RandomBatched(cfg.Seed+91, 24, 6, rounds, []int{1, 2, 4}, 0.9, 0.8, true)
	steady := workload.Generate(workload.Spec{
		Name: "steady", Delta: 6, Rounds: rounds, Seed: cfg.Seed + 92,
		Colors: []workload.ColorSpec{
			{Delay: 4, Rate: 2},
			{Delay: 4, Rate: 2},
			{Delay: 256, Rate: 0.5},
		},
	})
	out := &sched.Instance{
		Name:   "phaseShifting",
		Delta:  6,
		Delays: append(append([]int(nil), bursty.Delays...), steady.Delays...),
	}
	offset := sched.Color(bursty.NumColors())
	for r := 0; r < rounds; r++ {
		if (r/era)%2 == 0 {
			if r < bursty.NumRounds() {
				for _, b := range bursty.Requests[r] {
					out.AddJobs(r, b.Color, b.Count)
				}
			}
		} else {
			if r < steady.NumRounds() {
				for _, b := range steady.Requests[r] {
					out.AddJobs(r, b.Color+offset, b.Count)
				}
			}
		}
	}
	return out.Normalize(), nil
}
