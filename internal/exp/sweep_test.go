package exp

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestSweepDeterministicAcrossWorkers pins the sharded runner's central
// guarantee: a real scheduler sweep produces bit-identical results at
// every worker count, because results[i] depends only on items[i] and the
// per-instance seed is derived from the item. This is what makes numbers
// in EXPERIMENTS.md reproducible regardless of -workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	seeds := seedRange(42, 23) // deliberately not a multiple of any worker count
	run := func(workers int) []*sched.Result {
		t.Helper()
		results, err := Sweep(workers, seeds, func(seed uint64) (*sched.Result, error) {
			inst := workload.Router(seed, 4, 8, 256, 12)
			return sched.Run(inst, core.NewDLRUEDF(), sched.Options{N: 16})
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, 23, 64} {
		got := run(w)
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("workers=%d: result[%d] diverged from workers=1:\n got %+v\nwant %+v",
					w, i, got[i], want[i])
			}
		}
	}
}

// TestSweepStealsSkewedWork drives the stealing path: all the expensive
// items land in the first shard, so with >1 worker the others must steal
// to finish. Every item must still be processed exactly once, in order.
func TestSweepStealsSkewedWork(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	var calls atomic.Int64
	got, err := Sweep(4, items, func(x int) (int, error) {
		calls.Add(1)
		if x < 16 { // the first shard is the slow one
			time.Sleep(time.Millisecond)
		}
		return x * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != int64(len(items)) {
		t.Fatalf("fn ran %d times for %d items", calls.Load(), len(items))
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*2)
		}
	}
}

// TestSweepRunsEverythingDespiteError: an error does not cancel remaining
// items, and the error returned is the first in item order, not in
// completion order.
func TestSweepRunsEverythingDespiteError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	var calls atomic.Int64
	_, err := Sweep(3, []int{0, 1, 2, 3, 4, 5}, func(x int) (int, error) {
		calls.Add(1)
		switch x {
		case 4:
			return 0, errB
		case 1:
			time.Sleep(2 * time.Millisecond) // finish after item 4's error
			return 0, errA
		}
		return x, nil
	})
	if calls.Load() != 6 {
		t.Fatalf("fn ran %d times, want 6", calls.Load())
	}
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first-in-item-order error %v", err, errA)
	}
}

// TestSweepManyWorkersFewItems exercises the workers > items clamp with
// the sharded runner.
func TestSweepManyWorkersFewItems(t *testing.T) {
	got, err := Sweep(32, []int{1, 2, 3}, func(x int) (int, error) { return -x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -1 || got[1] != -2 || got[2] != -3 {
		t.Fatalf("got %v", got)
	}
}
