package exp

import (
	"fmt"

	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T8", Title: "Lemma 4.1: the Aggregate schedule transformation", Run: runT8})
}

// runT8 exercises algorithm Aggregate (§4.3): for offline schedules T
// produced by several policies on batched instances, it builds T′ for the
// rate-limited instance I′ with 3m resources and verifies Lemma 4.5 (T′
// executes exactly the jobs T executes, hence equal drop cost) and
// measures the Lemma 4.6 reconfiguration blow-up factor.
func runT8(cfg Config) (*Report, error) {
	numSeeds := 20
	rounds := 256
	if cfg.Quick {
		numSeeds, rounds = 6, 128
	}
	const m = 3

	type row struct {
		execEqual   bool
		inReconfig  int64
		outReconfig int64
		factor      float64
	}
	makers := []struct {
		name string
		pol  func() sched.Policy
	}{
		{"EDF(m)", func() sched.Policy { return policy.NewEDF() }},
		{"SeqEDF(m)", func() sched.Policy { return policy.NewSeqEDF() }},
		{"GreedyPending(m)", func() sched.Policy { return policy.NewGreedyPending() }},
	}

	tab := stats.NewTable("T8: Aggregate T → T′ (3m resources, rate-limited instance)",
		"input policy", "instances", "drop-cost preserved", "mean reconfig factor", "max reconfig factor")
	for _, mk := range makers {
		rows, err := Sweep(cfg.workers(), seedRange(cfg.Seed+500, numSeeds), func(seed uint64) (row, error) {
			inst := workload.RandomBatched(seed, 8, 3, rounds, []int{2, 4, 8}, 1.2, 0.6, false)
			// Use an even n for the replicated-cache policies.
			t, err := sched.Run(inst.Clone(), mk.pol(), sched.Options{N: m + m%2, Record: true})
			if err != nil {
				return row{}, err
			}
			t.Schedule.N = m + m%2
			agg, err := offline.Aggregate(inst.Clone(), t.Schedule)
			if err != nil {
				return row{}, err
			}
			outRes, err := sched.Replay(agg.Virtual, agg.Out)
			if err != nil {
				return row{}, fmt.Errorf("T′ invalid: %w", err)
			}
			r := row{
				execEqual:   outRes.Executed == agg.InputResult.Executed,
				inReconfig:  agg.InputResult.Cost.Reconfig,
				outReconfig: outRes.Cost.Reconfig,
			}
			if r.inReconfig > 0 {
				r.factor = float64(r.outReconfig) / float64(r.inReconfig)
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		preserved := 0
		var factors []float64
		for _, r := range rows {
			if r.execEqual {
				preserved++
			}
			if r.factor > 0 {
				factors = append(factors, r.factor)
			}
		}
		s := stats.Summarize(factors)
		tab.AddRow(mk.name, len(rows), preserved, s.Mean, s.Max)
	}
	tab.AddNote("T uses m=%d (+1 if odd for replicated policies) resources, T′ uses 3× as many on the distributed instance I′", m)
	return &Report{ID: "T8", Title: "Aggregate transformation", Tables: []*stats.Table{tab}}, nil
}
