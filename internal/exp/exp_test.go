package exp

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised by DESIGN.md §3 and §5 must be registered.
	want := []string{"F1", "F2", "F3", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
		"T10", "T11", "T12", "T13", "A1", "A2", "A3", "A4", "A5"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID resolved")
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Experiment{ID: "T1", Title: "dup"})
}

// TestAllExperimentsQuick runs the entire suite in Quick mode and renders
// every report in both formats. This is the integration test that keeps
// every figure/table reproducible.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report ID %s for experiment %s", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 && len(rep.Figures) == 0 {
				t.Fatalf("%s produced an empty report", e.ID)
			}
			var text, md strings.Builder
			if err := rep.Render(&text); err != nil {
				t.Fatal(err)
			}
			if err := rep.RenderMarkdown(&md); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text.String(), e.ID) || !strings.Contains(md.String(), e.ID) {
				t.Fatalf("%s: renders missing the experiment ID", e.ID)
			}
		})
	}
}

func TestSweepPreservesOrder(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i
	}
	got, err := Sweep(4, items, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestSweepPropagatesError(t *testing.T) {
	items := []int{0, 1, 2, 3}
	sentinel := errors.New("boom")
	_, err := Sweep(2, items, func(x int) (int, error) {
		if x == 2 {
			return 0, sentinel
		}
		return x, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepEdgeCases(t *testing.T) {
	// Zero items.
	got, err := Sweep(3, nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v %v", got, err)
	}
	// Workers clamp to item count and to ≥1.
	got, err = Sweep(0, []int{5}, func(x int) (int, error) { return x + 1, nil })
	if err != nil || got[0] != 6 {
		t.Fatalf("workers=0 sweep: %v %v", got, err)
	}
}

// Property: Sweep(fn) == map(fn) for pure functions, any worker count.
func TestSweepEqualsMapProperty(t *testing.T) {
	f := func(xs []int8, workers uint8) bool {
		items := make([]int, len(xs))
		for i, x := range xs {
			items[i] = int(x)
		}
		got, err := Sweep(int(workers%8), items, func(x int) (string, error) {
			return fmt.Sprint(x * 3), nil
		})
		if err != nil {
			return false
		}
		for i, x := range items {
			if got[i] != fmt.Sprint(x*3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedRange(t *testing.T) {
	got := seedRange(10, 3)
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("seedRange = %v", got)
	}
}

func TestReportRenderToDiscard(t *testing.T) {
	e, _ := ByID("T3")
	rep, err := e.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}
