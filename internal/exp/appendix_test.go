package exp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestAppendixAClosedForms pins the exact cost formulas from Appendix A:
// ΔLRU pays nΔ in reconfigurations (it caches the n/2 short colors once,
// each in two locations) and drops all 2^k long jobs; the witness OFF
// pays Δ + 2^{k−j−1}·n·Δ (one reconfiguration plus all short jobs
// dropped).
func TestAppendixAClosedForms(t *testing.T) {
	const n, delta = 8, 2
	for _, jk := range [][2]int{{5, 7}, {6, 8}, {7, 9}} {
		j, k := jk[0], jk[1]
		inst, err := workload.AppendixA(n, delta, j, k)
		if err != nil {
			t.Fatal(err)
		}
		lru, err := sched.Run(inst.Clone(), policy.NewDLRU(), sched.Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if lru.Cost.Reconfig != int64(n*delta) {
			t.Errorf("j=%d: ΔLRU reconfig cost %d, paper predicts nΔ = %d", j, lru.Cost.Reconfig, n*delta)
		}
		if lru.Cost.Drop != int64(1)<<k {
			t.Errorf("j=%d: ΔLRU drop cost %d, paper predicts 2^k = %d", j, lru.Cost.Drop, 1<<k)
		}
		off, err := sched.Run(inst.Clone(), policy.NewStatic(workload.AppendixALongColor(n)), sched.Options{N: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(delta) + int64(1<<(k-j-1))*int64(n)*int64(delta)
		if off.Cost.Total() != want {
			t.Errorf("j=%d: OFF witness cost %d, paper predicts Δ + 2^{k−j−1}nΔ = %d", j, off.Cost.Total(), want)
		}
	}
}

// TestAppendixBWitnessClosedForm pins Appendix B's witness: one resource
// serving the short color then each long color in its own era executes
// everything and pays exactly (n/2+1)·Δ.
func TestAppendixBWitnessClosedForm(t *testing.T) {
	const n = 8
	delta := n + 1
	j := 4
	for _, k := range []int{5, 6, 7} {
		inst, err := workload.AppendixB(n, delta, j, k)
		if err != nil {
			t.Fatal(err)
		}
		off, err := sched.Replay(inst.Clone(), appendixBWitness(inst, n, j, k))
		if err != nil {
			t.Fatal(err)
		}
		if off.Dropped != 0 {
			t.Errorf("k=%d: witness dropped %d jobs, paper predicts 0", k, off.Dropped)
		}
		want := int64(n/2+1) * int64(delta)
		if off.Cost.Total() != want {
			t.Errorf("k=%d: witness cost %d, paper predicts (n/2+1)Δ = %d", k, off.Cost.Total(), want)
		}
	}
}

// TestF1SlopeMatchesTheory guards the headline reproduction: the measured
// ΔLRU ratio must track the predicted slope 2^{j+1}/(nΔ) within 25%, and
// ΔLRU-EDF must stay below ratio 3 on the same inputs.
func TestF1SlopeMatchesTheory(t *testing.T) {
	const n, delta = 8, 2
	for _, j := range []int{5, 6, 7} {
		k := j + 2
		inst, err := workload.AppendixA(n, delta, j, k)
		if err != nil {
			t.Fatal(err)
		}
		off, err := sched.Run(inst.Clone(), policy.NewStatic(workload.AppendixALongColor(n)), sched.Options{N: 1})
		if err != nil {
			t.Fatal(err)
		}
		lru, err := sched.Run(inst.Clone(), policy.NewDLRU(), sched.Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		combo, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(lru.Cost.Total()) / float64(off.Cost.Total())
		theory := float64(int64(2)<<j) / float64(n*delta)
		if ratio < 0.75*theory || ratio > 1.25*theory {
			t.Errorf("j=%d: ΔLRU ratio %.2f vs theory slope %.2f", j, ratio, theory)
		}
		comboRatio := float64(combo.Cost.Total()) / float64(off.Cost.Total())
		if comboRatio > 3 {
			t.Errorf("j=%d: ΔLRU-EDF ratio %.2f exceeds 3 on Appendix A", j, comboRatio)
		}
	}
}

// TestF2EDFGrowsDLRUEDFBounded guards the Appendix B reproduction shape.
func TestF2EDFGrowsDLRUEDFBounded(t *testing.T) {
	const n = 8
	delta := n + 1
	j := 4
	var prev int64
	for i, k := range []int{5, 6, 7, 8} {
		inst, err := workload.AppendixB(n, delta, j, k)
		if err != nil {
			t.Fatal(err)
		}
		edf, err := sched.Run(inst.Clone(), policy.NewEDF(), sched.Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && edf.Cost.Total() <= prev {
			t.Errorf("k=%d: EDF cost %d did not grow (prev %d)", k, edf.Cost.Total(), prev)
		}
		prev = edf.Cost.Total()
		combo, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if combo.Cost.Total() > 3*int64(n/2+1)*int64(delta) {
			t.Errorf("k=%d: ΔLRU-EDF cost %d not bounded by 3× the witness", k, combo.Cost.Total())
		}
	}
}
