package exp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T1", Title: "Theorem 1: ΔLRU-EDF vs exact OPT (n = 8m)", Run: runT1})
	Register(Experiment{ID: "T2", Title: "Lemma 3.2: eligible drops vs certified OFF drop bound", Run: runT2})
	Register(Experiment{ID: "T3", Title: "Lemmas 3.3 & 3.4: epoch-charged reconfigurations and ineligible drops", Run: runT3})
	Register(Experiment{ID: "T7", Title: "Lemma 3.8 / Corollary 3.1: DS-Seq-EDF vs Par-EDF drops", Run: runT7})
}

// runT1 measures the competitive ratio of ΔLRU-EDF with n = 8m resources
// against the exact brute-force optimum with m = 1 resource on hundreds of
// tiny rate-limited batched instances, and of the full Solve pipeline on
// tiny unbatched instances.
func runT1(cfg Config) (*Report, error) {
	seeds := seedRange(cfg.Seed+1, 300)
	if cfg.Quick {
		seeds = seedRange(cfg.Seed+1, 60)
	}
	const m, n = 1, 8

	type sample struct {
		ratioCore  float64
		ratioSolve float64
		opt        int64
		skipped    bool
	}
	samples, err := Sweep(cfg.workers(), seeds, func(seed uint64) (sample, error) {
		// Rate-limited batched instance for the Theorem 1 core claim.
		inst := workload.RandomSmall(seed, 3, 2, 13, []int{1, 2, 4}, 3, true)
		// Workers: 1 — the sweep itself already fans seeds across cores.
		opt, err := offline.SolveExact(inst, m, exactOpts)
		var lim *offline.BruteForceLimitError
		if errors.As(err, &lim) {
			return sample{skipped: true}, nil
		}
		if err != nil {
			return sample{}, err
		}
		res, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return sample{}, err
		}
		// Unbatched instance for the end-to-end Theorem 3 pipeline.
		raw := workload.RandomSmall(seed+1_000_000, 3, 2, 13, []int{1, 2, 4}, 3, false)
		optRaw, err := offline.SolveExact(raw, m, exactOpts)
		if errors.As(err, &lim) {
			return sample{skipped: true}, nil
		}
		if err != nil {
			return sample{}, err
		}
		solved, err := core.Solve(raw.Clone(), n)
		if err != nil {
			return sample{}, err
		}
		den := func(v int64) float64 {
			if v == 0 {
				return 1
			}
			return float64(v)
		}
		return sample{
			ratioCore:  float64(res.Cost.Total()) / den(opt),
			ratioSolve: float64(solved.Cost.Total()) / den(optRaw),
			opt:        opt,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	var coreRatios, solveRatios []float64
	skipped := 0
	for _, s := range samples {
		if s.skipped {
			skipped++
			continue
		}
		coreRatios = append(coreRatios, s.ratioCore)
		solveRatios = append(solveRatios, s.ratioSolve)
	}
	sc := stats.Summarize(coreRatios)
	ss := stats.Summarize(solveRatios)
	tab := stats.NewTable("T1: cost ratio vs exact OPT over random tiny instances",
		"algorithm", "instances", "mean ratio", "p90 ratio", "max ratio")
	tab.AddRow("ΔLRU-EDF (rate-limited batched, n=8m)", sc.N, sc.Mean, sc.P90, sc.Max)
	tab.AddRow("Solve = VarBatch∘Distribute∘ΔLRU-EDF (unbatched, n=8m)", ss.N, ss.Mean, ss.P90, ss.Max)
	tab.AddNote("m=%d (OPT), n=%d (online); %d instances skipped (brute-force budget)", m, n, skipped)
	return &Report{ID: "T1", Title: "Theorem 1 / Theorem 3 ratios vs exact OPT", Tables: []*stats.Table{tab}}, nil
}

// runT2 validates the proof chain of Lemma 3.2 at scale: the eligible drop
// cost of ΔLRU-EDF with n resources is at most the Par-EDF drop bound with
// m = n/8 resources, which certifies DropCost_OFF from below.
func runT2(cfg Config) (*Report, error) {
	numSeeds := 120
	rounds := 512
	if cfg.Quick {
		numSeeds, rounds = 30, 256
	}
	const n = 16
	const m = n / 8

	type sample struct {
		eligible, ineligible int64
		parEDF               int64
		holds                bool
	}
	samples, err := Sweep(cfg.workers(), seedRange(cfg.Seed+42, numSeeds), func(seed uint64) (sample, error) {
		inst := workload.RandomBatched(seed, 24, 4, rounds, []int{1, 2, 4, 8, 16}, 0.8, 0.7, true)
		pol := core.NewDLRUEDF()
		if _, err := sched.Run(inst.Clone(), pol, sched.Options{N: n}); err != nil {
			return sample{}, err
		}
		bound := offline.ParEDFDrops(inst.Clone(), m, 1)
		return sample{
			eligible:   pol.EligibleDrops(),
			ineligible: pol.IneligibleDrops(),
			parEDF:     bound,
			holds:      pol.EligibleDrops() <= bound,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	holds := 0
	var slack []float64
	tab := stats.NewTable("T2: eligible drops vs Par-EDF certified bound (first 10 seeds shown)",
		"seed", "eligible drops", "ineligible drops", "ParEDF(m) bound", "holds")
	for i, s := range samples {
		if s.holds {
			holds++
		}
		if s.parEDF > 0 {
			slack = append(slack, float64(s.eligible)/float64(s.parEDF))
		}
		if i < 10 {
			tab.AddRow(int(cfg.Seed)+42+i, s.eligible, s.ineligible, s.parEDF, fmt.Sprint(s.holds))
		}
	}
	sum := stats.Summarize(slack)
	tab.AddNote("Lemma 3.2 chain held on %d/%d instances; eligible/ParEDF ratio %s", holds, len(samples), sum.String())
	return &Report{ID: "T2", Title: "Lemma 3.2 validation", Tables: []*stats.Table{tab}}, nil
}

// runT3 validates the amortized bounds of Lemmas 3.3 and 3.4 on random and
// adversarial inputs: ReconfigCost ≤ 4·numEpochs·Δ and IneligibleDropCost
// ≤ numEpochs·Δ.
func runT3(cfg Config) (*Report, error) {
	numSeeds := 100
	rounds := 512
	if cfg.Quick {
		numSeeds, rounds = 25, 256
	}
	const n = 16

	type sample struct {
		name           string
		reconfig, inel int64
		epochs         int
		delta          int
		l33ok, l34ok   bool
	}
	run := func(inst *sched.Instance) (sample, error) {
		pol := core.NewDLRUEDF()
		res, err := sched.Run(inst.Clone(), pol, sched.Options{N: n})
		if err != nil {
			return sample{}, err
		}
		epochs := pol.Tracker().NumEpochs()
		s := sample{
			name:     inst.Name,
			reconfig: res.Cost.Reconfig,
			inel:     pol.IneligibleDrops(),
			epochs:   epochs,
			delta:    inst.Delta,
		}
		s.l33ok = s.reconfig <= int64(4*epochs*inst.Delta)
		s.l34ok = s.inel <= int64(epochs*inst.Delta)
		return s, nil
	}

	samples, err := Sweep(cfg.workers(), seedRange(cfg.Seed+7, numSeeds), func(seed uint64) (sample, error) {
		return run(workload.RandomBatched(seed, 24, 5, rounds, []int{1, 2, 4, 8, 16}, 0.9, 0.6, true))
	})
	if err != nil {
		return nil, err
	}
	instA, err := workload.AppendixA(n, 2, 6, 8)
	if err != nil {
		return nil, err
	}
	sA, err := run(instA)
	if err != nil {
		return nil, err
	}
	samples = append(samples, sA)

	ok33, ok34 := 0, 0
	var ratio33, ratio34 []float64
	for _, s := range samples {
		if s.l33ok {
			ok33++
		}
		if s.l34ok {
			ok34++
		}
		if s.epochs > 0 {
			ratio33 = append(ratio33, float64(s.reconfig)/float64(4*s.epochs*s.delta))
			ratio34 = append(ratio34, float64(s.inel)/float64(s.epochs*s.delta))
		}
	}
	tab := stats.NewTable("T3: epoch-amortized bounds",
		"bound", "instances", "held", "mean utilization of bound", "max utilization")
	s33 := stats.Summarize(ratio33)
	s34 := stats.Summarize(ratio34)
	tab.AddRow("Lemma 3.3: reconfig ≤ 4·epochs·Δ", len(samples), ok33, s33.Mean, s33.Max)
	tab.AddRow("Lemma 3.4: ineligible drops ≤ epochs·Δ", len(samples), ok34, s34.Mean, s34.Max)
	return &Report{ID: "T3", Title: "Lemmas 3.3/3.4 validation", Tables: []*stats.Table{tab}}, nil
}

// runT7 validates the Lemma 3.8 / Corollary 3.1 machinery: on nice inputs
// (Par-EDF drop-free) DS-Seq-EDF is drop-free, and in general DS-Seq-EDF
// with m resources at double speed drops at most as much as Par-EDF.
func runT7(cfg Config) (*Report, error) {
	numSeeds := 150
	rounds := 256
	if cfg.Quick {
		numSeeds, rounds = 40, 128
	}
	const m = 3

	type sample struct {
		parDrops, dsDrops int64
		nice              bool
		lemma38ok         bool
		cor31ok           bool
	}
	samples, err := Sweep(cfg.workers(), seedRange(cfg.Seed+99, numSeeds), func(seed uint64) (sample, error) {
		inst := workload.RandomBatched(seed, 8, 3, rounds, []int{1, 2, 4, 8}, 0.5, 0.5, true)
		par := offline.ParEDFDrops(inst.Clone(), m, 1)
		ds, err := sched.Run(inst.Clone(), policy.NewPureSeqEDF(), sched.Options{N: m, Speed: 2})
		if err != nil {
			return sample{}, err
		}
		s := sample{parDrops: par, dsDrops: ds.Cost.Drop, nice: par == 0}
		s.lemma38ok = !s.nice || s.dsDrops == 0
		s.cor31ok = s.dsDrops <= s.parDrops
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	nice, l38, c31 := 0, 0, 0
	for _, s := range samples {
		if s.nice {
			nice++
		}
		if s.lemma38ok {
			l38++
		}
		if s.cor31ok {
			c31++
		}
	}
	tab := stats.NewTable("T7: DS-Seq-EDF vs Par-EDF", "claim", "applicable", "held")
	tab.AddRow("Lemma 3.8: nice input ⇒ DS-Seq-EDF drop-free", nice, l38-(len(samples)-nice))
	tab.AddRow("Corollary 3.1: DS-Seq-EDF drops ≤ Par-EDF drops", len(samples), c31)
	tab.AddNote("m=%d, DS-Seq-EDF at speed 2; %d/%d inputs were nice", m, nice, len(samples))
	return &Report{ID: "T7", Title: "Lemma 3.8 / Corollary 3.1 validation", Tables: []*stats.Table{tab}}, nil
}
