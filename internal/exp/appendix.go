package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "F1", Title: "Appendix A: ΔLRU is not resource competitive", Run: runF1})
	Register(Experiment{ID: "F2", Title: "Appendix B: EDF is not resource competitive", Run: runF2})
}

// runF1 regenerates the Appendix A lower bound: as j grows (with k = j+2),
// the ratio of ΔLRU's cost to OFF's grows as Ω(2^{j+1}/(nΔ)) while
// ΔLRU-EDF stays within a small constant of OFF on the very same inputs.
// OFF here is the paper's witness — one resource statically caching the
// long-term color — which upper-bounds the optimum.
func runF1(cfg Config) (*Report, error) {
	n, delta := 8, 2
	js := []int{5, 6, 7, 8, 9, 10}
	if cfg.Quick {
		js = []int{5, 6, 7}
	}
	fig := stats.NewFigure("F1: cost ratio vs j on Appendix A inputs (n=8, Δ=2, k=j+2)", "j", "cost / OFF cost")
	sLRU := fig.NewSeries("ΔLRU / OFF")
	sCombo := fig.NewSeries("ΔLRU-EDF / OFF")
	sTheory := fig.NewSeries("2^{j+1}/(nΔ) (theory slope)")
	tab := stats.NewTable("F1 detail", "j", "k", "jobs", "ΔLRU cost", "ΔLRU-EDF cost", "OFF cost", "ΔLRU ratio", "ΔLRU-EDF ratio")

	type row struct {
		j               int
		lru, combo, off int64
		jobs            int
	}
	rows, err := Sweep(cfg.workers(), js, func(j int) (row, error) {
		k := j + 2
		inst, err := workload.AppendixA(n, delta, j, k)
		if err != nil {
			return row{}, err
		}
		lru, err := sched.Run(inst.Clone(), policy.NewDLRU(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		combo, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		// The paper's OFF: a single resource caching the long-term color
		// throughout (cost Δ + all short-term drops).
		off, err := sched.Run(inst.Clone(), policy.NewStatic(workload.AppendixALongColor(n)), sched.Options{N: 1})
		if err != nil {
			return row{}, err
		}
		return row{
			j:     j,
			lru:   lru.Cost.Total(),
			combo: combo.Cost.Total(),
			off:   off.Cost.Total(),
			jobs:  inst.TotalJobs(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		offC := float64(r.off)
		sLRU.Add(float64(r.j), float64(r.lru)/offC)
		sCombo.Add(float64(r.j), float64(r.combo)/offC)
		sTheory.Add(float64(r.j), float64(int64(2)<<r.j)/float64(n*delta))
		tab.AddRow(r.j, r.j+2, r.jobs, r.lru, r.combo, r.off,
			float64(r.lru)/offC, float64(r.combo)/offC)
	}
	tab.AddNote("OFF = paper's witness (1 resource pinned on the long color); ΔLRU/ΔLRU-EDF get n=%d resources", n)
	return &Report{ID: "F1", Title: "Appendix A construction", Figures: []*stats.Figure{fig}, Tables: []*stats.Table{tab}}, nil
}

// runF2 regenerates the Appendix B lower bound: as k−j grows, EDF's
// thrashing makes its cost ratio grow as Ω(2^{k−j−1}/(n/2+1)) while
// ΔLRU-EDF stays bounded. OFF is the paper's witness schedule built
// explicitly: the short color for rounds [0, 2^{k−1}), then the color with
// delay 2^{k+p} throughout [2^{k+p−1}, 2^{k+p}).
func runF2(cfg Config) (*Report, error) {
	n := 8
	delta := n + 1 // paper needs Δ > n
	j := 4         // 2^j = 16 > Δ = 9
	ks := []int{5, 6, 7, 8, 9}
	if cfg.Quick {
		ks = []int{5, 6, 7}
	}
	fig := stats.NewFigure(fmt.Sprintf("F2: cost ratio vs k−j on Appendix B inputs (n=%d, Δ=%d, j=%d)", n, delta, j), "k-j", "cost / OFF cost")
	sEDF := fig.NewSeries("EDF / OFF")
	sCombo := fig.NewSeries("ΔLRU-EDF / OFF")
	tab := stats.NewTable("F2 detail", "k", "jobs", "EDF cost", "EDF reconfig", "ΔLRU-EDF cost", "OFF cost", "EDF ratio", "ΔLRU-EDF ratio")

	type row struct {
		k                      int
		edf, edfRe, combo, off int64
		jobs                   int
	}
	rows, err := Sweep(cfg.workers(), ks, func(k int) (row, error) {
		inst, err := workload.AppendixB(n, delta, j, k)
		if err != nil {
			return row{}, err
		}
		edf, err := sched.Run(inst.Clone(), policy.NewEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		combo, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		off, err := sched.Replay(inst.Clone(), appendixBWitness(inst, n, j, k))
		if err != nil {
			return row{}, err
		}
		return row{
			k:     k,
			edf:   edf.Cost.Total(),
			edfRe: edf.Cost.Reconfig,
			combo: combo.Cost.Total(),
			off:   off.Cost.Total(),
			jobs:  inst.TotalJobs(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		offC := float64(r.off)
		sEDF.Add(float64(r.k-j), float64(r.edf)/offC)
		sCombo.Add(float64(r.k-j), float64(r.combo)/offC)
		tab.AddRow(r.k, r.jobs, r.edf, r.edfRe, r.combo, r.off,
			float64(r.edf)/offC, float64(r.combo)/offC)
	}
	tab.AddNote("OFF = paper's witness (1 resource, era per long color); EDF/ΔLRU-EDF get n=%d resources", n)
	return &Report{ID: "F2", Title: "Appendix B construction", Figures: []*stats.Figure{fig}, Tables: []*stats.Table{tab}}, nil
}

// appendixBWitness builds the offline schedule from Appendix B: one
// resource configured with the short color during [0, 2^{k−1}) and with
// the color of delay bound 2^{k+p} during [2^{k+p−1}, 2^{k+p}).
func appendixBWitness(inst *sched.Instance, n, j, k int) *sched.Schedule {
	horizon := inst.Horizon()
	s := &sched.Schedule{Policy: "AppendixB-OFF", N: 1, Speed: 1}
	for r := 0; r < horizon; r++ {
		var c sched.Color
		switch {
		case r < 1<<(k-1):
			c = 0 // the short color
		default:
			// Find p with 2^{k+p−1} ≤ r < 2^{k+p}.
			c = sched.Color(1) // color with delay 2^k covers [2^{k−1}, 2^k)
			for p := 0; p < n/2; p++ {
				if r >= 1<<(k+p-1) && r < 1<<(k+p) {
					c = sched.Color(p + 1)
					break
				}
			}
			if r >= 1<<(k+n/2-1) {
				c = sched.Color(n / 2) // tail: stay on the last color
			}
		}
		s.Assign = append(s.Assign, []sched.Color{c})
	}
	return s
}
