package exp

import (
	"errors"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T10", Title: "Lemma 5.3: punctualizing arbitrary offline schedules", Run: runT10})
	Register(Experiment{ID: "T11", Title: "Lemma 3.5: OPT = Ω(numEpochs·Δ)", Run: runT11})
}

// runT10 exercises the Lemma 5.1–5.3 construction: arbitrary offline
// schedules S (here: recorded runs of several policies) are transformed
// into punctual schedules S′ with 7m resources; S′ must stay feasible for
// the VarBatch-transformed instance, execute exactly S's jobs, and keep
// the reconfiguration blow-up factor small.
func runT10(cfg Config) (*Report, error) {
	numSeeds := 25
	rounds := 512
	if cfg.Quick {
		numSeeds, rounds = 8, 128
	}
	const m = 2

	makers := []struct {
		name string
		pol  func() sched.Policy
	}{
		{"GreedyPending(m)", func() sched.Policy { return policy.NewGreedyPending() }},
		{"PureSeqEDF(m)", func() sched.Policy { return policy.NewPureSeqEDF() }},
		{"BestStatic(m)", nil}, // handled specially below
	}

	tab := stats.NewTable("T10: Punctualize S → S′ (7m resources, punctual by construction)",
		"input schedule", "instances", "executions preserved", "mean reconfig factor", "max reconfig factor")
	for _, mk := range makers {
		type row struct {
			ok      bool
			factor  float64
			applies bool
		}
		rows, err := Sweep(cfg.workers(), seedRange(cfg.Seed+700, numSeeds), func(seed uint64) (row, error) {
			inst := workload.ZipfMix(seed, 8, 3, rounds, []int{2, 4, 8, 16}, 2.5, 1.0)
			var rec *sched.Result
			var err error
			if mk.pol != nil {
				rec, err = sched.Run(inst.Clone(), mk.pol(), sched.Options{N: m, Record: true})
			} else {
				cols := offline.BestStaticColors(inst, m)
				rec, err = sched.Run(inst.Clone(), policy.NewStatic(cols...), sched.Options{N: m, Record: true})
			}
			if err != nil {
				return row{}, err
			}
			out, err := offline.Punctualize(inst.Clone(), rec.Schedule)
			if err != nil {
				return row{}, err
			}
			batched := core.BuildVarBatched(inst.Clone())
			res, err := sched.Replay(batched, out)
			if err != nil {
				return row{}, err
			}
			r := row{ok: res.Executed == rec.Executed}
			if rec.Reconfigs > 0 {
				r.factor = float64(res.Reconfigs) / float64(rec.Reconfigs)
				r.applies = true
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		ok := 0
		var factors []float64
		for _, r := range rows {
			if r.ok {
				ok++
			}
			if r.applies {
				factors = append(factors, r.factor)
			}
		}
		s := stats.Summarize(factors)
		tab.AddRow(mk.name, len(rows), ok, s.Mean, s.Max)
	}
	tab.AddNote("S uses m=%d resources; S′ uses 7m and is validated by replay against the VarBatch-transformed instance", m)
	return &Report{ID: "T10", Title: "Punctualization", Tables: []*stats.Table{tab}}, nil
}

// runT11 validates Lemma 3.5 empirically: on instances where every color
// has at least Δ jobs, the optimal offline cost is Ω(numEpochs·Δ); the
// table reports the observed ratio numEpochs·Δ / OPT, which the lemma
// bounds by a constant.
func runT11(cfg Config) (*Report, error) {
	numSeeds := 150
	if cfg.Quick {
		numSeeds = 40
	}
	const m, n = 1, 8

	type sample struct {
		ratio   float64
		skipped bool
	}
	samples, err := Sweep(cfg.workers(), seedRange(cfg.Seed+800, numSeeds), func(seed uint64) (sample, error) {
		inst := workload.RandomSmall(seed, 3, 2, 14, []int{1, 2, 4}, 3, true)
		// Lemma 3.5 assumes ≥ Δ jobs per appearing color; enforce by
		// duplicating light colors' arrivals.
		per := inst.JobsPerColor()
		for c, jobs := range per {
			if jobs > 0 && jobs < inst.Delta {
				inst.AddJobs(0, sched.Color(c), inst.Delta-jobs)
			}
		}
		inst.Normalize()
		opt, err := offline.SolveExact(inst, m, exactOpts)
		var lim *offline.BruteForceLimitError
		if errors.As(err, &lim) {
			return sample{skipped: true}, nil
		}
		if err != nil {
			return sample{}, err
		}
		pol := core.NewDLRUEDF()
		if _, err := sched.Run(inst.Clone(), pol, sched.Options{N: n}); err != nil {
			return sample{}, err
		}
		epochs := pol.Tracker().NumEpochs()
		den := float64(opt)
		if den == 0 {
			den = 1
		}
		return sample{ratio: float64(epochs*inst.Delta) / den}, nil
	})
	if err != nil {
		return nil, err
	}
	var ratios []float64
	skipped := 0
	for _, s := range samples {
		if s.skipped {
			skipped++
			continue
		}
		ratios = append(ratios, s.ratio)
	}
	sum := stats.Summarize(ratios)
	tab := stats.NewTable("T11: numEpochs·Δ / OPT over tiny instances (bounded ⇔ Lemma 3.5)",
		"instances", "mean", "p90", "max")
	tab.AddRow(sum.N, sum.Mean, sum.P90, sum.Max)
	tab.AddNote("m=%d for OPT, ΔLRU-EDF runs with n=%d; %d instances skipped (brute-force budget)", m, n, skipped)
	return &Report{ID: "T11", Title: "Lemma 3.5 validation", Tables: []*stats.Table{tab}}, nil
}
