package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T4", Title: "Resource augmentation sweep (cost ratio vs n/m)", Run: runT4})
	Register(Experiment{ID: "T5", Title: "Theorem 2 / Lemma 4.2: the Distribute reduction", Run: runT5})
	Register(Experiment{ID: "T6", Title: "Theorem 3: full solver on the general problem", Run: runT6})
	Register(Experiment{ID: "F3", Title: "Intro dilemma: thrashing vs underutilization", Run: runF3})
}

// runT4 sweeps the online algorithm's resource advantage n/m against a
// fixed certified lower bound with m reference resources, showing the
// cost ratio collapsing toward a constant as the augmentation grows —
// the shape Theorem 1 predicts.
func runT4(cfg Config) (*Report, error) {
	rounds := 2048
	if cfg.Quick {
		rounds = 512
	}
	const m = 2
	inst := workload.ZipfMix(cfg.Seed+2024, 32, 6, rounds, []int{2, 4, 8, 16, 32, 64}, float64(3*m), 0.9)
	lb := offline.LowerBound(inst.Clone(), m)

	ns := []int{4, 8, 16, 32, 64}
	fig := stats.NewFigure(fmt.Sprintf("T4: cost ratio vs augmentation (m=%d reference)", m), "n/m", "cost / LB(m)")
	sCombo := fig.NewSeries("ΔLRU-EDF")
	sSolve := fig.NewSeries("Solve pipeline")
	tab := stats.NewTable("T4 detail", "n", "n/m", "ΔLRU-EDF cost", "Solve cost", "LB(m)", "ΔLRU-EDF ratio", "Solve ratio")

	type row struct {
		n            int
		combo, solve int64
	}
	rows, err := Sweep(cfg.workers(), ns, func(n int) (row, error) {
		combo, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		solve, err := core.Solve(inst.Clone(), n)
		if err != nil {
			return row{}, err
		}
		return row{n: n, combo: combo.Cost.Total(), solve: solve.Cost.Total()}, nil
	})
	if err != nil {
		return nil, err
	}
	den := float64(lb.Value())
	if den == 0 {
		den = 1
	}
	for _, r := range rows {
		sCombo.Add(float64(r.n)/m, float64(r.combo)/den)
		sSolve.Add(float64(r.n)/m, float64(r.solve)/den)
		tab.AddRow(r.n, r.n/m, r.combo, r.solve, lb.Value(),
			float64(r.combo)/den, float64(r.solve)/den)
	}
	tab.AddNote("LB(m)=max(ParEDF drops=%d, Σ min(Δ, jobs)=%d); ratios are conservative upper bounds on the true competitive ratio",
		lb.ParEDFDrops, lb.ColorCost)
	return &Report{ID: "T4", Title: "Augmentation sweep", Figures: []*stats.Figure{fig}, Tables: []*stats.Table{tab}}, nil
}

// runT5 exercises the Distribute reduction on batched instances whose
// batches exceed the rate limit, checking Lemma 4.2 (the mapped schedule
// costs no more than the virtual one) and comparing against running
// ΔLRU-EDF directly on the unreduced instance.
func runT5(cfg Config) (*Report, error) {
	numSeeds := 40
	rounds := 512
	if cfg.Quick {
		numSeeds, rounds = 10, 256
	}
	const n = 16

	type row struct {
		virtual, mapped, direct int64
		lemmaOK                 bool
		virtColors              int
	}
	rows, err := Sweep(cfg.workers(), seedRange(cfg.Seed+300, numSeeds), func(seed uint64) (row, error) {
		// Heavy batches: mean per slot well above the D_ℓ rate limit.
		inst := workload.RandomBatched(seed, 12, 4, rounds, []int{2, 4, 8, 16}, 2.5, 0.6, false)
		run, err := core.DistributeWith(inst.Clone(), n, core.NewDLRUEDF())
		if err != nil {
			return row{}, err
		}
		direct, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		return row{
			virtual:    run.VirtualResult.Cost.Total(),
			mapped:     run.Result.Cost.Total(),
			direct:     direct.Cost.Total(),
			lemmaOK:    run.Result.Cost.Total() <= run.VirtualResult.Cost.Total(),
			virtColors: run.Virtual.NumColors(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	ok := 0
	var vs, ms, ds []float64
	for _, r := range rows {
		if r.lemmaOK {
			ok++
		}
		vs = append(vs, float64(r.virtual))
		ms = append(ms, float64(r.mapped))
		ds = append(ds, float64(r.direct))
	}
	tab := stats.NewTable("T5: Distribute on over-rate batched inputs",
		"quantity", "mean", "p50", "max")
	for _, e := range []struct {
		name string
		xs   []float64
	}{
		{"virtual schedule S′ cost", vs},
		{"mapped schedule S cost", ms},
		{"direct ΔLRU-EDF cost (no reduction)", ds},
	} {
		s := stats.Summarize(e.xs)
		tab.AddRow(e.name, s.Mean, s.P50, s.Max)
	}
	tab.AddNote("Lemma 4.2 (cost(S) ≤ cost(S′)) held on %d/%d instances", ok, len(rows))
	return &Report{ID: "T5", Title: "Distribute reduction", Tables: []*stats.Table{tab}}, nil
}

// runT6 runs the complete solver on the general problem [Δ | 1 | D_ℓ | 1]
// — unbatched arrivals, including non-power-of-two delay bounds — against
// the baselines and the certified lower bound, one table row per workload.
func runT6(cfg Config) (*Report, error) {
	rounds := 2048
	if cfg.Quick {
		rounds = 512
	}
	const m = 2
	const n = 16

	workloads := []*sched.Instance{
		workload.Router(cfg.Seed+1, 4, 8, rounds, 2.5*m),
		workload.Datacenter(cfg.Seed+2, 12, 8, 256, rounds/256+1, 3.0*m),
		workload.ZipfMix(cfg.Seed+3, 24, 8, rounds, []int{3, 5, 12, 48, 100}, 2.5*m, 1.1),
	}

	tab := stats.NewTable("T6: general problem, n=16 online vs m=2 reference",
		"workload", "algorithm", "total", "reconfig", "drop", "ratio vs LB")
	for _, inst := range workloads {
		lb := offline.LowerBound(inst.Clone(), m)
		den := float64(lb.Value())
		if den == 0 {
			den = 1
		}
		type entry struct {
			name string
			cost sched.Cost
		}
		var entries []entry
		solve, err := core.Solve(inst.Clone(), n)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{"Solve (paper)", solve.Cost})
		for _, pol := range []sched.Policy{core.NewDLRUEDF(), policy.NewDLRU(), policy.NewEDF(),
			policy.NewHysteresis(1), policy.NewRandomEvict(7), policy.NewGreedyPending(), policy.NewNever()} {
			res, err := sched.Run(inst.Clone(), pol, sched.Options{N: n})
			if err != nil {
				return nil, err
			}
			entries = append(entries, entry{res.Policy, res.Cost})
		}
		static, err := offline.StaticCost(inst.Clone(), offline.BestStaticColors(inst, n), n)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{"BestStatic (offline, n)", static.Cost})
		for _, e := range entries {
			tab.AddRow(inst.Name, e.name, e.cost.Total(), e.cost.Reconfig, e.cost.Drop,
				float64(e.cost.Total())/den)
		}
		tab.AddRow(inst.Name, "LB(m) certificate", lb.Value(), "-", "-", 1.0)
	}
	tab.AddNote("ratios vs LB(m=%d) are conservative; LB is a lower bound on OPT's cost with m resources", m)
	return &Report{ID: "T6", Title: "Full solver on general workloads", Tables: []*stats.Table{tab}}, nil
}

// runF3 regenerates the introduction's dilemma: background jobs with a far
// deadline compete with intermittent short-term bursts. As the idle gap
// between bursts grows, the eager EDF policy thrashes (reconfiguration
// cost stays high) while the recency-only ΔLRU policy underutilizes
// (drop cost stays high); the combination tracks the better of the two.
func runF3(cfg Config) (*Report, error) {
	horizon := 4096
	if cfg.Quick {
		horizon = 1024
	}
	gaps := []int{2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		gaps = []int{4, 16, 64, 256}
	}
	const n = 8
	fig := stats.NewFigure("F3: total cost vs idle-gap length (background + short-term mix)", "gap", "total cost")
	series := map[string]*stats.Series{}
	for _, name := range []string{"EDF", "DLRU", "DLRU-EDF", "GreedyPending"} {
		series[name] = fig.NewSeries(name)
	}
	tab := stats.NewTable("F3 detail", "gap", "policy", "total", "reconfig", "drop")

	for _, gap := range gaps {
		inst, err := workload.Thrashing(n/2, 6, 8, 2048, 4, gap, horizon)
		if err != nil {
			return nil, err
		}
		pols := []sched.Policy{policy.NewEDF(), policy.NewDLRU(), core.NewDLRUEDF(), policy.NewGreedyPending()}
		results, err := Sweep(cfg.workers(), pols, func(p sched.Policy) (*sched.Result, error) {
			return sched.Run(inst.Clone(), p, sched.Options{N: n})
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			series[res.Policy].Add(float64(gap), float64(res.Cost.Total()))
			tab.AddRow(gap, res.Policy, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop)
		}
	}
	return &Report{ID: "F3", Title: "Thrashing vs underutilization", Figures: []*stats.Figure{fig}, Tables: []*stats.Table{tab}}, nil
}
