package exp

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	Register(Experiment{ID: "T13", Title: "Adversary search: automatic worst-case hunting", Run: runT13})
}

// runT13 turns the competitive analysis into an automated experiment: a
// randomized hill climber searches the space of tiny instances for the
// input maximizing each policy's cost ratio against the *exact* optimum.
// The flawed baselines should admit worse ratios than ΔLRU-EDF within the
// same search budget — the machine-discovered cousin of the Appendix A/B
// constructions.
func runT13(cfg Config) (*Report, error) {
	base := adversary.Config{
		Seed:            cfg.Seed + 1300,
		Restarts:        12,
		StepsPerRestart: 80,
		MaxRounds:       20,
		DelayChoices:    []int{1, 2, 4, 8},
		Batched:         true,
	}
	if cfg.Quick {
		base.Restarts = 4
		base.StepsPerRestart = 30
		base.MaxRounds = 12
		base.DelayChoices = []int{1, 2, 4}
	}

	type variant struct {
		name string
		mk   func() sched.Policy
	}
	variants := []variant{
		{"ΔLRU-EDF (paper)", func() sched.Policy { return core.NewDLRUEDF() }},
		{"ΔLRU", func() sched.Policy { return policy.NewDLRU() }},
		{"EDF", func() sched.Policy { return policy.NewEDF() }},
		{"GreedyPending", func() sched.Policy { return policy.NewGreedyPending() }},
		{"Hysteresis θ=1", func() sched.Policy { return policy.NewHysteresis(1) }},
	}

	tab := stats.NewTable("T13: worst ratio found vs exact OPT (n=8, m=1, tiny rate-limited instances)",
		"policy", "worst ratio", "policy cost", "OPT", "instances scored", "worst instance")
	results, err := Sweep(cfg.workers(), variants, func(v variant) (*adversary.Result, error) {
		return adversary.Search(base, v.mk)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		profile := fmt.Sprintf("%d colors, %d jobs, delays %v",
			r.Instance.NumColors(), r.Instance.TotalJobs(), r.Instance.Delays)
		tab.AddRow(variants[i].name, r.Ratio, r.PolicyCost, r.Opt, r.Evaluated, profile)
	}
	tab.AddNote("randomized hill climbing with restarts; every ratio is certified by brute-force OPT; same budget for every policy")
	tab.AddNote("the ΔLRU/EDF asymptotic separations need horizons beyond brute-force reach (see F1/F2); within this space the search instead certifies the un-analyzed heuristics (greedy, hysteresis) as non-competitive")
	return &Report{ID: "T13", Title: "Adversary search", Tables: []*stats.Table{tab}}, nil
}
