package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T12", Title: "Discretization sweep: the round model vs continuous arrivals", Run: runT12})
}

// runT12 probes the substitution DESIGN.md documents: the paper's model is
// slotted, but the motivating systems see continuous-time packet arrivals.
// The same continuous trace is discretized at several round durations with
// wall-clock QoS tolerances held fixed, so the sweep varies how many
// rounds fit inside each delay bound at constant per-round load. The
// measured shape: coarser rounds (tighter per-round deadlines) lower the
// online cost but raise the certified bound, while finer rounds leave more
// slack — and more simultaneously-eligible colors, hence more
// reconfiguration churn. The ratio stays within a small constant across a
// 4× granularity range, which is what makes the slotted abstraction
// usable.
func runT12(cfg Config) (*Report, error) {
	rounds := 2048
	if cfg.Quick {
		rounds = 512
	}
	const m = 2
	const load = 5.0

	dts := []float64{2.0, 1.0, 0.5}
	fig := stats.NewFigure("T12: cost ratio vs discretization granularity", "rounds per wall-clock unit", "cost / LB(m)")
	sCombo := fig.NewSeries("ΔLRU-EDF / LB")
	tab := stats.NewTable("T12 detail", "dt", "rounds", "jobs", "n", "ΔLRU-EDF cost", "LB(m)", "ratio")

	type row struct {
		dt          float64
		roundsN     int
		jobs        int
		n           int
		cost, bound int64
	}
	rows, err := Sweep(cfg.workers(), dts, func(dt float64) (row, error) {
		inst, err := workload.Continuous(cfg.Seed+500, 4, 8, rounds, load, dt)
		if err != nil {
			return row{}, err
		}
		// Scale capacity with granularity so wall-clock service capacity
		// stays fixed: halving dt doubles rounds, so the same n suffices;
		// we keep n fixed and let the model show its shape.
		n := 16
		res, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: n})
		if err != nil {
			return row{}, err
		}
		lb := offline.LowerBound(inst.Clone(), m)
		return row{
			dt:      dt,
			roundsN: inst.NumRounds(),
			jobs:    inst.TotalJobs(),
			n:       n,
			cost:    res.Cost.Total(),
			bound:   lb.Value(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		den := float64(r.bound)
		if den == 0 {
			den = 1
		}
		sCombo.Add(1/r.dt, float64(r.cost)/den)
		tab.AddRow(fmt.Sprintf("%.2g", r.dt), r.roundsN, r.jobs, r.n, r.cost, r.bound,
			float64(r.cost)/den)
	}
	tab.AddNote("same continuous trace discretized at different round durations; wall-clock delay tolerances held fixed; LB uses m=%d", m)
	return &Report{ID: "T12", Title: "Discretization sweep", Figures: []*stats.Figure{fig}, Tables: []*stats.Table{tab}}, nil
}
