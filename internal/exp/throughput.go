package exp

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "T9", Title: "Simulator throughput and sweep scaling", Run: runT9})
}

// runT9 measures raw simulator throughput (rounds and jobs per second for
// ΔLRU-EDF on a large router trace) and the scaling of the parallel sweep
// runner across worker counts.
func runT9(cfg Config) (*Report, error) {
	rounds := 50_000
	if cfg.Quick {
		rounds = 5_000
	}
	inst := workload.Router(cfg.Seed+11, 8, 16, rounds, 24)

	start := time.Now()
	res, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: 32})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	tab := stats.NewTable("T9a: single-run throughput (ΔLRU-EDF, n=32)",
		"rounds", "jobs", "wall time", "rounds/s", "jobs/s")
	tab.AddRow(res.Rounds, inst.TotalJobs(), elapsed.Round(time.Millisecond).String(),
		float64(res.Rounds)/elapsed.Seconds(), float64(inst.TotalJobs())/elapsed.Seconds())

	// Sweep scaling: the same batch of independent simulations at
	// different worker counts.
	seeds := seedRange(cfg.Seed+900, 16)
	small := rounds / 10
	scaling := stats.NewTable("T9b: parallel sweep scaling (16 independent runs)",
		"workers", "wall time", "speedup")
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		if _, err := Sweep(w, seeds, func(seed uint64) (int64, error) {
			in := workload.Router(seed, 4, 16, small, 16)
			r, err := sched.Run(in, core.NewDLRUEDF(), sched.Options{N: 16})
			if err != nil {
				return 0, err
			}
			return r.Cost.Total(), nil
		}); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if w == 1 {
			base = d
		}
		scaling.AddRow(w, d.Round(time.Millisecond).String(), float64(base)/float64(d))
	}
	scaling.AddNote("work-stealing sharded runner (exp.Sweep); results are bit-identical at every worker count. "+
		"Speedup is bounded by available cores: this host has GOMAXPROCS=%d, so speedup ≈ min(workers, %d) minus scheduling overhead (≈1.0 throughout on a single-core host)",
		runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0))
	return &Report{ID: "T9", Title: "Throughput", Tables: []*stats.Table{tab, scaling}}, nil
}
