// Package exp is the experiment harness: every table and figure listed in
// DESIGN.md §3 has a registered experiment here that regenerates it. The
// harness provides a work-stealing sharded sweep runner (Sweep) whose
// results are bit-identical for every worker count, a uniform report
// format, and a registry consumed by cmd/rrbench and the root benchmarks.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/offline"
	"repro/internal/stats"
)

// exactOpts is how experiments call the exact solver: a generous state
// budget (branch-and-bound states are cheap — see offline.SolveExact) and
// no root-splitting parallelism, because the per-seed work already runs
// inside a Sweep worker.
var exactOpts = offline.ExactOptions{MaxStates: 2_000_000, Workers: 1}

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks parameters (fewer seeds, shorter horizons) so the
	// whole suite runs in seconds; benchmarks and CI use it.
	Quick bool
	// Seed offsets every generator seed, for re-running with fresh
	// randomness.
	Seed uint64
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report is the output of one experiment: tables and/or figures.
type Report struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Figures []*stats.Figure
}

// Render writes the report in human-readable text form.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "==== %s — %s ====\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, f := range r.Figures {
		if err := f.Table().Render(w); err != nil {
			return err
		}
		if err := f.RenderASCII(w, 60, 12); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the report as markdown (for EXPERIMENTS.md).
func (r *Report) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, f := range r.Figures {
		if err := f.Table().RenderMarkdown(w); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := t.RenderMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
)

// Register adds an experiment; package init functions call it.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID fetches an experiment.
func ByID(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sweepShard is one contiguous slice of the item index space. Workers
// claim indices with an atomic fetch-add, so a shard can be drained
// cooperatively by its owner and any number of thieves without locks.
// The pad keeps neighboring cursors out of one cache line (the cursors
// are the only contended words in a sweep).
type sweepShard struct {
	next atomic.Int64 // next unclaimed index
	hi   int64        // exclusive upper bound, immutable after setup
	_    [48]byte     // pad to a cache line
}

// remaining reports how many indices are still unclaimed. It may
// transiently overshoot to a negative value when thieves race past hi;
// callers treat anything ≤ 0 as empty.
func (s *sweepShard) remaining() int64 { return s.hi - s.next.Load() }

// Sweep runs fn over items on a work-stealing sharded runner and returns
// results in item order: results[i] = fn(items[i]).
//
// The index space is split into one contiguous shard per worker; each
// worker drains its own shard front to back via an atomic cursor and,
// when it runs dry, steals from the shard with the most remaining work
// until every shard is empty. Stealing keeps all cores busy when item
// costs are skewed (one slow simulation no longer serializes the tail),
// while the shard-local fast path avoids contending on a single shared
// cursor.
//
// Because results[i] depends only on items[i] — never on which worker ran
// it or in what order — the output is bit-identical for every worker
// count. Experiments rely on this: per-instance seeds are derived from
// the item (seedRange), so a sweep at -workers 8 reproduces -workers 1
// exactly (pinned by TestSweepDeterministicAcrossWorkers).
//
// Every item runs even when one fails; the first error in item order is
// returned. Experiments treat any error as fatal.
func Sweep[T, R any](workers int, items []T, fn func(T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	errs := make([]error, n)
	if workers == 1 {
		for i, it := range items {
			results[i], errs[i] = fn(it)
		}
		return results, firstError(errs)
	}

	// One contiguous shard per worker; the first n%workers shards take the
	// extra items.
	shards := make([]sweepShard, workers)
	per, rem := n/workers, n%workers
	lo := 0
	for s := range shards {
		size := per
		if s < rem {
			size++
		}
		shards[s].next.Store(int64(lo))
		shards[s].hi = int64(lo + size)
		lo += size
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(own int) {
			defer wg.Done()
			for s := own; ; {
				sh := &shards[s]
				for {
					i := sh.next.Add(1) - 1
					if i >= sh.hi {
						break
					}
					results[i], errs[i] = fn(items[i])
				}
				// Steal from the fullest shard. A victim may be drained
				// between the scan and the claim; the claim loop above
				// simply comes up empty and we rescan.
				s = -1
				var most int64
				for v := range shards {
					if r := shards[v].remaining(); r > most {
						s, most = v, r
					}
				}
				if s < 0 {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return results, firstError(errs)
}

// firstError returns the first non-nil error in item order.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// seedRange builds a slice of consecutive seeds for sweeps.
func seedRange(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
