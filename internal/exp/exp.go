// Package exp is the experiment harness: every table and figure listed in
// DESIGN.md §3 has a registered experiment here that regenerates it. The
// harness provides a parallel parameter-sweep runner, a uniform report
// format, and a registry consumed by cmd/rrbench and the root benchmarks.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks parameters (fewer seeds, shorter horizons) so the
	// whole suite runs in seconds; benchmarks and CI use it.
	Quick bool
	// Seed offsets every generator seed, for re-running with fresh
	// randomness.
	Seed uint64
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report is the output of one experiment: tables and/or figures.
type Report struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Figures []*stats.Figure
}

// Render writes the report in human-readable text form.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "==== %s — %s ====\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, f := range r.Figures {
		if err := f.Table().Render(w); err != nil {
			return err
		}
		if err := f.RenderASCII(w, 60, 12); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the report as markdown (for EXPERIMENTS.md).
func (r *Report) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, f := range r.Figures {
		if err := f.Table().RenderMarkdown(w); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := t.RenderMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
)

// Register adds an experiment; package init functions call it.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID fetches an experiment.
func ByID(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sweep runs fn over items on a bounded worker pool, preserving result
// order. The first error cancels nothing (remaining items still run) but
// is returned; experiments treat any error as fatal.
func Sweep[T, R any](workers int, items []T, fn func(T) (R, error)) ([]R, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// seedRange builds a slice of consecutive seeds for sweeps.
func seedRange(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
