package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	Register(Experiment{ID: "A1", Title: "Ablation: replication (two locations per color)", Run: runA1})
	Register(Experiment{ID: "A2", Title: "Ablation: LRU/EDF capacity split", Run: runA2})
	Register(Experiment{ID: "A3", Title: "Ablation: eligibility threshold factor", Run: runA3})
	Register(Experiment{ID: "A4", Title: "Ablation: timestamp lag rule", Run: runA4})
}

// ablationInstances returns the fixed workload panel every ablation runs
// on: an adversarial input, a bursty router mix and a batched random mix.
func ablationInstances(cfg Config) ([]*sched.Instance, error) {
	rounds := 1024
	if cfg.Quick {
		rounds = 256
	}
	instA, err := workload.AppendixA(8, 2, 6, 8)
	if err != nil {
		return nil, err
	}
	return []*sched.Instance{
		instA,
		workload.Router(cfg.Seed+71, 4, 8, rounds, 5),
		workload.RandomBatched(cfg.Seed+72, 16, 5, rounds, []int{2, 4, 8, 16}, 0.9, 0.7, true),
	}, nil
}

func runAblation(cfg Config, id, title string, variants []struct {
	Name string
	Opts []core.Option
}) (*Report, error) {
	insts, err := ablationInstances(cfg)
	if err != nil {
		return nil, err
	}
	const n = 16
	tab := stats.NewTable(fmt.Sprintf("%s: ΔLRU-EDF variants, n=%d", id, n),
		"workload", "variant", "total", "reconfig", "drop")
	for _, inst := range insts {
		results, err := Sweep(cfg.workers(), variants, func(v struct {
			Name string
			Opts []core.Option
		}) (*sched.Result, error) {
			return sched.Run(inst.Clone(), core.NewDLRUEDF(v.Opts...), sched.Options{N: n})
		})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			tab.AddRow(inst.Name, variants[i].Name, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop)
		}
	}
	return &Report{ID: id, Title: title, Tables: []*stats.Table{tab}}, nil
}

func runA1(cfg Config) (*Report, error) {
	return runAblation(cfg, "A1", "Replication ablation", []struct {
		Name string
		Opts []core.Option
	}{
		{"replicated (paper)", nil},
		{"no replication (n distinct colors)", []core.Option{core.WithoutReplication()}},
	})
}

func runA2(cfg Config) (*Report, error) {
	var variants []struct {
		Name string
		Opts []core.Option
	}
	for _, share := range []float64{0, 0.25, 0.5, 0.75, 1} {
		variants = append(variants, struct {
			Name string
			Opts []core.Option
		}{fmt.Sprintf("LRU share %.2f", share), []core.Option{core.WithLRUShare(share)}})
	}
	return runAblation(cfg, "A2", "LRU/EDF split ablation (0 = pure EDF half, 1 = pure LRU half)", variants)
}

func runA3(cfg Config) (*Report, error) {
	var variants []struct {
		Name string
		Opts []core.Option
	}
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		variants = append(variants, struct {
			Name string
			Opts []core.Option
		}{fmt.Sprintf("threshold %.2f·Δ", f), []core.Option{core.WithEligibilityThreshold(f)}})
	}
	return runAblation(cfg, "A3", "Eligibility threshold ablation (paper: 1·Δ)", variants)
}

func runA4(cfg Config) (*Report, error) {
	return runAblation(cfg, "A4", "Timestamp lag ablation", []struct {
		Name string
		Opts []core.Option
	}{
		{"lagged (paper: wraps visible at next multiple)", nil},
		{"immediate (wraps visible at once)", []core.Option{core.WithImmediateTimestamps()}},
	})
}
