package policy

import (
	"fmt"
	"slices"

	"repro/internal/sched"
)

// Static holds a fixed color assignment for the whole run: each of the
// given colors occupies one location (colors may repeat to replicate). It
// is the natural "no reconfiguration after warm-up" baseline; with the
// right color choice it is what OFF plays in the Appendix A construction.
type Static struct {
	colors []sched.Color
	assign []sched.Color
}

// NewStatic returns a policy that configures the given colors in round 0
// and never reconfigures again. If fewer colors than locations are given,
// the remaining locations stay black.
func NewStatic(colors ...sched.Color) *Static {
	return &Static{colors: colors}
}

// Name implements sched.Policy.
func (s *Static) Name() string { return fmt.Sprintf("Static%v", s.colors) }

// Reset implements sched.Policy.
func (s *Static) Reset(env sched.Env) {
	if len(s.colors) > env.N {
		panic(fmt.Sprintf("policy: Static given %d colors for %d locations", len(s.colors), env.N))
	}
	s.assign = make([]sched.Color, env.N)
	for i := range s.assign {
		if i < len(s.colors) {
			s.assign[i] = s.colors[i]
		} else {
			s.assign[i] = sched.NoColor
		}
	}
}

// Reconfigure implements sched.Policy.
func (s *Static) Reconfigure(*sched.Context) []sched.Color { return s.assign }

// Never keeps every resource black forever, dropping every job. Its cost
// equals the total number of jobs; it upper-bounds every sane policy and
// anchors "how bad can it get" rows in experiment tables.
type Never struct{ assign []sched.Color }

// NewNever returns the drop-everything policy.
func NewNever() *Never { return &Never{} }

// Name implements sched.Policy.
func (n *Never) Name() string { return "Never" }

// Reset implements sched.Policy.
func (n *Never) Reset(env sched.Env) {
	n.assign = make([]sched.Color, env.N)
	for i := range n.assign {
		n.assign[i] = sched.NoColor
	}
}

// Reconfigure implements sched.Policy.
func (n *Never) Reconfigure(*sched.Context) []sched.Color { return n.assign }

// GreedyPending reconfigures every round to the colors with the most
// pending jobs, with no hysteresis at all. It is the canonical thrashing
// baseline from the introduction: maximal utilization, unbounded
// reconfiguration cost.
type GreedyPending struct {
	env     sched.Env
	cache   *Cache
	scratch []sched.Color
}

// NewGreedyPending returns the maximally eager baseline.
func NewGreedyPending() *GreedyPending { return &GreedyPending{} }

// Name implements sched.Policy.
func (g *GreedyPending) Name() string { return "GreedyPending" }

// Reset implements sched.Policy.
func (g *GreedyPending) Reset(env sched.Env) {
	g.env = env
	g.cache = NewCache(env.N, false)
}

// Reconfigure implements sched.Policy.
func (g *GreedyPending) Reconfigure(ctx *sched.Context) []sched.Color {
	cand := ctx.NonidleColors(g.scratch[:0])
	slices.SortFunc(cand, func(a, b sched.Color) int {
		pa, pb := ctx.Pending(a), ctx.Pending(b)
		if pa != pb {
			return pb - pa // descending backlog
		}
		return int(a) - int(b)
	})
	if len(cand) > g.cache.Capacity() {
		cand = cand[:g.cache.Capacity()]
	}
	SyncCacheToSet(g.cache, cand)
	g.scratch = cand[:0]
	return g.cache.Assignment()
}
