package policy

import (
	"testing"

	"repro/internal/sched"
)

func TestCacheReplicatedLayout(t *testing.T) {
	c := NewCache(4, true)
	if c.Capacity() != 2 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	if !c.Insert(7) || !c.Insert(9) {
		t.Fatal("Insert failed with free slots")
	}
	if c.Insert(11) {
		t.Fatal("Insert succeeded on a full cache")
	}
	a := c.Assignment()
	if len(a) != 4 {
		t.Fatalf("Assignment length %d", len(a))
	}
	// Replication: location i+n/2 mirrors location i.
	if a[0] != a[2] || a[1] != a[3] {
		t.Fatalf("replication broken: %v", a)
	}
	count := map[sched.Color]int{}
	for _, col := range a {
		count[col]++
	}
	if count[7] != 2 || count[9] != 2 {
		t.Fatalf("each color must appear exactly twice: %v", a)
	}
}

func TestCacheUnreplicated(t *testing.T) {
	c := NewCache(3, false)
	if c.Capacity() != 3 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	c.Insert(1)
	a := c.Assignment()
	occupied := 0
	for _, col := range a {
		if col != sched.NoColor {
			occupied++
		}
	}
	if occupied != 1 {
		t.Fatalf("one insert should occupy one location: %v", a)
	}
}

func TestCacheEvictReusesSlots(t *testing.T) {
	c := NewCache(4, true)
	c.Insert(1)
	c.Insert(2)
	if !c.Evict(1) {
		t.Fatal("Evict reported missing")
	}
	if c.Evict(1) {
		t.Fatal("double Evict reported present")
	}
	if c.Len() != 1 || c.Contains(1) {
		t.Fatal("evict bookkeeping wrong")
	}
	if !c.Insert(3) {
		t.Fatal("Insert after evict failed")
	}
	if !c.Contains(3) || !c.Contains(2) {
		t.Fatal("contents wrong after reuse")
	}
}

func TestCacheInsertDuplicatePanics(t *testing.T) {
	c := NewCache(4, true)
	c.Insert(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	c.Insert(1)
}

func TestCacheOddReplicatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd replicated cache did not panic")
		}
	}()
	NewCache(3, true)
}

func TestCacheColorsSlotOrder(t *testing.T) {
	c := NewCache(6, true)
	c.Insert(5)
	c.Insert(1)
	c.Insert(3)
	got := c.Colors(nil)
	// Slots are allocated lowest-index first, so insertion order holds.
	want := []sched.Color{5, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Colors = %v, want %v", got, want)
		}
	}
}

func TestSyncCacheToSet(t *testing.T) {
	c := NewCache(6, true)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	SyncCacheToSet(c, []sched.Color{2, 4})
	if c.Len() != 2 || !c.Contains(2) || !c.Contains(4) || c.Contains(1) || c.Contains(3) {
		t.Fatalf("SyncCacheToSet wrong: %v", c.Colors(nil))
	}
}
