package policy

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestRandomEvictDeterministicPerSeed(t *testing.T) {
	inst := workload.RandomBatched(21, 10, 3, 128, []int{1, 2, 4, 8}, 0.9, 0.7, true)
	a, err := sched.Run(inst.Clone(), NewRandomEvict(5), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Run(inst.Clone(), NewRandomEvict(5), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed diverged: %v vs %v", a.Cost, b.Cost)
	}
}

func TestRandomEvictSeedsDiffer(t *testing.T) {
	inst := workload.RandomBatched(22, 12, 3, 256, []int{1, 2, 4, 8}, 0.9, 0.8, true)
	a, err := sched.Run(inst.Clone(), NewRandomEvict(1), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for s := uint64(2); s < 8; s++ {
		b, err := sched.Run(inst.Clone(), NewRandomEvict(s), sched.Options{N: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost != b.Cost {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("six different seeds produced identical costs; eviction not randomized?")
	}
}

func TestRandomEvictConservationAndExecution(t *testing.T) {
	inst := workload.RandomBatched(23, 8, 2, 96, []int{1, 2, 4}, 0.8, 0.7, true)
	res, err := sched.Run(inst, NewRandomEvict(3), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != inst.TotalJobs() {
		t.Fatal("conservation broken")
	}
	if res.Executed == 0 {
		t.Fatal("randomized policy executed nothing")
	}
}
