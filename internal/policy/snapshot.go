// Checkpoint/restore (sched.Snapshotter) implementations for every
// policy in this package. Shared conventions:
//
//   - Each policy writes a small version tag first, so layout changes
//     are detected instead of misparsed.
//   - RestoreState is always invoked on a policy freshly Reset with the
//     Env the snapshot was taken under (sched.RestoreStream guarantees
//     this); static derived state therefore already exists and only the
//     dynamic state is serialized.
//   - Everything read back is validated; corrupt input surfaces as an
//     error via the decoder, never a panic.
//   - Per-round scratch buffers (scratch, cachedScratch, …) are cleared
//     before use each round and carry no state, so they are not
//     serialized.
package policy

import (
	"slices"

	"repro/internal/sched"
	"repro/internal/snap"
)

const (
	dlruSnapVersion       = 1
	edfSnapVersion        = 1
	seqEDFSnapVersion     = 1
	staticSnapVersion     = 1
	neverSnapVersion      = 1
	greedySnapVersion     = 1
	randomSnapVersion     = 1
	hysteresisSnapVersion = 1
)

// Compile-time checks that every policy implements sched.Snapshotter.
var (
	_ sched.Snapshotter = (*DLRU)(nil)
	_ sched.Snapshotter = (*EDF)(nil)
	_ sched.Snapshotter = (*SeqEDF)(nil)
	_ sched.Snapshotter = (*Static)(nil)
	_ sched.Snapshotter = (*Never)(nil)
	_ sched.Snapshotter = (*GreedyPending)(nil)
	_ sched.Snapshotter = (*RandomEvict)(nil)
	_ sched.Snapshotter = (*Hysteresis)(nil)
)

func checkVersion(d *snap.Decoder, got, want int, what string) bool {
	if d.Err() != nil {
		return false
	}
	if got != want {
		d.Failf("policy: %s snapshot version %d, this build reads %d", what, got, want)
		return false
	}
	return true
}

// SnapshotState implements sched.Snapshotter.
func (p *DLRU) SnapshotState(e *snap.Encoder) {
	e.Int(dlruSnapVersion)
	p.tr.Snapshot(e)
	p.cache.Snapshot(e)
}

// RestoreState implements sched.Snapshotter.
func (p *DLRU) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), dlruSnapVersion, "DLRU") {
		return d.Err()
	}
	if err := p.tr.Restore(d); err != nil {
		return err
	}
	return p.cache.Restore(d)
}

// SnapshotState implements sched.Snapshotter.
func (p *EDF) SnapshotState(e *snap.Encoder) {
	e.Int(edfSnapVersion)
	p.tr.Snapshot(e)
	p.cache.Snapshot(e)
}

// RestoreState implements sched.Snapshotter.
func (p *EDF) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), edfSnapVersion, "EDF") {
		return d.Err()
	}
	if err := p.tr.Restore(d); err != nil {
		return err
	}
	return p.cache.Restore(d)
}

// SnapshotState implements sched.Snapshotter. The pure flag needs no
// explicit field: it determines both Name (checked by RestoreStream)
// and the tracker's eligibility threshold (checked by Tracker.Restore).
func (p *SeqEDF) SnapshotState(e *snap.Encoder) {
	e.Int(seqEDFSnapVersion)
	p.tr.Snapshot(e)
	p.cache.Snapshot(e)
}

// RestoreState implements sched.Snapshotter.
func (p *SeqEDF) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), seqEDFSnapVersion, "SeqEDF") {
		return d.Err()
	}
	if err := p.tr.Restore(d); err != nil {
		return err
	}
	return p.cache.Restore(d)
}

// SnapshotState implements sched.Snapshotter. Static carries no dynamic
// state: its assignment is rebuilt by Reset, and its color list is part
// of its Name, which RestoreStream matches against the snapshot.
func (p *Static) SnapshotState(e *snap.Encoder) { e.Int(staticSnapVersion) }

// RestoreState implements sched.Snapshotter.
func (p *Static) RestoreState(d *snap.Decoder) error {
	checkVersion(d, d.Int(), staticSnapVersion, "Static")
	return d.Err()
}

// SnapshotState implements sched.Snapshotter. Never is stateless.
func (p *Never) SnapshotState(e *snap.Encoder) { e.Int(neverSnapVersion) }

// RestoreState implements sched.Snapshotter.
func (p *Never) RestoreState(d *snap.Decoder) error {
	checkVersion(d, d.Int(), neverSnapVersion, "Never")
	return d.Err()
}

// SnapshotState implements sched.Snapshotter. GreedyPending rebuilds
// its desired set from pending counts every round, but the cache's slot
// and free-stack layout is history it must keep.
func (p *GreedyPending) SnapshotState(e *snap.Encoder) {
	e.Int(greedySnapVersion)
	p.cache.Snapshot(e)
}

// RestoreState implements sched.Snapshotter.
func (p *GreedyPending) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), greedySnapVersion, "GreedyPending") {
		return d.Err()
	}
	return p.cache.Restore(d)
}

// SnapshotState implements sched.Snapshotter. The RNG's internal state
// is part of the checkpoint: a restored run must draw the same victims
// the uninterrupted run would.
func (p *RandomEvict) SnapshotState(e *snap.Encoder) {
	e.Int(randomSnapVersion)
	p.tr.Snapshot(e)
	p.cache.Snapshot(e)
	e.Uint64(p.rng.State())
}

// RestoreState implements sched.Snapshotter.
func (p *RandomEvict) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), randomSnapVersion, "RandomEvict") {
		return d.Err()
	}
	if err := p.tr.Restore(d); err != nil {
		return err
	}
	if err := p.cache.Restore(d); err != nil {
		return err
	}
	state := d.Uint64()
	if err := d.Err(); err != nil {
		return err
	}
	p.rng.SetState(state)
	return nil
}

// SnapshotState implements sched.Snapshotter. The credit map is written
// in ascending color order so identical states serialize to identical
// bytes (map iteration order must not leak into the snapshot).
func (p *Hysteresis) SnapshotState(e *snap.Encoder) {
	e.Int(hysteresisSnapVersion)
	e.Float64(p.theta)
	p.cache.Snapshot(e)
	keys := make([]sched.Color, 0, len(p.credit))
	for c := range p.credit {
		keys = append(keys, c)
	}
	slices.Sort(keys)
	e.Int(len(keys))
	for _, c := range keys {
		e.Int(int(c))
		e.Int(p.credit[c])
	}
}

// RestoreState implements sched.Snapshotter.
func (p *Hysteresis) RestoreState(d *snap.Decoder) error {
	if !checkVersion(d, d.Int(), hysteresisSnapVersion, "Hysteresis") {
		return d.Err()
	}
	if th := d.Float64(); d.Err() == nil && th != p.theta {
		d.Failf("policy: snapshot Hysteresis theta %v, this policy has %v", th, p.theta)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := p.cache.Restore(d); err != nil {
		return err
	}
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	clear(p.credit)
	prev := sched.Color(-1)
	for i := 0; i < n; i++ {
		c := sched.Color(d.Int())
		v := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		// Credits exist only for cached colors, never go negative, and
		// are serialized in strictly ascending color order.
		if c <= prev || int(c) >= len(p.env.Delays) || v < 0 || !p.cache.Contains(c) {
			d.Failf("policy: invalid credit entry (color %d, credit %d)", c, v)
			return d.Err()
		}
		p.credit[c] = v
		prev = c
	}
	return nil
}
