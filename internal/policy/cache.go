// Package policy implements the baseline online reconfiguration schemes of
// §3.1 — ΔLRU (§3.1.1), EDF (§3.1.2), Seq-EDF and its double-speed variant
// DS-Seq-EDF (§3.3) — together with naive baselines used in experiments,
// and the shared cache machinery all of them (and the ΔLRU-EDF algorithm
// in internal/core) are built on.
package policy

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/snap"
)

// Cache views the n resources as cache locations holding colors (§3.1).
// With replication enabled (the §3 online algorithms), the first n/2
// locations hold distinct colors and the remaining n/2 replicate them, so
// each cached color occupies exactly two locations and executes up to two
// jobs per mini-round. Seq-EDF disables replication and caches n distinct
// colors.
type Cache struct {
	n      int
	half   int
	slots  []sched.Color
	slotOf map[sched.Color]int
	assign []sched.Color
	free   []int
	repl   bool

	// Scratch reused by SyncTo so the per-round "pin the exact cache
	// content" policies (ΔLRU, GreedyPending) stay allocation-free in the
	// steady state.
	wantSet  map[sched.Color]struct{}
	evictBuf []sched.Color
}

// NewCache builds a cache over n locations. With replicate set, n must be
// even and the distinct capacity is n/2; otherwise the capacity is n.
func NewCache(n int, replicate bool) *Cache {
	if n < 1 {
		panic(fmt.Sprintf("policy: NewCache with n=%d", n))
	}
	half := n
	if replicate {
		if n%2 != 0 {
			panic(fmt.Sprintf("policy: replicated cache needs even n, got %d", n))
		}
		half = n / 2
	}
	c := &Cache{
		n:      n,
		half:   half,
		slots:  make([]sched.Color, half),
		slotOf: make(map[sched.Color]int, half),
		assign: make([]sched.Color, n),
		repl:   replicate,
	}
	for i := range c.slots {
		c.slots[i] = sched.NoColor
	}
	for i := range c.assign {
		c.assign[i] = sched.NoColor
	}
	// Free slots are kept as a stack with the lowest indices on top so
	// slot allocation is deterministic.
	c.free = make([]int, half)
	for i := range c.free {
		c.free[i] = half - 1 - i
	}
	return c
}

// Capacity reports the number of distinct colors the cache can hold.
func (c *Cache) Capacity() int { return c.half }

// Len reports the number of distinct colors currently cached.
func (c *Cache) Len() int { return len(c.slotOf) }

// Contains reports whether color col is cached.
func (c *Cache) Contains(col sched.Color) bool {
	_, ok := c.slotOf[col]
	return ok
}

// Insert caches col in a free slot. It panics if col is already cached and
// reports false when the cache is full.
func (c *Cache) Insert(col sched.Color) bool {
	if _, ok := c.slotOf[col]; ok {
		panic(fmt.Sprintf("policy: Insert of already-cached color %d", col))
	}
	if len(c.free) == 0 {
		return false
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[slot] = col
	c.slotOf[col] = slot
	return true
}

// Evict removes col from the cache, reporting whether it was present.
func (c *Cache) Evict(col sched.Color) bool {
	slot, ok := c.slotOf[col]
	if !ok {
		return false
	}
	delete(c.slotOf, col)
	c.slots[slot] = sched.NoColor
	c.free = append(c.free, slot)
	return true
}

// Colors appends the cached colors to dst in slot order and returns it.
func (c *Cache) Colors(dst []sched.Color) []sched.Color {
	for _, col := range c.slots {
		if col != sched.NoColor {
			dst = append(dst, col)
		}
	}
	return dst
}

// SyncTo makes the cache contain exactly the colors in want, which must
// contain no duplicates and fit the capacity: cached colors outside want
// are evicted, missing ones inserted. The scratch it needs is owned by
// the cache, so steady-state calls do not allocate.
func (c *Cache) SyncTo(want []sched.Color) {
	if c.wantSet == nil {
		c.wantSet = make(map[sched.Color]struct{}, c.half)
	}
	clear(c.wantSet)
	for _, col := range want {
		c.wantSet[col] = struct{}{}
	}
	c.evictBuf = c.evictBuf[:0]
	for _, col := range c.slots {
		if col == sched.NoColor {
			continue
		}
		if _, ok := c.wantSet[col]; !ok {
			c.evictBuf = append(c.evictBuf, col)
		}
	}
	for _, col := range c.evictBuf {
		c.Evict(col)
	}
	for _, col := range want {
		if !c.Contains(col) {
			if !c.Insert(col) {
				panic("policy: Cache.SyncTo overflow")
			}
		}
	}
}

// cacheSnapVersion identifies the Cache checkpoint layout.
const cacheSnapVersion = 1

// Snapshot appends the cache's dynamic state to e: the slot array and
// the free-slot stack, both in exact order. The free-stack order is
// history-dependent and decides which slot the next Insert picks, so it
// must survive for deterministic resume; the slot-of index is derived
// and rebuilt on Restore.
func (c *Cache) Snapshot(e *snap.Encoder) {
	e.Int(cacheSnapVersion)
	e.Int(c.n)
	e.Bool(c.repl)
	e.Int(len(c.slots))
	for _, col := range c.slots {
		e.Int(int(col))
	}
	e.Ints(c.free)
}

// Restore rebuilds the cache from d. The receiver must be freshly
// constructed with the same n/replication the snapshot was taken under.
// Every structural invariant is re-validated — slot colors distinct,
// free stack exactly covering the empty slots — and violations surface
// as errors, never panics.
func (c *Cache) Restore(d *snap.Decoder) error {
	if v := d.Int(); d.Err() == nil && v != cacheSnapVersion {
		d.Failf("policy: cache snapshot version %d, this build reads %d", v, cacheSnapVersion)
	}
	if v := d.Int(); d.Err() == nil && v != c.n {
		d.Failf("policy: snapshot cache has n=%d, this cache has n=%d", v, c.n)
	}
	if v := d.Bool(); d.Err() == nil && v != c.repl {
		d.Failf("policy: snapshot replication flag %v, this cache has %v", v, c.repl)
	}
	if ns := d.Len(); d.Err() == nil && ns != c.half {
		d.Failf("policy: snapshot has %d slots, this cache has %d", ns, c.half)
	}
	if err := d.Err(); err != nil {
		return err
	}
	clear(c.slotOf)
	for i := range c.slots {
		col := sched.Color(d.Int())
		if d.Err() != nil {
			return d.Err()
		}
		if col != sched.NoColor {
			if col < 0 {
				d.Failf("policy: slot %d holds invalid color %d", i, col)
				return d.Err()
			}
			if _, dup := c.slotOf[col]; dup {
				d.Failf("policy: color %d cached in two slots", col)
				return d.Err()
			}
			c.slotOf[col] = i
		}
		c.slots[i] = col
	}
	free := d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	if len(free) != c.half-len(c.slotOf) {
		d.Failf("policy: free stack has %d entries for %d empty slots", len(free), c.half-len(c.slotOf))
		return d.Err()
	}
	seen := make(map[int]bool, len(free))
	for _, f := range free {
		if f < 0 || f >= c.half || c.slots[f] != sched.NoColor || seen[f] {
			d.Failf("policy: free stack entry %d is not a distinct empty slot", f)
			return d.Err()
		}
		seen[f] = true
	}
	c.free = append(c.free[:0], free...)
	return nil
}

// Assignment materializes the location assignment: location i gets
// slots[i], and with replication location i+n/2 mirrors location i. The
// returned slice is reused across calls.
func (c *Cache) Assignment() []sched.Color {
	copy(c.assign, c.slots)
	if c.repl {
		copy(c.assign[c.half:], c.slots)
	}
	return c.assign
}
