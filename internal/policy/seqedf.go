package policy

import (
	"repro/internal/colorstate"
	"repro/internal/sched"
)

// SeqEDF is algorithm Seq-EDF of §3.3: identical to EDF except that it is
// given m resources and uses the entire capacity for distinct colors (no
// replication). Run it at Speed 2 to obtain DS-Seq-EDF, the double-speed
// variant used in the proof of Lemma 3.2; at every mini-round it
// re-evaluates idleness, so a color whose jobs were exhausted in the first
// mini-round yields its slots in the second.
type SeqEDF struct {
	env     sched.Env
	tr      *colorstate.Tracker
	cache   *Cache
	scratch []sched.Color
	pure    bool
}

// NewSeqEDF returns a fresh Seq-EDF policy with the standard Δ-eligibility
// gate of §3.1.
func NewSeqEDF() *SeqEDF { return &SeqEDF{} }

// NewPureSeqEDF returns Seq-EDF with the eligibility threshold lowered to
// a single job, so every color with pending jobs is schedulable. This is
// the variant the proofs of Lemmas 3.8–3.10 reason about when DS-Seq-EDF
// is compared with Par-EDF, which has no eligibility notion either.
func NewPureSeqEDF() *SeqEDF { return &SeqEDF{pure: true} }

// Name implements sched.Policy.
func (s *SeqEDF) Name() string {
	if s.pure {
		return "PureSeqEDF"
	}
	return "SeqEDF"
}

// Reset implements sched.Policy.
func (s *SeqEDF) Reset(env sched.Env) {
	s.env = env
	threshold := env.Delta
	if s.pure {
		threshold = 1
	}
	s.tr = colorstate.NewWithThreshold(env.Delta, threshold, env.Delays)
	s.cache = NewCache(env.N, false)
}

// Tracker exposes the color-state tracker for instrumentation.
func (s *SeqEDF) Tracker() *colorstate.Tracker { return s.tr }

// Reconfigure implements sched.Policy.
func (s *SeqEDF) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 {
		s.tr.BeginRound(ctx.Round, s.cache.Contains)
		for _, b := range ctx.Arrivals {
			s.tr.OnArrival(ctx.Round, b.Color, b.Count)
		}
	}
	elig := s.tr.AppendEligible(s.scratch[:0])
	RankEligible(elig, s.tr, ctx)
	AdmitTop(s.cache, elig, s.cache.Capacity(), nil, ctx)
	s.scratch = elig[:0]
	return s.cache.Assignment()
}
