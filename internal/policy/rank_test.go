package policy

import (
	"testing"

	"repro/internal/colorstate"
	"repro/internal/sched"
)

func TestRankKeyLess(t *testing.T) {
	cases := []struct {
		a, b RankKey
		want bool
	}{
		// Nonidle before idle, regardless of deadline.
		{RankKey{Idle: false, Deadline: 100}, RankKey{Idle: true, Deadline: 1}, true},
		{RankKey{Idle: true, Deadline: 1}, RankKey{Idle: false, Deadline: 100}, false},
		// Earlier deadline first.
		{RankKey{Deadline: 2}, RankKey{Deadline: 5}, true},
		// Deadline tie: smaller delay bound first.
		{RankKey{Deadline: 4, Delay: 2}, RankKey{Deadline: 4, Delay: 8}, true},
		// Full tie: smaller color first.
		{RankKey{Deadline: 4, Delay: 2, C: 1}, RankKey{Deadline: 4, Delay: 2, C: 3}, true},
		// Equal keys: not less.
		{RankKey{Deadline: 4, Delay: 2, C: 1}, RankKey{Deadline: 4, Delay: 2, C: 1}, false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: Less = %v, want %v", i, got, c.want)
		}
	}
}

// rankHarness runs a one-round scenario through the engine so we get a
// real *sched.Context to rank against.
type rankHarness struct {
	tr     *colorstate.Tracker
	got    []sched.Color
	rank   func(tr *colorstate.Tracker, ctx *sched.Context) []sched.Color
	assign []sched.Color
}

func (h *rankHarness) Name() string { return "rankHarness" }
func (h *rankHarness) Reset(env sched.Env) {
	h.tr = colorstate.NewWithThreshold(env.Delta, 1, env.Delays)
	h.assign = make([]sched.Color, env.N)
	for i := range h.assign {
		h.assign[i] = sched.NoColor
	}
}
func (h *rankHarness) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 && ctx.Round == 0 {
		h.tr.BeginRound(0, func(sched.Color) bool { return false })
		for _, b := range ctx.Arrivals {
			h.tr.OnArrival(0, b.Color, b.Count)
		}
		h.got = h.rank(h.tr, ctx)
	}
	return h.assign
}

func TestRankEligibleOrdersByIdlenessDeadlineDelay(t *testing.T) {
	// Three colors: 0 (D=8, has jobs), 1 (D=2, has jobs), 2 (D=2, no
	// jobs → idle but eligible because we inject an arrival then drain?).
	// Simpler: colors 0,1 have jobs; both eligible. Color 1 has the
	// earlier deadline (D=2 < 8), so it ranks first.
	inst := &sched.Instance{Delta: 1, Delays: []int{8, 2}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 1)
	h := &rankHarness{rank: func(tr *colorstate.Tracker, ctx *sched.Context) []sched.Color {
		elig := tr.AppendEligible(nil)
		RankEligible(elig, tr, ctx)
		return append([]sched.Color(nil), elig...)
	}}
	if _, err := sched.Run(inst, h, sched.Options{N: 1}); err != nil {
		t.Fatal(err)
	}
	if len(h.got) != 2 || h.got[0] != 1 || h.got[1] != 0 {
		t.Fatalf("rank order = %v, want [1 0]", h.got)
	}
}

func TestSortByRecencyPrefersCachedOnTies(t *testing.T) {
	tr := colorstate.NewWithThreshold(1, 1, []int{2, 2, 2})
	tr.BeginRound(0, func(sched.Color) bool { return false })
	for c := sched.Color(0); c < 3; c++ {
		tr.OnArrival(0, c, 1)
	}
	// All timestamps equal (0). Cached-first, then color order.
	cached := func(c sched.Color) bool { return c == 2 }
	cols := []sched.Color{0, 1, 2}
	SortByRecency(cols, tr, cached)
	if cols[0] != 2 || cols[1] != 0 || cols[2] != 1 {
		t.Fatalf("recency order = %v, want [2 0 1]", cols)
	}
}
