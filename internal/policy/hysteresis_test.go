package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestHysteresisIgnoresSubThresholdBacklog(t *testing.T) {
	// Δ = 5, θ = 1: a backlog of 4 jobs never justifies a switch.
	inst := &sched.Instance{Delta: 5, Delays: []int{8}}
	inst.AddJobs(0, 0, 4)
	res, err := sched.Run(inst, NewHysteresis(1), sched.Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 0 || res.Dropped != 4 {
		t.Fatalf("sub-threshold backlog triggered work: %v", res)
	}
}

func TestHysteresisAdmitsPayingBacklog(t *testing.T) {
	inst := &sched.Instance{Delta: 3, Delays: []int{8}}
	inst.AddJobs(0, 0, 6)
	res, err := sched.Run(inst, NewHysteresis(1), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 6 || res.Reconfigs != 1 {
		t.Fatalf("paying backlog mishandled: %v", res)
	}
}

func TestHysteresisKeepsColorUntilRepaid(t *testing.T) {
	// Two colors alternate pressure; with hysteresis the policy must not
	// flip-flop every round the way GreedyPending does.
	inst := &sched.Instance{Delta: 4, Delays: []int{8, 8}}
	for r := 0; r < 32; r += 4 {
		inst.AddJobs(r, sched.Color((r/4)%2), 5)
	}
	hys, err := sched.Run(inst.Clone(), NewHysteresis(1), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := sched.Run(inst.Clone(), NewGreedyPending(), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hys.Reconfigs >= greedy.Reconfigs {
		t.Fatalf("hysteresis reconfigured %d ≥ greedy %d", hys.Reconfigs, greedy.Reconfigs)
	}
}

func TestHysteresisThetaDefaultsAndScaling(t *testing.T) {
	inst := workload.RandomBatched(13, 8, 4, 128, []int{2, 4, 8}, 0.9, 0.7, true)
	def, err := sched.Run(inst.Clone(), NewHysteresis(0), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	theta1, err := sched.Run(inst.Clone(), NewHysteresis(1), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if def.Cost != theta1.Cost {
		t.Fatalf("θ=0 should default to θ=1: %v vs %v", def.Cost, theta1.Cost)
	}
	strict, err := sched.Run(inst.Clone(), NewHysteresis(4), sched.Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Reconfigs > theta1.Reconfigs {
		t.Fatalf("higher θ reconfigured more: %d > %d", strict.Reconfigs, theta1.Reconfigs)
	}
}

func TestHysteresisConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := workload.RandomBatched(seed, 8, 3, 96, []int{1, 2, 4, 8}, 0.9, 0.7, true)
		res, err := sched.Run(inst, NewHysteresis(1), sched.Options{N: 6})
		if err != nil {
			return false
		}
		return res.Executed+res.Dropped == inst.TotalJobs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
