package policy

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestDLRUKeepsRecentIdleColors reproduces the Appendix A failure mode in
// miniature: ΔLRU pins the short-delay colors whose timestamps stay
// fresh and starves the long-delay backlog.
func TestDLRUKeepsRecentIdleColors(t *testing.T) {
	inst, err := workload.AppendixA(4, 2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(inst, NewDLRU(), sched.Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	long := workload.AppendixALongColor(4)
	if res.ExecByColor[long] != 0 {
		t.Fatalf("ΔLRU executed %d long jobs; Appendix A predicts 0", res.ExecByColor[long])
	}
	if res.DropsByColor[long] != 1<<6 {
		t.Fatalf("ΔLRU dropped %d long jobs, want %d", res.DropsByColor[long], 1<<6)
	}
}

// TestEDFServesEarliestDeadlines: EDF executes everything on a feasible
// two-color instance and prefers the earlier-deadline color when
// capacity is scarce.
func TestEDFServesEarliestDeadlines(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{2, 8}}
	// Δ=1: every color is eligible from its first job.
	inst.AddJobs(0, 0, 2)                                      // deadline 2 — urgent
	inst.AddJobs(0, 1, 2)                                      // deadline 8 — relaxed
	res, err := sched.Run(inst, NewEDF(), sched.Options{N: 2}) // capacity: 1 distinct color
	if err != nil {
		t.Fatal(err)
	}
	if res.DropsByColor[0] != 0 {
		t.Fatalf("EDF dropped %d urgent jobs", res.DropsByColor[0])
	}
	if res.Executed != 4 {
		t.Fatalf("EDF executed %d of 4 jobs", res.Executed)
	}
}

// TestEDFThrashes reproduces the Appendix B failure mode in miniature:
// EDF pays far more reconfiguration than the witness needs.
func TestEDFThrashes(t *testing.T) {
	inst, err := workload.AppendixB(4, 5, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(inst, NewEDF(), sched.Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The witness uses (n/2+1)·Δ = 15 reconfiguration cost; EDF must pay
	// strictly more than a couple of configurations as it flip-flops.
	if res.Cost.Reconfig <= int64(3*inst.Delta) {
		t.Fatalf("EDF reconfig cost %d suspiciously low; thrashing not reproduced", res.Cost.Reconfig)
	}
}

func TestSeqEDFUsesAllDistinctSlots(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{2, 2, 2}}
	for c := sched.Color(0); c < 3; c++ {
		inst.AddJobs(0, c, 1)
	}
	res, err := sched.Run(inst, NewSeqEDF(), sched.Options{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 3 {
		t.Fatalf("Seq-EDF with 3 distinct slots executed %d of 3", res.Executed)
	}
}

func TestPureSeqEDFIgnoresEligibilityGate(t *testing.T) {
	// One color with a single job and Δ = 5: the gated variant never
	// makes it eligible, the pure variant executes it.
	inst := &sched.Instance{Delta: 5, Delays: []int{4}}
	inst.AddJobs(0, 0, 1)
	gated, err := sched.Run(inst.Clone(), NewSeqEDF(), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := sched.Run(inst.Clone(), NewPureSeqEDF(), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Executed != 0 {
		t.Fatalf("gated Seq-EDF executed %d, want 0 (below Δ)", gated.Executed)
	}
	if pure.Executed != 1 {
		t.Fatalf("pure Seq-EDF executed %d, want 1", pure.Executed)
	}
}

func TestDSSeqEDFDoubleSpeed(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{1}}
	inst.AddJobs(0, 0, 2)
	res, err := sched.Run(inst, NewPureSeqEDF(), sched.Options{N: 1, Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Fatalf("DS-Seq-EDF executed %d of 2 same-round jobs", res.Executed)
	}
}

func TestStaticNeverReconfiguresAfterWarmup(t *testing.T) {
	inst := &sched.Instance{Delta: 7, Delays: []int{2}}
	for r := 0; r < 10; r += 2 {
		inst.AddJobs(r, 0, 1)
	}
	res, err := sched.Run(inst, NewStatic(0), sched.Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 1 {
		t.Fatalf("Static reconfigured %d times, want 1", res.Reconfigs)
	}
	if res.Dropped != 0 {
		t.Fatalf("Static dropped %d", res.Dropped)
	}
}

func TestStaticTooManyColorsPanics(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{1, 1}}
	inst.AddJobs(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Static with more colors than locations did not panic")
		}
	}()
	_, _ = sched.Run(inst, NewStatic(0, 1, 0), sched.Options{N: 2})
}

func TestNeverDropsEverything(t *testing.T) {
	inst := &sched.Instance{Delta: 1, Delays: []int{3}}
	inst.AddJobs(0, 0, 4)
	inst.AddJobs(1, 0, 2)
	res, err := sched.Run(inst, NewNever(), sched.Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 6 || res.Cost.Total() != 6 {
		t.Fatalf("Never: %v", res)
	}
}

func TestGreedyPendingChasesLoad(t *testing.T) {
	// Color 1 has the bigger backlog; GreedyPending serves it while it
	// stays strictly heavier (ties break toward the smaller color index),
	// and the generous deadlines let everything finish.
	inst := &sched.Instance{Delta: 1, Delays: []int{8, 8}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 5)
	res, err := sched.Run(inst, NewGreedyPending(), sched.Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 6 || res.Dropped != 0 {
		t.Fatalf("GreedyPending: %v", res)
	}
	if res.ExecByColor[1] != 5 {
		t.Fatalf("GreedyPending executed %d of the heavy color", res.ExecByColor[1])
	}
}

// TestCachedColorsStayEligibleInvariant: for the §3 policies, every
// cached color must be eligible at all times (the drop-phase rule only
// turns uncached colors ineligible). We verify via the recorded schedule:
// any configured color must have been eligible, which we approximate by
// checking it received ≥ Δ jobs at some point before being configured.
func TestCachedColorsSawDeltaJobs(t *testing.T) {
	delta := 3
	inst := workload.RandomBatched(11, 8, delta, 128, []int{1, 2, 4}, 0.8, 0.7, true)
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return NewDLRU() },
		func() sched.Policy { return NewEDF() },
	} {
		pol := mk()
		res, err := sched.Run(inst.Clone(), pol, sched.Options{N: 8, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		// Cumulative arrivals per color per round.
		cum := make([]int, inst.NumColors())
		configured := map[sched.Color]bool{}
		for r, row := range res.Schedule.Assign {
			if r < inst.NumRounds() {
				for _, b := range inst.Requests[r] {
					cum[b.Color] += b.Count
				}
			}
			for _, c := range row {
				if c != sched.NoColor && !configured[c] {
					configured[c] = true
					if cum[c] < delta {
						t.Fatalf("%s configured color %d after only %d < Δ arrivals", pol.Name(), c, cum[c])
					}
				}
			}
		}
	}
}
