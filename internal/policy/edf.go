package policy

import (
	"repro/internal/colorstate"
	"repro/internal/sched"
)

// EDF is the earliest-deadline-first reconfiguration scheme of §3.1.2:
// eligible colors are ranked (nonidle first, then ascending deadline,
// delay bound, color); any nonidle eligible color in the top n/2 rankings
// that is not cached is brought in, evicting the lowest-ranked cached
// color when the cache is full. Each cached color is replicated in two
// locations.
//
// EDF is *not* resource competitive (Appendix B: it thrashes); it is
// implemented as a baseline and for regenerating the Appendix B
// lower-bound construction.
type EDF struct {
	env     sched.Env
	tr      *colorstate.Tracker
	cache   *Cache
	scratch []sched.Color
}

// NewEDF returns a fresh EDF policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements sched.Policy.
func (e *EDF) Name() string { return "EDF" }

// Reset implements sched.Policy.
func (e *EDF) Reset(env sched.Env) {
	e.env = env
	e.tr = colorstate.New(env.Delta, env.Delays)
	e.cache = NewCache(env.N, true)
}

// Tracker exposes the color-state tracker for instrumentation.
func (e *EDF) Tracker() *colorstate.Tracker { return e.tr }

// Reconfigure implements sched.Policy.
func (e *EDF) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 {
		e.tr.BeginRound(ctx.Round, e.cache.Contains)
		for _, b := range ctx.Arrivals {
			e.tr.OnArrival(ctx.Round, b.Color, b.Count)
		}
	}
	elig := e.tr.AppendEligible(e.scratch[:0])
	RankEligible(elig, e.tr, ctx)
	AdmitTop(e.cache, elig, e.cache.Capacity(), nil, ctx)
	e.scratch = elig[:0]
	return e.cache.Assignment()
}

// AdmitTop applies the EDF admission rule to a ranked candidate list:
// every nonidle candidate among the first `top` ranks that is outside the
// cache is inserted, evicting the lowest-ranked evictable cached color
// when full. ranked must be in best-rank-first order and contain every
// cached evictable color (cached colors are always eligible). protected,
// when non-nil, is indexed by color and marks colors that must not be
// evicted (ΔLRU-EDF protects its LRU half); a plain bool slice rather
// than a map keeps the per-round admission loop allocation-free.
func AdmitTop(cache *Cache, ranked []sched.Color, top int, protected []bool, ctx *sched.Context) {
	if top > len(ranked) {
		top = len(ranked)
	}
	for i := 0; i < top; i++ {
		c := ranked[i]
		if ctx.Pending(c) == 0 || cache.Contains(c) {
			continue
		}
		if cache.Len() == cache.Capacity() {
			if !EvictWorst(cache, ranked, protected) {
				return // nothing evictable; cannot admit more
			}
		}
		cache.Insert(c)
	}
}

// EvictWorst evicts the lowest-ranked cached, unprotected color, scanning
// the ranked list from the back. protected follows the AdmitTop
// convention (nil or indexed by color). It reports whether an eviction
// happened.
func EvictWorst(cache *Cache, ranked []sched.Color, protected []bool) bool {
	for i := len(ranked) - 1; i >= 0; i-- {
		c := ranked[i]
		if protected != nil && protected[c] {
			continue
		}
		if cache.Contains(c) {
			cache.Evict(c)
			return true
		}
	}
	return false
}
