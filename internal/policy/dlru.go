package policy

import (
	"repro/internal/colorstate"
	"repro/internal/sched"
)

// DLRU is the ΔLRU reconfiguration scheme of §3.1.1: it maintains the
// invariant that the n/2 eligible colors with the most recent timestamps
// are cached (each replicated in two locations). Timestamps advance
// roughly every Δ arrivals of a color, and only once a subsequent multiple
// of the color's delay bound has elapsed.
//
// ΔLRU is *not* resource competitive (Appendix A); it is implemented as a
// baseline and for regenerating the Appendix A lower-bound construction.
type DLRU struct {
	env     sched.Env
	tr      *colorstate.Tracker
	cache   *Cache
	scratch []sched.Color
}

// NewDLRU returns a fresh ΔLRU policy.
func NewDLRU() *DLRU { return &DLRU{} }

// Name implements sched.Policy.
func (d *DLRU) Name() string { return "DLRU" }

// Reset implements sched.Policy.
func (d *DLRU) Reset(env sched.Env) {
	d.env = env
	d.tr = colorstate.New(env.Delta, env.Delays)
	d.cache = NewCache(env.N, true)
}

// Tracker exposes the color-state tracker for instrumentation.
func (d *DLRU) Tracker() *colorstate.Tracker { return d.tr }

// Reconfigure implements sched.Policy.
func (d *DLRU) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 {
		d.tr.BeginRound(ctx.Round, d.cache.Contains)
		for _, b := range ctx.Arrivals {
			d.tr.OnArrival(ctx.Round, b.Color, b.Count)
		}
	}
	// Desired content: the Capacity() eligible colors with the most
	// recent timestamps, idleness ignored (that is ΔLRU's flaw).
	elig := d.tr.AppendEligible(d.scratch[:0])
	SortByRecency(elig, d.tr, d.cache.Contains)
	if len(elig) > d.cache.Capacity() {
		elig = elig[:d.cache.Capacity()]
	}
	SyncCacheToSet(d.cache, elig)
	d.scratch = elig[:0]
	return d.cache.Assignment()
}
