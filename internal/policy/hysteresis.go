package policy

import (
	"slices"

	"repro/internal/sched"
)

// Hysteresis is an Everest-inspired baseline (Kokku et al., cited in the
// paper's related work: a run-time scheduler for multi-core network
// processors with per-service delay bounds and a fixed context-switch
// overhead). It admits a color only when its backlog justifies the
// reconfiguration cost — pending ≥ θ·Δ jobs — and keeps a configured
// color until it has repaid its switch (θ·Δ executions) and gone idle, or
// until a color with at least twice its pressure displaces it. θ = 1
// makes a switch break even by construction.
//
// Hysteresis has no eligibility or timestamp machinery; it is the "what a
// practical systems paper would ship" baseline the experiments compare
// the analyzed algorithm against.
type Hysteresis struct {
	env   sched.Env
	cache *Cache
	theta float64

	// credit[c] counts executions still owed before color c may be
	// displaced cheaply; pressure is recomputed every round.
	credit        map[sched.Color]int
	scratch       []sched.Color
	cachedScratch []sched.Color
}

// NewHysteresis returns the baseline with admission threshold θ·Δ
// (θ ≤ 0 defaults to 1).
func NewHysteresis(theta float64) *Hysteresis {
	if theta <= 0 {
		theta = 1
	}
	return &Hysteresis{theta: theta}
}

// Name implements sched.Policy.
func (h *Hysteresis) Name() string { return "Hysteresis" }

// Reset implements sched.Policy.
func (h *Hysteresis) Reset(env sched.Env) {
	h.env = env
	h.cache = NewCache(env.N, false)
	h.credit = make(map[sched.Color]int)
}

func (h *Hysteresis) threshold() int {
	t := int(h.theta * float64(h.env.Delta))
	if t < 1 {
		t = 1
	}
	return t
}

// Reconfigure implements sched.Policy.
func (h *Hysteresis) Reconfigure(ctx *sched.Context) []sched.Color {
	thr := h.threshold()

	// Candidates: nonidle colors with backlog ≥ θ·Δ, by descending
	// backlog (ties: color order).
	cand := ctx.NonidleColors(h.scratch[:0])
	filtered := cand[:0]
	for _, c := range cand {
		if h.cache.Contains(c) || ctx.Pending(c) >= thr {
			filtered = append(filtered, c)
		}
	}
	slices.SortFunc(filtered, func(a, b sched.Color) int {
		pa, pb := ctx.Pending(a), ctx.Pending(b)
		if pa != pb {
			return pb - pa // descending backlog
		}
		return int(a) - int(b)
	})

	// Evict cached colors that are idle and have repaid their switch.
	h.cachedScratch = h.cache.Colors(h.cachedScratch[:0])
	for _, c := range h.cachedScratch {
		if ctx.Pending(c) == 0 && h.credit[c] <= 0 {
			h.cache.Evict(c)
			delete(h.credit, c)
		}
	}

	// Admit candidates while room; displace only on 2× pressure.
	for _, c := range filtered {
		if h.cache.Contains(c) {
			continue
		}
		if h.cache.Len() < h.cache.Capacity() {
			h.cache.Insert(c)
			h.credit[c] = thr
			continue
		}
		// Find the weakest cached color.
		victim := sched.NoColor
		victimPending := 0
		h.cachedScratch = h.cache.Colors(h.cachedScratch[:0])
		for _, v := range h.cachedScratch {
			p := ctx.Pending(v)
			if victim == sched.NoColor || p < victimPending || (p == victimPending && v > victim) {
				victim = v
				victimPending = p
			}
		}
		if victim != sched.NoColor && h.credit[victim] <= 0 && ctx.Pending(c) >= 2*victimPending+thr {
			h.cache.Evict(victim)
			delete(h.credit, victim)
			h.cache.Insert(c)
			h.credit[c] = thr
		}
	}

	// Pay down credits for colors that will execute this mini-round.
	h.cachedScratch = h.cache.Colors(h.cachedScratch[:0])
	for _, c := range h.cachedScratch {
		if ctx.Pending(c) > 0 && h.credit[c] > 0 {
			h.credit[c]--
		}
	}

	h.scratch = filtered[:0]
	return h.cache.Assignment()
}
