package policy

import (
	"repro/internal/colorstate"
	"repro/internal/container"
	"repro/internal/sched"
)

// RandomEvict is a randomized baseline in the spirit of the classic
// randomized paging algorithms (the paper builds on Sleator–Tarjan's
// deterministic paging analysis; randomized eviction is the standard
// counterpoint): it admits nonidle eligible colors like EDF but evicts a
// uniformly random cached color when full. The randomness is driven by an
// explicit seed, so runs remain reproducible.
type RandomEvict struct {
	env           sched.Env
	tr            *colorstate.Tracker
	cache         *Cache
	rng           *container.RNG
	seed          uint64
	scratch       []sched.Color
	cachedScratch []sched.Color
}

// NewRandomEvict returns the randomized-eviction baseline with the given
// seed.
func NewRandomEvict(seed uint64) *RandomEvict {
	return &RandomEvict{seed: seed}
}

// Name implements sched.Policy.
func (p *RandomEvict) Name() string { return "RandomEvict" }

// Reset implements sched.Policy.
func (p *RandomEvict) Reset(env sched.Env) {
	p.env = env
	p.tr = colorstate.New(env.Delta, env.Delays)
	p.cache = NewCache(env.N, true)
	p.rng = container.NewRNG(p.seed)
}

// Reconfigure implements sched.Policy.
func (p *RandomEvict) Reconfigure(ctx *sched.Context) []sched.Color {
	if ctx.Mini == 0 {
		p.tr.BeginRound(ctx.Round, p.cache.Contains)
		for _, b := range ctx.Arrivals {
			p.tr.OnArrival(ctx.Round, b.Color, b.Count)
		}
	}
	elig := p.tr.AppendEligible(p.scratch[:0])
	RankEligible(elig, p.tr, ctx)
	top := len(elig)
	if top > p.cache.Capacity() {
		top = p.cache.Capacity()
	}
	for i := 0; i < top; i++ {
		c := elig[i]
		if ctx.Pending(c) == 0 || p.cache.Contains(c) {
			continue
		}
		if p.cache.Len() == p.cache.Capacity() {
			p.cachedScratch = p.cache.Colors(p.cachedScratch[:0])
			victim := p.cachedScratch[p.rng.Intn(len(p.cachedScratch))]
			p.cache.Evict(victim)
		}
		p.cache.Insert(c)
	}
	p.scratch = elig[:0]
	return p.cache.Assignment()
}
