package policy

import (
	"slices"

	"repro/internal/colorstate"
	"repro/internal/sched"
)

// RankKey is the EDF ranking key of §3.1.2: eligible colors are ranked
// first on idleness (nonidle colors first), then in ascending order of
// deadlines, breaking ties by increasing delay bounds, and then by a
// consistent order of colors (ascending color index). Smaller keys rank
// higher ("top" rankings).
type RankKey struct {
	Idle     bool
	Deadline int
	Delay    int
	C        sched.Color
}

// Less orders rank keys: the top-ranked key is the minimum.
func (a RankKey) Less(b RankKey) bool {
	if a.Idle != b.Idle {
		return !a.Idle
	}
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	return a.C < b.C
}

// RankEligible sorts the given eligible colors into EDF rank order (best
// rank first) using the tracker's per-color deadlines and the pending
// state for idleness. It sorts colors in place and performs no heap
// allocation (slices.SortFunc, unlike sort.Slice, needs no reflection
// header; the comparison closure stays on the stack).
func RankEligible(colors []sched.Color, tr *colorstate.Tracker, ctx *sched.Context) {
	slices.SortFunc(colors, func(a, b sched.Color) int {
		ka, kb := rankKeyOf(a, tr, ctx), rankKeyOf(b, tr, ctx)
		if ka.Less(kb) {
			return -1
		}
		if kb.Less(ka) {
			return 1
		}
		return 0
	})
}

func rankKeyOf(c sched.Color, tr *colorstate.Tracker, ctx *sched.Context) RankKey {
	st := tr.Get(c)
	return RankKey{
		Idle:     ctx.Pending(c) == 0,
		Deadline: st.Deadline,
		Delay:    tr.Delay(c),
		C:        c,
	}
}

// SortByRecency sorts eligible colors by ΔLRU recency (§3.1.1): most
// recent timestamp first, ties broken in favor of currently-cached colors
// (to avoid gratuitous churn; the paper breaks ties arbitrarily), then by
// ascending color index. Allocation-free, like RankEligible.
func SortByRecency(colors []sched.Color, tr *colorstate.Tracker, cached func(sched.Color) bool) {
	slices.SortFunc(colors, func(a, b sched.Color) int {
		ta, tb := tr.Get(a).Timestamp, tr.Get(b).Timestamp
		if ta != tb {
			if ta > tb {
				return -1
			}
			return 1
		}
		ca, cb := cached(a), cached(b)
		if ca != cb {
			if ca {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
}

// SyncCacheToSet makes the cache contain exactly the colors in want
// (which must fit the capacity): colors outside want are evicted, missing
// ones inserted. Used by ΔLRU and GreedyPending, whose invariants pin the
// exact cache content each round. It is a thin wrapper over Cache.SyncTo,
// which owns the scratch that keeps the operation allocation-free.
func SyncCacheToSet(cache *Cache, want []sched.Color) {
	cache.SyncTo(want)
}
