package policy

import (
	"sort"

	"repro/internal/colorstate"
	"repro/internal/sched"
)

// RankKey is the EDF ranking key of §3.1.2: eligible colors are ranked
// first on idleness (nonidle colors first), then in ascending order of
// deadlines, breaking ties by increasing delay bounds, and then by a
// consistent order of colors (ascending color index). Smaller keys rank
// higher ("top" rankings).
type RankKey struct {
	Idle     bool
	Deadline int
	Delay    int
	C        sched.Color
}

// Less orders rank keys: the top-ranked key is the minimum.
func (a RankKey) Less(b RankKey) bool {
	if a.Idle != b.Idle {
		return !a.Idle
	}
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	return a.C < b.C
}

// RankEligible sorts the given eligible colors into EDF rank order (best
// rank first) using the tracker's per-color deadlines and the pending
// state for idleness. It sorts colors in place.
func RankEligible(colors []sched.Color, tr *colorstate.Tracker, ctx *sched.Context) {
	sort.Slice(colors, func(i, j int) bool {
		return rankKeyOf(colors[i], tr, ctx).Less(rankKeyOf(colors[j], tr, ctx))
	})
}

func rankKeyOf(c sched.Color, tr *colorstate.Tracker, ctx *sched.Context) RankKey {
	st := tr.Get(c)
	return RankKey{
		Idle:     ctx.Pending(c) == 0,
		Deadline: st.Deadline,
		Delay:    tr.Delay(c),
		C:        c,
	}
}

// SortByRecency sorts eligible colors by ΔLRU recency (§3.1.1): most
// recent timestamp first, ties broken in favor of currently-cached colors
// (to avoid gratuitous churn; the paper breaks ties arbitrarily), then by
// ascending color index.
func SortByRecency(colors []sched.Color, tr *colorstate.Tracker, cached func(sched.Color) bool) {
	sort.Slice(colors, func(i, j int) bool {
		a, b := colors[i], colors[j]
		ta, tb := tr.Get(a).Timestamp, tr.Get(b).Timestamp
		if ta != tb {
			return ta > tb
		}
		ca, cb := cached(a), cached(b)
		if ca != cb {
			return ca
		}
		return a < b
	})
}

// SyncCacheToSet makes the cache contain exactly the colors in want
// (which must fit the capacity): colors outside want are evicted, missing
// ones inserted. Used by ΔLRU, whose invariant pins the exact cache
// content each round.
func SyncCacheToSet(cache *Cache, want []sched.Color) {
	inWant := make(map[sched.Color]struct{}, len(want))
	for _, c := range want {
		inWant[c] = struct{}{}
	}
	var evict []sched.Color
	evict = cache.Colors(evict[:0])
	for _, c := range evict {
		if _, ok := inWant[c]; !ok {
			cache.Evict(c)
		}
	}
	for _, c := range want {
		if !cache.Contains(c) {
			if !cache.Insert(c) {
				panic("policy: SyncCacheToSet overflow")
			}
		}
	}
}
