package ckptlog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/snap"
)

// blobFor builds a deterministic checkpoint blob for (tenant, round),
// large enough that several rounds span a small segment.
func blobFor(tenant string, round int) []byte {
	b := make([]byte, 0, 256)
	for i := 0; i < 8; i++ {
		b = append(b, fmt.Sprintf("%s/%d/%d|", tenant, round, i)...)
	}
	for len(b) < 200 {
		b = append(b, byte(round), byte(len(b)))
	}
	return b
}

func openTest(t *testing.T, dir string, mut func(*Options)) *Log {
	t.Helper()
	opt := Options{Dir: dir, CommitInterval: time.Hour, Logf: t.Logf}
	if mut != nil {
		mut(&opt)
	}
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	tenants := []string{"alpha", "beta", "gamma"}
	for round := 1; round <= 5; round++ {
		for _, id := range tenants {
			if err := l.Append(id, KindFull, round, 0, blobFor(id, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range tenants {
		blob, round, ok, err := l.Latest(id)
		if err != nil || !ok || round != 5 || !bytes.Equal(blob, blobFor(id, 5)) {
			t.Fatalf("Latest(%s) = round %d, ok %v, err %v", id, round, ok, err)
		}
	}
	if _, _, ok, _ := l.Latest("nope"); ok {
		t.Fatal("Latest of unknown tenant reported ok")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything recovers from disk.
	l2 := openTest(t, dir, nil)
	defer l2.Close()
	for _, id := range tenants {
		blob, round, ok, err := l2.Latest(id)
		if err != nil || !ok || round != 5 || !bytes.Equal(blob, blobFor(id, 5)) {
			t.Fatalf("after reopen: Latest(%s) = round %d, ok %v, err %v", id, round, ok, err)
		}
	}
	if got := l2.Tenants(); !equalStrings(got, tenants) {
		t.Fatalf("Tenants = %v", got)
	}
}

func equalStrings(a, b []string) bool {
	a, b = append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(a)
	sort.Strings(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLogDeltaResolve(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	base := blobFor("ten", 3)
	if err := l.Append("ten", KindFull, 3, 0, base); err != nil {
		t.Fatal(err)
	}
	for round := 4; round <= 7; round++ {
		target := blobFor("ten", round)
		if err := l.Append("ten", KindDelta, round, 3, snap.MakeDelta(base, target)); err != nil {
			t.Fatal(err)
		}
		blob, got, ok, err := l.Latest("ten")
		if err != nil || !ok || got != round || !bytes.Equal(blob, target) {
			t.Fatalf("round %d: Latest = round %d, ok %v, err %v", round, got, ok, err)
		}
	}
	// A delta against the wrong base round is rejected.
	if err := l.Append("ten", KindDelta, 8, 7, nil); err == nil {
		t.Fatal("delta against a non-full round was accepted")
	}
	// A delta for a tenant with no full record is rejected.
	if err := l.Append("fresh", KindDelta, 1, 0, nil); err == nil {
		t.Fatal("delta without a full record was accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir, nil)
	defer l2.Close()
	blob, round, ok, err := l2.Latest("ten")
	if err != nil || !ok || round != 7 || !bytes.Equal(blob, blobFor("ten", 7)) {
		t.Fatalf("after reopen: Latest = round %d, ok %v, err %v", round, ok, err)
	}
}

func TestLogTombstone(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	if err := l.Append("ten", KindFull, 4, 0, blobFor("ten", 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTombstone("ten"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := l.Latest("ten"); ok || err != nil {
		t.Fatalf("Latest after tombstone: ok %v, err %v", ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The tombstone shadows the full record across restarts.
	l2 := openTest(t, dir, nil)
	if _, _, ok, _ := l2.Latest("ten"); ok {
		t.Fatal("tombstoned tenant resurrected after reopen")
	}
	// Re-opening the tenant starts a fresh chain at a smaller round —
	// append order, not round numbers, must win.
	if err := l2.Append("ten", KindFull, 1, 0, blobFor("ten", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openTest(t, dir, nil)
	defer l3.Close()
	blob, round, ok, err := l3.Latest("ten")
	if err != nil || !ok || round != 1 || !bytes.Equal(blob, blobFor("ten", 1)) {
		t.Fatalf("re-opened tenant: Latest = round %d, ok %v, err %v", round, ok, err)
	}
}

// TestLogRotationCompaction drives enough records through a tiny
// segment bound to force many rotations and compactions, then verifies
// every tenant still resolves — live and across a reopen — and that
// the segment count stays bounded.
func TestLogRotationCompaction(t *testing.T) {
	dir := t.TempDir()
	mut := func(o *Options) {
		o.SegmentBytes = 2 << 10
		o.CompactSegments = 2
	}
	l := openTest(t, dir, mut)
	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	last := make(map[string]int)
	for round := 1; round <= 60; round++ {
		for _, id := range tenants {
			if err := l.Append(id, KindFull, round, 0, blobFor(id, round)); err != nil {
				t.Fatal(err)
			}
			last[id] = round
		}
	}
	// One tenant dies mid-history; its records must be GCed, not
	// resurrected.
	if err := l.AppendTombstone("t3"); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Compactions == 0 {
		t.Fatalf("expected rotations and compactions, got %+v", st)
	}
	if st.Segments > mut0CompactBound() {
		t.Fatalf("segment count %d not bounded", st.Segments)
	}
	check := func(l *Log, when string) {
		t.Helper()
		for _, id := range tenants {
			blob, round, ok, err := l.Latest(id)
			if id == "t3" {
				if ok {
					t.Fatalf("%s: tombstoned t3 resolved", when)
				}
				continue
			}
			if err != nil || !ok || round != last[id] || !bytes.Equal(blob, blobFor(id, last[id])) {
				t.Fatalf("%s: Latest(%s) = round %d, ok %v, err %v", when, id, round, ok, err)
			}
		}
	}
	check(l, "live")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "log-*.seg"))
	if len(files) > mut0CompactBound() {
		t.Fatalf("%d segment files on disk after close", len(files))
	}
	l2 := openTest(t, dir, mut)
	defer l2.Close()
	check(l2, "reopened")
}

// mut0CompactBound is the loose ceiling on segments for the compaction
// test: CompactSegments sealed + the active + slack for the compaction
// that only runs at rotation time.
func mut0CompactBound() int { return 5 }

// TestLogCompactionPreservesDeltaPairs forces the full+delta pair of a
// tenant into the oldest segment, compacts, and requires the pair to
// survive together (recovery depends on full-before-delta order).
func TestLogCompactionPreservesDeltaPairs(t *testing.T) {
	dir := t.TempDir()
	mut := func(o *Options) {
		o.SegmentBytes = 1 << 10
		o.CompactSegments = 1
	}
	l := openTest(t, dir, mut)
	base := blobFor("pair", 1)
	if err := l.Append("pair", KindFull, 1, 0, base); err != nil {
		t.Fatal(err)
	}
	target := blobFor("pair", 2)
	if err := l.Append("pair", KindDelta, 2, 1, snap.MakeDelta(base, target)); err != nil {
		t.Fatal(err)
	}
	// Bury the pair under churn from another tenant until compaction has
	// rewritten it forward at least once.
	for round := 1; round <= 200; round++ {
		if err := l.Append("churn", KindFull, round, 0, blobFor("churn", round)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatalf("no compactions after churn: %+v", st)
	}
	blob, round, ok, err := l.Latest("pair")
	if err != nil || !ok || round != 2 || !bytes.Equal(blob, target) {
		t.Fatalf("live: Latest(pair) = round %d, ok %v, err %v", round, ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, mut)
	defer l2.Close()
	blob, round, ok, err = l2.Latest("pair")
	if err != nil || !ok || round != 2 || !bytes.Equal(blob, target) {
		t.Fatalf("reopened: Latest(pair) = round %d, ok %v, err %v", round, ok, err)
	}
}

// TestLogTruncationSweep cuts the newest segment at every byte length
// and requires recovery to come up loudly with a consistent prefix:
// each recovered tenant resolves to the exact blob of some round ≤ the
// last one written, and recovery never panics or mis-resolves.
func TestLogTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	base := blobFor("d", 1)
	for round := 1; round <= 6; round++ {
		if err := l.Append("a", KindFull, round, 0, blobFor("a", round)); err != nil {
			t.Fatal(err)
		}
		if round == 1 {
			if err := l.Append("d", KindFull, 1, 0, base); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := l.Append("d", KindDelta, round, 1, snap.MakeDelta(base, blobFor("d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "log-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment, found %v", segs)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cuts landing exactly on a record boundary (or the bare header) are
	// clean prefixes — indistinguishable from a crash between commits —
	// and recover silently. Every other cut must be loud.
	boundary := map[int]bool{segHeader: true}
	for off := segHeader; off < len(whole); {
		n := int(binary.LittleEndian.Uint32(whole[off:]))
		off += 4 + n + 4
		boundary[off] = true
	}

	for cut := 0; cut < len(whole); cut++ {
		cutDir := t.TempDir()
		path := filepath.Join(cutDir, filepath.Base(segs[0]))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var loud bool
		opt := Options{Dir: cutDir, CommitInterval: time.Hour,
			Logf: func(string, ...any) { loud = true }}
		lc, err := Open(opt)
		if err != nil {
			t.Fatalf("cut %d: Open failed hard: %v (torn tails must recover)", cut, err)
		}
		if !loud && !boundary[cut] {
			t.Fatalf("cut %d: truncation recovered silently", cut)
		}
		for _, id := range []string{"a", "d"} {
			blob, round, ok, err := lc.Latest(id)
			if err != nil {
				t.Fatalf("cut %d: Latest(%s): %v", cut, id, err)
			}
			if !ok {
				continue // truncated before this tenant's first record
			}
			if round < 1 || round > 6 || !bytes.Equal(blob, blobFor(id, round)) {
				t.Fatalf("cut %d: Latest(%s) resolved to corrupt state at round %d", cut, id, round)
			}
		}
		lc.Close()
	}
}

// TestLogCorruptionLoudness flips bytes in segment bodies: a flip in
// the newest segment is a recoverable torn tail (loud, prefix state); a
// flip in a sealed segment is a hard Open error.
func TestLogCorruptionLoudness(t *testing.T) {
	build := func(t *testing.T, segBytes int64) string {
		dir := t.TempDir()
		l := openTest(t, dir, func(o *Options) {
			o.SegmentBytes = segBytes
			o.CompactSegments = 1 << 20 // effectively never compact
		})
		for round := 1; round <= 40; round++ {
			if err := l.Append("ten", KindFull, round, 0, blobFor("ten", round)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("tail-flip-recovers", func(t *testing.T) {
		dir := build(t, 1<<30) // one segment
		segs, _ := filepath.Glob(filepath.Join(dir, "log-*.seg"))
		data, _ := os.ReadFile(segs[0])
		data[len(data)-10] ^= 0x40 // inside the last record
		os.WriteFile(segs[0], data, 0o644)
		var loud bool
		l, err := Open(Options{Dir: dir, CommitInterval: time.Hour,
			Logf: func(string, ...any) { loud = true }})
		if err != nil {
			t.Fatalf("Open after tail flip: %v", err)
		}
		defer l.Close()
		if !loud {
			t.Fatal("tail corruption recovered silently")
		}
		blob, round, ok, err := l.Latest("ten")
		if err != nil || !ok || round >= 40 || !bytes.Equal(blob, blobFor("ten", round)) {
			t.Fatalf("Latest = round %d, ok %v, err %v; want a clean earlier round", round, ok, err)
		}
	})

	t.Run("sealed-flip-fails", func(t *testing.T) {
		dir := build(t, 1<<10) // several segments
		segs, _ := filepath.Glob(filepath.Join(dir, "log-*.seg"))
		sort.Strings(segs)
		if len(segs) < 3 {
			t.Fatalf("want several segments, got %d", len(segs))
		}
		data, _ := os.ReadFile(segs[0])
		data[len(data)/2] ^= 0x40
		os.WriteFile(segs[0], data, 0o644)
		if l, err := Open(Options{Dir: dir, CommitInterval: time.Hour}); err == nil {
			l.Close()
			t.Fatal("corruption in a sealed segment did not fail Open")
		} else if !strings.Contains(err.Error(), "sealed") {
			t.Fatalf("error does not name the sealed segment: %v", err)
		}
	})
}

// TestLogAbortLosesOnlyTail: records appended but not yet committed are
// lost by Abort (the crash analogue), while everything before the last
// Sync survives.
func TestLogAbortLosesOnlyTail(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	if err := l.Append("ten", KindFull, 1, 0, blobFor("ten", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("ten", KindFull, 2, 0, blobFor("ten", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(); err != nil { // round 2 still buffered: gone
		t.Fatal(err)
	}
	l2 := openTest(t, dir, nil)
	defer l2.Close()
	blob, round, ok, err := l2.Latest("ten")
	if err != nil || !ok || round != 1 || !bytes.Equal(blob, blobFor("ten", 1)) {
		t.Fatalf("after abort: Latest = round %d, ok %v, err %v; want the synced round 1", round, ok, err)
	}
}

// TestLogGroupCommitBatches: many appends inside one commit interval
// cost one fsync, not one per append.
func TestLogGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil) // CommitInterval: 1h → only explicit Syncs
	for round := 1; round <= 100; round++ {
		for _, id := range []string{"a", "b", "c", "d"} {
			if err := l.Append(id, KindFull, round, 0, blobFor(id, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 400 {
		t.Fatalf("Appends = %d", st.Appends)
	}
	if st.Fsyncs > 2 {
		t.Fatalf("%d fsyncs for one batch of 400 appends", st.Fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogConcurrentAppends exercises the lock paths under the race
// detector: many goroutines appending and reading concurrently, with a
// fast committer and tiny segments forcing rotation and compaction.
func TestLogConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) {
		o.CommitInterval = 200 * time.Microsecond
		o.SegmentBytes = 8 << 10
		o.CompactSegments = 2
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("g%d", g)
			for round := 1; round <= 50; round++ {
				if err := l.Append(id, KindFull, round, 0, blobFor(id, round)); err != nil {
					t.Errorf("%s append: %v", id, err)
					return
				}
				if round%10 == 0 {
					if _, _, _, err := l.Latest(id); err != nil {
						t.Errorf("%s latest: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, nil)
	defer l2.Close()
	for g := 0; g < 8; g++ {
		id := fmt.Sprintf("g%d", g)
		blob, round, ok, err := l2.Latest(id)
		if err != nil || !ok || round != 50 || !bytes.Equal(blob, blobFor(id, 50)) {
			t.Fatalf("Latest(%s) = round %d, ok %v, err %v", id, round, ok, err)
		}
	}
}

// TestLogStaleDeltaAfterCompaction pins the recovery scan against
// compaction residue: compaction may drop a segment holding an old full
// record while younger sealed segments still hold stale deltas naming
// it. The scan must tolerate those (they are superseded in append
// order) yet still fail loudly when a dangling delta is a tenant's
// actual latest record.
func TestLogStaleDeltaAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) {
		o.SegmentBytes = 1 // every append seals its own segment
		o.CompactSegments = 4
	})
	// seg1: a's chain base; seg2: a delta against it (soon stale).
	if err := l.Append("a", KindFull, 1, 0, blobFor("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("a", KindDelta, 2, 1, blobFor("a", 2)); err != nil {
		t.Fatal(err)
	}
	// seg3: a new full supersedes the chain, making seg1 droppable and
	// seg2's delta stale.
	if err := l.Append("a", KindFull, 10, 0, blobFor("a", 10)); err != nil {
		t.Fatal(err)
	}
	// Filler appends push the sealed count past CompactSegments so
	// compaction deletes seg1 (old full, not latest) but keeps seg2.
	for i := 1; i <= 2; i++ {
		if err := l.Append("b", KindFull, i, 0, blobFor("b", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 should have been compacted away (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("segment 2 (stale delta) should survive: %v", err)
	}

	// Reopen must scan past the stale delta and resolve a at round 10.
	l2 := openTest(t, dir, nil)
	blob, round, ok, err := l2.Latest("a")
	if err != nil || !ok || round != 10 || !bytes.Equal(blob, blobFor("a", 10)) {
		t.Fatalf("Latest(a) after compaction residue = round %d, ok %v, err %v", round, ok, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Now make the dangling delta the latest record: truncate away every
	// segment after seg2 and reopen — recovery must refuse, loudly.
	names, err := filepath.Glob(filepath.Join(dir, "log-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if seq, serr := segSeq(name); serr != nil {
			t.Fatal(serr)
		} else if seq > 2 {
			if err := os.Remove(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Open(Options{Dir: dir, CommitInterval: time.Hour, Logf: t.Logf}); err == nil {
		t.Fatal("Open resolved a dangling latest delta silently, want an error")
	} else if !strings.Contains(err.Error(), "unresolvable") {
		t.Fatalf("dangling latest delta error = %v, want it to name the unresolvable record", err)
	}
}
