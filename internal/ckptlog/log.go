// Package ckptlog is the group-commit checkpoint log: the default
// durability backend of the serve tier (docs/CHECKPOINT.md
// "Group-commit log"). Checkpoint blobs from every tenant on a shard
// are appended to one shared, CRC-framed segment file, and a single
// background committer turns any number of appends into one fsync per
// commit interval — the batching that collapses the serve tier's
// fsyncs/round from ~1 to ~1/batch. Segments rotate at a size bound;
// a compactor rewrites the records still live (each tenant's latest
// full snapshot, its latest delta, or its tombstone) out of the oldest
// segments so disk use tracks live state, not history.
//
// On-disk layout, one directory per shard:
//
//	log-00000001.seg   sealed segment (rotated out, never written again)
//	log-00000002.seg   …
//	log-00000003.seg   active segment (append-only)
//
// Every segment starts with an 8-byte header — magic "RRLG", then a
// fixed-width little-endian uint32 format version — followed by
// records framed as
//
//	uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE) of payload
//
// with the payload itself encoded by internal/snap: kind (uvarint),
// tenant ID (string), round, delta base round, then the blob. Records
// are self-describing and self-checking; recovery is a single forward
// scan of all segments in sequence order, last record per tenant wins
// (append order, not round numbers — a tenant closed and re-opened
// legitimately restarts at round 0). A torn or corrupt record in the
// final segment marks the crash point: recovery logs it loudly and
// keeps everything before it. Corruption in a sealed segment cannot be
// explained by a crash mid-append and is reported as an error.
//
// The log stores three record kinds: KindFull (a complete snapshot),
// KindDelta (a snap.ApplyDelta delta against the tenant's latest full
// record — deltas never chain), and KindTombstone (the tenant was
// closed or migrated away; earlier records must not resurrect).
package ckptlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snap"
)

// Kind discriminates checkpoint-log record types.
type Kind int

// Record kinds. KindFull carries a complete snapshot blob, KindDelta a
// binary delta against the tenant's latest KindFull record, and
// KindTombstone marks the tenant closed (blob empty).
const (
	KindFull Kind = iota
	KindDelta
	KindTombstone
)

const (
	segMagic   = "RRLG"
	segVersion = 1
	segHeader  = 8 // magic + uint32 version
	frameOver  = 8 // uint32 length + uint32 CRC around each payload

	// maxPayload bounds the declared record length so a corrupt frame
	// cannot trigger an unbounded allocation during recovery.
	maxPayload = 1 << 30
)

// Options configures Open.
type Options struct {
	// Dir is the directory holding the segment files. It must exist.
	Dir string
	// CommitInterval bounds how long an appended record may sit in the
	// OS before the committer fsyncs it — the durability latency of
	// group commit. Default 2ms.
	CommitInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Default 4 MiB.
	SegmentBytes int64
	// CompactSegments is the number of sealed segments tolerated before
	// the compactor rewrites live records out of the oldest one.
	// Default 4.
	CompactSegments int
	// Logf, when non-nil, receives recovery diagnostics (torn tails,
	// discarded records). Default: silent.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.CommitInterval <= 0 {
		o.CommitInterval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Appends counts records appended (all kinds); Deltas the subset
	// appended as KindDelta.
	Appends int64
	Deltas  int64
	// Bytes counts framed bytes appended.
	Bytes int64
	// Fsyncs counts file syncs issued — the number the group commit
	// exists to minimize. Rotations and Compactions count segment
	// rollovers and compaction passes.
	Fsyncs      int64
	Rotations   int64
	Compactions int64
	// Segments is the current on-disk segment count (sealed + active).
	Segments int
}

// recordRef locates one record's payload inside a segment.
type recordRef struct {
	seg int   // segment sequence number
	off int64 // offset of the payload (past the length word)
	n   int   // payload length
}

// tenantState is the index entry per tenant: where its latest full
// record lives, the latest delta against it (if any), or its
// tombstone. Exactly one of (full[, delta]) and tomb is meaningful.
type tenantState struct {
	full       recordRef
	fullRound  int
	delta      recordRef
	deltaRound int
	hasDelta   bool
	tomb       bool
	tombRef    recordRef
	// dangling, set only during the Open scan, records a delta whose
	// base full record is gone — legal when compaction dropped a full
	// that stale (superseded) deltas in middle segments still name, but
	// fatal if the dangling delta ends up as the tenant's latest record.
	// Any later full, tombstone, or resolvable delta clears it.
	dangling error
}

// segment is one sealed, read-only segment file.
type segment struct {
	seq  int
	path string
	f    *os.File
}

// Log is a group-commit checkpoint log over one directory. All methods
// are safe for concurrent use.
type Log struct {
	opt Options

	mu         sync.Mutex
	sealed     []*segment // ascending seq
	active     *os.File
	activeSeq  int
	activeOff  int64 // header + flushed + buffered bytes
	wbuf       []byte
	dirty      bool // bytes written to the file since the last fsync
	index      map[string]tenantState
	closed     bool
	compacting bool

	enc snap.Encoder // payload scratch, reused under mu

	done chan struct{}
	wg   sync.WaitGroup

	appends     atomic.Int64
	deltas      atomic.Int64
	bytes       atomic.Int64
	fsyncs      atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
}

// Open scans dir for existing segments, rebuilds the tenant index,
// seals every existing segment, opens a fresh active segment and
// starts the background committer. A torn tail in the newest segment
// (the signature of a crash mid-commit) is logged via Options.Logf and
// truncated from the index; corruption anywhere else fails Open.
func Open(opt Options) (*Log, error) {
	opt.fill()
	l := &Log{
		opt:   opt,
		index: make(map[string]tenantState),
		done:  make(chan struct{}),
	}
	names, err := filepath.Glob(filepath.Join(opt.Dir, "log-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	maxSeq := 0
	for i, name := range names {
		seq, err := segSeq(name)
		if err != nil {
			return nil, err
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if err := l.scanSegment(name, seq, i == len(names)-1); err != nil {
			for _, s := range l.sealed {
				s.f.Close()
			}
			return nil, err
		}
	}
	// A dangling delta that survived to the end of the scan is a
	// tenant's latest record with its base gone — unrecoverable state,
	// not compaction residue. Fail loudly rather than resurrect the
	// tenant at an older round.
	for tenant, st := range l.index {
		if st.dangling != nil {
			for _, s := range l.sealed {
				s.f.Close()
			}
			return nil, fmt.Errorf("ckptlog: tenant %q: latest record is unresolvable: %w", tenant, st.dangling)
		}
	}
	if err := l.openActive(maxSeq + 1); err != nil {
		for _, s := range l.sealed {
			s.f.Close()
		}
		return nil, err
	}
	l.wg.Add(1)
	go l.committer()
	return l, nil
}

func segName(seq int) string { return fmt.Sprintf("log-%08d.seg", seq) }

func segSeq(path string) (int, error) {
	var seq int
	if _, err := fmt.Sscanf(filepath.Base(path), "log-%d.seg", &seq); err != nil {
		return 0, fmt.Errorf("ckptlog: segment name %q: %w", filepath.Base(path), err)
	}
	return seq, nil
}

// scanSegment reads one existing segment, folds its records into the
// index and appends it to the sealed list. last marks the newest
// segment, the only place a torn tail is a normal crash signature.
func (l *Log) scanSegment(path string, seq int, last bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < segHeader {
		// A crash can tear the header of a just-created segment; that is
		// only survivable for the newest one.
		if !last {
			return fmt.Errorf("ckptlog: %s: truncated segment header in a sealed segment", filepath.Base(path))
		}
		if len(data) > 0 && string(data[:min(4, len(data))]) != segMagic[:min(4, len(data))] {
			return fmt.Errorf("ckptlog: %s: not a checkpoint-log segment", filepath.Base(path))
		}
		l.opt.Logf("ckptlog: recovery: %s: torn segment header (%d bytes); discarding (crash at creation)",
			filepath.Base(path), len(data))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		l.sealed = append(l.sealed, &segment{seq: seq, path: path, f: f})
		return nil
	}
	if string(data[:4]) != segMagic {
		return fmt.Errorf("ckptlog: %s: not a checkpoint-log segment", filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return fmt.Errorf("ckptlog: %s: segment version %d, this build reads %d", filepath.Base(path), v, segVersion)
	}
	off := int64(segHeader)
	for int(off) < len(data) {
		rest := data[off:]
		bad := ""
		var payload []byte
		if len(rest) < 4 {
			bad = "torn length word"
		} else {
			n := binary.LittleEndian.Uint32(rest)
			if int64(n) > maxPayload {
				bad = fmt.Sprintf("implausible record length %d", n)
			} else if len(rest) < 4+int(n)+4 {
				bad = fmt.Sprintf("torn record (%d of %d payload+CRC bytes)", len(rest)-4, int(n)+4)
			} else {
				payload = rest[4 : 4+n]
				want := binary.LittleEndian.Uint32(rest[4+n:])
				if got := crc32.ChecksumIEEE(payload); got != want {
					bad = fmt.Sprintf("record CRC %08x, stored %08x", got, want)
				}
			}
		}
		if bad == "" {
			if err := l.indexRecord(seq, off+4, payload); err != nil {
				bad = err.Error()
			}
		}
		if bad != "" {
			if !last {
				return fmt.Errorf("ckptlog: %s: %s at offset %d in a sealed segment", filepath.Base(path), bad, off)
			}
			l.opt.Logf("ckptlog: recovery: %s: %s at offset %d; discarding the tail (crash mid-commit)",
				filepath.Base(path), bad, off)
			break
		}
		off += 4 + int64(len(payload)) + 4
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	l.sealed = append(l.sealed, &segment{seq: seq, path: path, f: f})
	return nil
}

// indexRecord folds one decoded record into the tenant index, in
// append order (later records win).
func (l *Log) indexRecord(seq int, payloadOff int64, payload []byte) error {
	d := snap.NewDecoder(payload)
	kind := Kind(d.Uint64())
	tenant := d.String()
	round := d.Int()
	base := d.Int()
	blobLen := d.Len()
	if err := d.Err(); err != nil {
		return fmt.Errorf("record payload: %w", err)
	}
	ref := recordRef{seg: seq, off: payloadOff, n: len(payload)}
	st := l.index[tenant]
	switch kind {
	case KindFull:
		st = tenantState{full: ref, fullRound: round}
	case KindDelta:
		if st.tomb || st.full.n == 0 || st.fullRound != base {
			// The base full is not the latest one the scan has seen. This
			// is normal after compaction: a doomed segment's full can be
			// dropped while stale deltas naming it survive in younger
			// segments, always followed (in append order) by the record
			// that superseded them. Defer the error — it only stands if
			// no later record clears it (checked at the end of Open).
			st.dangling = fmt.Errorf("delta for %q against round %d, latest full is round %d", tenant, base, st.fullRound)
		} else {
			st.delta, st.deltaRound, st.hasDelta = ref, round, true
			st.dangling = nil
		}
	case KindTombstone:
		st = tenantState{tomb: true, tombRef: ref}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	_ = blobLen
	l.index[tenant] = st
	return nil
}

func (l *Log) openActive(seq int) error {
	f, err := os.OpenFile(filepath.Join(l.opt.Dir, segName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeader]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.activeSeq = seq
	l.activeOff = segHeader
	l.dirty = true // header awaits its first sync
	return nil
}

// appendPayloadLocked frames payload into the write buffer and returns
// its ref. Callers hold l.mu.
func (l *Log) appendPayloadLocked(payload []byte) recordRef {
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	l.wbuf = append(l.wbuf, frame[:]...)
	ref := recordRef{seg: l.activeSeq, off: l.activeOff + 4, n: len(payload)}
	l.wbuf = append(l.wbuf, payload...)
	binary.LittleEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	l.wbuf = append(l.wbuf, frame[:]...)
	l.activeOff += int64(len(payload)) + frameOver
	l.bytes.Add(int64(len(payload)) + frameOver)
	return ref
}

// flushLocked moves buffered bytes into the active file (no fsync).
func (l *Log) flushLocked() error {
	if len(l.wbuf) == 0 {
		return nil
	}
	if _, err := l.active.Write(l.wbuf); err != nil {
		return err
	}
	l.wbuf = l.wbuf[:0]
	l.dirty = true
	return nil
}

// commitLocked flushes and fsyncs the active segment.
func (l *Log) commitLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// committer is the group-commit loop: one fsync per CommitInterval
// whenever anything was appended, no matter how many tenants appended.
func (l *Log) committer() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.CommitInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && (len(l.wbuf) > 0 || l.dirty) {
				if err := l.commitLocked(); err != nil {
					l.opt.Logf("ckptlog: commit: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Append adds one checkpoint record for tenant. KindDelta records must
// name the tenant's latest full record round as baseRound — the log
// validates the chain so recovery can always resolve a delta against
// the full record it was computed from. Durability is deferred to the
// committer (bounded by CommitInterval); call Sync to force it.
func (l *Log) Append(tenant string, kind Kind, round, baseRound int, blob []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("ckptlog: append to closed log")
	}
	st := l.index[tenant]
	switch kind {
	case KindFull:
	case KindDelta:
		if st.tomb || st.full.n == 0 {
			return fmt.Errorf("ckptlog: delta for %q without a full record", tenant)
		}
		if st.fullRound != baseRound {
			return fmt.Errorf("ckptlog: delta for %q against round %d, latest full is round %d", tenant, baseRound, st.fullRound)
		}
	case KindTombstone:
	default:
		return fmt.Errorf("ckptlog: unknown record kind %d", kind)
	}
	l.enc.Reset()
	l.enc.Uint64(uint64(kind))
	l.enc.String(tenant)
	l.enc.Int(round)
	l.enc.Int(baseRound)
	l.enc.Blob(blob)
	ref := l.appendPayloadLocked(l.enc.Bytes())
	switch kind {
	case KindFull:
		l.index[tenant] = tenantState{full: ref, fullRound: round}
	case KindDelta:
		st.delta, st.deltaRound, st.hasDelta = ref, round, true
		l.index[tenant] = st
		l.deltas.Add(1)
	case KindTombstone:
		l.index[tenant] = tenantState{tomb: true, tombRef: ref}
	}
	l.appends.Add(1)
	if l.activeOff > l.opt.SegmentBytes && !l.compacting {
		return l.rotateLocked()
	}
	return nil
}

// AppendTombstone records that tenant was closed or migrated away:
// recovery will report no record for it even though earlier records
// remain on disk until compaction. The caller should follow with Sync
// when the tombstone must be durable before proceeding (the serve tier
// does, once per close).
func (l *Log) AppendTombstone(tenant string) error {
	return l.Append(tenant, KindTombstone, 0, 0, nil)
}

// Sync forces everything appended so far to durable storage now,
// without waiting for the committer.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("ckptlog: sync of closed log")
	}
	return l.commitLocked()
}

// rotateLocked seals the active segment and opens the next one,
// compacting if the sealed count now exceeds the bound.
func (l *Log) rotateLocked() error {
	if err := l.commitLocked(); err != nil {
		return err
	}
	f := l.active
	seq := l.activeSeq
	l.sealed = append(l.sealed, &segment{seq: seq, path: filepath.Join(l.opt.Dir, segName(seq)), f: f})
	if err := l.openActive(seq + 1); err != nil {
		// The old active stays usable as a sealed segment; the log is
		// wedged for writes but recovery remains intact.
		return err
	}
	l.rotations.Add(1)
	return l.compactLocked()
}

// readRef returns the payload bytes a ref points at. Refs into the
// active segment require a flush first (callers do it).
func (l *Log) readRef(ref recordRef) ([]byte, error) {
	var f *os.File
	if ref.seg == l.activeSeq {
		f = l.active
	} else {
		for _, s := range l.sealed {
			if s.seq == ref.seg {
				f = s.f
				break
			}
		}
	}
	if f == nil {
		return nil, fmt.Errorf("ckptlog: record references missing segment %d", ref.seg)
	}
	buf := make([]byte, ref.n)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	return buf, nil
}

// compactLocked rewrites live records out of the oldest sealed
// segments until at most CompactSegments remain, then deletes them. A
// tenant whose latest full or delta lives in the doomed segment has
// the whole full(+delta) pair re-appended — together, so the
// full-before-delta chronology recovery depends on survives. A
// tombstone in the doomed segment is dropped along with the segment:
// the tombstone being the tenant's latest record means every record it
// was shadowing lived in this or earlier segments, all gone.
func (l *Log) compactLocked() error {
	for len(l.sealed) > l.opt.CompactSegments {
		doomed := l.sealed[0]
		if err := l.flushLocked(); err != nil {
			return err
		}
		l.compacting = true
		err := l.compactSegmentLocked(doomed)
		l.compacting = false
		if err != nil {
			return err
		}
		doomed.f.Close()
		if err := os.Remove(doomed.path); err != nil {
			return err
		}
		l.sealed = l.sealed[1:]
		l.compactions.Add(1)
	}
	return nil
}

func (l *Log) compactSegmentLocked(doomed *segment) error {
	// Deterministic order keeps tests reproducible.
	tenants := make([]string, 0, len(l.index))
	for id := range l.index {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	for _, id := range tenants {
		st := l.index[id]
		switch {
		case st.tomb && st.tombRef.seg == doomed.seq:
			delete(l.index, id)
		case st.tomb:
			// Tombstone lives in a later segment; nothing to move.
		case st.full.seg == doomed.seq || (st.hasDelta && st.delta.seg == doomed.seq):
			full, err := l.readRef(st.full)
			if err != nil {
				return fmt.Errorf("ckptlog: compacting %s: %w", filepath.Base(doomed.path), err)
			}
			nst := tenantState{full: l.appendPayloadLocked(full), fullRound: st.fullRound}
			if st.hasDelta {
				delta, err := l.readRef(st.delta)
				if err != nil {
					return fmt.Errorf("ckptlog: compacting %s: %w", filepath.Base(doomed.path), err)
				}
				nst.delta, nst.deltaRound, nst.hasDelta = l.appendPayloadLocked(delta), st.deltaRound, true
			}
			l.index[id] = nst
		}
	}
	// The moved records must be durable before the doomed segment
	// disappears, or a crash in between loses them.
	return l.commitLocked()
}

// Latest resolves tenant's current checkpoint: its latest full record
// with the latest delta (if any) applied. ok is false when the log has
// no record for the tenant or its latest record is a tombstone. The
// returned blob is freshly allocated and caller-owned.
func (l *Log) Latest(tenant string) (blob []byte, round int, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, false, fmt.Errorf("ckptlog: read of closed log")
	}
	st, found := l.index[tenant]
	if !found || st.tomb {
		return nil, 0, false, nil
	}
	if err := l.flushLocked(); err != nil {
		return nil, 0, false, err
	}
	fullPay, err := l.readRef(st.full)
	if err != nil {
		return nil, 0, false, err
	}
	fullBlob, _, err := decodeBlob(fullPay)
	if err != nil {
		return nil, 0, false, err
	}
	if !st.hasDelta {
		return fullBlob, st.fullRound, true, nil
	}
	deltaPay, err := l.readRef(st.delta)
	if err != nil {
		return nil, 0, false, err
	}
	deltaBlob, _, err := decodeBlob(deltaPay)
	if err != nil {
		return nil, 0, false, err
	}
	blob, err = snap.ApplyDelta(nil, fullBlob, deltaBlob)
	if err != nil {
		return nil, 0, false, fmt.Errorf("ckptlog: resolving delta for %q: %w", tenant, err)
	}
	return blob, st.deltaRound, true, nil
}

// decodeBlob extracts the blob from a record payload.
func decodeBlob(payload []byte) (blob []byte, round int, err error) {
	d := snap.NewDecoder(payload)
	d.Uint64()      // kind
	_ = d.String()  // tenant
	round = d.Int() // round
	d.Int()         // base round
	blob = d.Blob() // the checkpoint state
	if err := d.Done(); err != nil {
		return nil, 0, err
	}
	return blob, round, nil
}

// Tenants returns the IDs with a live (non-tombstone) record, sorted.
func (l *Log) Tenants() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.index))
	for id, st := range l.index {
		if !st.tomb {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := len(l.sealed) + 1
	if l.active == nil {
		segs--
	}
	l.mu.Unlock()
	return Stats{
		Appends:     l.appends.Load(),
		Deltas:      l.deltas.Load(),
		Bytes:       l.bytes.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Rotations:   l.rotations.Load(),
		Compactions: l.compactions.Load(),
		Segments:    segs,
	}
}

// Close stops the committer, makes everything appended durable and
// closes the segment files. The log must not be used afterwards.
func (l *Log) Close() error {
	l.stopCommitter()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.commitLocked()
	l.closeFilesLocked()
	return err
}

// Abort stops the committer and closes the files WITHOUT flushing the
// append buffer or issuing a final fsync — the crash-consistency
// analogue of Close, used by the serve tier's crash-simulating
// shutdown path and the fault-injection tests. Records still buffered
// are lost, exactly as a kill at that moment would lose them.
func (l *Log) Abort() error {
	l.stopCommitter()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closeFilesLocked()
	return nil
}

func (l *Log) stopCommitter() {
	l.mu.Lock()
	if !l.closed {
		select {
		case <-l.done:
		default:
			close(l.done)
		}
	}
	l.mu.Unlock()
	l.wg.Wait()
}

func (l *Log) closeFilesLocked() {
	for _, s := range l.sealed {
		s.f.Close()
	}
	if l.active != nil {
		l.active.Close()
	}
	l.closed = true
}
