package proxy

import (
	"bufio"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// tee replicates mutating request frames to the warm-standby backend:
// a bounded FIFO drained by one worker goroutine onto one standby
// connection, fire-and-forget. The standby runs the same per-tenant
// sequence-checked admission as any backend, so the tee needs no
// acknowledgement protocol: a dropped or re-sent frame shows up there
// as a sequence gap or duplicate and is rejected, leaving the standby a
// consistent prefix of the primary's ingest — behind by at most the
// buffer, never corrupt. On overflow or a standby outage, frames are
// dropped and counted (drop-to-checkpoint: failover then falls back to
// the clients' sequence rewind for the gap).
type tee struct {
	addr    string
	timeout time.Duration
	logf    func(format string, args ...any)

	ch      chan []byte
	done    chan struct{}
	stopped chan struct{}
	dropped atomic.Int64
}

func newTee(addr string, buffer int, timeout time.Duration, logf func(string, ...any)) *tee {
	t := &tee{
		addr:    addr,
		timeout: timeout,
		logf:    logf,
		ch:      make(chan []byte, buffer),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go t.run()
	return t
}

// enqueue stages one frame for the standby, copying it (the caller's
// buffer is reused for the next frame). A full buffer drops the frame.
func (t *tee) enqueue(body []byte) {
	frame := append([]byte(nil), body...)
	select {
	case t.ch <- frame:
	default:
		if t.dropped.Add(1) == 1 {
			t.logf("proxy: standby tee overflow; standby will trail until failover rewind")
		}
	}
}

// close stops the worker after it drains what is already buffered.
func (t *tee) close() {
	close(t.done)
	<-t.stopped
}

// run is the tee worker: dial the standby lazily, write frames in
// arrival order, flush when the buffer runs dry, and discard the
// standby's responses. A write or dial failure drops the in-hand frame,
// closes the connection, and backs off one timeout before redialing —
// the standby being down must cost the hot path nothing.
func (t *tee) run() {
	defer close(t.stopped)
	var conn net.Conn
	var bw *bufio.Writer
	var lastFail time.Time
	disconnect := func() {
		if conn != nil {
			conn.Close()
			conn, bw = nil, nil
		}
		lastFail = time.Now()
	}
	defer func() {
		if bw != nil {
			bw.Flush()
		}
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var frame []byte
		select {
		case frame = <-t.ch:
		case <-t.done:
			// Drain what was already staged, then stop.
			select {
			case frame = <-t.ch:
			default:
				return
			}
		}
		if conn == nil {
			if time.Since(lastFail) < t.timeout {
				t.dropped.Add(1)
				continue
			}
			c, err := net.DialTimeout("tcp", t.addr, t.timeout)
			if err != nil {
				t.dropped.Add(1)
				disconnect()
				continue
			}
			conn, bw = c, bufio.NewWriter(c)
			// Discard responses: admission rejections (sequence gaps after
			// a drop) are the standby healing itself, not errors to relay.
			go io.Copy(io.Discard, c)
		}
		if err := serve.WriteFrame(bw, frame); err != nil {
			t.dropped.Add(1)
			disconnect()
			continue
		}
		if len(t.ch) == 0 {
			if err := bw.Flush(); err != nil {
				disconnect()
			}
		}
	}
}
