package proxy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

// startBackend boots one rrserved backend on a loopback port. Killing
// it mid-test with Close is fine — the cleanup's second Close is a
// no-op and still collects Serve's return.
func startBackend(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("backend serve: %v", err)
		}
	})
	return s
}

// startFleet boots n backends plus a proxy over them (and a standby
// backend when withStandby). It returns the proxy, the backends, and
// the standby (nil without one).
func startFleet(t *testing.T, n int, withStandby bool) (*Proxy, []*serve.Server, *serve.Server) {
	t.Helper()
	backends := make([]*serve.Server, n)
	addrs := make([]string, n)
	for i := range backends {
		backends[i] = startBackend(t, serve.Config{})
		addrs[i] = backends[i].Addr().String()
	}
	var standby *serve.Server
	cfg := Config{Addr: "127.0.0.1:0", Backends: addrs, Logf: t.Logf}
	if withStandby {
		standby = startBackend(t, serve.Config{})
		cfg.Standby = standby.Addr().String()
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- px.Serve() }()
	t.Cleanup(func() {
		px.Close()
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return px, backends, standby
}

// TestProxyBasicVerify: a full verified load run through the proxy must
// be indistinguishable from one against a single server — every round
// admitted exactly once, results bit-identical to the local replay —
// while the tenants actually spread across all backends.
func TestProxyBasicVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	for _, mode := range []struct {
		name            string
		pipeline, batch int
	}{
		{"strict", 0, 0},
		{"pipelined", 16, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			px, backends, _ := startFleet(t, 3, false)
			rep, err := serve.RunLoad(serve.LoadConfig{
				Addr:     px.Addr().String(),
				Tenants:  32,
				Params:   workload.Params{Rounds: 40, Seed: 7},
				Pipeline: mode.pipeline,
				Batch:    mode.batch,
				Verify:   true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Mismatches) != 0 {
				t.Fatalf("tenants with non-identical results through proxy: %v", rep.Mismatches)
			}
			if want := int64(32 * 40); rep.RoundsSent != want {
				t.Fatalf("RoundsSent = %d, want %d", rep.RoundsSent, want)
			}
			if rep.Reconnects != 0 {
				t.Fatalf("healthy fleet forced %d reconnects", rep.Reconnects)
			}
			total := 0
			for i, b := range backends {
				n := b.NumTenants()
				if n == 0 {
					t.Errorf("backend %d hosts no tenants — sharding is not spreading", i)
				}
				total += n
			}
			if total != 32 {
				t.Fatalf("backends host %d tenants total, want 32", total)
			}
		})
	}
}

// TestProxyStatsFanout: ping and all-tenant stats are answered at the
// proxy by fanning out and merging — rows sorted by tenant ID, service
// shares recomputed fleet-wide — while single-tenant requests relay to
// the owning backend.
func TestProxyStatsFanout(t *testing.T) {
	px, backends, _ := startFleet(t, 2, false)
	addrs := []string{backends[0].Addr().String(), backends[1].Addr().String()}

	// Pick tenant names landing two on each backend, so the merge has
	// real work on both sides.
	names := make([]string, 0, 4)
	perNode := make(map[int]int)
	for i := 0; len(names) < 4; i++ {
		name := fmt.Sprintf("stat-%03d", i)
		node := Pick(addrs, name)
		if perNode[node] < 2 {
			perNode[node]++
			names = append(names, name)
		}
	}

	c, err := serve.Dial(px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := serve.TenantConfig{Policy: "edf", N: 4, Delta: 4, Delays: []int{2, 6}}
	for _, name := range names {
		if _, _, err := c.Open(name, tc); err != nil {
			t.Fatalf("open %s through proxy: %v", name, err)
		}
		if _, _, err := c.Submit(name, 0, sched.Request{{Color: 0, Count: 1}}); err != nil {
			t.Fatalf("submit %s through proxy: %v", name, err)
		}
		if _, err := c.DrainTenant(name); err != nil {
			t.Fatalf("drain %s through proxy: %v", name, err)
		}
	}
	if backends[0].NumTenants() != 2 || backends[1].NumTenants() != 2 {
		t.Fatalf("tenants split %d/%d across backends, want 2/2",
			backends[0].NumTenants(), backends[1].NumTenants())
	}

	draining, tenants, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if draining || tenants != 4 {
		t.Fatalf("fleet ping = (draining %v, tenants %d), want (false, 4)", draining, tenants)
	}

	rows, err := c.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fleet stats returned %d rows, want 4", len(rows))
	}
	var shares float64
	for i, r := range rows {
		if i > 0 && rows[i-1].ID >= r.ID {
			t.Fatalf("fleet stats rows not sorted: %q before %q", rows[i-1].ID, r.ID)
		}
		if r.ServedRounds != 1 {
			t.Fatalf("tenant %s ServedRounds = %d, want 1", r.ID, r.ServedRounds)
		}
		shares += r.ServiceShare
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("fleet-wide service shares sum to %v, want 1", shares)
	}

	compat, err := c.StatsCompat("")
	if err != nil {
		t.Fatal(err)
	}
	if len(compat) != 4 {
		t.Fatalf("fleet compat stats returned %d rows, want 4", len(compat))
	}

	one, err := c.Stats(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].ID != names[0] {
		t.Fatalf("single-tenant stats through proxy = %+v, want one row for %s", one, names[0])
	}
}

// TestProxyMigrateUnderLoad moves a tenant between backends in the
// middle of a verified load run: the release tombstone and the
// sequence-checked restore must make the move invisible — no round
// lost, none duplicated, results bit-identical.
func TestProxyMigrateUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	px, backends, _ := startFleet(t, 3, false)
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.Addr().String()
	}

	var rep *serve.LoadReport
	var lerr error
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		rep, lerr = serve.RunLoad(serve.LoadConfig{
			Addr:         px.Addr().String(),
			Tenants:      16,
			Params:       workload.Params{Rounds: 80, Seed: 5},
			Rate:         120,
			Verify:       true,
			RetryTimeout: 20 * time.Second,
		})
	}()

	time.Sleep(200 * time.Millisecond) // land the migration mid-run
	tenant := "load-004"
	home := addrs[Pick(addrs, tenant)]
	target := addrs[0]
	if target == home {
		target = addrs[1]
	}
	if err := px.Migrate(tenant, target); err != nil {
		t.Fatalf("migrate %s -> %s: %v", tenant, target, err)
	}
	px.mu.Lock()
	ov, pinned := px.overrides[tenant]
	px.mu.Unlock()
	if !pinned || ov != target {
		t.Fatalf("override after migrate = (%q, %v), want pin to %s", ov, pinned, target)
	}

	time.Sleep(100 * time.Millisecond)
	// Migrate back home: the override must dissolve into the hash route.
	if err := px.Migrate(tenant, home); err != nil {
		t.Fatalf("migrate %s back home: %v", tenant, err)
	}
	px.mu.Lock()
	_, pinned = px.overrides[tenant]
	px.mu.Unlock()
	if pinned {
		t.Fatalf("override survived a migration back to the hash home")
	}

	<-loadDone
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("tenants with non-identical results across migration: %v", rep.Mismatches)
	}
	// The tenant really lives at home again: ask the backend directly.
	hc, err := serve.Dial(home)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	rows, err := hc.Stats(tenant)
	if err != nil {
		t.Fatalf("stats for migrated-back tenant on its home backend: %v", err)
	}
	if len(rows) != 1 || rows[0].ID != tenant {
		t.Fatalf("home backend rows = %+v, want exactly %s", rows, tenant)
	}
}

// TestProxyFailover is the acceptance scenario: 3 backends plus a warm
// standby, a verified load run, one backend killed mid-run. Its tenants
// must fail over to the standby — which has been replaying the teed
// submit stream — and every final result must stay bit-identical to the
// local replay, in both the strict and pipelined driver modes.
func TestProxyFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	for _, mode := range []struct {
		name            string
		pipeline, batch int
	}{
		{"strict", 0, 0},
		{"pipelined", 16, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			px, backends, standby := startFleet(t, 3, true)
			addrs := make([]string, len(backends))
			for i, b := range backends {
				addrs[i] = b.Addr().String()
			}

			var rep *serve.LoadReport
			var lerr error
			loadDone := make(chan struct{})
			go func() {
				defer close(loadDone)
				rep, lerr = serve.RunLoad(serve.LoadConfig{
					Addr:         px.Addr().String(),
					Tenants:      64,
					Params:       workload.Params{Rounds: 80, Seed: 5},
					Rate:         120, // ~670ms of paced submits per tenant
					Pipeline:     mode.pipeline,
					Batch:        mode.batch,
					Verify:       true,
					RetryTimeout: 20 * time.Second,
				})
			}()

			time.Sleep(250 * time.Millisecond) // land the kill mid-run
			victim := Pick(addrs, "load-000")  // guaranteed to own tenants
			if err := backends[victim].Close(); err != nil {
				t.Fatal(err)
			}

			<-loadDone
			if lerr != nil {
				t.Fatal(lerr)
			}
			if len(rep.Mismatches) != 0 {
				t.Fatalf("tenants with non-identical results across failover: %v", rep.Mismatches)
			}
			// Reconnects counts failed re-dial attempts and stays 0 here —
			// the proxy accepts the very first retry and routes it to the
			// standby. Resumes counts the reconnect-and-rewind itself, once
			// per torn-down victim connection.
			if rep.Resumes == 0 {
				t.Fatalf("killing a backend forced no resumes — did the kill land mid-run?")
			}

			px.mu.Lock()
			dead := px.dead[addrs[victim]]
			px.mu.Unlock()
			if !dead {
				t.Fatalf("proxy never marked the killed backend %s dead", addrs[victim])
			}
			if got := px.route("load-000"); got != standby.Addr().String() {
				t.Fatalf("route(load-000) = %q after its backend died, want standby %q",
					got, standby.Addr().String())
			}
			if standby.NumTenants() == 0 {
				t.Fatalf("standby hosts no tenants — the tee never replicated")
			}

			// The fleet view must still cover every tenant: live backends'
			// rows plus the standby's rows for the failed-over tenants.
			c, err := serve.Dial(px.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rows, err := c.Stats("")
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 64 {
				t.Fatalf("fleet stats after failover returned %d rows, want 64", len(rows))
			}
			if n := px.TeeDropped(); n > 0 {
				t.Logf("standby tee dropped %d frames (recovered via sequence rewind)", n)
			}
		})
	}
}

// TestProxyDuraStatsFanout: the durability-stats request (protocol v6)
// fans out like the scheduler stats — the proxy sums the counters
// across live backends and attaches a per-backend breakdown labelled
// by address. Two log-mode backends plus a memory-only one make the
// merged mode "mixed" and give the sum real work to add up.
func TestProxyDuraStatsFanout(t *testing.T) {
	// CheckpointEvery 1 makes every applied round append a log record,
	// so a submit + drain deterministically bumps the counters.
	cfgs := []serve.Config{
		{CheckpointDir: t.TempDir(), CheckpointEvery: 1},
		{CheckpointDir: t.TempDir(), CheckpointEvery: 1},
		{},
	}
	backends := make([]*serve.Server, len(cfgs))
	addrs := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		backends[i] = startBackend(t, cfg)
		addrs[i] = backends[i].Addr().String()
	}
	px, err := New(Config{Addr: "127.0.0.1:0", Backends: addrs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- px.Serve() }()
	t.Cleanup(func() {
		px.Close()
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})

	c, err := serve.Dial(px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Land at least one tenant on each durable backend so both log rows
	// carry non-zero append counts.
	perNode := map[int]int{}
	tc := serve.TenantConfig{Policy: "edf", N: 4, Delta: 4, Delays: []int{2, 6}}
	for i := 0; perNode[0] == 0 || perNode[1] == 0; i++ {
		name := fmt.Sprintf("dura-%03d", i)
		node := Pick(addrs, name)
		if node == 2 || perNode[node] > 0 {
			continue
		}
		perNode[node]++
		if _, _, err := c.Open(name, tc); err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if _, _, err := c.Submit(name, 0, sched.Request{{Color: 0, Count: 1}}); err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		if _, err := c.DrainTenant(name); err != nil {
			t.Fatalf("drain %s: %v", name, err)
		}
	}

	st, err := c.DuraStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "mixed" {
		t.Fatalf("merged mode = %q, want \"mixed\" (log, log, off)", st.Mode)
	}
	if len(st.Backends) != 3 {
		t.Fatalf("fan-out returned %d backend rows, want 3", len(st.Backends))
	}
	byAddr := map[string]serve.BackendDuraStats{}
	var sumAppends, sumBytes int64
	for _, b := range st.Backends {
		if len(b.Backends) != 0 {
			t.Fatalf("backend row %s carries nested rows — fan-out must be one level", b.Addr)
		}
		byAddr[b.Addr] = b
		sumAppends += b.Appends
		sumBytes += b.Bytes
	}
	for i, addr := range addrs {
		row, ok := byAddr[addr]
		if !ok {
			t.Fatalf("no row for backend %s", addr)
		}
		wantMode := "log"
		if i == 2 {
			wantMode = "off"
		}
		if row.Mode != wantMode {
			t.Fatalf("backend %s mode = %q, want %q", addr, row.Mode, wantMode)
		}
		if i != 2 && row.Appends == 0 {
			t.Fatalf("durable backend %s shows zero appends after a submit", addr)
		}
	}
	if st.Appends != sumAppends || st.Bytes != sumBytes {
		t.Fatalf("top-level counters (%d appends, %d bytes) != sum of rows (%d, %d)",
			st.Appends, st.Bytes, sumAppends, sumBytes)
	}
	if st.Appends == 0 {
		t.Fatal("fleet-wide appends = 0 after submits on durable backends")
	}
}

// TestProxyMigrateAdmissionBounce: migrating a reserved tenant onto a
// backend whose shard cannot host the reservation must fail with the
// typed admission error, and the failed move must strand nothing — the
// restore-back path returns the tenant (reservation included) to the
// source, where it keeps serving. Freeing the target then lets the
// same migration succeed, reservation carried along.
func TestProxyMigrateAdmissionBounce(t *testing.T) {
	b0 := startBackend(t, serve.Config{Shards: 1, BDR: true})
	b1 := startBackend(t, serve.Config{Shards: 1, BDR: true})
	addrs := []string{b0.Addr().String(), b1.Addr().String()}
	px, err := New(Config{Addr: "127.0.0.1:0", Backends: addrs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- px.Serve() }()
	t.Cleanup(func() {
		px.Close()
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})

	// A tenant name the hash routes to backend 0.
	name := ""
	for i := 0; name == ""; i++ {
		if cand := fmt.Sprintf("mv-%03d", i); Pick(addrs, cand) == 0 {
			name = cand
		}
	}

	// Backend 1's single shard is 0.8 reserved: a 0.6 restore cannot fit.
	cb, err := serve.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	blocker := serve.TenantConfig{Policy: "edf", N: 4, Delta: 4, Delays: []int{2, 6},
		ResRate: 0.8, ResDelay: 32}
	if _, _, err := cb.Open("blocker", blocker); err != nil {
		t.Fatal(err)
	}

	c, err := serve.Dial(px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := serve.TenantConfig{Policy: "edf", N: 4, Delta: 4, Delays: []int{2, 6},
		ResRate: 0.6, ResDelay: 32}
	if _, _, err := c.Open(name, tc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit(name, 0, sched.Request{{Color: 0, Count: 1}}); err != nil {
		t.Fatal(err)
	}

	var ae *serve.AdmissionError
	if err := px.Migrate(name, addrs[1]); !errors.As(err, &ae) {
		t.Fatalf("migrate onto overcommitted backend = %v, want *serve.AdmissionError", err)
	}

	// The bounce stranded nothing: the tenant is back on the source with
	// its reservation, and the proxy still serves it.
	if n := b0.NumTenants(); n != 1 {
		t.Fatalf("source hosts %d tenants after bounced migration, want 1", n)
	}
	rows, err := c.Stats(name)
	if err != nil || len(rows) != 1 {
		t.Fatalf("stats after bounce = (%v, %v)", rows, err)
	}
	if rows[0].ReservedRate != 0.6 || rows[0].ReservedDelay != 32 {
		t.Fatalf("reservation after bounce = (%g, %g), want (0.6, 32)",
			rows[0].ReservedRate, rows[0].ReservedDelay)
	}
	if _, _, err := c.Submit(name, 1, sched.Request{{Color: 1, Count: 1}}); err != nil {
		t.Fatalf("submit after bounced migration: %v", err)
	}

	// Free the target: the same migration now succeeds and the
	// reservation rides along.
	if _, err := cb.CloseTenant("blocker"); err != nil {
		t.Fatal(err)
	}
	if err := px.Migrate(name, addrs[1]); err != nil {
		t.Fatalf("migrate after freeing target: %v", err)
	}
	if n := b1.NumTenants(); n != 1 {
		t.Fatalf("target hosts %d tenants after migration, want 1", n)
	}
	rows, err = c.Stats(name)
	if err != nil || len(rows) != 1 || rows[0].ReservedRate != 0.6 {
		t.Fatalf("stats after successful migration = (%v, %v), want reserved rate 0.6", rows, err)
	}
}
