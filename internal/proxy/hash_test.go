package proxy

import (
	"fmt"
	"testing"
)

func TestPickEmptyAndSingle(t *testing.T) {
	if got := Pick(nil, "k"); got != -1 {
		t.Fatalf("Pick(nil) = %d, want -1", got)
	}
	if got := Pick([]string{"only"}, "k"); got != 0 {
		t.Fatalf("Pick(single) = %d, want 0", got)
	}
}

// TestPickDeterministic pins that placement depends only on (nodes,
// key) — proxies sharing a backend list must agree.
func TestPickDeterministic(t *testing.T) {
	nodes := []string{"a:1", "b:2", "c:3"}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("tenant-%03d", i)
		first := Pick(nodes, key)
		for rep := 0; rep < 3; rep++ {
			if got := Pick(nodes, key); got != first {
				t.Fatalf("Pick(%q) flapped: %d then %d", key, first, got)
			}
		}
	}
}

// TestPickDistribution: rendezvous scores are independent per node, so
// a large key population spreads roughly evenly.
func TestPickDistribution(t *testing.T) {
	nodes := []string{"10.0.0.1:7145", "10.0.0.2:7145", "10.0.0.3:7145"}
	const keys = 9000
	counts := make([]int, len(nodes))
	for i := 0; i < keys; i++ {
		counts[Pick(nodes, fmt.Sprintf("load-%04d", i))]++
	}
	want := keys / len(nodes)
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %d got %d of %d keys (counts %v) — distribution badly skewed", i, c, keys, counts)
		}
	}
}

// TestPickStability pins rendezvous hashing's minimal-disruption
// property, the reason it was chosen (docs/SERVER.md "Fleet"): adding a
// node moves keys only onto the new node (about 1/(n+1) of them), and
// removing a node moves only the keys that lived on it.
func TestPickStability(t *testing.T) {
	base := []string{"a:1", "b:2", "c:3"}
	grown := append(append([]string{}, base...), "d:4")
	const keys = 8000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%05d", i)
		before, after := Pick(base, key), Pick(grown, key)
		if base[before] != grown[after] {
			if grown[after] != "d:4" {
				t.Fatalf("key %q moved %s → %s on node ADD — only moves onto the new node are allowed",
					key, base[before], grown[after])
			}
			moved++
		}
	}
	// Expect about keys/4 to land on the new node; allow a wide band.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("%d of %d keys moved when growing 3 → 4 nodes, want about %d", moved, keys, keys/4)
	}

	// Removal: keys on the surviving nodes must not move at all.
	shrunk := []string{"a:1", "c:3"} // b removed
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%05d", i)
		before := Pick(base, key)
		if base[before] == "b:2" {
			continue // its keys must re-home, anywhere
		}
		if after := Pick(shrunk, key); shrunk[after] != base[before] {
			t.Fatalf("key %q moved %s → %s on node REMOVE of an unrelated node",
				key, base[before], shrunk[after])
		}
	}
}
