package proxy

import (
	"fmt"
	"slices"

	"repro/internal/serve"
)

// Migrate moves one live tenant to the target backend: release on the
// source (flush its queue, snapshot, tombstone — protocol v4
// msgRelease), restore on the target (msgRestore), then flip the
// route. Submits racing the migration bounce off the source's
// tombstone with a retryable draining error and, once re-routed, off
// the target's sequence check with a BadSeq rewind — the two
// mechanisms that make the move invisible to a resumable client
// (rrload -verify stays bit-identical across a mid-run migration).
//
// If the restore fails, the tenant's state is restored back onto the
// source (over its own tombstone) so a failed migration strands
// nothing; only if that also fails — source lost between release and
// restore-back — does the tenant stay tombstoned, and the error says
// so.
func (p *Proxy) Migrate(tenant, target string) error {
	if target != p.cfg.Standby && !slices.Contains(p.cfg.Backends, target) {
		return fmt.Errorf("proxy: migrate %s: unknown target backend %s", tenant, target)
	}
	src := p.route(tenant)
	if src == "" {
		return fmt.Errorf("proxy: migrate %s: no live backend owns the tenant", tenant)
	}
	if src == target {
		return nil
	}
	sc, err := serve.Dial(src)
	if err != nil {
		return fmt.Errorf("proxy: migrate %s: dialing source %s: %w", tenant, src, err)
	}
	defer sc.Close()
	rel, err := sc.Release(tenant)
	if err != nil {
		return fmt.Errorf("proxy: migrate %s: releasing from %s: %w", tenant, src, err)
	}
	tc, err := serve.Dial(target)
	if err == nil {
		defer tc.Close()
		_, err = tc.Restore(tenant, rel.Config, rel.Blob)
	}
	if err != nil {
		// Put the state back where it came from; the source's tombstone
		// accepts a restore (that is how migrating back works too).
		if _, berr := sc.Restore(tenant, rel.Config, rel.Blob); berr != nil {
			return fmt.Errorf("proxy: migrate %s: restore on %s failed (%v) and restore-back on %s failed too: %w",
				tenant, target, err, src, berr)
		}
		return fmt.Errorf("proxy: migrate %s: restoring on %s (state returned to %s): %w", tenant, target, src, err)
	}
	p.mu.Lock()
	home := p.cfg.Backends[Pick(p.cfg.Backends, tenant)]
	if home == target && !p.dead[target] {
		delete(p.overrides, tenant) // the hash already says target
	} else {
		p.overrides[tenant] = target
	}
	p.mu.Unlock()
	p.logf("proxy: migrated tenant %s %s → %s (resume seq %d)", tenant, src, target, rel.NextSeq)
	return nil
}
