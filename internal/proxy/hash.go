package proxy

import "hash/fnv"

// Pick returns the index of the node owning key under rendezvous
// (highest-random-weight) hashing, or -1 when nodes is empty.
//
// Rendezvous hashing was chosen over a virtual-node ring (see
// docs/SERVER.md "Fleet"): every (key, node) pair gets an independent
// pseudo-random score and the key lives on its highest-scoring node, so
// removing a node moves exactly the keys that lived on it — provably
// minimal disruption with no virtual-node count to tune — and the O(n)
// scan per lookup is noise at router fleet sizes (a few dozen backends)
// next to a network round trip. Ties break to the lower index so the
// choice is deterministic across proxies sharing a backend list.
func Pick(nodes []string, key string) int {
	best, bestScore := -1, uint64(0)
	for i, node := range nodes {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
		h.Write([]byte(node))
		if s := h.Sum64(); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
