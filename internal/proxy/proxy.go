// Package proxy is the scale-out router tier in front of a fleet of
// rrserved backends (cmd/rrproxy). It speaks the serve wire protocol on
// the front — clients need no change — and fans out to N backends on
// the back, sharding tenants across them by rendezvous hashing on the
// tenant ID (Pick). Per-tenant requests are relayed byte-for-byte to
// the owning backend; fleet-wide requests (ping, all-tenant stats) are
// fanned out and merged at the proxy.
//
// Two operations make the tier more than a load balancer:
//
//   - Live migration (Migrate): release a tenant's state from its
//     current backend (protocol v4 msgRelease), restore it on another
//     (msgRestore), and flip the route. In-flight submits resume
//     exactly-once off the tenant's sequence numbers: a client racing
//     the flip sees a retryable draining error or a BadSeq rewind, both
//     of which the load generator's resume machinery already rides out.
//
//   - Warm standby (Config.Standby): every state-mutating frame routed
//     to a primary is teed — asynchronously, through a bounded buffer —
//     to a standby backend running the same admission logic, so the
//     standby trails the fleet by at most the buffer. When a primary
//     dies, its tenants re-route to the standby and resume from the
//     standby's sequence instead of rewinding to the last client-side
//     checkpoint; tee overflow degrades to exactly that rewind (the
//     sequence check on the standby rejects the gap) rather than ever
//     corrupting state.
//
// See docs/SERVER.md "Fleet" for the protocol sequence and semantics.
package proxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/snap"
)

// Config configures a Proxy.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Backends lists the rrserved addresses tenants are sharded across.
	// Order does not matter for placement (rendezvous hashing scores
	// each address independently) but must be consistent across proxies
	// sharing a fleet.
	Backends []string
	// Standby, when non-empty, is the warm-standby backend: mutating
	// frames are teed to it and tenants of a dead backend re-route to
	// it. It must not also be listed in Backends.
	Standby string
	// TeeBuffer bounds the standby tee's frame buffer (default 4096).
	// On overflow frames are dropped and counted — the standby falls
	// back to its last consistent point, never corrupts.
	TeeBuffer int
	// DialTimeout bounds backend dials and death probes (default 1s).
	DialTimeout time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return errors.New("proxy: no backends configured")
	}
	for i, b := range c.Backends {
		if b == "" {
			return errors.New("proxy: empty backend address")
		}
		if slices.Index(c.Backends, b) != i {
			return fmt.Errorf("proxy: duplicate backend %s", b)
		}
		if b == c.Standby {
			return fmt.Errorf("proxy: standby %s is also a backend", b)
		}
	}
	if c.TeeBuffer <= 0 {
		c.TeeBuffer = 4096
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	return nil
}

// Proxy is the router: one listener, one lazily-dialed upstream per
// (client connection, backend) pair, a shared standby tee, and the
// routing table (hash + overrides + dead set).
type Proxy struct {
	cfg Config
	ln  net.Listener
	tee *tee

	mu sync.Mutex
	// dead marks backends that failed a liveness probe. Sticky for the
	// proxy's lifetime: a backend that died mid-run stays routed around
	// until the operator restarts the tier, because routing tenants back
	// to a restarted-but-empty backend would fork their history.
	dead map[string]bool
	// overrides pins tenants to a backend regardless of the hash — the
	// result of a Migrate whose target is not the tenant's hash home.
	overrides map[string]string
	conns     map[net.Conn]struct{}

	closing  atomic.Bool
	connWG   sync.WaitGroup
	stopOnce sync.Once
}

// New binds the proxy's listener. Call Serve to accept connections.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: listening on %s: %w", cfg.Addr, err)
	}
	p := &Proxy{
		cfg:       cfg,
		ln:        ln,
		dead:      make(map[string]bool),
		overrides: make(map[string]string),
		conns:     make(map[net.Conn]struct{}),
	}
	if cfg.Standby != "" {
		p.tee = newTee(cfg.Standby, cfg.TeeBuffer, cfg.DialTimeout, p.logf)
	}
	return p, nil
}

// Addr reports the bound listen address (useful with ":0").
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// TeeDropped reports how many mutating frames the standby tee dropped
// (buffer overflow or standby unreachable) — each one a round the
// standby must recover via the clients' sequence rewind on failover.
func (p *Proxy) TeeDropped() int64 {
	if p.tee == nil {
		return 0
	}
	return p.tee.dropped.Load()
}

// Serve accepts connections until the listener closes. It returns nil
// after Close, and the accept error otherwise.
func (p *Proxy) Serve() error {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("proxy: accept: %w", err)
		}
		p.mu.Lock()
		if p.closing.Load() {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.connWG.Add(1)
		p.mu.Unlock()
		go p.handleConn(c)
	}
}

// Close stops the proxy: listener, every client connection (and with
// them the backend upstreams), and the standby tee, which is flushed
// best-effort first.
func (p *Proxy) Close() error {
	p.stopOnce.Do(func() {
		p.closing.Store(true)
		p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
		p.connWG.Wait()
		if p.tee != nil {
			p.tee.close()
		}
	})
	return nil
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// route picks the backend address for a tenant, "" when nothing is
// routable. Placement is stateless: a migration override wins,
// otherwise the tenant's rendezvous pick over the FULL backend list —
// hashing over the live subset instead would silently re-home a dead
// backend's tenants past the standby holding their teed state. A dead
// pick fails over to the standby when one is configured (warm failover:
// the standby already holds the teed state) and re-picks over the live
// backends otherwise (cold failover: clients rewind and re-feed).
func (p *Proxy) route(tenant string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.routeLocked(tenant)
}

func (p *Proxy) routeLocked(tenant string) string {
	if ov, ok := p.overrides[tenant]; ok {
		if p.dead[ov] && p.cfg.Standby != "" && ov != p.cfg.Standby {
			return p.cfg.Standby
		}
		return ov
	}
	addr := p.cfg.Backends[Pick(p.cfg.Backends, tenant)]
	if !p.dead[addr] {
		return addr
	}
	if p.cfg.Standby != "" {
		return p.cfg.Standby
	}
	live := make([]string, 0, len(p.cfg.Backends))
	for _, b := range p.cfg.Backends {
		if !p.dead[b] {
			live = append(live, b)
		}
	}
	if i := Pick(live, tenant); i >= 0 {
		return live[i]
	}
	return ""
}

// probeBackend checks whether a backend that just failed an I/O
// operation is actually down — one connect within DialTimeout — and
// marks it dead if so. A transient per-connection failure (peer reset
// one conn) must not re-home every tenant of a healthy backend.
func (p *Proxy) probeBackend(addr string) {
	if addr == "" || addr == p.cfg.Standby || p.closing.Load() {
		return
	}
	c, err := net.DialTimeout("tcp", addr, p.cfg.DialTimeout)
	if err == nil {
		c.Close()
		return
	}
	p.mu.Lock()
	wasDead := p.dead[addr]
	p.dead[addr] = true
	p.mu.Unlock()
	if !wasDead {
		p.logf("proxy: backend %s is down (%v); failing its tenants over", addr, err)
	}
}

// upstream is one lazily-dialed backend connection owned by a front
// connection. bw staging is only touched by the front reader goroutine;
// dirty marks staged-but-unflushed frames.
type upstream struct {
	addr  string
	conn  net.Conn
	bw    *bufio.Writer
	dirty bool
}

// frontConn is one client connection and its per-backend upstreams.
type frontConn struct {
	p     *Proxy
	front net.Conn
	br    *bufio.Reader

	wmu sync.Mutex // serializes whole frames onto fw
	fw  *bufio.Writer

	mu     sync.Mutex
	ups    map[string]*upstream
	closed bool

	down sync.Once
}

// handleConn runs one client connection: a reader loop peeking each
// request frame for its routing key and relaying it verbatim to the
// owning backend, per-upstream relay goroutines copying responses back,
// and local handling for the fleet-wide requests (ping, all-tenant
// stats). Any mid-stream upstream failure tears the whole front
// connection down — the client's reconnect machinery re-opens against
// whatever the routing table now says, which is what makes backend
// death transparent to a resumable client.
func (p *Proxy) handleConn(c net.Conn) {
	defer p.connWG.Done()
	fc := &frontConn{
		p:     p,
		front: c,
		br:    bufio.NewReader(c),
		fw:    bufio.NewWriter(c),
		ups:   make(map[string]*upstream),
	}
	defer fc.teardown("")
	defer func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}()
	enc := snap.NewEncoder()
	var buf []byte
	for {
		var err error
		buf, err = serve.ReadFrame(fc.br, buf)
		if err != nil {
			return // clean EOF or framing error; either way the conn is done
		}
		info, err := serve.PeekRequest(buf)
		if err != nil {
			// Match the backend's contract for unparseable frames: answer
			// with a bad-request error, then close.
			enc.Reset()
			serve.AppendErrorResponse(enc, info, err.Error())
			fc.writeLocal(enc.Bytes())
			return
		}
		switch info.Kind {
		case serve.ReqPing:
			enc.Reset()
			p.appendPing(enc, info)
			if !fc.writeLocal(enc.Bytes()) {
				return
			}
		case serve.ReqStatsAll:
			enc.Reset()
			p.appendFleetStats(enc, info)
			if !fc.writeLocal(enc.Bytes()) {
				return
			}
		case serve.ReqDuraStats:
			enc.Reset()
			p.appendDuraStats(enc, info)
			if !fc.writeLocal(enc.Bytes()) {
				return
			}
		default:
			addr := p.route(info.Tenant)
			if addr == "" {
				enc.Reset()
				serve.AppendUnavailableResponse(enc, info, "no live backend for tenant "+info.Tenant)
				if !fc.writeLocal(enc.Bytes()) {
					return
				}
				break
			}
			u, err := fc.upstream(addr)
			if err != nil {
				// The owner would not take a connection: probe it (possibly
				// re-routing every tenant it owned) and bounce this request
				// with a retryable error rather than killing the client's
				// connection — its retry will land wherever route says next.
				p.probeBackend(addr)
				enc.Reset()
				serve.AppendUnavailableResponse(enc, info, "backend "+addr+" unavailable")
				if !fc.writeLocal(enc.Bytes()) {
					return
				}
				break
			}
			if info.Mutating && p.tee != nil && addr != p.cfg.Standby {
				p.tee.enqueue(buf)
			}
			if err := serve.WriteFrame(u.bw, buf); err != nil {
				fc.teardown(addr)
				return
			}
			u.dirty = true
		}
		// Flush staged upstream frames once the client pauses: everything
		// buffered so far belongs to complete frames (peers flush their
		// socket before waiting), so batching flushes per client burst is
		// safe and saves a syscall per pipelined frame.
		if fc.br.Buffered() == 0 {
			if !fc.flushUpstreams() {
				return
			}
		}
	}
}

// upstream returns the connection to addr, dialing it on first use and
// spawning its response relay.
func (fc *frontConn) upstream(addr string) (*upstream, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.closed {
		return nil, net.ErrClosed
	}
	if u, ok := fc.ups[addr]; ok {
		return u, nil
	}
	conn, err := net.DialTimeout("tcp", addr, fc.p.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	u := &upstream{addr: addr, conn: conn, bw: bufio.NewWriter(conn)}
	fc.ups[addr] = u
	go fc.relay(u)
	return u, nil
}

// relay copies response frames from one backend to the client. Each
// frame is written and flushed under wmu so frames from different
// backends interleave whole, never byte-mixed. Any error tears the
// front connection down: the relay cannot know which in-flight requests
// just lost their responses, but the client's reconnect machinery can.
func (fc *frontConn) relay(u *upstream) {
	br := bufio.NewReader(u.conn)
	var buf []byte
	for {
		var err error
		buf, err = serve.ReadFrame(br, buf)
		if err != nil {
			fc.teardown(u.addr)
			return
		}
		if !fc.writeLocal(buf) {
			fc.teardown(u.addr)
			return
		}
	}
}

// writeLocal writes one whole frame to the client, reporting false on
// error. Flushing per frame keeps cross-backend interleavings whole;
// coalescing here would risk holding a partial frame while another
// relay appends.
func (fc *frontConn) writeLocal(body []byte) bool {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if err := serve.WriteFrame(fc.fw, body); err != nil {
		return false
	}
	return fc.fw.Flush() == nil
}

// flushUpstreams pushes every staged upstream frame to its backend,
// reporting false (after teardown) when a backend write fails.
func (fc *frontConn) flushUpstreams() bool {
	fc.mu.Lock()
	dirty := make([]*upstream, 0, len(fc.ups))
	for _, u := range fc.ups {
		if u.dirty {
			u.dirty = false
			dirty = append(dirty, u)
		}
	}
	fc.mu.Unlock()
	for _, u := range dirty {
		if err := u.bw.Flush(); err != nil {
			fc.teardown(u.addr)
			return false
		}
	}
	return true
}

// teardown closes the front connection and every upstream, once.
// failedAddr names the backend whose I/O just failed ("" when the
// client side ended the connection) so its death can be probed and its
// tenants re-routed before the client's reconnect lands.
func (fc *frontConn) teardown(failedAddr string) {
	fc.down.Do(func() {
		if failedAddr != "" {
			fc.p.probeBackend(failedAddr)
		}
		fc.mu.Lock()
		fc.closed = true
		ups := make([]*upstream, 0, len(fc.ups))
		for _, u := range fc.ups {
			ups = append(ups, u)
		}
		fc.mu.Unlock()
		fc.front.Close()
		for _, u := range ups {
			u.conn.Close()
		}
	})
}

// ——— Fleet-wide requests handled at the proxy ———

// appendPing answers a ping for the fleet: draining when any reachable
// backend drains, tenant counts summed over the primaries (the standby
// hosts only teed replicas, which would double-count).
func (p *Proxy) appendPing(enc *snap.Encoder, info serve.PeekInfo) {
	draining := false
	tenants := 0
	for _, addr := range p.liveBackends() {
		c, err := serve.Dial(addr)
		if err != nil {
			p.probeBackend(addr)
			continue
		}
		d, n, err := c.Ping()
		c.Close()
		if err != nil {
			p.probeBackend(addr)
			continue
		}
		draining = draining || d
		tenants += n
	}
	serve.AppendPingResponse(enc, info, draining, tenants)
}

// appendFleetStats answers an all-tenant stats request by fanning out
// to every live backend, merging the rows sorted by tenant ID, and —
// for the extended shape — recomputing each ServiceShare against the
// fleet-wide served-rounds total (each backend only knows its own).
// Standby rows are included only for tenants the routing table actually
// sends there (their primary died); otherwise the standby's teed
// replicas would shadow the primaries' live rows. Unreachable backends
// are skipped best-effort: a stats poll must not fail because one
// backend is mid-crash.
func (p *Proxy) appendFleetStats(enc *snap.Encoder, info serve.PeekInfo) {
	var rows []serve.TenantStats
	backends := p.liveBackends()
	anyDead := len(backends) < len(p.cfg.Backends)
	for _, addr := range backends {
		rs, err := p.statsFrom(addr, info.Extended)
		if err != nil {
			p.probeBackend(addr)
			continue
		}
		rows = append(rows, rs...)
	}
	if p.cfg.Standby != "" && anyDead {
		if rs, err := p.statsFrom(p.cfg.Standby, info.Extended); err == nil {
			for _, r := range rs {
				if p.route(r.ID) == p.cfg.Standby {
					rows = append(rows, r)
				}
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	if info.Extended {
		var total float64
		for i := range rows {
			total += float64(rows[i].ServedRounds)
		}
		for i := range rows {
			rows[i].ServiceShare = 0
			if total > 0 {
				rows[i].ServiceShare = float64(rows[i].ServedRounds) / total
			}
		}
	}
	serve.AppendStatsResponse(enc, info, rows)
}

// appendDuraStats answers a durability-stats request for the fleet
// (protocol v6): the counters summed across every live backend, with a
// per-backend breakdown labelled by address in Backends. Mode is the
// backends' common mode, or "mixed" when they disagree. Unreachable
// backends are skipped best-effort, like the stats fan-out.
func (p *Proxy) appendDuraStats(enc *snap.Encoder, info serve.PeekInfo) {
	var sum serve.DuraStats
	for _, addr := range p.liveBackends() {
		c, err := serve.Dial(addr)
		if err != nil {
			p.probeBackend(addr)
			continue
		}
		st, err := c.DuraStats()
		c.Close()
		if err != nil {
			p.probeBackend(addr)
			continue
		}
		switch {
		case sum.Mode == "":
			sum.Mode = st.Mode
		case sum.Mode != st.Mode:
			sum.Mode = "mixed"
		}
		sum.Appends += st.Appends
		sum.Bytes += st.Bytes
		sum.Fsyncs += st.Fsyncs
		sum.Deltas += st.Deltas
		sum.Rotations += st.Rotations
		sum.Compactions += st.Compactions
		sum.Segments += st.Segments
		st.Backends = nil // a backend never reports rows; keep it that way
		sum.Backends = append(sum.Backends, serve.BackendDuraStats{Addr: addr, DuraStats: st})
	}
	serve.AppendDuraStatsResponse(enc, info, sum)
}

func (p *Proxy) statsFrom(addr string, extended bool) ([]serve.TenantStats, error) {
	c, err := serve.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if extended {
		return c.Stats("")
	}
	return c.StatsCompat("")
}

// liveBackends snapshots the backends not marked dead.
func (p *Proxy) liveBackends() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := make([]string, 0, len(p.cfg.Backends))
	for _, b := range p.cfg.Backends {
		if !p.dead[b] {
			live = append(live, b)
		}
	}
	return live
}
