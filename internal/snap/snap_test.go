package snap

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(0)
	e.Uint64(math.MaxUint64)
	e.Int64(math.MinInt64)
	e.Int64(math.MaxInt64)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Pi)
	e.Float64(math.Inf(-1))
	e.String("")
	e.String("héllo\x00world")
	e.Ints(nil)
	e.Ints([]int{3, -1, 0})

	d := NewDecoder(e.Bytes())
	if v := d.Uint64(); v != 0 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := d.Uint64(); v != math.MaxUint64 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := d.Int64(); v != math.MinInt64 {
		t.Errorf("Int64 = %d", v)
	}
	if v := d.Int64(); v != math.MaxInt64 {
		t.Errorf("Int64 = %d", v)
	}
	if v := d.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool mismatch")
	}
	if v := d.Float64(); v != math.Pi {
		t.Errorf("Float64 = %v", v)
	}
	if v := d.Float64(); !math.IsInf(v, -1) {
		t.Errorf("Float64 = %v", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("String = %q", v)
	}
	if v := d.String(); v != "héllo\x00world" {
		t.Errorf("String = %q", v)
	}
	if v := d.Ints(); v != nil {
		t.Errorf("Ints = %v", v)
	}
	if v := d.Ints(); len(v) != 3 || v[0] != 3 || v[1] != -1 || v[2] != 0 {
		t.Errorf("Ints = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64BitExact(t *testing.T) {
	// NaN payloads and signed zeros must survive exactly: the checkpoint
	// contract is bit-identical state, not merely numerically-equal state.
	for _, f := range []float64{math.Copysign(0, -1), math.Float64frombits(0x7ff8000000000001)} {
		e := NewEncoder()
		e.Float64(f)
		d := NewDecoder(e.Bytes())
		got := d.Float64()
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("bits %016x → %016x", math.Float64bits(f), math.Float64bits(got))
		}
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder()
	e.Int(12345)
	e.String("some payload")
	full := e.Bytes()
	// Every strict prefix must produce an error somewhere, never panic.
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.Int()
		_ = d.String()
		if d.Err() == nil && d.Done() == nil {
			t.Errorf("prefix of %d/%d bytes decoded cleanly", cut, len(full))
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder(nil)
	if v := d.Int(); v != 0 {
		t.Errorf("Int after error = %d", v)
	}
	first := d.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	// Later failures must not replace the first.
	d.Failf("later error")
	if d.Err() != first {
		t.Errorf("error replaced: %v", d.Err())
	}
	if d.Bool() || d.Float64() != 0 || d.String() != "" || d.Ints() != nil {
		t.Error("reads after error must return zero values")
	}
}

func TestDecoderRejectsHugeLength(t *testing.T) {
	e := NewEncoder()
	e.Int(1 << 40) // a length that cannot possibly fit
	d := NewDecoder(e.Bytes())
	if n := d.Len(); n != 0 || d.Err() == nil {
		t.Fatalf("Len = %d, err = %v; want rejection", n, d.Err())
	}
}

func TestDecoderRejectsNegativeLength(t *testing.T) {
	e := NewEncoder()
	e.Int(-1)
	d := NewDecoder(e.Bytes())
	if n := d.Len(); n != 0 || d.Err() == nil {
		t.Fatalf("Len = %d, err = %v; want rejection", n, d.Err())
	}
}

func TestDecoderRejectsInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{7})
	if d.Bool() || d.Err() == nil {
		t.Fatal("bool byte 7 must be rejected")
	}
}

func TestDoneRejectsTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.Int(1)
	data := append(bytes.Clone(e.Bytes()), 0xff)
	d := NewDecoder(data)
	d.Int()
	if err := d.Done(); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	mk := func() []byte {
		e := NewEncoder()
		e.Int(7)
		e.String("abc")
		e.Ints([]int{1, 2, 3})
		e.Float64(1.5)
		return e.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Blob([]byte("hello"))
	e.Blob(nil)
	e.Blob([]byte{0, 255, 7})

	d := NewDecoder(e.Bytes())
	if got := d.Blob(); string(got) != "hello" {
		t.Fatalf("Blob = %q, want %q", got, "hello")
	}
	if got := d.Blob(); got != nil {
		t.Fatalf("empty Blob = %v, want nil", got)
	}
	scratch := make([]byte, 0, 8)
	scratch = d.AppendBlob(scratch)
	if string(scratch) != string([]byte{0, 255, 7}) {
		t.Fatalf("AppendBlob = %v", scratch)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestBlobTruncated(t *testing.T) {
	e := NewEncoder()
	e.Blob([]byte("payload"))
	for cut := 0; cut < e.Len(); cut++ {
		d := NewDecoder(e.Bytes()[:cut])
		d.Blob()
		if d.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.Int(12345)
	e.String("abc")
	first := append([]byte(nil), e.Bytes()...)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.Int(12345)
	e.String("abc")
	if string(e.Bytes()) != string(first) {
		t.Fatal("re-encoding after Reset differs")
	}
	// Steady state: Reset + re-encode must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.Int(12345)
		e.String("abc")
	})
	if allocs != 0 {
		t.Fatalf("Reset+encode allocates %.1f per run", allocs)
	}
}

func TestStringCached(t *testing.T) {
	e := NewEncoder()
	e.String("tenant-42")
	e.String("other")
	e.String("tenant-42")
	d := NewDecoder(e.Bytes())
	prev := "tenant-42"
	if got := d.StringCached(prev); got != "tenant-42" {
		t.Fatalf("StringCached = %q", got)
	}
	if got := d.StringCached(prev); got != "other" {
		t.Fatalf("StringCached on mismatch = %q", got)
	}
	if got := d.StringCached(prev); got != "tenant-42" {
		t.Fatalf("StringCached = %q", got)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	// Truncated input surfaces through the sticky error, like String.
	d = NewDecoder(e.Bytes()[:3])
	if d.StringCached("x"); d.Err() == nil {
		t.Fatal("truncated StringCached not detected")
	}
	// The hit path is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.String(prev)
		d := Decoder{data: e.Bytes()}
		if d.StringCached(prev) != prev {
			t.Fatal("cache miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("StringCached hit allocates %.1f per run", allocs)
	}
}
