// Package snap is the binary codec underneath the checkpoint/restore
// subsystem (docs/CHECKPOINT.md): a deterministic, allocation-lean
// encoder and a sticky-error decoder that policies, containers, the
// round engine and the trace container format all share.
//
// Design rules:
//
//   - Deterministic: encoding the same state always yields the same
//     bytes (map-backed state must be written in a canonical order by
//     the caller), so snapshot → restore → snapshot is byte-identical —
//     the property the checkpoint tests pin.
//   - Defensive: the Decoder never panics on corrupt or truncated
//     input. Every read is bounds-checked; the first failure sticks and
//     every later read returns a zero value, so callers may decode a
//     whole structure and check Err once. Collection lengths go through
//     Len, which rejects counts that could not possibly fit the
//     remaining bytes, bounding attacker-controlled allocations.
//   - Compact: integers use varint/zigzag encoding; floats are 8 fixed
//     bytes so bit patterns survive exactly.
//
// The package has no dependencies, so every layer of the repository —
// container, colorstate, policy, core, sched, trace — can use it
// without import cycles.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends values to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer. The slice aliases the encoder's
// internal storage; copy it if the encoder will be reused.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder to empty while keeping its backing
// storage, so a long-lived encoder (a connection handler encoding one
// frame per request) reaches a steady state with no per-frame
// allocation. Any slice previously obtained from Bytes is invalidated.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Attach makes buf the encoder's backing storage; subsequent writes
// append after buf's existing bytes. Callers that own a pooled buffer
// pass buf[:0] to encode into it without allocating, then take the
// (possibly re-grown) storage back via Bytes. Attach(nil) detaches the
// encoder from caller-owned storage.
func (e *Encoder) Attach(buf []byte) { e.buf = buf }

// Uint64 appends v as an unsigned varint.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int64 appends v as a zigzag-encoded varint.
func (e *Encoder) Int64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends v as a zigzag-encoded varint.
func (e *Encoder) Int(v int) { e.Int64(int64(v)) }

// Bool appends b as one byte (0 or 1).
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the exact IEEE-754 bit pattern of f as 8 little-endian
// bytes, so restored floating-point state is bit-identical.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends s length-prefixed.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Ints appends vs length-prefixed.
func (e *Encoder) Ints(vs []int) {
	e.Int(len(vs))
	for _, v := range vs {
		e.Int(v)
	}
}

// Blob appends b length-prefixed, for nested opaque payloads (a
// checkpoint blob carried inside a wire frame).
func (e *Encoder) Blob(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// Decoder consumes a byte buffer produced by an Encoder. Errors are
// sticky: after the first failure every read returns a zero value and
// Err reports the failure, so a caller can decode a whole structure and
// check once at the end. The decoder never panics on corrupt input.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err reports the first decoding failure, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of bytes not yet consumed.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Failf records a semantic error (wrong version, inconsistent state…)
// found by the caller mid-decode; like intrinsic decode errors it is
// sticky and surfaces through Err. The first error wins.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Done reports the sticky error if any, and otherwise fails unless the
// input was consumed exactly — trailing garbage is as much a corruption
// signal as truncation.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("snap: %d trailing bytes after decoding", len(d.data)-d.off)
	}
	return nil
}

// Uint64 reads an unsigned varint.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.Failf("snap: truncated or malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int64 reads a zigzag-encoded varint.
func (d *Decoder) Int64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.Failf("snap: truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a zigzag-encoded varint as an int.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Bool reads one byte that must be exactly 0 or 1.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.Failf("snap: truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	if b > 1 {
		d.Failf("snap: invalid bool byte %d at offset %d", b, d.off)
		return false
	}
	d.off++
	return b == 1
}

// Float64 reads an 8-byte IEEE-754 bit pattern.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.Failf("snap: truncated float64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len()
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// StringCached reads a length-prefixed string, returning prev — without
// allocating — when the encoded bytes equal it. A decoder reused across
// frames (a connection decoding the same tenant ID on every submit)
// reaches a zero-allocation steady state this way.
func (d *Decoder) StringCached(prev string) string {
	n := d.Len()
	if d.err != nil {
		return ""
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	if string(b) == prev { // comparison, not conversion: no allocation
		return prev
	}
	return string(b)
}

// Len reads a collection length and validates it against the remaining
// input: lengths are non-negative and every element of every collection
// this codec writes occupies at least one byte, so a length exceeding
// the remaining byte count proves corruption. This check bounds the
// allocation a corrupt length can trigger.
func (d *Decoder) Len() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.Failf("snap: negative length %d at offset %d", n, d.off)
		return 0
	}
	if n > d.Remaining() {
		d.Failf("snap: length %d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte slice into a fresh copy. A nil
// slice is returned for length zero, matching the encoder's treatment
// of nil.
func (d *Decoder) Blob() []byte {
	return d.AppendBlob(nil)
}

// AppendBlob reads a length-prefixed byte slice appending onto dst
// (which may be nil), so steady-state decoders can reuse one buffer
// across frames. A zero-length blob returns dst unchanged.
func (d *Decoder) AppendBlob(dst []byte) []byte {
	n := d.Len()
	if d.err != nil || n == 0 {
		return dst
	}
	dst = append(dst, d.data[d.off:d.off+n]...)
	d.off += n
	return dst
}

// Ints reads a length-prefixed []int. A nil slice is returned for
// length zero, matching the encoder's treatment of nil.
func (d *Decoder) Ints() []int {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return vs
}
