// Binary delta encoding between two opaque byte strings, used by the
// group-commit checkpoint log (docs/CHECKPOINT.md "Group-commit log")
// to store steady-state checkpoints as changes against a retained full
// snapshot. The scheme is a greedy block-match in the rsync family:
// the base is indexed at block-aligned offsets, the target is scanned
// byte by byte, and runs that match the base verbatim become COPY ops
// while everything else becomes LITERAL bytes. A delta embeds the
// target's exact length and CRC-32, so ApplyDelta either reproduces
// the target bit-identically or fails loudly — it never panics on
// corrupt input, matching the Decoder's defensive contract.

package snap

import (
	"fmt"
	"hash/crc32"
)

const (
	// deltaVersion is the format version embedded in every delta.
	deltaVersion = 1
	// deltaBlock is the match granularity: the base is indexed at this
	// alignment. Smaller blocks find more matches but cost more index
	// space and more per-byte hashing; 32 suits the few-KiB snapshot
	// blobs the checkpoint path produces.
	deltaBlock = 32
	// maxDeltaTarget bounds the declared output size so a corrupt delta
	// cannot trigger an unbounded allocation.
	maxDeltaTarget = 1 << 30

	deltaOpCopy    = 0
	deltaOpLiteral = 1
)

// DeltaMaker computes deltas, retaining its block-index storage across
// calls so steady-state delta encoding does not allocate (beyond output
// growth). The zero value is ready to use. Not safe for concurrent use.
type DeltaMaker struct {
	keys []uint64 // open-addressed block hash table: hashed block content
	offs []int32  // base offset per slot; -1 marks an empty slot
}

// MakeDelta computes a delta that transforms base into target. It is
// the convenience form of new(DeltaMaker).AppendDelta(nil, base, target).
func MakeDelta(base, target []byte) []byte {
	var dm DeltaMaker
	return dm.AppendDelta(nil, base, target)
}

// fnv1a64 hashes one block of b starting at off. Inlined FNV-1a keeps
// the scan loop free of interface dispatch and allocation.
func fnv1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// index (re)builds the block hash table over base. Later blocks
// overwrite earlier same-hash slots, biasing matches toward the end of
// the base; for snapshot blobs (append-heavy growth) that is the
// profitable direction.
func (dm *DeltaMaker) index(base []byte) {
	nBlocks := len(base) / deltaBlock
	size := 1
	for size < 2*nBlocks {
		size <<= 1
	}
	if size < 8 {
		size = 8
	}
	if cap(dm.keys) < size {
		dm.keys = make([]uint64, size)
		dm.offs = make([]int32, size)
	}
	dm.keys = dm.keys[:size]
	dm.offs = dm.offs[:size]
	for i := range dm.offs {
		dm.offs[i] = -1
	}
	mask := uint64(size - 1)
	for off := 0; off+deltaBlock <= len(base); off += deltaBlock {
		h := fnv1a64(base[off : off+deltaBlock])
		slot := h & mask
		for probes := 0; dm.offs[slot] >= 0 && dm.keys[slot] != h; probes++ {
			if probes >= 8 {
				// Bounded probing: give up on this block rather than
				// degrade into a linear scan on adversarial content.
				slot = mask + 1
				break
			}
			slot = (slot + 1) & mask
		}
		if slot <= mask {
			dm.keys[slot] = h
			dm.offs[slot] = int32(off)
		}
	}
}

// lookup returns the base offset whose indexed block hashes to h, or -1.
func (dm *DeltaMaker) lookup(h uint64) int {
	mask := uint64(len(dm.keys) - 1)
	slot := h & mask
	for probes := 0; probes < 9; probes++ {
		off := dm.offs[slot]
		if off < 0 {
			return -1
		}
		if dm.keys[slot] == h {
			return int(off)
		}
		slot = (slot + 1) & mask
	}
	return -1
}

// AppendDelta appends to dst a delta transforming base into target and
// returns the extended slice. dst may be nil or a recycled buffer
// (pass buf[:0]). The result is self-contained against base only —
// deltas never chain.
func (dm *DeltaMaker) AppendDelta(dst, base, target []byte) []byte {
	var e Encoder
	e.Attach(dst)
	e.Uint64(deltaVersion)
	e.Int(len(target))
	e.Uint64(uint64(crc32.ChecksumIEEE(target)))

	dm.index(base)

	litStart := 0 // start of the pending literal run
	i := 0
	for i+deltaBlock <= len(target) {
		h := fnv1a64(target[i : i+deltaBlock])
		off := dm.lookup(h)
		if off < 0 || string(base[off:off+deltaBlock]) != string(target[i:i+deltaBlock]) {
			i++
			continue
		}
		// Verified match. Extend backward into the pending literal…
		for off > 0 && i > litStart && base[off-1] == target[i-1] {
			off--
			i--
		}
		ln := deltaBlock
		// …and forward past the block.
		for off+ln < len(base) && i+ln < len(target) && base[off+ln] == target[i+ln] {
			ln++
		}
		if litStart < i {
			e.Uint64(deltaOpLiteral)
			e.Blob(target[litStart:i])
		}
		e.Uint64(deltaOpCopy)
		e.Int(off)
		e.Int(ln)
		i += ln
		litStart = i
	}
	if litStart < len(target) {
		e.Uint64(deltaOpLiteral)
		e.Blob(target[litStart:])
	}
	return e.Bytes()
}

// ApplyDelta reconstructs the target from base and a delta produced by
// AppendDelta, appending onto dst (which may be nil). It validates the
// version, every COPY range, the declared output length and the
// embedded CRC-32; any inconsistency returns an error and never
// panics, so a corrupt checkpoint record is a loud recovery failure
// rather than silent state divergence.
func ApplyDelta(dst, base, delta []byte) ([]byte, error) {
	d := NewDecoder(delta)
	if v := d.Uint64(); d.Err() == nil && v != deltaVersion {
		d.Failf("snap: unsupported delta version %d", v)
	}
	want := d.Int()
	if d.Err() == nil && (want < 0 || want > maxDeltaTarget) {
		d.Failf("snap: implausible delta target length %d", want)
	}
	wantCRC := uint32(d.Uint64())
	start := len(dst)
	for d.Err() == nil && d.Remaining() > 0 {
		switch op := d.Uint64(); op {
		case deltaOpCopy:
			off := d.Int()
			ln := d.Int()
			if d.Err() != nil {
				break
			}
			if off < 0 || ln < 0 || off > len(base) || ln > len(base)-off {
				d.Failf("snap: delta copy [%d,+%d) outside %d-byte base", off, ln, len(base))
				break
			}
			if len(dst)-start+ln > want {
				d.Failf("snap: delta output exceeds declared length %d", want)
				break
			}
			dst = append(dst, base[off:off+ln]...)
		case deltaOpLiteral:
			n := d.Len()
			if d.Err() != nil {
				break
			}
			if len(dst)-start+n > want {
				d.Failf("snap: delta output exceeds declared length %d", want)
				break
			}
			dst = append(dst, d.data[d.off:d.off+n]...)
			d.off += n
		default:
			d.Failf("snap: unknown delta op %d", op)
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := dst[start:]
	if len(out) != want {
		return nil, fmt.Errorf("snap: delta produced %d bytes, declared %d", len(out), want)
	}
	if got := crc32.ChecksumIEEE(out); got != wantCRC {
		return nil, fmt.Errorf("snap: delta output CRC %08x, declared %08x", got, wantCRC)
	}
	return dst, nil
}
