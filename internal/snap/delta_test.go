package snap

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundtripDelta(t *testing.T, base, target []byte) []byte {
	t.Helper()
	delta := MakeDelta(base, target)
	got, err := ApplyDelta(nil, base, delta)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("delta roundtrip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return delta
}

func TestDeltaRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := make([]byte, 4096)
	rng.Read(base)

	t.Run("identical", func(t *testing.T) {
		delta := roundtripDelta(t, base, base)
		if len(delta) > 64 {
			t.Fatalf("identical-input delta is %d bytes; want a handful of copy ops", len(delta))
		}
	})
	t.Run("empty-target", func(t *testing.T) {
		roundtripDelta(t, base, nil)
	})
	t.Run("empty-base", func(t *testing.T) {
		roundtripDelta(t, nil, base)
	})
	t.Run("point-mutations", func(t *testing.T) {
		target := append([]byte(nil), base...)
		for i := 0; i < 8; i++ {
			target[rng.Intn(len(target))] ^= 0xff
		}
		delta := roundtripDelta(t, base, target)
		if len(delta) >= len(target) {
			t.Fatalf("point-mutation delta (%d bytes) not smaller than target (%d)", len(delta), len(target))
		}
	})
	t.Run("append-growth", func(t *testing.T) {
		target := append(append([]byte(nil), base...), make([]byte, 512)...)
		rng.Read(target[len(base):])
		delta := roundtripDelta(t, base, target)
		if len(delta) >= len(target)/2 {
			t.Fatalf("append-growth delta (%d bytes) should be near the 512 appended bytes", len(delta))
		}
	})
	t.Run("insert-middle", func(t *testing.T) {
		ins := make([]byte, 100)
		rng.Read(ins)
		target := append(append(append([]byte(nil), base[:2000]...), ins...), base[2000:]...)
		roundtripDelta(t, base, target)
	})
	t.Run("unrelated", func(t *testing.T) {
		target := make([]byte, 4096)
		rng.Read(target)
		roundtripDelta(t, base, target)
	})
}

// TestDeltaRandomized fuzzes the encoder against randomized mutations
// of randomized bases: every (base, target) pair must roundtrip
// bit-identically.
func TestDeltaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dm DeltaMaker
	var scratch []byte
	for iter := 0; iter < 200; iter++ {
		base := make([]byte, rng.Intn(2048))
		rng.Read(base)
		target := append([]byte(nil), base...)
		for m := rng.Intn(6); m > 0; m-- {
			switch rng.Intn(3) {
			case 0: // flip a byte
				if len(target) > 0 {
					target[rng.Intn(len(target))] ^= byte(1 + rng.Intn(255))
				}
			case 1: // insert a run
				if len(target) > 0 {
					at := rng.Intn(len(target))
					ins := make([]byte, rng.Intn(97))
					rng.Read(ins)
					target = append(target[:at], append(ins, target[at:]...)...)
				}
			case 2: // delete a run
				if len(target) > 10 {
					at := rng.Intn(len(target) - 10)
					n := rng.Intn(10)
					target = append(target[:at], target[at+n:]...)
				}
			}
		}
		delta := dm.AppendDelta(scratch[:0], base, target)
		scratch = delta
		got, err := ApplyDelta(nil, base, delta)
		if err != nil {
			t.Fatalf("iter %d: ApplyDelta: %v", iter, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("iter %d: roundtrip mismatch", iter)
		}
	}
}

// TestDeltaCorruption flips every byte of a real delta one at a time:
// ApplyDelta must never panic and must never silently return wrong
// output — every successful apply must still equal the target.
func TestDeltaCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 1024)
	rng.Read(base)
	target := append([]byte(nil), base...)
	target[100] ^= 0xff
	target = append(target, 0xAA, 0xBB, 0xCC)
	delta := MakeDelta(base, target)

	for i := range delta {
		mut := append([]byte(nil), delta...)
		mut[i] ^= 0x55
		got, err := ApplyDelta(nil, base, mut)
		if err == nil && !bytes.Equal(got, target) {
			t.Fatalf("byte %d: corrupt delta applied without error to wrong output", i)
		}
	}
	for cut := 0; cut < len(delta); cut++ {
		got, err := ApplyDelta(nil, base, delta[:cut])
		if err == nil && !bytes.Equal(got, target) {
			t.Fatalf("cut %d: truncated delta applied without error to wrong output", cut)
		}
	}
	// Wrong base: CRC must catch it.
	wrongBase := append([]byte(nil), base...)
	wrongBase[0] ^= 0xff
	if got, err := ApplyDelta(nil, wrongBase, delta); err == nil && !bytes.Equal(got, target) {
		t.Fatal("delta against mutated base applied without error to wrong output")
	}
}

// TestDeltaMakerSteadyStateAllocs pins that a warmed DeltaMaker
// encoding into a recycled buffer does not allocate.
func TestDeltaMakerSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := make([]byte, 4096)
	rng.Read(base)
	target := append([]byte(nil), base...)
	target[7] ^= 0x1
	target[4000] ^= 0x2

	var dm DeltaMaker
	buf := dm.AppendDelta(nil, base, target) // warm index + output
	allocs := testing.AllocsPerRun(100, func() {
		buf = dm.AppendDelta(buf[:0], base, target)
	})
	if allocs > 0 {
		t.Fatalf("warmed AppendDelta allocates %.1f/op; want 0", allocs)
	}
}

func BenchmarkDeltaEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 16<<10)
	rng.Read(base)
	target := append([]byte(nil), base...)
	for i := 0; i < 32; i++ {
		target[rng.Intn(len(target))] ^= 0xff
	}
	var dm DeltaMaker
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dm.AppendDelta(buf[:0], base, target)
	}
}
