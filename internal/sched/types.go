// Package sched defines the reconfigurable-resource-scheduling model of
// Plaxton, Sun, Tiwari and Vin (IPPS 2007) and a deterministic round-based
// simulator for it.
//
// An instance consists of unit jobs of colored categories arriving over
// integer rounds. Each color ℓ has a fixed delay bound D_ℓ; a job arriving
// in round t must be executed on a resource configured with its color in
// rounds t … t+D_ℓ−1 or it is dropped at unit cost at the start of round
// t+D_ℓ. Reconfiguring a resource to a different color costs Δ. A round
// has four phases, in order: drop, arrival, reconfiguration, execution
// (§2 of the paper). The goal is to minimize reconfiguration + drop cost.
package sched

import "fmt"

// Color identifies a job category. Colors are dense small integers
// 0 … NumColors-1. NoColor represents the initial "black" configuration of
// a resource (no jobs can run on a black resource).
type Color int32

// NoColor is the initial (black) configuration of every resource.
const NoColor Color = -1

// Batch is a group of Count unit jobs of one color arriving together.
type Batch struct {
	Color Color
	Count int
}

// Request is the (possibly empty) set of jobs arriving in one round,
// grouped per color.
type Request []Batch

// Jobs reports the total number of jobs in the request.
func (r Request) Jobs() int {
	n := 0
	for _, b := range r {
		n += b.Count
	}
	return n
}

// Instance is a complete problem instance: the reconfiguration cost Δ, the
// per-color delay bounds, and the request sequence.
type Instance struct {
	// Name labels the instance in experiment output.
	Name string
	// Delta is the fixed reconfiguration cost Δ (a positive integer).
	Delta int
	// Delays[c] is the delay bound D_c of color c (a positive integer).
	Delays []int
	// Requests[i] is the request received in round i. Entries may be nil
	// (empty requests). The instance covers rounds 0 … len(Requests)-1;
	// the simulator keeps running past the end until no jobs are pending.
	Requests []Request
}

// NumColors reports the number of colors in the instance.
func (in *Instance) NumColors() int { return len(in.Delays) }

// NumRounds reports the number of rounds carrying (possibly empty)
// requests.
func (in *Instance) NumRounds() int { return len(in.Requests) }

// MaxDelay returns the largest delay bound, or 0 for a colorless instance.
func (in *Instance) MaxDelay() int {
	m := 0
	for _, d := range in.Delays {
		if d > m {
			m = d
		}
	}
	return m
}

// Horizon reports the number of rounds after which every job has been
// executed or dropped: NumRounds + MaxDelay.
func (in *Instance) Horizon() int { return in.NumRounds() + in.MaxDelay() }

// TotalJobs reports the total number of jobs across all requests.
func (in *Instance) TotalJobs() int {
	n := 0
	for _, r := range in.Requests {
		n += r.Jobs()
	}
	return n
}

// JobsPerColor returns a slice counting the jobs of each color.
func (in *Instance) JobsPerColor() []int {
	per := make([]int, in.NumColors())
	for _, r := range in.Requests {
		for _, b := range r {
			per[b.Color] += b.Count
		}
	}
	return per
}

// Validate checks structural sanity: Δ ≥ 1, every delay bound ≥ 1, every
// batch names a valid color with a positive count.
func (in *Instance) Validate() error {
	if in.Delta < 1 {
		return fmt.Errorf("sched: instance %q: Delta must be ≥ 1, got %d", in.Name, in.Delta)
	}
	for c, d := range in.Delays {
		if d < 1 {
			return fmt.Errorf("sched: instance %q: color %d has delay bound %d < 1", in.Name, c, d)
		}
	}
	for i, r := range in.Requests {
		for _, b := range r {
			if b.Color < 0 || int(b.Color) >= in.NumColors() {
				return fmt.Errorf("sched: instance %q: round %d names unknown color %d", in.Name, i, b.Color)
			}
			if b.Count <= 0 {
				return fmt.Errorf("sched: instance %q: round %d has non-positive batch count %d", in.Name, i, b.Count)
			}
		}
	}
	return nil
}

// IsBatched reports whether the instance satisfies the batched-arrival
// restriction [Δ | 1 | D_ℓ | D_ℓ]: every job of color ℓ arrives at an
// integral multiple of D_ℓ.
func (in *Instance) IsBatched() bool {
	for i, r := range in.Requests {
		for _, b := range r {
			if i%in.Delays[b.Color] != 0 {
				return false
			}
		}
	}
	return true
}

// IsRateLimited reports whether the instance satisfies the rate limit of
// §3: at most D_ℓ jobs of color ℓ arrive at each integral multiple of D_ℓ
// (and the instance is batched).
func (in *Instance) IsRateLimited() bool {
	if !in.IsBatched() {
		return false
	}
	for _, r := range in.Requests {
		for _, b := range r {
			if b.Count > in.Delays[b.Color] {
				return false
			}
		}
	}
	return true
}

// HasPowerOfTwoDelays reports whether every delay bound is a power of 2,
// the precondition of Sections 3–5 before the §5.3 extension.
func (in *Instance) HasPowerOfTwoDelays() bool {
	for _, d := range in.Delays {
		if d&(d-1) != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	c := &Instance{
		Name:     in.Name,
		Delta:    in.Delta,
		Delays:   append([]int(nil), in.Delays...),
		Requests: make([]Request, len(in.Requests)),
	}
	for i, r := range in.Requests {
		if r != nil {
			c.Requests[i] = append(Request(nil), r...)
		}
	}
	return c
}

// Normalize sorts the batches of every request by color and merges
// duplicate colors, giving a canonical representation. It returns the
// receiver for chaining.
func (in *Instance) Normalize() *Instance {
	for i, r := range in.Requests {
		in.Requests[i] = normalizeRequest(r)
	}
	return in
}

// normalizeRequest sorts a request's batches by color and merges
// duplicates, in place, returning the canonical slice. Both Instance
// normalization and Stream.Step use it, so the two front-ends hand
// policies byte-identical arrivals. Insertion sort keeps the common
// small-request case allocation-free, which the Stream dataplane's
// zero-allocation guarantee relies on.
func normalizeRequest(r Request) Request {
	if len(r) <= 1 {
		return r
	}
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && r[j].Color < r[j-1].Color; j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
	out := r[:0]
	for _, b := range r {
		if n := len(out); n > 0 && out[n-1].Color == b.Color {
			out[n-1].Count += b.Count
		} else {
			out = append(out, b)
		}
	}
	return out
}

// AddJobs appends count jobs of color c arriving at round. The request
// slice is grown as needed.
func (in *Instance) AddJobs(round int, c Color, count int) {
	if count <= 0 {
		return
	}
	for len(in.Requests) <= round {
		in.Requests = append(in.Requests, nil)
	}
	in.Requests[round] = append(in.Requests[round], Batch{Color: c, Count: count})
}

// PowerOfTwoAtLeast returns the smallest power of two ≥ v (v ≥ 1).
func PowerOfTwoAtLeast(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// PowerOfTwoAtMost returns the largest power of two ≤ v (v ≥ 1).
func PowerOfTwoAtMost(v int) int {
	p := 1
	for p*2 <= v {
		p <<= 1
	}
	return p
}
