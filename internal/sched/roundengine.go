package sched

import (
	"fmt"
	"math"
)

// roundEngine is the single implementation of the model's four-phase
// round semantics (drop → arrival → reconfigure → execute, §2 of the
// paper). Both front-ends drive it — Run for whole recorded instances and
// Stream.Step for the true online setting — so the two cannot diverge:
// Run ≡ Stream is structural, not merely tested. (Replay deliberately
// stays an independent re-implementation; the differential tests compare
// all three.)
//
// Phase accounting rules the engine guarantees:
//
//   - Validate-then-charge: a mini-round's assignment is validated in
//     full (width and every color) before any reconfiguration is charged,
//     so a rejected assignment leaves the running Result untouched.
//   - Per-color breakdowns always sum to the totals: every drop —
//     including forced drops from dropPending — is attributed to its
//     color in DropsByColor.
//
// The engine performs no heap allocation per round once its scratch
// buffers have warmed up, including when a StepResult is requested and
// when no Probe is attached (pinned by TestStepAllocFree and the
// micro-benchmarks in the repository root). This keeps the Stream
// dataplane GC-quiet under sustained load.
type roundEngine struct {
	env       Env
	numColors int
	pol       Policy
	pool      *jobPool
	cur       []Color // current configuration; NoColor = black
	ctx       *Context

	round int    // index of the next round to simulate
	res   Result // running totals (Schedule stays nil; Run attaches it)
	sched *Schedule

	dropObs   DropObserver
	execObs   ExecObserver
	probe     Probe
	execProbe ExecProbe

	// Per-round scratch, reused across steps so the steady state does not
	// allocate. dropFn is e.onDrop bound once: passing a fresh method
	// value to pool.expire every round would allocate a closure.
	dropFn      func(c Color, n int)
	collect     bool // building a StepResult this step
	forced      bool // inside dropPending: account only, no observers
	roundDrops  int
	dropBatches []Batch
	execBatches []Batch
}

// newRoundEngine prepares an engine for a fresh run: it resets the policy
// in env and starts from the all-black configuration with an empty pool.
func newRoundEngine(pol Policy, env Env, probe Probe) *roundEngine {
	pol.Reset(env)
	e := &roundEngine{
		env:       env,
		numColors: len(env.Delays),
		pol:       pol,
		pool:      newJobPool(len(env.Delays)),
		cur:       make([]Color, env.N),
		res: Result{
			Policy:       pol.Name(),
			DropsByColor: make([]int, len(env.Delays)),
			ExecByColor:  make([]int, len(env.Delays)),
		},
		probe: probe,
	}
	for i := range e.cur {
		e.cur[i] = NoColor
	}
	e.ctx = &Context{env: env, pool: e.pool}
	e.dropObs, _ = pol.(DropObserver)
	e.execObs, _ = pol.(ExecObserver)
	if probe != nil {
		e.execProbe, _ = probe.(ExecProbe)
	}
	e.dropFn = e.onDrop
	return e
}

// onDrop is the pool.expire callback: it attributes the drop per color,
// charges it, and notifies the policy's DropObserver (except for forced
// drops, which happen outside any round).
func (e *roundEngine) onDrop(c Color, n int) {
	e.res.DropsByColor[c] += n
	e.res.Dropped += n
	e.res.Cost.Drop += int64(n)
	if e.forced {
		return
	}
	e.roundDrops += n
	if e.collect {
		e.dropBatches = append(e.dropBatches, Batch{Color: c, Count: n})
	}
	if e.dropObs != nil {
		e.dropObs.OnDrop(e.round, c, n)
	}
}

// step simulates one round. arrivals must already be validated and
// normalized (sorted by color, one batch per color): Run normalizes the
// whole instance up front, Stream.Step normalizes each batch into its
// scratch buffer. When out is non-nil the per-round report is filled in;
// its slices alias engine-owned scratch that is overwritten by the next
// step.
func (e *roundEngine) step(arrivals Request, out *StepResult) error {
	r := e.round

	// Phase 1: drop.
	e.roundDrops = 0
	e.collect = out != nil
	e.dropBatches = e.dropBatches[:0]
	e.execBatches = e.execBatches[:0]
	e.pool.expire(r, e.dropFn)

	// Phase 2: arrival.
	arrived := 0
	for _, b := range arrivals {
		e.pool.add(b.Color, r+e.env.Delays[b.Color], b.Count)
		arrived += b.Count
	}

	// Phases 3+4, repeated per mini-round.
	e.ctx.Round = r
	e.ctx.Arrivals = arrivals
	roundExecs, roundReconfigs := 0, 0
	for mini := 0; mini < e.env.Speed; mini++ {
		e.ctx.Mini = mini
		assign := e.pol.Reconfigure(e.ctx)
		// Validate the complete assignment before charging anything, so a
		// rejected assignment leaves the running Result untouched.
		if len(assign) != e.env.N {
			return fmt.Errorf("sched: policy %s returned assignment of length %d, want %d",
				e.pol.Name(), len(assign), e.env.N)
		}
		for _, c := range assign {
			if c != NoColor && (c < 0 || int(c) >= e.numColors) {
				return fmt.Errorf("sched: policy %s assigned unknown color %d", e.pol.Name(), c)
			}
		}
		for k := 0; k < e.env.N; k++ {
			if assign[k] != e.cur[k] {
				e.res.Reconfigs++
				e.res.Cost.Reconfig += int64(e.env.Delta)
				roundReconfigs++
				e.cur[k] = assign[k]
			}
		}
		if e.sched != nil {
			e.sched.Assign = append(e.sched.Assign, append([]Color(nil), e.cur...))
		}
		// Phase 4: execution. Locations are served in index order, which
		// matters when two locations share a color with a single pending
		// job; the Replay validator replays the same order.
		for k := 0; k < e.env.N; k++ {
			c := e.cur[k]
			if c == NoColor {
				continue
			}
			deadline, ok := e.pool.take(c)
			if !ok {
				continue
			}
			e.res.Executed++
			e.res.ExecByColor[c]++
			roundExecs++
			if e.collect {
				e.noteExec(c)
			}
			if e.execObs != nil {
				e.execObs.OnExec(r, mini, c, 1)
			}
			if e.execProbe != nil {
				// deadline = arrival + D_c, so the job waited r − arrival
				// = r − deadline + D_c rounds.
				e.execProbe.OnJobExec(r, c, r-deadline+e.env.Delays[c])
			}
		}
	}

	e.round = r + 1
	e.res.Rounds = e.round
	if out != nil {
		out.Round = r
		// Drops arrive in heap (deadline) order and executions in location
		// order; canonicalize both to the sorted-by-color form the
		// StepResult contract promises. normalizeRequest sorts in place.
		e.dropBatches = normalizeRequest(e.dropBatches)
		e.execBatches = normalizeRequest(e.execBatches)
		out.Dropped = e.dropBatches
		out.Executed = e.execBatches
		out.Reconfigs = roundReconfigs
		out.Assignment = e.cur
	}
	if e.probe != nil {
		e.probe.OnRound(RoundEvent{
			Round:     r,
			Arrivals:  arrived,
			Dropped:   e.roundDrops,
			Executed:  roundExecs,
			Reconfigs: roundReconfigs,
			Pending:   e.pool.totalPending(),
		})
	}
	return nil
}

// noteExec merges one execution of color c into the per-round report.
// A linear scan suffices: a round executes at most N·Speed jobs, and
// consecutive executions of the same color hit the first probe.
func (e *roundEngine) noteExec(c Color) {
	for i := len(e.execBatches) - 1; i >= 0; i-- {
		if e.execBatches[i].Color == c {
			e.execBatches[i].Count++
			return
		}
	}
	e.execBatches = append(e.execBatches, Batch{Color: c, Count: 1})
}

// dropPending force-drops every job still pending, attributing the drops
// per color exactly like the round drop phase. Run applies it when
// Options.MaxRounds truncates a simulation; Stream exposes it as
// DropPending. No round is simulated and the policy's DropObserver is
// not notified — the jobs are charged by fiat — but an attached Probe
// does receive the forced drops as one final RoundEvent (Round set to
// the next unsimulated round, only Dropped non-zero), so probe totals
// keep matching the Result instead of silently losing the truncation
// drops.
func (e *roundEngine) dropPending() int {
	if e.pool.totalPending() == 0 {
		return 0
	}
	e.forced = true
	n := e.pool.expire(math.MaxInt, e.dropFn)
	e.forced = false
	if e.probe != nil {
		e.probe.OnRound(RoundEvent{Round: e.round, Dropped: n})
	}
	return n
}

// snapshot returns a copy of the running totals that is safe to retain
// across further steps.
func (e *roundEngine) snapshot() *Result {
	res := e.res
	res.DropsByColor = append([]int(nil), res.DropsByColor...)
	res.ExecByColor = append([]int(nil), res.ExecByColor...)
	return &res
}
