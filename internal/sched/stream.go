package sched

import "repro/internal/snap"

// StreamConfig configures a Stream.
type StreamConfig struct {
	// N is the number of resources; Speed the mini-rounds per round
	// (0 or 1 = uni-speed).
	N     int
	Speed int
	// Delta is the reconfiguration cost Δ and Delays the per-color delay
	// bounds; together they fix the color universe up front.
	Delta  int
	Delays []int
	// Probe, when non-nil, receives one RoundEvent per Step (see Probe).
	// Leaving it nil costs nothing.
	Probe Probe
}

// Stream drives a policy one round at a time for callers that do not have
// the whole request sequence up front — the true online setting (a router
// dataplane handing over each round's packet arrivals, a cluster manager
// reporting demand). Each Step performs the model's four phases for one
// round and reports what happened; Drain runs empty rounds until nothing
// is pending.
//
// A Stream and a Run over the same arrivals produce identical Results by
// construction: both front-ends drive the same roundEngine. A randomized
// differential test additionally pins the equivalence against Replay.
type Stream struct {
	cfg     StreamConfig
	eng     *roundEngine
	scratch Request

	// Snapshot-path scratch (see AppendSnapshot / SnapshotDelta): a
	// retained encoder so repeated snapshots reuse one backing buffer,
	// a scratch buffer holding the current full snapshot while a delta
	// is computed, and the reusable delta block index.
	snapEnc      snap.Encoder
	deltaScratch []byte
	dm           snap.DeltaMaker
}

// StepResult reports one round of a Stream.
//
// Footgun warning: the slice fields (Dropped, Executed, Assignment) share
// backing arrays that the Stream reuses on every Step — that is what
// keeps the steady-state step allocation-free. A StepResult is therefore
// only valid until the next Step; retaining one across Steps (appending
// it to a history, sending it to another goroutine) silently yields the
// later round's data. Call Clone on any result you keep.
type StepResult struct {
	// Round is the round index that was just simulated.
	Round int
	// Dropped and Executed list the jobs dropped and executed this round,
	// grouped per color (entries sorted by color). Like Assignment, the
	// backing arrays are reused across Steps — Clone the result to retain
	// them.
	Dropped  []Batch
	Executed []Batch
	// Reconfigs counts location recolorings performed this round.
	Reconfigs int
	// Assignment is the configuration at the end of the round; the
	// backing array is reused across Steps — Clone the result to retain
	// it.
	Assignment []Color
}

// Clone returns a deep copy whose slices do not alias the Stream's
// reusable buffers, safe to retain across Steps or hand to another
// goroutine. Cloning is the explicit opt-in to allocation: the Step hot
// path itself stays allocation-free.
func (r StepResult) Clone() StepResult {
	r.Dropped = append([]Batch(nil), r.Dropped...)
	r.Executed = append([]Batch(nil), r.Executed...)
	r.Assignment = append([]Color(nil), r.Assignment...)
	return r
}

// NewStream validates the configuration and prepares a stream.
func NewStream(pol Policy, cfg StreamConfig) (*Stream, error) {
	if cfg.N < 1 {
		return nil, &ConfigError{Field: "N", Color: -1, Value: cfg.N}
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 1 {
		return nil, &ConfigError{Field: "Speed", Color: -1, Value: cfg.Speed}
	}
	if cfg.Delta < 1 {
		return nil, &ConfigError{Field: "Delta", Color: -1, Value: cfg.Delta}
	}
	for c, d := range cfg.Delays {
		if d < 1 {
			return nil, &ConfigError{Field: "Delays", Color: Color(c), Value: d}
		}
	}
	env := Env{N: cfg.N, Speed: cfg.Speed, Delta: cfg.Delta, Delays: cfg.Delays}
	return &Stream{cfg: cfg, eng: newRoundEngine(pol, env, cfg.Probe)}, nil
}

// Round reports the index of the next round Step will simulate.
func (s *Stream) Round() int { return s.eng.round }

// Cost reports the cumulative cost so far.
func (s *Stream) Cost() Cost { return s.eng.res.Cost }

// Pending reports the pending jobs of color c.
func (s *Stream) Pending(c Color) int { return s.eng.pool.pending(c) }

// TotalPending reports all pending jobs.
func (s *Stream) TotalPending() int { return s.eng.pool.totalPending() }

// Executed and Dropped report cumulative totals.
func (s *Stream) Executed() int { return s.eng.res.Executed }

// Dropped reports the cumulative dropped-job count.
func (s *Stream) Dropped() int { return s.eng.res.Dropped }

// Reconfigs reports the cumulative number of location recolorings.
func (s *Stream) Reconfigs() int { return s.eng.res.Reconfigs }

// NumColors reports the size of the stream's color universe.
func (s *Stream) NumColors() int { return len(s.cfg.Delays) }

// Step simulates one round with the given arrivals. Batches must name
// declared colors with positive counts; they need not be sorted or
// deduplicated — Step normalizes a scratch copy exactly the way Run's
// Instance.Normalize would, so a policy sees identical arrivals under
// both front-ends. Structurally invalid arrivals (out-of-range colors,
// non-positive counts) are rejected with an *ArrivalError before the
// engine sees them; the stream is left untouched and may keep stepping.
// The returned StepResult's slices are reused across Steps; call
// StepResult.Clone to retain one (see the StepResult doc).
func (s *Stream) Step(arrivals Request) (StepResult, error) {
	if err := validateArrivals(arrivals, len(s.cfg.Delays)); err != nil {
		return StepResult{}, err
	}
	s.scratch = append(s.scratch[:0], arrivals...)
	s.scratch = normalizeRequest(s.scratch)
	var out StepResult
	if err := s.eng.step(s.scratch, &out); err != nil {
		return StepResult{}, err
	}
	return out, nil
}

// Drain runs empty rounds until no job is pending and returns the number
// of rounds it took. Call it at the end of a trace so every job is
// properly executed or charged as a drop.
func (s *Stream) Drain() (rounds int, err error) {
	for s.eng.pool.totalPending() > 0 {
		if _, err := s.Step(nil); err != nil {
			return rounds, err
		}
		rounds++
	}
	return rounds, nil
}

// DropPending force-drops every job still pending, charging each as a
// drop with per-color attribution — the same accounting Run applies when
// Options.MaxRounds truncates a simulation. Use it instead of Drain when
// tearing a stream down early. It returns the number of jobs charged.
// The policy is not notified (no round is simulated), but an attached
// Probe receives the forced drops as one final RoundEvent with only
// Dropped set, so sink totals stay consistent with Result.
func (s *Stream) DropPending() int { return s.eng.dropPending() }

// Result summarizes the stream so far in the same shape Run returns. The
// returned value is a snapshot; it is not affected by further Steps.
func (s *Stream) Result() *Result { return s.eng.snapshot() }
