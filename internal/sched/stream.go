package sched

import "fmt"

// StreamConfig configures a Stream.
type StreamConfig struct {
	// N is the number of resources; Speed the mini-rounds per round
	// (0 or 1 = uni-speed).
	N     int
	Speed int
	// Delta is the reconfiguration cost Δ and Delays the per-color delay
	// bounds; together they fix the color universe up front.
	Delta  int
	Delays []int
}

// Stream drives a policy one round at a time for callers that do not have
// the whole request sequence up front — the true online setting (a router
// dataplane handing over each round's packet arrivals, a cluster manager
// reporting demand). Each Step performs the model's four phases for one
// round and reports what happened; Drain runs empty rounds until nothing
// is pending.
//
// A Stream and a Run over the same arrivals produce identical costs; the
// equivalence is pinned by tests.
type Stream struct {
	cfg  StreamConfig
	pol  Policy
	pool *jobPool
	cur  []Color
	ctx  *Context

	round int
	cost  Cost

	executed, dropped, reconfigs int
	dropsByColor, execByColor    []int

	scratch Request
}

// StepResult reports one round of a Stream.
type StepResult struct {
	// Round is the round index that was just simulated.
	Round int
	// Dropped and Executed list the jobs dropped and executed this round,
	// grouped per color (entries ordered by color).
	Dropped  []Batch
	Executed []Batch
	// Reconfigs counts location recolorings performed this round.
	Reconfigs int
	// Assignment is the configuration at the end of the round; the
	// backing array is reused across Steps — copy it to retain it.
	Assignment []Color
}

// NewStream validates the configuration and prepares a stream.
func NewStream(pol Policy, cfg StreamConfig) (*Stream, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("sched: NewStream needs N ≥ 1, got %d", cfg.N)
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 1 {
		return nil, fmt.Errorf("sched: NewStream needs Speed ≥ 1, got %d", cfg.Speed)
	}
	if cfg.Delta < 1 {
		return nil, fmt.Errorf("sched: NewStream needs Delta ≥ 1, got %d", cfg.Delta)
	}
	for c, d := range cfg.Delays {
		if d < 1 {
			return nil, fmt.Errorf("sched: NewStream: color %d has delay bound %d < 1", c, d)
		}
	}
	env := Env{N: cfg.N, Speed: cfg.Speed, Delta: cfg.Delta, Delays: cfg.Delays}
	pol.Reset(env)
	s := &Stream{
		cfg:          cfg,
		pol:          pol,
		pool:         newJobPool(len(cfg.Delays)),
		cur:          make([]Color, cfg.N),
		dropsByColor: make([]int, len(cfg.Delays)),
		execByColor:  make([]int, len(cfg.Delays)),
	}
	for i := range s.cur {
		s.cur[i] = NoColor
	}
	s.ctx = &Context{env: env, pool: s.pool}
	return s, nil
}

// Round reports the index of the next round Step will simulate.
func (s *Stream) Round() int { return s.round }

// Cost reports the cumulative cost so far.
func (s *Stream) Cost() Cost { return s.cost }

// Pending reports the pending jobs of color c.
func (s *Stream) Pending(c Color) int { return s.pool.pending(c) }

// TotalPending reports all pending jobs.
func (s *Stream) TotalPending() int { return s.pool.totalPending() }

// Executed and Dropped report cumulative totals.
func (s *Stream) Executed() int { return s.executed }

// Dropped reports the cumulative dropped-job count.
func (s *Stream) Dropped() int { return s.dropped }

// Step simulates one round with the given arrivals. Batches must name
// declared colors with positive counts. The returned StepResult's slices
// are freshly allocated except Assignment (reused).
func (s *Stream) Step(arrivals Request) (StepResult, error) {
	for _, b := range arrivals {
		if b.Color < 0 || int(b.Color) >= len(s.cfg.Delays) {
			return StepResult{}, fmt.Errorf("sched: Stream.Step: unknown color %d", b.Color)
		}
		if b.Count <= 0 {
			return StepResult{}, fmt.Errorf("sched: Stream.Step: non-positive count %d", b.Count)
		}
	}
	r := s.round
	s.round++
	out := StepResult{Round: r}

	// Phase 1: drop.
	dropObs, _ := s.pol.(DropObserver)
	s.pool.expire(r, func(c Color, n int) {
		out.Dropped = append(out.Dropped, Batch{Color: c, Count: n})
		s.dropsByColor[c] += n
		if dropObs != nil {
			dropObs.OnDrop(r, c, n)
		}
	})
	for _, b := range out.Dropped {
		s.dropped += b.Count
		s.cost.Drop += int64(b.Count)
	}

	// Phase 2: arrival (normalized copy for the policy's context).
	s.scratch = append(s.scratch[:0], arrivals...)
	req := Request(s.scratch)
	for _, b := range req {
		s.pool.add(b.Color, r+s.cfg.Delays[b.Color], b.Count)
	}

	// Phases 3+4 per mini-round.
	execObs, _ := s.pol.(ExecObserver)
	s.ctx.Round = r
	s.ctx.Arrivals = req
	execCount := make(map[Color]int)
	for mini := 0; mini < s.cfg.Speed; mini++ {
		s.ctx.Mini = mini
		assign := s.pol.Reconfigure(s.ctx)
		if len(assign) != s.cfg.N {
			return StepResult{}, fmt.Errorf("sched: Stream.Step: policy %s returned %d assignments, want %d",
				s.pol.Name(), len(assign), s.cfg.N)
		}
		for k := 0; k < s.cfg.N; k++ {
			if assign[k] != s.cur[k] {
				if c := assign[k]; c != NoColor && (c < 0 || int(c) >= len(s.cfg.Delays)) {
					return StepResult{}, fmt.Errorf("sched: Stream.Step: policy assigned unknown color %d", c)
				}
				out.Reconfigs++
				s.reconfigs++
				s.cost.Reconfig += int64(s.cfg.Delta)
				s.cur[k] = assign[k]
			}
		}
		for k := 0; k < s.cfg.N; k++ {
			c := s.cur[k]
			if c == NoColor {
				continue
			}
			if _, ok := s.pool.take(c); ok {
				execCount[c]++
				s.executed++
				s.execByColor[c]++
				if execObs != nil {
					execObs.OnExec(r, mini, c, 1)
				}
			}
		}
	}
	for c := Color(0); int(c) < len(s.cfg.Delays); c++ {
		if n := execCount[c]; n > 0 {
			out.Executed = append(out.Executed, Batch{Color: c, Count: n})
		}
	}
	out.Assignment = s.cur
	return out, nil
}

// Drain runs empty rounds until no job is pending and returns the number
// of rounds it took. Call it at the end of a trace so every job is
// properly executed or charged as a drop.
func (s *Stream) Drain() (rounds int, err error) {
	for s.pool.totalPending() > 0 {
		if _, err := s.Step(nil); err != nil {
			return rounds, err
		}
		rounds++
	}
	return rounds, nil
}

// Result summarizes the stream so far in the same shape Run returns.
func (s *Stream) Result() *Result {
	return &Result{
		Policy:       s.pol.Name(),
		Cost:         s.cost,
		Executed:     s.executed,
		Dropped:      s.dropped,
		Reconfigs:    s.reconfigs,
		Rounds:       s.round,
		DropsByColor: append([]int(nil), s.dropsByColor...),
		ExecByColor:  append([]int(nil), s.execByColor...),
	}
}
