package sched

import "fmt"

// Cost is the two-part objective of the model: reconfiguration cost
// (Δ per recoloring) plus drop cost (1 per dropped job).
type Cost struct {
	Reconfig int64
	Drop     int64
}

// Total returns Reconfig + Drop.
func (c Cost) Total() int64 { return c.Reconfig + c.Drop }

// Add returns the component-wise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{Reconfig: c.Reconfig + o.Reconfig, Drop: c.Drop + o.Drop}
}

// String formats the cost as "total (reconfig=…, drop=…)".
func (c Cost) String() string {
	return fmt.Sprintf("%d (reconfig=%d, drop=%d)", c.Total(), c.Reconfig, c.Drop)
}

// Ratio returns the ratio of the two total costs, treating a zero
// denominator as 1 so that zero-cost optima (both algorithms perfect)
// yield a ratio equal to the numerator rather than an infinity.
func Ratio(num, den Cost) float64 {
	d := den.Total()
	if d == 0 {
		d = 1
	}
	return float64(num.Total()) / float64(d)
}

// Result aggregates everything a simulation run produces.
type Result struct {
	// Policy is the name of the policy that produced the run.
	Policy string
	// Cost is the total objective value.
	Cost Cost
	// Executed and Dropped count jobs over the whole run.
	Executed int
	Dropped  int
	// Reconfigs counts individual resource recolorings (cost Reconfigs·Δ).
	Reconfigs int
	// Rounds is the number of rounds simulated (instance rounds plus the
	// drain tail).
	Rounds int
	// DropsByColor[c] and ExecByColor[c] break the totals down per color.
	DropsByColor []int
	ExecByColor  []int
	// Schedule is the recorded schedule when Options.Record was set.
	Schedule *Schedule
}

// String gives a one-line summary of the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: cost=%s executed=%d dropped=%d reconfigs=%d rounds=%d",
		r.Policy, r.Cost, r.Executed, r.Dropped, r.Reconfigs, r.Rounds)
}
