package sched

import "testing"

func tinyInstance() *Instance {
	inst := &Instance{
		Name:   "tiny",
		Delta:  2,
		Delays: []int{2, 4},
	}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 3)
	inst.AddJobs(2, 0, 2)
	return inst
}

func TestInstanceCounters(t *testing.T) {
	inst := tinyInstance()
	if got := inst.NumColors(); got != 2 {
		t.Fatalf("NumColors = %d", got)
	}
	if got := inst.NumRounds(); got != 3 {
		t.Fatalf("NumRounds = %d", got)
	}
	if got := inst.MaxDelay(); got != 4 {
		t.Fatalf("MaxDelay = %d", got)
	}
	if got := inst.Horizon(); got != 7 {
		t.Fatalf("Horizon = %d", got)
	}
	if got := inst.TotalJobs(); got != 6 {
		t.Fatalf("TotalJobs = %d", got)
	}
	per := inst.JobsPerColor()
	if per[0] != 3 || per[1] != 3 {
		t.Fatalf("JobsPerColor = %v", per)
	}
}

func TestInstanceValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Instance)
	}{
		{"zero delta", func(i *Instance) { i.Delta = 0 }},
		{"zero delay", func(i *Instance) { i.Delays[0] = 0 }},
		{"unknown color", func(i *Instance) { i.Requests[0] = append(i.Requests[0], Batch{Color: 9, Count: 1}) }},
		{"negative color", func(i *Instance) { i.Requests[0] = append(i.Requests[0], Batch{Color: -1, Count: 1}) }},
		{"non-positive count", func(i *Instance) { i.Requests[0] = append(i.Requests[0], Batch{Color: 0, Count: 0}) }},
	}
	for _, tc := range cases {
		inst := tinyInstance()
		tc.mod(inst)
		if err := inst.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid instance", tc.name)
		}
	}
	if err := tinyInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestBatchedAndRateLimitedPredicates(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{2, 4}}
	inst.AddJobs(0, 0, 2)
	inst.AddJobs(4, 1, 4)
	if !inst.IsBatched() {
		t.Fatal("batched instance reported unbatched")
	}
	if !inst.IsRateLimited() {
		t.Fatal("rate-limited instance reported over rate")
	}
	over := inst.Clone()
	over.AddJobs(2, 0, 3) // batched (2 | 2) but over the rate limit (3 > 2)
	if !over.IsBatched() || over.IsRateLimited() {
		t.Fatal("rate-limit predicate wrong")
	}
	unbatched := inst.Clone()
	unbatched.AddJobs(1, 1, 1) // round 1 not a multiple of 4
	if unbatched.IsBatched() || unbatched.IsRateLimited() {
		t.Fatal("unbatched instance reported batched")
	}
}

func TestHasPowerOfTwoDelays(t *testing.T) {
	a := &Instance{Delta: 1, Delays: []int{1, 2, 8, 64}}
	if !a.HasPowerOfTwoDelays() {
		t.Fatal("powers of two rejected")
	}
	b := &Instance{Delta: 1, Delays: []int{1, 3}}
	if b.HasPowerOfTwoDelays() {
		t.Fatal("3 accepted as power of two")
	}
}

func TestNormalizeMergesAndSorts(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{1, 1, 1}}
	inst.Requests = []Request{{
		{Color: 2, Count: 1},
		{Color: 0, Count: 2},
		{Color: 2, Count: 3},
	}}
	inst.Normalize()
	r := inst.Requests[0]
	if len(r) != 2 {
		t.Fatalf("Normalize left %d batches", len(r))
	}
	if r[0] != (Batch{Color: 0, Count: 2}) || r[1] != (Batch{Color: 2, Count: 4}) {
		t.Fatalf("Normalize produced %v", r)
	}
	if inst.TotalJobs() != 6 {
		t.Fatalf("Normalize changed job count: %d", inst.TotalJobs())
	}
}

func TestCloneIsDeep(t *testing.T) {
	inst := tinyInstance()
	c := inst.Clone()
	c.Delays[0] = 99
	c.Requests[0][0].Count = 99
	if inst.Delays[0] == 99 || inst.Requests[0][0].Count == 99 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestPowerOfTwoHelpers(t *testing.T) {
	cases := []struct{ v, atLeast, atMost int }{
		{1, 1, 1}, {2, 2, 2}, {3, 4, 2}, {5, 8, 4}, {64, 64, 64}, {100, 128, 64},
	}
	for _, c := range cases {
		if got := PowerOfTwoAtLeast(c.v); got != c.atLeast {
			t.Errorf("PowerOfTwoAtLeast(%d) = %d, want %d", c.v, got, c.atLeast)
		}
		if got := PowerOfTwoAtMost(c.v); got != c.atMost {
			t.Errorf("PowerOfTwoAtMost(%d) = %d, want %d", c.v, got, c.atMost)
		}
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Reconfig: 3, Drop: 4}
	b := Cost{Reconfig: 1, Drop: 2}
	if a.Total() != 7 {
		t.Fatalf("Total = %d", a.Total())
	}
	s := a.Add(b)
	if s.Reconfig != 4 || s.Drop != 6 {
		t.Fatalf("Add = %+v", s)
	}
	if got := Ratio(a, Cost{}); got != 7 {
		t.Fatalf("Ratio with zero denominator = %v", got)
	}
	if got := Ratio(a, b); got != 7.0/3.0 {
		t.Fatalf("Ratio = %v", got)
	}
}

func TestRequestJobs(t *testing.T) {
	r := Request{{Color: 0, Count: 2}, {Color: 1, Count: 5}}
	if r.Jobs() != 7 {
		t.Fatalf("Jobs = %d", r.Jobs())
	}
	var empty Request
	if empty.Jobs() != 0 {
		t.Fatal("empty request has jobs")
	}
}
