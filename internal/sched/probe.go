package sched

// RoundEvent summarizes one simulated round for observability probes: the
// outcome of each of the model's four phases plus the pending depth the
// round left behind.
type RoundEvent struct {
	// Round is the simulated round index.
	Round int
	// Arrivals counts the jobs that arrived this round.
	Arrivals int
	// Dropped counts the jobs dropped in this round's drop phase.
	Dropped int
	// Executed counts the jobs executed across the round's mini-rounds.
	Executed int
	// Reconfigs counts the location recolorings charged this round.
	Reconfigs int
	// Pending counts the jobs still pending after the round.
	Pending int
}

// Probe receives one RoundEvent per simulated round from the shared round
// engine. Attach one via Options.Probe (batch runs) or StreamConfig.Probe
// (online streams): both front-ends drive the same engine, so a probe
// observes identical event sequences either way.
//
// One event does not correspond to a simulated round: when pending jobs
// are force-dropped outside any round (Stream.DropPending, or Run when
// Options.MaxRounds truncates a simulation), the probe receives a final
// RoundEvent carrying those drops — Round repeats the next unsimulated
// round's index and only Dropped is non-zero. Sinks therefore keep
// agreeing with the Result's totals; a sink's Rounds count can exceed
// Result.Rounds by one.
//
// Probes observe; they cannot influence the simulation. Events are passed
// by value and the engine allocates nothing on a probe's behalf — and
// with no probe attached the observability layer costs nothing at all
// (pinned by TestStepAllocFree and the micro-benchmarks in the repository
// root).
type Probe interface {
	OnRound(ev RoundEvent)
}

// ExecProbe is optionally implemented by probes that also want per-job
// execution events. OnJobExec reports one job of color c executed in
// round, wait rounds after its arrival (0 ≤ wait < D_c) — the job's
// queueing latency.
type ExecProbe interface {
	OnJobExec(round int, c Color, wait int)
}

// MultiProbe fans every event out to several probes, in order. Members
// that also implement ExecProbe receive the per-job events.
type MultiProbe []Probe

// OnRound implements Probe.
func (m MultiProbe) OnRound(ev RoundEvent) {
	for _, p := range m {
		p.OnRound(ev)
	}
}

// OnJobExec implements ExecProbe.
func (m MultiProbe) OnJobExec(round int, c Color, wait int) {
	for _, p := range m {
		if ep, ok := p.(ExecProbe); ok {
			ep.OnJobExec(round, c, wait)
		}
	}
}
