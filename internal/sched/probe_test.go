package sched

import (
	"reflect"
	"strings"
	"testing"
)

// recordingProbe retains every event for inspection.
type recordingProbe struct {
	rounds []RoundEvent
	execs  []int // waits, in emission order
}

func (p *recordingProbe) OnRound(ev RoundEvent)               { p.rounds = append(p.rounds, ev) }
func (p *recordingProbe) OnJobExec(round int, c Color, w int) { p.execs = append(p.execs, w) }

func TestProbeRoundEvents(t *testing.T) {
	// Round 0: 2 jobs arrive (D=2), 1 executed, 1 reconfig, 1 left.
	// Round 1: nothing arrives, 1 executed.
	inst := &Instance{Delta: 3, Delays: []int{2}}
	inst.AddJobs(0, 0, 2)
	p := &recordingProbe{}
	res, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	want := []RoundEvent{
		{Round: 0, Arrivals: 2, Dropped: 0, Executed: 1, Reconfigs: 1, Pending: 1},
		{Round: 1, Arrivals: 0, Dropped: 0, Executed: 1, Reconfigs: 0, Pending: 0},
	}
	if !reflect.DeepEqual(p.rounds, want) {
		t.Fatalf("events = %+v, want %+v", p.rounds, want)
	}
	// Waits: first job executes in its arrival round (wait 0), the second
	// one round later (wait 1).
	if !reflect.DeepEqual(p.execs, []int{0, 1}) {
		t.Fatalf("waits = %v, want [0 1]", p.execs)
	}
	if res.Executed != 2 {
		t.Fatalf("executed = %d", res.Executed)
	}
}

// TestProbeSeesIdenticalEventsFromRunAndStream: the probe stream is part
// of the Run ≡ Stream contract.
func TestProbeSeesIdenticalEventsFromRunAndStream(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		inst := rawRandomInstance(uint64(trial) + 500)
		pa, pb := &recordingProbe{}, &recordingProbe{}

		if _, err := Run(inst.Clone(), &arrivalSensitive{}, Options{N: 2, Probe: pa}); err != nil {
			t.Fatal(err)
		}
		st, err := NewStream(&arrivalSensitive{}, StreamConfig{N: 2, Delta: inst.Delta, Delays: inst.Delays, Probe: pb})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < inst.NumRounds(); r++ {
			if _, err := st.Step(inst.Requests[r]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pa.rounds, pb.rounds) {
			t.Fatalf("trial %d: Run and Stream emitted different round events:\n%v\n%v", trial, pa.rounds, pb.rounds)
		}
		if !reflect.DeepEqual(pa.execs, pb.execs) {
			t.Fatalf("trial %d: Run and Stream emitted different exec waits", trial)
		}
	}
}

func TestCounterSinkTotalsMatchResult(t *testing.T) {
	inst := rawRandomInstance(42)
	sink := &CounterSink{}
	res, err := Run(inst, &arrivalSensitive{}, Options{N: 2, Probe: sink})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Executed != res.Executed || sink.Dropped != res.Dropped ||
		sink.Reconfigs != res.Reconfigs || sink.Rounds != res.Rounds {
		t.Fatalf("sink %v disagrees with result %v", sink, res)
	}
	if sink.Arrivals != inst.TotalJobs() {
		t.Fatalf("sink saw %d arrivals, instance has %d jobs", sink.Arrivals, inst.TotalJobs())
	}
}

func TestMetricsSink(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{4}}
	inst.AddJobs(0, 0, 3) // one per round executes: waits 0, 1, 2
	sink := NewMetricsSink(inst.MaxDelay(), 8)
	if _, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1, Probe: sink}); err != nil {
		t.Fatal(err)
	}
	if sink.Wait.Total() != 3 {
		t.Fatalf("wait histogram has %d samples, want 3", sink.Wait.Total())
	}
	for bin, want := range []int{1, 1, 1, 0} {
		if sink.Wait.Bins[bin] != want {
			t.Fatalf("wait bin %d = %d, want %d (bins %v)", bin, sink.Wait.Bins[bin], want, sink.Wait.Bins)
		}
	}
	if sink.Depth.Total() != sink.Rounds {
		t.Fatalf("depth histogram has %d samples over %d rounds", sink.Depth.Total(), sink.Rounds)
	}
	var sb strings.Builder
	if err := sink.Report(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"totals:", "wait (rounds)", "pending depth"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestMultiProbeFansOut(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{2}}
	inst.AddJobs(0, 0, 2)
	counter := &CounterSink{}
	rec := &recordingProbe{}
	if _, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1, Probe: MultiProbe{counter, rec}}); err != nil {
		t.Fatal(err)
	}
	if counter.Executed != 2 || len(rec.rounds) != counter.Rounds || len(rec.execs) != 2 {
		t.Fatalf("fan-out lost events: counter=%v recorded=%d rounds %d execs",
			counter, len(rec.rounds), len(rec.execs))
	}
}

// TestProbeSeesForcedDrops: forced drops — Stream.DropPending and Run's
// MaxRounds truncation — must reach an attached probe as one final
// RoundEvent, so sink totals keep matching the Result (they used to be
// silently lost).
func TestProbeSeesForcedDrops(t *testing.T) {
	// Stream side: two undrainable colors pending when DropPending hits.
	rec := &recordingProbe{}
	st, err := NewStream(&scripted{rows: [][]Color{{NoColor}}}, StreamConfig{
		N: 1, Delta: 1, Delays: []int{4, 4}, Probe: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(Request{{Color: 0, Count: 2}, {Color: 1, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	if n := st.DropPending(); n != 5 {
		t.Fatalf("DropPending dropped %d, want 5", n)
	}
	want := []RoundEvent{
		{Round: 0, Arrivals: 5, Pending: 5},
		{Round: 1, Dropped: 5},
	}
	if !reflect.DeepEqual(rec.rounds, want) {
		t.Fatalf("events = %+v, want %+v", rec.rounds, want)
	}
	// Repeating the call must not emit an empty event.
	if n := st.DropPending(); n != 0 {
		t.Fatalf("second DropPending dropped %d, want 0", n)
	}
	if len(rec.rounds) != 2 {
		t.Fatalf("empty DropPending emitted an event: %+v", rec.rounds)
	}

	// Run side: MaxRounds truncation charges the stranded jobs and the
	// sink must agree with the Result's totals.
	inst := &Instance{Delta: 1, Delays: []int{8}}
	inst.AddJobs(0, 0, 6)
	sink := &CounterSink{}
	res, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1, MaxRounds: 2, Probe: sink})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 4 || res.Executed != 2 {
		t.Fatalf("truncated run: executed %d dropped %d, want 2/4", res.Executed, res.Dropped)
	}
	if sink.Dropped != res.Dropped || sink.Executed != res.Executed {
		t.Fatalf("sink %v disagrees with truncated result %v", sink, res)
	}
	if sink.Rounds != res.Rounds+1 {
		t.Fatalf("sink saw %d events for %d rounds + 1 forced-drop event", sink.Rounds, res.Rounds)
	}
}

// TestStepAllocFree pins the engine's zero-allocation guarantee: with no
// probe attached, a steady-state Stream.Step — including unsorted
// duplicate-batch normalization, drops, executions, and StepResult
// assembly — performs no heap allocation.
func TestStepAllocFree(t *testing.T) {
	pol := &scripted{rows: [][]Color{{0}}}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 2, Delays: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Unsorted with a duplicate: color 0 gets 2 jobs/round but executes
	// only 1, so 1 drops each round once deadlines start expiring; color 1
	// is never configured and drops entirely. Steady state is bounded.
	req := Request{{Color: 1, Count: 1}, {Color: 0, Count: 1}, {Color: 0, Count: 1}}
	for i := 0; i < 64; i++ { // warm up scratch buffers and pool capacity
		if _, err := st.Step(req); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := st.Step(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Stream.Step allocated %v times per round with no probe attached, want 0", allocs)
	}

	// A CounterSink receives events by value: still allocation-free.
	st2, err := NewStream(&scripted{rows: [][]Color{{0}}}, StreamConfig{
		N: 1, Delta: 2, Delays: []int{2, 3}, Probe: &CounterSink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := st2.Step(req); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := st2.Step(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Stream.Step allocated %v times per round with a CounterSink, want 0", allocs)
	}
}
