package sched

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// CounterSink is the cheapest built-in Probe: running totals only, no
// allocation after construction. Its exported fields may be read at any
// time between steps.
type CounterSink struct {
	Rounds     int // rounds observed
	Arrivals   int // jobs arrived
	Dropped    int // jobs dropped
	Executed   int // jobs executed
	Reconfigs  int // location recolorings
	MaxPending int // deepest end-of-round backlog seen
}

// OnRound implements Probe.
func (s *CounterSink) OnRound(ev RoundEvent) {
	s.Rounds++
	s.Arrivals += ev.Arrivals
	s.Dropped += ev.Dropped
	s.Executed += ev.Executed
	s.Reconfigs += ev.Reconfigs
	if ev.Pending > s.MaxPending {
		s.MaxPending = ev.Pending
	}
}

// String renders the totals on one line.
func (s *CounterSink) String() string {
	return fmt.Sprintf("rounds=%d arrivals=%d executed=%d dropped=%d reconfigs=%d maxPending=%d",
		s.Rounds, s.Arrivals, s.Executed, s.Dropped, s.Reconfigs, s.MaxPending)
}

// MetricsSink extends CounterSink with stats.Histogram summaries of the
// two quantities a capacity planner asks about: per-job queueing latency
// (rounds between arrival and execution) and backlog occupancy (pending
// depth at the end of each round).
type MetricsSink struct {
	CounterSink
	// Wait histograms per-job queueing delay over [0, maxDelay) in
	// unit-round bins, coarsened so the histogram never exceeds 64 bins; a
	// job of color c waits between 0 and D_c − 1 rounds.
	Wait *stats.Histogram
	// Depth histograms the pending depth observed after each round; rounds
	// deeper than the configured limit land in the Over bucket.
	Depth *stats.Histogram
}

// NewMetricsSink builds a MetricsSink. maxDelay bounds the wait histogram
// (use the instance's MaxDelay, or the largest configured delay bound);
// depthLimit bounds the pending-depth histogram.
func NewMetricsSink(maxDelay, depthLimit int) *MetricsSink {
	if maxDelay < 1 {
		maxDelay = 1
	}
	if depthLimit < 1 {
		depthLimit = 1
	}
	waitBins := maxDelay
	if waitBins > 64 {
		waitBins = 64
	}
	depthBins := depthLimit
	if depthBins > 64 {
		depthBins = 64
	}
	return &MetricsSink{
		Wait:  stats.NewHistogram(0, float64(maxDelay), waitBins),
		Depth: stats.NewHistogram(0, float64(depthLimit), depthBins),
	}
}

// OnRound implements Probe.
func (s *MetricsSink) OnRound(ev RoundEvent) {
	s.CounterSink.OnRound(ev)
	s.Depth.Add(float64(ev.Pending))
}

// OnJobExec implements ExecProbe.
func (s *MetricsSink) OnJobExec(round int, c Color, wait int) {
	s.Wait.Add(float64(wait))
}

// Report renders the totals and both histograms to w.
func (s *MetricsSink) Report(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "totals: %s\n", s.CounterSink.String()); err != nil {
		return err
	}
	if err := writeHistogram(w, "wait (rounds)", s.Wait); err != nil {
		return err
	}
	return writeHistogram(w, "pending depth", s.Depth)
}

// writeHistogram renders the non-empty bins of h on one labeled line.
func writeHistogram(w io.Writer, label string, h *stats.Histogram) error {
	if _, err := fmt.Fprintf(w, "%-14s n=%d", label, h.Total()); err != nil {
		return err
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, n := range h.Bins {
		if n == 0 {
			continue
		}
		lo := h.Lo + float64(i)*width
		if _, err := fmt.Fprintf(w, "  [%g,%g)=%d", lo, lo+width, n); err != nil {
			return err
		}
	}
	if h.Under > 0 {
		if _, err := fmt.Fprintf(w, "  under=%d", h.Under); err != nil {
			return err
		}
	}
	if h.Over > 0 {
		if _, err := fmt.Fprintf(w, "  over=%d", h.Over); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
