package sched

import "testing"

func TestJobPoolExpireAndTake(t *testing.T) {
	p := newJobPool(3)
	p.add(0, 5, 2)
	p.add(1, 3, 1)
	p.add(0, 7, 1)
	if p.totalPending() != 4 {
		t.Fatalf("total = %d", p.totalPending())
	}
	if dl, ok := p.earliestDeadline(0); !ok || dl != 5 {
		t.Fatalf("earliest(0) = %d,%v", dl, ok)
	}

	var drops []Color
	n := p.expire(3, func(c Color, cnt int) { drops = append(drops, c) })
	if n != 1 || len(drops) != 1 || drops[0] != 1 {
		t.Fatalf("expire(3): n=%d drops=%v", n, drops)
	}
	if p.pending(1) != 0 {
		t.Fatal("color 1 still pending")
	}

	dl, ok := p.take(0)
	if !ok || dl != 5 {
		t.Fatalf("take = %d,%v", dl, ok)
	}
	dl, ok = p.take(0)
	if !ok || dl != 5 {
		t.Fatalf("second take = %d,%v (bucket had 2)", dl, ok)
	}
	dl, ok = p.take(0)
	if !ok || dl != 7 {
		t.Fatalf("third take = %d,%v", dl, ok)
	}
	if _, ok := p.take(0); ok {
		t.Fatal("take on drained color reported ok")
	}
	if p.totalPending() != 0 {
		t.Fatalf("total = %d after drain", p.totalPending())
	}
}

func TestJobPoolNonidle(t *testing.T) {
	p := newJobPool(4)
	p.add(3, 1, 1)
	p.add(1, 1, 1)
	got := p.nonidle(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("nonidle = %v", got)
	}
}

func TestJobPoolExpireMultipleColors(t *testing.T) {
	p := newJobPool(3)
	p.add(0, 2, 1)
	p.add(1, 2, 2)
	p.add(2, 9, 1)
	n := p.expire(2, nil)
	if n != 3 {
		t.Fatalf("expire dropped %d, want 3", n)
	}
	if p.totalPending() != 1 {
		t.Fatalf("total = %d", p.totalPending())
	}
}
