package sched

import (
	"testing"
	"testing/quick"
)

// TestRunReplayEquivalence: replaying a recorded schedule reproduces the
// run's cost, executions and drops exactly (the validator and the engine
// implement the same semantics independently).
func TestRunReplayEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		inst := randomInstance(seed, 4, 14, 3)
		pol := randomScript(seed+7, inst, 3, inst.Horizon())
		res, err := Run(inst.Clone(), pol, Options{N: 3, Record: true})
		if err != nil {
			return false
		}
		rep, err := Replay(inst.Clone(), res.Schedule)
		if err != nil {
			return false
		}
		return rep.Cost == res.Cost && rep.Executed == res.Executed && rep.Dropped == res.Dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayExplicitExec(t *testing.T) {
	inst := &Instance{Delta: 2, Delays: []int{2}}
	inst.AddJobs(0, 0, 1)
	s := &Schedule{
		N: 1, Speed: 1,
		Assign: [][]Color{{0}, {0}},
		Exec:   [][]Color{{NoColor}, {0}}, // idle in round 0, execute in round 1
	}
	res, err := Replay(inst, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Dropped != 0 {
		t.Fatalf("explicit exec: %v", res)
	}
}

func TestReplayRejectsBadExec(t *testing.T) {
	// Executing a color on a location configured differently.
	inst := &Instance{Delta: 1, Delays: []int{2, 2}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(0, 1, 1)
	s := &Schedule{
		N: 1, Speed: 1,
		Assign: [][]Color{{0}},
		Exec:   [][]Color{{1}},
	}
	if _, err := Replay(inst, s); err == nil {
		t.Fatal("mismatched exec color accepted")
	}

	// Executing with no pending job.
	inst2 := &Instance{Delta: 1, Delays: []int{2}}
	inst2.AddJobs(0, 0, 1)
	s2 := &Schedule{
		N: 1, Speed: 1,
		Assign: [][]Color{{0}, {0}, {0}},
		Exec:   [][]Color{{0}, {0}, {0}}, // only one job exists
	}
	if _, err := Replay(inst2, s2); err == nil {
		t.Fatal("exec of nonexistent job accepted")
	}
}

func TestReplayRejectsMalformedSchedules(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{2}}
	inst.AddJobs(0, 0, 1)
	// Wrong row width.
	s := &Schedule{N: 2, Speed: 1, Assign: [][]Color{{0}}}
	if _, err := Replay(inst.Clone(), s); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	// Unknown color.
	s = &Schedule{N: 1, Speed: 1, Assign: [][]Color{{5}}}
	if _, err := Replay(inst.Clone(), s); err == nil {
		t.Fatal("unknown color accepted")
	}
	// Exec/Assign length mismatch.
	s = &Schedule{N: 1, Speed: 1, Assign: [][]Color{{0}}, Exec: [][]Color{{0}, {0}}}
	if _, err := Replay(inst.Clone(), s); err == nil {
		t.Fatal("Exec length mismatch accepted")
	}
	// Bad N.
	s = &Schedule{N: 0, Speed: 1}
	if _, err := Replay(inst.Clone(), s); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestScheduleShorterThanHorizonPersists(t *testing.T) {
	// The final assignment persists beyond the schedule: a single row
	// configuring color 0 keeps executing later arrivals at no further
	// reconfiguration cost.
	inst := &Instance{Delta: 4, Delays: []int{2}}
	inst.AddJobs(0, 0, 1)
	inst.AddJobs(5, 0, 1)
	s := &Schedule{N: 1, Speed: 1, Assign: [][]Color{{0}}}
	res, err := Replay(inst, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Cost.Reconfig != 4 {
		t.Fatalf("persistence: %v", res)
	}
}

func TestScheduleReconfigs(t *testing.T) {
	s := &Schedule{N: 2, Speed: 1, Assign: [][]Color{
		{0, NoColor}, // 1 change (location 0 from black)
		{0, 1},       // 1 change
		{1, 1},       // 1 change
		{1, 1},       // 0 changes
	}}
	if got := s.Reconfigs(); got != 3 {
		t.Fatalf("Reconfigs = %d, want 3", got)
	}
}

func TestScheduleCloneAndMapColors(t *testing.T) {
	s := &Schedule{N: 1, Speed: 1,
		Assign: [][]Color{{0}, {1}},
		Exec:   [][]Color{{0}, {NoColor}},
	}
	m := s.MapColors(func(c Color) Color { return c + 10 })
	if s.Assign[0][0] != 0 {
		t.Fatal("MapColors mutated the original")
	}
	if m.Assign[0][0] != 10 || m.Assign[1][0] != 11 {
		t.Fatalf("mapped assign = %v", m.Assign)
	}
	if m.Exec[0][0] != 10 || m.Exec[1][0] != NoColor {
		t.Fatalf("mapped exec = %v (NoColor must stay NoColor)", m.Exec)
	}
	c := s.Clone()
	c.Assign[0][0] = 9
	if s.Assign[0][0] == 9 {
		t.Fatal("Clone shares rows")
	}
}

func TestScheduleRounds(t *testing.T) {
	s := &Schedule{N: 1, Speed: 2, Assign: [][]Color{{0}, {0}, {0}}}
	if s.MiniRounds() != 3 {
		t.Fatalf("MiniRounds = %d", s.MiniRounds())
	}
	if s.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2 (3 mini-rounds at speed 2)", s.Rounds())
	}
}

func TestReplayExecLog(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{2}}
	inst.AddJobs(0, 0, 2)
	s := &Schedule{N: 2, Speed: 1, Assign: [][]Color{{0, 0}}}
	res, log, err := ReplayExec(inst, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Fatalf("executed %d", res.Executed)
	}
	if len(log) == 0 || log[0][0] != 0 || log[0][1] != 0 {
		t.Fatalf("exec log = %v", log)
	}
}
