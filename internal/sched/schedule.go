package sched

import "fmt"

// Schedule is an explicit record of reconfiguration (and optionally
// execution) decisions. Schedules come from two sources: Run with
// Options.Record, and offline constructions (the reductions of §4–§5 and
// the Aggregate transformation of §4.3).
//
// Assign[i][k] is the color of location k during mini-round i, where
// mini-round i belongs to round i/Speed. If the schedule is shorter than
// the instance horizon, the final assignment persists for the remaining
// rounds (with no further reconfiguration cost).
//
// Exec, when non-nil, pins the execution phase explicitly: Exec[i][k] is
// the color of the job executed at location k in mini-round i (NoColor to
// idle). When Exec is nil the execution phase is the engine's greedy rule:
// every configured location executes the earliest-deadline pending job of
// its color, locations served in index order.
type Schedule struct {
	Policy string
	N      int
	Speed  int
	Assign [][]Color
	Exec   [][]Color
}

// MiniRounds reports the number of recorded mini-rounds.
func (s *Schedule) MiniRounds() int { return len(s.Assign) }

// Rounds reports the number of full rounds the schedule spans.
func (s *Schedule) Rounds() int {
	if s.Speed <= 0 {
		return len(s.Assign)
	}
	return (len(s.Assign) + s.Speed - 1) / s.Speed
}

// Reconfigs counts the location recolorings the schedule performs,
// starting from the all-black initial configuration.
func (s *Schedule) Reconfigs() int {
	n := 0
	prev := make([]Color, s.N)
	for i := range prev {
		prev[i] = NoColor
	}
	for _, row := range s.Assign {
		for k, c := range row {
			if c != prev[k] {
				n++
				prev[k] = c
			}
		}
	}
	return n
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Policy: s.Policy, N: s.N, Speed: s.Speed}
	c.Assign = make([][]Color, len(s.Assign))
	for i, row := range s.Assign {
		c.Assign[i] = append([]Color(nil), row...)
	}
	if s.Exec != nil {
		c.Exec = make([][]Color, len(s.Exec))
		for i, row := range s.Exec {
			c.Exec[i] = append([]Color(nil), row...)
		}
	}
	return c
}

// MapColors returns a copy of the schedule with every color replaced by
// mapping(c). The reductions use this to translate a schedule for a
// transformed instance back to the original colors (e.g. Distribute maps
// virtual color (ℓ, j) back to ℓ, §4.1 step 3).
func (s *Schedule) MapColors(mapping func(Color) Color) *Schedule {
	c := s.Clone()
	apply := func(rows [][]Color) {
		for _, row := range rows {
			for k, col := range row {
				if col != NoColor {
					row[k] = mapping(col)
				}
			}
		}
	}
	apply(c.Assign)
	if c.Exec != nil {
		apply(c.Exec)
	}
	return c
}

// Replay validates schedule s against instance inst and returns the cost
// and statistics it incurs. It is an independent re-implementation of the
// round semantics (no policy involved) and is used both as a validator for
// engine-recorded schedules and as the evaluator for offline-constructed
// schedules.
//
// Replay fails if the schedule names unknown colors, has rows of the wrong
// width, or (with explicit Exec) executes a job that is not pending or on
// a location configured with a different color.
func Replay(inst *Instance, s *Schedule) (*Result, error) {
	res, _, err := replay(inst, s, false)
	return res, err
}

// ReplayExec is Replay, additionally returning the execution log:
// execLog[i][k] is the color of the job executed at location k in
// mini-round i (NoColor when the location idled). The log spans the full
// replay horizon, which may exceed the schedule length. The Aggregate
// transformation (§4.3) consumes this log.
func ReplayExec(inst *Instance, s *Schedule) (*Result, [][]Color, error) {
	return replay(inst, s, true)
}

func replay(inst *Instance, s *Schedule, recordExec bool) (*Result, [][]Color, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, err
	}
	if s.N < 1 {
		return nil, nil, fmt.Errorf("sched: Replay needs N ≥ 1, got %d", s.N)
	}
	speed := s.Speed
	if speed == 0 {
		speed = 1
	}
	if s.Exec != nil && len(s.Exec) != len(s.Assign) {
		return nil, nil, fmt.Errorf("sched: Replay: Exec has %d rows, Assign has %d", len(s.Exec), len(s.Assign))
	}
	inst.Normalize()

	pool := newJobPool(inst.NumColors())
	res := &Result{
		Policy:       s.Policy,
		DropsByColor: make([]int, inst.NumColors()),
		ExecByColor:  make([]int, inst.NumColors()),
	}
	cur := make([]Color, s.N)
	for i := range cur {
		cur[i] = NoColor
	}
	var execLog [][]Color

	horizon := inst.Horizon()
	if sr := s.Rounds(); sr > horizon {
		horizon = sr
	}
	for r := 0; r < horizon; r++ {
		if r >= inst.NumRounds() && pool.totalPending() == 0 && r*speed >= len(s.Assign) {
			break
		}
		res.Rounds = r + 1

		dropped := pool.expire(r, func(c Color, n int) { res.DropsByColor[c] += n })
		res.Dropped += dropped
		res.Cost.Drop += int64(dropped)

		if r < inst.NumRounds() {
			for _, b := range inst.Requests[r] {
				pool.add(b.Color, r+inst.Delays[b.Color], b.Count)
			}
		}

		for mini := 0; mini < speed; mini++ {
			idx := r*speed + mini
			if idx < len(s.Assign) {
				row := s.Assign[idx]
				if len(row) != s.N {
					return nil, nil, fmt.Errorf("sched: Replay: mini-round %d row has width %d, want %d", idx, len(row), s.N)
				}
				for k, c := range row {
					if c != NoColor && (c < 0 || int(c) >= inst.NumColors()) {
						return nil, nil, fmt.Errorf("sched: Replay: mini-round %d assigns unknown color %d", idx, c)
					}
					if c != cur[k] {
						res.Reconfigs++
						res.Cost.Reconfig += int64(inst.Delta)
						cur[k] = c
					}
				}
			}
			var erow []Color
			if recordExec {
				erow = make([]Color, s.N)
				for i := range erow {
					erow[i] = NoColor
				}
				execLog = append(execLog, erow)
			}
			for k := 0; k < s.N; k++ {
				var want Color
				if s.Exec != nil {
					if idx >= len(s.Exec) {
						continue
					}
					want = s.Exec[idx][k]
					if want == NoColor {
						continue
					}
					if want != cur[k] {
						return nil, nil, fmt.Errorf("sched: Replay: mini-round %d location %d executes color %d but is configured %d",
							idx, k, want, cur[k])
					}
					if pool.pending(want) == 0 {
						return nil, nil, fmt.Errorf("sched: Replay: mini-round %d location %d executes color %d with no pending job",
							idx, k, want)
					}
				} else {
					want = cur[k]
					if want == NoColor || pool.pending(want) == 0 {
						continue
					}
				}
				if _, ok := pool.take(want); ok {
					res.Executed++
					res.ExecByColor[want]++
					if erow != nil {
						erow[k] = want
					}
				}
			}
		}
	}
	if left := pool.totalPending(); left > 0 {
		// Only possible if the horizon computation is wrong; fail loudly.
		return nil, nil, fmt.Errorf("sched: Replay: %d jobs still pending at horizon", left)
	}
	return res, execLog, nil
}
