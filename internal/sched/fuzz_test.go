package sched

import (
	"testing"

	"repro/internal/container"
)

// FuzzReplaySchedule feeds byte-derived schedules to the validator: it
// must never panic, and every accepted schedule must conserve jobs.
func FuzzReplaySchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xFF, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, speedRaw uint8) {
		inst := randomInstance(uint64(len(data))*7+uint64(nRaw), 3, 10, 2)
		n := int(nRaw%4) + 1
		speed := int(speedRaw%2) + 1
		s := &Schedule{Policy: "fuzz", N: n, Speed: speed}
		// Decode rows from the byte stream: 0xFF → NoColor, else modulo
		// the color count.
		for i := 0; i+n <= len(data); i += n {
			row := make([]Color, n)
			for k := 0; k < n; k++ {
				b := data[i+k]
				if b == 0xFF {
					row[k] = NoColor
				} else {
					row[k] = Color(int(b) % inst.NumColors())
				}
			}
			s.Assign = append(s.Assign, row)
		}
		res, err := Replay(inst, s)
		if err != nil {
			return
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			t.Fatalf("accepted schedule broke conservation: %d + %d != %d",
				res.Executed, res.Dropped, inst.TotalJobs())
		}
		if res.Cost.Reconfig < 0 || res.Cost.Drop < 0 {
			t.Fatalf("negative cost: %v", res.Cost)
		}
	})
}

// FuzzStreamArrivals feeds arbitrary arrival patterns through a Stream:
// no panics, and totals always reconcile.
func FuzzStreamArrivals(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pol := &scripted{rows: [][]Color{{0, 1}}}
		st, err := NewStream(pol, StreamConfig{N: 2, Delta: 2, Delays: []int{2, 4}})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, b := range data {
			var req Request
			if cnt := int(b % 4); cnt > 0 {
				req = Request{{Color: Color(i % 2), Count: cnt}}
				total += cnt
			}
			if _, err := st.Step(req); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		if st.Executed()+st.Dropped() != total {
			t.Fatalf("conservation: %d + %d != %d", st.Executed(), st.Dropped(), total)
		}
	})
}

// arrivalSensitive is a policy whose assignment depends on the exact
// shape of ctx.Arrivals — batch order, multiplicity, and counts — so any
// normalization divergence between the Run and Stream front-ends changes
// its behavior and is caught by the differential test below.
type arrivalSensitive struct {
	env Env
	row []Color
}

func (p *arrivalSensitive) Name() string { return "arrival-sensitive" }
func (p *arrivalSensitive) Reset(env Env) {
	p.env = env
	p.row = make([]Color, env.N)
}
func (p *arrivalSensitive) Reconfigure(ctx *Context) []Color {
	colors := len(p.env.Delays)
	for k := range p.row {
		switch {
		case len(ctx.Arrivals) > 0:
			b := ctx.Arrivals[k%len(ctx.Arrivals)]
			p.row[k] = Color((int(b.Color) + b.Count + k + ctx.Mini) % colors)
		case ctx.TotalPending() > 0:
			nonidle := ctx.NonidleColors(nil)
			p.row[k] = nonidle[k%len(nonidle)]
		default:
			p.row[k] = NoColor
		}
	}
	return p.row
}

// rawRandomInstance builds a small random instance WITHOUT normalizing
// it: rounds may carry duplicate-color and unsorted batches, exactly what
// a live caller might hand Stream.Step.
func rawRandomInstance(seed uint64) *Instance {
	rng := container.NewRNG(seed*7919 + 13)
	colors := 2 + rng.Intn(3)
	delayChoices := []int{1, 2, 3, 4, 8}
	inst := &Instance{Delta: 1 + rng.Intn(5), Delays: make([]int, colors)}
	for c := range inst.Delays {
		inst.Delays[c] = delayChoices[rng.Intn(len(delayChoices))]
	}
	rounds := 4 + rng.Intn(12)
	for r := 0; r < rounds; r++ {
		for b, nb := 0, rng.Intn(4); b < nb; b++ {
			inst.AddJobs(r, Color(rng.Intn(colors)), 1+rng.Intn(3))
		}
	}
	return inst
}

func resultsEqual(a, b *Result) bool {
	if a.Cost != b.Cost || a.Executed != b.Executed || a.Dropped != b.Dropped ||
		a.Reconfigs != b.Reconfigs || a.Rounds != b.Rounds {
		return false
	}
	for c := range a.DropsByColor {
		if a.DropsByColor[c] != b.DropsByColor[c] || a.ExecByColor[c] != b.ExecByColor[c] {
			return false
		}
	}
	return true
}

// TestRunStreamReplayEquivalence is the randomized differential test for
// the repository's core correctness invariant: a recorded instance fed
// through Run, through Stream.Step (+Drain, or +DropPending under
// truncation), and through Replay of the recorded schedule must produce
// identical Results — costs, totals, per-color breakdowns, reconfig and
// round counts. It covers duplicate-color unsorted arrival batches,
// MaxRounds truncation, Speed=2, and both arrival-sensitive and scripted
// policies, across well over 1000 randomized instances.
func TestRunStreamReplayEquivalence(t *testing.T) {
	const trials = 1200
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial)
		rng := container.NewRNG(seed*2654435761 + 17)
		inst := rawRandomInstance(seed)
		n := 1 + rng.Intn(3)
		speed := 1 + rng.Intn(2)
		maxRounds := 0
		if rng.Bool(0.3) {
			maxRounds = 1 + rng.Intn(inst.Horizon())
		}
		mk := func() Policy {
			if trial%2 == 0 {
				return randomScript(seed+3, inst, n, inst.Horizon())
			}
			return &arrivalSensitive{}
		}

		record := maxRounds == 0
		want, err := Run(inst.Clone(), mk(), Options{N: n, Speed: speed, MaxRounds: maxRounds, Record: record})
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		// The per-color breakdowns must sum to the totals even under
		// MaxRounds truncation (forced drops are attributed per color).
		sumDrop, sumExec := 0, 0
		for c := range want.DropsByColor {
			sumDrop += want.DropsByColor[c]
			sumExec += want.ExecByColor[c]
		}
		if sumDrop != want.Dropped || sumExec != want.Executed {
			t.Fatalf("trial %d: breakdown does not sum: drops %d/%d execs %d/%d",
				trial, sumDrop, want.Dropped, sumExec, want.Executed)
		}
		// Conservation: every job is executed or dropped. Under MaxRounds
		// truncation jobs arriving past the cap never enter the run, so
		// the invariant only binds the untruncated case.
		if maxRounds == 0 && want.Executed+want.Dropped != inst.TotalJobs() {
			t.Fatalf("trial %d: conservation: %d+%d != %d", trial, want.Executed, want.Dropped, inst.TotalJobs())
		}

		// Stream: feed the RAW (unnormalized, duplicate-laden) requests.
		st, err := NewStream(mk(), StreamConfig{N: n, Speed: speed, Delta: inst.Delta, Delays: inst.Delays})
		if err != nil {
			t.Fatalf("trial %d: NewStream: %v", trial, err)
		}
		if maxRounds == 0 {
			for r := 0; r < inst.NumRounds(); r++ {
				if _, err := st.Step(inst.Requests[r]); err != nil {
					t.Fatalf("trial %d: Step(%d): %v", trial, r, err)
				}
			}
			if _, err := st.Drain(); err != nil {
				t.Fatalf("trial %d: Drain: %v", trial, err)
			}
		} else {
			// Mirror Run's truncated loop, then charge the leftovers the
			// way Run's MaxRounds accounting does.
			horizon := inst.Horizon()
			if maxRounds < horizon {
				horizon = maxRounds
			}
			for r := 0; r < horizon; r++ {
				if r >= inst.NumRounds() && st.TotalPending() == 0 {
					break
				}
				var req Request
				if r < inst.NumRounds() {
					req = inst.Requests[r]
				}
				if _, err := st.Step(req); err != nil {
					t.Fatalf("trial %d: Step(%d): %v", trial, r, err)
				}
			}
			st.DropPending()
		}
		got := st.Result()
		if !resultsEqual(want, got) {
			t.Fatalf("trial %d (n=%d speed=%d maxRounds=%d): Run and Stream diverged:\n run:    %v\n stream: %v",
				trial, n, speed, maxRounds, want, got)
		}

		// Replay the recorded schedule as the third, independent engine.
		if record && want.Schedule != nil {
			rep, err := Replay(inst.Clone(), want.Schedule)
			if err != nil {
				t.Fatalf("trial %d: Replay: %v", trial, err)
			}
			if !resultsEqual(want, rep) {
				t.Fatalf("trial %d (n=%d speed=%d): Run and Replay diverged:\n run:    %v\n replay: %v",
					trial, n, speed, want, rep)
			}
		}
	}
}
