package sched

import "testing"

// FuzzReplaySchedule feeds byte-derived schedules to the validator: it
// must never panic, and every accepted schedule must conserve jobs.
func FuzzReplaySchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xFF, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, speedRaw uint8) {
		inst := randomInstance(uint64(len(data))*7+uint64(nRaw), 3, 10, 2)
		n := int(nRaw%4) + 1
		speed := int(speedRaw%2) + 1
		s := &Schedule{Policy: "fuzz", N: n, Speed: speed}
		// Decode rows from the byte stream: 0xFF → NoColor, else modulo
		// the color count.
		for i := 0; i+n <= len(data); i += n {
			row := make([]Color, n)
			for k := 0; k < n; k++ {
				b := data[i+k]
				if b == 0xFF {
					row[k] = NoColor
				} else {
					row[k] = Color(int(b) % inst.NumColors())
				}
			}
			s.Assign = append(s.Assign, row)
		}
		res, err := Replay(inst, s)
		if err != nil {
			return
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			t.Fatalf("accepted schedule broke conservation: %d + %d != %d",
				res.Executed, res.Dropped, inst.TotalJobs())
		}
		if res.Cost.Reconfig < 0 || res.Cost.Drop < 0 {
			t.Fatalf("negative cost: %v", res.Cost)
		}
	})
}

// FuzzStreamArrivals feeds arbitrary arrival patterns through a Stream:
// no panics, and totals always reconcile.
func FuzzStreamArrivals(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pol := &scripted{rows: [][]Color{{0, 1}}}
		st, err := NewStream(pol, StreamConfig{N: 2, Delta: 2, Delays: []int{2, 4}})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, b := range data {
			var req Request
			if cnt := int(b % 4); cnt > 0 {
				req = Request{{Color: Color(i % 2), Count: cnt}}
				total += cnt
			}
			if _, err := st.Step(req); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		if st.Executed()+st.Dropped() != total {
			t.Fatalf("conservation: %d + %d != %d", st.Executed(), st.Dropped(), total)
		}
	})
}
