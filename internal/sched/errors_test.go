package sched

import (
	"errors"
	"testing"
)

// The structural-validation contract of the ingest path: Stream.Step and
// ValidateRequest reject out-of-range colors and non-positive counts
// with an *ArrivalError, NewStream rejects bad configuration with a
// *ConfigError, and a rejected Step leaves the stream untouched.
func TestStepRejectsInvalidArrivals(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"negative color", Request{{Color: -1, Count: 1}}},
		{"color at NumColors", Request{{Color: 3, Count: 1}}},
		{"color far out of range", Request{{Color: 1 << 20, Count: 1}}},
		{"zero count", Request{{Color: 0, Count: 0}}},
		{"negative count", Request{{Color: 1, Count: -4}}},
		{"valid then invalid", Request{{Color: 0, Count: 2}, {Color: 2, Count: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewStream(&scripted{rows: [][]Color{{0, 1}}}, StreamConfig{N: 2, Delta: 2, Delays: []int{2, 4, 8}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Step(Request{{Color: 0, Count: 1}}); err != nil {
				t.Fatal(err)
			}
			before := st.Result()

			_, err = st.Step(tc.req)
			var ae *ArrivalError
			if !errors.As(err, &ae) {
				t.Fatalf("Step(%v) = %v, want *ArrivalError", tc.req, err)
			}
			if ae.NumColors != 3 {
				t.Errorf("ArrivalError.NumColors = %d, want 3", ae.NumColors)
			}
			if err := ValidateRequest(tc.req, 3); !errors.As(err, &ae) {
				t.Errorf("ValidateRequest(%v) = %v, want *ArrivalError", tc.req, err)
			}

			// The rejection must not have consumed a round or mutated state.
			if st.Round() != 1 {
				t.Errorf("rejected Step advanced the round to %d", st.Round())
			}
			after := st.Result()
			if before.Cost != after.Cost || before.Executed != after.Executed ||
				before.Dropped != after.Dropped || before.Rounds != after.Rounds {
				t.Errorf("rejected Step mutated the result: before %v, after %v", before, after)
			}

			// The stream still works after a rejected Step.
			if _, err := st.Step(Request{{Color: 1, Count: 1}}); err != nil {
				t.Errorf("Step after rejection: %v", err)
			}
		})
	}

	if err := ValidateRequest(Request{{Color: 0, Count: 1}, {Color: 2, Count: 3}}, 3); err != nil {
		t.Errorf("ValidateRequest(valid) = %v", err)
	}
}

func TestNewStreamRejectsInvalidConfig(t *testing.T) {
	cases := []struct {
		name  string
		cfg   StreamConfig
		field string
	}{
		{"zero N", StreamConfig{N: 0, Delta: 1, Delays: []int{1}}, "N"},
		{"negative N", StreamConfig{N: -3, Delta: 1, Delays: []int{1}}, "N"},
		{"negative Speed", StreamConfig{N: 1, Speed: -1, Delta: 1, Delays: []int{1}}, "Speed"},
		{"zero Delta", StreamConfig{N: 1, Delta: 0, Delays: []int{1}}, "Delta"},
		{"zero delay bound", StreamConfig{N: 1, Delta: 1, Delays: []int{2, 0}}, "Delays"},
		{"negative delay bound", StreamConfig{N: 1, Delta: 1, Delays: []int{2, 4, -1}}, "Delays"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewStream(&scripted{rows: [][]Color{{0, 1}}}, tc.cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("NewStream = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			if tc.field == "Delays" && ce.Color < 0 {
				t.Errorf("ConfigError.Color = %d, want the offending color index", ce.Color)
			}
		})
	}
}
