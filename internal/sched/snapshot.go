package sched

import (
	"fmt"

	"repro/internal/snap"
)

// SnapshotVersion identifies the layout of the state blob produced by
// Stream.Snapshot. Bump it on any incompatible change; RestoreStream
// rejects other versions. (The durable file container around the blob
// is versioned separately — see trace.WriteCheckpoint.)
const SnapshotVersion = 1

// Restore-time sanity bounds on configuration read from a snapshot.
// They exist so a corrupt blob cannot make RestoreStream attempt an
// absurd allocation before validation has a chance to reject it; real
// deployments sit orders of magnitude below all three.
const (
	maxSnapshotN      = 1 << 22
	maxSnapshotColors = 1 << 22
	maxSnapshotSpeed  = 1 << 12
)

// Snapshotter is the checkpoint/restore capability of a Policy. Every
// policy shipped in this repository implements it; Stream.Snapshot
// requires it.
//
// The contract is deterministic resume: restoring a snapshot and
// feeding the same arrivals must reproduce the uninterrupted run's
// Result bit for bit, and re-snapshotting immediately after a restore
// must reproduce the snapshot bytes. That means SnapshotState must
// capture every piece of state that can influence future decisions
// (including RNG state and the exact order of history-dependent
// structures such as free lists and heap layouts), and must write
// map-backed state in a canonical order.
type Snapshotter interface {
	// SnapshotState appends the policy's complete dynamic state to e.
	SnapshotState(e *snap.Encoder)
	// RestoreState rebuilds that state from d. It is invoked on a policy
	// that has just been Reset with the same Env the snapshot was taken
	// under, and must validate what it reads, reporting corrupt or
	// inconsistent input as an error — never a panic.
	RestoreState(d *snap.Decoder) error
}

// Snapshot serializes the stream's complete state — configuration,
// round engine, pending-job pool, cost ledger and policy — into a
// self-contained blob that RestoreStream can later rebuild a live
// stream from. Wrap the blob with trace.WriteCheckpoint to store it
// durably (length-prefixed, versioned, checksummed).
//
// The policy must implement Snapshotter. Snapshotting is read-only: it
// does not disturb the stream, which may keep stepping afterward. An
// attached Probe is not part of the state — observability sinks are
// reattached explicitly on restore.
func (s *Stream) Snapshot() ([]byte, error) {
	return s.AppendSnapshot(nil)
}

// AppendSnapshot is Snapshot writing into caller-owned storage: the
// blob is appended onto dst (which may be nil or a recycled buffer —
// pass buf[:0]) and the extended slice is returned. A caller that
// recycles the returned buffer across checkpoints reaches a
// steady state where snapshotting allocates nothing, which is what
// keeps the serve tier's per-round checkpoint path flat (see
// docs/PERFORMANCE.md). The returned slice is caller-owned; the
// stream retains no reference to it.
func (s *Stream) AppendSnapshot(dst []byte) ([]byte, error) {
	sn, ok := s.eng.pol.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sched: policy %s does not implement Snapshotter", s.eng.pol.Name())
	}
	e := &s.snapEnc
	e.Attach(dst)
	e.Int(SnapshotVersion)
	e.Int(s.cfg.N)
	e.Int(s.cfg.Speed)
	e.Int(s.cfg.Delta)
	e.Ints(s.cfg.Delays)
	e.String(s.eng.pol.Name())
	s.eng.snapshotState(e)
	sn.SnapshotState(e)
	out := e.Bytes()
	e.Attach(nil) // release: the buffer is caller-owned from here on
	return out, nil
}

// SnapshotDelta captures the stream's state as a binary delta against
// base, a full snapshot blob previously taken from this stream (see
// snap.MakeDelta for the format). The delta is appended onto dst and
// the extended slice returned; snap.ApplyDelta(nil, base, delta)
// reproduces the full snapshot bit-identically. Deltas are always
// computed against the given base — they never chain — so the caller
// retains one full blob and may take any number of deltas against it.
// Like AppendSnapshot, a caller recycling dst reaches an
// allocation-flat steady state.
func (s *Stream) SnapshotDelta(base, dst []byte) ([]byte, error) {
	cur, err := s.AppendSnapshot(s.deltaScratch[:0])
	if err != nil {
		return nil, err
	}
	s.deltaScratch = cur // retain the grown buffer for next time
	return s.dm.AppendDelta(dst, base, cur), nil
}

// PeekSnapshot decodes just the configuration header of a
// Stream.Snapshot blob — the StreamConfig it was taken under and the
// name of its policy — without rebuilding the stream. Servers restoring
// many tenants use it to size observability sinks and validate metadata
// before paying for the full RestoreStream. The same sanity bounds as
// RestoreStream apply; corrupt input yields an error, never a panic.
func PeekSnapshot(snapshot []byte) (cfg StreamConfig, policyName string, err error) {
	d := snap.NewDecoder(snapshot)
	if v := d.Int(); d.Err() == nil && v != SnapshotVersion {
		return StreamConfig{}, "", fmt.Errorf("sched: snapshot version %d, this build reads %d", v, SnapshotVersion)
	}
	cfg.N = d.Int()
	cfg.Speed = d.Int()
	cfg.Delta = d.Int()
	cfg.Delays = d.Ints()
	policyName = d.String()
	if err := d.Err(); err != nil {
		return StreamConfig{}, "", err
	}
	if cfg.N < 1 || cfg.N > maxSnapshotN {
		return StreamConfig{}, "", fmt.Errorf("sched: snapshot N=%d outside [1, %d]", cfg.N, maxSnapshotN)
	}
	if cfg.Speed < 1 || cfg.Speed > maxSnapshotSpeed {
		return StreamConfig{}, "", fmt.Errorf("sched: snapshot Speed=%d outside [1, %d]", cfg.Speed, maxSnapshotSpeed)
	}
	if len(cfg.Delays) > maxSnapshotColors {
		return StreamConfig{}, "", fmt.Errorf("sched: snapshot has %d colors, limit %d", len(cfg.Delays), maxSnapshotColors)
	}
	return cfg, policyName, nil
}

// RestoreStream rebuilds a live Stream from a Snapshot blob. pol must
// be a fresh policy of the same type (matched by Name) that produced
// the snapshot; probe, which is not serialized, is attached to the
// restored stream (nil for none). The restored stream continues
// exactly where the snapshot was taken: stepping it through the same
// arrivals yields a Result bit-identical to the uninterrupted run.
//
// Corrupt, truncated or mismatched input is reported as an error,
// never a panic.
func RestoreStream(pol Policy, snapshot []byte, probe Probe) (st *Stream, err error) {
	// Validation below catches every corruption the tests construct, but
	// policy Reset/Restore implementations are entitled to panic on
	// impossible configurations; a snapshot is untrusted input, so the
	// restore path converts any such panic into an error.
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, fmt.Errorf("sched: restoring snapshot: panic: %v", r)
		}
	}()
	d := snap.NewDecoder(snapshot)
	if v := d.Int(); d.Err() == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("sched: snapshot version %d, this build reads %d", v, SnapshotVersion)
	}
	cfg := StreamConfig{Probe: probe}
	cfg.N = d.Int()
	cfg.Speed = d.Int()
	cfg.Delta = d.Int()
	cfg.Delays = d.Ints()
	name := d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if cfg.N < 1 || cfg.N > maxSnapshotN {
		return nil, fmt.Errorf("sched: snapshot N=%d outside [1, %d]", cfg.N, maxSnapshotN)
	}
	if cfg.Speed < 1 || cfg.Speed > maxSnapshotSpeed {
		return nil, fmt.Errorf("sched: snapshot Speed=%d outside [1, %d]", cfg.Speed, maxSnapshotSpeed)
	}
	if len(cfg.Delays) > maxSnapshotColors {
		return nil, fmt.Errorf("sched: snapshot has %d colors, limit %d", len(cfg.Delays), maxSnapshotColors)
	}
	if name != pol.Name() {
		return nil, fmt.Errorf("sched: snapshot was taken with policy %q, restore given %q", name, pol.Name())
	}
	st, err = NewStream(pol, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.eng.restoreState(d); err != nil {
		return nil, err
	}
	sn, ok := pol.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sched: policy %s does not implement Snapshotter", pol.Name())
	}
	if err := sn.RestoreState(d); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

// snapshotState appends the engine's dynamic state: round counter, cost
// ledger with per-color breakdowns, current configuration and the
// pending-job pool. The policy name inside res is derived (Run and
// RestoreStream set it from the policy) and is not repeated here.
func (e *roundEngine) snapshotState(enc *snap.Encoder) {
	enc.Int(e.round)
	enc.Int64(e.res.Cost.Reconfig)
	enc.Int64(e.res.Cost.Drop)
	enc.Int(e.res.Executed)
	enc.Int(e.res.Dropped)
	enc.Int(e.res.Reconfigs)
	enc.Int(e.res.Rounds)
	enc.Ints(e.res.DropsByColor)
	enc.Ints(e.res.ExecByColor)
	enc.Int(len(e.cur))
	for _, c := range e.cur {
		enc.Int(int(c))
	}
	e.pool.snapshotState(enc)
}

// restoreState rebuilds the engine from d; the engine must be freshly
// constructed (as NewStream leaves it) for the same environment.
func (e *roundEngine) restoreState(d *snap.Decoder) error {
	e.round = d.Int()
	e.res.Cost.Reconfig = d.Int64()
	e.res.Cost.Drop = d.Int64()
	e.res.Executed = d.Int()
	e.res.Dropped = d.Int()
	e.res.Reconfigs = d.Int()
	e.res.Rounds = d.Int()
	drops := d.Ints()
	execs := d.Ints()
	nc := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	if e.round < 0 || e.res.Rounds != e.round {
		d.Failf("sched: snapshot round %d inconsistent with rounds %d", e.round, e.res.Rounds)
		return d.Err()
	}
	if len(drops) != e.numColors || len(execs) != e.numColors {
		d.Failf("sched: snapshot has %d/%d per-color entries for %d colors", len(drops), len(execs), e.numColors)
		return d.Err()
	}
	sumDrops, sumExecs := 0, 0
	for c := 0; c < e.numColors; c++ {
		if drops[c] < 0 || execs[c] < 0 {
			d.Failf("sched: negative per-color count for color %d", c)
			return d.Err()
		}
		sumDrops += drops[c]
		sumExecs += execs[c]
	}
	if sumDrops != e.res.Dropped || sumExecs != e.res.Executed {
		d.Failf("sched: per-color breakdowns (%d dropped, %d executed) do not sum to totals (%d, %d)",
			sumDrops, sumExecs, e.res.Dropped, e.res.Executed)
		return d.Err()
	}
	copy(e.res.DropsByColor, drops)
	copy(e.res.ExecByColor, execs)
	if nc != e.env.N {
		d.Failf("sched: snapshot configuration covers %d locations, engine has %d", nc, e.env.N)
		return d.Err()
	}
	for k := range e.cur {
		c := Color(d.Int())
		if d.Err() != nil {
			return d.Err()
		}
		if c != NoColor && (c < 0 || int(c) >= e.numColors) {
			d.Failf("sched: location %d configured with invalid color %d", k, c)
			return d.Err()
		}
		e.cur[k] = c
	}
	return e.pool.restoreState(d)
}

// snapshotState appends the pool's pending buckets per color plus the
// earliest-deadline heap in exact internal order (preserving the layout
// keeps deadline-tie processing identical after restore).
func (p *jobPool) snapshotState(enc *snap.Encoder) {
	enc.Int(len(p.queues))
	for i := range p.queues {
		p.snapScratch = p.queues[i].Buckets(p.snapScratch[:0])
		enc.Int(len(p.snapScratch))
		for _, b := range p.snapScratch {
			enc.Int(b.Deadline)
			enc.Int(b.Count)
		}
	}
	enc.Int(p.dl.Len())
	p.dl.Export(func(c Color, dl int) {
		enc.Int(int(c))
		enc.Int(dl)
	})
}

// restoreState rebuilds the pool from d; the pool must be empty (as
// newJobPool leaves it). Bucket sequences are validated — positive
// counts, strictly increasing deadlines — before being replayed, and
// the heap is cross-checked against the rebuilt queues, so corrupt
// input yields an error, never a panic or a silently broken pool.
func (p *jobPool) restoreState(d *snap.Decoder) error {
	nq := d.Len()
	if d.Err() == nil && nq != len(p.queues) {
		d.Failf("sched: snapshot pool has %d colors, engine has %d", nq, len(p.queues))
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.total = 0
	nonEmpty := 0
	for i := 0; i < nq; i++ {
		nb := d.Len()
		if d.Err() != nil {
			return d.Err()
		}
		prev := -1 << 62
		for j := 0; j < nb; j++ {
			deadline, count := d.Int(), d.Int()
			if d.Err() != nil {
				return d.Err()
			}
			if count <= 0 {
				d.Failf("sched: pool color %d bucket %d has count %d", i, j, count)
				return d.Err()
			}
			if deadline <= prev {
				d.Failf("sched: pool color %d deadlines not strictly increasing at bucket %d", i, j)
				return d.Err()
			}
			p.queues[i].Add(deadline, count)
			p.total += count
			prev = deadline
		}
		if nb > 0 {
			nonEmpty++
		}
	}
	nh := d.Len()
	if d.Err() == nil && nh != nonEmpty {
		d.Failf("sched: deadline heap has %d entries for %d non-empty colors", nh, nonEmpty)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for k := 0; k < nh; k++ {
		c, dl := d.Int(), d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if c < 0 || c >= len(p.queues) {
			d.Failf("sched: deadline heap names invalid color %d", c)
			return d.Err()
		}
		earliest, ok := p.queues[c].EarliestDeadline()
		if !ok || earliest != dl {
			d.Failf("sched: deadline heap entry (%d, %d) disagrees with queue", c, dl)
			return d.Err()
		}
		if !p.dl.Import(Color(c), dl) {
			d.Failf("sched: deadline heap repeats color %d", c)
			return d.Err()
		}
	}
	return nil
}
