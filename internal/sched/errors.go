package sched

import "fmt"

// ArrivalError reports a structurally invalid arrival batch handed to
// Stream.Step (or, through it, to any ingest path that feeds a stream,
// such as the rrserved submit handler). It is a typed error so callers
// multiplexing many tenants can distinguish "this request is malformed —
// reject it and keep serving" from engine failures that poison the
// stream; test with errors.As.
type ArrivalError struct {
	// Color and Count echo the offending batch.
	Color Color
	Count int
	// NumColors is the size of the stream's color universe, so the
	// message can say what would have been valid.
	NumColors int
}

func (e *ArrivalError) Error() string {
	if e.Color < 0 || int(e.Color) >= e.NumColors {
		return fmt.Sprintf("sched: invalid arrival: color %d outside [0, %d)", e.Color, e.NumColors)
	}
	return fmt.Sprintf("sched: invalid arrival: color %d has non-positive count %d", e.Color, e.Count)
}

// ConfigError reports an invalid StreamConfig (or Env) field: a
// non-positive resource count, speed, reconfiguration cost, or delay
// bound. NewStream returns it so service front-ends can reject a bad
// tenant-open request as a client error rather than a server fault;
// test with errors.As.
type ConfigError struct {
	// Field names the offending StreamConfig field ("N", "Speed",
	// "Delta", "Delays").
	Field string
	// Color is the offending color index when Field == "Delays", and -1
	// otherwise.
	Color Color
	// Value is the rejected value.
	Value int
}

func (e *ConfigError) Error() string {
	if e.Field == "Delays" {
		return fmt.Sprintf("sched: invalid config: color %d has delay bound %d < 1", e.Color, e.Value)
	}
	return fmt.Sprintf("sched: invalid config: %s must be ≥ 1, got %d", e.Field, e.Value)
}

// validateArrivals checks every batch against the color universe; it is
// the single structural gate in front of the round engine, shared by
// Stream.Step and anything that pre-validates requests before queueing
// them (ValidateRequest).
func validateArrivals(arrivals Request, numColors int) error {
	for _, b := range arrivals {
		if b.Color < 0 || int(b.Color) >= numColors || b.Count <= 0 {
			return &ArrivalError{Color: b.Color, Count: b.Count, NumColors: numColors}
		}
	}
	return nil
}

// ValidateRequest checks that every batch of r names a color in
// [0, numColors) with a positive count, returning an *ArrivalError for
// the first violation. Ingest paths that buffer requests before stepping
// a stream (the rrserved submit queue) use it to reject malformed input
// at admission time instead of poisoning a later round tick.
func ValidateRequest(r Request, numColors int) error {
	return validateArrivals(r, numColors)
}
