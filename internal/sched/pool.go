package sched

import (
	"slices"

	"repro/internal/container"
)

// jobPool holds the pending jobs of every color during a run. Jobs are
// represented as (deadline, count) buckets per color; a min-heap over the
// per-color earliest deadlines makes the drop phase O(expired · log C)
// instead of O(C) per round.
type jobPool struct {
	queues []container.BucketQueue
	dl     *container.IndexedHeap[Color, int]
	total  int
	// snapScratch is reused by snapshotState so repeated snapshots do
	// not allocate per call.
	snapScratch []container.Bucket
}

func newJobPool(numColors int) *jobPool {
	return &jobPool{
		queues: make([]container.BucketQueue, numColors),
		dl:     container.NewIndexedHeap[Color, int](func(a, b int) bool { return a < b }),
	}
}

func (p *jobPool) pending(c Color) int { return p.queues[c].Len() }

func (p *jobPool) totalPending() int { return p.total }

func (p *jobPool) earliestDeadline(c Color) (int, bool) {
	return p.queues[c].EarliestDeadline()
}

// add records count jobs of color c expiring at deadline.
func (p *jobPool) add(c Color, deadline, count int) {
	if count <= 0 {
		return
	}
	q := &p.queues[c]
	wasEmpty := q.Empty()
	q.Add(deadline, count)
	p.total += count
	if wasEmpty {
		p.dl.Push(c, deadline)
	}
	// A non-empty queue's earliest deadline is unchanged by Add because
	// per-color deadlines are nondecreasing.
}

// take executes one pending job of color c (the earliest-deadline one).
func (p *jobPool) take(c Color) (deadline int, ok bool) {
	q := &p.queues[c]
	deadline, ok = q.TakeEarliest()
	if !ok {
		return 0, false
	}
	p.total--
	p.refreshHeap(c, q)
	return deadline, true
}

// expire drops every job with deadline ≤ round, invoking onDrop per color
// that lost jobs, and returns the total number dropped.
func (p *jobPool) expire(round int, onDrop func(c Color, count int)) int {
	dropped := 0
	for {
		c, dl, ok := p.dl.Min()
		if !ok || dl > round {
			break
		}
		q := &p.queues[c]
		n := q.ExpireThrough(round)
		p.total -= n
		dropped += n
		if n > 0 && onDrop != nil {
			onDrop(c, n)
		}
		p.refreshHeap(c, q)
	}
	return dropped
}

func (p *jobPool) refreshHeap(c Color, q *container.BucketQueue) {
	if dl, ok := q.EarliestDeadline(); ok {
		p.dl.Update(c, dl)
	} else {
		p.dl.Remove(c)
	}
}

// nonidle appends the colors with pending jobs to dst in increasing color
// order and returns it. Allocation-free once dst has capacity
// (slices.Sort needs no reflection header, unlike sort.Slice).
func (p *jobPool) nonidle(dst []Color) []Color {
	start := len(dst)
	dst = p.dl.AppendKeys(dst)
	slices.Sort(dst[start:])
	return dst
}
