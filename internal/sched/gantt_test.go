package sched

import (
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	s := &Schedule{
		Policy: "demo", N: 2, Speed: 1,
		Assign: [][]Color{
			{0, NoColor},
			{0, 1},
			{1, 1},
		},
	}
	var b strings.Builder
	if err := s.RenderGantt(&b, 0, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "r0   |aab|") {
		t.Fatalf("row 0 wrong:\n%s", out)
	}
	if !strings.Contains(out, "r1   |.bb|") {
		t.Fatalf("row 1 wrong:\n%s", out)
	}
	if !strings.Contains(out, "a=color 0") || !strings.Contains(out, "b=color 1") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestRenderGanttWindowing(t *testing.T) {
	s := &Schedule{Policy: "w", N: 1, Speed: 1}
	for i := 0; i < 100; i++ {
		s.Assign = append(s.Assign, []Color{Color(i % 2)})
	}
	var b strings.Builder
	if err := s.RenderGantt(&b, 90, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mini-rounds 90–94 of 100") {
		t.Fatalf("window header wrong:\n%s", b.String())
	}
	// Out-of-range window reports gracefully.
	var b2 strings.Builder
	if err := s.RenderGantt(&b2, 500, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "outside") {
		t.Fatalf("out-of-range window not reported:\n%s", b2.String())
	}
	// Defaults: negative from, zero width.
	var b3 strings.Builder
	if err := s.RenderGantt(&b3, -5, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), "mini-rounds 0–79") {
		t.Fatalf("defaults wrong:\n%s", b3.String())
	}
}

func TestColorGlyphStable(t *testing.T) {
	if colorGlyph(NoColor) != '.' {
		t.Fatal("NoColor glyph")
	}
	if colorGlyph(0) != 'a' || colorGlyph(25) != 'z' || colorGlyph(26) != 'A' {
		t.Fatal("glyph mapping changed")
	}
	// Wraps for large palettes without panicking.
	_ = colorGlyph(1000)
}
