package sched

// Env describes the fixed parameters a policy sees when a run starts.
type Env struct {
	// N is the number of resources (cache locations) given to the policy.
	N int
	// Speed is the number of mini-rounds per round: 1 for uni-speed
	// algorithms, 2 for double-speed algorithms such as DS-Seq-EDF (§3.3).
	Speed int
	// Delta is the reconfiguration cost Δ.
	Delta int
	// Delays[c] is the delay bound of color c.
	Delays []int
}

// Policy is an online reconfiguration scheme. The engine drives it through
// the four phases of every round: after the drop and arrival phases have
// been applied to the pending-job state, Reconfigure is called once per
// mini-round and returns the desired assignment of colors to the N
// locations; the engine then charges Δ for every location whose color
// changed and runs the execution phase.
//
// Policies are online: Context exposes only the current round's arrivals
// and the current pending state, never future requests.
type Policy interface {
	// Name identifies the policy in results and experiment tables.
	Name() string
	// Reset prepares the policy for a fresh run in the given environment.
	Reset(env Env)
	// Reconfigure returns the assignment for this mini-round: a slice of
	// length env.N whose entry k is the color of location k (NoColor for
	// an unconfigured location). The engine copies the slice; policies may
	// reuse the backing array across calls.
	Reconfigure(ctx *Context) []Color
}

// DropObserver is implemented by policies that need to see the drop phase
// (ΔLRU-EDF classifies drops into eligible and ineligible ones, §3.2).
// OnDrop is invoked during the drop phase of round for each color that
// lost jobs, before Reconfigure.
type DropObserver interface {
	OnDrop(round int, c Color, count int)
}

// ExecObserver is implemented by policies that track executions (used by
// instrumentation and by concurrently-compared runs in tests).
type ExecObserver interface {
	OnExec(round, mini int, c Color, count int)
}

// Context is the read-only view a policy gets each mini-round.
type Context struct {
	// Round is the current round index; Mini the mini-round within it
	// (always 0 for uni-speed runs).
	Round int
	Mini  int
	// Arrivals is the request received this round (normalized: sorted by
	// color, one batch per color). It is identical across the round's
	// mini-rounds.
	Arrivals Request

	env  Env
	pool *jobPool
}

// Env returns the run environment.
func (c *Context) Env() Env { return c.env }

// Pending reports the number of pending jobs of color col.
func (c *Context) Pending(col Color) int { return c.pool.pending(col) }

// EarliestDeadline reports the earliest deadline among pending jobs of
// color col; ok is false if the color is idle.
func (c *Context) EarliestDeadline(col Color) (deadline int, ok bool) {
	return c.pool.earliestDeadline(col)
}

// TotalPending reports the number of pending jobs across all colors.
func (c *Context) TotalPending() int { return c.pool.totalPending() }

// NonidleColors appends the colors that currently have pending jobs to
// dst and returns it, in increasing color order.
func (c *Context) NonidleColors(dst []Color) []Color {
	return c.pool.nonidle(dst)
}
