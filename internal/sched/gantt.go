package sched

import (
	"fmt"
	"io"
	"strings"
)

// RenderGantt draws the schedule as an ASCII Gantt chart: one row per
// resource, one character per round (uni-speed; for double-speed
// schedules each mini-round gets a column). Colors map to letters
// a, b, c, … (wrapping with A–Z, 0–9 for larger palettes); '.' marks an
// unconfigured location. Long schedules are windowed to [from, from+width).
//
// The chart is a debugging and paper-figure aid: thrashing shows up as
// vertical noise, ΔLRU-EDF's LRU half as long horizontal runs.
func (s *Schedule) RenderGantt(w io.Writer, from, width int) error {
	if from < 0 {
		from = 0
	}
	if width <= 0 {
		width = 80
	}
	to := from + width
	if to > len(s.Assign) {
		to = len(s.Assign)
	}
	if from >= to {
		_, err := fmt.Fprintf(w, "(gantt: window [%d,%d) outside the %d recorded mini-rounds)\n",
			from, from+width, len(s.Assign))
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt %q: mini-rounds %d–%d of %d, %d resources\n",
		s.Policy, from, to-1, len(s.Assign), s.N)
	for k := 0; k < s.N; k++ {
		fmt.Fprintf(&b, "r%-3d |", k)
		for i := from; i < to; i++ {
			b.WriteByte(colorGlyph(s.Assign[i][k]))
		}
		b.WriteString("|\n")
	}
	// Legend for the colors that actually appear in the window.
	seen := map[Color]bool{}
	var legend []string
	for i := from; i < to; i++ {
		for k := 0; k < s.N; k++ {
			c := s.Assign[i][k]
			if c != NoColor && !seen[c] {
				seen[c] = true
				legend = append(legend, fmt.Sprintf("%c=color %d", colorGlyph(c), c))
			}
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "      %s\n", strings.Join(legend, "  "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// colorGlyph maps a color to a stable printable glyph.
func colorGlyph(c Color) byte {
	if c == NoColor {
		return '.'
	}
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	return alphabet[int(c)%len(alphabet)]
}
