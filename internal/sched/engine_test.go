package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/container"
)

// scripted is a test policy that plays back a fixed assignment per round
// (the last row persists once the script runs out).
type scripted struct {
	rows [][]Color
	n    int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Reset(env Env) {
	s.n = env.N
}
func (s *scripted) Reconfigure(ctx *Context) []Color {
	i := ctx.Round
	if i >= len(s.rows) {
		i = len(s.rows) - 1
	}
	if i < 0 {
		return make([]Color, s.n)
	}
	return s.rows[i]
}

func singleColorInstance(delay, arrivalRound, count int) *Instance {
	inst := &Instance{Delta: 3, Delays: []int{delay}}
	inst.AddJobs(arrivalRound, 0, count)
	return inst
}

// TestPhaseOrderExecutionWindow verifies that a job arriving in round t
// with delay bound d has exactly d execution opportunities (rounds t …
// t+d−1): a resource configured from round t executes it, and a resource
// configured only from round t+d is too late.
func TestPhaseOrderExecutionWindow(t *testing.T) {
	// Configured at the arrival round: job executes, no drops.
	inst := singleColorInstance(2, 1, 1)
	res, err := Run(inst, &scripted{rows: [][]Color{{NoColor}, {0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Dropped != 0 {
		t.Fatalf("executed=%d dropped=%d, want 1/0", res.Executed, res.Dropped)
	}
	if res.Cost.Reconfig != 3 || res.Cost.Drop != 0 {
		t.Fatalf("cost = %v", res.Cost)
	}

	// Configured only at round t+d = 3: the drop phase of round 3 runs
	// before execution, so the job is gone.
	inst = singleColorInstance(2, 1, 1)
	res, err = Run(inst, &scripted{rows: [][]Color{{NoColor}, {NoColor}, {NoColor}, {0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.Dropped != 1 {
		t.Fatalf("late config: executed=%d dropped=%d, want 0/1", res.Executed, res.Dropped)
	}

	// Configured at the last legal round t+d−1 = 2: still in time.
	inst = singleColorInstance(2, 1, 1)
	res, err = Run(inst, &scripted{rows: [][]Color{{NoColor}, {NoColor}, {0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Dropped != 0 {
		t.Fatalf("last-round config: executed=%d dropped=%d, want 1/0", res.Executed, res.Dropped)
	}
}

func TestDelayBoundOneExecutesSameRound(t *testing.T) {
	inst := singleColorInstance(1, 0, 1)
	res, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 || res.Dropped != 0 {
		t.Fatalf("D=1 job not executed in its arrival round: %v", res)
	}
}

func TestReconfigCostPerLocationChange(t *testing.T) {
	inst := &Instance{Delta: 5, Delays: []int{4, 4}}
	inst.AddJobs(0, 0, 8)
	inst.AddJobs(0, 1, 8)
	// Round 0: [0 1]; round 1: [1 0] — both locations change: 4 changes
	// total including the initial configuration.
	rows := [][]Color{{0, 1}, {1, 0}}
	res, err := Run(inst, &scripted{rows: rows}, Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 4 {
		t.Fatalf("Reconfigs = %d, want 4", res.Reconfigs)
	}
	if res.Cost.Reconfig != 20 {
		t.Fatalf("Reconfig cost = %d, want 20", res.Cost.Reconfig)
	}
}

func TestExecutionIsEDFWithinColor(t *testing.T) {
	// Two jobs of the same color with different deadlines; capacity to
	// execute only one before the earlier deadline passes.
	inst := &Instance{Delta: 1, Delays: []int{2}}
	inst.AddJobs(0, 0, 1) // deadline 2
	inst.AddJobs(1, 0, 1) // deadline 3
	// One resource configured only in round 1: it must pick the job with
	// deadline 2, leaving the deadline-3 job for round 2.
	res, err := Run(inst, &scripted{rows: [][]Color{{NoColor}, {0}, {0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Dropped != 0 {
		t.Fatalf("EDF-within-color failed: %v", res)
	}
}

func TestReplicationExecutesTwoJobsPerRound(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{1}}
	inst.AddJobs(0, 0, 2)
	res, err := Run(inst, &scripted{rows: [][]Color{{0, 0}}}, Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Fatalf("two locations with the same color executed %d jobs", res.Executed)
	}
}

func TestDoubleSpeedExecutesTwice(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{1}}
	inst.AddJobs(0, 0, 2)
	res, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1, Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Dropped != 0 {
		t.Fatalf("double speed executed %d, dropped %d", res.Executed, res.Dropped)
	}
}

func TestEngineRejectsBadPolicies(t *testing.T) {
	inst := singleColorInstance(2, 0, 1)
	// Wrong assignment width.
	_, err := Run(inst, &scripted{rows: [][]Color{{0, 0}}}, Options{N: 1})
	if err == nil {
		t.Fatal("wrong-width assignment accepted")
	}
	// Unknown color.
	inst = singleColorInstance(2, 0, 1)
	_, err = Run(inst, &scripted{rows: [][]Color{{7}}}, Options{N: 1})
	if err == nil {
		t.Fatal("unknown color accepted")
	}
	// Bad options.
	inst = singleColorInstance(2, 0, 1)
	if _, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestMaxRoundsChargesRemainingJobs(t *testing.T) {
	inst := singleColorInstance(8, 0, 5)
	res, err := Run(inst, &scripted{rows: [][]Color{{NoColor}}}, Options{N: 1, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 5 {
		t.Fatalf("truncated run dropped %d, want all 5", res.Dropped)
	}
}

func TestEngineStopsWhenDrained(t *testing.T) {
	inst := singleColorInstance(4, 0, 1)
	res, err := Run(inst, &scripted{rows: [][]Color{{0}}}, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One round suffices: arrival and execution in round 0.
	if res.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", res.Rounds)
	}
}

// observer counts engine callbacks.
type observer struct {
	scripted
	drops, execs int
}

func (o *observer) OnDrop(round int, c Color, count int)   { o.drops += count }
func (o *observer) OnExec(round, mini int, c Color, n int) { o.execs += n }

func TestObserversInvoked(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: []int{2}}
	inst.AddJobs(0, 0, 3)
	o := &observer{scripted: scripted{rows: [][]Color{{0}}}}
	res, err := Run(inst, o, Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.execs != res.Executed || o.drops != res.Dropped {
		t.Fatalf("observer saw %d/%d, result %d/%d", o.execs, o.drops, res.Executed, res.Dropped)
	}
	if o.execs != 2 || o.drops != 1 {
		t.Fatalf("execs=%d drops=%d, want 2/1", o.execs, o.drops)
	}
}

// randomInstance builds a small random instance from a seed for property
// tests shared across this package.
func randomInstance(seed uint64, colors, rounds, maxCount int) *Instance {
	rng := container.NewRNG(seed)
	delays := []int{1, 2, 4, 8}
	inst := &Instance{Delta: 1 + rng.Intn(4), Delays: make([]int, colors)}
	for c := range inst.Delays {
		inst.Delays[c] = delays[rng.Intn(len(delays))]
	}
	for r := 0; r < rounds; r++ {
		for c := 0; c < colors; c++ {
			if rng.Bool(0.3) {
				inst.AddJobs(r, Color(c), 1+rng.Intn(maxCount))
			}
		}
	}
	return inst.Normalize()
}

// randomScript builds a random assignment script over the instance's
// colors.
func randomScript(seed uint64, inst *Instance, n, rounds int) *scripted {
	rng := container.NewRNG(seed)
	rows := make([][]Color, rounds)
	for r := range rows {
		row := make([]Color, n)
		for k := range row {
			if rng.Bool(0.2) {
				row[k] = NoColor
			} else {
				row[k] = Color(rng.Intn(inst.NumColors()))
			}
		}
		rows[r] = row
	}
	return &scripted{rows: rows}
}

// Property: executed + dropped == total jobs for arbitrary instances and
// arbitrary scripted policies (job conservation).
func TestJobConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := randomInstance(seed, 3, 12, 3)
		pol := randomScript(seed+1, inst, 2, inst.Horizon())
		res, err := Run(inst, pol, Options{N: 2})
		if err != nil {
			return false
		}
		return res.Executed+res.Dropped == inst.TotalJobs() &&
			res.Cost.Drop == int64(res.Dropped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-color break-downs sum to the totals.
func TestPerColorBreakdownProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := randomInstance(seed, 4, 10, 3)
		pol := randomScript(seed+2, inst, 3, inst.Horizon())
		res, err := Run(inst, pol, Options{N: 3})
		if err != nil {
			return false
		}
		exec, drop := 0, 0
		for c := range inst.Delays {
			exec += res.ExecByColor[c]
			drop += res.DropsByColor[c]
		}
		return exec == res.Executed && drop == res.Dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxRoundsAttributesForcedDropsPerColor: jobs still pending when
// MaxRounds truncates a run are charged as drops WITH their per-color
// attribution, so DropsByColor keeps summing to Dropped (this used to
// diverge: the totals were charged but the breakdown was not).
func TestMaxRoundsAttributesForcedDropsPerColor(t *testing.T) {
	inst := &Instance{Delta: 2, Delays: []int{8, 8}}
	inst.AddJobs(0, 0, 3)
	inst.AddJobs(1, 1, 2)
	res, err := Run(inst, &scripted{rows: [][]Color{{NoColor}}}, Options{N: 1, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 5 || res.Cost.Drop != 5 {
		t.Fatalf("dropped %d (cost %d), want 5", res.Dropped, res.Cost.Drop)
	}
	if res.DropsByColor[0] != 3 || res.DropsByColor[1] != 2 {
		t.Fatalf("DropsByColor = %v, want [3 2]", res.DropsByColor)
	}
}

// TestRejectedAssignmentLeavesResultUntouched: validation of the full
// assignment happens before any reconfiguration is charged, so a policy
// error cannot leave a half-charged Result behind (this used to diverge:
// Run charged reconfigurations before validating the color).
func TestRejectedAssignmentLeavesResultUntouched(t *testing.T) {
	// Location 0 changes to a valid color, location 1 to an unknown one.
	pol := &scripted{rows: [][]Color{{0, 7}}}
	st, err := NewStream(pol, StreamConfig{N: 2, Delta: 3, Delays: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(Request{{Color: 0, Count: 1}}); err == nil {
		t.Fatal("unknown color accepted")
	}
	if st.Cost() != (Cost{}) {
		t.Fatalf("rejected assignment charged cost %v", st.Cost())
	}
	if res := st.Result(); res.Reconfigs != 0 {
		t.Fatalf("rejected assignment charged %d reconfigs", res.Reconfigs)
	}
}

// TestStreamNormalizesArrivals: duplicate-color and unsorted batches are
// merged and sorted before the policy and pool see them, exactly as Run's
// Instance.Normalize would (this used to diverge: Stream only copied).
func TestStreamNormalizesArrivals(t *testing.T) {
	pol := &arrivalRecorder{}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Delays: []int{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	raw := Request{{Color: 2, Count: 1}, {Color: 0, Count: 2}, {Color: 2, Count: 3}}
	if _, err := st.Step(raw); err != nil {
		t.Fatal(err)
	}
	seen := pol.seen
	want := Request{{Color: 0, Count: 2}, {Color: 2, Count: 4}}
	if len(seen) != 1 || len(seen[0]) != len(want) {
		t.Fatalf("policy saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[0][i] != want[i] {
			t.Fatalf("policy saw %v, want %v", seen[0], want)
		}
	}
	// The caller's slice must not be mutated by normalization.
	if raw[0] != (Batch{Color: 2, Count: 1}) || raw[1] != (Batch{Color: 0, Count: 2}) {
		t.Fatalf("Step mutated the caller's request: %v", raw)
	}
	// Pool state reflects the merged batch.
	if st.Pending(2) != 4 || st.Pending(0) != 1 { // one color-0 job executed
		t.Fatalf("pending = [%d _ %d], want [1 _ 4]", st.Pending(0), st.Pending(2))
	}
}

// arrivalRecorder records the normalized ctx.Arrivals it is shown.
type arrivalRecorder struct {
	n    int
	seen []Request
}

func (p *arrivalRecorder) Name() string  { return "arrival-recorder" }
func (p *arrivalRecorder) Reset(env Env) { p.n = env.N }
func (p *arrivalRecorder) Reconfigure(ctx *Context) []Color {
	cp := append(Request(nil), ctx.Arrivals...)
	p.seen = append(p.seen, cp)
	row := make([]Color, p.n)
	for k := range row {
		row[k] = 0
	}
	return row
}
