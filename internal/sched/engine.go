package sched

import "fmt"

// Options configures a simulation run.
type Options struct {
	// N is the number of resources given to the policy. Must be ≥ 1.
	N int
	// Speed is the number of (reconfiguration, execution) mini-rounds per
	// round. 0 or 1 means uni-speed; DS-Seq-EDF runs at 2 (§3.3).
	Speed int
	// Record captures the produced schedule in Result.Schedule so it can
	// be validated or transformed (used by the reductions of §4–§5).
	Record bool
	// MaxRounds caps the simulation as a safety net; 0 means the instance
	// horizon (NumRounds + MaxDelay), which always suffices. Jobs still
	// pending at the cap are charged as drops, attributed per color.
	MaxRounds int
	// Probe, when non-nil, receives one RoundEvent per simulated round
	// (see Probe). Leaving it nil costs nothing.
	Probe Probe
}

// Run simulates policy pol on instance inst and returns the cost and
// statistics. The instance is normalized in place (batches sorted and
// merged per round), which is idempotent and does not change its meaning.
//
// Run and Stream.Step drive the same roundEngine, so a recorded instance
// fed through either front-end produces the identical Result; the
// equivalence is additionally pinned by a randomized differential test.
func Run(inst *Instance, pol Policy, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("sched: Run needs N ≥ 1, got %d", opts.N)
	}
	speed := opts.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 1 {
		return nil, fmt.Errorf("sched: Run needs Speed ≥ 1, got %d", opts.Speed)
	}
	inst.Normalize()

	env := Env{N: opts.N, Speed: speed, Delta: inst.Delta, Delays: inst.Delays}
	e := newRoundEngine(pol, env, opts.Probe)
	if opts.Record {
		e.sched = &Schedule{Policy: pol.Name(), N: opts.N, Speed: speed}
	}

	horizon := inst.Horizon()
	if opts.MaxRounds > 0 && opts.MaxRounds < horizon {
		horizon = opts.MaxRounds
	}
	for r := 0; r < horizon; r++ {
		if r >= inst.NumRounds() && e.pool.totalPending() == 0 {
			break
		}
		var req Request
		if r < inst.NumRounds() {
			req = inst.Requests[r]
		}
		if err := e.step(req, nil); err != nil {
			return nil, err
		}
	}

	// Anything still pending at the horizon would be dropped in later
	// rounds; the horizon covers NumRounds+MaxDelay so this only triggers
	// when MaxRounds cut the run short. Charge those drops — with their
	// per-color attribution, so the breakdown keeps summing to the total —
	// for honesty.
	e.dropPending()

	res := e.res
	res.Schedule = e.sched
	return &res, nil
}
