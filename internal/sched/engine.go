package sched

import "fmt"

// Options configures a simulation run.
type Options struct {
	// N is the number of resources given to the policy. Must be ≥ 1.
	N int
	// Speed is the number of (reconfiguration, execution) mini-rounds per
	// round. 0 or 1 means uni-speed; DS-Seq-EDF runs at 2 (§3.3).
	Speed int
	// Record captures the produced schedule in Result.Schedule so it can
	// be validated or transformed (used by the reductions of §4–§5).
	Record bool
	// MaxRounds caps the simulation as a safety net; 0 means the instance
	// horizon (NumRounds + MaxDelay), which always suffices.
	MaxRounds int
}

// Run simulates policy pol on instance inst and returns the cost and
// statistics. The instance is normalized in place (batches sorted and
// merged per round), which is idempotent and does not change its meaning.
func Run(inst *Instance, pol Policy, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("sched: Run needs N ≥ 1, got %d", opts.N)
	}
	speed := opts.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 1 {
		return nil, fmt.Errorf("sched: Run needs Speed ≥ 1, got %d", opts.Speed)
	}
	inst.Normalize()

	env := Env{N: opts.N, Speed: speed, Delta: inst.Delta, Delays: inst.Delays}
	pol.Reset(env)

	horizon := inst.Horizon()
	if opts.MaxRounds > 0 && opts.MaxRounds < horizon {
		horizon = opts.MaxRounds
	}

	pool := newJobPool(inst.NumColors())
	res := &Result{
		Policy:       pol.Name(),
		DropsByColor: make([]int, inst.NumColors()),
		ExecByColor:  make([]int, inst.NumColors()),
	}
	var sched *Schedule
	if opts.Record {
		sched = &Schedule{Policy: pol.Name(), N: opts.N, Speed: speed}
	}

	dropObs, _ := pol.(DropObserver)
	execObs, _ := pol.(ExecObserver)

	cur := make([]Color, opts.N)
	for i := range cur {
		cur[i] = NoColor
	}
	ctx := &Context{env: env, pool: pool}

	for r := 0; r < horizon; r++ {
		if r >= inst.NumRounds() && pool.totalPending() == 0 {
			break
		}
		res.Rounds = r + 1

		// Phase 1: drop.
		dropped := pool.expire(r, func(c Color, n int) {
			res.DropsByColor[c] += n
			if dropObs != nil {
				dropObs.OnDrop(r, c, n)
			}
		})
		res.Dropped += dropped
		res.Cost.Drop += int64(dropped)

		// Phase 2: arrival.
		var req Request
		if r < inst.NumRounds() {
			req = inst.Requests[r]
			for _, b := range req {
				pool.add(b.Color, r+inst.Delays[b.Color], b.Count)
			}
		}

		// Phases 3+4, repeated per mini-round.
		ctx.Round = r
		ctx.Arrivals = req
		for mini := 0; mini < speed; mini++ {
			ctx.Mini = mini
			assign := pol.Reconfigure(ctx)
			if len(assign) != opts.N {
				return nil, fmt.Errorf("sched: policy %s returned assignment of length %d, want %d",
					pol.Name(), len(assign), opts.N)
			}
			for k := 0; k < opts.N; k++ {
				if assign[k] != cur[k] {
					res.Reconfigs++
					res.Cost.Reconfig += int64(inst.Delta)
					cur[k] = assign[k]
				}
				if c := cur[k]; c != NoColor && (c < 0 || int(c) >= inst.NumColors()) {
					return nil, fmt.Errorf("sched: policy %s assigned unknown color %d", pol.Name(), c)
				}
			}
			if sched != nil {
				sched.Assign = append(sched.Assign, append([]Color(nil), cur...))
			}
			// Phase 4: execution. Locations are served in index order,
			// which matters when two locations share a color with a single
			// pending job; the validator replays the same order.
			for k := 0; k < opts.N; k++ {
				c := cur[k]
				if c == NoColor {
					continue
				}
				if _, ok := pool.take(c); ok {
					res.Executed++
					res.ExecByColor[c]++
					if execObs != nil {
						execObs.OnExec(r, mini, c, 1)
					}
				}
			}
		}
	}

	// Anything still pending at the horizon would be dropped in later
	// rounds; the horizon covers NumRounds+MaxDelay so this only triggers
	// when MaxRounds cut the run short. Charge those drops for honesty.
	if left := pool.totalPending(); left > 0 {
		res.Dropped += left
		res.Cost.Drop += int64(left)
	}

	res.Schedule = sched
	return res, nil
}
