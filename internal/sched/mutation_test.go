package sched

import (
	"testing"

	"repro/internal/container"
)

// TestReplayRejectsMutatedExecSchedules is a failure-injection test: a
// valid explicit-exec schedule is corrupted in targeted ways and the
// validator must reject (or at least never mis-account) every mutant.
func TestReplayRejectsMutatedExecSchedules(t *testing.T) {
	// Build a valid explicit schedule by recording a run and deriving the
	// exec log.
	inst := randomInstance(77, 3, 12, 3)
	pol := randomScript(78, inst, 2, inst.Horizon())
	rec, err := Run(inst.Clone(), pol, Options{N: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	base := rec.Schedule
	_, execLog, err := ReplayExec(inst.Clone(), base)
	if err != nil {
		t.Fatal(err)
	}
	valid := base.Clone()
	// Trim or pad the exec log to the assign length.
	valid.Exec = make([][]Color, len(valid.Assign))
	for i := range valid.Exec {
		if i < len(execLog) {
			valid.Exec[i] = append([]Color(nil), execLog[i]...)
		} else {
			valid.Exec[i] = []Color{NoColor, NoColor}
		}
	}
	if _, err := Replay(inst.Clone(), valid); err != nil {
		t.Fatalf("baseline explicit schedule invalid: %v", err)
	}

	// Mutation 1: execute on a location configured with another color.
	findExec := func(s *Schedule) (int, int) {
		for i, row := range s.Exec {
			for k, c := range row {
				if c != NoColor {
					return i, k
				}
			}
		}
		return -1, -1
	}
	m1 := valid.Clone()
	if i, k := findExec(m1); i >= 0 {
		m1.Assign[i][k] = Color((int(m1.Assign[i][k]) + 1) % inst.NumColors())
		// Make sure the assign row change actually diverges from exec.
		if m1.Assign[i][k] == m1.Exec[i][k] {
			m1.Assign[i][k] = NoColor
		}
		if _, err := Replay(inst.Clone(), m1); err == nil {
			t.Fatal("mutant 1 (exec/config mismatch) accepted")
		}
	}

	// Mutation 2: duplicate executions beyond the pending supply —
	// execute the same color in every slot of every round.
	m2 := valid.Clone()
	busiest := Color(0)
	for i := range m2.Exec {
		for k := range m2.Exec[i] {
			m2.Exec[i][k] = busiest
			m2.Assign[i][k] = busiest
		}
	}
	if _, err := Replay(inst.Clone(), m2); err == nil {
		t.Fatal("mutant 2 (over-execution) accepted")
	}

	// Mutation 3: random exec perturbations either fail or conserve jobs.
	rng := container.NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		m := valid.Clone()
		i := rng.Intn(len(m.Exec))
		k := rng.Intn(m.N)
		m.Exec[i][k] = Color(rng.Intn(inst.NumColors()))
		res, err := Replay(inst.Clone(), m)
		if err != nil {
			continue // rejected: fine
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			t.Fatalf("trial %d: accepted mutant broke conservation", trial)
		}
	}
}

// TestReplayRejectsNegativeWidthAndColors injects structurally broken
// schedules.
func TestReplayRejectsStructurallyBroken(t *testing.T) {
	inst := randomInstance(5, 2, 6, 2)
	cases := []*Schedule{
		{N: 2, Speed: 1, Assign: [][]Color{{0}}},     // short row
		{N: 2, Speed: 1, Assign: [][]Color{{0, 99}}}, // unknown color
		{N: 2, Speed: 1, Assign: [][]Color{{0, -7}}}, // negative color ≠ NoColor
		{N: -1, Speed: 1, Assign: [][]Color{{0}}},    // bad N
	}
	for i, s := range cases {
		if _, err := Replay(inst.Clone(), s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
