package sched

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestStreamValidation(t *testing.T) {
	pol := &scripted{rows: [][]Color{{0}}}
	if _, err := NewStream(pol, StreamConfig{N: 0, Delta: 1, Delays: []int{1}}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewStream(pol, StreamConfig{N: 1, Delta: 0, Delays: []int{1}}); err == nil {
		t.Fatal("Delta=0 accepted")
	}
	if _, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Delays: []int{0}}); err == nil {
		t.Fatal("zero delay accepted")
	}
	if _, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Speed: -1, Delays: []int{1}}); err == nil {
		t.Fatal("negative speed accepted")
	}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Delays: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(Request{{Color: 5, Count: 1}}); err == nil {
		t.Fatal("unknown color accepted")
	}
	if _, err := st.Step(Request{{Color: 0, Count: 0}}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestStreamStepReporting(t *testing.T) {
	pol := &scripted{rows: [][]Color{{0}}}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 3, Delays: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: 2 jobs arrive, 1 executed, 1 reconfig.
	out, err := st.Step(Request{{Color: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 0 || out.Reconfigs != 1 {
		t.Fatalf("round 0: %+v", out)
	}
	if len(out.Executed) != 1 || out.Executed[0] != (Batch{Color: 0, Count: 1}) {
		t.Fatalf("round 0 executed: %v", out.Executed)
	}
	if st.Pending(0) != 1 || st.TotalPending() != 1 {
		t.Fatalf("pending = %d", st.Pending(0))
	}
	// Round 1: second job executed.
	out, err = st.Step(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Executed) != 1 || out.Reconfigs != 0 {
		t.Fatalf("round 1: %+v", out)
	}
	if st.Cost() != (Cost{Reconfig: 3, Drop: 0}) {
		t.Fatalf("cost = %v", st.Cost())
	}
	if st.Executed() != 2 || st.Dropped() != 0 || st.Round() != 2 {
		t.Fatalf("totals: exec=%d drop=%d round=%d", st.Executed(), st.Dropped(), st.Round())
	}
}

func TestStreamReportsDrops(t *testing.T) {
	pol := &scripted{rows: [][]Color{{NoColor}}}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Delays: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(Request{{Color: 0, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	out, err := st.Step(nil) // round 1: deadline 1 reached
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Dropped) != 1 || out.Dropped[0] != (Batch{Color: 0, Count: 3}) {
		t.Fatalf("drops: %v", out.Dropped)
	}
	if st.Cost().Drop != 3 {
		t.Fatalf("drop cost %d", st.Cost().Drop)
	}
}

func TestStreamDrain(t *testing.T) {
	pol := &scripted{rows: [][]Color{{0}}}
	st, err := NewStream(pol, StreamConfig{N: 1, Delta: 1, Delays: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(Request{{Color: 0, Count: 4}}); err != nil {
		t.Fatal(err)
	}
	rounds, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalPending() != 0 {
		t.Fatal("Drain left pending jobs")
	}
	if rounds != 3 { // 1 executed in round 0, 3 more rounds for the rest
		t.Fatalf("Drain took %d rounds, want 3", rounds)
	}
}

// TestStreamMatchesRunProperty: feeding an instance through a Stream
// round by round yields exactly the same result as the batch engine.
func TestStreamMatchesRunProperty(t *testing.T) {
	f := func(seed uint64) bool {
		inst := randomInstance(seed, 4, 16, 3)
		polA := randomScript(seed+3, inst, 3, inst.Horizon())
		polB := randomScript(seed+3, inst, 3, inst.Horizon())

		want, err := Run(inst.Clone(), polA, Options{N: 3})
		if err != nil {
			return false
		}
		st, err := NewStream(polB, StreamConfig{N: 3, Delta: inst.Delta, Delays: inst.Delays})
		if err != nil {
			return false
		}
		for r := 0; r < inst.NumRounds(); r++ {
			if _, err := st.Step(inst.Requests[r]); err != nil {
				return false
			}
		}
		if _, err := st.Drain(); err != nil {
			return false
		}
		got := st.Result()
		return got.Cost == want.Cost && got.Executed == want.Executed && got.Dropped == want.Dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestStepResultClone pins the retention contract: a raw StepResult
// aliases buffers the Stream overwrites on the next Step, while a Clone
// is a stable deep copy. The first half of the test is the footgun the
// StepResult doc warns about; the second half is the cure.
func TestStepResultClone(t *testing.T) {
	rows := make([][]Color, 16)
	for i := range rows {
		rows[i] = []Color{0, 1}
	}
	st, err := NewStream(&scripted{rows: rows}, StreamConfig{N: 2, Delta: 2, Delays: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// A round with arrivals on both colors, so Executed is non-empty.
	raw, err := st.Step(Request{{Color: 0, Count: 1}, {Color: 1, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	clone := raw.Clone()
	if !reflect.DeepEqual(raw, clone) {
		t.Fatalf("clone diverged immediately: raw %+v clone %+v", raw, clone)
	}
	if len(clone.Executed) > 0 && &clone.Executed[0] == &raw.Executed[0] {
		t.Fatal("Clone shares the Executed backing array")
	}
	if len(clone.Assignment) > 0 && &clone.Assignment[0] == &raw.Assignment[0] {
		t.Fatal("Clone shares the Assignment backing array")
	}
	savedRound, savedExec := clone.Round, append([]Batch(nil), clone.Executed...)

	// Drive more rounds; the raw result is now stale storage, the clone
	// must be untouched.
	for i := 0; i < 8; i++ {
		if _, err := st.Step(Request{{Color: 1, Count: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if clone.Round != savedRound || !reflect.DeepEqual(clone.Executed, savedExec) {
		t.Fatalf("clone mutated by later Steps: %+v", clone)
	}
}
