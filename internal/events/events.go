// Package events provides a continuous-time front-end to the round-based
// model: arrival processes (Poisson, on/off-modulated, explicit traces)
// emit timestamped job events, which Discretize buckets into the slotted
// rounds the paper's model — and the simulator — operate on. This mirrors
// how the motivating systems work: packets hit a router in continuous
// time, while the processor reconfigures and executes in discrete slots.
package events

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/container"
	"repro/internal/sched"
)

// Event is one unit-job arrival at a continuous timestamp.
type Event struct {
	Time  float64
	Color sched.Color
}

// Source produces events in nondecreasing time order. Next reports false
// when the source is exhausted.
type Source interface {
	Next() (Event, bool)
}

// PoissonSource emits events of one color with exponential interarrival
// times (rate events per unit time) until the horizon.
type PoissonSource struct {
	rng     *container.RNG
	color   sched.Color
	rate    float64
	now     float64
	horizon float64
}

// NewPoissonSource builds a Poisson arrival process for color with the
// given rate over [0, horizon).
func NewPoissonSource(seed uint64, color sched.Color, rate, horizon float64) *PoissonSource {
	if rate <= 0 || horizon <= 0 {
		panic("events: NewPoissonSource needs positive rate and horizon")
	}
	return &PoissonSource{
		rng:     container.NewRNG(seed),
		color:   color,
		rate:    rate,
		horizon: horizon,
	}
}

// Next implements Source.
func (p *PoissonSource) Next() (Event, bool) {
	p.now += p.exp(p.rate)
	if p.now >= p.horizon {
		return Event{}, false
	}
	return Event{Time: p.now, Color: p.color}, true
}

func (p *PoissonSource) exp(rate float64) float64 {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	return -math.Log(u) / rate
}

// OnOffSource is a Markov-modulated Poisson process: it alternates
// exponentially-distributed on-periods (emitting at rate) and off-periods
// (silent), the continuous-time analogue of workload.BurstSpec.
type OnOffSource struct {
	rng      *container.RNG
	color    sched.Color
	rate     float64
	onMean   float64
	offMean  float64
	now      float64
	phaseEnd float64
	on       bool
	horizon  float64
}

// NewOnOffSource builds an on/off-modulated source for color: on-periods
// of mean onMean, off-periods of mean offMean, emission rate while on.
func NewOnOffSource(seed uint64, color sched.Color, rate, onMean, offMean, horizon float64) *OnOffSource {
	if rate <= 0 || onMean <= 0 || offMean <= 0 || horizon <= 0 {
		panic("events: NewOnOffSource needs positive parameters")
	}
	s := &OnOffSource{
		rng:     container.NewRNG(seed),
		color:   color,
		rate:    rate,
		onMean:  onMean,
		offMean: offMean,
		on:      true,
		horizon: horizon,
	}
	s.phaseEnd = s.exp(1 / onMean)
	return s
}

func (s *OnOffSource) exp(rate float64) float64 {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return -math.Log(u) / rate
}

// Next implements Source.
func (s *OnOffSource) Next() (Event, bool) {
	for {
		if !s.on {
			// Skip the whole off phase.
			s.now = s.phaseEnd
			s.on = true
			s.phaseEnd = s.now + s.exp(1/s.onMean)
		}
		if s.now >= s.horizon {
			return Event{}, false
		}
		gap := s.exp(s.rate)
		if s.now+gap < s.phaseEnd {
			s.now += gap
			if s.now >= s.horizon {
				return Event{}, false
			}
			return Event{Time: s.now, Color: s.color}, true
		}
		// The on phase ends before the next arrival; switch off.
		s.now = s.phaseEnd
		s.on = false
		s.phaseEnd = s.now + s.exp(1/s.offMean)
		if s.now >= s.horizon {
			return Event{}, false
		}
	}
}

// SliceSource replays an explicit event list (sorted by time).
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource wraps a pre-built event list; it sorts a copy by time.
func NewSliceSource(events []Event) *SliceSource {
	cp := append([]Event(nil), events...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Time < cp[j].Time })
	return &SliceSource{events: cp}
}

// Next implements Source.
func (s *SliceSource) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// Merge combines sources into one time-ordered stream with a k-way heap
// merge.
func Merge(sources ...Source) Source {
	m := &merger{}
	for i, s := range sources {
		if ev, ok := s.Next(); ok {
			m.items = append(m.items, mergeItem{ev: ev, src: s, idx: i})
		}
	}
	heap.Init(m)
	return m
}

type mergeItem struct {
	ev  Event
	src Source
	idx int
}

type merger struct{ items []mergeItem }

func (m *merger) Len() int { return len(m.items) }
func (m *merger) Less(i, j int) bool {
	if m.items[i].ev.Time != m.items[j].ev.Time {
		return m.items[i].ev.Time < m.items[j].ev.Time
	}
	return m.items[i].idx < m.items[j].idx // deterministic tie-break
}
func (m *merger) Swap(i, j int) { m.items[i], m.items[j] = m.items[j], m.items[i] }
func (m *merger) Push(x any)    { m.items = append(m.items, x.(mergeItem)) }
func (m *merger) Pop() any {
	n := len(m.items)
	it := m.items[n-1]
	m.items = m.items[:n-1]
	return it
}

// Next implements Source.
func (m *merger) Next() (Event, bool) {
	if len(m.items) == 0 {
		return Event{}, false
	}
	top := m.items[0]
	if ev, ok := top.src.Next(); ok {
		m.items[0].ev = ev
		heap.Fix(m, 0)
	} else {
		heap.Pop(m)
	}
	return top.ev, true
}

// Collect drains a source into a slice (bounded by maxEvents as a safety
// net; 0 means 10 million).
func Collect(src Source, maxEvents int) ([]Event, error) {
	if maxEvents <= 0 {
		maxEvents = 10_000_000
	}
	var out []Event
	for {
		ev, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, ev)
		if len(out) > maxEvents {
			return nil, fmt.Errorf("events: Collect exceeded %d events", maxEvents)
		}
	}
}

// Discretize buckets timestamped events into rounds of the given duration
// and produces a model instance with the given Δ and per-color delay
// bounds. Event k with time t lands in round ⌊t/roundDuration⌋. Events
// must be time-ordered (Merge and the sources guarantee this).
func Discretize(evs []Event, roundDuration float64, delta int, delays []int) (*sched.Instance, error) {
	if roundDuration <= 0 {
		return nil, fmt.Errorf("events: Discretize needs a positive round duration")
	}
	inst := &sched.Instance{
		Name:   fmt.Sprintf("discretized(dt=%g)", roundDuration),
		Delta:  delta,
		Delays: delays,
	}
	prev := math.Inf(-1)
	for _, ev := range evs {
		if ev.Time < prev {
			return nil, fmt.Errorf("events: Discretize needs time-ordered events (%g after %g)", ev.Time, prev)
		}
		prev = ev.Time
		if ev.Color < 0 || int(ev.Color) >= len(delays) {
			return nil, fmt.Errorf("events: Discretize: unknown color %d", ev.Color)
		}
		round := int(ev.Time / roundDuration)
		if round < 0 {
			return nil, fmt.Errorf("events: Discretize: negative time %g", ev.Time)
		}
		inst.AddJobs(round, ev.Color, 1)
	}
	inst.Normalize()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}
