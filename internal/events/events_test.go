package events

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestPoissonSourceRate(t *testing.T) {
	src := NewPoissonSource(1, 0, 2.0, 10_000)
	evs, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(evs)) / 10_000
	if math.Abs(got-2.0) > 0.1 {
		t.Fatalf("Poisson(2.0) produced rate %v", got)
	}
	// Time-ordered and within horizon.
	prev := 0.0
	for _, e := range evs {
		if e.Time < prev || e.Time >= 10_000 {
			t.Fatalf("event out of order or range: %v after %v", e.Time, prev)
		}
		prev = e.Time
	}
}

func TestPoissonSourceDeterministic(t *testing.T) {
	a, _ := Collect(NewPoissonSource(7, 0, 1, 100), 0)
	b, _ := Collect(NewPoissonSource(7, 0, 1, 100), 0)
	if len(a) != len(b) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestOnOffSourceBursts(t *testing.T) {
	// Rate 10 while on, on-mean 10, off-mean 90: long-run rate ≈ 1.
	src := NewOnOffSource(3, 1, 10, 10, 90, 20_000)
	evs, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(evs)) / 20_000
	if got < 0.6 || got > 1.6 {
		t.Fatalf("on/off long-run rate %v, want ≈ 1", got)
	}
	// There must be long silent stretches (off periods).
	maxGap := 0.0
	for i := 1; i < len(evs); i++ {
		if g := evs[i].Time - evs[i-1].Time; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 30 {
		t.Fatalf("no off-period visible: max gap %v", maxGap)
	}
	// Ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events out of order")
		}
	}
}

func TestMergeInterleavesInTimeOrder(t *testing.T) {
	a := NewSliceSource([]Event{{1, 0}, {4, 0}, {9, 0}})
	b := NewSliceSource([]Event{{2, 1}, {3, 1}, {10, 1}})
	merged, err := Collect(Merge(a, b), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []float64{1, 2, 3, 4, 9, 10}
	if len(merged) != len(wantTimes) {
		t.Fatalf("merged %d events", len(merged))
	}
	for i, w := range wantTimes {
		if merged[i].Time != w {
			t.Fatalf("merged[%d].Time = %v, want %v", i, merged[i].Time, w)
		}
	}
}

func TestMergeTieBreakDeterministic(t *testing.T) {
	a := NewSliceSource([]Event{{5, 0}})
	b := NewSliceSource([]Event{{5, 1}})
	m1, _ := Collect(Merge(a, b), 0)
	a2 := NewSliceSource([]Event{{5, 0}})
	b2 := NewSliceSource([]Event{{5, 1}})
	m2, _ := Collect(Merge(a2, b2), 0)
	if m1[0] != m2[0] || m1[1] != m2[1] {
		t.Fatal("tie-break not deterministic")
	}
	if m1[0].Color != 0 {
		t.Fatalf("tie should favor the earlier source, got color %d first", m1[0].Color)
	}
}

func TestSliceSourceSortsInput(t *testing.T) {
	src := NewSliceSource([]Event{{3, 0}, {1, 0}, {2, 0}})
	evs, _ := Collect(src, 0)
	if evs[0].Time != 1 || evs[1].Time != 2 || evs[2].Time != 3 {
		t.Fatalf("SliceSource did not sort: %v", evs)
	}
}

func TestDiscretize(t *testing.T) {
	evs := []Event{{0.1, 0}, {0.9, 0}, {1.0, 1}, {2.49, 0}, {2.51, 1}}
	inst, err := Discretize(evs, 1.0, 3, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if inst.TotalJobs() != 5 {
		t.Fatalf("TotalJobs = %d", inst.TotalJobs())
	}
	// Round 0: two color-0 jobs; round 1: one color-1; round 2: one each.
	if inst.Requests[0].Jobs() != 2 || inst.Requests[1].Jobs() != 1 || inst.Requests[2].Jobs() != 2 {
		t.Fatalf("bucketing wrong: %v", inst.Requests)
	}
	// Finer rounds spread the same events over more rounds.
	fine, err := Discretize(evs, 0.5, 3, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumRounds() <= inst.NumRounds() {
		t.Fatalf("finer discretization has %d rounds vs %d", fine.NumRounds(), inst.NumRounds())
	}
}

func TestDiscretizeRejectsBadInput(t *testing.T) {
	if _, err := Discretize([]Event{{1, 0}}, 0, 1, []int{1}); err == nil {
		t.Fatal("zero round duration accepted")
	}
	if _, err := Discretize([]Event{{2, 0}, {1, 0}}, 1, 1, []int{1}); err == nil {
		t.Fatal("unordered events accepted")
	}
	if _, err := Discretize([]Event{{1, 7}}, 1, 1, []int{1}); err == nil {
		t.Fatal("unknown color accepted")
	}
	if _, err := Discretize([]Event{{-1, 0}}, 1, 1, []int{1}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestCollectBound(t *testing.T) {
	src := NewPoissonSource(1, 0, 100, 1000)
	if _, err := Collect(src, 10); err == nil {
		t.Fatal("Collect bound not enforced")
	}
}

// Property: discretization preserves the event count and produces a valid
// instance for arbitrary event streams.
func TestDiscretizePreservesCountProperty(t *testing.T) {
	f := func(seed uint64, rateQ uint8) bool {
		rate := 0.5 + float64(rateQ%40)/10
		src := Merge(
			NewPoissonSource(seed, 0, rate, 200),
			NewOnOffSource(seed+1, 1, rate*4, 10, 40, 200),
		)
		evs, err := Collect(src, 0)
		if err != nil {
			return false
		}
		inst, err := Discretize(evs, 1.0, 2, []int{4, 16})
		if err != nil {
			return false
		}
		return inst.TotalJobs() == len(evs) && inst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndWithEngine wires a discretized continuous workload into the
// simulator to confirm the front-end composes with the rest of the stack.
func TestEndToEndWithEngine(t *testing.T) {
	src := Merge(
		NewPoissonSource(11, 0, 1.5, 500),
		NewPoissonSource(12, 1, 0.7, 500),
		NewOnOffSource(13, 2, 6, 20, 80, 500),
	)
	evs, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Discretize(evs, 1.0, 4, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(inst, &nullPolicy{}, sched.Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != len(evs) {
		t.Fatalf("conservation: %d + %d != %d", res.Executed, res.Dropped, len(evs))
	}
}

type nullPolicy struct{ assign []sched.Color }

func (p *nullPolicy) Name() string { return "null" }
func (p *nullPolicy) Reset(env sched.Env) {
	p.assign = make([]sched.Color, env.N)
	for i := range p.assign {
		p.assign[i] = 0
	}
}
func (p *nullPolicy) Reconfigure(*sched.Context) []sched.Color { return p.assign }
