package serve

import (
	"errors"
	"fmt"
)

// Wire error codes. The client maps them back to the exported error
// values below, so embedders never see raw codes.
const (
	codeInternal = iota
	codeOverloaded
	codeBadSeq
	codeUnknownTenant
	codeTenantExists
	codeDraining
	codeInvalidArrival
	codeBadRequest
	codeBadPolicy
	codeBadVersion
	codeAdmission
)

// Sentinel errors a Client surfaces for the server's admission-control
// and lifecycle rejections. Test with errors.Is.
var (
	// ErrOverloaded reports that the tenant's pending-queue cap was hit:
	// the round tick was shed, not buffered. Back off and resubmit the
	// same sequence number.
	ErrOverloaded = errors.New("serve: tenant queue full, round tick shed")
	// ErrDraining reports that the server is shutting down gracefully and
	// no longer admits work. Reconnect and resume once it is back.
	ErrDraining = errors.New("serve: server is draining, not admitting work")
	// ErrUnknownTenant reports a command for a tenant the server does not
	// host (never opened, or closed).
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrTenantExists reports an open whose configuration conflicts with
	// the live tenant of the same ID.
	ErrTenantExists = errors.New("serve: tenant exists with a different configuration")
)

// BadSeqError reports a Submit whose sequence number does not equal the
// tenant's next expected round sequence. Expected is the resume point:
// sequences below it were already admitted (a duplicate after a lost
// acknowledgement); submitting Expected continues the stream. Test with
// errors.As.
type BadSeqError struct {
	Got      int
	Expected int
}

// Error formats the mismatch with both the got and expected sequences.
func (e *BadSeqError) Error() string {
	return fmt.Sprintf("serve: bad round sequence %d, expected %d", e.Got, e.Expected)
}

// AdmissionError reports an open or restore whose BDR reservation
// failed the shard's supply-bound-function feasibility check
// (docs/SCHEDULING.md "Admission"). The tenant was rejected before any
// state was created — nothing was queued or shed. ResidualRate and
// ResidualDelay describe what would have fit on the shard the tenant
// hashed to: a reservation is admissible iff its rate is at most
// ResidualRate and its delay strictly exceeds ResidualDelay. Test with
// errors.As; the rejection is not retryable without shrinking the
// reservation.
type AdmissionError struct {
	// ResidualRate is the rate still unreserved on the tenant's shard.
	ResidualRate float64
	// ResidualDelay is the shard's own delay bound; an admissible
	// reservation must declare a strictly larger delay.
	ResidualDelay float64
	// Msg is the server's human-readable rejection.
	Msg string
}

// Error returns the server's message with the residual capacity.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: %s (residual rate %g, min delay >%g)",
		e.Msg, e.ResidualRate, e.ResidualDelay)
}

// RemoteError is any other server-reported failure (invalid arrivals,
// malformed request, unknown policy, internal fault), carrying the wire
// code and the server's message.
type RemoteError struct {
	Code int
	Msg  string
}

// Error returns the server's message under the serve: prefix.
func (e *RemoteError) Error() string { return "serve: " + e.Msg }

// errFromResp converts a decoded error response into the typed error
// the Client returns.
func errFromResp(m *errResp) error {
	switch m.Code {
	case codeOverloaded:
		return ErrOverloaded
	case codeDraining:
		return ErrDraining
	case codeUnknownTenant:
		return ErrUnknownTenant
	case codeTenantExists:
		return ErrTenantExists
	case codeBadSeq:
		return &BadSeqError{Expected: m.Expected}
	case codeAdmission:
		return &AdmissionError{
			ResidualRate:  m.ResidualRate,
			ResidualDelay: m.ResidualDelay,
			Msg:           m.Msg,
		}
	default:
		return &RemoteError{Code: m.Code, Msg: m.Msg}
	}
}
