package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// startServer boots a server on a loopback port and serves until the
// test ends.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s
}

func dialTest(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testInstance(t *testing.T, rounds int, tenant int) *sched.Instance {
	t.Helper()
	inst, err := workload.Tenant("router", workload.Params{Rounds: rounds, Seed: 7}, tenant)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func tcFor(inst *sched.Instance) TenantConfig {
	return TenantConfig{Policy: "dlruedf", N: 8, Delta: inst.Delta, Delays: inst.Delays}
}

// feed submits inst's whole trace starting at seq from, waiting out any
// overload shedding.
func feed(t *testing.T, c *Client, id string, inst *sched.Instance, from int) {
	t.Helper()
	for seq := from; seq < len(inst.Requests); {
		_, _, err := c.Submit(id, seq, inst.Requests[seq])
		switch {
		case err == nil:
			seq++
		case errors.Is(err, ErrOverloaded):
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("submit %s seq %d: %v", id, seq, err)
		}
	}
}

func TestServerRoundTrip(t *testing.T) {
	inst := testInstance(t, 64, 0)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	tc := tcFor(inst)

	next, resumed, err := c.Open("alpha", tc)
	if err != nil || next != 0 || resumed {
		t.Fatalf("open = (%d, %v, %v), want (0, false, nil)", next, resumed, err)
	}
	// Re-opening with the same configuration re-attaches.
	if _, resumed, err = c.Open("alpha", tc); err != nil || !resumed {
		t.Fatalf("re-open = (resumed %v, %v), want (true, nil)", resumed, err)
	}
	// A conflicting configuration is rejected.
	bad := tc
	bad.N = 4
	if _, _, err = c.Open("alpha", bad); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("conflicting open = %v, want ErrTenantExists", err)
	}

	feed(t, c, "alpha", inst, 0)

	rows, err := c.Stats("alpha")
	if err != nil || len(rows) != 1 {
		t.Fatalf("stats = (%d rows, %v)", len(rows), err)
	}
	if rows[0].NextSeq != len(inst.Requests) {
		t.Fatalf("NextSeq = %d, want %d", rows[0].NextSeq, len(inst.Requests))
	}
	if rows[0].QueueCap != 64 { // server default
		t.Fatalf("QueueCap = %d, want 64", rows[0].QueueCap)
	}

	res, err := c.DrainTenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("drained result differs from local replay:\n server %+v\n local  %+v", res, ref)
	}
	// Draining again is a no-op returning the identical result, so a
	// client retrying a drain whose ack was lost cannot skew anything.
	res2, err := c.DrainTenant("alpha")
	if err != nil || !resultsEqual(res, res2) {
		t.Fatalf("re-drain = (%+v, %v), want the same result", res2, err)
	}
	if got, err := c.Result("alpha"); err != nil || !resultsEqual(res, got) {
		t.Fatalf("Result = (%+v, %v), want the drained result", got, err)
	}

	// The snapshot a client mirrors is the restorable stream payload.
	blob, err := c.Snapshot("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if cfg, pol, err := sched.PeekSnapshot(blob); err != nil || cfg.N != tc.N || pol == "" {
		t.Fatalf("snapshot peek = (%+v, %q, %v)", cfg, pol, err)
	}

	if draining, n, err := c.Ping(); err != nil || draining || n != 1 {
		t.Fatalf("ping = (%v, %d, %v), want (false, 1, nil)", draining, n, err)
	}

	final, err := c.CloseTenant("alpha")
	if err != nil || !resultsEqual(res, final) {
		t.Fatalf("close = (%+v, %v), want the drained result", final, err)
	}
	if _, err := c.Stats("alpha"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("stats after close = %v, want ErrUnknownTenant", err)
	}
}

func TestServerRejections(t *testing.T) {
	inst := testInstance(t, 8, 0)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	tc := tcFor(inst)

	var re *RemoteError
	if _, _, err := c.Submit("ghost", 0, nil); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("submit to unknown tenant = %v", err)
	}
	if _, err := c.DrainTenant("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("drain unknown tenant = %v", err)
	}
	badPol := tc
	badPol.Policy = "no-such-policy"
	if _, _, err := c.Open("a", badPol); !errors.As(err, &re) || re.Code != codeBadPolicy {
		t.Fatalf("open bad policy = %v", err)
	}
	if _, _, err := c.Open("no/slashes", tc); !errors.As(err, &re) || re.Code != codeBadRequest {
		t.Fatalf("open bad tenant ID = %v", err)
	}
	badCfg := tc
	badCfg.N = -3
	if _, _, err := c.Open("a", badCfg); !errors.As(err, &re) || re.Code != codeBadRequest {
		t.Fatalf("open bad config = %v", err)
	}

	if _, _, err := c.Open("a", tc); err != nil {
		t.Fatal(err)
	}
	// Out-of-sequence submits carry the resume point both ways.
	var bs *BadSeqError
	if _, _, err := c.Submit("a", 5, nil); !errors.As(err, &bs) || bs.Expected != 0 {
		t.Fatalf("future seq = %v", err)
	}
	if _, _, err := c.Submit("a", 0, inst.Requests[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit("a", 0, inst.Requests[0]); !errors.As(err, &bs) || bs.Expected != 1 {
		t.Fatalf("duplicate seq = %v", err)
	}
	// Arrivals are validated at admission: color out of range.
	if _, _, err := c.Submit("a", 1, sched.Request{{Color: 99, Count: 1}}); !errors.As(err, &re) || re.Code != codeInvalidArrival {
		t.Fatalf("invalid arrival = %v", err)
	}
}

// TestServerOverload pins the admission-control contract: with round
// application frozen (paced at one tick per hour), a tenant's queue
// fills to its cap and every further submit is shed with ErrOverloaded
// — bounded memory, no buffering — while an unaffected tenant on the
// same server is untouched, and the shed tenant's eventual results
// remain exactly the admitted prefix.
func TestServerOverload(t *testing.T) {
	const qcap = 4
	s := startServer(t, Config{RoundInterval: time.Hour})
	c := dialTest(t, s)

	instA := testInstance(t, 16, 0)
	instB := testInstance(t, 16, 1)
	tcA := tcFor(instA)
	tcA.QueueCap = qcap
	tcB := tcFor(instB)
	if _, _, err := c.Open("hot", tcA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open("calm", tcB); err != nil {
		t.Fatal(err)
	}

	// Fill the hot tenant's queue; nothing applies, so cap submits are
	// admitted and each one past it is shed.
	for seq := 0; seq < qcap; seq++ {
		_, depth, err := c.Submit("hot", seq, instA.Requests[seq])
		if err != nil {
			t.Fatalf("submit %d: %v", seq, err)
		}
		if depth != seq+1 {
			t.Fatalf("depth after submit %d = %d, want %d", seq, depth, seq+1)
		}
	}
	for i := 0; i < 10; i++ {
		if _, _, err := c.Submit("hot", qcap, instA.Requests[qcap]); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit past cap = %v, want ErrOverloaded", err)
		}
	}
	rows, err := c.Stats("hot")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].QueueDepth != qcap || rows[0].Overloads != 10 {
		t.Fatalf("stats = depth %d overloads %d, want %d and 10", rows[0].QueueDepth, rows[0].Overloads, qcap)
	}
	// The backing queue never grows past the compaction bound even
	// across repeated fill/drain cycles.
	if got := len(s.tenant("hot").queue); got > 2*qcap {
		t.Fatalf("queue backing length %d exceeds 2×cap", got)
	}

	// The calm tenant admits below its (default) cap without shedding.
	feed(t, c, "calm", instB, 0)

	// Draining applies exactly what was admitted: the hot tenant's
	// result is the qcap-round prefix, the calm tenant's the full trace.
	prefix := *instA
	prefix.Requests = instA.Requests[:qcap]
	wantHot, err := LocalReference(&prefix, tcA.Policy, tcA.N, tcA.Speed)
	if err != nil {
		t.Fatal(err)
	}
	gotHot, err := c.DrainTenant("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(wantHot, gotHot) {
		t.Fatalf("shed tenant result:\n server %+v\n local  %+v", gotHot, wantHot)
	}
	wantCalm, err := LocalReference(instB, tcB.Policy, tcB.N, tcB.Speed)
	if err != nil {
		t.Fatal(err)
	}
	gotCalm, err := c.DrainTenant("calm")
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(wantCalm, gotCalm) {
		t.Fatalf("unaffected tenant result:\n server %+v\n local  %+v", gotCalm, wantCalm)
	}
}

// TestServeLoad runs the load generator against a live server — the
// sustained-rate path of make servesmoke: 64 concurrent tenants each
// replaying an independent trace, verified bit-identical against local
// replays afterwards.
func TestServeLoad(t *testing.T) {
	s := startServer(t, Config{})
	rep, err := RunLoad(LoadConfig{
		Addr:    s.Addr().String(),
		Tenants: 64,
		Params:  workload.Params{Rounds: 50, Seed: 11},
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("tenants with non-identical results: %v", rep.Mismatches)
	}
	if want := int64(64 * 50); rep.RoundsSent != want {
		t.Fatalf("RoundsSent = %d, want %d", rep.RoundsSent, want)
	}
	if rep.AchievedRate <= 0 || rep.Latency.N == 0 {
		t.Fatalf("report missing throughput/latency: %+v", rep)
	}
	if s.NumTenants() != 64 {
		t.Fatalf("NumTenants = %d, want 64", s.NumTenants())
	}
}

// restartLoad drives RunLoad against a server, stops that server
// mid-run the way stop says (graceful Shutdown or crash-like Close),
// boots a replacement on the same address and checkpoint directory, and
// requires every tenant's final result to be bit-identical to a local
// replay — no round lost, none duplicated.
func restartLoad(t *testing.T, cfg Config, stop func(*Server) error, mut ...func(*LoadConfig)) *LoadReport {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- s1.Serve() }()
	addr := s1.Addr().String()

	lcfg := LoadConfig{
		Addr:         addr,
		Tenants:      64,
		Params:       workload.Params{Rounds: 80, Seed: 5},
		Rate:         120, // ~670ms of paced submits per tenant
		Verify:       true,
		RetryTimeout: 20 * time.Second,
	}
	for _, m := range mut {
		m(&lcfg)
	}
	var rep *LoadReport
	var lerr error
	loadDone := make(chan struct{})
	go func() { defer close(loadDone); rep, lerr = RunLoad(lcfg) }()

	time.Sleep(250 * time.Millisecond) // land the stop mid-run
	if err := stop(s1); err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	cfg.Addr = addr
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- s2.Serve() }()
	t.Cleanup(func() {
		s2.Close()
		if err := <-done2; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	if n := s2.NumTenants(); n != 64 {
		t.Fatalf("recovered %d tenants, want 64", n)
	}

	<-loadDone
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("tenants with non-identical results after restart: %v", rep.Mismatches)
	}
	return rep
}

// TestServeGracefulRestart: SIGTERM-style drain mid-load. Shutdown
// flushes every queued tick and writes final checkpoints, so the
// restarted server resumes each tenant exactly where it stopped and no
// round is replayed or lost.
func TestServeGracefulRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("restart integration test")
	}
	rep := restartLoad(t, Config{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 1 << 30, // only the final flush checkpoints
	}, (*Server).Shutdown)
	// A graceful drain loses nothing, so no admitted round is ever
	// submitted twice: at most Tenants×Rounds successful submits. (A
	// tenant whose in-flight submit was admitted just as the server
	// stopped can lose that one acknowledgement — at most once each.)
	want := int64(64 * 80)
	if rep.RoundsSent > want || rep.RoundsSent < want-64 {
		t.Fatalf("RoundsSent = %d, want %d (graceful drain must not lose or replay rounds)", rep.RoundsSent, want)
	}
}

// TestServeCrashRestart: fault injection between round ticks. Close
// drops queues and everything past each tenant's last periodic
// checkpoint; drivers rewind to the server's resume point and re-feed,
// and the final results are still bit-identical.
func TestServeCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("restart integration test")
	}
	rep := restartLoad(t, Config{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 8,
	}, (*Server).Close)
	// The crash loses rounds past the checkpoints, so drivers re-feed:
	// at least the full trace volume, minus at most one lost
	// acknowledgement per tenant for the submit in flight at the crash.
	if want := int64(64*80) - 64; rep.RoundsSent < want {
		t.Fatalf("RoundsSent = %d, want ≥ %d", rep.RoundsSent, want)
	}
}

// TestServeGracefulRestartPipelined is the graceful restart harness
// through the pipelined driver: a window of in-flight frames can lose
// its acknowledgements when the drain closes the connection, so the
// accounting bound widens by window×batch per tenant — but results must
// still verify bit-identical, which is the exactly-once claim.
func TestServeGracefulRestartPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("restart integration test")
	}
	const window, batch = 8, 4
	rep := restartLoad(t, Config{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 1 << 30,
	}, (*Server).Shutdown, func(lc *LoadConfig) {
		lc.Pipeline = window
		lc.Batch = batch
	})
	want := int64(64 * 80)
	if slack := int64(64 * window * batch); rep.RoundsSent > want || rep.RoundsSent < want-slack {
		t.Fatalf("RoundsSent = %d, want within [%d, %d]", rep.RoundsSent, want-slack, want)
	}
}

// TestServeCrashRestartPipelined: fault injection under the pipelined
// driver. The crash can drop both checkpoint-uncovered rounds (re-fed,
// so counted twice) and a window of unacknowledged admissions per
// tenant (never counted), so only the widened lower bound holds — and
// the bit-identical verification inside restartLoad.
func TestServeCrashRestartPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("restart integration test")
	}
	const window, batch = 8, 4
	rep := restartLoad(t, Config{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 8,
	}, (*Server).Close, func(lc *LoadConfig) {
		lc.Pipeline = window
		lc.Batch = batch
	})
	if want := int64(64*80) - int64(64*window*batch); rep.RoundsSent < want {
		t.Fatalf("RoundsSent = %d, want ≥ %d", rep.RoundsSent, want)
	}
}

// TestCloseTenantSubmitRace pins the exactly-once contract of
// CloseTenant against concurrent submits: every round tick acknowledged
// with success is included in the final drained stream. The old
// two-acquisition close (drain, unlock, re-lock, mark closed) had a
// window where a submit could be admitted — and acknowledged — after
// the drain computed the final Result, then be dropped with the tenant.
// Each acknowledged tick here carries one job and the stream is fully
// drained at close, so conservation is exact: Executed+Dropped must
// equal the acknowledged count.
func TestCloseTenantSubmitRace(t *testing.T) {
	s := startServer(t, Config{DefaultQueueCap: 1024})
	closer := dialTest(t, s)
	submitter := dialTest(t, s)
	tc := TenantConfig{Policy: "edf", N: 2, Delta: 2, Delays: []int{64, 64}}
	tick := sched.Request{{Color: 0, Count: 1}}

	for iter := 0; iter < 40; iter++ {
		id := fmt.Sprintf("race-%02d", iter)
		if _, _, err := closer.Open(id, tc); err != nil {
			t.Fatal(err)
		}
		acked := make(chan int, 1)
		go func() {
			n := 0
			for seq := 0; ; {
				_, _, err := submitter.Submit(id, seq, tick)
				switch {
				case err == nil:
					n++
					seq++
				case errors.Is(err, ErrOverloaded):
					time.Sleep(50 * time.Microsecond)
				case errors.Is(err, ErrUnknownTenant):
					acked <- n
					return
				default:
					t.Errorf("submit %s seq %d: %v", id, seq, err)
					acked <- n
					return
				}
			}
		}()
		// Let the submitter build momentum, then close mid-stream.
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		res, err := closer.CloseTenant(id)
		if err != nil {
			t.Fatal(err)
		}
		n := <-acked
		if got := res.Executed + res.Dropped; got != n {
			t.Fatalf("iteration %d: %d jobs acknowledged but final result accounts for %d (executed %d, dropped %d)",
				iter, n, got, res.Executed, res.Dropped)
		}
	}
}

// TestCloseTenantCheckpointRace pins the durable-file contract of
// CloseTenant against the shard worker's checkpoint writes: once
// CloseTenant returns, the tenant's files are gone and stay gone. The
// old removal ran outside ckptMu, so a worker holding a snapshot blob
// taken just before the close could recreate the files afterwards — and
// a restart would then resurrect a closed tenant.
func TestCloseTenantCheckpointRace(t *testing.T) {
	dir := t.TempDir()
	// Files mode: the assertion below is that the directory ends empty,
	// which only the per-tenant-file backend promises (the log backend
	// legitimately leaves segment files; its tombstone contract is
	// pinned by TestCloseTenantLogTombstone).
	s := startServer(t, Config{CheckpointDir: dir, CheckpointEvery: 1, CkptMode: "files"})
	c := dialTest(t, s)
	tc := TenantConfig{Policy: "edf", N: 2, Delta: 2, Delays: []int{8, 8}}
	tick := sched.Request{{Color: 0, Count: 1}}

	ids := make([]string, 40)
	for iter := range ids {
		id := fmt.Sprintf("ck-%02d", iter)
		ids[iter] = id
		if _, _, err := c.Open(id, tc); err != nil {
			t.Fatal(err)
		}
		// Every applied round is checkpoint-due (CheckpointEvery 1), so
		// the shard worker is writing while we close.
		for seq := 0; seq < 8; {
			_, _, err := c.Submit(id, seq, tick)
			switch {
			case err == nil:
				seq++
			case errors.Is(err, ErrOverloaded):
				time.Sleep(50 * time.Microsecond)
			default:
				t.Fatal(err)
			}
		}
		if _, err := c.CloseTenant(id); err != nil {
			t.Fatal(err)
		}
		for _, f := range []string{id + ".ckpt", id + ".meta"} {
			if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
				t.Fatalf("%s survives CloseTenant (stat err %v)", f, err)
			}
		}
	}
	// Give any straggling checkpoint writer time to lose the race, then
	// require the files to have stayed gone — the tombstone's job.
	time.Sleep(50 * time.Millisecond)
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		names := make([]string, len(left))
		for i, e := range left {
			names[i] = e.Name()
		}
		t.Fatalf("closed tenants resurrected durable files: %v", names)
	}
}

// TestShutdownAcceptStorm pins the accept/stop race: connections
// accepted while Shutdown runs are either swept (and their handlers
// awaited) or refused — never registered after the close sweep so their
// handler outlives Shutdown. Failure modes of the old ordering include
// a leaked registered connection and connWG.Add racing connWG.Wait.
func TestShutdownAcceptStorm(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := Dial(addr)
				if err != nil {
					return // listener closed; storm over
				}
				c.Ping() // errors once draining; keep dialing regardless
				c.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the storm land on the accept loop
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// connWG.Wait has returned, so every handler deregistered itself.
	s.mu.Lock()
	n := len(s.conns)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d connections still registered after Shutdown", n)
	}
}

// TestServerRecovery pins the durability lifecycle at the single-tenant
// level: a crash before the first checkpoint recovers the tenant fresh
// from its metadata; a crash after rounds recovers it at the checkpoint;
// CloseTenant removes its durable files.
func TestServerRecovery(t *testing.T) {
	dir := t.TempDir()
	inst := testInstance(t, 24, 0)
	tc := tcFor(inst)
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}

	// Crash before any checkpoint: only the metadata file survives.
	s1 := startServer(t, Config{CheckpointDir: dir, CheckpointEvery: 1 << 30})
	c1 := dialTest(t, s1)
	if _, _, err := c1.Open("solo", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c1, "solo", inst, 0)
	s1.Close()
	if _, err := os.Stat(filepath.Join(dir, "solo.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file exists before first checkpoint interval (stat err %v)", err)
	}

	// The restart rebuilds the tenant at round 0; the client re-feeds
	// the whole trace and the result matches the reference exactly.
	s2 := startServer(t, Config{CheckpointDir: dir, CheckpointEvery: 4})
	c2 := dialTest(t, s2)
	next, resumed, err := c2.Open("solo", tc)
	if err != nil || !resumed || next != 0 {
		t.Fatalf("open after meta-only recovery = (%d, %v, %v), want (0, true, nil)", next, resumed, err)
	}
	feed(t, c2, "solo", inst, 0)
	res, err := c2.DrainTenant("solo")
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("post-recovery result differs:\n server %+v\n local  %+v", res, ref)
	}
	s2.Close()

	// The drain wrote a final checkpoint; a third server resumes the
	// tenant at its drained round with the same totals.
	s3 := startServer(t, Config{CheckpointDir: dir})
	c3 := dialTest(t, s3)
	if _, resumed, err := c3.Open("solo", tc); err != nil || !resumed {
		t.Fatalf("open after checkpoint recovery = (resumed %v, %v)", resumed, err)
	}
	res3, err := c3.Result("solo")
	if err != nil || !resultsEqual(ref, res3) {
		t.Fatalf("recovered result = (%+v, %v), want the drained result", res3, err)
	}

	// CloseTenant deletes the durable files: a fourth server is empty.
	if _, err := c3.CloseTenant("solo"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"solo.meta", "solo.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("%s survives CloseTenant (stat err %v)", f, err)
		}
	}
	s3.Close()
	s4 := startServer(t, Config{CheckpointDir: dir})
	if n := s4.NumTenants(); n != 0 {
		t.Fatalf("server after CloseTenant recovered %d tenants, want 0", n)
	}
}

// TestServerDrainingRejectsWork: once Shutdown begins, submits and new
// opens are refused with ErrDraining while re-attach still answers.
func TestServerDraining(t *testing.T) {
	inst := testInstance(t, 8, 0)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	tc := tcFor(inst)
	if _, _, err := c.Open("a", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c, "a", inst, 0)
	s.draining.Store(true) // the first thing stop() does
	if _, _, err := c.Submit("a", len(inst.Requests), nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if _, _, err := c.Open("b", tc); !errors.Is(err, ErrDraining) {
		t.Fatalf("open while draining = %v, want ErrDraining", err)
	}
	if _, resumed, err := c.Open("a", tc); err != nil || !resumed {
		t.Fatalf("re-attach while draining = (resumed %v, %v), want (true, nil)", resumed, err)
	}
}
