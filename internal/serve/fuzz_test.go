package serve

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/sched"
	"repro/internal/snap"
)

// fuzzServer builds a listener-less server with one live tenant, so the
// fuzzer reaches every request handler including the tenant-addressed
// ones. The shard workers never run — admitted ticks just queue — which
// is fine: the property under test is the decode path, not scheduling.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	cfg := Config{}
	cfg.fill()
	s := &Server{
		cfg:       cfg,
		tenants:   make(map[string]*tenant),
		conns:     make(map[net.Conn]struct{}),
		stopShard: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{wake: make(chan struct{}, 1)})
	}
	if _, er := s.open(&openMsg{
		Version: ProtocolVersion, Tenant: "fuzz", Policy: "edf",
		N: 4, Delta: 4, Delays: []int{2, 6},
	}); er != nil {
		f.Fatalf("opening fuzz tenant: %s", er.Msg)
	}
	return s
}

// FuzzFrameDecode pins the server's central robustness contract: no
// byte sequence — malformed, truncated, bit-flipped, or adversarial —
// may panic the frame reader or the request processor. Every input
// either decodes to a well-formed request or produces an error response
// / connection close.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid encoding of every message type, so mutations
	// explore each handler's decode path, not just the type switch.
	seed := func(build func(e *snap.Encoder)) {
		e := snap.NewEncoder()
		build(e)
		var frame bytes.Buffer
		if err := writeFrame(&frame, e.Bytes()); err != nil {
			f.Fatal(err)
		}
		f.Add(frame.Bytes())
	}
	seed(func(e *snap.Encoder) {
		(&openMsg{Version: ProtocolVersion, Tenant: "fuzz", Policy: "edf",
			N: 4, Delta: 4, Delays: []int{2, 6}}).encode(e)
	})
	seed(func(e *snap.Encoder) {
		(&submitMsg{Tenant: "fuzz", Seq: 0,
			Arrivals: sched.Request{{Color: 0, Count: 2}, {Color: 1, Count: 1}}}).encode(e)
	})
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgStats, Tenant: ""}).encode(e) })
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgResult, Tenant: "fuzz"}).encode(e) })
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgDrain, Tenant: "fuzz"}).encode(e) })
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgSnapshot, Tenant: "fuzz"}).encode(e) })
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgCloseTenant, Tenant: "nope"}).encode(e) })
	seed(func(e *snap.Encoder) { e.Uint64(msgPing) })
	seed(func(e *snap.Encoder) { (&errResp{Code: codeBadSeq, Expected: 3, Msg: "x"}).encode(e) })
	// Protocol v2: tagged envelopes and batched submits.
	seed(func(e *snap.Encoder) {
		e.Uint64(msgTagged)
		e.Uint64(7)
		(&submitMsg{Tenant: "fuzz", Seq: 0,
			Arrivals: sched.Request{{Color: 0, Count: 2}}}).encode(e)
	})
	// Protocol v4: the migration pair.
	seed(func(e *snap.Encoder) {
		(&restoreMsg{Version: ProtocolVersion, Tenant: "fuzz2", Policy: "edf",
			N: 4, Delta: 4, Delays: []int{2, 6}, Weight: 1, Blob: []byte{1, 2, 3}}).encode(e)
	})
	seed(func(e *snap.Encoder) { (&tenantMsg{Type: msgRelease, Tenant: "fuzz"}).encode(e) })
	seed(func(e *snap.Encoder) {
		e.Uint64(msgTagged)
		e.Uint64(9)
		e.Uint64(msgPing)
	})
	seed(func(e *snap.Encoder) {
		(&batchMsg{Tenant: "fuzz", Seq: 0, Ticks: []sched.Request{
			{{Color: 0, Count: 1}}, nil, {{Color: 1, Count: 2}, {Color: 0, Count: 1}},
		}}).encode(e)
	})
	seed(func(e *snap.Encoder) {
		e.Uint64(msgTagged)
		e.Uint64(1)
		(&batchMsg{Tenant: "fuzz", Seq: 3, Ticks: []sched.Request{{{Color: 1, Count: 1}}}}).encode(e)
	})
	// Nested tagged envelope — must be rejected, not recursed into.
	seed(func(e *snap.Encoder) {
		e.Uint64(msgTagged)
		e.Uint64(2)
		e.Uint64(msgTagged)
		e.Uint64(3)
		e.Uint64(msgPing)
	})
	// Protocol v6: a reserved open/restore (optional trailing BDR
	// fields), the release whose response echoes them, and the
	// durability-stats request the proxy now relays.
	seed(func(e *snap.Encoder) {
		(&openMsg{Version: ProtocolVersion, Tenant: "fuzz3", Policy: "edf",
			N: 4, Delta: 4, Delays: []int{2, 6}, Weight: 1,
			ResRate: 0.25, ResDelay: 32}).encode(e)
	})
	seed(func(e *snap.Encoder) {
		(&restoreMsg{Version: ProtocolVersion, Tenant: "fuzz4", Policy: "edf",
			N: 4, Delta: 4, Delays: []int{2, 6}, Weight: 1, Blob: []byte{1, 2, 3},
			ResRate: 0.125, ResDelay: 16}).encode(e)
	})
	seed(func(e *snap.Encoder) { e.Uint64(msgDuraStats) })
	// A batch claiming far more rounds than it carries — the decoder must
	// bound allocation by MaxBatch and reject, never trust the count.
	seed(func(e *snap.Encoder) {
		e.Uint64(msgSubmitBatch)
		e.String("fuzz")
		e.Int(0)
		e.Int(1 << 40)
	})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader must survive arbitrary streams: truncated
		// headers, oversized lengths, short bodies.
		if body, err := readFrame(bytes.NewReader(data), nil); err == nil {
			processBody(t, s, body)
		}
		// And the processor must survive arbitrary bodies directly, as
		// if a well-framed but hostile payload arrived.
		processBody(t, s, data)
	})
}

func processBody(t *testing.T, s *Server, body []byte) {
	t.Helper()
	var cs connState
	enc := snap.NewEncoder()
	before, hadTenant := 0, false
	if ft := s.tenant("fuzz"); ft != nil {
		before, hadTenant = ft.nextSeq(), true
	}
	closeConn := s.process(body, &cs, enc)
	// Whatever happened, the server must have staged a response frame
	// that fits the protocol (process always encodes either a success
	// or an error response).
	if len(enc.Bytes()) == 0 {
		t.Fatalf("process staged no response for body %x", body)
	}
	d := snap.NewDecoder(enc.Bytes())
	if d.Uint64(); d.Err() != nil {
		t.Fatalf("response has no message type for body %x", body)
	}
	// Malformed frames (the ones that close the connection) are rejected
	// atomically: in particular a submit batch with a mangled tail must
	// not leave a partial sequence advance behind.
	if closeConn && hadTenant {
		if ft := s.tenant("fuzz"); ft != nil && ft.nextSeq() != before {
			t.Fatalf("malformed frame advanced the tenant sequence %d -> %d (body %x)",
				before, ft.nextSeq(), body)
		}
	}
	// A mutated close frame can legitimately remove the fuzz tenant, and
	// a release frame can tombstone it; restore it so later inputs still
	// reach the tenant-addressed handlers.
	if ft := s.tenant("fuzz"); ft == nil || ft.isReleased() {
		if ft != nil {
			s.mu.Lock()
			delete(s.tenants, "fuzz")
			s.sorted = nil
			s.mu.Unlock()
		}
		s.open(&openMsg{Version: ProtocolVersion, Tenant: "fuzz", Policy: "edf",
			N: 4, Delta: 4, Delays: []int{2, 6}})
	}
}
