package serve

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestBDRAdmission pins the admission surface end to end on a
// single-shard BDR server (shard BDR = rate 1, delay 1): feasible
// reservations admit and show in stats, infeasible ones come back as
// *AdmissionError carrying the shard's residual capacity, malformed
// ones are bad requests, re-opens must match the reservation exactly,
// and closing a reserved tenant frees its slice.
func TestBDRAdmission(t *testing.T) {
	inst := testInstance(t, 16, 0)
	s := startServer(t, Config{Shards: 1, BDR: true})
	c := dialTest(t, s)
	tc := tcFor(inst)
	tc.ResRate, tc.ResDelay = 0.6, 32

	if _, _, err := c.Open("res-a", tc); err != nil {
		t.Fatalf("feasible reserved open: %v", err)
	}
	rows, err := c.Stats("res-a")
	if err != nil || len(rows) != 1 {
		t.Fatalf("stats = (%v, %v)", rows, err)
	}
	if rows[0].ReservedRate != 0.6 || rows[0].ReservedDelay != 32 {
		t.Fatalf("stats reservation = (%g, %g), want (0.6, 32)", rows[0].ReservedRate, rows[0].ReservedDelay)
	}

	// A second 0.6 cannot fit the 0.4 residual; the typed rejection
	// names what would have fit.
	var ae *AdmissionError
	if _, _, err := c.Open("res-b", tc); !errors.As(err, &ae) {
		t.Fatalf("infeasible open = %v, want *AdmissionError", err)
	}
	if math.Abs(ae.ResidualRate-0.4) > 1e-9 || ae.ResidualDelay != 1 {
		t.Fatalf("residual = (%g, %g), want (0.4, 1)", ae.ResidualRate, ae.ResidualDelay)
	}

	// A delay at or under the shard's own bound is infeasible however
	// small the rate: the shard cannot promise service sooner than it
	// receives it.
	tight := tc
	tight.ResRate, tight.ResDelay = 0.01, 1
	if _, _, err := c.Open("res-tight", tight); !errors.As(err, &ae) {
		t.Fatalf("tight-delay open = %v, want *AdmissionError", err)
	}

	// Rate beyond a whole shard is malformed, not an admission question.
	over := tc
	over.ResRate = 1.5
	var re *RemoteError
	if _, _, err := c.Open("res-over", over); !errors.As(err, &re) || re.Code != codeBadRequest {
		t.Fatalf("rate>1 open = %v, want codeBadRequest", err)
	}

	// Re-open with the identical reservation re-attaches; a differing
	// one is a config conflict.
	if _, resumed, err := c.Open("res-a", tc); err != nil || !resumed {
		t.Fatalf("matching re-open = (resumed %v, %v), want (true, nil)", resumed, err)
	}
	diff := tc
	diff.ResRate = 0.5
	if _, _, err := c.Open("res-a", diff); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("mismatched re-open = %v, want ErrTenantExists", err)
	}

	// Closing the holder frees the slice: the rejected reservation now
	// admits.
	if _, err := c.CloseTenant("res-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open("res-b", tc); err != nil {
		t.Fatalf("open after release: %v", err)
	}
}

// TestBDRRequiresFlag: a reservation against a server without -bdr is a
// bad request, and with -bdr off the open path is otherwise unchanged.
func TestBDRRequiresFlag(t *testing.T) {
	inst := testInstance(t, 8, 0)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	tc := tcFor(inst)
	if _, _, err := c.Open("plain", tc); err != nil {
		t.Fatalf("unreserved open on non-BDR server: %v", err)
	}
	tc.ResRate, tc.ResDelay = 0.5, 32
	var re *RemoteError
	if _, _, err := c.Open("wants-res", tc); !errors.As(err, &re) || re.Code != codeBadRequest {
		t.Fatalf("reserved open on non-BDR server = %v, want codeBadRequest", err)
	}
}

// TestBDRRecovery pins the durable half of admission: a reserved
// tenant's (rate, delay) survives a restart via metaVersion 3 and is
// re-admitted into the tree (a new open against the recovered residual
// is rejected), while restarting the same directory without -bdr fails
// loudly instead of silently dropping the guarantee.
func TestBDRRecovery(t *testing.T) {
	dir := t.TempDir()
	inst := testInstance(t, 16, 0)
	tc := tcFor(inst)
	tc.ResRate, tc.ResDelay = 0.7, 32

	s1 := startServer(t, Config{Shards: 1, BDR: true, CheckpointDir: dir})
	c1 := dialTest(t, s1)
	if _, _, err := c1.Open("durable", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c1, "durable", inst, 0)
	s1.Close()

	s2 := startServer(t, Config{Shards: 1, BDR: true, CheckpointDir: dir})
	c2 := dialTest(t, s2)
	rows, err := c2.Stats("durable")
	if err != nil || len(rows) != 1 {
		t.Fatalf("stats after recovery = (%v, %v)", rows, err)
	}
	if rows[0].ReservedRate != 0.7 || rows[0].ReservedDelay != 32 {
		t.Fatalf("recovered reservation = (%g, %g), want (0.7, 32)", rows[0].ReservedRate, rows[0].ReservedDelay)
	}
	// The recovered reservation occupies the tree: 0.5 exceeds the 0.3
	// residual.
	want := tc
	want.ResRate = 0.5
	var ae *AdmissionError
	if _, _, err := c2.Open("squeezed", want); !errors.As(err, &ae) {
		t.Fatalf("open against recovered residual = %v, want *AdmissionError", err)
	}
	s2.Close()

	// Restarting without -bdr must refuse to recover the directory.
	if _, err := NewServer(Config{Addr: "127.0.0.1:0", CheckpointDir: dir}); err == nil {
		t.Fatal("recovery without -bdr succeeded; want a loud failure")
	}
}

// TestBDRReleaseRestore pins migration: Release hands the reservation
// back with the config, Restore re-runs admission on the target — a
// target with room re-admits, a target without bounces the restore with
// the typed admission error and keeps the tenant off its books.
func TestBDRReleaseRestore(t *testing.T) {
	inst := testInstance(t, 12, 0)
	src := startServer(t, Config{Shards: 1, BDR: true})
	cs := dialTest(t, src)
	tc := tcFor(inst)
	tc.ResRate, tc.ResDelay = 0.6, 32
	if _, _, err := cs.Open("mover", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, cs, "mover", inst, 0)
	rel, err := cs.Release("mover")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Config.ResRate != 0.6 || rel.Config.ResDelay != 32 {
		t.Fatalf("released reservation = (%g, %g), want (0.6, 32)", rel.Config.ResRate, rel.Config.ResDelay)
	}

	// A roomy target re-admits; its stats carry the reservation.
	dst := startServer(t, Config{Shards: 1, BDR: true})
	cd := dialTest(t, dst)
	if _, err := cd.Restore("mover", rel.Config, rel.Blob); err != nil {
		t.Fatalf("restore on roomy target: %v", err)
	}
	rows, err := cd.Stats("mover")
	if err != nil || len(rows) != 1 || rows[0].ReservedRate != 0.6 {
		t.Fatalf("restored stats = (%v, %v), want reserved rate 0.6", rows, err)
	}

	// A full target bounces: another release, restore onto a server
	// whose shard is already 0.8 reserved.
	rel2, err := cd.Release("mover")
	if err != nil {
		t.Fatal(err)
	}
	full := startServer(t, Config{Shards: 1, BDR: true})
	cf := dialTest(t, full)
	blocker := tcFor(testInstance(t, 8, 1))
	blocker.ResRate, blocker.ResDelay = 0.8, 32
	if _, _, err := cf.Open("blocker", blocker); err != nil {
		t.Fatal(err)
	}
	var ae *AdmissionError
	if _, err := cf.Restore("mover", rel2.Config, rel2.Blob); !errors.As(err, &ae) {
		t.Fatalf("restore on full target = %v, want *AdmissionError", err)
	}
	if math.Abs(ae.ResidualRate-0.2) > 1e-9 {
		t.Fatalf("bounce residual = %g, want 0.2", ae.ResidualRate)
	}
	// The bounced tenant left no trace on the full target.
	if _, err := cf.Result("mover"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("bounced tenant result = %v, want ErrUnknownTenant", err)
	}
}

// TestBDRIsolation is the deterministic form of the PR's acceptance
// scenario, modeled on runStarvation: one hot unreserved tenant holds a
// standing backlog while reserved victims trickle one round per tick.
// Under the fractional-share controller every reserved victim's delay
// factor must stay at or under 1.0 — the guarantee the admission check
// promised — and the victims' budget utilization must reach their
// accrual (≥ 1: they got at least the service their reservation
// integrates to).
func TestBDRIsolation(t *testing.T) {
	const victims, ticks = 4, 40
	s := startServer(t, Config{Shards: 1, BDR: true, RoundInterval: time.Hour,
		DefaultQueueCap: 1024})
	c := dialTest(t, s)

	hot := testInstance(t, 512, 0)
	htc := tcFor(hot)
	htc.QueueCap = 1024
	if _, _, err := c.Open("hot", htc); err != nil {
		t.Fatal(err)
	}
	type feedState struct {
		id   string
		next int
		reqs int
	}
	feeds := make([]feedState, victims)
	insts := make(map[string]int)
	for i := range feeds {
		inst := testInstance(t, 64, i+1)
		id := "victim" + string(rune('A'+i))
		vtc := tcFor(inst)
		// Each victim reserves 1/8 of the shard with a delay bound of 8
		// rounds: jointly 0.5, feasible alongside the unreserved hot
		// tenant (which needs no reservation to be admitted).
		vtc.ResRate, vtc.ResDelay = 0.125, 8
		if _, _, err := c.Open(id, vtc); err != nil {
			t.Fatal(err)
		}
		feeds[i] = feedState{id: id}
		insts[id] = i + 1
	}

	need := ticks * (victims + 2)
	for seq := 0; seq < need; seq++ {
		if _, _, err := c.Submit("hot", seq, hot.Requests[seq]); err != nil {
			t.Fatalf("hot submit %d: %v", seq, err)
		}
	}

	sh := s.shards[0]
	var ps passState
	for tick := 0; tick < ticks; tick++ {
		for i := range feeds {
			f := &feeds[i]
			inst := testInstance(t, 64, insts[f.id])
			if _, _, err := c.Submit(f.id, f.next, inst.Requests[f.next]); err != nil {
				t.Fatalf("%s submit %d: %v", f.id, f.next, err)
			}
			f.next++
		}
		s.servePass(sh, &ps, -1)
	}

	rows, err := c.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ID == "hot" {
			continue
		}
		if r.MaxDelayFactor > 1.0 {
			t.Errorf("reserved victim %s delay factor %.3f exceeds 1.0", r.ID, r.MaxDelayFactor)
		}
		if r.ReservedRate != 0.125 {
			t.Errorf("victim %s reserved rate %g, want 0.125", r.ID, r.ReservedRate)
		}
		if r.BudgetUtilization < 1.0 {
			t.Errorf("victim %s budget utilization %.3f < 1.0: served less than its guarantee", r.ID, r.BudgetUtilization)
		}
	}
}
