package serve

import (
	"fmt"
	"math"
	"os"
	"slices"
	"sync"
	"time"

	"repro/internal/bdr"
	"repro/internal/ckptlog"
	"repro/internal/sched"
	"repro/internal/snap"
	"repro/internal/trace"
)

// tenant is one hosted stream: the live sched.Stream, its bounded
// ingest queue of admitted-but-unapplied round ticks, and the
// admission-control counters. All mutable state is guarded by mu; the
// checkpoint file is additionally serialized by ckptMu so the write and
// fsync happen outside the stream lock.
type tenant struct {
	id      string
	spec    string             // policy spec the tenant was opened with
	polName string             // the policy's display Name, for stats
	cfg     sched.StreamConfig // normalized (Speed ≥ 1); Probe is sink
	qcap    int
	weight  int // provisioned service weight (≥ 1), immutable after open
	// minDelay is the tightest delay bound in the tenant's menu; the
	// tenant's delay factor is queued/minDelay (see TenantLoad).
	minDelay int
	// res is the tenant's admitted BDR reservation (zero = best-effort),
	// immutable after open/restore/recovery; the matching reservation-tree
	// entry is released with the tenant by the server lifecycle paths.
	res bdr.BDR

	// deficit is the weighted service this tenant is owed, the state of
	// the cross-tenant allocator (alloc.go). It is owned by the tenant's
	// single shard worker — only servePass reads or writes it — so it
	// needs no lock.
	deficit float64
	// passApplied counts the rounds applied for this tenant within the
	// current BDR allocation pass (Config.BDR). Like deficit it is owned
	// by the shard worker: servePass resets it at pass start and folds it
	// into the BDR budget accounting at pass end.
	passApplied int

	mu     sync.Mutex
	st     *sched.Stream
	sink   *sched.MetricsSink
	queue  []sched.Request // admitted round ticks; live entries are queue[head:]
	head   int
	closed bool
	// released marks a tenant whose state was handed to another server
	// by msgRelease. The tombstone stays in the table so every later
	// command — including a racing re-open that would otherwise fork a
	// fresh stream at sequence 0 — is answered with a retryable draining
	// error until a restore (migrating back) replaces it.
	released bool
	failed   error // a poisoned stream rejects all further commands

	served         int64   // rounds applied by workers/drains, for service shares
	maxDelayFactor float64 // high-water of queued/minDelay, sampled at admission
	// BDR budget accounting (Config.BDR): bdrAccrued integrates the
	// service the reservation guaranteed over the passes the tenant was
	// backlogged in (its guaranteed fraction × the pass's applied
	// rounds), bdrServed the rounds it actually received in those
	// passes. Their ratio is the stats row's BudgetUtilization.
	bdrAccrued  float64
	bdrServed   int64
	overloads   int64
	badSeqs     int64
	checkpoints int64
	lastCkpt    int // round of the last snapshot taken

	ckptPath, metaPath string // "" = files-mode durability off

	// clog, when non-nil, selects the group-commit log backend
	// (internal/ckptlog): checkpoints are appended to the shard-shared
	// segment log under mu+ckptMu instead of written to a per-tenant
	// file, and the log's committer batches the fsyncs. dura counts the
	// files-mode writes when clog is nil. logf receives checkpoint-path
	// diagnostics (never nil after newTenantState).
	clog *ckptlog.Log
	dura *duraCounters
	logf func(format string, args ...any)

	// Pooled snapshot-path buffers, guarded by mu. snapBuf holds the
	// latest full snapshot (reused every checkpoint), deltaBase the full
	// snapshot the current delta chain is computed against, deltaBuf the
	// delta scratch — so a steady-state log-mode checkpoint allocates
	// nothing.
	snapBuf        []byte
	deltaBase      []byte
	deltaBuf       []byte
	deltaBaseRound int
	deltasSince    int
	dm             snap.DeltaMaker

	// Adaptive checkpoint pacing (Config.CkptAdaptive): EWMAs of the
	// measured snapshot cost and per-round apply cost pick the next
	// checkpoint round (see nextPaceLocked), clamped to
	// [paceMin, paceMax]. Guarded by mu.
	adaptive         bool
	paceMin, paceMax int
	snapNs, applyNs  float64 // EWMA, α=0.3; 0 = no measurement yet
	paceNext         int     // next checkpoint round; 0 = bootstrap

	ckptMu       sync.Mutex
	writtenRound int  // round of the newest checkpoint on disk
	removed      bool // durable files deleted; never write them again
}

// deltaEveryFull is the delta-chain length bound: after this many
// consecutive delta checkpoints a full snapshot is re-emitted even if
// deltas stay small, bounding the work recovery pays to resolve a
// tenant (one full + one delta, never a chain).
const deltaEveryFull = 16

// ewmaAlpha weighs new cost measurements into the pacing EWMAs.
const ewmaAlpha = 0.3

func ewma(old float64, sample float64) float64 {
	if old == 0 {
		return sample
	}
	return old + ewmaAlpha*(sample-old)
}

// queuedLocked reports the number of admitted-but-unapplied round ticks.
// Callers hold mu.
func (t *tenant) queuedLocked() int { return len(t.queue) - t.head }

// nextSeqLocked is the sequence number the next Submit must carry:
// rounds applied plus rounds queued. Callers hold mu.
func (t *tenant) nextSeqLocked() int { return t.st.Round() + t.queuedLocked() }

// nextSeq is nextSeqLocked for callers not holding mu.
func (t *tenant) nextSeq() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextSeqLocked()
}

// submit admits one round tick. It returns the rounds applied so far
// and the queue depth after admission, or an *errResp describing the
// rejection; the queue never grows past the tenant's cap, so a client
// outrunning the round rate is shed (ErrOverloaded), not buffered.
func (t *tenant) submit(seq int, arrivals sched.Request, draining bool) (round, depth int, er *errResp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if er := t.submitLocked(seq, arrivals, draining); er != nil {
		return 0, 0, er
	}
	return t.st.Round(), t.queuedLocked(), nil
}

// submitLocked is one round's admission check and enqueue. Callers hold
// mu.
func (t *tenant) submitLocked(seq int, arrivals sched.Request, draining bool) *errResp {
	if t.closed {
		return &errResp{Code: codeUnknownTenant, Msg: "tenant " + t.id + " is closed"}
	}
	if t.released {
		return &errResp{Code: codeDraining, Msg: "tenant " + t.id + " is migrating"}
	}
	if t.failed != nil {
		return &errResp{Code: codeInternal, Msg: t.failed.Error()}
	}
	if draining {
		return &errResp{Code: codeDraining, Msg: "server is draining"}
	}
	if err := sched.ValidateRequest(arrivals, t.st.NumColors()); err != nil {
		return &errResp{Code: codeInvalidArrival, Msg: err.Error()}
	}
	if expect := t.nextSeqLocked(); seq != expect {
		t.badSeqs++
		return &errResp{Code: codeBadSeq, Expected: expect, Msg: fmt.Sprintf("bad round sequence %d, expected %d", seq, expect)}
	}
	if t.queuedLocked() >= t.qcap {
		t.overloads++
		return &errResp{Code: codeOverloaded, Msg: "tenant queue full"}
	}
	// The decoder reuses the arrivals' backing array across frames, so
	// the queue keeps its own copy. Compact the ring before it can grow
	// past twice the cap: live entries are bounded by cap, so memory
	// stays bounded no matter how long the tenant lives.
	if t.head > 0 && len(t.queue) >= 2*t.qcap {
		n := copy(t.queue, t.queue[t.head:])
		for i := n; i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = t.queue[:n]
		t.head = 0
	}
	var tick sched.Request
	if len(arrivals) > 0 {
		tick = append(make(sched.Request, 0, len(arrivals)), arrivals...)
	}
	t.queue = append(t.queue, tick)
	t.sampleDelayFactorLocked()
	return nil
}

// delayFactorLocked is the tenant's live delay factor: backlog over the
// tightest delay bound in its menu. Callers hold mu.
func (t *tenant) delayFactorLocked() float64 {
	return float64(t.queuedLocked()) / float64(max(t.minDelay, 1))
}

// sampleDelayFactorLocked folds the live delay factor into its
// high-water mark. It runs at admission, on every allocator load probe,
// and on stats reads — not only at admission — so a tenant whose queue
// sits deep while its worker is parked (starvation) records the peak
// even when no new submit arrives. Callers hold mu.
func (t *tenant) sampleDelayFactorLocked() {
	if f := t.delayFactorLocked(); f > t.maxDelayFactor {
		t.maxDelayFactor = f
	}
}

// load snapshots the tenant's scheduling signal for the cross-tenant
// allocator, reporting ok false when the tenant has no backlog.
func (t *tenant) load() (TenantLoad, bool) {
	t.mu.Lock()
	q := t.queuedLocked()
	t.sampleDelayFactorLocked()
	t.mu.Unlock()
	if q == 0 {
		return TenantLoad{}, false
	}
	return TenantLoad{
		Queued:   q,
		MinDelay: max(t.minDelay, 1),
		Weight:   max(t.weight, 1),
		Deficit:  t.deficit,
	}, true
}

// servedRounds reports the round ticks applied so far, for server-wide
// service-share totals.
func (t *tenant) servedRounds() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.served
}

// accrueBDR folds one allocation pass into the tenant's BDR budget
// accounting: accrued is the service its reservation guaranteed across
// the pass (guaranteed fraction × rounds the pass applied shard-wide),
// served the rounds the tenant itself received.
func (t *tenant) accrueBDR(accrued float64, served int) {
	t.mu.Lock()
	t.bdrAccrued += accrued
	t.bdrServed += int64(served)
	t.mu.Unlock()
}

// submitBatch admits ticks[i] as the round tick at sequence seq+i,
// stopping at the first rejection, under one lock acquisition. The
// admitted count is always a prefix length: the per-round sequence
// check runs for every round exactly as it does for single submits, so
// exactly-once ingest is preserved inside a batch. The returned errResp
// (nil when the whole batch was admitted) describes the rejection of
// round seq+admitted.
func (t *tenant) submitBatch(seq int, ticks []sched.Request, draining bool) (admitted, round, depth int, er *errResp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, tick := range ticks {
		if er = t.submitLocked(seq+i, tick, draining); er != nil {
			break
		}
		admitted++
	}
	return admitted, t.st.Round(), t.queuedLocked(), er
}

// applyQueuedLocked applies up to max queued round ticks (max <= 0 =
// all) and returns how many it applied. Callers hold mu. Under
// adaptive pacing the batch is timed so the pacer knows what a round
// of progress costs relative to a snapshot.
func (t *tenant) applyQueuedLocked(max int) (applied int) {
	var start time.Time
	if t.adaptive {
		start = time.Now()
	}
	defer func() {
		if t.adaptive && applied > 0 {
			t.applyNs = ewma(t.applyNs, float64(time.Since(start).Nanoseconds())/float64(applied))
		}
	}()
	for t.queuedLocked() > 0 && t.failed == nil && (max <= 0 || applied < max) {
		tick := t.queue[t.head]
		t.queue[t.head] = nil
		t.head++
		if t.head == len(t.queue) {
			t.queue = t.queue[:0]
			t.head = 0
		}
		if _, err := t.st.Step(tick); err != nil {
			// Arrivals were validated at admission, so a step failure is
			// an engine-level fault; poison the tenant rather than guess.
			t.failed = fmt.Errorf("serve: tenant %s: applying round %d: %w", t.id, t.st.Round(), err)
			break
		}
		applied++
	}
	t.served += int64(applied)
	return applied
}

// applyQueued applies up to max queued round ticks and decides whether
// a periodic checkpoint is due. When one is, it returns the snapshot
// blob and its round — taking the (in-memory) snapshot under the lock
// and leaving the file write to the caller via writeCheckpoint.
func (t *tenant) applyQueued(max, every int) (applied int, blob []byte, round int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	applied = t.applyQueuedLocked(max)
	blob, round = t.maybeSnapshotLocked(every, false)
	return applied, blob, round
}

// maybeSnapshotLocked snapshots the stream when a checkpoint is due
// (or, with force, whenever durability is on and the stream has moved
// since the last snapshot). Callers hold mu.
//
// In files mode the blob is returned for the caller to persist outside
// the stream lock via writeCheckpoint (the write pays an fsync). In
// log mode the record is appended to the group-commit log right here —
// an append is a buffered copy, durability is the committer's batched
// fsync — and (nil, 0) is returned; creation order and append order
// coincide by construction, which is what keeps the per-tenant delta
// chains valid without any cross-goroutine ordering protocol.
func (t *tenant) maybeSnapshotLocked(every int, force bool) (blob []byte, round int) {
	if (t.ckptPath == "" && t.clog == nil) || t.failed != nil {
		return nil, 0
	}
	r := t.st.Round()
	if force {
		if r == t.lastCkpt {
			return nil, 0
		}
	} else if !t.ckptDueLocked(every, r) {
		return nil, 0
	}
	if t.clog != nil {
		t.logCheckpointLocked(r)
		return nil, 0
	}
	b, err := t.st.Snapshot()
	if err != nil {
		t.failed = fmt.Errorf("serve: tenant %s: snapshot at round %d: %w", t.id, r, err)
		return nil, 0
	}
	t.lastCkpt = r
	t.checkpoints++
	if t.adaptive {
		t.paceNext = r + t.nextPaceLocked()
	}
	return b, r
}

// ckptDueLocked decides whether a periodic checkpoint is due at round
// r. With adaptive pacing off this is the fixed cadence
// (CheckpointEvery); with it on, the round the pacer picked after the
// previous checkpoint. Callers hold mu.
func (t *tenant) ckptDueLocked(every, r int) bool {
	if r == t.lastCkpt {
		return false
	}
	if t.adaptive {
		if t.paceNext <= 0 {
			return true // bootstrap: take one checkpoint to measure against
		}
		return r >= t.paceNext
	}
	return every > 0 && r-t.lastCkpt >= every
}

// nextPaceLocked converts the measured costs into the rounds to wait
// before the next checkpoint — Young's approximation: the overhead of
// checkpointing every k rounds is snapCost/k while the expected rewind
// exposure grows with k·applyCost·weight, minimized at
// k ≈ sqrt(2·snapCost/applyCost/weight). Heavier tenants (larger
// Weight) checkpoint more often: their rewind is worth more. Callers
// hold mu.
func (t *tenant) nextPaceLocked() int {
	iv := t.paceMax
	if t.snapNs > 0 && t.applyNs > 0 {
		cost := t.snapNs / t.applyNs // snapshot cost in units of rounds
		iv = int(math.Sqrt(2 * cost / float64(max(t.weight, 1))))
	}
	return min(max(iv, max(t.paceMin, 1)), max(t.paceMax, 1))
}

// logCheckpointLocked takes one checkpoint into the group-commit log:
// a delta against the retained base when the chain is short and the
// delta pays for itself, a fresh full snapshot (restarting the chain)
// otherwise. Buffers are pooled; the steady state allocates nothing.
// Callers hold mu.
func (t *tenant) logCheckpointLocked(r int) {
	var start time.Time
	if t.adaptive {
		start = time.Now()
	}
	cur, err := t.st.AppendSnapshot(t.snapBuf[:0])
	if err != nil {
		t.failed = fmt.Errorf("serve: tenant %s: snapshot at round %d: %w", t.id, r, err)
		return
	}
	t.snapBuf = cur
	kind, base, rec := ckptlog.KindFull, 0, cur
	if t.deltaBase != nil && t.deltasSince < deltaEveryFull {
		d := t.dm.AppendDelta(t.deltaBuf[:0], t.deltaBase, cur)
		t.deltaBuf = d
		if 2*len(d) <= len(cur) {
			kind, base, rec = ckptlog.KindDelta, t.deltaBaseRound, d
		}
	}
	if t.adaptive {
		t.snapNs = ewma(t.snapNs, float64(time.Since(start).Nanoseconds()))
	}
	// The tombstone check guards the log-append path exactly as it
	// guards files-mode writes: a released or closed tenant must not
	// resurrect records into the shared log (see removeFiles).
	appended := false
	t.ckptMu.Lock()
	if !t.removed && r > t.writtenRound {
		if err := t.clog.Append(t.id, kind, r, base, rec); err != nil {
			t.logf("serve: tenant %s: checkpoint log append at round %d: %v", t.id, r, err)
		} else {
			t.writtenRound = r
			appended = true
		}
	}
	t.ckptMu.Unlock()
	if !appended {
		return // removed, stale, or failed: leave the chain untouched and retry later
	}
	if kind == ckptlog.KindFull {
		t.deltaBase = append(t.deltaBase[:0], cur...)
		t.deltaBaseRound = r
		t.deltasSince = 0
	} else {
		t.deltasSince++
	}
	t.lastCkpt = r
	t.checkpoints++
	if t.adaptive {
		t.paceNext = r + t.nextPaceLocked()
	}
}

// writeCheckpoint persists a snapshot blob taken by applyQueued, flush
// or drainStream. It runs outside the stream lock; ckptMu orders
// concurrent writers (shard worker vs. drain handler) and the round
// check drops a stale blob that lost the race.
func (t *tenant) writeCheckpoint(blob []byte, round int) error {
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	// A closed tenant's files are tombstoned: a shard worker that took a
	// snapshot just before the tenant was removed must not resurrect
	// durable files a restart would then recover.
	if t.removed || round <= t.writtenRound {
		return nil
	}
	if err := trace.SaveCheckpointState(t.ckptPath, blob); err != nil {
		return fmt.Errorf("serve: tenant %s: writing checkpoint: %w", t.id, err)
	}
	t.writtenRound = round
	if t.dura != nil {
		t.dura.appends.Add(1)
		t.dura.bytes.Add(int64(len(blob)))
		t.dura.fsyncs.Add(1) // SaveCheckpointState fsyncs each write
	}
	return nil
}

// removeFiles deletes the tenant's durable files and tombstones the
// checkpoint path so no in-flight writeCheckpoint can recreate them.
// Holding ckptMu across the removal orders it against a concurrent
// writer: whichever side wins the lock, the files end (and stay) gone.
func (t *tenant) removeFiles() {
	if t.ckptPath == "" && t.clog == nil {
		return
	}
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	t.removed = true
	os.Remove(t.metaPath)
	if t.clog != nil {
		// The tombstone shadows every earlier record for this id so a
		// restart cannot resurrect the tenant; it is synced immediately
		// because removal is acknowledged to the client. Best-effort: on
		// error the meta file is already gone, so recovery skips the
		// tenant anyway.
		if err := t.clog.AppendTombstone(t.id); err != nil {
			t.logf("serve: tenant %s: checkpoint log tombstone: %v", t.id, err)
		} else if err := t.clog.Sync(); err != nil {
			t.logf("serve: tenant %s: checkpoint log sync: %v", t.id, err)
		}
		return
	}
	os.Remove(t.ckptPath)
}

// flush applies every queued round tick and takes a final snapshot —
// the graceful-drain path (server shutdown). The returned blob (nil
// when durability is off or the stream has not moved) must be handed to
// writeCheckpoint.
func (t *tenant) flush() (blob []byte, round int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.applyQueuedLocked(0)
	return t.maybeSnapshotLocked(0, true)
}

// drainStream applies the whole queue, then runs empty rounds until no
// job is pending, all under one lock acquisition so no submit can
// interleave, and returns the final Result plus a fresh final snapshot.
// Draining an already-drained tenant is a no-op that returns the same
// Result, so a client retrying a drain whose acknowledgement was lost
// observes identical results.
func (t *tenant) drainStream() (*sched.Result, []byte, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainStreamLocked()
}

func (t *tenant) drainStreamLocked() (*sched.Result, []byte, int, error) {
	if t.failed != nil {
		return nil, nil, 0, t.failed
	}
	t.applyQueuedLocked(0)
	if t.failed != nil {
		return nil, nil, 0, t.failed
	}
	if _, err := t.st.Drain(); err != nil {
		t.failed = fmt.Errorf("serve: tenant %s: draining: %w", t.id, err)
		return nil, nil, 0, t.failed
	}
	blob, round := t.maybeSnapshotLocked(0, true)
	return t.st.Result(), blob, round, nil
}

// drainAndClose drains the stream and marks the tenant closed in one
// critical section, returning the final Result. Because no submit can
// interleave between the drain and the close, every round ever
// acknowledged is included in the Result — the exactly-once contract
// CloseTenant relies on. (The old two-acquisition sequence had a window
// where a submit could be admitted and acknowledged after the drain,
// then silently dropped with the tenant.) A drain failure leaves the
// tenant open (and poisoned) so the caller can surface the fault.
func (t *tenant) drainAndClose() (*sched.Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	res, _, _, err := t.drainStreamLocked()
	if err != nil {
		return nil, err
	}
	t.closed = true
	return res, nil
}

// result returns a retained copy of the scheduling totals so far.
func (t *tenant) result() (*sched.Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed != nil {
		return nil, t.failed
	}
	return t.st.Result(), nil
}

// isReleased reports whether the tenant is a migration tombstone.
func (t *tenant) isReleased() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.released
}

// release is the source half of a migration: apply everything queued so
// the snapshot carries no in-flight rounds, snapshot, and turn the
// tenant into a released tombstone. The response carries the
// configuration as opened, the resume sequence, and the state blob —
// everything a restore on the target needs. The caller (server.release)
// removes the tenant's shard registration and durable files afterwards.
func (t *tenant) release() (*releaseResp, *errResp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, &errResp{Code: codeUnknownTenant, Msg: "tenant " + t.id + " is closed"}
	}
	if t.released {
		return nil, &errResp{Code: codeDraining, Msg: "tenant " + t.id + " is migrating"}
	}
	if t.failed == nil {
		t.applyQueuedLocked(0)
	}
	if t.failed != nil {
		return nil, &errResp{Code: codeInternal, Msg: t.failed.Error()}
	}
	blob, err := t.st.Snapshot()
	if err != nil {
		t.failed = fmt.Errorf("serve: tenant %s: snapshot for release: %w", t.id, err)
		return nil, &errResp{Code: codeInternal, Msg: t.failed.Error()}
	}
	t.released = true
	return &releaseResp{
		Policy:   t.spec,
		N:        t.cfg.N,
		Speed:    t.cfg.Speed,
		Delta:    t.cfg.Delta,
		QueueCap: t.qcap,
		Delays:   slices.Clone(t.cfg.Delays),
		Weight:   max(t.weight, 1),
		NextSeq:  t.st.Round(),
		Blob:     blob,
		ResRate:  t.res.Rate,
		ResDelay: t.res.Delay,
	}, nil
}

// snapshot returns the current state blob (the payload RestoreStream
// accepts), for clients mirroring server state.
func (t *tenant) snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed != nil {
		return nil, t.failed
	}
	return t.st.Snapshot()
}

// stats fills one TenantStats row.
func (t *tenant) stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampleDelayFactorLocked()
	cost := t.st.Cost()
	return TenantStats{
		ID:           t.id,
		Policy:       t.polName,
		Round:        t.st.Round(),
		NextSeq:      t.nextSeqLocked(),
		Pending:      t.st.TotalPending(),
		QueueDepth:   t.queuedLocked(),
		QueueCap:     t.qcap,
		Executed:     t.st.Executed(),
		Dropped:      t.st.Dropped(),
		Reconfigs:    t.st.Reconfigs(),
		CostReconfig: cost.Reconfig,
		CostDrop:     cost.Drop,
		MaxPending:   t.sink.MaxPending,
		Overloads:    t.overloads,
		BadSeqs:      t.badSeqs,
		Checkpoints:  t.checkpoints,

		Weight:         max(t.weight, 1),
		MinDelay:       max(t.minDelay, 1),
		ServedRounds:   t.served,
		DelayFactor:    t.delayFactorLocked(),
		MaxDelayFactor: t.maxDelayFactor,

		ReservedRate:      t.res.Rate,
		ReservedDelay:     t.res.Delay,
		BudgetUtilization: t.budgetUtilizationLocked(),
	}
}

// budgetUtilizationLocked is served-over-accrued for a reserved tenant
// (0 until the first pass, or for a best-effort tenant). Callers hold
// mu.
func (t *tenant) budgetUtilizationLocked() float64 {
	if t.bdrAccrued <= 0 {
		return 0
	}
	return float64(t.bdrServed) / t.bdrAccrued
}
