package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/sched"
	"repro/internal/snap"
)

// TenantConfig is the client-side shape of an open request: which
// policy to run and the stream configuration the tenant simulates
// under. QueueCap 0 accepts the server's default.
type TenantConfig struct {
	Policy string
	N      int
	Speed  int
	Delta  int
	Delays []int
	// QueueCap bounds the tenant's admitted-but-unapplied round ticks;
	// submits beyond it are shed with ErrOverloaded.
	QueueCap int
	// Weight is the tenant's cross-tenant service weight: while several
	// tenants are backlogged, worker capacity is split in proportion to
	// their weights (see docs/SCHEDULING.md). 0 accepts the default of 1.
	Weight int
	// ResRate and ResDelay declare a BDR reservation (protocol v6): a
	// guaranteed fractional service rate in (0, 1] and the delay bound,
	// in rounds, within which that rate must be supplied. Both zero (the
	// default) opens a best-effort tenant. A reservation is subject to
	// the server's supply-bound-function admission check; an infeasible
	// one is rejected with *AdmissionError carrying the shard's residual
	// capacity, and a reservation sent to a server without -bdr is
	// rejected outright.
	ResRate  float64
	ResDelay float64
}

// Client is one connection to an rrserved server. It is safe for
// concurrent use; synchronous requests serialize on the connection in
// strict request/response order, and NewPipeline layers a bounded
// in-flight window on top via tagged frames when round-trip latency is
// the bottleneck. Server-side rejections come back as the
// typed errors in errors.go; a transport or protocol failure poisons
// the client — every later call returns the same error, and the caller
// should Dial a fresh one.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  *snap.Encoder
	buf  []byte
	err  error // sticky transport/protocol error
}

// Dial connects to an rrserved server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (Dial is the common path).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		enc:  snap.NewEncoder(),
	}
}

// Close closes the connection. The client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = net.ErrClosed
	}
	return c.conn.Close()
}

// poison records a transport/protocol failure as the client's sticky
// error and closes the connection. Callers hold c.mu.
func (c *Client) poison(err error) error {
	c.err = err
	c.conn.Close()
	return err
}

// roundtrip sends the frame staged in c.enc and reads one response,
// returning a decoder positioned after the message type. Callers hold
// c.mu. wantType is the echoed type of a success response; a msgErr
// response is mapped to its typed error, any other type is a protocol
// violation that poisons the client.
func (c *Client) roundtrip(wantType uint64) (*snap.Decoder, error) {
	if c.err != nil {
		return nil, c.err
	}
	fail := func(err error) (*snap.Decoder, error) {
		return nil, c.poison(err)
	}
	if err := writeFrame(c.bw, c.enc.Bytes()); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	buf, err := readFrame(c.br, c.buf)
	if err != nil {
		return fail(err)
	}
	c.buf = buf
	d := snap.NewDecoder(buf)
	switch typ := d.Uint64(); {
	case d.Err() != nil:
		return fail(fmt.Errorf("serve: response missing message type: %w", d.Err()))
	case typ == msgErr:
		var e errResp
		e.decode(d)
		if err := d.Done(); err != nil {
			return fail(fmt.Errorf("serve: malformed error response: %w", err))
		}
		return nil, errFromResp(&e)
	case typ != wantType:
		return fail(fmt.Errorf("serve: response type %d, expected %d", typ, wantType))
	}
	return d, nil
}

// done validates that a success response was fully consumed; a trailing
// or truncated body is a protocol violation that poisons the client.
func (c *Client) done(d *snap.Decoder) error {
	if err := d.Done(); err != nil {
		c.err = fmt.Errorf("serve: malformed response: %w", err)
		c.conn.Close()
		return c.err
	}
	return nil
}

// Open creates tenant on the server, or re-attaches to a live tenant of
// the same ID and configuration. nextSeq is the sequence number the
// next Submit must carry — 0 for a fresh tenant, the resume point for a
// recovered or re-attached one (resumed true).
func (c *Client) Open(tenant string, tc TenantConfig) (nextSeq int, resumed bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&openMsg{
		Version: ProtocolVersion, Tenant: tenant, Policy: tc.Policy,
		N: tc.N, Speed: tc.Speed, Delta: tc.Delta,
		QueueCap: tc.QueueCap, Delays: tc.Delays, Weight: tc.Weight,
		ResRate: tc.ResRate, ResDelay: tc.ResDelay,
	}).encode(c.enc)
	d, err := c.roundtrip(msgOpen)
	if err != nil {
		return 0, false, err
	}
	var r openResp
	r.decode(d)
	if err := c.done(d); err != nil {
		return 0, false, err
	}
	return r.NextSeq, r.Resumed, nil
}

// Submit sends one round tick of arrivals for tenant. seq must equal
// the tenant's next expected round sequence (from Open, or the previous
// Submit + 1); a mismatch returns *BadSeqError with the resume point.
// round is the number of rounds the server has applied so far and depth
// the tenant's queue depth after admission.
func (c *Client) Submit(tenant string, seq int, arrivals sched.Request) (round, depth int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&submitMsg{Tenant: tenant, Seq: seq, Arrivals: arrivals}).encode(c.enc)
	d, err := c.roundtrip(msgSubmit)
	if err != nil {
		return 0, 0, err
	}
	var r submitResp
	r.decode(d)
	if err := c.done(d); err != nil {
		return 0, 0, err
	}
	return r.Round, r.QueueDepth, nil
}

// SubmitBatch sends ticks[i] as the round tick at sequence seq+i — up
// to MaxBatch consecutive rounds for one tenant in one frame, amortizing
// the length prefix and the syscall over the batch. Admission is per
// round and sequential: admitted reports the prefix length the server
// queued, and when admitted < len(ticks), err is the rejection of round
// seq+admitted, typed exactly as Submit would have typed it (so
// *BadSeqError still carries the resume point and ErrOverloaded still
// means back off and resubmit). round and depth describe the tenant
// after the admitted prefix.
func (c *Client) SubmitBatch(tenant string, seq int, ticks []sched.Request) (admitted, round, depth int, err error) {
	if len(ticks) > MaxBatch {
		return 0, 0, 0, fmt.Errorf("serve: batch of %d rounds exceeds MaxBatch %d", len(ticks), MaxBatch)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&batchMsg{Tenant: tenant, Seq: seq, Ticks: ticks}).encode(c.enc)
	d, err := c.roundtrip(msgSubmitBatch)
	if err != nil {
		return 0, 0, 0, err
	}
	var r batchResp
	r.decode(d)
	if err := c.done(d); err != nil {
		return 0, 0, 0, err
	}
	if r.Err != nil {
		err = errFromResp(r.Err)
	}
	return r.Admitted, r.Round, r.QueueDepth, err
}

// Stats fetches one tenant's stats row, or every tenant's (sorted by
// ID) when tenant is "". It uses the protocol-v3 extended stats command,
// so rows include the cross-tenant scheduling fields (Weight,
// DelayFactor, ServiceShare, …); fetching stats from a pre-v3 server is
// not supported — a v1/v2 *client* against this server keeps working
// unchanged via the legacy msgStats command.
func (c *Client) Stats(tenant string) ([]TenantStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&tenantMsg{Type: msgStatsEx, Tenant: tenant}).encode(c.enc)
	d, err := c.roundtrip(msgStatsEx)
	if err != nil {
		return nil, err
	}
	rows := decodeStatsRespEx(d)
	if err := c.done(d); err != nil {
		return nil, err
	}
	return rows, nil
}

// StatsCompat is Stats over the legacy pre-v3 stats command: the same
// rows without the scheduling extensions (Weight, MinDelay,
// ServedRounds, DelayFactor, MaxDelayFactor, ServiceShare all zero).
// Use it against servers older than protocol v3, which do not answer
// stats-ex; it is also the op the serve/stats benchmark measures, so
// the legacy monitoring path stays pinned against regressions.
func (c *Client) StatsCompat(tenant string) ([]TenantStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&tenantMsg{Type: msgStats, Tenant: tenant}).encode(c.enc)
	d, err := c.roundtrip(msgStats)
	if err != nil {
		return nil, err
	}
	rows := decodeStatsResp(d)
	if err := c.done(d); err != nil {
		return nil, err
	}
	return rows, nil
}

// Result fetches the tenant's cumulative scheduling totals so far,
// without disturbing the stream.
func (c *Client) Result(tenant string) (*sched.Result, error) {
	return c.resultCommand(msgResult, tenant)
}

// DrainTenant applies everything the tenant has queued, runs empty
// rounds until no job is pending, checkpoints, and returns the final
// Result. The tenant stays open; draining an already-drained tenant is
// a no-op returning the same Result, so the call is safe to retry.
func (c *Client) DrainTenant(tenant string) (*sched.Result, error) {
	return c.resultCommand(msgDrain, tenant)
}

// CloseTenant drains the tenant, removes it from the server (deleting
// its durable state), and returns the final Result.
func (c *Client) CloseTenant(tenant string) (*sched.Result, error) {
	return c.resultCommand(msgCloseTenant, tenant)
}

func (c *Client) resultCommand(typ uint64, tenant string) (*sched.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&tenantMsg{Type: typ, Tenant: tenant}).encode(c.enc)
	d, err := c.roundtrip(typ)
	if err != nil {
		return nil, err
	}
	res := decodeResult(d)
	if err := c.done(d); err != nil {
		return nil, err
	}
	if res == nil {
		c.err = fmt.Errorf("serve: malformed result response")
		c.conn.Close()
		return nil, c.err
	}
	return res, nil
}

// Snapshot fetches the tenant's current state blob — the payload
// sched.RestoreStream accepts — for mirroring server state.
func (c *Client) Snapshot(tenant string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&tenantMsg{Type: msgSnapshot, Tenant: tenant}).encode(c.enc)
	d, err := c.roundtrip(msgSnapshot)
	if err != nil {
		return nil, err
	}
	blob := d.Blob()
	if err := c.done(d); err != nil {
		return nil, err
	}
	return blob, nil
}

// ReleasedTenant is everything Release hands back — the tenant's
// configuration as opened, the sequence number the next Submit must
// carry wherever the tenant lands, and the state blob Restore accepts.
type ReleasedTenant struct {
	Config  TenantConfig
	NextSeq int
	Blob    []byte
}

// Release is the source half of a live migration (protocol v4): the
// server flushes the tenant's admission queue, snapshots it, deletes
// its durable state, and replaces it with a tombstone that answers
// every later command — including re-opens — with the retryable
// ErrDraining until a Restore brings the tenant back. Feed the returned
// state to Restore on the migration target.
func (c *Client) Release(tenant string) (*ReleasedTenant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&tenantMsg{Type: msgRelease, Tenant: tenant}).encode(c.enc)
	d, err := c.roundtrip(msgRelease)
	if err != nil {
		return nil, err
	}
	var r releaseResp
	r.decode(d)
	if err := c.done(d); err != nil {
		return nil, err
	}
	return &ReleasedTenant{
		Config: TenantConfig{
			Policy: r.Policy, N: r.N, Speed: r.Speed, Delta: r.Delta,
			Delays: r.Delays, QueueCap: r.QueueCap, Weight: r.Weight,
			ResRate: r.ResRate, ResDelay: r.ResDelay,
		},
		NextSeq: r.NextSeq,
		Blob:    r.Blob,
	}, nil
}

// Restore installs a released tenant snapshot on the server (protocol
// v4): the target half of a live migration. The declared configuration
// must match the one embedded in the blob. nextSeq is the sequence
// number the tenant's next Submit must carry on this server — it equals
// the ReleasedTenant's NextSeq when the blob came from Release.
// Restoring a tenant that is already open (and not a migration
// tombstone) fails with ErrTenantExists.
func (c *Client) Restore(tenant string, tc TenantConfig, blob []byte) (nextSeq int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	(&restoreMsg{
		Version: ProtocolVersion, Tenant: tenant, Policy: tc.Policy,
		N: tc.N, Speed: tc.Speed, Delta: tc.Delta,
		QueueCap: tc.QueueCap, Delays: tc.Delays, Weight: tc.Weight,
		Blob: blob, ResRate: tc.ResRate, ResDelay: tc.ResDelay,
	}).encode(c.enc)
	d, err := c.roundtrip(msgRestore)
	if err != nil {
		return 0, err
	}
	var r restoreResp
	r.decode(d)
	if err := c.done(d); err != nil {
		return 0, err
	}
	return r.NextSeq, nil
}

// Ping checks liveness, reporting whether the server is draining and
// how many tenants it hosts.
func (c *Client) Ping() (draining bool, tenants int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	c.enc.Uint64(msgPing)
	d, err := c.roundtrip(msgPing)
	if err != nil {
		return false, 0, err
	}
	draining = d.Bool()
	tenants = d.Int()
	if err := c.done(d); err != nil {
		return false, 0, err
	}
	return draining, tenants, nil
}

// DuraStats reports the server's durability-backend counters (protocol
// v5): mode ("log", "files", or "off"), append/byte/fsync totals, and
// the group-commit log's delta, rotation, compaction and segment
// counts. Since protocol v6 the proxy tier relays it too: a proxy
// answers with the counters summed across its live backends and a
// per-backend breakdown in Backends, each row labelled with the
// backend's address.
func (c *Client) DuraStats() (DuraStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	c.enc.Uint64(msgDuraStats)
	d, err := c.roundtrip(msgDuraStats)
	if err != nil {
		return DuraStats{}, err
	}
	var st DuraStats
	st.decode(d)
	if err := c.done(d); err != nil {
		return DuraStats{}, err
	}
	return st, nil
}
