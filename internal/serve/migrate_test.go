package serve

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/snap"
)

// TestReleaseRestoreRoundTrip moves a live tenant between two servers
// mid-trace — the protocol-v4 migration pair — and requires the final
// result to be bit-identical to an unmigrated local replay. It also
// pins restore durability: crashing the target right after the move
// recovers the tenant at its restored round, not at zero.
func TestReleaseRestoreRoundTrip(t *testing.T) {
	inst := testInstance(t, 64, 0)
	tc := tcFor(inst)
	s1 := startServer(t, Config{})
	c1 := dialTest(t, s1)
	if _, _, err := c1.Open("mig", tc); err != nil {
		t.Fatal(err)
	}
	const half = 32
	for seq := 0; seq < half; seq++ {
		for {
			_, _, err := c1.Submit("mig", seq, inst.Requests[seq])
			if err == nil {
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("submit seq %d: %v", seq, err)
			}
			time.Sleep(time.Millisecond)
		}
	}

	rel, err := c1.Release("mig")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NextSeq != half {
		t.Fatalf("released NextSeq = %d, want %d (queue must be flushed before the snapshot)", rel.NextSeq, half)
	}
	if rel.Config.Policy != tc.Policy || rel.Config.N != tc.N {
		t.Fatalf("released config %+v does not echo the open config %+v", rel.Config, tc)
	}
	// The source keeps a tombstone: submits bounce with the retryable
	// draining error, never a silent fresh stream.
	if _, _, err := c1.Submit("mig", half, inst.Requests[half]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit against released tenant: err = %v, want ErrDraining", err)
	}

	dir := t.TempDir()
	s2, err := NewServer(Config{Addr: "127.0.0.1:0", CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- s2.Serve() }()
	c2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	next, err := c2.Restore("mig", rel.Config, rel.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if next != half {
		t.Fatalf("restored NextSeq = %d, want %d", next, half)
	}
	for seq := half; seq < len(inst.Requests); seq++ {
		for {
			_, _, err := c2.Submit("mig", seq, inst.Requests[seq])
			if err == nil {
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("submit seq %d: %v", seq, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	res, err := c2.DrainTenant("mig")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("migrated result differs from local replay:\n got %+v\nwant %+v", res, ref)
	}
	c2.Close()

	// Crash the target: the restore persisted metadata plus the blob as
	// a first checkpoint, so recovery resumes at or past the restored
	// round instead of forking a fresh stream at zero.
	addr := s2.Addr().String()
	s2.Close()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	s3, err := NewServer(Config{Addr: addr, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rt := s3.tenant("mig")
	if rt == nil {
		t.Fatal("migrated tenant not recovered after target crash")
	}
	if r := rt.st.Round(); r < half {
		t.Fatalf("recovered at round %d, want >= %d (restore blob must be the first checkpoint)", r, half)
	}
}

// TestRestoreRejections pins every restore validation path: nothing may
// create or clobber state.
func TestRestoreRejections(t *testing.T) {
	inst := testInstance(t, 16, 0)
	tc := tcFor(inst)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	if _, _, err := c.Open("src", tc); err != nil {
		t.Fatal(err)
	}
	blob, err := c.Snapshot("src")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open("dup", tc); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0xff
	mismatched := tc
	mismatched.N++
	wrongPolicy := tc
	wrongPolicy.Policy = "edf"
	badPolicy := tc
	badPolicy.Policy = "no-such-policy"

	cases := []struct {
		name   string
		tenant string
		tc     TenantConfig
		blob   []byte
		want   string // substring of the error
	}{
		{"corrupt blob", "fresh1", tc, corrupt, "restore blob"},
		{"config mismatch", "fresh2", mismatched, blob, "does not match"},
		{"policy mismatch", "fresh3", wrongPolicy, blob, "does not match"},
		{"tenant already open", "dup", tc, blob, "exists"},
		{"invalid tenant id", "bad id!", tc, blob, "invalid tenant ID"},
		{"bad policy", "fresh4", badPolicy, blob, "policy"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cc := dialTest(t, s)
			_, err := cc.Restore(tt.tenant, tt.tc, tt.blob)
			if err == nil {
				t.Fatalf("restore %s: expected rejection", tt.name)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("restore %s: err %q, want substring %q", tt.name, err, tt.want)
			}
		})
	}
	// Rejections must leave no residue: the fresh IDs stay unknown.
	if _, err := c.Result("fresh1"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("rejected restore left state behind: %v", err)
	}
}

// TestReleasedTombstone pins the tombstone contract: every command
// against a released tenant — submit, re-open, stats, drain, close,
// snapshot — answers with the retryable draining error, the tenant
// vanishes from aggregate stats and counts, and a restore over the
// tombstone (migrating back) revives it at its release point.
func TestReleasedTombstone(t *testing.T) {
	inst := testInstance(t, 16, 0)
	tc := tcFor(inst)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	if _, _, err := c.Open("tomb", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c, "tomb", inst, 0)
	rel, err := c.Release("tomb")
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := c.Submit("tomb", rel.NextSeq, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit: err = %v, want ErrDraining", err)
	}
	if _, _, err := c.Open("tomb", tc); !errors.Is(err, ErrDraining) {
		t.Fatalf("re-open: err = %v, want ErrDraining", err)
	}
	if _, err := c.Stats("tomb"); !errors.Is(err, ErrDraining) {
		t.Fatalf("stats: err = %v, want ErrDraining", err)
	}
	if _, err := c.DrainTenant("tomb"); !errors.Is(err, ErrDraining) {
		t.Fatalf("drain: err = %v, want ErrDraining", err)
	}
	if _, err := c.CloseTenant("tomb"); !errors.Is(err, ErrDraining) {
		t.Fatalf("close: err = %v, want ErrDraining", err)
	}
	if _, err := c.Snapshot("tomb"); !errors.Is(err, ErrDraining) {
		t.Fatalf("snapshot: err = %v, want ErrDraining", err)
	}
	if rows, err := c.Stats(""); err != nil || len(rows) != 0 {
		t.Fatalf("all-tenant stats = %d rows (%v), want 0 (tombstone excluded)", len(rows), err)
	}
	if n := s.NumTenants(); n != 0 {
		t.Fatalf("NumTenants = %d, want 0 (tombstone excluded)", n)
	}

	next, err := c.Restore("tomb", rel.Config, rel.Blob)
	if err != nil {
		t.Fatalf("restore over tombstone: %v", err)
	}
	if next != rel.NextSeq {
		t.Fatalf("restored NextSeq = %d, want %d", next, rel.NextSeq)
	}
	if _, _, err := c.Submit("tomb", next, nil); err != nil {
		t.Fatalf("submit after restore-back: %v", err)
	}
}

// TestWireRestoreReleaseCodecs round-trips the protocol-v4 codecs.
func TestWireRestoreReleaseCodecs(t *testing.T) {
	e := snap.NewEncoder()
	rm := restoreMsg{Version: ProtocolVersion, Tenant: "a", Policy: "edf",
		N: 4, Speed: 2, Delta: 3, QueueCap: 9, Delays: []int{2, 6}, Weight: 5, Blob: []byte{1, 2, 3}}
	rm.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgRestore {
		t.Fatalf("type = %d, want msgRestore", typ)
	}
	var got restoreMsg
	got.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if got.Tenant != rm.Tenant || got.Policy != rm.Policy || got.N != rm.N ||
		got.Speed != rm.Speed || got.Delta != rm.Delta || got.QueueCap != rm.QueueCap ||
		got.Weight != rm.Weight || len(got.Delays) != 2 || string(got.Blob) != string(rm.Blob) {
		t.Fatalf("restoreMsg round trip: got %+v, want %+v", got, rm)
	}

	e.Reset()
	rr := releaseResp{Policy: "edf", N: 4, Speed: 1, Delta: 2, QueueCap: 8,
		Delays: []int{3, 9}, Weight: 2, NextSeq: 41, Blob: []byte{9, 8}}
	rr.encode(e)
	d = snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgRelease {
		t.Fatalf("type = %d, want msgRelease", typ)
	}
	var rgot releaseResp
	rgot.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if rgot.NextSeq != 41 || rgot.Policy != "edf" || string(rgot.Blob) != string(rr.Blob) {
		t.Fatalf("releaseResp round trip: got %+v, want %+v", rgot, rr)
	}
}

// TestMaxDelayFactorSampledWithoutAdmits is the regression pin for the
// admission-only sampling bug: a queue that sits deep while the paced
// worker is parked must surface in MaxDelayFactor on a stats read even
// when no submit ever observed that depth.
func TestMaxDelayFactorSampledWithoutAdmits(t *testing.T) {
	s := startServer(t, Config{Shards: 1, RoundInterval: time.Hour})
	c := dialTest(t, s)
	if _, _, err := c.Open("deep", TenantConfig{Policy: "edf", N: 4, Delta: 4, Delays: []int{2, 6}}); err != nil {
		t.Fatal(err)
	}
	// Stuff the queue directly — depth that arrived without admission
	// sampling (the allocator starvation tests build backlog the same
	// way). minDelay is 2, so 8 queued ticks mean a delay factor of 4.
	tn := s.tenant("deep")
	tn.mu.Lock()
	for i := 0; i < 8; i++ {
		tn.queue = append(tn.queue, nil)
	}
	tn.mu.Unlock()
	rows, err := c.Stats("deep")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].MaxDelayFactor; got < 4 {
		t.Fatalf("MaxDelayFactor = %v, want >= 4 (stats read must sample the live depth)", got)
	}
	// The allocator's load probe samples too: drain the queue by hand
	// and push deeper, then check the probe path alone records it.
	tn.mu.Lock()
	for i := 0; i < 4; i++ {
		tn.queue = append(tn.queue, nil)
	}
	tn.mu.Unlock()
	if _, ok := tn.load(); !ok {
		t.Fatal("load probe saw no backlog")
	}
	tn.mu.Lock()
	hw := tn.maxDelayFactor
	tn.mu.Unlock()
	if hw < 6 {
		t.Fatalf("maxDelayFactor after load probe = %v, want >= 6", hw)
	}
}

// TestStatsLoggerStopsOnShutdown pins the rrserved -stats-every fix:
// the periodic logger is joined to the server's worker group, so no log
// line can be emitted after Shutdown returns (the old inline goroutine
// leaked and could log into a closed server).
func TestStatsLoggerStopsOnShutdown(t *testing.T) {
	var mu sync.Mutex
	lines := 0
	cfg := Config{Addr: "127.0.0.1:0", Logf: func(format string, args ...any) {
		mu.Lock()
		lines++
		mu.Unlock()
	}}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	s.StartStatsLogger(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := lines
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stats logger never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := lines
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	final := lines
	mu.Unlock()
	if final != after {
		t.Fatalf("stats logger logged %d lines after Shutdown returned", final-after)
	}
	// Starting a logger on a stopped server must be a no-op, not a
	// WaitGroup reuse panic.
	s.StartStatsLogger(time.Millisecond)
}

// TestSchedReadoutCompatFallback pins the rrload degraded readout: a
// pre-v3 server answers the legacy stats command only, and the load
// report must fall back to it (flagged degraded, worst backlog filled)
// instead of staying silently empty.
func TestSchedReadoutCompatFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br, bw := bufio.NewReader(c), bufio.NewWriter(c)
				var buf []byte
				for {
					var err error
					buf, err = readFrame(br, buf)
					if err != nil {
						return
					}
					d := snap.NewDecoder(buf)
					e := snap.NewEncoder()
					if typ := d.Uint64(); typ == msgStats {
						encodeStatsResp(e, []TenantStats{
							{ID: "load-000", MaxPending: 7},
							{ID: "load-001", MaxPending: 11},
							{ID: "other", MaxPending: 99},
						})
						writeFrame(bw, e.Bytes())
						bw.Flush()
						continue
					}
					// A pre-v3 server treats msgStatsEx as an unknown type:
					// error response, then connection close.
					(&errResp{Code: codeBadRequest, Msg: "unknown message type"}).encode(e)
					writeFrame(bw, e.Bytes())
					bw.Flush()
					return
				}
			}(c)
		}
	}()

	rep := &LoadReport{}
	rep.fillSchedReadout(&LoadConfig{Addr: ln.Addr().String(), Tenants: 2})
	if !rep.SchedReadoutDegraded {
		t.Fatal("SchedReadoutDegraded not set against a pre-v3 server")
	}
	if rep.WorstBacklog != 11 || rep.WorstBacklogTenant != "load-001" {
		t.Fatalf("degraded readout = %d (%s), want 11 (load-001)", rep.WorstBacklog, rep.WorstBacklogTenant)
	}
	if rep.WorstDelayTenant != "" || rep.WorstDelayFactor != 0 {
		t.Fatalf("degraded readout must leave DF fields zero, got %v (%s)", rep.WorstDelayFactor, rep.WorstDelayTenant)
	}
}
