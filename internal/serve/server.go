package serve

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdr"
	"repro/internal/ckptlog"
	"repro/internal/sched"
	"repro/internal/snap"
	"repro/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// CheckpointDir enables durability: every tenant gets a metadata
	// file at open and a periodic checkpoint of its stream state, and
	// NewServer recovers all tenants found there. "" disables both.
	CheckpointDir string
	// CheckpointEvery is the number of applied rounds between periodic
	// per-tenant checkpoints (default 64). Graceful shutdown always
	// writes a final checkpoint regardless.
	CheckpointEvery int
	// CkptMode selects the durability backend when CheckpointDir is set:
	// "log" (the default) appends every tenant's checkpoints to a shared
	// group-commit segment log (internal/ckptlog) whose committer batches
	// the fsyncs, "files" writes one fsynced .ckpt file per tenant per
	// checkpoint (the pre-log behavior, and still the release/migration
	// blob format).
	CkptMode string
	// CkptCommitInterval is the group-commit fsync interval of the "log"
	// backend (default 2ms). Appends buffered within one interval share a
	// single fsync; a crash loses at most the last interval's records.
	CkptCommitInterval time.Duration
	// CkptSegmentBytes caps a log segment before rotation (default 4MiB).
	CkptSegmentBytes int
	// CkptAdaptive enables per-tenant adaptive checkpoint pacing in log
	// mode: the round gap between checkpoints is chosen from the measured
	// snapshot cost versus apply cost, weighted by the tenant's Weight,
	// instead of the fixed CheckpointEvery cadence.
	CkptAdaptive bool
	// CkptPaceMin/CkptPaceMax clamp the adaptive pacer's chosen gap in
	// rounds (defaults 1 and 1024).
	CkptPaceMin int
	CkptPaceMax int
	// RoundInterval, when positive, paces round application: each shard
	// worker applies at most one queued tick per tenant per interval, so
	// arrivals batch into timed round ticks and a client outrunning the
	// rate is shed at its queue cap. Zero applies ticks eagerly.
	RoundInterval time.Duration
	// Shards is the worker-pool size tenants are hashed across
	// (default GOMAXPROCS, capped at 16).
	Shards int
	// MaxTenants bounds the number of live tenants (default 4096).
	MaxTenants int
	// DefaultQueueCap is the per-tenant pending-queue cap applied when
	// an open request leaves QueueCap 0 (default 64).
	DefaultQueueCap int
	// ConnWindow bounds the per-connection table of staged-but-unwritten
	// responses (default 256). A pipelining client may keep up to this
	// many requests in flight before the reader stops pulling frames and
	// TCP backpressure takes over.
	ConnWindow int
	// Allocator selects the cross-tenant allocation policy shard workers
	// use to pick the next backlogged tenant (see NewAllocator): "wdrr"
	// — weighted deficit round-robin with delay-factor escalation — by
	// default, or "fifo" for the legacy drain-in-scan-order behavior.
	Allocator string
	// AllocQuantum is the base rounds served per wdrr pick, scaled by
	// the tenant's weight (default 8). Smaller quanta interleave tenants
	// more finely at slightly higher scheduling overhead.
	AllocQuantum int
	// AllocEscalation is the delay factor (backlog over tightest delay
	// bound) at which a tenant enters wdrr's priority set: once any
	// tenant crosses it, only tenants at or past it are served until the
	// set empties. 0 selects the default 0.5; negative disables
	// escalation.
	AllocEscalation float64
	// BDR enables bounded-delay admission control (docs/SCHEDULING.md
	// "Admission"): open requests may carry a (rate, delay) reservation,
	// admitted iff the shard's supply-bound-function feasibility check
	// passes, and shard workers run the fractional-share controller that
	// converts reservations plus measured backlog into per-pass weights
	// and budgets. Off (the default), a reservation-carrying open is
	// rejected and scheduling behaves exactly as without this field.
	BDR bool
	// MachineRate/MachineDelay are the machine root's BDR when BDR is
	// on: the total service rate in rounds per shard-worker tick
	// (default Shards — one dedicated worker per shard) and its delay
	// bound (default 0).
	MachineRate  float64
	MachineDelay float64
	// ShardRate/ShardDelay are each shard's BDR under the machine
	// (defaults MachineRate/Shards and MachineDelay+1). Tenant
	// reservations are admitted against the shard the tenant hashes to:
	// rates must fit the shard's residual rate and delays must strictly
	// exceed ShardDelay.
	ShardRate  float64
	ShardDelay float64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.CkptMode == "" {
		c.CkptMode = "log"
	}
	if c.CkptPaceMin <= 0 {
		c.CkptPaceMin = 1
	}
	if c.CkptPaceMax <= 0 {
		c.CkptPaceMax = 1024
	}
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 16)
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	if c.DefaultQueueCap <= 0 {
		c.DefaultQueueCap = 64
	}
	if c.ConnWindow <= 0 {
		c.ConnWindow = 256
	}
	if c.BDR {
		if c.MachineRate <= 0 {
			c.MachineRate = float64(c.Shards)
		}
		if c.MachineDelay < 0 {
			c.MachineDelay = 0
		}
		if c.ShardRate <= 0 {
			c.ShardRate = c.MachineRate / float64(c.Shards)
		}
		if c.ShardDelay <= c.MachineDelay {
			c.ShardDelay = c.MachineDelay + 1
		}
	}
}

// Server hosts many tenants — each an independent sched.Stream with its
// own policy — behind the wire protocol (see the package comment).
// Round ticks admitted by Submit are applied asynchronously by a
// sharded worker pool; per-tenant checkpoints make every tenant
// recoverable across restarts.
type Server struct {
	cfg   Config
	alloc Allocator // cross-tenant allocation policy (see alloc.go)
	ln    net.Listener

	// tree is the hierarchical BDR reservation tree (machine → shard →
	// tenant) and ctrl the fractional-share controller shard workers
	// consult each pass; both nil unless Config.BDR is set. The tree is
	// guarded by mu (every mutation happens inside tenant-lifecycle
	// critical sections that already hold it).
	tree *bdr.Tree
	ctrl *bdr.Controller

	// clog is the shared group-commit checkpoint log (CkptMode "log");
	// nil in files mode or when durability is off. dura counts the
	// files-mode write traffic so DuraStats has numbers in either mode.
	clog *ckptlog.Log
	dura duraCounters

	mu      sync.Mutex
	tenants map[string]*tenant
	// sorted caches tenantList's ID-ordered snapshot; it is rebuilt on
	// demand and dropped whenever the tenant set changes. Published
	// slices are never mutated, so callers may hold one across the lock.
	sorted []*tenant
	conns  map[net.Conn]struct{}

	draining atomic.Bool

	shards    []*shard
	stopShard chan struct{}
	shardWG   sync.WaitGroup
	connWG    sync.WaitGroup

	stopOnce sync.Once
	stopErr  error
}

// duraCounters tallies files-mode durability traffic (each checkpoint
// write is one append, its own fsync). Log mode reads the equivalent
// numbers from ckptlog.Stats instead.
type duraCounters struct {
	appends atomic.Int64
	bytes   atomic.Int64
	fsyncs  atomic.Int64
}

// shard is one worker's set of tenants. wake is a coalesced
// notification: the worker drains it before scanning, so a poke
// arriving mid-scan is never lost.
type shard struct {
	mu      sync.Mutex
	tenants []*tenant
	wake    chan struct{}
}

func (sh *shard) add(t *tenant) {
	sh.mu.Lock()
	sh.tenants = append(sh.tenants, t)
	sh.mu.Unlock()
}

func (sh *shard) remove(t *tenant) {
	sh.mu.Lock()
	if i := slices.Index(sh.tenants, t); i >= 0 {
		sh.tenants = slices.Delete(sh.tenants, i, i+1)
	}
	sh.mu.Unlock()
}

func (sh *shard) snapshot(dst []*tenant) []*tenant {
	sh.mu.Lock()
	dst = append(dst, sh.tenants...)
	sh.mu.Unlock()
	return dst
}

func (sh *shard) poke() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// NewServer prepares a server: it recovers every tenant found in
// CheckpointDir, binds the listener (so Addr is valid before Serve),
// and starts the shard workers. Call Serve to accept connections.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	alloc, err := NewAllocator(cfg.Allocator, cfg.AllocQuantum, cfg.AllocEscalation)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		alloc:     alloc,
		tenants:   make(map[string]*tenant),
		conns:     make(map[net.Conn]struct{}),
		stopShard: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{wake: make(chan struct{}, 1)})
	}
	if cfg.BDR {
		// One BDR per shard under the machine root; fill() has already
		// defaulted the rates so the split is feasible unless the caller
		// overcommitted it explicitly — which NewTree rejects.
		shardBDRs := make([]bdr.BDR, cfg.Shards)
		for i := range shardBDRs {
			shardBDRs[i] = bdr.BDR{Rate: cfg.ShardRate, Delay: cfg.ShardDelay}
		}
		tree, err := bdr.NewTree(bdr.BDR{Rate: cfg.MachineRate, Delay: cfg.MachineDelay}, shardBDRs)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.tree = tree
		s.ctrl = &bdr.Controller{ShardRate: cfg.ShardRate}
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating checkpoint dir: %w", err)
		}
		switch cfg.CkptMode {
		case "log":
			clog, err := ckptlog.Open(ckptlog.Options{
				Dir:            cfg.CheckpointDir,
				CommitInterval: cfg.CkptCommitInterval,
				SegmentBytes:   int64(cfg.CkptSegmentBytes),
				Logf:           cfg.Logf,
			})
			if err != nil {
				return nil, fmt.Errorf("serve: opening checkpoint log: %w", err)
			}
			s.clog = clog
		case "files":
		default:
			return nil, fmt.Errorf("serve: unknown checkpoint mode %q (want \"log\" or \"files\")", cfg.CkptMode)
		}
		if err := s.recover(); err != nil {
			if s.clog != nil {
				s.clog.Close()
			}
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listening on %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	for _, sh := range s.shards {
		s.shardWG.Add(1)
		go s.shardWorker(sh)
	}
	return s, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// NumTenants reports the number of live tenants. Released migration
// tombstones are not counted — their state lives on another server.
func (s *Server) NumTenants() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tenants {
		if !t.isReleased() {
			n++
		}
	}
	return n
}

// Serve accepts connections until the listener closes. It returns nil
// after Shutdown or Close, and the accept error otherwise.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		// Register and reserve the handler under one lock acquisition,
		// re-checking draining inside it. A connection accepted in the
		// race with stop() is either registered before stop's close
		// sweep runs (the sweep holds the same lock, so it sees and
		// closes it, and connWG.Wait covers its handler) or lands after
		// draining is set and is refused here — never an unclosed
		// connection whose handler outlives Shutdown.
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Shutdown drains gracefully: stop admitting work (in-flight submits
// get ErrDraining), stop the shard workers, flush every tenant's queued
// round ticks, write a final checkpoint per tenant, then close all
// connections. It is the SIGTERM path of cmd/rrserved.
func (s *Server) Shutdown() error { return s.stop(true) }

// Close stops abruptly — no flush, no final checkpoints — leaving only
// the periodic checkpoints on disk. It approximates a crash (the
// fault-injection tests use it); production code wants Shutdown.
func (s *Server) Close() error { return s.stop(false) }

func (s *Server) stop(flush bool) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		close(s.stopShard)
		s.shardWG.Wait()
		if flush {
			for _, t := range s.tenantList() {
				blob, round := t.flush()
				if blob == nil {
					continue
				}
				if err := t.writeCheckpoint(blob, round); err != nil {
					s.logf("%v", err)
					if s.stopErr == nil {
						s.stopErr = err
					}
				}
			}
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		// The log closes only after every connection handler is gone —
		// a handler mid-drain can still append checkpoints. Graceful
		// shutdown commits the tail; Close abandons it unsynced, the
		// crash analogue the fault-injection tests rely on.
		if s.clog != nil {
			if flush {
				if err := s.clog.Close(); err != nil {
					s.logf("serve: closing checkpoint log: %v", err)
					if s.stopErr == nil {
						s.stopErr = err
					}
				}
			} else {
				s.clog.Abort()
			}
		}
	})
	return s.stopErr
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) tenant(id string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[id]
}

// tenantList returns the tenants sorted by ID. The snapshot is cached
// until the tenant set changes — the stats command calls this on every
// request, and re-sorting a big fleet per poll is measurable — and is
// immutable once returned: neither the server nor callers may modify it.
func (s *Server) tenantList() []*tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sorted == nil {
		ts := make([]*tenant, 0, len(s.tenants))
		for _, t := range s.tenants {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
		s.sorted = ts
	}
	return s.sorted
}

func (s *Server) shardFor(id string) *shard { return s.shards[s.shardIndex(id)] }

// shardIndex is the tenant-to-shard hash. The BDR reservation tree is
// indexed by the same value, so a tenant's reservation always lives on
// the shard whose worker serves it.
func (s *Server) shardIndex(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// shardWorker applies admitted round ticks for the shard's tenants: a
// full allocation pass (servePass) on every poke in eager mode, or a
// budgeted pass — one round of budget per backlogged tenant — per
// RoundInterval in paced mode. Which backlogged tenant each round goes
// to is the cross-tenant allocator's decision (alloc.go), not arrival
// order.
func (s *Server) shardWorker(sh *shard) {
	defer s.shardWG.Done()
	var tick <-chan time.Time
	if s.cfg.RoundInterval > 0 {
		tk := time.NewTicker(s.cfg.RoundInterval)
		defer tk.Stop()
		tick = tk.C
	}
	budget := 0 // eager: drain the pass snapshot completely
	if tick != nil {
		budget = -1 // paced: one round per backlogged tenant per interval
	}
	var ps passState
	for {
		if tick != nil {
			select {
			case <-s.stopShard:
				return
			case <-tick:
			}
		} else {
			select {
			case <-s.stopShard:
				return
			case <-sh.wake:
			}
		}
		s.servePass(sh, &ps, budget)
	}
}

// ——— Tenant lifecycle ———

// validTenantID restricts IDs to filename-safe tokens, since durable
// tenants name their metadata and checkpoint files after the ID.
func validTenantID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// newSink sizes a tenant's MetricsSink from its configuration: the wait
// histogram spans the delay-bound range, the depth one a generous
// multiple of what a full queue can hold.
func newSink(cfg sched.StreamConfig) *sched.MetricsSink {
	maxDelay := 1
	for _, d := range cfg.Delays {
		if d > maxDelay {
			maxDelay = d
		}
	}
	return sched.NewMetricsSink(maxDelay, 1024)
}

// maxTenantWeight bounds the per-tenant service weight an open request
// may declare, keeping deficit arithmetic well-conditioned.
const maxTenantWeight = 1 << 20

// attachDurability points a tenant at the server's durability backend:
// the shared group-commit log plus the pacing knobs in log mode, a
// per-tenant .ckpt path plus the files-mode counters otherwise. The
// meta path is per-tenant in both modes. Callers must have checked
// s.cfg.CheckpointDir != "".
func (s *Server) attachDurability(t *tenant) {
	t.metaPath = filepath.Join(s.cfg.CheckpointDir, t.id+".meta")
	t.logf = s.logf
	if s.clog != nil {
		t.clog = s.clog
		t.adaptive = s.cfg.CkptAdaptive
		t.paceMin = s.cfg.CkptPaceMin
		t.paceMax = s.cfg.CkptPaceMax
		return
	}
	t.ckptPath = filepath.Join(s.cfg.CheckpointDir, t.id+".ckpt")
	t.dura = &s.dura
}

// minDelayOf returns the tightest positive delay bound in a tenant's
// menu (≥ 1): the denominator of its delay factor.
func minDelayOf(delays []int) int {
	md := 0
	for _, d := range delays {
		if d > 0 && (md == 0 || d < md) {
			md = d
		}
	}
	return max(md, 1)
}

// matches reports whether an open request names the same configuration
// this tenant runs under, so a client can re-attach idempotently.
func (t *tenant) matches(m *openMsg, defaultCap int) bool {
	qcap := m.QueueCap
	if qcap <= 0 {
		qcap = defaultCap
	}
	speed := m.Speed
	if speed == 0 {
		speed = 1
	}
	return t.spec == m.Policy && t.qcap == qcap && t.weight == max(m.Weight, 1) &&
		t.cfg.N == m.N && t.cfg.Speed == speed && t.cfg.Delta == m.Delta &&
		slices.Equal(t.cfg.Delays, m.Delays) &&
		t.res == (bdr.BDR{Rate: m.ResRate, Delay: m.ResDelay})
}

// open creates a tenant, or re-attaches to a live one with a matching
// configuration.
func (s *Server) open(m *openMsg) (*openResp, *errResp) {
	if m.Version < MinProtocolVersion || m.Version > ProtocolVersion {
		return nil, &errResp{Code: codeBadVersion,
			Msg: fmt.Sprintf("protocol version %d, server speaks %d-%d", m.Version, MinProtocolVersion, ProtocolVersion)}
	}
	if !validTenantID(m.Tenant) {
		return nil, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("invalid tenant ID %q (want 1-64 chars of [A-Za-z0-9_-])", m.Tenant)}
	}
	if m.Weight < 0 || m.Weight > maxTenantWeight {
		return nil, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("invalid tenant weight %d (want 0-%d; 0 selects 1)", m.Weight, maxTenantWeight)}
	}
	res, er := s.checkReservation(m.ResRate, m.ResDelay)
	if er != nil {
		return nil, er
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[m.Tenant]; t != nil {
		// A released tombstone keeps re-opens at bay until the migration
		// settles: forking a fresh stream at sequence 0 here would split
		// the tenant's history across two servers.
		if t.isReleased() {
			return nil, &errResp{Code: codeDraining, Msg: "tenant " + m.Tenant + " is migrating"}
		}
		if !t.matches(m, s.cfg.DefaultQueueCap) {
			return nil, &errResp{Code: codeTenantExists,
				Msg: "tenant " + m.Tenant + " exists with a different configuration"}
		}
		return &openResp{NextSeq: t.nextSeq(), Resumed: true}, nil
	}
	if s.draining.Load() {
		return nil, &errResp{Code: codeDraining, Msg: "server is draining"}
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, &errResp{Code: codeOverloaded,
			Msg: fmt.Sprintf("tenant limit %d reached", s.cfg.MaxTenants)}
	}
	pol, err := NewPolicy(m.Policy)
	if err != nil {
		return nil, &errResp{Code: codeBadPolicy, Msg: err.Error()}
	}
	qcap := m.QueueCap
	if qcap <= 0 {
		qcap = s.cfg.DefaultQueueCap
	}
	cfg := sched.StreamConfig{N: m.N, Speed: m.Speed, Delta: m.Delta, Delays: slices.Clone(m.Delays)}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	sink := newSink(cfg)
	scfg := cfg
	scfg.Probe = sink
	st, err := sched.NewStream(pol, scfg)
	if err != nil {
		return nil, &errResp{Code: codeBadRequest, Msg: err.Error()}
	}
	t := &tenant{
		id: m.Tenant, spec: m.Policy, polName: pol.Name(),
		cfg: cfg, qcap: qcap, st: st, sink: sink,
		weight: max(m.Weight, 1), minDelay: minDelayOf(cfg.Delays),
		res: res,
	}
	shard := s.shardIndex(t.id)
	if !res.IsZero() {
		// The supply-bound-function feasibility check (mu is held, so
		// the admit is atomic with registration): an infeasible
		// reservation is rejected here, before any state is created —
		// nothing is queued, nothing shed.
		if err := s.tree.Admit(shard, t.id, res); err != nil {
			return nil, admissionErrResp(err)
		}
	}
	if s.cfg.CheckpointDir != "" {
		s.attachDurability(t)
		if err := writeMeta(t.metaPath, t.spec, t.qcap, t.weight, res, cfg); err != nil {
			if !res.IsZero() {
				s.tree.Release(shard, t.id)
			}
			return nil, &errResp{Code: codeInternal, Msg: err.Error()}
		}
	}
	s.tenants[t.id] = t
	s.sorted = nil
	s.shards[shard].add(t)
	return &openResp{NextSeq: 0, Resumed: false}, nil
}

// checkReservation validates an open/restore request's optional BDR
// reservation against the server configuration: a reservation on a
// non-BDR server is a bad request (the client asked for a guarantee
// this server cannot enforce), and a malformed one is rejected before
// the admission check.
func (s *Server) checkReservation(rate, delay float64) (bdr.BDR, *errResp) {
	if rate == 0 && delay == 0 {
		return bdr.BDR{}, nil
	}
	if !s.cfg.BDR {
		return bdr.BDR{}, &errResp{Code: codeBadRequest,
			Msg: "tenant reservation requires a BDR-enabled server (rrserved -bdr)"}
	}
	res := bdr.BDR{Rate: rate, Delay: delay}
	if !res.Valid() || res.Rate > 1 {
		return bdr.BDR{}, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("invalid reservation (rate %g, delay %g): want 0 < rate ≤ 1 and delay ≥ 0", rate, delay)}
	}
	return res, nil
}

// admissionErrResp converts a reservation-tree rejection into the
// typed wire error, copying the residual capacity when the failure is
// an infeasibility (as opposed to an internal double-admit).
func admissionErrResp(err error) *errResp {
	er := &errResp{Code: codeAdmission, Msg: err.Error()}
	var inf *bdr.InfeasibleError
	if errors.As(err, &inf) {
		// The client-side AdmissionError re-appends the residuals to its
		// message, so carry only the reason here to avoid stating them
		// twice.
		er.Msg = fmt.Sprintf("bdr: infeasible reservation on shard %d: %s", inf.Shard, inf.Reason)
		er.ResidualRate = inf.ResidualRate
		er.ResidualDelay = inf.MinDelay
	}
	return er
}

// closeTenant drains a tenant fully, removes it and deletes its durable
// files, returning the final Result. The drain and the close happen in
// one tenant-lock critical section (drainAndClose), so a concurrent
// Submit can never be admitted — and acknowledged — after the final
// Result was computed and then silently dropped with the tenant; it is
// either included in the Result or rejected as closed. File removal is
// tombstoned (removeFiles) so a shard worker holding a pre-close
// snapshot blob cannot resurrect durable files a restart would recover.
func (s *Server) closeTenant(id string) (*sched.Result, *errResp) {
	t := s.tenant(id)
	if t == nil {
		return nil, &errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + id}
	}
	if t.isReleased() {
		return nil, &errResp{Code: codeDraining, Msg: "tenant " + id + " is migrating"}
	}
	res, err := t.drainAndClose()
	if err != nil {
		return nil, &errResp{Code: codeInternal, Msg: err.Error()}
	}
	s.mu.Lock()
	delete(s.tenants, id)
	s.sorted = nil
	if s.tree != nil {
		s.tree.Release(s.shardIndex(id), id)
	}
	s.mu.Unlock()
	s.shardFor(id).remove(t)
	t.removeFiles()
	return res, nil
}

// release hands tenant id's state out of this server: flush its queue,
// snapshot, tombstone it (the tenant struct stays in the table answering
// every later command with a retryable draining error), unregister it
// from its shard and delete its durable files. The returned response
// carries everything a restore on the migration target needs.
func (s *Server) release(id string) (*releaseResp, *errResp) {
	t := s.tenant(id)
	if t == nil {
		return nil, &errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + id}
	}
	resp, er := t.release()
	if er != nil {
		return nil, er
	}
	s.shardFor(id).remove(t)
	if s.tree != nil {
		// The reservation leaves with the tenant: the migration target
		// re-admits it from the response's reservation fields, and this
		// shard's residual opens up for new tenants immediately.
		s.mu.Lock()
		s.tree.Release(s.shardIndex(id), id)
		s.mu.Unlock()
	}
	t.removeFiles()
	s.logf("serve: released tenant %s at round %d", id, resp.NextSeq)
	return resp, nil
}

// restore installs a released tenant snapshot on this server: validate
// the declared configuration against the one embedded in the blob,
// rebuild the stream at its snapshotted round, persist metadata plus the
// blob as the tenant's first checkpoint (so a crash right after the
// route flip recovers at the restored round, not at zero), and register
// the tenant. Restoring over a released tombstone is allowed — that is
// how a tenant migrates back — but an open tenant rejects the restore.
func (s *Server) restore(m *restoreMsg) (*restoreResp, *errResp) {
	if m.Version < MinProtocolVersion || m.Version > ProtocolVersion {
		return nil, &errResp{Code: codeBadVersion,
			Msg: fmt.Sprintf("protocol version %d, server speaks %d-%d", m.Version, MinProtocolVersion, ProtocolVersion)}
	}
	if !validTenantID(m.Tenant) {
		return nil, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("invalid tenant ID %q (want 1-64 chars of [A-Za-z0-9_-])", m.Tenant)}
	}
	if m.Weight < 0 || m.Weight > maxTenantWeight {
		return nil, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("invalid tenant weight %d (want 0-%d; 0 selects 1)", m.Weight, maxTenantWeight)}
	}
	res, rer := s.checkReservation(m.ResRate, m.ResDelay)
	if rer != nil {
		return nil, rer
	}
	pol, err := NewPolicy(m.Policy)
	if err != nil {
		return nil, &errResp{Code: codeBadPolicy, Msg: err.Error()}
	}
	cfg := sched.StreamConfig{N: m.N, Speed: m.Speed, Delta: m.Delta, Delays: slices.Clone(m.Delays)}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	// The blob embeds the configuration it was snapshotted under; a
	// mismatch with the declared one proves the blob belongs to some
	// other tenant (or got corrupted in transit) — reject before any
	// state is created.
	pcfg, polName, perr := sched.PeekSnapshot(m.Blob)
	if perr != nil {
		return nil, &errResp{Code: codeBadRequest, Msg: fmt.Sprintf("restore blob: %v", perr)}
	}
	if pcfg.N != cfg.N || pcfg.Speed != cfg.Speed || pcfg.Delta != cfg.Delta || !slices.Equal(pcfg.Delays, cfg.Delays) {
		return nil, &errResp{Code: codeBadRequest,
			Msg: "restore blob configuration does not match the declared configuration"}
	}
	if polName != pol.Name() {
		return nil, &errResp{Code: codeBadRequest,
			Msg: fmt.Sprintf("restore blob policy %q does not match declared policy %q", polName, pol.Name())}
	}
	qcap := m.QueueCap
	if qcap <= 0 {
		qcap = s.cfg.DefaultQueueCap
	}
	sink := newSink(cfg)
	st, err := sched.RestoreStream(pol, m.Blob, sink)
	if err != nil {
		return nil, &errResp{Code: codeBadRequest, Msg: fmt.Sprintf("restore blob: %v", err)}
	}
	t := &tenant{
		id: m.Tenant, spec: m.Policy, polName: pol.Name(),
		cfg: cfg, qcap: qcap, st: st, sink: sink,
		weight: max(m.Weight, 1), minDelay: minDelayOf(cfg.Delays),
		res: res,
	}
	shard := s.shardIndex(t.id)
	s.mu.Lock()
	if old := s.tenants[m.Tenant]; old != nil && !old.isReleased() {
		s.mu.Unlock()
		return nil, &errResp{Code: codeTenantExists, Msg: "tenant " + m.Tenant + " is already open"}
	}
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, &errResp{Code: codeDraining, Msg: "server is draining"}
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		return nil, &errResp{Code: codeOverloaded,
			Msg: fmt.Sprintf("tenant limit %d reached", s.cfg.MaxTenants)}
	}
	if !res.IsZero() {
		// Re-run admission against this server's shard capacity: a
		// migration target honors reservations it can feasibly host and
		// bounces the restore otherwise, so moving a tenant can never
		// overcommit a shard (the proxy surfaces the typed rejection and
		// restores the tenant back on its source).
		if err := s.tree.Admit(shard, t.id, res); err != nil {
			s.mu.Unlock()
			return nil, admissionErrResp(err)
		}
	}
	releaseRes := func() {
		if !res.IsZero() {
			s.tree.Release(shard, t.id)
		}
	}
	if s.cfg.CheckpointDir != "" {
		s.attachDurability(t)
		if err := writeMeta(t.metaPath, t.spec, t.qcap, t.weight, res, cfg); err != nil {
			releaseRes()
			s.mu.Unlock()
			return nil, &errResp{Code: codeInternal, Msg: err.Error()}
		}
		if round := st.Round(); round > 0 {
			if s.clog != nil {
				// A full record shadows any tombstone left by an earlier
				// release of this id; synced immediately because the route
				// flip follows the restore acknowledgement.
				err := s.clog.Append(t.id, ckptlog.KindFull, round, 0, m.Blob)
				if err == nil {
					err = s.clog.Sync()
				}
				if err != nil {
					releaseRes()
					s.mu.Unlock()
					return nil, &errResp{Code: codeInternal, Msg: fmt.Sprintf("serve: tenant %s: logging restore checkpoint: %v", t.id, err)}
				}
			} else if err := trace.SaveCheckpointState(t.ckptPath, m.Blob); err != nil {
				releaseRes()
				s.mu.Unlock()
				return nil, &errResp{Code: codeInternal, Msg: fmt.Sprintf("serve: tenant %s: writing restore checkpoint: %v", t.id, err)}
			}
			t.lastCkpt = round
			t.writtenRound = round
		}
	}
	s.tenants[t.id] = t
	s.sorted = nil
	s.mu.Unlock()
	s.shards[shard].add(t)
	s.logf("serve: restored tenant %s at round %d", t.id, st.Round())
	return &restoreResp{NextSeq: st.Round()}, nil
}

// StartStatsLogger starts a goroutine that logs SchedSummary through
// Config.Logf every interval, joined to the server's worker group: it
// stops — and can no longer log — before Shutdown or Close returns.
// Call it before either; a non-positive interval, a draining server, or
// a nil Logf is a no-op. It is the engine behind rrserved -stats-every.
func (s *Server) StartStatsLogger(every time.Duration) {
	if every <= 0 || s.cfg.Logf == nil || s.draining.Load() {
		return
	}
	s.shardWG.Add(1)
	go func() {
		defer s.shardWG.Done()
		tk := time.NewTicker(every)
		defer tk.Stop()
		for {
			select {
			case <-s.stopShard:
				return
			case <-tk.C:
				s.logf("%s", s.SchedSummary())
			}
		}
	}()
}

// ——— Durable tenant metadata and recovery ———

// metaVersion 2 appended the tenant weight; version 3 the BDR
// reservation. Older files (no weight, implicitly 1; no reservation,
// implicitly none) are still read so an upgrade restarts cleanly over
// an old checkpoint directory.
const metaVersion = 3

// writeMeta persists the open-time facts a checkpoint blob does not
// carry — the policy spec string, queue cap, service weight and BDR
// reservation — plus the stream configuration, so a restart can
// rebuild a tenant that crashed before its first checkpoint. The
// payload rides in the same CRC-checked container as checkpoints,
// written atomically.
func writeMeta(path, spec string, qcap, weight int, res bdr.BDR, cfg sched.StreamConfig) error {
	e := snap.NewEncoder()
	e.Int(metaVersion)
	e.String(spec)
	e.Int(qcap)
	e.Int(cfg.N)
	e.Int(cfg.Speed)
	e.Int(cfg.Delta)
	e.Ints(cfg.Delays)
	e.Int(weight)
	e.Float64(res.Rate)
	e.Float64(res.Delay)
	if err := trace.SaveCheckpointState(path, e.Bytes()); err != nil {
		return fmt.Errorf("serve: writing tenant metadata: %w", err)
	}
	return nil
}

func readMeta(path string) (spec string, qcap, weight int, res bdr.BDR, cfg sched.StreamConfig, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, 0, res, cfg, err
	}
	defer f.Close()
	payload, err := trace.ReadCheckpoint(f)
	if err != nil {
		return "", 0, 0, res, cfg, fmt.Errorf("serve: reading tenant metadata %s: %w", path, err)
	}
	d := snap.NewDecoder(payload)
	v := d.Int()
	if d.Err() == nil && (v < 1 || v > metaVersion) {
		return "", 0, 0, res, cfg, fmt.Errorf("serve: tenant metadata %s: version %d, this build reads 1-%d", path, v, metaVersion)
	}
	spec = d.String()
	qcap = d.Int()
	cfg.N = d.Int()
	cfg.Speed = d.Int()
	cfg.Delta = d.Int()
	cfg.Delays = d.Ints()
	weight = 1
	if v >= 2 {
		weight = d.Int()
	}
	if v >= 3 {
		res.Rate = d.Float64()
		res.Delay = d.Float64()
	}
	if err := d.Done(); err != nil {
		return "", 0, 0, res, cfg, fmt.Errorf("serve: tenant metadata %s: %w", path, err)
	}
	return spec, qcap, weight, res, cfg, nil
}

// recover rebuilds every tenant whose metadata file survives in the
// checkpoint directory: from its checkpoint when one exists, or fresh
// at round 0 when the process died before the first checkpoint. A
// corrupt file fails recovery loudly — silently dropping a tenant would
// lose its stream.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		return fmt.Errorf("serve: scanning checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".meta") {
			continue
		}
		id := strings.TrimSuffix(name, ".meta")
		t, err := s.recoverTenant(id)
		if err != nil {
			return err
		}
		s.tenants[id] = t
		s.sorted = nil
		s.shardFor(id).add(t)
		s.logf("serve: recovered tenant %s at round %d", id, t.st.Round())
	}
	return nil
}

func (s *Server) recoverTenant(id string) (*tenant, error) {
	metaPath := filepath.Join(s.cfg.CheckpointDir, id+".meta")
	spec, qcap, weight, res, cfg, err := readMeta(metaPath)
	if err != nil {
		return nil, err
	}
	pol, err := NewPolicy(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: recovering tenant %s: %w", id, err)
	}
	if !res.IsZero() {
		// Re-admit the durable reservation. Failure is loud: it means
		// the server was restarted with a smaller BDR capacity (or with
		// -bdr off) than its recovered tenants were promised, and
		// silently hosting them unreserved would break the guarantee.
		if !s.cfg.BDR {
			return nil, fmt.Errorf("serve: tenant %s holds a BDR reservation (rate %g, delay %g) but the server runs without -bdr",
				id, res.Rate, res.Delay)
		}
		if aerr := s.tree.Admit(s.shardIndex(id), id, res); aerr != nil {
			return nil, fmt.Errorf("serve: recovering tenant %s: %w", id, aerr)
		}
	}
	sink := newSink(cfg)
	t := &tenant{
		id: id, spec: spec, polName: pol.Name(),
		cfg: cfg, qcap: qcap, sink: sink,
		weight: max(weight, 1), minDelay: minDelayOf(cfg.Delays),
		res: res,
	}
	s.attachDurability(t)

	// Find the newest checkpoint blob in whichever backend is active. A
	// missing blob (process died before the first checkpoint, or the
	// log holds only a tombstone) recovers the tenant fresh at round 0
	// — the metadata file is the record of its existence.
	var blob []byte
	logRound := -1
	if s.clog != nil {
		b, r, ok, lerr := s.clog.Latest(id)
		if lerr != nil {
			return nil, fmt.Errorf("serve: tenant %s: checkpoint log: %w", id, lerr)
		}
		if ok {
			blob, logRound = b, r
		}
	} else {
		f, oerr := os.Open(t.ckptPath)
		switch {
		case oerr == nil:
			b, rerr := trace.ReadCheckpoint(f)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("serve: tenant %s: %w", id, rerr)
			}
			blob = b
		case os.IsNotExist(oerr):
		default:
			return nil, fmt.Errorf("serve: tenant %s: opening checkpoint: %w", id, oerr)
		}
	}
	if blob != nil {
		// Cheap cross-check before the full restore: the checkpoint must
		// have been taken under the configuration the metadata records.
		pcfg, _, perr := sched.PeekSnapshot(blob)
		if perr != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", id, perr)
		}
		if pcfg.N != cfg.N || pcfg.Speed != cfg.Speed || pcfg.Delta != cfg.Delta || !slices.Equal(pcfg.Delays, cfg.Delays) {
			return nil, fmt.Errorf("serve: tenant %s: checkpoint configuration does not match metadata", id)
		}
		t.st, err = sched.RestoreStream(pol, blob, sink)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", id, err)
		}
		if logRound >= 0 && logRound != t.st.Round() {
			return nil, fmt.Errorf("serve: tenant %s: checkpoint log records round %d but the blob restores at round %d", id, logRound, t.st.Round())
		}
		t.lastCkpt = t.st.Round()
		t.writtenRound = t.st.Round()
	} else {
		scfg := cfg
		scfg.Probe = sink
		t.st, err = sched.NewStream(pol, scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", id, err)
		}
	}
	return t, nil
}

// ——— Request processing ———

// connState is the per-connection scratch reused across frames so a
// steady-state submit loop does not allocate per request.
type connState struct {
	sub   submitMsg
	batch batchMsg
}

// connWriter drains a connection's staged responses onto the wire,
// flushing only when the queue runs dry — so a pipelining client's K
// responses coalesce into one Flush (and often one syscall) instead of
// K. Written buffers are recycled through free back to the reader.
// Exits on the first write error or when resp closes (reader gone).
func connWriter(bw *bufio.Writer, resp <-chan []byte, free chan<- []byte) {
	for body := range resp {
		err := writeFrame(bw, body)
		select {
		case free <- body:
		default:
		}
		if err != nil {
			return
		}
		if len(resp) == 0 {
			if bw.Flush() != nil {
				return
			}
		}
	}
	bw.Flush()
}

// handleConn runs one connection: a reader loop (this goroutine)
// decoding and processing frames in arrival order, and a writer
// goroutine flushing staged responses with coalescing. Processing stays
// in the reader, so requests on one connection are still applied in the
// order they were sent — which is what lets a pipelined submit window
// carry strictly increasing sequence numbers — while the bounded
// response queue lets up to ConnWindow requests be in flight before
// backpressure stops the reader.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	resp := make(chan []byte, s.cfg.ConnWindow)
	free := make(chan []byte, s.cfg.ConnWindow)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		connWriter(bw, resp, free)
	}()
	defer func() {
		// Let the writer drain what is staged (a poisoned request's
		// error response must still reach the peer), but bound how long
		// a wedged peer can hold the handler, then tear down.
		close(resp)
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		<-writerDone
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	enc := snap.NewEncoder()
	var cs connState
	var buf []byte
	for {
		var err error
		buf, err = readFrame(br, buf)
		if err != nil {
			return // clean EOF or framing error; either way the conn is done
		}
		enc.Reset()
		closeAfter := s.process(buf, &cs, enc)
		var out []byte
		select {
		case out = <-free:
		default:
		}
		out = append(out[:0], enc.Bytes()...)
		select {
		case resp <- out:
		case <-writerDone: // writer hit a write error; conn is dead
			return
		}
		if closeAfter {
			return
		}
	}
}

// process handles one request frame, encoding the response into enc. It
// reports whether the connection must close (a protocol violation, as
// opposed to a well-formed request the server rejects). A msgTagged
// envelope is unwrapped here and its tag echoed onto the response, so
// every handler below is tag-agnostic. It never panics, whatever the
// bytes — pinned by FuzzFrameDecode.
func (s *Server) process(body []byte, cs *connState, enc *snap.Encoder) (closeConn bool) {
	d := snap.NewDecoder(body)
	var tag uint64
	tagged := false
	bad := func(msg string) bool {
		enc.Reset()
		if tagged {
			enc.Uint64(msgTagged)
			enc.Uint64(tag)
		}
		(&errResp{Code: codeBadRequest, Msg: msg}).encode(enc)
		return true
	}
	typ := d.Uint64()
	if d.Err() != nil {
		return bad("truncated message type")
	}
	if typ == msgTagged {
		tag = d.Uint64()
		if d.Err() != nil {
			return bad("truncated request tag")
		}
		tagged = true
		enc.Uint64(msgTagged)
		enc.Uint64(tag)
		typ = d.Uint64()
		if d.Err() != nil {
			return bad("truncated message type")
		}
		if typ == msgTagged {
			return bad("nested tagged envelope")
		}
	}
	switch typ {
	case msgOpen:
		var m openMsg
		m.decode(d)
		if d.Done() != nil {
			return bad("malformed open")
		}
		resp, er := s.open(&m)
		if er != nil {
			er.encode(enc)
		} else {
			resp.encode(enc)
		}
	case msgSubmit:
		cs.sub.decode(d)
		if d.Done() != nil {
			return bad("malformed submit")
		}
		t := s.tenant(cs.sub.Tenant)
		if t == nil {
			(&errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + cs.sub.Tenant}).encode(enc)
			return false
		}
		round, depth, er := t.submit(cs.sub.Seq, cs.sub.Arrivals, s.draining.Load())
		if er != nil {
			er.encode(enc)
			return false
		}
		s.shardFor(cs.sub.Tenant).poke()
		(&submitResp{Round: round, QueueDepth: depth}).encode(enc)
	case msgSubmitBatch:
		cs.batch.decode(d)
		if d.Done() != nil {
			// Atomic rejection: the batch was not admitted round by round
			// as it decoded, so a malformed tail cannot leave a partial
			// sequence advance behind.
			return bad("malformed submit batch")
		}
		t := s.tenant(cs.batch.Tenant)
		if t == nil {
			(&errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + cs.batch.Tenant}).encode(enc)
			return false
		}
		admitted, round, depth, er := t.submitBatch(cs.batch.Seq, cs.batch.Ticks, s.draining.Load())
		if admitted > 0 {
			s.shardFor(cs.batch.Tenant).poke()
		}
		(&batchResp{Admitted: admitted, Round: round, QueueDepth: depth, Err: er}).encode(enc)
	case msgStats, msgStatsEx:
		var m tenantMsg
		m.decode(d)
		if d.Done() != nil {
			return bad("malformed stats request")
		}
		rows, er := s.statsRows(m.Tenant)
		if er != nil {
			er.encode(enc)
			return false
		}
		if typ == msgStatsEx {
			s.fillServiceShares(rows, m.Tenant == "")
			encodeStatsRespEx(enc, rows)
		} else {
			encodeStatsResp(enc, rows)
		}
	case msgResult, msgDrain, msgCloseTenant, msgSnapshot:
		var m tenantMsg
		m.decode(d)
		if d.Done() != nil {
			return bad("malformed tenant command")
		}
		s.tenantCommand(typ, m.Tenant, enc)
	case msgPing:
		if d.Done() != nil {
			return bad("malformed ping")
		}
		enc.Uint64(msgPing)
		enc.Bool(s.draining.Load())
		enc.Int(s.NumTenants())
	case msgDuraStats:
		if d.Done() != nil {
			return bad("malformed durability stats request")
		}
		st := s.DuraStats()
		st.encode(enc)
	case msgRestore:
		var m restoreMsg
		m.decode(d)
		if d.Done() != nil {
			return bad("malformed restore")
		}
		resp, er := s.restore(&m)
		if er != nil {
			er.encode(enc)
		} else {
			resp.encode(enc)
		}
	case msgRelease:
		var m tenantMsg
		m.decode(d)
		if d.Done() != nil {
			return bad("malformed release")
		}
		resp, er := s.release(m.Tenant)
		if er != nil {
			er.encode(enc)
		} else {
			resp.encode(enc)
		}
	default:
		return bad(fmt.Sprintf("unknown message type %d", typ))
	}
	return false
}

// statsRows builds the stats rows for one tenant (id non-empty) or all.
// Released migration tombstones are skipped — their live row belongs to
// the server the tenant migrated to.
func (s *Server) statsRows(id string) ([]TenantStats, *errResp) {
	if id != "" {
		t := s.tenant(id)
		if t == nil {
			return nil, &errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + id}
		}
		if t.isReleased() {
			return nil, &errResp{Code: codeDraining, Msg: "tenant " + id + " is migrating"}
		}
		return []TenantStats{t.stats()}, nil
	}
	var rows []TenantStats
	for _, t := range s.tenantList() {
		if t.isReleased() {
			continue
		}
		rows = append(rows, t.stats())
	}
	return rows, nil
}

// fillServiceShares computes each row's ServiceShare — its fraction of
// every round tick the server has applied — against the live all-tenant
// total, so even a single-tenant row reports its server-wide share.
// allRows says rows already covers every tenant, letting the total come
// from the rows themselves instead of a second locked walk.
func (s *Server) fillServiceShares(rows []TenantStats, allRows bool) {
	var total float64
	if allRows {
		for i := range rows {
			total += float64(rows[i].ServedRounds)
		}
	} else {
		for _, t := range s.tenantList() {
			total += float64(t.servedRounds())
		}
	}
	if total == 0 {
		return
	}
	for i := range rows {
		rows[i].ServiceShare = float64(rows[i].ServedRounds) / total
	}
}

// DuraStats reports the durability backend's cumulative counters: the
// group-commit log's in log mode, the per-file write tallies in files
// mode, zeros (Mode "off") when durability is disabled.
func (s *Server) DuraStats() DuraStats {
	switch {
	case s.clog != nil:
		ls := s.clog.Stats()
		return DuraStats{
			Mode:        "log",
			Appends:     ls.Appends,
			Bytes:       ls.Bytes,
			Fsyncs:      ls.Fsyncs,
			Deltas:      ls.Deltas,
			Rotations:   ls.Rotations,
			Compactions: ls.Compactions,
			Segments:    int64(ls.Segments),
		}
	case s.cfg.CheckpointDir != "":
		return DuraStats{
			Mode:    "files",
			Appends: s.dura.appends.Load(),
			Bytes:   s.dura.bytes.Load(),
			Fsyncs:  s.dura.fsyncs.Load(),
		}
	default:
		return DuraStats{Mode: "off"}
	}
}

// SchedSummary returns a one-line cross-tenant scheduling summary —
// allocator, tenant count, aggregate backlog, and the worst live and
// high-water delay factors with the tenants holding them — for periodic
// operational logging (rrserved -stats-every).
func (s *Server) SchedSummary() string {
	rows, _ := s.statsRows("")
	var backlog int64
	var worst, worstHi float64
	worstID, worstHiID := "-", "-"
	for _, r := range rows {
		backlog += int64(r.QueueDepth)
		if worstID == "-" || r.DelayFactor > worst {
			worst, worstID = r.DelayFactor, r.ID
		}
		if worstHiID == "-" || r.MaxDelayFactor > worstHi {
			worstHi, worstHiID = r.MaxDelayFactor, r.ID
		}
	}
	return fmt.Sprintf("sched: alloc=%s tenants=%d backlog=%d worst_df=%.3f(%s) max_df=%.3f(%s)",
		s.alloc.Name(), len(rows), backlog, worst, worstID, worstHi, worstHiID)
}

// tenantCommand executes the single-tenant commands that share the
// tenantMsg request shape.
func (s *Server) tenantCommand(typ uint64, id string, enc *snap.Encoder) {
	if typ == msgCloseTenant {
		res, er := s.closeTenant(id)
		if er != nil {
			er.encode(enc)
		} else {
			encodeResult(enc, msgCloseTenant, res)
		}
		return
	}
	t := s.tenant(id)
	if t == nil {
		(&errResp{Code: codeUnknownTenant, Msg: "unknown tenant " + id}).encode(enc)
		return
	}
	if t.isReleased() {
		(&errResp{Code: codeDraining, Msg: "tenant " + id + " is migrating"}).encode(enc)
		return
	}
	switch typ {
	case msgResult:
		res, err := t.result()
		if err != nil {
			(&errResp{Code: codeInternal, Msg: err.Error()}).encode(enc)
			return
		}
		encodeResult(enc, msgResult, res)
	case msgDrain:
		res, blob, round, err := t.drainStream()
		if err != nil {
			(&errResp{Code: codeInternal, Msg: err.Error()}).encode(enc)
			return
		}
		if blob != nil {
			if werr := t.writeCheckpoint(blob, round); werr != nil {
				s.logf("%v", werr)
			}
		} else if s.clog != nil {
			// Log mode: the drain's final checkpoint was appended inside
			// drainStream; sync it so a drain acknowledgement means the
			// drained state is durable, exactly as the files-mode write
			// (with its per-file fsync) guarantees.
			if werr := s.clog.Sync(); werr != nil {
				s.logf("serve: tenant %s: syncing drain checkpoint: %v", id, werr)
			}
		}
		encodeResult(enc, msgDrain, res)
	case msgSnapshot:
		blob, err := t.snapshot()
		if err != nil {
			(&errResp{Code: codeInternal, Msg: err.Error()}).encode(enc)
			return
		}
		enc.Uint64(msgSnapshot)
		enc.Blob(blob)
	}
}
