package serve

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sched"
	"repro/internal/snap"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{7}, 1000)}
	for _, b := range bodies {
		if err := writeFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
		scratch = got
	}
	if _, err := readFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := writeFrame(io.Discard, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("writeFrame accepted an oversized body")
	}
	hdr := []byte{0xff, 0xff, 0xff, 0xff} // length 2^32-1
	if _, err := readFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("readFrame accepted an oversized length prefix")
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := readFrame(bytes.NewReader(full[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestSubmitMsgRoundTrip(t *testing.T) {
	e := snap.NewEncoder()
	in := submitMsg{
		Tenant: "t1", Seq: 42,
		Arrivals: sched.Request{{Color: 3, Count: 7}, {Color: 0, Count: 1}},
	}
	in.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgSubmit {
		t.Fatalf("type = %d", typ)
	}
	var out submitMsg
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != in.Tenant || out.Seq != in.Seq || len(out.Arrivals) != 2 ||
		out.Arrivals[0] != in.Arrivals[0] || out.Arrivals[1] != in.Arrivals[1] {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestBatchMsgRoundTrip(t *testing.T) {
	e := snap.NewEncoder()
	in := batchMsg{
		Tenant: "t1", Seq: 42,
		Ticks: []sched.Request{
			{{Color: 3, Count: 7}, {Color: 0, Count: 1}},
			nil, // an empty round tick is a legal batch entry
			{{Color: 5, Count: 2}},
		},
	}
	in.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgSubmitBatch {
		t.Fatalf("type = %d", typ)
	}
	var out batchMsg
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != in.Tenant || out.Seq != in.Seq || len(out.Ticks) != 3 {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.Ticks {
		if len(out.Ticks[i]) != len(in.Ticks[i]) {
			t.Fatalf("tick %d = %+v, want %+v", i, out.Ticks[i], in.Ticks[i])
		}
		for j := range in.Ticks[i] {
			if out.Ticks[i][j] != in.Ticks[i][j] {
				t.Fatalf("tick %d = %+v, want %+v", i, out.Ticks[i], in.Ticks[i])
			}
		}
	}
	// A decoded batch reuses its backing arrays across frames; a second
	// decode with fewer ticks must not leak the first frame's tail.
	e.Reset()
	(&batchMsg{Tenant: "t1", Seq: 45, Ticks: []sched.Request{{{Color: 1, Count: 1}}}}).encode(e)
	d = snap.NewDecoder(e.Bytes())
	d.Uint64()
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(out.Ticks) != 1 || len(out.Ticks[0]) != 1 || out.Ticks[0][0] != (sched.Batch{Color: 1, Count: 1}) {
		t.Fatalf("reused decode: %+v", out.Ticks)
	}
}

func TestBatchMsgRejectsHostileCount(t *testing.T) {
	e := snap.NewEncoder()
	e.Uint64(msgSubmitBatch)
	e.String("t1")
	e.Int(0)
	e.Int(MaxBatch + 1) // claims more rounds than any frame may carry
	d := snap.NewDecoder(e.Bytes())
	d.Uint64()
	var out batchMsg
	out.decode(d)
	if d.Err() == nil {
		t.Fatal("decode accepted a batch count past MaxBatch")
	}
}

func TestBatchRespRoundTrip(t *testing.T) {
	for _, in := range []batchResp{
		{Admitted: 16, Round: 99, QueueDepth: 3},
		{Admitted: 4, Round: 7, QueueDepth: 4, Err: &errResp{Code: codeBadSeq, Expected: 11, Msg: "bad round sequence"}},
	} {
		e := snap.NewEncoder()
		in.encode(e)
		d := snap.NewDecoder(e.Bytes())
		if typ := d.Uint64(); typ != msgSubmitBatch {
			t.Fatalf("type = %d", typ)
		}
		var out batchResp
		out.decode(d)
		if err := d.Done(); err != nil {
			t.Fatal(err)
		}
		if out.Admitted != in.Admitted || out.Round != in.Round || out.QueueDepth != in.QueueDepth {
			t.Fatalf("round trip: %+v, want %+v", out, in)
		}
		if (out.Err == nil) != (in.Err == nil) {
			t.Fatalf("round trip err: %+v, want %+v", out.Err, in.Err)
		}
		if in.Err != nil && *out.Err != *in.Err {
			t.Fatalf("round trip err: %+v, want %+v", *out.Err, *in.Err)
		}
	}
}

func TestStatsRespRoundTrip(t *testing.T) {
	rows := []TenantStats{
		{ID: "a", Policy: "ΔLRU-EDF", Round: 9, NextSeq: 11, Pending: 3, QueueDepth: 2,
			QueueCap: 64, Executed: 100, Dropped: 4, Reconfigs: 7, CostReconfig: 28,
			CostDrop: 4, MaxPending: 12, Overloads: 1, BadSeqs: 2, Checkpoints: 3},
		{ID: "b"},
	}
	e := snap.NewEncoder()
	encodeStatsResp(e, rows)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgStats {
		t.Fatalf("type = %d", typ)
	}
	got := decodeStatsResp(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != rows[0] || got[1] != rows[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &sched.Result{
		Policy: "EDF", Cost: sched.Cost{Reconfig: 12, Drop: 5},
		Executed: 40, Dropped: 5, Reconfigs: 3, Rounds: 17,
		DropsByColor: []int{1, 4}, ExecByColor: []int{20, 20},
	}
	e := snap.NewEncoder()
	encodeResult(e, msgDrain, in)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgDrain {
		t.Fatalf("type = %d", typ)
	}
	out := decodeResult(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(in, out) {
		t.Fatalf("round trip: %+v", out)
	}
}

// The steady-state ingest path must not allocate per frame: encoding a
// submit into a reused encoder and decoding it into a reused submitMsg
// both reach zero allocations, which is what keeps a tenant's submit
// loop allocation-free on the server.
func TestSubmitCodecSteadyStateAllocs(t *testing.T) {
	e := snap.NewEncoder()
	req := sched.Request{{Color: 3, Count: 7}, {Color: 0, Count: 1}, {Color: 5, Count: 2}}
	msg := submitMsg{Tenant: "tenant-0", Seq: 0, Arrivals: req}
	var dec submitMsg
	// Warm: the decoder grows its arrivals buffer once.
	e.Reset()
	msg.encode(e)
	dec.decode(snap.NewDecoder(e.Bytes()))

	allocs := testing.AllocsPerRun(200, func() {
		msg.Seq++
		e.Reset()
		msg.encode(e)
		d := snap.NewDecoder(e.Bytes())
		d.Uint64()
		dec.decode(d)
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
	})
	if allocs != 0 {
		t.Fatalf("submit encode+decode allocates %.1f per frame", allocs)
	}
}

// TestOpenMsgV6RoundTrip pins the protocol-v6 reservation extension: a
// reserved open round-trips its (rate, delay) pair, and an unreserved
// v6 open encodes byte-identically to the v5 shape (the optional pair
// is simply absent), so pre-v6 peers keep decoding it unchanged.
func TestOpenMsgV6RoundTrip(t *testing.T) {
	in := openMsg{Version: ProtocolVersion, Tenant: "t1", Policy: "edf",
		N: 4, Speed: 1, Delta: 4, QueueCap: 32, Delays: []int{2, 6}, Weight: 2,
		ResRate: 0.25, ResDelay: 16}
	e := snap.NewEncoder()
	in.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgOpen {
		t.Fatalf("type = %d", typ)
	}
	var out openMsg
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if out.ResRate != 0.25 || out.ResDelay != 16 || out.Weight != 2 {
		t.Fatalf("round trip: %+v", out)
	}

	// Unreserved: byte-identical to the same message with the pair
	// hand-encoded absent (the v5 shape).
	in.ResRate, in.ResDelay = 0, 0
	e.Reset()
	in.encode(e)
	v6 := append([]byte(nil), e.Bytes()...)
	e.Reset()
	e.Uint64(msgOpen)
	e.Int(in.Version)
	e.String(in.Tenant)
	e.String(in.Policy)
	e.Int(in.N)
	e.Int(in.Speed)
	e.Int(in.Delta)
	e.Int(in.QueueCap)
	e.Ints(in.Delays)
	e.Int(in.Weight)
	if !bytes.Equal(v6, e.Bytes()) {
		t.Fatalf("unreserved v6 open differs from the v5 encoding:\n v6 %x\n v5 %x", v6, e.Bytes())
	}
}

// TestMigrationV6RoundTrip pins the reservation pair through the
// migration codecs: releaseResp hands it out after the blob, restoreMsg
// re-declares it, and the unreserved encodings stay v5-shaped.
func TestMigrationV6RoundTrip(t *testing.T) {
	rel := releaseResp{Policy: "edf", N: 4, Speed: 1, Delta: 4, QueueCap: 32,
		Delays: []int{2, 6}, Weight: 1, NextSeq: 9, Blob: []byte{1, 2, 3},
		ResRate: 0.5, ResDelay: 24}
	e := snap.NewEncoder()
	rel.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgRelease {
		t.Fatalf("type = %d", typ)
	}
	var relOut releaseResp
	relOut.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if relOut.ResRate != 0.5 || relOut.ResDelay != 24 || !bytes.Equal(relOut.Blob, rel.Blob) {
		t.Fatalf("release round trip: %+v", relOut)
	}

	res := restoreMsg{Version: ProtocolVersion, Tenant: "t1", Policy: "edf",
		N: 4, Speed: 1, Delta: 4, QueueCap: 32, Delays: []int{2, 6}, Weight: 1,
		Blob: []byte{4, 5}, ResRate: 0.5, ResDelay: 24}
	e.Reset()
	res.encode(e)
	d = snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgRestore {
		t.Fatalf("type = %d", typ)
	}
	var resOut restoreMsg
	resOut.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if resOut.ResRate != 0.5 || resOut.ResDelay != 24 || !bytes.Equal(resOut.Blob, res.Blob) {
		t.Fatalf("restore round trip: %+v", resOut)
	}

	// Unreserved messages must end at the blob, exactly as in v5.
	rel.ResRate, rel.ResDelay = 0, 0
	e.Reset()
	rel.encode(e)
	d = snap.NewDecoder(e.Bytes())
	d.Uint64()
	relOut = releaseResp{}
	relOut.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if relOut.ResRate != 0 || relOut.ResDelay != 0 {
		t.Fatalf("unreserved release round trip: %+v", relOut)
	}
}

// TestErrRespAdmissionRoundTrip: the residual-capacity pair rides only
// on codeAdmission responses, so every other error code keeps its exact
// pre-v6 encoding (old clients decode those with a strict Done()).
func TestErrRespAdmissionRoundTrip(t *testing.T) {
	in := errResp{Code: codeAdmission, Msg: "shard full", ResidualRate: 0.375, ResidualDelay: 2}
	e := snap.NewEncoder()
	in.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgErr {
		t.Fatalf("type = %d", typ)
	}
	var out errResp
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v, want %+v", out, in)
	}

	// A non-admission error must not grow the residual fields.
	plain := errResp{Code: codeBadSeq, Expected: 7, Msg: "bad seq"}
	e.Reset()
	plain.encode(e)
	withRes := errResp{Code: codeBadSeq, Expected: 7, Msg: "bad seq", ResidualRate: 1}
	e2 := snap.NewEncoder()
	withRes.encode(e2)
	if !bytes.Equal(e.Bytes(), e2.Bytes()) {
		t.Fatal("non-admission errResp encoding depends on residual fields")
	}
}

// TestDuraStatsBackendsRoundTrip pins the proxy fan-out rows: a
// response with per-backend rows round-trips them labelled, and a
// row-less response stays byte-identical to the v5 encoding.
func TestDuraStatsBackendsRoundTrip(t *testing.T) {
	in := DuraStats{Mode: "mixed", Appends: 10, Bytes: 1000, Fsyncs: 3,
		Deltas: 2, Rotations: 1, Compactions: 1, Segments: 2,
		Backends: []BackendDuraStats{
			{Addr: "127.0.0.1:1", DuraStats: DuraStats{Mode: "log", Appends: 6, Bytes: 600, Fsyncs: 2, Deltas: 2, Rotations: 1, Compactions: 1, Segments: 1}},
			{Addr: "127.0.0.1:2", DuraStats: DuraStats{Mode: "files", Appends: 4, Bytes: 400, Fsyncs: 1, Segments: 1}},
		}}
	e := snap.NewEncoder()
	in.encode(e)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgDuraStats {
		t.Fatalf("type = %d", typ)
	}
	var out DuraStats
	out.decode(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "mixed" || out.Appends != 10 || len(out.Backends) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
	if out.Backends[0].Addr != "127.0.0.1:1" || out.Backends[0].Appends != 6 ||
		out.Backends[1].Addr != "127.0.0.1:2" || out.Backends[1].Mode != "files" {
		t.Fatalf("backend rows: %+v", out.Backends)
	}

	// Row-less: byte-identical to the v5 shape (no trailing count).
	in.Backends = nil
	e.Reset()
	in.encode(e)
	v6 := append([]byte(nil), e.Bytes()...)
	e.Reset()
	e.Uint64(msgDuraStats)
	e.String(in.Mode)
	e.Int64(in.Appends)
	e.Int64(in.Bytes)
	e.Int64(in.Fsyncs)
	e.Int64(in.Deltas)
	e.Int64(in.Rotations)
	e.Int64(in.Compactions)
	e.Int64(in.Segments)
	if !bytes.Equal(v6, e.Bytes()) {
		t.Fatalf("row-less v6 DuraStats differs from the v5 encoding:\n v6 %x\n v5 %x", v6, e.Bytes())
	}
}
