package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/snap"
)

func TestNewAllocator(t *testing.T) {
	a, err := NewAllocator("", 0, 0)
	if err != nil || a.Name() != DefaultAllocator {
		t.Fatalf("NewAllocator(\"\") = (%v, %v), want the default %q", a, err, DefaultAllocator)
	}
	w := a.(*wdrrAllocator)
	if w.quantum != 8 || w.escalation != 0.5 {
		t.Fatalf("defaults = (quantum %d, escalation %v), want (8, 0.5)", w.quantum, w.escalation)
	}
	if a, err = NewAllocator("fifo", 0, 0); err != nil || a.Name() != "fifo" {
		t.Fatalf("NewAllocator(fifo) = (%v, %v)", a, err)
	}
	if _, err = NewAllocator("lifo", 0, 0); err == nil {
		t.Fatal("NewAllocator accepted an unknown spec")
	}
	// A server config with a bad spec must fail construction, not serve.
	if _, err = NewServer(Config{Addr: "127.0.0.1:0", Allocator: "lifo"}); err == nil {
		t.Fatal("NewServer accepted an unknown allocator")
	}
}

func TestWDRRPick(t *testing.T) {
	a := &wdrrAllocator{quantum: 8, escalation: 0.5}

	// Nobody escalated: the largest deficit wins, ties to the lowest index.
	loads := []TenantLoad{
		{Queued: 1, MinDelay: 8, Weight: 1, Deficit: 2},
		{Queued: 1, MinDelay: 8, Weight: 1, Deficit: 5},
		{Queued: 1, MinDelay: 8, Weight: 1, Deficit: 5},
	}
	if got := a.Pick(loads); got != 1 {
		t.Fatalf("Pick = %d, want 1 (largest deficit, lowest index)", got)
	}

	// One tenant past the escalation threshold restricts service to the
	// escalated set even when an unescalated tenant is owed more.
	loads = []TenantLoad{
		{Queued: 1, MinDelay: 8, Weight: 1, Deficit: 100},
		{Queued: 6, MinDelay: 8, Weight: 1, Deficit: -3},
	}
	if got := a.Pick(loads); got != 1 {
		t.Fatalf("Pick = %d, want the escalated tenant 1", got)
	}

	// escalation < 0 disables the priority set: deficit rules alone.
	noesc := &wdrrAllocator{quantum: 8, escalation: -1}
	if got := noesc.Pick(loads); got != 0 {
		t.Fatalf("Pick (escalation off) = %d, want 0", got)
	}

	// The quantum scales with weight.
	if q := a.Quantum(TenantLoad{Weight: 3}); q != 24 {
		t.Fatalf("Quantum(weight 3) = %d, want 24", q)
	}
	if q := a.Quantum(TenantLoad{Weight: 0}); q != 8 {
		t.Fatalf("Quantum(weight 0) = %d, want 8", q)
	}

	// fifo always drains the first backlogged tenant completely.
	f := fifoAllocator{}
	if f.Pick(loads) != 0 || f.Quantum(loads[0]) != 0 {
		t.Fatal("fifo must pick index 0 with an unlimited quantum")
	}
}

// runStarvation replays one deterministic starved schedule against a
// server using the named allocator and reports the worst victim
// delay-factor high-water mark. A hot tenant opened first (scan index
// 0) holds a standing backlog; each simulated tick the victims submit
// one round apiece and the test drives one paced allocation pass
// (budget -1 = one round per backlogged tenant), exactly what the
// paced shard worker runs per RoundInterval. The hot tenant's own
// delay factor is self-inflicted and ignored.
func runStarvation(t *testing.T, allocator string) float64 {
	t.Helper()
	const victims, ticks = 4, 40
	// RoundInterval parks the paced worker (first tick is an hour out),
	// so the test owns every allocation pass and the schedule is exact.
	s := startServer(t, Config{Shards: 1, RoundInterval: time.Hour,
		Allocator: allocator, DefaultQueueCap: 1024})
	c := dialTest(t, s)

	hot := testInstance(t, 512, 0)
	htc := tcFor(hot)
	htc.QueueCap = 1024
	if _, _, err := c.Open("hot", htc); err != nil {
		t.Fatal(err)
	}
	type feedState struct {
		id   string
		inst *sched.Instance
		next int
	}
	feeds := make([]feedState, victims)
	for i := range feeds {
		inst := testInstance(t, 64, i+1)
		id := "victim" + string(rune('A'+i))
		if _, _, err := c.Open(id, tcFor(inst)); err != nil {
			t.Fatal(err)
		}
		feeds[i] = feedState{id: id, inst: inst}
	}

	// The hot tenant's standing backlog: enough that a whole run of
	// paced passes cannot drain it.
	need := ticks * (victims + 2)
	for seq := 0; seq < need; seq++ {
		if _, _, err := c.Submit("hot", seq, hot.Requests[seq]); err != nil {
			t.Fatalf("hot submit %d: %v", seq, err)
		}
	}

	sh := s.shards[0]
	var ps passState
	for tick := 0; tick < ticks; tick++ {
		for i := range feeds {
			f := &feeds[i]
			if _, _, err := c.Submit(f.id, f.next, f.inst.Requests[f.next]); err != nil {
				t.Fatalf("%s submit %d: %v", f.id, f.next, err)
			}
			f.next++
		}
		s.servePass(sh, &ps, -1)
	}

	rows, err := c.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, r := range rows {
		if r.ID != "hot" && r.MaxDelayFactor > worst {
			worst = r.MaxDelayFactor
		}
	}
	return worst
}

// TestAllocatorStarvation pins the tentpole behavior the skewed
// benchmark measures, deterministically: under fifo a hot tenant's
// standing backlog starves every victim for the whole run, so victim
// delay factors grow with the tick count; under wdrr escalation caps
// them near the threshold. The schedule is identical in both runs.
func TestAllocatorStarvation(t *testing.T) {
	fifo := runStarvation(t, "fifo")
	wdrr := runStarvation(t, "wdrr")
	t.Logf("worst victim delay factor: fifo %.3f, wdrr %.3f", fifo, wdrr)
	if wdrr > 1.0 {
		t.Fatalf("wdrr worst victim delay factor = %.3f, want ≤ 1.0 (escalation must bound victims)", wdrr)
	}
	if fifo < 2*wdrr {
		t.Fatalf("fifo worst victim delay factor %.3f not ≥ 2x wdrr's %.3f", fifo, wdrr)
	}
}

// TestStatsWireCompat pins the v3 compatibility contract: a v1/v2 peer
// that hand-encodes an open without the trailing weight field and asks
// for legacy msgStats gets byte-compatible legacy rows (its strict
// decoder must consume the response exactly), while a v3 client on the
// same server reads the extended rows, weight included.
func TestStatsWireCompat(t *testing.T) {
	inst := testInstance(t, 8, 0)
	s := startServer(t, Config{})
	tc := tcFor(inst)

	// A v2 peer: openMsg without the trailing weight, legacy stats.
	old := dialTest(t, s)
	old.mu.Lock()
	old.enc.Reset()
	e := old.enc
	e.Uint64(msgOpen)
	e.Int(2) // a v2 peer's version
	e.String("legacy")
	e.String(tc.Policy)
	e.Int(tc.N)
	e.Int(tc.Speed)
	e.Int(tc.Delta)
	e.Int(tc.QueueCap)
	e.Ints(tc.Delays)
	d, err := old.roundtrip(msgOpen)
	if err != nil {
		old.mu.Unlock()
		t.Fatalf("legacy open: %v", err)
	}
	var or openResp
	or.decode(d)
	if err := old.done(d); err != nil || or.NextSeq != 0 {
		old.mu.Unlock()
		t.Fatalf("legacy open = (%+v, %v)", or, err)
	}
	old.mu.Unlock()

	if _, _, err := old.Submit("legacy", 0, inst.Requests[0]); err != nil {
		t.Fatal(err)
	}

	// StatsCompat speaks the same legacy command a pre-v3 server would
	// answer; against this server the rows must carry no extensions.
	if rows, err := old.StatsCompat("legacy"); err != nil || len(rows) != 1 || rows[0].Weight != 0 {
		t.Fatalf("StatsCompat = (%+v, %v), want one unextended row", rows, err)
	}

	// The legacy stats request returns rows a strict legacy decoder
	// consumes exactly — no trailing extended fields.
	old.mu.Lock()
	old.enc.Reset()
	(&tenantMsg{Type: msgStats, Tenant: ""}).encode(old.enc)
	d, err = old.roundtrip(msgStats)
	if err != nil {
		old.mu.Unlock()
		t.Fatalf("legacy stats: %v", err)
	}
	rows := decodeStatsResp(d)
	err = old.done(d)
	old.mu.Unlock()
	if err != nil {
		t.Fatalf("legacy stats decode left trailing bytes or failed: %v", err)
	}
	if len(rows) != 1 || rows[0].ID != "legacy" {
		t.Fatalf("legacy stats rows = %+v", rows)
	}
	if rows[0].Weight != 0 || rows[0].MaxDelayFactor != 0 {
		t.Fatalf("legacy rows must not carry extended fields: %+v", rows[0])
	}

	// A v3 client on the same server opens with an explicit weight and
	// reads it back through the extended stats, service share included.
	cl := dialTest(t, s)
	if _, _, err := cl.Open("modern", TenantConfig{Policy: tc.Policy, N: tc.N,
		Delta: tc.Delta, Delays: tc.Delays, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	rows, err = cl.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]TenantStats{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	if got := byID["modern"].Weight; got != 3 {
		t.Fatalf("modern weight = %d, want 3", got)
	}
	// The legacy open's absent weight normalizes to the default 1.
	if got := byID["legacy"].Weight; got != 1 {
		t.Fatalf("legacy weight = %d, want 1", got)
	}
	if byID["legacy"].MinDelay <= 0 {
		t.Fatalf("legacy MinDelay = %d, want > 0", byID["legacy"].MinDelay)
	}

	// An out-of-range weight is refused at open.
	var re *RemoteError
	if _, _, err := cl.Open("heavy", TenantConfig{Policy: tc.Policy, N: tc.N,
		Delta: tc.Delta, Delays: tc.Delays, Weight: maxTenantWeight + 1}); !errors.As(err, &re) || re.Code != codeBadRequest {
		t.Fatalf("oversized weight open = %v, want codeBadRequest", err)
	}
}

func TestStatsRespExRoundTrip(t *testing.T) {
	rows := []TenantStats{
		{ID: "a", Policy: "ΔLRU-EDF", Round: 9, NextSeq: 11, Pending: 3, QueueDepth: 2,
			QueueCap: 64, Executed: 100, Dropped: 4, Reconfigs: 7, CostReconfig: 28,
			CostDrop: 4, MaxPending: 12, Overloads: 1, BadSeqs: 2, Checkpoints: 3,
			Weight: 2, MinDelay: 4, ServedRounds: 70, DelayFactor: 0.5,
			MaxDelayFactor: 2.25, ServiceShare: 0.125,
			ReservedRate: 0.25, ReservedDelay: 32, BudgetUtilization: 1.5},
		{ID: "b"},
	}
	e := snap.NewEncoder()
	encodeStatsRespEx(e, rows)
	d := snap.NewDecoder(e.Bytes())
	if typ := d.Uint64(); typ != msgStatsEx {
		t.Fatalf("type = %d", typ)
	}
	got := decodeStatsRespEx(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != rows[0] || got[1] != rows[1] {
		t.Fatalf("round trip: %+v", got)
	}
}
