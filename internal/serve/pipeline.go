package serve

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/snap"
)

// SubmitResult is the acknowledgement of one pipelined frame — a single
// submit (Rounds 1) or a batch (Rounds = the batch size). Admission is
// sequential, so Admitted is always a prefix length; when Admitted <
// Rounds, Err is the rejection of round Seq+Admitted, typed exactly as
// the synchronous Submit would have typed it (*BadSeqError carrying the
// resume point, ErrOverloaded, ErrDraining, …).
type SubmitResult struct {
	// Tenant, Seq and Rounds identify the request: round ticks
	// [Seq, Seq+Rounds) of tenant Tenant.
	Tenant string
	Seq    int
	Rounds int
	// Admitted rounds were queued; Round and Depth describe the tenant
	// after the admitted prefix (as in Submit's round/depth returns).
	Admitted int
	Round    int
	Depth    int
	// RTT is the time from staging the frame to decoding its
	// acknowledgement — for a deep window this includes client-side
	// queueing, which is the honest per-request latency of a pipelined
	// load.
	RTT time.Duration
	// Err is nil when the whole frame was admitted.
	Err error
}

// pinflight is one staged-but-unacknowledged pipelined frame.
type pinflight struct {
	tag    uint64
	tenant string
	seq    int
	rounds int
	sent   time.Time
}

// Pipeline keeps up to window submit frames in flight on one Client
// connection, using protocol-v2 tagged frames: requests are staged into
// the write buffer without waiting for responses, and acknowledgements
// are reaped — matched to their request by tag — when the window is
// full or on Flush. Against a loopback server this collapses the
// per-round wire cost from one full round trip (two syscalls and a
// scheduler hop each way) to a share of one flush, which is where the
// serve/submit/pipelined/* bench specs get their throughput.
//
// onAck receives every acknowledgement, in reap order, during Submit /
// SubmitBatch / Flush calls on this goroutine; rejections (BadSeq,
// Overloaded, …) surface only there, so a caller that cares about
// admission must inspect its acks. The callback must not call back into
// the Client or Pipeline. A nil onAck discards acknowledgements —
// fire-and-forget measurement only.
//
// A Pipeline is not safe for concurrent use, and while it has
// outstanding frames no other Client method may be called (the
// connection's responses belong to the pipeline until Flush returns).
// Transport and protocol failures poison the underlying Client exactly
// as synchronous calls do.
type Pipeline struct {
	c      *Client
	window int
	onAck  func(SubmitResult)

	nextTag uint64
	infl    []pinflight
}

// NewPipeline wraps the client in a pipelined submit window. window is
// clamped to [1, MaxPipeline]; see Pipeline for the onAck contract.
func (c *Client) NewPipeline(window int, onAck func(SubmitResult)) *Pipeline {
	if window < 1 {
		window = 1
	}
	if window > MaxPipeline {
		window = MaxPipeline
	}
	return &Pipeline{c: c, window: window, onAck: onAck}
}

// Outstanding reports the number of staged frames awaiting their
// acknowledgement.
func (p *Pipeline) Outstanding() int {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	return len(p.infl)
}

// Submit stages one round tick for tenant at sequence seq. When the
// window is full it first reaps one acknowledgement (delivering it to
// onAck), so the call blocks only when the server is a full window
// behind. The returned error is transport-level only; admission
// rejections arrive through onAck.
func (p *Pipeline) Submit(tenant string, seq int, arrivals sched.Request) error {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if len(p.infl) >= p.window {
		if err := p.reapLocked(); err != nil {
			return err
		}
	}
	c.enc.Reset()
	tag := p.stageTag(c.enc)
	(&submitMsg{Tenant: tenant, Seq: seq, Arrivals: arrivals}).encode(c.enc)
	if err := writeFrame(c.bw, c.enc.Bytes()); err != nil {
		return c.poison(err)
	}
	p.infl = append(p.infl, pinflight{tag: tag, tenant: tenant, seq: seq, rounds: 1, sent: time.Now()})
	return nil
}

// SubmitBatch stages ticks[i] as the round tick at sequence seq+i — one
// tagged frame carrying the whole batch. Otherwise as Submit.
func (p *Pipeline) SubmitBatch(tenant string, seq int, ticks []sched.Request) error {
	if len(ticks) > MaxBatch {
		return fmt.Errorf("serve: batch of %d rounds exceeds MaxBatch %d", len(ticks), MaxBatch)
	}
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if len(p.infl) >= p.window {
		if err := p.reapLocked(); err != nil {
			return err
		}
	}
	c.enc.Reset()
	tag := p.stageTag(c.enc)
	(&batchMsg{Tenant: tenant, Seq: seq, Ticks: ticks}).encode(c.enc)
	if err := writeFrame(c.bw, c.enc.Bytes()); err != nil {
		return c.poison(err)
	}
	p.infl = append(p.infl, pinflight{tag: tag, tenant: tenant, seq: seq, rounds: len(ticks), sent: time.Now()})
	return nil
}

// Flush pushes every staged frame to the server and reaps every
// outstanding acknowledgement (delivering each to onAck). After a nil
// return the window is empty and synchronous Client calls are safe
// again.
func (p *Pipeline) Flush() error {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	for len(p.infl) > 0 {
		if err := p.reapLocked(); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return c.poison(err)
	}
	return nil
}

// stageTag writes the tagged-envelope prefix into enc and returns the
// fresh tag.
func (p *Pipeline) stageTag(enc *snap.Encoder) uint64 {
	tag := p.nextTag
	p.nextTag++
	enc.Uint64(msgTagged)
	enc.Uint64(tag)
	return tag
}

// reapLocked flushes the write buffer (the server cannot answer frames
// it has not seen) and consumes one tagged response, matching it to its
// in-flight entry and delivering the SubmitResult to onAck. Callers
// hold c.mu.
func (p *Pipeline) reapLocked() error {
	c := p.c
	if err := c.bw.Flush(); err != nil {
		return c.poison(err)
	}
	buf, err := readFrame(c.br, c.buf)
	if err != nil {
		return c.poison(err)
	}
	c.buf = buf
	d := snap.NewDecoder(buf)
	if typ := d.Uint64(); d.Err() != nil || typ != msgTagged {
		return c.poison(fmt.Errorf("serve: pipelined response is not a tagged frame (type %d, %v)", typ, d.Err()))
	}
	tag := d.Uint64()
	if d.Err() != nil {
		return c.poison(fmt.Errorf("serve: tagged response missing tag: %w", d.Err()))
	}
	idx := -1
	for i := range p.infl {
		if p.infl[i].tag == tag {
			idx = i
			break
		}
	}
	if idx < 0 {
		return c.poison(fmt.Errorf("serve: response tag %d matches no in-flight request", tag))
	}
	e := p.infl[idx]
	p.infl = append(p.infl[:idx], p.infl[idx+1:]...)
	r := SubmitResult{Tenant: e.tenant, Seq: e.seq, Rounds: e.rounds, RTT: time.Since(e.sent)}

	typ := d.Uint64()
	if d.Err() != nil {
		return c.poison(fmt.Errorf("serve: tagged response missing message type: %w", d.Err()))
	}
	switch typ {
	case msgErr:
		var er errResp
		er.decode(d)
		if err := d.Done(); err != nil {
			return c.poison(fmt.Errorf("serve: malformed error response: %w", err))
		}
		r.Err = errFromResp(&er)
	case msgSubmit:
		var sr submitResp
		sr.decode(d)
		if err := d.Done(); err != nil {
			return c.poison(fmt.Errorf("serve: malformed submit response: %w", err))
		}
		r.Admitted, r.Round, r.Depth = 1, sr.Round, sr.QueueDepth
	case msgSubmitBatch:
		var br batchResp
		br.decode(d)
		if err := d.Done(); err != nil {
			return c.poison(fmt.Errorf("serve: malformed batch response: %w", err))
		}
		r.Admitted, r.Round, r.Depth = br.Admitted, br.Round, br.QueueDepth
		if br.Err != nil {
			r.Err = errFromResp(br.Err)
		}
	default:
		return c.poison(fmt.Errorf("serve: tagged response type %d for a submit", typ))
	}
	if p.onAck != nil {
		p.onAck(r)
	}
	return nil
}
