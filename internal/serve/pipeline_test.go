package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestSubmitBatchRoundTrip feeds a whole trace through the synchronous
// batch API in uneven chunks and requires the drained result to be
// bit-identical to a local replay — batching must change framing only,
// never scheduling.
func TestSubmitBatchRoundTrip(t *testing.T) {
	inst := testInstance(t, 64, 0)
	s := startServer(t, Config{DefaultQueueCap: 256})
	c := dialTest(t, s)
	tc := tcFor(inst)
	if _, _, err := c.Open("alpha", tc); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < len(inst.Requests); {
		k := min(7, len(inst.Requests)-seq) // uneven: final chunk is short
		admitted, _, _, err := c.SubmitBatch("alpha", seq, inst.Requests[seq:seq+k])
		switch {
		case err == nil:
			if admitted != k {
				t.Fatalf("batch at %d admitted %d of %d with nil error", seq, admitted, k)
			}
			seq += k
		case errors.Is(err, ErrOverloaded):
			seq += admitted
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("batch at %d: %v", seq, err)
		}
	}
	res, err := c.DrainTenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("batched result differs from local replay:\n server %+v\n local  %+v", res, ref)
	}
}

// TestSubmitBatchPartialAdmit pins the ack-vector contract: with round
// application frozen, a batch crossing the queue cap admits exactly the
// prefix that fits and names the shed round via ErrOverloaded; a batch
// at the wrong sequence admits nothing and names the resume point.
func TestSubmitBatchPartialAdmit(t *testing.T) {
	inst := testInstance(t, 16, 0)
	s := startServer(t, Config{RoundInterval: time.Hour}) // nothing applies
	c := dialTest(t, s)
	tc := tcFor(inst)
	tc.QueueCap = 4
	if _, _, err := c.Open("hot", tc); err != nil {
		t.Fatal(err)
	}

	admitted, _, depth, err := c.SubmitBatch("hot", 0, inst.Requests[:8])
	if admitted != 4 || depth != 4 || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch past cap = (admitted %d, depth %d, %v), want (4, 4, ErrOverloaded)", admitted, depth, err)
	}

	// Resubmitting from the shed round: still full, nothing admitted.
	admitted, _, _, err = c.SubmitBatch("hot", 4, inst.Requests[4:8])
	if admitted != 0 || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("refill while full = (admitted %d, %v), want (0, ErrOverloaded)", admitted, err)
	}

	// A batch at the wrong sequence is rejected before admitting anything.
	var bs *BadSeqError
	admitted, _, _, err = c.SubmitBatch("hot", 9, inst.Requests[9:12])
	if admitted != 0 || !errors.As(err, &bs) || bs.Expected != 4 {
		t.Fatalf("bad-seq batch = (admitted %d, %v), want (0, BadSeq expected 4)", admitted, err)
	}

	// A mid-batch sequence jump splits the batch: the prefix before the
	// jump is admitted (queue has room again after nothing applied — use
	// a batch overlapping the expected point instead).
	admitted, _, _, err = c.SubmitBatch("hot", 3, inst.Requests[3:6])
	if admitted != 0 || !errors.As(err, &bs) || bs.Expected != 4 {
		t.Fatalf("duplicate-prefix batch = (admitted %d, %v), want (0, BadSeq expected 4)", admitted, err)
	}

	// The server counted the rejections for observability.
	rows, err := c.Stats("hot")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].QueueDepth != 4 || rows[0].BadSeqs == 0 || rows[0].Overloads == 0 {
		t.Fatalf("stats after rejected batches = %+v", rows[0])
	}
}

// TestPipelinedSubmit drives one tenant's whole trace through a
// pipelined window (mixing single and batched frames), then verifies
// the acknowledgement stream accounted for every round exactly once and
// the drained result is bit-identical to a local replay.
func TestPipelinedSubmit(t *testing.T) {
	inst := testInstance(t, 96, 0)
	s := startServer(t, Config{DefaultQueueCap: 256})
	c := dialTest(t, s)
	tc := tcFor(inst)
	if _, _, err := c.Open("alpha", tc); err != nil {
		t.Fatal(err)
	}

	var ackedRounds, acks int
	pl := c.NewPipeline(8, func(r SubmitResult) {
		acks++
		if r.Tenant != "alpha" {
			t.Errorf("ack for tenant %q", r.Tenant)
		}
		if r.Err != nil {
			t.Errorf("ack for [%d,%d) rejected: %v", r.Seq, r.Seq+r.Rounds, r.Err)
		}
		if r.Admitted != r.Rounds {
			t.Errorf("ack for [%d,%d) admitted %d", r.Seq, r.Seq+r.Rounds, r.Admitted)
		}
		if r.RTT <= 0 {
			t.Errorf("ack missing RTT: %+v", r)
		}
		ackedRounds += r.Admitted
	})
	for seq := 0; seq < len(inst.Requests); {
		var err error
		if seq%3 == 0 { // mix frame shapes in one window
			err = pl.Submit("alpha", seq, inst.Requests[seq])
			seq++
		} else {
			k := min(5, len(inst.Requests)-seq)
			err = pl.SubmitBatch("alpha", seq, inst.Requests[seq:seq+k])
			seq += k
		}
		if err != nil {
			t.Fatalf("stage at %d: %v", seq, err)
		}
	}
	if err := pl.Flush(); err != nil {
		t.Fatal(err)
	}
	if pl.Outstanding() != 0 {
		t.Fatalf("outstanding after flush = %d", pl.Outstanding())
	}
	if ackedRounds != len(inst.Requests) {
		t.Fatalf("acks covered %d rounds in %d acks, want %d", ackedRounds, acks, len(inst.Requests))
	}

	// The window is empty, so the same connection serves synchronous
	// calls again.
	res, err := c.DrainTenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("pipelined result differs from local replay:\n server %+v\n local  %+v", res, ref)
	}
}

// TestPipelinedRejections pins rejection delivery through the window:
// with rounds frozen and the queue cap below the in-flight depth, the
// first over-cap frame is shed with ErrOverloaded and the frames behind
// it bounce with BadSeq naming the same resume point — the client-side
// picture a resync needs.
func TestPipelinedRejections(t *testing.T) {
	inst := testInstance(t, 16, 0)
	s := startServer(t, Config{RoundInterval: time.Hour})
	c := dialTest(t, s)
	tc := tcFor(inst)
	tc.QueueCap = 3
	if _, _, err := c.Open("hot", tc); err != nil {
		t.Fatal(err)
	}

	var results []SubmitResult
	pl := c.NewPipeline(8, func(r SubmitResult) { results = append(results, r) })
	for seq := 0; seq < 8; seq++ {
		if err := pl.Submit("hot", seq, inst.Requests[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d acks, want 8", len(results))
	}
	for i, r := range results {
		switch {
		case i < 3:
			if r.Err != nil || r.Admitted != 1 {
				t.Fatalf("ack %d = %+v, want admitted", i, r)
			}
		case i == 3:
			if !errors.Is(r.Err, ErrOverloaded) {
				t.Fatalf("ack %d err = %v, want ErrOverloaded", i, r.Err)
			}
		default:
			var bs *BadSeqError
			if !errors.As(r.Err, &bs) || bs.Expected != 3 {
				t.Fatalf("ack %d err = %v, want BadSeq expected 3", i, r.Err)
			}
		}
	}
}

// TestOpenVersionNegotiation: the server speaks MinProtocolVersion
// through ProtocolVersion. A v1 peer (which simply never sends tagged
// or batch frames) still opens; a future version is refused with the
// supported range.
func TestOpenVersionNegotiation(t *testing.T) {
	inst := testInstance(t, 4, 0)
	s := startServer(t, Config{})
	tc := tcFor(inst)

	open := func(version int, tenant string) error {
		c := dialTest(t, s)
		c.mu.Lock()
		defer c.mu.Unlock()
		c.enc.Reset()
		(&openMsg{Version: version, Tenant: tenant, Policy: tc.Policy,
			N: tc.N, Delta: tc.Delta, Delays: tc.Delays}).encode(c.enc)
		d, err := c.roundtrip(msgOpen)
		if err != nil {
			return err
		}
		var r openResp
		r.decode(d)
		return c.done(d)
	}

	if err := open(MinProtocolVersion, "v1peer"); err != nil {
		t.Fatalf("open at MinProtocolVersion = %v, want accepted", err)
	}
	if err := open(ProtocolVersion, "v2peer"); err != nil {
		t.Fatalf("open at ProtocolVersion = %v, want accepted", err)
	}
	var re *RemoteError
	if err := open(ProtocolVersion+1, "future"); !errors.As(err, &re) || re.Code != codeBadVersion {
		t.Fatalf("open at version %d = %v, want codeBadVersion", ProtocolVersion+1, err)
	}
	if err := open(0, "ancient"); !errors.As(err, &re) || re.Code != codeBadVersion {
		t.Fatalf("open at version 0 = %v, want codeBadVersion", err)
	}
}

// TestServeLoadPipelined is TestServeLoad through the pipelined driver:
// the window plus batching must deliver every round exactly once (the
// ack accounting is exact when no restart intervenes) and the results
// stay bit-identical to local replays.
func TestServeLoadPipelined(t *testing.T) {
	s := startServer(t, Config{})
	rep, err := RunLoad(LoadConfig{
		Addr:     s.Addr().String(),
		Tenants:  32,
		Params:   workload.Params{Rounds: 60, Seed: 11},
		Pipeline: 16,
		Batch:    8,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("tenants with non-identical results: %v", rep.Mismatches)
	}
	// No restart: every trace round is admitted exactly once and every
	// acknowledgement is reaped, so the count is exact even through
	// overload resyncs.
	if want := int64(32 * 60); rep.RoundsSent != want {
		t.Fatalf("RoundsSent = %d, want %d (overloads %d, resumes %d)",
			rep.RoundsSent, want, rep.Overloads, rep.Resumes)
	}
	if rep.Pipeline != 16 || rep.Batch != 8 {
		t.Fatalf("report mode = (%d, %d), want (16, 8)", rep.Pipeline, rep.Batch)
	}
	if rep.Latency.N == 0 {
		t.Fatalf("report missing latency: %+v", rep)
	}
}

// TestPipelineRejectsOversizedBatch: client-side guard mirrors the
// server's MaxBatch bound.
func TestPipelineRejectsOversizedBatch(t *testing.T) {
	inst := testInstance(t, 4, 0)
	s := startServer(t, Config{})
	c := dialTest(t, s)
	if _, _, err := c.Open("a", tcFor(inst)); err != nil {
		t.Fatal(err)
	}
	huge := make([]sched.Request, MaxBatch+1)
	if _, _, _, err := c.SubmitBatch("a", 0, huge); err == nil {
		t.Fatal("SubmitBatch accepted a batch past MaxBatch")
	}
	pl := c.NewPipeline(4, nil)
	if err := pl.SubmitBatch("a", 0, huge); err == nil {
		t.Fatal("Pipeline.SubmitBatch accepted a batch past MaxBatch")
	}
	// The guard fired client-side: the connection is still healthy.
	if _, _, err := c.Submit("a", 0, inst.Requests[0]); err != nil {
		t.Fatalf("connection poisoned by rejected oversize batch: %v", err)
	}
}
