package serve

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
)

// policyBySpec maps the stable spec strings tenants are opened with to
// fresh policy constructors. Every listed policy implements
// sched.Snapshotter, which per-tenant checkpointing requires.
var policyBySpec = map[string]func() sched.Policy{
	"dlruedf":    func() sched.Policy { return core.NewDLRUEDF() },
	"adaptive":   func() sched.Policy { return core.NewDLRUEDF(core.WithAdaptiveSplit()) },
	"dlru":       func() sched.Policy { return policy.NewDLRU() },
	"edf":        func() sched.Policy { return policy.NewEDF() },
	"seqedf":     func() sched.Policy { return policy.NewSeqEDF() },
	"greedy":     func() sched.Policy { return policy.NewGreedyPending() },
	"hysteresis": func() sched.Policy { return policy.NewHysteresis(1) },
	"never":      func() sched.Policy { return policy.NewNever() },
}

// NewPolicy builds a fresh policy from a tenant spec string. The spec —
// not the policy's display Name — is what open requests carry and what
// the server persists in tenant metadata, so a restart reconstructs the
// same policy type for RestoreStream's name check.
func NewPolicy(spec string) (sched.Policy, error) {
	mk, ok := policyBySpec[spec]
	if !ok {
		return nil, fmt.Errorf("serve: unknown policy %q (known: %v)", spec, PolicySpecs())
	}
	return mk(), nil
}

// PolicySpecs lists the accepted policy spec strings, sorted.
func PolicySpecs() []string {
	specs := make([]string, 0, len(policyBySpec))
	for s := range policyBySpec {
		specs = append(specs, s)
	}
	sort.Strings(specs)
	return specs
}
