package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sched"
)

// logTestConfig is a group-commit-log server configuration tuned so a
// short test exercises the whole machinery: every round is
// checkpoint-due, segments rotate after a few KiB, and compaction runs
// aggressively.
func logTestConfig(dir string) Config {
	return Config{
		CheckpointDir:      dir,
		CheckpointEvery:    1,
		CkptMode:           "log",
		CkptCommitInterval: time.Millisecond,
		CkptSegmentBytes:   4 << 10,
	}
}

// TestCloseTenantLogTombstone pins the log-mode half of the
// CloseTenant durability contract (the files-mode half lives in
// TestCloseTenantCheckpointRace): a closed tenant's records may remain
// in the shared segments, but its tombstone must shadow them — across
// rapid open/submit/close cycles racing the shard worker's appends, a
// restart over the directory recovers zero tenants. CheckpointEvery 1
// keeps a worker appending checkpoints while each close lands, which is
// exactly the race the in-append tombstone check guards.
func TestCloseTenantLogTombstone(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Config{CheckpointDir: dir, CheckpointEvery: 1, CkptMode: "log"})
	c := dialTest(t, s)
	tc := TenantConfig{Policy: "edf", N: 2, Delta: 2, Delays: []int{8, 8}}
	tick := sched.Request{{Color: 0, Count: 1}}

	for iter := 0; iter < 40; iter++ {
		id := fmt.Sprintf("lt-%02d", iter)
		if _, _, err := c.Open(id, tc); err != nil {
			t.Fatal(err)
		}
		for seq := 0; seq < 8; {
			_, _, err := c.Submit(id, seq, tick)
			switch {
			case err == nil:
				seq++
			case errors.Is(err, ErrOverloaded):
				time.Sleep(50 * time.Microsecond)
			default:
				t.Fatal(err)
			}
		}
		if _, err := c.CloseTenant(id); err != nil {
			t.Fatal(err)
		}
	}
	// Give any straggling shard-worker checkpoint time to lose the race
	// with the tombstones before the restart inspects the log.
	time.Sleep(50 * time.Millisecond)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	s2 := startServer(t, Config{CheckpointDir: dir, CkptMode: "log"})
	if n := s2.NumTenants(); n != 0 {
		t.Fatalf("restart over closed tenants recovered %d tenants, want 0", n)
	}
}

// TestReleaseLogTombstone walks a migration round trip through the log
// backend: Release tombstones the tenant (a restart must not recover
// it), Restore of the released blob shadows the tombstone with a fresh
// full record, and a crash right after the restore recovers the tenant
// at its restored round — the "crash after the route flip" guarantee.
func TestReleaseLogTombstone(t *testing.T) {
	dir := t.TempDir()
	inst := testInstance(t, 24, 0)
	tc := tcFor(inst)

	s1 := startServer(t, logTestConfig(dir))
	c1 := dialTest(t, s1)
	if _, _, err := c1.Open("mig", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c1, "mig", inst, 0)
	rel, err := c1.Release("mig")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Released away: the tombstone must survive the restart even though
	// the tenant's checkpoint records are still in the segments.
	s2 := startServer(t, logTestConfig(dir))
	if n := s2.NumTenants(); n != 0 {
		t.Fatalf("restart after release recovered %d tenants, want 0", n)
	}
	c2 := dialTest(t, s2)
	next, err := c2.Restore("mig", rel.Config, rel.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if next != rel.NextSeq {
		t.Fatalf("restore resumed at seq %d, want %d", next, rel.NextSeq)
	}
	s2.Close() // crash immediately after the restore acknowledgement

	s3 := startServer(t, logTestConfig(dir))
	if n := s3.NumTenants(); n != 1 {
		t.Fatalf("restart after restore recovered %d tenants, want 1", n)
	}
	c3 := dialTest(t, s3)
	nextSeq, resumed, err := c3.Open("mig", tc)
	if err != nil || !resumed {
		t.Fatalf("re-open after restore crash = (resumed %v, %v)", resumed, err)
	}
	if nextSeq != rel.NextSeq {
		t.Fatalf("recovered at seq %d, want the restored round %d", nextSeq, rel.NextSeq)
	}
}

// TestServeLogCompactionRestart drives one tenant through several
// feed → drain → restart cycles over a log squeezed into tiny segments,
// so rotation and compaction run repeatedly and each recovery resolves
// state that compaction has rewritten (including full+delta pairs).
// After the final cycle the drained result must be bit-identical to an
// uninterrupted local replay.
func TestServeLogCompactionRestart(t *testing.T) {
	dir := t.TempDir()
	const cycles = 4
	inst := testInstance(t, 32*cycles, 0)
	tc := tcFor(inst)
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}

	cfg := logTestConfig(dir)
	cfg.CkptSegmentBytes = 2 << 10
	next := 0
	var res *sched.Result
	for cy := 0; cy < cycles; cy++ {
		s := startServer(t, cfg)
		c := dialTest(t, s)
		nextSeq, _, err := c.Open("churn", tc)
		if err != nil {
			t.Fatal(err)
		}
		if nextSeq != next {
			t.Fatalf("cycle %d resumed at seq %d, want %d", cy, nextSeq, next)
		}
		until := min(32*(cy+1), len(inst.Requests))
		for seq := nextSeq; seq < until; {
			_, _, err := c.Submit("churn", seq, inst.Requests[seq])
			switch {
			case err == nil:
				seq++
			case errors.Is(err, ErrOverloaded):
				time.Sleep(time.Millisecond)
			default:
				t.Fatal(err)
			}
		}
		// Only the last cycle drains (a drain runs extra empty rounds, so
		// it would shift every later cycle's resume sequence); Shutdown's
		// flush applies the queued ticks and checkpoints the rest.
		if cy == cycles-1 {
			if res, err = c.DrainTenant("churn"); err != nil {
				t.Fatal(err)
			}
		}
		next = until
		if err := s.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("result after %d compacting restarts differs:\n server %+v\n local  %+v", cycles, res, ref)
	}
}

// TestServeLogDeltaSnapshots pins the delta path end to end. Deltas
// only land when they beat the 2× profitability bar, so the tenant is
// shaped to carry real state: long delays keep a deep pending backlog,
// making each round's full snapshot large while the round-over-round
// change stays local. The run must record deltas in DuraStats, and a
// restart must resolve the tenant through a full+delta chain to the
// bit-identical drained result.
func TestServeLogDeltaSnapshots(t *testing.T) {
	dir := t.TempDir()
	cfg := logTestConfig(dir)
	cfg.CkptSegmentBytes = 1 << 20 // no rotation: keep the chain in one segment
	s := startServer(t, cfg)
	c := dialTest(t, s)
	delays := []int{64, 64, 64, 64, 64, 64, 64, 64}
	tc := TenantConfig{Policy: "dlruedf", N: 4, Delta: 4, Delays: delays, QueueCap: 256}
	if _, _, err := c.Open("deep", tc); err != nil {
		t.Fatal(err)
	}
	tick := sched.Request{{Color: 0, Count: 2}, {Color: 3, Count: 2}, {Color: 5, Count: 1}}
	for seq := 0; seq < 200; {
		_, _, err := c.Submit("deep", seq, tick)
		switch {
		case err == nil:
			seq++
		case errors.Is(err, ErrOverloaded):
			time.Sleep(50 * time.Microsecond)
		default:
			t.Fatal(err)
		}
	}
	res, err := c.DrainTenant("deep")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.DuraStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas == 0 {
		t.Fatalf("no delta checkpoints recorded for a deep-state tenant: %+v", st)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2 := startServer(t, cfg)
	c2 := dialTest(t, s2)
	if _, resumed, err := c2.Open("deep", tc); err != nil || !resumed {
		t.Fatalf("open after delta-chain recovery = (resumed %v, %v)", resumed, err)
	}
	res2, err := c2.Result("deep")
	if err != nil || !resultsEqual(res, res2) {
		t.Fatalf("delta-chain recovered result = (%+v, %v), want the drained result %+v", res2, err, res)
	}
}

// TestServeCrashRestartLogSegments is the crash-mid-load harness
// (restartLoad, 64 tenants, rrload-style verification) over the log
// backend under duress: every round checkpoint-due, segments a few KiB
// so the crash lands amid rotation and compaction, and a 1ms group
// commit. Close abandons the unsynced tail — the crash analogue — and
// recovery must still hand every driver a consistent resume point, with
// all 64 final results bit-identical to local replays.
func TestServeCrashRestartLogSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("restart integration test")
	}
	cfg := logTestConfig(t.TempDir())
	rep := restartLoad(t, cfg, (*Server).Close)
	if want := int64(64*80) - 64; rep.RoundsSent < want {
		t.Fatalf("RoundsSent = %d, want ≥ %d", rep.RoundsSent, want)
	}
}

// TestServeAdaptivePacing smokes the adaptive pacer end to end: with
// CkptAdaptive on, a fed tenant takes at least the bootstrap checkpoint
// and recovery after a graceful shutdown still resumes at the drained
// round with bit-identical results.
func TestServeAdaptivePacing(t *testing.T) {
	dir := t.TempDir()
	inst := testInstance(t, 48, 0)
	tc := tcFor(inst)
	ref, err := LocalReference(inst, tc.Policy, tc.N, tc.Speed)
	if err != nil {
		t.Fatal(err)
	}

	cfg := logTestConfig(dir)
	cfg.CheckpointEvery = 1 << 30 // must not matter: the pacer decides
	cfg.CkptAdaptive = true
	cfg.CkptPaceMax = 8
	s := startServer(t, cfg)
	c := dialTest(t, s)
	if _, _, err := c.Open("pace", tc); err != nil {
		t.Fatal(err)
	}
	feed(t, c, "pace", inst, 0)
	res, err := c.DrainTenant("pace")
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ref, res) {
		t.Fatalf("adaptive-paced result differs:\n server %+v\n local  %+v", res, ref)
	}
	rows, err := c.Stats("pace")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Checkpoints < 2 {
		t.Fatalf("adaptive pacer took %d checkpoints, want ≥ 2 (bootstrap + paced)", rows[0].Checkpoints)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2 := startServer(t, cfg)
	c2 := dialTest(t, s2)
	if _, resumed, err := c2.Open("pace", tc); err != nil || !resumed {
		t.Fatalf("open after adaptive recovery = (resumed %v, %v)", resumed, err)
	}
	res2, err := c2.Result("pace")
	if err != nil || !resultsEqual(ref, res2) {
		t.Fatalf("recovered result = (%+v, %v), want the drained result", res2, err)
	}
}
