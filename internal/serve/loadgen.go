package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LoadConfig parameterizes RunLoad, the load generator behind
// cmd/rrload. Each tenant replays an independent per-tenant variant
// (workload.Tenant) of the named workload family, so any party that
// knows the configuration can reconstruct every trace bit-identically —
// which is how Verify checks the server lost and duplicated nothing.
type LoadConfig struct {
	// Addr is the server to drive.
	Addr string
	// Tenants is the number of concurrent tenants (default 64), each on
	// its own connection.
	Tenants int
	// Workload names the workload family (workload.Names; default
	// "router") and Params its parameters; Params.Rounds is the trace
	// length per tenant.
	Workload string
	Params   workload.Params
	// Policy is the tenant policy spec (PolicySpecs; default "dlruedf").
	Policy string
	// N and Speed configure each tenant's stream (default N 8).
	N     int
	Speed int
	// QueueCap is the per-tenant queue cap (0 = server default).
	QueueCap int
	// Rate is the target submit rate per tenant in rounds/sec; 0 runs
	// unpaced. Overload shedding (ErrOverloaded) backs off and retries,
	// so jobs are delayed, never lost.
	Rate float64
	// Pipeline keeps up to this many submit frames in flight per tenant
	// connection using protocol-v2 tagged frames; 0 or 1 keeps the
	// strict request/response path. Batch packs this many consecutive
	// rounds into each frame (0 or 1 = one round per frame). Setting
	// either above 1 selects the pipelined driver; exactly-once ingest
	// and Verify hold in every mode.
	Pipeline int
	Batch    int
	// Verify replays every trace locally after the run and requires the
	// server's final Results to be bit-identical (LoadReport.Mismatches).
	Verify bool
	// ResRate and ResDelay declare a BDR reservation for every load
	// tenant (protocol v6, rrserved -bdr): a guaranteed fractional
	// service rate and the delay bound it must be supplied within. Both
	// zero (the default) runs best-effort. A tenant whose reservation is
	// rejected at admission (*AdmissionError — the shard is full) falls
	// back to opening best-effort and is counted in
	// LoadReport.AdmissionRejects, so an over-subscribed run degrades
	// loudly instead of failing.
	ResRate  float64
	ResDelay float64
	// RetryTimeout bounds how long one tenant keeps retrying through a
	// server outage (reconnect/backoff) before giving up (default 30s).
	RetryTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *LoadConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 64
	}
	if c.Workload == "" {
		c.Workload = "router"
	}
	if c.Policy == "" {
		c.Policy = "dlruedf"
	}
	if c.N <= 0 {
		c.N = 8
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 30 * time.Second
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Batch > MaxBatch {
		c.Batch = MaxBatch
	}
	if c.Pipeline > MaxPipeline {
		c.Pipeline = MaxPipeline
	}
}

// pipelined reports whether the config selects the pipelined driver.
func (c *LoadConfig) pipelined() bool { return c.Pipeline > 1 || c.Batch > 1 }

// LoadReport summarizes a RunLoad: achieved throughput, admission
// behavior, per-submit latency quantiles, and the aggregated scheduling
// totals from every tenant's final (drained) Result.
type LoadReport struct {
	Tenants         int `json:"tenants"`
	RoundsPerTenant int `json:"rounds_per_tenant"`
	// Pipeline and Batch echo the driver mode (see LoadConfig).
	Pipeline int `json:"pipeline,omitempty"`
	Batch    int `json:"batch,omitempty"`

	RoundsSent int64 `json:"rounds_sent"`
	JobsSent   int64 `json:"jobs_sent"`
	// Shed-by-cause breakdown. Overloads counts ErrOverloaded rejections
	// — ring overflow, each retried until admitted. AdmissionRejects
	// counts BDR reservations refused by the server's feasibility check
	// (*AdmissionError); those tenants fall back to best-effort, so the
	// count is the number of tenants running without their requested
	// guarantee. DrainingRejects counts ErrDraining bounces — the server
	// (or its proxy) was shutting down or mid-migration, each retried.
	// Resumes counts sequence rewinds after a reconnect or restart;
	// Reconnects counts re-dial attempts.
	Overloads        int64 `json:"overloads"`
	AdmissionRejects int64 `json:"admission_rejects,omitempty"`
	DrainingRejects  int64 `json:"draining_rejects,omitempty"`
	Resumes          int64 `json:"resumes"`
	Reconnects       int64 `json:"reconnects"`

	ElapsedSec float64 `json:"elapsed_sec"`
	// TargetRate is the configured per-tenant rate (0 = unpaced);
	// AchievedRate is the aggregate admitted rounds/sec across tenants.
	TargetRate   float64 `json:"target_rounds_per_sec"`
	AchievedRate float64 `json:"achieved_rounds_per_sec"`
	// Latency summarizes per-Submit round-trip times in milliseconds.
	Latency stats.Summary `json:"submit_latency_ms"`

	// Aggregated finals across tenants.
	Executed     int   `json:"executed"`
	Dropped      int   `json:"dropped"`
	Reconfigs    int   `json:"reconfigs"`
	CostReconfig int64 `json:"cost_reconfig"`
	CostDrop     int64 `json:"cost_drop"`

	// Cross-tenant scheduling read-out (from the tenants' extended stats
	// rows, fetched after the run): the worst per-tenant delay-factor
	// high-water mark with the tenant holding it, and the spread of
	// service shares. See docs/SCHEDULING.md for the definitions. All
	// zero when the stats fetch fails — the fetch is best-effort and
	// never fails the run.
	WorstDelayFactor float64 `json:"worst_delay_factor,omitempty"`
	WorstDelayTenant string  `json:"worst_delay_tenant,omitempty"`
	ServiceShareMin  float64 `json:"service_share_min,omitempty"`
	ServiceShareMax  float64 `json:"service_share_max,omitempty"`

	// SchedReadoutDegraded marks a readout fetched over the legacy
	// pre-v3 stats command because the server does not answer the
	// extended one: the DF/share fields above are unavailable (zero) and
	// the worst-backlog pair below stands in for them.
	SchedReadoutDegraded bool   `json:"sched_readout_degraded,omitempty"`
	WorstBacklog         int    `json:"worst_backlog,omitempty"`
	WorstBacklogTenant   string `json:"worst_backlog_tenant,omitempty"`

	// Mismatches lists tenants whose server Result differed from the
	// local replay (only populated with Verify; empty = bit-identical).
	Mismatches []string `json:"mismatches,omitempty"`

	// Results holds each tenant's final Result, indexed by tenant.
	Results []*sched.Result `json:"-"`
}

// loadTenantID names tenant i of a load run.
func loadTenantID(i int) string { return fmt.Sprintf("load-%03d", i) }

// tenantOutcome is one driver goroutine's take-home.
type tenantOutcome struct {
	res  *sched.Result
	lats []time.Duration
	err  error
}

// RunLoad drives cfg.Tenants concurrent tenants against an rrserved
// server, each submitting its full trace round by round (paced by Rate)
// and draining at the end. Drivers ride out overload shedding, graceful
// drain and server restarts: ErrOverloaded backs off and resubmits the
// same sequence, a reconnect re-opens the tenant and resumes from the
// server's sequence, so every trace round is applied exactly once.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	insts := make([]*sched.Instance, cfg.Tenants)
	for i := range insts {
		inst, err := workload.Tenant(cfg.Workload, cfg.Params, i)
		if err != nil {
			return nil, err
		}
		insts[i] = inst
	}
	rep := &LoadReport{
		Tenants:         cfg.Tenants,
		RoundsPerTenant: insts[0].NumRounds(),
		Pipeline:        cfg.Pipeline,
		Batch:           cfg.Batch,
		TargetRate:      cfg.Rate,
		Results:         make([]*sched.Result, cfg.Tenants),
	}

	var roundsSent, jobsSent, overloads, resumes, reconnects atomic.Int64
	var admissionRejects, drainingRejects atomic.Int64
	ld := &loadDriver{cfg: &cfg, roundsSent: &roundsSent, jobsSent: &jobsSent,
		overloads: &overloads, resumes: &resumes, reconnects: &reconnects,
		admissionRejects: &admissionRejects, drainingRejects: &drainingRejects}

	outs := make([]tenantOutcome, cfg.Tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.pipelined() {
				outs[i] = ld.drivePipelined(i, insts[i], start)
			} else {
				outs[i] = ld.drive(i, insts[i], start)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	for i, o := range outs {
		if o.err != nil {
			return rep, fmt.Errorf("serve: load tenant %s: %w", loadTenantID(i), o.err)
		}
		rep.Results[i] = o.res
		rep.Executed += o.res.Executed
		rep.Dropped += o.res.Dropped
		rep.Reconfigs += o.res.Reconfigs
		rep.CostReconfig += o.res.Cost.Reconfig
		rep.CostDrop += o.res.Cost.Drop
		lats = append(lats, o.lats...)
	}
	rep.RoundsSent = roundsSent.Load()
	rep.JobsSent = jobsSent.Load()
	rep.Overloads = overloads.Load()
	rep.AdmissionRejects = admissionRejects.Load()
	rep.DrainingRejects = drainingRejects.Load()
	rep.Resumes = resumes.Load()
	rep.Reconnects = reconnects.Load()
	rep.ElapsedSec = elapsed.Seconds()
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.RoundsSent) / elapsed.Seconds()
	}
	rep.Latency = stats.SummarizeDurations(lats)

	if cfg.Verify {
		for i, inst := range insts {
			ref, err := LocalReference(inst, cfg.Policy, cfg.N, cfg.Speed)
			if err != nil {
				return rep, err
			}
			if !resultsEqual(ref, rep.Results[i]) {
				rep.Mismatches = append(rep.Mismatches, loadTenantID(i))
			}
		}
	}
	rep.fillSchedReadout(&cfg)
	return rep, nil
}

// fillSchedReadout fetches the load tenants' extended stats rows and
// fills the report's scheduling fields: the worst delay-factor
// high-water mark and the service-share spread. A server too old for
// msgStatsEx (pre-v3) answers the legacy stats command instead; the
// readout then degrades to the worst MaxPending backlog with
// SchedReadoutDegraded set, rather than staying silently empty.
// Best-effort — a server that is gone leaves everything zero.
func (rep *LoadReport) fillSchedReadout(cfg *LoadConfig) {
	c, err := Dial(cfg.Addr)
	if err != nil {
		return
	}
	defer func() { c.Close() }() // c is rebound on the compat fallback
	rows, err := c.Stats("")
	if err != nil {
		// The failed extended request poisoned the client; a pre-v3
		// server needs a fresh connection for the legacy command.
		c.Close()
		if c, err = Dial(cfg.Addr); err != nil {
			return
		}
		if rows, err = c.StatsCompat(""); err != nil {
			return
		}
		rep.SchedReadoutDegraded = true
	}
	want := make(map[string]bool, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		want[loadTenantID(i)] = true
	}
	first := true
	for _, r := range rows {
		if !want[r.ID] {
			continue // a shared server may host unrelated tenants
		}
		if rep.SchedReadoutDegraded {
			// Legacy rows carry no DF/share fields; fold the deepest
			// backlog high-water instead.
			if first || r.MaxPending > rep.WorstBacklog {
				rep.WorstBacklog, rep.WorstBacklogTenant = r.MaxPending, r.ID
			}
			first = false
			continue
		}
		if first || r.MaxDelayFactor > rep.WorstDelayFactor {
			rep.WorstDelayFactor, rep.WorstDelayTenant = r.MaxDelayFactor, r.ID
		}
		rep.ServiceShareMin = min2(first, rep.ServiceShareMin, r.ServiceShare)
		rep.ServiceShareMax = max2(first, rep.ServiceShareMax, r.ServiceShare)
		first = false
	}
}

// min2/max2 fold one value into a running extreme, seeding it on the
// first sample.
func min2(first bool, cur, v float64) float64 {
	if first || v < cur {
		return v
	}
	return cur
}

func max2(first bool, cur, v float64) float64 {
	if first || v > cur {
		return v
	}
	return cur
}

// loadDriver shares the run-wide counters across tenant goroutines.
type loadDriver struct {
	cfg *LoadConfig

	roundsSent, jobsSent              *atomic.Int64
	overloads, resumes, reconnects    *atomic.Int64
	admissionRejects, drainingRejects *atomic.Int64
}

func (ld *loadDriver) logf(format string, args ...any) {
	if ld.cfg.Logf != nil {
		ld.cfg.Logf(format, args...)
	}
}

// retryable reports whether an open/dial failure is worth waiting out:
// transport errors and graceful drain resolve when the server returns;
// a config conflict, unknown policy, or admission rejection never will
// (an infeasible reservation stays infeasible until capacity frees).
func retryable(err error) bool {
	if errors.Is(err, ErrDraining) {
		return true
	}
	var re *RemoteError
	var bs *BadSeqError
	var ae *AdmissionError
	if errors.As(err, &re) || errors.As(err, &bs) || errors.As(err, &ae) ||
		errors.Is(err, ErrTenantExists) || errors.Is(err, ErrUnknownTenant) || errors.Is(err, ErrOverloaded) {
		return false
	}
	return true // dial/transport failure
}

// tenantConn owns one driver goroutine's connection — (re)dialing and
// re-opening its tenant with retry — so the strict and pipelined
// drivers share the resilience logic.
type tenantConn struct {
	ld *loadDriver
	id string
	tc TenantConfig
	cl *Client
}

// connect (re)dials and re-opens the tenant, returning the server's
// resume sequence. It retries transport failures and graceful drain
// until RetryTimeout.
func (tcn *tenantConn) connect() (int, error) {
	ld := tcn.ld
	cfg := ld.cfg
	if tcn.cl != nil {
		tcn.cl.Close()
		tcn.cl = nil
	}
	deadline := time.Now().Add(cfg.RetryTimeout)
	for {
		c, err := Dial(cfg.Addr)
		if err == nil {
			next, _, oerr := c.Open(tcn.id, tcn.tc)
			if oerr == nil {
				tcn.cl = c
				return next, nil
			}
			c.Close()
			err = oerr
		}
		var ae *AdmissionError
		if errors.As(err, &ae) && tcn.tc.ResRate > 0 {
			// The shard refused the reservation — typed, before any state
			// existed. Fall back to best-effort so the trace still flows,
			// and count the lost guarantee.
			ld.admissionRejects.Add(1)
			ld.logf("load %s: reservation rejected (%v); falling back to best-effort", tcn.id, ae)
			tcn.tc.ResRate, tcn.tc.ResDelay = 0, 0
			continue
		}
		if errors.Is(err, ErrDraining) {
			ld.drainingRejects.Add(1)
		}
		if !retryable(err) {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("retry budget exhausted: %w", err)
		}
		ld.reconnects.Add(1)
		time.Sleep(25 * time.Millisecond)
	}
}

// newTenantConn builds the connection state for load tenant i.
func (ld *loadDriver) newTenantConn(i int, inst *sched.Instance) *tenantConn {
	cfg := ld.cfg
	return &tenantConn{ld: ld, id: loadTenantID(i), tc: TenantConfig{
		Policy: cfg.Policy, N: cfg.N, Speed: cfg.Speed,
		Delta: inst.Delta, Delays: inst.Delays, QueueCap: cfg.QueueCap,
		ResRate: cfg.ResRate, ResDelay: cfg.ResDelay,
	}}
}

// drainWithRefeed finishes a run: drain the tenant with the same
// resilience as the submit loop. If the server restarted from a
// checkpoint behind the trace end, it re-feeds the lost tail (strict
// submits — this path is rare) before retrying the drain. It fills
// o.res, or o.err on giving up, and reports success.
func (ld *loadDriver) drainWithRefeed(conn *tenantConn, trace []sched.Request, o *tenantOutcome) bool {
	deadline := time.Now().Add(ld.cfg.RetryTimeout)
	for {
		res, err := conn.cl.DrainTenant(conn.id)
		if err == nil {
			o.res = res
			return true
		}
		if time.Now().After(deadline) {
			o.err = fmt.Errorf("draining: %w", err)
			return false
		}
		next, cerr := conn.connect()
		if cerr != nil {
			o.err = cerr
			return false
		}
		if cursor := min(next, len(trace)); cursor < len(trace) {
			// The restart lost rounds past the last checkpoint; re-feed
			// them before draining again.
			for cursor < len(trace) {
				if _, _, serr := conn.cl.Submit(conn.id, cursor, trace[cursor]); serr == nil {
					cursor++
				} else if errors.Is(serr, ErrOverloaded) {
					ld.overloads.Add(1)
					time.Sleep(2 * time.Millisecond)
				} else {
					break // fall through to the outer retry
				}
			}
		}
	}
}

// drive runs one tenant: open, submit every trace round exactly once,
// drain, riding out shed ticks and server restarts.
func (ld *loadDriver) drive(i int, inst *sched.Instance, start time.Time) (o tenantOutcome) {
	cfg := ld.cfg
	conn := ld.newTenantConn(i, inst)
	id := conn.id
	trace := inst.Requests

	next, err := conn.connect()
	if err != nil {
		o.err = err
		return o
	}
	cursor := min(next, len(trace))
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	for cursor < len(trace) {
		if interval > 0 {
			if d := time.Until(start.Add(time.Duration(cursor+1) * interval)); d > 0 {
				time.Sleep(d)
			}
		}
		t0 := time.Now()
		_, _, err := conn.cl.Submit(id, cursor, trace[cursor])
		var bs *BadSeqError
		switch {
		case err == nil:
			o.lats = append(o.lats, time.Since(t0))
			ld.roundsSent.Add(1)
			ld.jobsSent.Add(int64(trace[cursor].Jobs()))
			cursor++
		case errors.Is(err, ErrOverloaded):
			// The tick was shed, not lost: back off and resubmit the same
			// sequence once the round engine has caught up.
			ld.overloads.Add(1)
			time.Sleep(2 * time.Millisecond)
		case errors.As(err, &bs):
			// A duplicate after a lost acknowledgement (Expected > cursor)
			// or a rewind after a crash restore (Expected < cursor): the
			// server names the resume point either way.
			ld.resumes.Add(1)
			cursor = min(bs.Expected, len(trace))
		default:
			// Transport failure or graceful drain: reconnect and resume
			// from the sequence the (possibly restarted) server reports.
			if errors.Is(err, ErrDraining) {
				ld.drainingRejects.Add(1)
			}
			ld.logf("load %s: %v; reconnecting", id, err)
			next, cerr := conn.connect()
			if cerr != nil {
				o.err = cerr
				return o
			}
			ld.resumes.Add(1)
			cursor = min(next, len(trace))
		}
	}

	if !ld.drainWithRefeed(conn, trace, &o) {
		return o
	}
	conn.cl.Close()
	return o
}

// drivePipelined is drive with a bounded in-flight window and optional
// batched frames. Staging runs ahead of acknowledgements; the onAck
// callback records admissions, and the first rejecting acknowledgement
// stops staging so the driver can resync exactly as the strict path
// does — back off and resubmit on ErrOverloaded, jump to the server's
// resume point on *BadSeqError, reconnect on anything else. Because
// admission is sequential and every round's acknowledgement is
// eventually reaped, exactly-once ingest holds just as in drive.
func (ld *loadDriver) drivePipelined(i int, inst *sched.Instance, start time.Time) (o tenantOutcome) {
	cfg := ld.cfg
	conn := ld.newTenantConn(i, inst)
	id := conn.id
	trace := inst.Requests
	window := max(cfg.Pipeline, 1)

	var (
		resync   bool         // a reaped ack carried a rejection
		rejected SubmitResult // the first such ack since the last resync
	)
	onAck := func(r SubmitResult) {
		for k := 0; k < r.Admitted; k++ {
			ld.roundsSent.Add(1)
			ld.jobsSent.Add(int64(trace[r.Seq+k].Jobs()))
		}
		if r.Admitted > 0 {
			o.lats = append(o.lats, r.RTT)
		}
		if r.Err != nil && !resync {
			resync = true
			rejected = r
		}
	}

	next, err := conn.connect()
	if err != nil {
		o.err = err
		return o
	}
	cursor := min(next, len(trace))
	pl := conn.cl.NewPipeline(window, onAck)

	// reconnect re-dials, resumes the cursor from the server's sequence
	// (in-flight frames whose acknowledgements were lost are accounted
	// for there), and starts a fresh pipeline on the new connection.
	reconnect := func() bool {
		next, cerr := conn.connect()
		if cerr != nil {
			o.err = cerr
			return false
		}
		ld.resumes.Add(1)
		cursor = min(next, len(trace))
		pl = conn.cl.NewPipeline(window, onAck)
		resync = false
		return true
	}

	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	for {
		for cursor < len(trace) && !resync {
			if interval > 0 {
				if d := time.Until(start.Add(time.Duration(cursor+1) * interval)); d > 0 {
					time.Sleep(d)
				}
			}
			k := min(cfg.Batch, len(trace)-cursor)
			var serr error
			if k == 1 {
				serr = pl.Submit(id, cursor, trace[cursor])
			} else {
				serr = pl.SubmitBatch(id, cursor, trace[cursor:cursor+k])
			}
			if serr != nil {
				ld.logf("load %s: %v; reconnecting", id, serr)
				if !reconnect() {
					return o
				}
				continue
			}
			cursor += k
		}
		// Drain the window; acknowledgements reaped here can still flip
		// resync, so the rejection check below runs after the flush.
		if ferr := pl.Flush(); ferr != nil {
			ld.logf("load %s: %v; reconnecting", id, ferr)
			if !reconnect() {
				return o
			}
			continue
		}
		if resync {
			r, bs := rejected, (*BadSeqError)(nil)
			resync = false
			switch {
			case errors.As(r.Err, &bs):
				// Later in-flight frames rejected behind this one changed
				// nothing, so the first rejection's resume point stands.
				ld.resumes.Add(1)
				cursor = min(bs.Expected, len(trace))
			case errors.Is(r.Err, ErrOverloaded):
				ld.overloads.Add(1)
				cursor = min(r.Seq+r.Admitted, len(trace))
				time.Sleep(2 * time.Millisecond)
			default:
				if errors.Is(r.Err, ErrDraining) {
					ld.drainingRejects.Add(1)
				}
				ld.logf("load %s: %v; reconnecting", id, r.Err)
				if !reconnect() {
					return o
				}
			}
			continue
		}
		if cursor >= len(trace) {
			break
		}
	}

	if !ld.drainWithRefeed(conn, trace, &o) {
		return o
	}
	conn.cl.Close()
	return o
}

// LocalReference replays an instance through a local Stream under the
// same policy spec and resources a server tenant would use, returning
// the drained Result — the ground truth RunLoad's Verify and the
// integration tests compare server results against.
func LocalReference(inst *sched.Instance, policySpec string, n, speed int) (*sched.Result, error) {
	pol, err := NewPolicy(policySpec)
	if err != nil {
		return nil, err
	}
	st, err := sched.NewStream(pol, sched.StreamConfig{
		N: n, Speed: speed, Delta: inst.Delta, Delays: inst.Delays,
	})
	if err != nil {
		return nil, err
	}
	for _, req := range inst.Requests {
		if _, err := st.Step(req); err != nil {
			return nil, err
		}
	}
	if _, err := st.Drain(); err != nil {
		return nil, err
	}
	return st.Result(), nil
}

// resultsEqual compares two Results field by field, excluding the
// Schedule (which the wire never carries).
func resultsEqual(a, b *sched.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Policy == b.Policy && a.Cost == b.Cost &&
		a.Executed == b.Executed && a.Dropped == b.Dropped &&
		a.Reconfigs == b.Reconfigs && a.Rounds == b.Rounds &&
		slices.Equal(a.DropsByColor, b.DropsByColor) &&
		slices.Equal(a.ExecByColor, b.ExecByColor)
}
